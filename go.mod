module nvmeoaf

go 1.23
