package oaf_test

import (
	"bytes"
	"fmt"
	"log"

	"nvmeoaf/oaf"
)

// Example demonstrates the quickstart flow: a co-located client/target
// pair negotiates the shared-memory data path, and a payload survives the
// round trip. The simulation is deterministic, so the output is stable.
func Example() {
	cluster := oaf.NewCluster(oaf.Config{Seed: 1})
	if err := cluster.AddHost("hostA"); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddTarget("hostA", "nqn.example", oaf.TargetConfig{RetainData: true}); err != nil {
		log.Fatal(err)
	}
	err := cluster.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.example", oaf.ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		fmt.Println("shared memory:", q.SharedMemory)

		payload := bytes.Repeat([]byte{0xAB}, 4096)
		if _, err := q.Write(0, payload); err != nil {
			return err
		}
		res, err := q.Read(0, len(payload))
		if err != nil {
			return err
		}
		fmt.Println("verified:", bytes.Equal(res.Data, payload))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// shared memory: true
	// verified: true
}

// Example_remote shows the locality check declining shared memory for a
// cross-host connection: the adaptive fabric falls back to optimized TCP.
func Example_remote() {
	cluster := oaf.NewCluster(oaf.Config{Seed: 1})
	for _, h := range []string{"compute", "storage"} {
		if err := cluster.AddHost(h); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.AddTarget("storage", "nqn.remote", oaf.TargetConfig{}); err != nil {
		log.Fatal(err)
	}
	err := cluster.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.On("compute").Connect("nqn.remote", oaf.ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		fmt.Println("shared memory:", q.SharedMemory)
		_, err = q.WriteModeled(0, 64<<10)
		fmt.Println("write over TCP fallback:", err == nil)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// shared memory: false
	// write over TCP fallback: true
}
