package oaf

import (
	"time"

	nvhost "nvmeoaf/internal/host"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/perf"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/stats"
	"nvmeoaf/internal/transport"
)

// Workload describes a microbenchmark pattern for RunWorkload, mirroring
// SPDK perf's knobs.
type Workload struct {
	// Sequential selects sequential offsets; otherwise random.
	Sequential bool
	// Zipf skews random offsets to a hot set with this theta (YCSB's
	// hot-set knob; 0.99 is the standard skew). Zero keeps the uniform
	// pattern; ignored for sequential workloads.
	Zipf float64
	// ReadPercent is the read share (100 = pure read).
	ReadPercent int
	// IOSize is the request size in bytes.
	IOSize int
	// QueueDepth is the number of outstanding commands.
	QueueDepth int
	// Span is the working-set size (defaults to 1 GiB).
	Span int64
	// Warmup is excluded from measurement.
	Warmup time.Duration
	// Duration is the measured window.
	Duration time.Duration
}

// WorkloadResult summarizes a measured run.
type WorkloadResult struct {
	// GBps is bandwidth in 1e9 bytes per second.
	GBps float64
	// IOPS is operations per second.
	IOPS float64
	// AvgLatency is the mean end-to-end latency.
	AvgLatency time.Duration
	// P99, P9999 are tail latencies.
	P99, P9999 time.Duration
	// DeviceTime, FabricTime, OtherTime are the mean per-request
	// components of the paper's latency breakdown.
	DeviceTime, FabricTime, OtherTime time.Duration
	// CDF is the latency distribution at standard quantiles.
	CDF []stats.CDFPoint
	// Errors counts failed commands.
	Errors int64
}

// RunWorkload drives the workload against the queue from this context's
// process and blocks until the measured window completes.
func (ctx *Ctx) RunWorkload(q *Queue, w Workload) (*WorkloadResult, error) {
	stream := perf.NewStream(ctx.cluster.engine, q.inner, perf.Workload{
		Name:       "oaf-workload",
		Seq:        w.Sequential,
		Zipf:       w.Zipf,
		ReadPct:    w.ReadPercent,
		IOSize:     w.IOSize,
		QueueDepth: w.QueueDepth,
		Span:       w.Span,
		Warmup:     w.Warmup,
		Duration:   w.Duration,
	})
	stream.Start()
	res := stream.Wait(ctx.proc)
	us := func(v float64) time.Duration { return time.Duration(v * 1e3) }
	return &WorkloadResult{
		GBps:       res.Throughput.GBps(),
		IOPS:       res.Throughput.IOPS(),
		AvgLatency: us(res.BD.MeanTotal()),
		P99:        time.Duration(res.Latency.P99()),
		P9999:      time.Duration(res.Latency.P9999()),
		DeviceTime: us(res.BD.MeanIO()),
		FabricTime: us(res.BD.MeanComm()),
		OtherTime:  us(res.BD.MeanOther()),
		CDF:        res.Latency.CDF(),
		Errors:     res.Errors,
	}, nil
}

// DiscoveredSubsystem is one entry of a target's discovery log.
type DiscoveredSubsystem struct {
	NQN       string
	Transport string
	Address   string
}

// Discover fetches the discovery log through this queue: the subsystems
// the connected target exposes.
func (q *Queue) Discover() ([]DiscoveredSubsystem, error) {
	entries, err := nvhost.Discover(q.ctx.proc, q.inner)
	if err != nil {
		return nil, err
	}
	out := make([]DiscoveredSubsystem, 0, len(entries))
	for _, e := range entries {
		tr := "tcp"
		switch e.TrType {
		case 1:
			tr = "rdma"
		case 0xFA:
			tr = "adaptive"
		}
		out = append(out, DiscoveredSubsystem{NQN: e.SubNQN, Transport: tr, Address: e.TrAddr})
	}
	return out, nil
}

// ConnectMulti opens opts.Queues (default 2) queue pairs to the target
// and probes the controller through the host layer, returning a Queue
// that spreads I/O across the connections round-robin. The controller's
// discovered capacity bounds requests.
func (ctx *Ctx) ConnectMulti(targetNQN string, opts ConnectOptions) (*Queue, error) {
	n := opts.Queues
	if n <= 0 {
		n = 2
	}
	single := opts
	single.Queues = 1
	inner := make([]transport.Queue, 0, n)
	var tracer *netsim.Tracer
	shm := true
	for i := 0; i < n; i++ {
		q, err := ctx.Connect(targetNQN, single)
		if err != nil {
			for _, prev := range inner {
				prev.Close()
			}
			return nil, err
		}
		inner = append(inner, q.inner)
		shm = shm && q.SharedMemory
		if tracer == nil {
			tracer = q.tracer
		}
	}
	ctrl, err := nvhost.Probe(ctx.proc, inner...)
	if err != nil {
		for _, q := range inner {
			q.Close()
		}
		return nil, err
	}
	return &Queue{inner: &controllerQueue{ctrl: ctrl}, ctx: ctx, tracer: tracer, SharedMemory: shm}, nil
}

// controllerQueue adapts a multi-qpair controller to the transport.Queue
// interface.
type controllerQueue struct {
	ctrl *nvhost.Controller
}

// Submit implements transport.Queue.
func (c *controllerQueue) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	return c.ctrl.Submit(p, io)
}

// Close implements transport.Queue.
func (c *controllerQueue) Close() { c.ctrl.Close() }
