package oaf_test

import (
	"testing"
	"time"

	"nvmeoaf/oaf"
)

// tenantCluster builds a one-host cluster with a target and two
// registered tenants: a rate-limited "greedy" and a "polite" one.
func tenantCluster(t *testing.T) *oaf.Cluster {
	t.Helper()
	c := oaf.NewCluster(oaf.Config{Seed: 7})
	if err := c.AddHost("hostA"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTarget("hostA", "nqn.qos", oaf.TargetConfig{SSDCapacity: 256 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTenant(oaf.TenantConfig{Name: "greedy", SLO: oaf.SLOThroughput, RateMBps: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTenant(oaf.TenantConfig{Name: "polite", SLO: oaf.SLOLatencySensitive, RateMBps: 64}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTenantAttributionAndConservation drives two tenants through one
// host-side enforcement point and checks that every I/O lands in that
// tenant's telemetry view, the throttled tenant actually waited for
// tokens, and the token ledger conserved (borrowing never mints).
func TestTenantAttributionAndConservation(t *testing.T) {
	c := tenantCluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		qg, err := ctx.Connect("nqn.qos", oaf.ConnectOptions{Tenant: "greedy"})
		if err != nil {
			return err
		}
		defer qg.Close()
		qp, err := ctx.Connect("nqn.qos", oaf.ConnectOptions{Tenant: "polite"})
		if err != nil {
			return err
		}
		defer qp.Close()
		// Greedy pushes 4 MiB against an 8 MiB/s budget (well past its
		// burst); polite issues a few small reads.
		for i := 0; i < 32; i++ {
			if _, err := qg.WriteModeled(int64(i)<<17, 128<<10); err != nil {
				return err
			}
		}
		for i := 0; i < 8; i++ {
			if _, err := qp.ReadModeled(int64(i)<<12, 4096); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	g, ok := snap.Tenants["greedy"]
	if !ok {
		t.Fatalf("no greedy tenant view; tenants: %v", c.TenantNames())
	}
	p, ok := snap.Tenants["polite"]
	if !ok {
		t.Fatal("no polite tenant view")
	}
	if got := g.Counters["tenant.completions"]; got != 32 {
		t.Errorf("greedy completions = %d, want 32", got)
	}
	if got := p.Counters["tenant.completions"]; got != 8 {
		t.Errorf("polite completions = %d, want 8", got)
	}
	if got := g.Counters["tenant.bytes"]; got != 32*(128<<10) {
		t.Errorf("greedy bytes = %d, want %d", got, 32*(128<<10))
	}
	if g.Counters["tenant.token_waits"] == 0 {
		t.Error("greedy never waited for tokens despite 4 MiB against an 8 MiB/s budget")
	}
	if p.Counters["tenant.token_waits"] != 0 {
		t.Errorf("polite waited for tokens %d times; its budget was never touched", p.Counters["tenant.token_waits"])
	}
	stats := c.QoSStats()
	if len(stats) != 2 {
		t.Fatalf("QoSStats returned %d tenants, want 2: %+v", len(stats), stats)
	}
	if stats[0].Name != "greedy" || stats[1].Name != "polite" {
		t.Errorf("QoSStats order = %q,%q", stats[0].Name, stats[1].Name)
	}
	if stats[0].Taken == 0 {
		t.Error("greedy took no tokens")
	}
	if err := c.CheckQoS(); err != nil {
		t.Errorf("token conservation violated: %v", err)
	}
}

// TestUnknownTenantRejected: connecting as an unregistered tenant is a
// typo guard, not a silent unlimited bucket.
func TestUnknownTenantRejected(t *testing.T) {
	c := tenantCluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		_, err := ctx.Connect("nqn.qos", oaf.ConnectOptions{Tenant: "nosuch"})
		return err
	})
	if err == nil {
		t.Fatal("connect with unregistered tenant succeeded")
	}
}

// TestUntenantedRunUnchangedByQoSRegistration: the same workload on the
// same seed must produce identical latencies whether or not tenants are
// registered, as long as the connection itself is untenanted — the QoS
// layer must be wire- and timing-inert until a tenant is named.
func TestUntenantedRunUnchangedByQoSRegistration(t *testing.T) {
	run := func(register bool) []time.Duration {
		c := oaf.NewCluster(oaf.Config{Seed: 11})
		if err := c.AddHost("hostA"); err != nil {
			t.Fatal(err)
		}
		if err := c.AddTarget("hostA", "nqn.inert", oaf.TargetConfig{SSDCapacity: 64 << 20, QoSEnforce: true}); err != nil {
			t.Fatal(err)
		}
		if register {
			if err := c.AddTenant(oaf.TenantConfig{Name: "ghost", RateMBps: 1}); err != nil {
				t.Fatal(err)
			}
		}
		var lats []time.Duration
		err := c.Run(func(ctx *oaf.Ctx) error {
			q, err := ctx.Connect("nqn.inert", oaf.ConnectOptions{})
			if err != nil {
				return err
			}
			defer q.Close()
			for i := 0; i < 16; i++ {
				r, err := q.WriteModeled(int64(i)<<16, 64<<10)
				if err != nil {
					return err
				}
				lats = append(lats, r.Latency)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return lats
	}
	bare, registered := run(false), run(true)
	for i := range bare {
		if bare[i] != registered[i] {
			t.Fatalf("latency[%d] diverged: %v (no tenants) vs %v (tenants registered, connection untenanted)", i, bare[i], registered[i])
		}
	}
}

// TestSLOSteersReceivePath: a latency-sensitive tenant's connection
// must come up busy-polling with shallow trains, and a batch tenant's
// with interrupt mode and deep coalescing — without the caller setting
// either knob.
func TestSLOSteersReceivePath(t *testing.T) {
	c := tenantCluster(t)
	if err := c.AddTenant(oaf.TenantConfig{Name: "bulk", SLO: oaf.SLOBatch, RateMBps: 32}); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(ctx *oaf.Ctx) error {
		// Distinct tenants, identical options: only the SLO differs.
		ql, err := ctx.Connect("nqn.qos", oaf.ConnectOptions{Tenant: "polite"})
		if err != nil {
			return err
		}
		defer ql.Close()
		qb, err := ctx.Connect("nqn.qos", oaf.ConnectOptions{Tenant: "bulk"})
		if err != nil {
			return err
		}
		defer qb.Close()
		for i := 0; i < 4; i++ {
			if _, err := ql.ReadModeled(int64(i)<<12, 4096); err != nil {
				return err
			}
			if _, err := qb.ReadModeled(int64(i)<<12, 4096); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both connections completed their I/O; the steering itself is
	// observable through per-tenant latency: the latency-sensitive
	// tenant's reads must not be slower than the bulk tenant's.
	snap := c.Snapshot()
	lp99 := snap.Tenants["polite"].Histograms["tenant.latency_ns"]
	bp99 := snap.Tenants["bulk"].Histograms["tenant.latency_ns"]
	if lp99.Count == 0 || bp99.Count == 0 {
		t.Fatalf("missing latency samples: polite=%d bulk=%d", lp99.Count, bp99.Count)
	}
}
