package oaf

import (
	"fmt"
	"strings"
	"time"

	"nvmeoaf/internal/tune"
)

// TunerOptions configures an attached self-tuner.
type TunerOptions struct {
	// Period is the sampling/decision epoch in virtual time: every period
	// the tuner scores the last interval's completion rate and accepts or
	// reverts one knob step (default 50 ms).
	Period time.Duration
}

// Tuner is an online self-tuning controller running over the cluster's
// live I/O path: a restart-free coordinate-descent hill-climb (with
// epsilon-greedy escapes) over every tunable knob of the connected
// queues — submission/completion batching, busy-poll budget, queue-depth
// target, TCP chunk size — and of the target-side block caches (dirty
// watermark, size-bypass threshold). Every step is applied through a
// live setter on the running connection; the tuner never reconnects.
type Tuner struct {
	ctl *tune.Controller
}

// AttachTuner builds a tuner over every queue connected so far (plus all
// target-side caches) and starts it. Call it from inside Run, after the
// application has connected its queues:
//
//	c.Run(func(ctx *oaf.Ctx) error {
//	    q, _ := ctx.Connect("nqn.demo", oaf.ConnectOptions{Batch: 1})
//	    tn, _ := ctx.Cluster().AttachTuner(oaf.TunerOptions{})
//	    // ... drive I/O; the tuner climbs while the workload runs ...
//	    rep := tn.Report() // trajectory, scores, final knob values
//	    ...
//	})
//
// Queues connected after the call are not tuned (attach again for a new
// set). The tuner stops automatically when Run's application function
// returns; knobs keep their tuned values.
func (c *Cluster) AttachTuner(opts TunerOptions) (*Tuner, error) {
	period := opts.Period
	if period <= 0 {
		period = 50 * time.Millisecond
	}
	var knobs []tune.Knob
	for i, q := range c.queues {
		tq, ok := q.inner.(tune.TunableQueue)
		if !ok {
			continue
		}
		qk := tune.QueueKnobs(fmt.Sprintf("q%d", i), tq)
		if st := q.srvTarget; st != nil {
			for j := range qk {
				if strings.HasSuffix(qk[j].Name, "/batch") {
					// Batching is negotiated symmetry: the same knob drives
					// client-side submission trains and target-side
					// completion-reap coalescing, exactly like the static
					// Batch option at connect time.
					set := qk[j].Set
					qk[j].Set = func(v int64) {
						set(v)
						st.SetBatchSize(int(v))
					}
				}
			}
		}
		knobs = append(knobs, qk...)
	}
	for i, ca := range c.caches {
		knobs = append(knobs, tune.CacheKnobs(fmt.Sprintf("cache%d", i), ca)...)
	}
	if len(knobs) == 0 {
		return nil, fmt.Errorf("oaf: nothing to tune — attach the tuner after connecting queues")
	}
	t := &Tuner{ctl: tune.NewController(c.engine, tune.Config{
		Period:    period,
		Telemetry: c.tel,
	}, knobs)}
	t.ctl.Start()
	c.tuners = append(c.tuners, t)
	return t, nil
}

// Stop halts the tuner at its next epoch; knobs keep their tuned values.
// Run calls it automatically when the application function returns.
func (t *Tuner) Stop() { t.ctl.Stop() }

// Report returns the tuner's trajectory so far: every accepted/reverted
// move, the per-epoch score series, and the final knob settings.
func (t *Tuner) Report() tune.Report { return t.ctl.Report() }

// stopTuners halts every attached tuner so the engine can drain once the
// application finishes.
func (c *Cluster) stopTuners() {
	for _, t := range c.tuners {
		t.Stop()
	}
}
