// Package oaf is the public API of the NVMe-oAF library: a simulated HPC
// cloud in which applications talk to NVMe-oF storage services over the
// adaptive fabric (shared memory + optimized TCP), plain NVMe/TCP, or
// NVMe/RDMA, reproducing the system of "NVMe-oAF: Towards Adaptive
// NVMe-oF for IO-Intensive Workloads on HPC Cloud" (HPDC '22).
//
// A Cluster holds simulated hosts; each host can run storage targets
// (subsystems backed by emulated NVMe-SSDs) and client applications.
// Application code runs inside Cluster.Run as a simulation process and
// connects to targets through Connect, which performs the adaptive
// fabric's locality check: co-located client/target pairs get a
// shared-memory data channel, remote pairs the optimized TCP path.
//
//	c := oaf.NewCluster(oaf.Config{Seed: 1})
//	c.AddHost("hostA")
//	c.AddTarget("hostA", "nqn.demo", oaf.TargetConfig{SSDCapacity: 1 << 30})
//	err := c.Run(func(ctx *oaf.Ctx) error {
//	    q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{})
//	    if err != nil { return err }
//	    defer q.Close()
//	    _, err = q.Write(0, make([]byte, 8192))
//	    return err
//	})
package oaf

import (
	"fmt"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/cache"
	"nvmeoaf/internal/cluster"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/faults"
	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/rdma"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// Design selects the shared-memory data-path design (the Fig 8 ablation).
type Design int

// Shared-memory designs, in ablation order. DesignZeroCopy is the paper's
// headline configuration and the default.
const (
	DesignZeroCopy Design = iota
	DesignFlowCtl
	DesignLockFree
	DesignBaseline
)

func (d Design) internal() core.Design {
	switch d {
	case DesignBaseline:
		return core.DesignSHMBaseline
	case DesignLockFree:
		return core.DesignSHMLockFree
	case DesignFlowCtl:
		return core.DesignSHMFlowCtl
	default:
		return core.DesignSHMZeroCopy
	}
}

// Fabric selects the transport family for a connection.
type Fabric int

// Supported fabrics. FabricAdaptive is NVMe-oAF: shared memory when
// co-located, optimized TCP otherwise.
const (
	FabricAdaptive Fabric = iota
	FabricTCP10G
	FabricTCP25G
	FabricTCP100G
	FabricRDMA56G
	FabricRoCE100G
)

// Config configures a cluster.
type Config struct {
	// Seed drives all randomness (same seed = identical run).
	Seed int64
}

// CacheMode selects the write policy of a target-side block cache.
type CacheMode int

const (
	// CacheWriteThrough completes writes only after the backing SSD does.
	CacheWriteThrough CacheMode = iota
	// CacheWriteBack absorbs aligned writes in DRAM and flushes them in
	// the background; OpFlush remains the durability barrier.
	CacheWriteBack
)

func (m CacheMode) internal() cache.Mode {
	if m == CacheWriteBack {
		return cache.WriteBack
	}
	return cache.WriteThrough
}

// TargetConfig configures one storage service.
type TargetConfig struct {
	// SSDCapacity is the namespace size in bytes (default 1 GiB).
	SSDCapacity int64
	// RetainData stores payload bytes so reads return real data
	// (costs host memory proportional to written data).
	RetainData bool
	// CacheBytes, when positive, fronts the SSD with a target-side DRAM
	// block cache of this capacity (hits skip the device entirely).
	CacheBytes int64
	// CacheMode selects the cache write policy.
	CacheMode CacheMode
	// QoSEnforce arms target-side per-tenant admission for this service:
	// a tenant over budget at the target gets a typed retryable rejection
	// (StatusTenantThrottled) instead of queueing. Host-side shaping is
	// always on once tenants are registered; target enforcement is the
	// second, decentralized line of defense for hosts that under-shape.
	// Connections that re-drive rejections need a CommandTimeout.
	QoSEnforce bool
	// TenantDirtyFrac caps each named tenant's share of the write-back
	// cache's dirty budget (fraction of cache capacity); a tenant over
	// its share degrades to write-through instead of starving others.
	TenantDirtyFrac map[string]float64
}

// WithCache returns a copy of the config with a block cache of the given
// capacity and write policy.
func (tc TargetConfig) WithCache(bytes int64, mode CacheMode) TargetConfig {
	tc.CacheBytes = bytes
	tc.CacheMode = mode
	return tc
}

// ConnectOptions tunes one connection.
type ConnectOptions struct {
	// Fabric selects the transport (default FabricAdaptive).
	Fabric Fabric
	// Design selects the shared-memory design for adaptive connections.
	Design Design
	// QueueDepth bounds outstanding commands (default 128).
	QueueDepth int
	// ChunkSize overrides the TCP application-level chunk size.
	ChunkSize int
	// BusyPoll sets the socket busy-poll budget (0 = interrupt mode).
	BusyPoll time.Duration
	// MaxIOSize bounds the largest I/O, used to size shared-memory slots
	// (default 1 MiB).
	MaxIOSize int
	// EncryptSHM enciphers the shared-memory channel with a per-tenant
	// key (the hardening §6 of the paper proposes). Costs cipher
	// throughput on every payload and forfeits part of the zero-copy
	// benefit.
	EncryptSHM bool
	// Queues opens this many I/O queue pairs and stripes commands across
	// them by offset, as SPDK pins qpairs to cores (default 1). Values
	// above 1 make Connect return the facade of a QueueGroup; use
	// ConnectGroup for member-level access.
	Queues int
	// StripeUnit is the striping granularity for multi-queue connections:
	// stripe unit u of the address space belongs to member queue u mod
	// Queues, and larger I/Os split at unit boundaries (default 128 KiB).
	StripeUnit int
	// Batch enables submission/completion coalescing: the client packs up
	// to this many queued commands into one capsule train (one message,
	// one doorbell) and the target merges as many ready completions per
	// response message. 0 or 1 keeps the classic one-message-per-command
	// wire behavior.
	Batch int
	// CommandTimeout, when positive, bounds each command attempt: an
	// expired command fails over or retries with backoff and eventually
	// surfaces a typed transient error instead of hanging. Required for
	// crash-tolerant setups (replicated namespaces default it).
	CommandTimeout time.Duration
	// MaxRetries bounds retry attempts per timed-out command (default 3
	// when CommandTimeout is set).
	MaxRetries int
	// RetryBackoff is the base of the exponential retry backoff.
	RetryBackoff time.Duration
	// KeepAlive, when positive, probes the connection with keep-alive
	// admin commands at this period, detecting a dead target between
	// I/Os.
	KeepAlive time.Duration
	// Tenant attributes every I/O on this connection to a registered
	// tenant (AddTenant): host-side token admission, per-tenant
	// telemetry, and — unless BusyPoll/Batch are set explicitly — the
	// tenant's SLO steers the receive-path knobs. Identity crosses the
	// wire once, inside the Fabrics Connect hostNQN; an empty Tenant
	// leaves the wire byte-identical to an untenanted build.
	Tenant string
}

// host is one simulated physical machine.
type host struct {
	name string
	nic  *netsim.NIC
	loop *netsim.NIC
}

// tgtEntry is one registered storage service.
type tgtEntry struct {
	host  *host
	tgt   *target.Target
	cfg   TargetConfig
	bdev  *bdev.SSDBdev
	cache *cache.Cache // nil when the target is uncached
	// shaper is the target-side QoS enforcement point (nil until a
	// tenant-enforcing connection is opened; shared across connections).
	shaper *qos.Shaper
	// srvs holds every per-connection server transport serving this
	// target, so a scheduled crash takes the whole service down.
	srvs []faults.Crashable
}

// crashAll makes one registered target a Crashable: crashing it drops
// every server transport (and their connections) at once. The server
// list is read at fire time, so connections opened after the schedule
// still crash.
type crashAll struct{ te *tgtEntry }

func (ca crashAll) Crash() {
	for _, s := range ca.te.srvs {
		s.Crash()
	}
}

func (ca crashAll) Restart() {
	for _, s := range ca.te.srvs {
		s.Restart()
	}
}

// Cluster is a simulated HPC-cloud deployment.
type Cluster struct {
	engine     *sim.Engine
	fabric     *core.Fabric
	hosts      map[string]*host
	targets    map[string]*tgtEntry
	tel        *telemetry.Sink
	queues     []*Queue
	pools      []*mempool.Pool
	caches     []*cache.Cache
	inj        *faults.Injector
	replicated []*cluster.Cluster
	tuners     []*Tuner
	// qosReg holds the registered tenants; hostQoS the per-host
	// enforcement points (one decentralized token ledger per host).
	qosReg  *qos.Registry
	hostQoS map[string]*qos.Shaper
}

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) *Cluster {
	e := sim.NewEngine(cfg.Seed)
	tel := telemetry.New()
	fabric := core.NewFabric(e, model.DefaultSHM())
	fabric.AttachTelemetry(tel)
	return &Cluster{
		engine:  e,
		fabric:  fabric,
		hosts:   make(map[string]*host),
		targets: make(map[string]*tgtEntry),
		tel:     tel,
	}
}

// AddHost registers a physical host.
func (c *Cluster) AddHost(name string) error {
	if _, dup := c.hosts[name]; dup {
		return fmt.Errorf("oaf: host %q already exists", name)
	}
	c.hosts[name] = &host{
		name: name,
		nic:  netsim.NewNIC(c.engine, model.TCP25G().WireBytesPerSec),
		loop: netsim.NewNIC(c.engine, model.Loopback().WireBytesPerSec),
	}
	return nil
}

// AddTarget starts a storage service on a host: one subsystem with one
// SSD-backed namespace, reachable by the given NQN.
func (c *Cluster) AddTarget(hostName, nqn string, cfg TargetConfig) error {
	h, ok := c.hosts[hostName]
	if !ok {
		return fmt.Errorf("oaf: unknown host %q", hostName)
	}
	if _, dup := c.targets[nqn]; dup {
		return fmt.Errorf("oaf: target %q already exists", nqn)
	}
	if cfg.SSDCapacity <= 0 {
		cfg.SSDCapacity = 1 << 30
	}
	tgt := target.New(c.engine, model.DefaultHost())
	sub, err := tgt.AddSubsystem(nqn)
	if err != nil {
		return err
	}
	bd := bdev.NewSimSSD(c.engine, "ssd-"+nqn, cfg.SSDCapacity, model.DefaultSSD(), cfg.RetainData, transport.BlockSize)
	var dev bdev.Device = bd
	var ca *cache.Cache
	if cfg.CacheBytes > 0 {
		ca = cache.New(c.engine, bd, cache.Config{
			Bytes: cfg.CacheBytes, Mode: cfg.CacheMode.internal(),
			Retain: cfg.RetainData, Telemetry: c.tel,
			TenantDirtyFrac: cfg.TenantDirtyFrac,
		})
		dev = ca
		c.caches = append(c.caches, ca)
	}
	if _, err := sub.AddNamespace(1, dev); err != nil {
		return err
	}
	c.targets[nqn] = &tgtEntry{host: h, tgt: tgt, cfg: cfg, bdev: bd, cache: ca}
	return nil
}

// Injector returns the cluster's deterministic fault injector, creating
// it on first use. Schedules placed on it derive from the cluster seed,
// so chaos runs replay bit-identically.
func (c *Cluster) Injector() *faults.Injector {
	if c.inj == nil {
		c.inj = faults.NewInjector(c.engine)
	}
	return c.inj
}

// ScheduleTargetCrash crashes the named target (every server transport
// serving it) at virtual time at, restarting it downFor later.
// Connections opened after this call still crash: the server set is
// evaluated when the fault fires.
func (c *Cluster) ScheduleTargetCrash(nqn string, at, downFor time.Duration) error {
	te, ok := c.targets[nqn]
	if !ok {
		return fmt.Errorf("oaf: unknown target %q", nqn)
	}
	c.Injector().CrashTarget(crashAll{te}, at, downFor)
	return nil
}

// CacheStats returns the block-cache accounting of the named target; ok
// is false when the target is unknown or uncached.
func (c *Cluster) CacheStats(nqn string) (cache.Stats, bool) {
	te, found := c.targets[nqn]
	if !found || te.cache == nil {
		return cache.Stats{}, false
	}
	return te.cache.Stats(), true
}

// Run executes fn as a simulation process (an application) and drives the
// simulation until all activity completes. It returns fn's error, or a
// simulation error (panic, deadlock).
func (c *Cluster) Run(fn func(ctx *Ctx) error) error {
	var appErr error
	c.engine.Go("oaf-app", func(p *sim.Proc) {
		appErr = fn(&Ctx{cluster: c, proc: p, hostName: firstHost(c)})
		c.stopTuners()
	})
	if err := c.engine.Run(); err != nil {
		return err
	}
	return appErr
}

// RunUntil is Run with a virtual-time limit.
func (c *Cluster) RunUntil(limit time.Duration, fn func(ctx *Ctx) error) error {
	var appErr error
	c.engine.Go("oaf-app", func(p *sim.Proc) {
		appErr = fn(&Ctx{cluster: c, proc: p, hostName: firstHost(c)})
		c.stopTuners()
	})
	if err := c.engine.RunUntil(sim.Time(limit)); err != nil {
		return err
	}
	return appErr
}

func firstHost(c *Cluster) string {
	for name := range c.hosts {
		return name
	}
	return ""
}

// Now returns the current virtual time of the cluster.
func (c *Cluster) Now() time.Duration { return time.Duration(c.engine.Now()) }

// Ctx is the handle application code uses inside Run: it identifies the
// calling process and the host the application runs on.
type Ctx struct {
	cluster  *Cluster
	proc     *sim.Proc
	hostName string
}

// On returns a Ctx bound to a different host (the application "runs"
// there for locality purposes).
func (ctx *Ctx) On(hostName string) *Ctx {
	return &Ctx{cluster: ctx.cluster, proc: ctx.proc, hostName: hostName}
}

// Cluster exposes the cluster for mid-run observability (Snapshot,
// CacheStats, Telemetry) from inside the application process.
func (ctx *Ctx) Cluster() *Cluster { return ctx.cluster }

// Sleep advances virtual time for this process.
func (ctx *Ctx) Sleep(d time.Duration) { ctx.proc.Sleep(d) }

// Now returns the current virtual time.
func (ctx *Ctx) Now() time.Duration { return time.Duration(ctx.proc.Now()) }

// Go spawns a concurrent application process on the same host.
func (ctx *Ctx) Go(name string, fn func(ctx *Ctx) error) *Task {
	t := &Task{done: sim.NewSignal(ctx.cluster.engine)}
	ctx.cluster.engine.Go(name, func(p *sim.Proc) {
		t.err = fn(&Ctx{cluster: ctx.cluster, proc: p, hostName: ctx.hostName})
		t.done.Fire()
	})
	return t
}

// Task is a spawned application process.
type Task struct {
	done *sim.Signal
	err  error
}

// Wait blocks until the task finishes and returns its error.
func (t *Task) Wait(ctx *Ctx) error {
	t.done.Wait(ctx.proc)
	return t.err
}

// Result is the completion of one I/O.
type Result struct {
	// Data is the read payload (when the target retains data).
	Data []byte
	// Latency is the end-to-end request time.
	Latency time.Duration
	// DeviceTime, FabricTime, OtherTime decompose Latency as in the
	// paper's breakdown figures.
	DeviceTime, FabricTime, OtherTime time.Duration
}

// Queue is one connected I/O queue pair.
type Queue struct {
	inner  transport.Queue
	ctx    *Ctx
	tracer *netsim.Tracer
	target string
	tenant string
	// srvTarget is the session engine of the server transport serving this
	// queue; the tuner uses it to keep target-side reap coalescing in step
	// with the client-side batch knob.
	srvTarget *session.Target
	// SharedMemory reports whether the adaptive fabric negotiated the
	// shared-memory data path for this connection.
	SharedMemory bool
}

// Trace renders the protocol exchange recorded on this connection: every
// control message with its PDUs and timestamps (payloads moving over
// shared memory never appear — they are not on the wire).
func (q *Queue) Trace() string { return q.tracer.String() }

// QueueGroup is a set of independently connected queues to one target
// with I/O striped across them by offset: each member has its own
// reactor and (on the adaptive fabric) its own shared-memory region, so
// a fault on one member — e.g. a revoked region — degrades only that
// member while the group keeps serving. The embedded Queue is the
// striped facade: Read/Write route through the group.
type QueueGroup struct {
	*Queue
	members []*Queue
}

// Members exposes the member queues (each independently snapshotable).
func (g *QueueGroup) Members() []*Queue { return g.members }

// Health is a connection's liveness classification, re-exported from the
// transport layer: Healthy, Degraded (reconnecting, timing out, or
// failed over), or Dead (closed).
type Health = transport.Health

// Health states.
const (
	HealthHealthy  = transport.HealthHealthy
	HealthDegraded = transport.HealthDegraded
	HealthDead     = transport.HealthDead
)

// MemberHealth reports each member queue's current health, index-aligned
// with Members(). A member that degraded mid-stream (revoked region,
// reconnect in progress) reports Degraded while the group keeps serving
// through its healthy peers.
func (g *QueueGroup) MemberHealth() []Health {
	out := make([]Health, len(g.members))
	for i, m := range g.members {
		out[i] = transport.HealthOf(m.inner)
	}
	return out
}

// Connect establishes a connection from the application's host to the
// named target. For FabricAdaptive, the Connection Manager provisions a
// shared-memory region when client and target share the host and falls
// back to optimized TCP otherwise. With opts.Queues > 1 the returned
// Queue is the striped facade of a QueueGroup.
func (ctx *Ctx) Connect(targetNQN string, opts ConnectOptions) (*Queue, error) {
	if opts.Queues > 1 {
		g, err := ctx.ConnectGroup(targetNQN, opts)
		if err != nil {
			return nil, err
		}
		return g.Queue, nil
	}
	return ctx.connectOne(targetNQN, opts)
}

// ConnectGroup opens opts.Queues (at least one) independent connections
// to the target and stripes I/O across them by offset.
func (ctx *Ctx) ConnectGroup(targetNQN string, opts ConnectOptions) (*QueueGroup, error) {
	n := opts.Queues
	if n <= 0 {
		n = 1
	}
	single := opts
	single.Queues = 1
	members := make([]*Queue, 0, n)
	inners := make([]transport.Queue, 0, n)
	for i := 0; i < n; i++ {
		q, err := ctx.connectOne(targetNQN, single)
		if err != nil {
			for _, m := range members {
				m.Close()
			}
			return nil, fmt.Errorf("oaf: group member %d: %w", i, err)
		}
		members = append(members, q)
		inners = append(inners, q.inner)
	}
	striped := transport.NewStriped(ctx.cluster.engine, opts.StripeUnit, inners...)
	shm := true
	for _, m := range members {
		shm = shm && m.SharedMemory
	}
	facade := &Queue{
		inner: striped, ctx: ctx, tracer: members[0].tracer,
		target: targetNQN, SharedMemory: shm,
	}
	return &QueueGroup{Queue: facade, members: members}, nil
}

// connectOne opens a single queue pair.
func (ctx *Ctx) connectOne(targetNQN string, opts ConnectOptions) (*Queue, error) {
	c := ctx.cluster
	te, ok := c.targets[targetNQN]
	if !ok {
		return nil, fmt.Errorf("oaf: unknown target %q", targetNQN)
	}
	clientHost, ok := c.hosts[ctx.hostName]
	if !ok {
		return nil, fmt.Errorf("oaf: application host %q not registered", ctx.hostName)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 128
	}
	if opts.MaxIOSize <= 0 {
		opts.MaxIOSize = 1 << 20
	}
	tp := model.DefaultTCPTransport()
	if opts.ChunkSize > 0 {
		tp.ChunkSize = opts.ChunkSize
	}
	tp.BusyPoll = opts.BusyPoll
	tp.BatchSize = opts.Batch

	if opts.Tenant != "" {
		spec, known := c.qosReg.Lookup(opts.Tenant)
		if !known {
			return nil, fmt.Errorf("oaf: unknown tenant %q (register with AddTenant first)", opts.Tenant)
		}
		// The tenant's SLO tier steers the receive path unless the caller
		// pinned the knobs explicitly.
		if bp, batch, ok := spec.SLO.ReceiveTuning(); ok {
			if opts.BusyPoll == 0 {
				tp.BusyPoll = bp
			}
			if opts.Batch == 0 {
				tp.BatchSize = batch
			}
		}
	}
	hqos := c.hostShaper(ctx.hostName)
	tqos := c.targetShaper(te, targetNQN)

	tracer := netsim.NewTracer(targetNQN)
	intra := clientHost == te.host
	switch opts.Fabric {
	case FabricRDMA56G, FabricRoCE100G:
		prm := model.RDMA56G()
		if opts.Fabric == FabricRoCE100G {
			prm = model.RoCE100G()
		}
		link := netsim.NewLink(c.engine, rdma.LinkParams(prm), clientHost.nic, te.host.nic)
		srv := rdma.NewServer(c.engine, te.tgt, rdma.ServerConfig{NQN: targetNQN, Params: prm, Host: model.DefaultHost(), QoS: tqos})
		srv.Serve(link.B)
		te.srvs = append(te.srvs, srv)
		link.A.AttachTracer(tracer)
		cl, err := rdma.Connect(ctx.proc, link.A, rdma.ClientConfig{
			NQN: targetNQN, QueueDepth: opts.QueueDepth, Params: prm, Host: model.DefaultHost(),
			CommandTimeout: opts.CommandTimeout, MaxRetries: opts.MaxRetries,
			RetryBackoff: opts.RetryBackoff, KeepAlive: opts.KeepAlive,
			Tenant: opts.Tenant, QoS: hqos,
		})
		if err != nil {
			return nil, err
		}
		return c.register(&Queue{inner: cl, ctx: ctx, tracer: tracer, target: targetNQN, tenant: opts.Tenant, srvTarget: srv.Target}), nil

	case FabricTCP10G, FabricTCP25G, FabricTCP100G:
		lp := model.TCP25G()
		switch opts.Fabric {
		case FabricTCP10G:
			lp = model.TCP10G()
		case FabricTCP100G:
			lp = model.TCP100G()
		}
		link := netsim.NewLink(c.engine, lp, clientHost.nic, te.host.nic)
		srv := tcp.NewServer(c.engine, te.tgt, tcp.ServerConfig{NQN: targetNQN, TP: tp, Host: model.DefaultHost(), Telemetry: c.tel, QoS: tqos})
		srv.Serve(link.B)
		te.srvs = append(te.srvs, srv)
		c.pools = append(c.pools, srv.Pool())
		link.A.AttachTracer(tracer)
		cl, err := tcp.Connect(ctx.proc, link.A, tcp.ClientConfig{
			NQN: targetNQN, QueueDepth: opts.QueueDepth, TP: tp, Host: model.DefaultHost(),
			Telemetry:      c.tel,
			CommandTimeout: opts.CommandTimeout, MaxRetries: opts.MaxRetries,
			RetryBackoff: opts.RetryBackoff, KeepAlive: opts.KeepAlive,
			Tenant: opts.Tenant, QoS: hqos,
		})
		if err != nil {
			return nil, err
		}
		return c.register(&Queue{inner: cl, ctx: ctx, tracer: tracer, target: targetNQN, tenant: opts.Tenant, srvTarget: srv.Target}), nil

	default: // FabricAdaptive
		design := opts.Design.internal()
		var link *netsim.Link
		if intra {
			link = netsim.NewLink(c.engine, model.Loopback(), clientHost.loop, te.host.loop)
		} else {
			link = netsim.NewLink(c.engine, model.TCP25G(), clientHost.nic, te.host.nic)
		}
		scfg := core.ServerConfig{
			NQN: targetNQN, Design: design, Fabric: c.fabric, TP: tp, Host: model.DefaultHost(),
			Telemetry: c.tel, QoS: tqos,
		}
		if ca := te.cache; ca != nil {
			// Target-process death loses unflushed write-back data: account
			// it so the next flush barrier reports the typed loss.
			scfg.OnCrash = func() { ca.LoseDirty() }
		}
		srv := core.NewServer(c.engine, te.tgt, scfg)
		srv.Serve(link.B)
		te.srvs = append(te.srvs, srv)
		c.pools = append(c.pools, srv.Pool())
		region, err := c.fabric.RegionFor(design, clientHost.name, te.host.name, opts.MaxIOSize, tp.ChunkSize, opts.QueueDepth)
		if err != nil {
			// SHM provisioning failed: degrade to the TCP data path (the
			// telemetry trace records the decision).
			region = nil
		}
		if region != nil && opts.EncryptSHM {
			region.EnableEncryption(0xA5A5A5A5F00DFEED, 1.5e9)
		}
		link.A.AttachTracer(tracer)
		cl, err := core.Connect(ctx.proc, link.A, core.ClientConfig{
			NQN: targetNQN, QueueDepth: opts.QueueDepth, Design: design, Region: region,
			TP: tp, Host: model.DefaultHost(),
			Telemetry:      c.tel,
			CommandTimeout: opts.CommandTimeout, MaxRetries: opts.MaxRetries,
			RetryBackoff: opts.RetryBackoff, KeepAlive: opts.KeepAlive,
			Tenant: opts.Tenant, QoS: hqos,
		})
		if err != nil {
			return nil, err
		}
		return c.register(&Queue{inner: cl, ctx: ctx, tracer: tracer, target: targetNQN, tenant: opts.Tenant, srvTarget: srv.Target, SharedMemory: cl.SHMEnabled()}), nil
	}
}

// register records the queue for cluster-wide snapshots.
func (c *Cluster) register(q *Queue) *Queue {
	c.queues = append(c.queues, q)
	return q
}

// Write stores data at the byte offset (block aligned) and waits for
// completion.
func (q *Queue) Write(offset int64, data []byte) (*Result, error) {
	return q.wait(q.WriteAsync(offset, data))
}

// Read fetches size bytes at the offset and waits for completion.
func (q *Queue) Read(offset int64, size int) (*Result, error) {
	return q.wait(q.ReadAsync(offset, size))
}

// Flush issues an NVMe flush and waits for completion: it returns only
// once every previously acknowledged write has reached durable media.
// Against a write-back cached target this is the durability barrier that
// drains dirty lines; if a crash already lost unflushed data, the flush
// fails with a write-fault error instead of succeeding silently.
func (q *Queue) Flush() (*Result, error) {
	fut := q.inner.Submit(q.ctx.proc, &transport.IO{Flush: true})
	return q.wait(&Async{fut: fut})
}

// WriteModeled issues a write whose payload is modeled (timing charged,
// no bytes materialized) — for bandwidth experiments.
func (q *Queue) WriteModeled(offset int64, size int) (*Result, error) {
	fut := q.inner.Submit(q.ctx.proc, &transport.IO{Write: true, Offset: offset, Size: size})
	return q.wait(&Async{fut: fut})
}

// ReadModeled issues a modeled read.
func (q *Queue) ReadModeled(offset int64, size int) (*Result, error) {
	fut := q.inner.Submit(q.ctx.proc, &transport.IO{Offset: offset, Size: size})
	return q.wait(&Async{fut: fut})
}

// Async is an in-flight I/O.
type Async struct {
	fut *sim.Future[*transport.Result]
}

// WriteAsync issues a write without waiting.
func (q *Queue) WriteAsync(offset int64, data []byte) *Async {
	return &Async{fut: q.inner.Submit(q.ctx.proc, &transport.IO{
		Write: true, Offset: offset, Size: len(data), Data: data,
	})}
}

// WriteAsyncModeled issues a modeled write (no bytes materialized)
// without waiting.
func (q *Queue) WriteAsyncModeled(offset int64, size int) *Async {
	return &Async{fut: q.inner.Submit(q.ctx.proc, &transport.IO{
		Write: true, Offset: offset, Size: size,
	})}
}

// ReadAsyncModeled issues a modeled read without waiting.
func (q *Queue) ReadAsyncModeled(offset int64, size int) *Async {
	return &Async{fut: q.inner.Submit(q.ctx.proc, &transport.IO{
		Offset: offset, Size: size,
	})}
}

// ReadAsync issues a read without waiting.
func (q *Queue) ReadAsync(offset int64, size int) *Async {
	return &Async{fut: q.inner.Submit(q.ctx.proc, &transport.IO{
		Offset: offset, Size: size, Data: make([]byte, size),
	})}
}

// Wait blocks until the I/O completes.
func (q *Queue) Wait(a *Async) (*Result, error) { return q.wait(a) }

func (q *Queue) wait(a *Async) (*Result, error) {
	res := a.fut.Wait(q.ctx.proc)
	if err := res.Err(); err != nil {
		return nil, err
	}
	return &Result{
		Data:       res.Data,
		Latency:    res.Latency,
		DeviceTime: res.IOTime,
		FabricTime: res.CommTime,
		OtherTime:  res.OtherTime,
	}, nil
}

// Close shuts the connection down cleanly.
func (q *Queue) Close() { q.inner.Close() }
