package oaf_test

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/oaf"
)

// cluster builds a one-host cluster with one retaining target.
func cluster(t *testing.T) *oaf.Cluster {
	t.Helper()
	c := oaf.NewCluster(oaf.Config{Seed: 1})
	if err := c.AddHost("hostA"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTarget("hostA", "nqn.demo", oaf.TargetConfig{SSDCapacity: 256 << 20, RetainData: true}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQuickstartFlow(t *testing.T) {
	c := cluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		if !q.SharedMemory {
			t.Error("co-located connection should negotiate shared memory")
		}
		payload := bytes.Repeat([]byte{7}, 8192)
		if _, err := q.Write(0, payload); err != nil {
			return err
		}
		res, err := q.Read(0, 8192)
		if err != nil {
			return err
		}
		if !bytes.Equal(res.Data, payload) {
			t.Error("payload mismatch")
		}
		if res.Latency <= 0 || res.DeviceTime <= 0 {
			t.Errorf("timing: %+v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Now() <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestRemoteHostFallsBackToTCP(t *testing.T) {
	c := cluster(t)
	if err := c.AddHost("hostB"); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.On("hostB").Connect("nqn.demo", oaf.ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		if q.SharedMemory {
			t.Error("remote connection must not use shared memory")
		}
		_, err = q.WriteModeled(0, 128<<10)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllFabricsConnect(t *testing.T) {
	for _, f := range []oaf.Fabric{
		oaf.FabricAdaptive, oaf.FabricTCP10G, oaf.FabricTCP25G,
		oaf.FabricTCP100G, oaf.FabricRDMA56G, oaf.FabricRoCE100G,
	} {
		c := cluster(t)
		err := c.Run(func(ctx *oaf.Ctx) error {
			q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{Fabric: f, QueueDepth: 8})
			if err != nil {
				return err
			}
			defer q.Close()
			_, err = q.ReadModeled(0, 64<<10)
			return err
		})
		if err != nil {
			t.Fatalf("fabric %v: %v", f, err)
		}
	}
}

func TestAsyncPipelining(t *testing.T) {
	c := cluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{QueueDepth: 16})
		if err != nil {
			return err
		}
		defer q.Close()
		var asyncs []*oaf.Async
		for i := 0; i < 32; i++ {
			asyncs = append(asyncs, q.ReadAsync(int64(i)*4096, 4096))
		}
		for _, a := range asyncs {
			if _, err := q.Wait(a); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTasks(t *testing.T) {
	c := cluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		t1 := ctx.Go("writer", func(ctx *oaf.Ctx) error {
			q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{QueueDepth: 8})
			if err != nil {
				return err
			}
			defer q.Close()
			for i := 0; i < 10; i++ {
				if _, err := q.WriteModeled(int64(i)*(64<<10), 64<<10); err != nil {
					return err
				}
			}
			return nil
		})
		ctx.Sleep(time.Millisecond)
		return t1.Wait(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorsSurface(t *testing.T) {
	c := cluster(t)
	if err := c.AddHost("hostA"); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if err := c.AddTarget("nohost", "x", oaf.TargetConfig{}); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := c.AddTarget("hostA", "nqn.demo", oaf.TargetConfig{}); err == nil {
		t.Fatal("duplicate target accepted")
	}
	err := c.Run(func(ctx *oaf.Ctx) error {
		if _, err := ctx.Connect("nqn.missing", oaf.ConnectOptions{}); err == nil {
			t.Error("unknown target accepted")
		}
		q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		if _, err := q.ReadModeled(1<<40, 4096); err == nil {
			t.Error("out-of-range read accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDesignsSelectable(t *testing.T) {
	for _, d := range []oaf.Design{oaf.DesignBaseline, oaf.DesignLockFree, oaf.DesignFlowCtl, oaf.DesignZeroCopy} {
		c := cluster(t)
		err := c.Run(func(ctx *oaf.Ctx) error {
			q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{Design: d, QueueDepth: 8})
			if err != nil {
				return err
			}
			defer q.Close()
			if !q.SharedMemory {
				t.Errorf("design %v: expected shared memory", d)
			}
			if _, err := q.WriteModeled(0, 256<<10); err != nil {
				return err
			}
			_, err = q.ReadModeled(0, 256<<10)
			return err
		})
		if err != nil {
			t.Fatalf("design %v: %v", d, err)
		}
	}
}

func TestRunUntilBoundsVirtualTime(t *testing.T) {
	c := cluster(t)
	err := c.RunUntil(5*time.Millisecond, func(ctx *oaf.Ctx) error {
		ctx.Sleep(time.Hour) // would run forever without the bound
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("clock %v, want 5ms", c.Now())
	}
}

func TestRunWorkloadSummary(t *testing.T) {
	c := cluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{QueueDepth: 16})
		if err != nil {
			return err
		}
		defer q.Close()
		res, err := ctx.RunWorkload(q, oaf.Workload{
			Sequential: true, ReadPercent: 100, IOSize: 128 << 10,
			QueueDepth: 16, Duration: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		if res.GBps <= 0 || res.IOPS <= 0 || res.AvgLatency <= 0 {
			t.Errorf("empty result: %+v", res)
		}
		if res.P9999 < res.P99 {
			t.Error("percentiles inverted")
		}
		if len(res.CDF) == 0 {
			t.Error("missing CDF")
		}
		if res.DeviceTime+res.FabricTime+res.OtherTime > res.AvgLatency+time.Microsecond {
			t.Error("breakdown exceeds total")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQueueDiscover(t *testing.T) {
	c := cluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{QueueDepth: 4})
		if err != nil {
			return err
		}
		defer q.Close()
		subs, err := q.Discover()
		if err != nil {
			return err
		}
		if len(subs) != 1 || subs[0].NQN != "nqn.demo" || subs[0].Transport != "adaptive" {
			t.Errorf("discovery: %+v", subs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncryptedSHMOption(t *testing.T) {
	c := cluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{EncryptSHM: true, QueueDepth: 8})
		if err != nil {
			return err
		}
		defer q.Close()
		if !q.SharedMemory {
			t.Error("expected shared memory")
		}
		payload := bytes.Repeat([]byte{0x3C}, 16384)
		if _, err := q.Write(0, payload); err != nil {
			return err
		}
		res, err := q.Read(0, len(payload))
		if err != nil {
			return err
		}
		if !bytes.Equal(res.Data, payload) {
			t.Error("payload corrupted through encrypted channel")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConnectMultiSpreadsIO(t *testing.T) {
	c := cluster(t)
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.ConnectMulti("nqn.demo", oaf.ConnectOptions{Queues: 4, QueueDepth: 8})
		if err != nil {
			return err
		}
		defer q.Close()
		if !q.SharedMemory {
			t.Error("multi-queue connection should keep shared memory")
		}
		var asyncs []*oaf.Async
		for i := 0; i < 32; i++ {
			asyncs = append(asyncs, q.ReadAsyncModeled(int64(i)*4096, 4096))
		}
		for _, a := range asyncs {
			if _, err := q.Wait(a); err != nil {
				return err
			}
		}
		// The controller enforces the discovered capacity.
		if _, err := q.ReadModeled(1<<40, 4096); err == nil {
			t.Error("capacity bound not enforced")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
