package oaf

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// replicatedCluster registers n member targets "nqn.rep.<i>" on separate
// hosts (remote pairs: the replication layer rides optimized TCP).
func replicatedCluster(t *testing.T, seed int64, n int) *Cluster {
	t.Helper()
	c := NewCluster(Config{Seed: seed})
	if err := c.AddHost("app"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("stor%d", i)
		if err := c.AddHost(host); err != nil {
			t.Fatal(err)
		}
		if err := c.AddTarget(host, fmt.Sprintf("nqn.rep.%d", i), TargetConfig{
			SSDCapacity: 64 << 20, RetainData: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestConnectReplicatedQuorumReadYourWrite(t *testing.T) {
	c := replicatedCluster(t, 11, 3)
	err := c.Run(func(ctx *Ctx) error {
		rq, err := ctx.On("app").ConnectReplicated("nqn.rep", ReplicaOptions{
			Replicas: 3, WriteQuorum: 2, ExtentSize: 64 << 10,
		})
		if err != nil {
			return err
		}
		defer rq.Close()
		for i := 0; i < 8; i++ {
			off := int64(i) * (64 << 10)
			data := bytes.Repeat([]byte{byte(0x30 + i)}, 8192)
			if _, err := rq.Write(off, data); err != nil {
				return fmt.Errorf("write %d: %w", i, err)
			}
			res, err := rq.Read(off, len(data))
			if err != nil {
				return fmt.Errorf("read %d: %w", i, err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Errorf("offset %d: read-your-write violated", off)
			}
		}
		st := rq.Stats()
		if st.Writes != 8 || st.Reads != 8 {
			t.Errorf("stats writes=%d reads=%d, want 8/8", st.Writes, st.Reads)
		}
		if st.Replicas != 3 || st.WriteQuorum != 2 {
			t.Errorf("effective config R=%d W=%d", st.Replicas, st.WriteQuorum)
		}
		for i, h := range rq.MemberHealth() {
			if h != HealthHealthy {
				t.Errorf("member %d health = %v", i, h)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The replication layer's state rides the cluster snapshot.
	snap := c.Snapshot()
	if len(snap.Replicated) != 1 {
		t.Fatalf("snapshot has %d replicated namespaces, want 1", len(snap.Replicated))
	}
	if snap.Replicated[0].Namespace != "nqn.rep" {
		t.Errorf("snapshot namespace = %q", snap.Replicated[0].Namespace)
	}
	if got := snap.Telemetry.Counters["cluster.writes"]; got != 8 {
		t.Errorf("telemetry cluster.writes = %d, want 8", got)
	}
}

func TestConnectReplicatedAutoDiscoversMembers(t *testing.T) {
	c := replicatedCluster(t, 12, 4)
	err := c.Run(func(ctx *Ctx) error {
		rq, err := ctx.On("app").ConnectReplicated("nqn.rep", ReplicaOptions{})
		if err != nil {
			return err
		}
		defer rq.Close()
		if got := len(rq.Members()); got != 4 {
			t.Errorf("auto-discovered %d members, want 4", got)
		}
		if st := rq.Stats(); st.Seats != 4 {
			t.Errorf("seats = %d, want 4", st.Seats)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReplicatedSurvivesScheduledTargetCrash: with R=3 W=2 over four
// members, a scheduled crash of one target mid-workload must not lose a
// single acked write or serve a stale read; the spare-less cluster heals
// the revived member through background re-replication, and the fault
// log rides the snapshot.
func TestReplicatedSurvivesScheduledTargetCrash(t *testing.T) {
	const extent = 64 << 10
	c := replicatedCluster(t, 13, 4)
	if err := c.ScheduleTargetCrash("nqn.rep.1", 2*time.Millisecond, 8*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	acked := map[int64][]byte{}
	err := c.Run(func(ctx *Ctx) error {
		rq, err := ctx.On("app").ConnectReplicated("nqn.rep", ReplicaOptions{
			Replicas: 3, WriteQuorum: 2, ExtentSize: extent,
		})
		if err != nil {
			return err
		}
		defer rq.Close()
		for i := 0; i < 40; i++ {
			off := int64(i%10) * extent
			data := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			// App-level retry: a write that fails (mid-crash quorum dip)
			// was never acked and may be retried; only acked writes are
			// held to the no-loss bar.
			var werr error
			for attempt := 0; attempt < 20; attempt++ {
				if _, werr = rq.Write(off, data); werr == nil {
					break
				}
				ctx.Sleep(200 * time.Microsecond)
			}
			if werr != nil {
				return fmt.Errorf("write %d never acked: %w", i, werr)
			}
			acked[off] = data
			// Read-your-write holds immediately, even mid-failover.
			res, err := rq.Read(off, len(data))
			if err != nil {
				return fmt.Errorf("read-after-write %d: %w", i, err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Errorf("write %d: stale read at offset %d", i, off)
			}
			ctx.Sleep(150 * time.Microsecond)
		}
		// Let the restarted target be re-detected and rebuilt, then
		// verify every acked write one final time.
		ctx.Sleep(15 * time.Millisecond)
		for off, data := range acked {
			res, err := rq.Read(off, len(data))
			if err != nil {
				return fmt.Errorf("final read at %d: %w", off, err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Errorf("final read at %d lost acked bytes", off)
			}
		}
		st := rq.Stats()
		if st.ReplicaDowns == 0 {
			t.Error("crash was never detected as a replica death")
		}
		if st.StaleExtents != 0 {
			t.Errorf("rebuild backlog = %d after heal window, want 0", st.StaleExtents)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if len(snap.Faults) < 2 {
		t.Fatalf("fault log has %d events, want crash+restart", len(snap.Faults))
	}
	if snap.Faults[0].Kind != "target-crash" || snap.Faults[1].Kind != "target-restart" {
		t.Errorf("fault log = %v", snap.Faults)
	}
}
