package oaf

import (
	"fmt"
	"time"

	"nvmeoaf/internal/cluster"
	"nvmeoaf/internal/transport"
)

// ReplicaOptions configures a replicated namespace: N member targets
// (named "<prefix>.0" .. "<prefix>.<N-1>"), R copies of each extent, and
// a write quorum W.
type ReplicaOptions struct {
	// Targets is the member-target count N (+ spares). 0 auto-discovers
	// consecutively numbered "<prefix>.<i>" targets.
	Targets int
	// Replicas is R, copies kept of every extent (default 2).
	Replicas int
	// WriteQuorum is W, replica acks a write completes at (default
	// majority of R).
	WriteQuorum int
	// Spares holds this many members out of the placement ring as warm
	// spares: a dead member's seat passes to a spare and re-replication
	// rebuilds its extents from survivors (default 0).
	Spares int
	// ExtentSize is the sharding granularity (default 128 KiB).
	ExtentSize int64
	// ProbeInterval is the keep-alive probing period per member (default
	// 200µs of virtual time); 0 < ProbeInterval detects crashed targets
	// between I/Os.
	ProbeInterval time.Duration
	// ProbeMisses is the consecutive typed-failure count that declares a
	// member dead (default 2).
	ProbeMisses int
	// Connect tunes each member connection. CommandTimeout and
	// MaxRetries default to crash-tolerant values when zero, so a dead
	// member yields typed errors instead of hanging the namespace.
	Connect ConnectOptions
}

// ReplicatedQueue is the Queue-shaped facade of a replicated namespace:
// Read/Write/Flush route through the placement/replication layer, so
// application code written against Queue runs unchanged on a survivable,
// self-healing namespace.
type ReplicatedQueue struct {
	*Queue
	cl      *cluster.Cluster
	members []*Queue
}

// Members exposes the per-target member connections.
func (rq *ReplicatedQueue) Members() []*Queue { return rq.members }

// Stats captures the replication layer's state: member health, seat
// occupancy, quorum/failover counters, and the live rebuild backlog.
func (rq *ReplicatedQueue) Stats() cluster.Stats { return rq.cl.Stats() }

// MemberHealth reports each member connection's transport-level health,
// index-aligned with Members().
func (rq *ReplicatedQueue) MemberHealth() []Health {
	out := make([]Health, len(rq.members))
	for i, m := range rq.members {
		out[i] = transport.HealthOf(m.inner)
	}
	return out
}

// WaitSettled blocks the application until the next time background
// re-replication drains the rebuild backlog (every replica holds the
// committed version of every extent).
func (rq *ReplicatedQueue) WaitSettled(ctx *Ctx) { rq.cl.WaitSettled(ctx.proc) }

// ConnectReplicated assembles a replicated namespace over the targets
// named "<prefix>.0" .. "<prefix>.<Targets-1>" (each registered with
// AddTarget, typically on distinct hosts): one connection per member,
// sharded by consistent hashing of extents, each extent replicated
// opts.Replicas ways, writes acknowledged at the write quorum, reads
// routed to up-to-date replicas with failover. Member death is detected
// by keep-alive probes and typed errors; spares inherit dead members'
// placement seats and background re-replication heals the namespace.
func (ctx *Ctx) ConnectReplicated(nqnPrefix string, opts ReplicaOptions) (*ReplicatedQueue, error) {
	c := ctx.cluster
	n := opts.Targets
	if n <= 0 {
		for {
			if _, ok := c.targets[memberNQN(nqnPrefix, n)]; !ok {
				break
			}
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("oaf: no targets named %q found", memberNQN(nqnPrefix, 0))
	}
	if opts.Spares < 0 || opts.Spares >= n {
		return nil, fmt.Errorf("oaf: spares must be in [0, %d)", n)
	}

	single := opts.Connect
	single.Queues = 1
	// Crash tolerance needs bounded commands that fail FAST: the
	// replication layer has its own redundancy, so a dead member should
	// surface typed errors quickly (triggering failover and rebuild)
	// rather than mask the outage behind long per-member retry loops.
	if single.CommandTimeout <= 0 {
		single.CommandTimeout = 500 * time.Microsecond
	}
	if single.MaxRetries <= 0 {
		single.MaxRetries = 1
	}
	if single.RetryBackoff <= 0 {
		single.RetryBackoff = 100 * time.Microsecond
	}
	probe := opts.ProbeInterval
	if probe <= 0 {
		probe = 200 * time.Microsecond
	}

	members := make([]cluster.Member, 0, n)
	queues := make([]*Queue, 0, n)
	retain := false
	for i := 0; i < n; i++ {
		nqn := memberNQN(nqnPrefix, i)
		te, ok := c.targets[nqn]
		if !ok {
			return nil, fmt.Errorf("oaf: replicated namespace %q needs target %q", nqnPrefix, nqn)
		}
		retain = retain || te.cfg.RetainData
		q, err := ctx.connectOne(nqn, single)
		if err != nil {
			for _, m := range queues {
				m.Close()
			}
			return nil, fmt.Errorf("oaf: replica member %d: %w", i, err)
		}
		queues = append(queues, q)
		members = append(members, cluster.Member{Name: nqn, Queue: q.inner})
	}

	cl, err := cluster.New(c.engine, members, cluster.Options{
		Seats:         n - opts.Spares,
		Replicas:      opts.Replicas,
		WriteQuorum:   opts.WriteQuorum,
		ExtentSize:    opts.ExtentSize,
		ProbeInterval: probe,
		ProbeMisses:   opts.ProbeMisses,
		RetainData:    retain,
		Namespace:     nqnPrefix,
		Telemetry:     c.tel,
	})
	if err != nil {
		for _, m := range queues {
			m.Close()
		}
		return nil, err
	}
	c.replicated = append(c.replicated, cl)

	// cluster.Cluster implements transport.Queue, so it slots straight in
	// as the facade's inner queue (Close tears down the cluster and every
	// member connection).
	facade := &Queue{
		inner: cl, ctx: ctx, tracer: queues[0].tracer,
		target: nqnPrefix,
	}
	return &ReplicatedQueue{Queue: facade, cl: cl, members: queues}, nil
}

func memberNQN(prefix string, i int) string { return fmt.Sprintf("%s.%d", prefix, i) }
