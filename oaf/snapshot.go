package oaf

import (
	"encoding/json"

	"nvmeoaf/internal/cache"
	"nvmeoaf/internal/cluster"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/faults"
	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/telemetry"
)

// QueueSnapshot is the per-connection view of the observability layer:
// which data path the queue runs on and its recovery counters.
type QueueSnapshot struct {
	Target string `json:"target"`
	// Tenant is the tenant this queue submits for ("" = untenanted).
	Tenant string `json:"tenant,omitempty"`
	// Path is "shm" when the adaptive fabric negotiated shared memory,
	// "tcp" otherwise.
	Path            string `json:"path"`
	Completed       int64  `json:"completed"`
	Retries         int64  `json:"retries,omitempty"`
	Timeouts        int64  `json:"timeouts,omitempty"`
	Failovers       int64  `json:"failovers,omitempty"`
	Reconnects      int64  `json:"reconnects,omitempty"`
	LateMsgs        int64  `json:"late_msgs,omitempty"`
	SHMPayloadBytes int64  `json:"shm_payload_bytes,omitempty"`
}

// Snapshot captures this queue's counters at the current virtual time.
func (q *Queue) Snapshot() QueueSnapshot {
	s := QueueSnapshot{Target: q.target, Tenant: q.tenant, Path: "tcp"}
	if q.SharedMemory {
		s.Path = "shm"
	}
	switch cl := q.inner.(type) {
	case *core.Client:
		// Report the live data path: a mid-stream failover (e.g. revoked
		// region) moves the queue to TCP after connect time.
		if !cl.SHMEnabled() {
			s.Path = "tcp"
		}
		s.Completed = cl.Completed
		s.Retries = cl.Retries
		s.Timeouts = cl.Timeouts
		s.Failovers = cl.Failovers
		s.Reconnects = cl.Reconnects
		s.LateMsgs = cl.LateMsgs
		s.SHMPayloadBytes = cl.SHMPayloadBytes
	case *tcp.Client:
		s.Completed = cl.Completed
	}
	return s
}

// GroupSnapshot is the merged view of a QueueGroup: per-member snapshots
// plus their sum, with the path reflecting the group's mix ("shm", "tcp",
// or "mixed" when a member degraded independently).
type GroupSnapshot struct {
	Target  string          `json:"target"`
	Queues  int             `json:"queues"`
	Merged  QueueSnapshot   `json:"merged"`
	Members []QueueSnapshot `json:"members"`
}

// Snapshot merges the member queues' counters at the current virtual time.
func (g *QueueGroup) Snapshot() GroupSnapshot {
	snap := GroupSnapshot{Target: g.target, Queues: len(g.members)}
	shm, tcp := 0, 0
	for _, m := range g.members {
		ms := m.Snapshot()
		snap.Members = append(snap.Members, ms)
		snap.Merged.Completed += ms.Completed
		snap.Merged.Retries += ms.Retries
		snap.Merged.Timeouts += ms.Timeouts
		snap.Merged.Failovers += ms.Failovers
		snap.Merged.Reconnects += ms.Reconnects
		snap.Merged.LateMsgs += ms.LateMsgs
		snap.Merged.SHMPayloadBytes += ms.SHMPayloadBytes
		if ms.Path == "shm" {
			shm++
		} else {
			tcp++
		}
	}
	snap.Merged.Target = g.target
	switch {
	case tcp == 0:
		snap.Merged.Path = "shm"
	case shm == 0:
		snap.Merged.Path = "tcp"
	default:
		snap.Merged.Path = "mixed"
	}
	return snap
}

// ClusterSnapshot aggregates the fabric-wide observability layer: the
// shared telemetry sink (counters, latency histograms, path-decision
// trace), every connected queue, and the target data-pool accounting.
type ClusterSnapshot struct {
	TimeNs    int64              `json:"time_ns"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
	Queues    []QueueSnapshot    `json:"queues,omitempty"`
	Pools     []mempool.Stats    `json:"pools,omitempty"`
	// Caches reports every target-side block cache (hit/miss/dirty
	// accounting and the live admission hit-rate EWMA).
	Caches []cache.Stats `json:"caches,omitempty"`
	// Replicated reports every replicated namespace: member health, seat
	// occupancy, quorum counters, and the rebuild backlog.
	Replicated []cluster.Stats `json:"replicated,omitempty"`
	// Faults is the injector's applied-event log (empty when no faults
	// were scheduled), so post-mortems can correlate telemetry dips with
	// the faults that caused them.
	Faults []faults.Event `json:"faults,omitempty"`
	// Tenants is the per-tenant telemetry (submits, completions, bytes,
	// throttles, borrow/lend, latency and token-wait distributions),
	// keyed by tenant name. It aliases Telemetry.Tenants for direct
	// access and is elided from the JSON to avoid double-marshaling.
	Tenants map[string]telemetry.TenantSnapshot `json:"-"`
	// QoS merges the token-ledger accounting (taken/borrowed/lent/
	// throttles) across every enforcement point, by tenant.
	QoS []qos.TenantStats `json:"qos,omitempty"`
}

// Telemetry exposes the cluster's shared sink, shared by every
// connection and target created on this cluster.
func (c *Cluster) Telemetry() *telemetry.Sink { return c.tel }

// Snapshot captures the whole cluster's observability state.
func (c *Cluster) Snapshot() ClusterSnapshot {
	snap := ClusterSnapshot{
		TimeNs: int64(c.engine.Now()),
		// Stamped with virtual time so two snapshots feed
		// telemetry.Snapshot.DeltaSince directly (interval rates).
		Telemetry: c.tel.SnapshotAt(int64(c.engine.Now())),
	}
	snap.Tenants = snap.Telemetry.Tenants
	snap.QoS = c.QoSStats()
	for _, q := range c.queues {
		snap.Queues = append(snap.Queues, q.Snapshot())
	}
	for _, p := range c.pools {
		snap.Pools = append(snap.Pools, p.Stats())
	}
	for _, ca := range c.caches {
		snap.Caches = append(snap.Caches, ca.Stats())
	}
	for _, cl := range c.replicated {
		snap.Replicated = append(snap.Replicated, cl.Stats())
	}
	if c.inj != nil {
		snap.Faults = append(snap.Faults, c.inj.Log...)
	}
	return snap
}

// MarshalJSON renders the snapshot (ClusterSnapshot is plain data; this
// keeps the two snapshot types symmetric for exporters).
func (s ClusterSnapshot) MarshalJSON() ([]byte, error) {
	type alias ClusterSnapshot
	return json.Marshal(alias(s))
}
