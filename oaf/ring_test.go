package oaf

import (
	"bytes"
	"testing"
)

// The public quick-start flow from the README: claim a registered
// buffer, push, submit the train, reap, release — over a shared-memory
// adaptive connection (the native, allocation-free path).
func TestRingQuickstartNative(t *testing.T) {
	c := NewCluster(Config{Seed: 21})
	if err := c.AddHost("hostA"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTarget("hostA", "nqn.ring", TargetConfig{
		SSDCapacity: 64 << 20, RetainData: true,
	}); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(ctx *Ctx) error {
		q, err := ctx.Connect("nqn.ring", ConnectOptions{QueueDepth: 64})
		if err != nil {
			return err
		}
		defer q.Close()
		r := q.Ring(RingOptions{SQSize: 16, BufSize: 8192})
		if !r.Native() {
			t.Error("adaptive connection should take the native ring path")
		}

		// Write a train of 8 buffers, each filled in place (zero-copy:
		// the bytes written here are the bytes on the wire).
		for i := 0; i < 8; i++ {
			buf, ok := r.Claim()
			if !ok {
				t.Fatal("claim failed with a fresh arena")
			}
			pat := buf.Bytes()[:8192]
			for j := range pat {
				pat[j] = byte(0x40 + i)
			}
			if !r.Push(SQE{Write: true, Offset: int64(i) * 8192, Size: 8192, Buf: buf, UserData: uint64(i)}) {
				t.Fatal("push failed with an empty SQ")
			}
		}
		if got := r.Submit(); got != 8 {
			t.Fatalf("submitted %d, want 8", got)
		}
		var cq [16]CQE
		n := r.Reap(cq[:], 8)
		if n != 8 {
			t.Fatalf("reaped %d, want 8", n)
		}
		for _, e := range cq[:n] {
			if err := e.Err(); err != nil {
				t.Fatalf("write %d failed: %v", e.UserData, err)
			}
			if e.Latency <= 0 {
				t.Fatalf("write %d completed with no latency", e.UserData)
			}
			r.Release(e.Buf)
		}

		// Read the same extents back through the ring and verify the
		// payloads land in the claimed buffers.
		for i := 0; i < 8; i++ {
			buf, _ := r.Claim()
			r.Push(SQE{Offset: int64(i) * 8192, Size: 8192, Buf: buf, UserData: uint64(i)})
		}
		r.Submit()
		if got := r.Reap(cq[:], 8); got != 8 {
			t.Fatalf("read reap = %d, want 8", got)
		}
		for _, e := range cq[:8] {
			want := bytes.Repeat([]byte{byte(0x40 + e.UserData)}, 8192)
			if !bytes.Equal(e.Buf.Bytes()[:8192], want) {
				t.Fatalf("read %d payload mismatch", e.UserData)
			}
			r.Release(e.Buf)
		}
		r.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The ring.* telemetry group must surface in the cluster snapshot.
	snap := c.Snapshot()
	if got := snap.Telemetry.Counters["ring.submits"]; got != 16 {
		t.Fatalf("snapshot ring.submits = %d, want 16", got)
	}
	if got := snap.Telemetry.Counters["ring.reaps"]; got != 16 {
		t.Fatalf("snapshot ring.reaps = %d, want 16", got)
	}
}

// Rings compose with the replicated facade: same semantics over the
// placement/replication router, driven through its batch path.
func TestRingOverReplicatedNamespace(t *testing.T) {
	c := replicatedCluster(t, 22, 3)
	err := c.Run(func(ctx *Ctx) error {
		rq, err := ctx.On("app").ConnectReplicated("nqn.rep", ReplicaOptions{
			Replicas: 3, WriteQuorum: 2, ExtentSize: 64 << 10,
		})
		if err != nil {
			return err
		}
		defer rq.Close()
		r := rq.Ring(RingOptions{SQSize: 8, BufSize: 4096})
		if r.Native() {
			t.Error("replicated router should use the batch fallback, not the native path")
		}
		for i := 0; i < 8; i++ {
			buf, _ := r.Claim()
			copy(buf.Bytes(), bytes.Repeat([]byte{byte(i + 1)}, 4096))
			r.Push(SQE{Write: true, Offset: int64(i) * (64 << 10), Size: 4096, Buf: buf, UserData: uint64(i)})
		}
		if got := r.Submit(); got != 8 {
			t.Fatalf("submitted %d, want 8", got)
		}
		var cq [8]CQE
		if got := r.Reap(cq[:], 8); got != 8 {
			t.Fatalf("reaped %d, want 8", got)
		}
		for _, e := range cq {
			if err := e.Err(); err != nil {
				t.Fatalf("replicated ring write %d: %v", e.UserData, err)
			}
			r.Release(e.Buf)
		}
		// Read-your-write through the normal API confirms the ring's
		// writes actually replicated.
		for i := 0; i < 8; i++ {
			res, err := rq.Read(int64(i)*(64<<10), 4096)
			if err != nil {
				return err
			}
			if res.Data[0] != byte(i+1) {
				t.Fatalf("extent %d holds %#x, want %#x", i, res.Data[0], byte(i+1))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Rings compose with striped queue groups (ConnectGroup): entries split
// across members by offset through the striped batch path.
func TestRingOverQueueGroup(t *testing.T) {
	c := NewCluster(Config{Seed: 23})
	if err := c.AddHost("hostA"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTarget("hostA", "nqn.grp", TargetConfig{
		SSDCapacity: 64 << 20, RetainData: true,
	}); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(ctx *Ctx) error {
		g, err := ctx.ConnectGroup("nqn.grp", ConnectOptions{Queues: 2, StripeUnit: 4096})
		if err != nil {
			return err
		}
		defer g.Close()
		r := g.Ring(RingOptions{SQSize: 8, BufSize: 16384})
		if r.Native() {
			t.Error("striped group should use the batch fallback, not the native path")
		}
		buf, _ := r.Claim()
		for j := range buf.Bytes()[:16384] {
			buf.Bytes()[j] = 0x5C
		}
		// One 16 KiB write striped 4 ways across the 2 members.
		r.Push(SQE{Write: true, Offset: 0, Size: 16384, Buf: buf, UserData: 9})
		r.Submit()
		var cq [1]CQE
		if r.Reap(cq[:], 1) != 1 {
			t.Fatal("striped ring write never completed")
		}
		if err := cq[0].Err(); err != nil {
			t.Fatalf("striped ring write: %v", err)
		}
		r.Release(cq[0].Buf)
		res, err := g.Read(0, 16384)
		if err != nil {
			return err
		}
		if res.Data[0] != 0x5C || res.Data[16383] != 0x5C {
			t.Fatal("striped ring write payload did not land")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
