package oaf

import (
	"bytes"
	"fmt"
	"testing"

	"nvmeoaf/internal/core"
)

// cachedCluster is a one-host cluster whose target fronts its SSD with a
// 16 MiB write-back block cache, retaining real bytes end to end.
func cachedCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c := NewCluster(Config{Seed: seed})
	if err := c.AddHost("hostA"); err != nil {
		t.Fatal(err)
	}
	cfg := TargetConfig{SSDCapacity: 64 << 20, RetainData: true}.WithCache(16<<20, CacheWriteBack)
	if err := c.AddTarget("hostA", "nqn.cached", cfg); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRevokeFailoverPreservesReadYourWriteThroughCache: writes absorbed
// by the write-back cache over the shared-memory path must stay visible
// after the region is revoked mid-stream and the queue fails over to
// TCP — the cache sits behind the transport, so the data path switch
// must not lose or stale any acknowledged write.
func TestRevokeFailoverPreservesReadYourWriteThroughCache(t *testing.T) {
	c := cachedCluster(t, 11)
	err := c.Run(func(ctx *Ctx) error {
		q, err := ctx.Connect("nqn.cached", ConnectOptions{QueueDepth: 16})
		if err != nil {
			return err
		}
		if !q.SharedMemory {
			t.Fatal("co-located pair did not negotiate shared memory")
		}
		// Dirty a working set over the SHM path.
		written := make([][]byte, 8)
		for i := range written {
			written[i] = bytes.Repeat([]byte{byte(0x80 + i)}, 4096)
			if _, err := q.Write(int64(i)*4096, written[i]); err != nil {
				return fmt.Errorf("shm write %d: %w", i, err)
			}
		}
		// Rip the region out from under the connection.
		q.inner.(*core.Client).Region().Revoke()
		// Every acknowledged write must read back over the TCP path:
		// cached lines from DRAM, and a deliberately large read bypasses
		// the cache and exercises the dirty-overlay on the backing data.
		for i, want := range written {
			res, err := q.Read(int64(i)*4096, 4096)
			if err != nil {
				return fmt.Errorf("read %d after revoke: %w", i, err)
			}
			if !bytes.Equal(res.Data, want) {
				t.Errorf("offset %d: read-your-write violated across failover", i*4096)
			}
		}
		big, err := q.Read(0, 8*4096)
		if err != nil {
			return fmt.Errorf("span read after revoke: %w", err)
		}
		for i, want := range written {
			if !bytes.Equal(big.Data[i*4096:(i+1)*4096], want) {
				t.Errorf("span read offset %d stale after failover", i*4096)
			}
		}
		if q.Snapshot().Path != "tcp" {
			t.Errorf("queue path = %q after revoke, want tcp", q.Snapshot().Path)
		}
		if q.Snapshot().Failovers == 0 {
			t.Error("revoked queue recorded no failover")
		}
		// The durability barrier still works on the degraded path.
		if _, err := q.Flush(); err != nil {
			return fmt.Errorf("flush after failover: %w", err)
		}
		q.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := c.CacheStats("nqn.cached")
	if !ok {
		t.Fatal("cached target reports no cache stats")
	}
	if st.Hits == 0 {
		t.Error("post-failover reads never hit the cache")
	}
	if st.DirtyBytes != 0 {
		t.Errorf("flush left %d dirty bytes", st.DirtyBytes)
	}
}

// TestClusterSnapshotReportsCache: the fabric-wide snapshot carries the
// cache accounting (counters and live admission EWMA) alongside queues,
// pools, and telemetry, so exporters see the cache without extra plumbing.
func TestClusterSnapshotReportsCache(t *testing.T) {
	c := cachedCluster(t, 3)
	err := c.Run(func(ctx *Ctx) error {
		q, err := ctx.Connect("nqn.cached", ConnectOptions{QueueDepth: 8})
		if err != nil {
			return err
		}
		data := bytes.Repeat([]byte{0x5A}, 4096)
		if _, err := q.Write(0, data); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if _, err := q.Read(0, 4096); err != nil {
				return err
			}
		}
		if _, err := q.Flush(); err != nil {
			return err
		}
		snap := ctx.cluster.Snapshot()
		if len(snap.Caches) != 1 {
			t.Fatalf("snapshot caches = %d, want 1", len(snap.Caches))
		}
		cs := snap.Caches[0]
		if cs.Hits == 0 {
			t.Error("snapshot shows no cache hits after repeated reads")
		}
		if cs.Mode != "write-back" {
			t.Errorf("snapshot cache mode = %q", cs.Mode)
		}
		if got := snap.Telemetry.Counters["cache.hit"]; got != cs.Hits {
			t.Errorf("telemetry cache.hit = %d, stats say %d", got, cs.Hits)
		}
		q.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
