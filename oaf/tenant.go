package oaf

import (
	"fmt"

	"nvmeoaf/internal/qos"
)

// SLO classifies a tenant's service objective. The tier steers the
// receive-path knobs of every connection the tenant opens (DESIGN.md
// §5l): latency-sensitive tenants busy-poll with shallow trains,
// throughput and batch tenants run interrupt-mode with deep coalescing.
type SLO int

// SLO tiers.
const (
	// SLONone applies no receive-path steering (connection options rule).
	SLONone SLO = iota
	// SLOLatencySensitive favors tail latency: busy-poll, batch=1.
	SLOLatencySensitive
	// SLOThroughput favors bandwidth: interrupt mode, deep trains.
	SLOThroughput
	// SLOBatch is background/bulk work: interrupt mode, deepest trains.
	SLOBatch
)

func (s SLO) internal() qos.SLO {
	switch s {
	case SLOLatencySensitive:
		return qos.LatencySensitive
	case SLOThroughput:
		return qos.Throughput
	case SLOBatch:
		return qos.Batch
	default:
		return qos.SLONone
	}
}

// String names the tier ("latency", "throughput", "batch", "none").
func (s SLO) String() string { return s.internal().String() }

// TenantConfig registers one tenant with the cluster's QoS layer.
type TenantConfig struct {
	// Name identifies the tenant on every enforcement point (no commas).
	Name string
	// SLO steers receive-path tuning for the tenant's connections.
	SLO SLO
	// RateMBps is the token-refill rate in MiB/s at EACH enforcement
	// point (0 = unlimited: the tenant is registered for attribution and
	// may lend its burst, but is never throttled).
	RateMBps int
	// BurstBytes bounds the token bucket (default max(256 KiB, rate/100)).
	BurstBytes int64
}

// AddTenant registers a tenant. Tenants must be registered before the
// connections that will carry their traffic are opened; a cluster with
// no tenants registered runs the exact untenanted wire protocol.
func (c *Cluster) AddTenant(tc TenantConfig) error {
	if c.qosReg == nil {
		c.qosReg = qos.NewRegistry()
	}
	return c.qosReg.Add(qos.Spec{
		Name:       tc.Name,
		SLO:        tc.SLO.internal(),
		RateBps:    int64(tc.RateMBps) << 20,
		BurstBytes: tc.BurstBytes,
	})
}

// TenantNames lists the registered tenants in registration order.
func (c *Cluster) TenantNames() []string { return c.qosReg.Names() }

// hostShaper returns the per-host enforcement point (one token ledger
// per physical host, shared by every queue the host's applications
// open), nil when no tenant is registered.
func (c *Cluster) hostShaper(hostName string) *qos.Shaper {
	if c.qosReg == nil || c.qosReg.Len() == 0 {
		return nil
	}
	if c.hostQoS == nil {
		c.hostQoS = make(map[string]*qos.Shaper)
	}
	sh := c.hostQoS[hostName]
	if sh == nil {
		sh = qos.NewShaper("host:"+hostName, c.qosReg, c.tel)
		c.hostQoS[hostName] = sh
	}
	return sh
}

// targetShaper returns the target-side enforcement point for te (one
// ledger per storage service, shared by every connection serving it),
// nil unless the target opted into enforcement and tenants exist.
func (c *Cluster) targetShaper(te *tgtEntry, nqn string) *qos.Shaper {
	if !te.cfg.QoSEnforce || c.qosReg == nil || c.qosReg.Len() == 0 {
		return nil
	}
	if te.shaper == nil {
		te.shaper = qos.NewShaper("target:"+nqn, c.qosReg, c.tel)
	}
	return te.shaper
}

// shapers lists every live enforcement point in deterministic order.
func (c *Cluster) shapers() []*qos.Shaper {
	var out []*qos.Shaper
	for _, name := range sortedKeys(c.hostQoS) {
		out = append(out, c.hostQoS[name])
	}
	for _, nqn := range sortedKeys(c.targets) {
		if te := c.targets[nqn]; te.shaper != nil {
			out = append(out, te.shaper)
		}
	}
	return out
}

// QoSStats merges per-tenant token accounting (taken/borrowed/lent/
// throttles) across every enforcement point, sorted by tenant name.
func (c *Cluster) QoSStats() []qos.TenantStats {
	return qos.MergeStats(c.shapers()...)
}

// CheckQoS verifies the token-conservation invariant on every
// enforcement point: borrowing moves tokens, it never mints them. A
// non-nil error means the ledger leaked (a bug, not a tuning problem).
func (c *Cluster) CheckQoS() error {
	for _, sh := range c.shapers() {
		if err := sh.Conservation().Check(); err != nil {
			return fmt.Errorf("oaf: %s: %w", sh.Label(), err)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Insertion sort: the maps here hold a handful of hosts/targets.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
