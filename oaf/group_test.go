package oaf

import (
	"bytes"
	"fmt"
	"testing"

	"nvmeoaf/internal/core"
)

// groupCluster builds a one-host cluster (co-located pairs negotiate
// shared memory) with one retaining target.
func groupCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c := NewCluster(Config{Seed: seed})
	if err := c.AddHost("hostA"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTarget("hostA", "nqn.grp", TargetConfig{SSDCapacity: 64 << 20, RetainData: true}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGroupStripingFairnessAndOrdering: a QueueGroup spreads consecutive
// stripe units across every member (fairness) while each offset always
// maps to the same member, so a read issued right behind its write
// returns the written bytes (per-offset read-your-write ordering).
func TestGroupStripingFairnessAndOrdering(t *testing.T) {
	const unit = 64 << 10
	c := groupCluster(t, 7)
	err := c.Run(func(ctx *Ctx) error {
		g, err := ctx.ConnectGroup("nqn.grp", ConnectOptions{Queues: 4, StripeUnit: unit, QueueDepth: 32})
		if err != nil {
			return err
		}
		for i := 0; i < 16; i++ {
			off := int64(i) * unit
			data := bytes.Repeat([]byte{byte(0x10 + i)}, 4096)
			wa := g.WriteAsync(off, data)
			ra := g.ReadAsync(off, len(data)) // in flight behind the write on the same member
			if _, err := g.Wait(wa); err != nil {
				return fmt.Errorf("write %d: %w", i, err)
			}
			res, err := g.Wait(ra)
			if err != nil {
				return fmt.Errorf("read %d: %w", i, err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Errorf("offset %d: read-your-write violated under striping", off)
			}
		}
		var sum int64
		for i, m := range g.Members() {
			ms := m.Snapshot()
			if ms.Completed == 0 {
				t.Errorf("member %d received no I/O: striping is not spreading", i)
			}
			sum += ms.Completed
		}
		gs := g.Snapshot()
		if gs.Queues != 4 {
			t.Errorf("Queues = %d", gs.Queues)
		}
		if gs.Merged.Completed != sum {
			t.Errorf("merged snapshot lost completions: %d vs %d", gs.Merged.Completed, sum)
		}
		if gs.Merged.Path != "shm" {
			t.Errorf("co-located group path = %q", gs.Merged.Path)
		}
		g.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGroupMemberRevocationDegradesOnlyThatQueue: revoking one member's
// shared-memory region fails that member over to TCP while the others
// stay on shared memory, and the group keeps serving every stripe.
func TestGroupMemberRevocationDegradesOnlyThatQueue(t *testing.T) {
	const unit = 64 << 10
	c := groupCluster(t, 9)
	err := c.Run(func(ctx *Ctx) error {
		g, err := ctx.ConnectGroup("nqn.grp", ConnectOptions{Queues: 3, StripeUnit: unit, QueueDepth: 32})
		if err != nil {
			return err
		}
		for i, m := range g.Members() {
			if !m.SharedMemory {
				t.Fatalf("member %d did not negotiate shared memory", i)
			}
		}
		victim := g.Members()[1].inner.(*core.Client)
		victim.Region().Revoke()

		// Every stripe unit — including the victim's — keeps serving.
		for i := 0; i < 9; i++ {
			off := int64(i) * unit
			data := bytes.Repeat([]byte{byte(0x40 + i)}, 4096)
			if _, err := g.Write(off, data); err != nil {
				return fmt.Errorf("write %d after revoke: %w", i, err)
			}
			res, err := g.Read(off, len(data))
			if err != nil {
				return fmt.Errorf("read %d after revoke: %w", i, err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Errorf("offset %d corrupted after member revocation", off)
			}
		}
		snaps := make([]QueueSnapshot, len(g.Members()))
		for i, m := range g.Members() {
			snaps[i] = m.Snapshot()
		}
		if snaps[1].Path != "tcp" {
			t.Errorf("revoked member path = %q, want tcp", snaps[1].Path)
		}
		if snaps[1].Failovers == 0 {
			t.Error("revoked member recorded no failover")
		}
		for _, i := range []int{0, 2} {
			if snaps[i].Path != "shm" {
				t.Errorf("healthy member %d degraded too: path = %q", i, snaps[i].Path)
			}
			if snaps[i].Failovers != 0 {
				t.Errorf("healthy member %d recorded a failover", i)
			}
		}
		if got := g.Snapshot().Merged.Path; got != "mixed" {
			t.Errorf("group path = %q, want mixed", got)
		}
		// Health must single out the degraded member: the failed-over
		// queue reports Degraded, its peers Healthy, and the reads above
		// already proved a degraded member still serves its stripes.
		hs := g.MemberHealth()
		if hs[1] != HealthDegraded {
			t.Errorf("revoked member health = %v, want degraded", hs[1])
		}
		for _, i := range []int{0, 2} {
			if hs[i] != HealthHealthy {
				t.Errorf("healthy member %d reports %v", i, hs[i])
			}
		}
		g.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
