package oaf

import (
	"nvmeoaf/internal/ring"
)

// Ring-entry types, re-exported from the ring layer: SQE describes one
// submission, CQE one completion, Buf one registered buffer on loan from
// the ring's arena.
type (
	SQE = ring.SQE
	CQE = ring.CQE
	Buf = ring.Buf
)

// RingOptions sizes a Ring. Zero values take the defaults: SQSize 64,
// CQSize 2x SQSize, Buffers = SQSize, BufSize 128 KiB.
type RingOptions struct {
	// SQSize is the submission-ring capacity and the inflight bound.
	SQSize int
	// CQSize is the completion-ring capacity; submission throttles so
	// completions are never overwritten.
	CQSize int
	// Buffers and BufSize shape the registered buffer arena.
	Buffers int
	BufSize int
}

// Ring is the io_uring-style zero-copy fast path over a Queue: the
// application claims fixed-size buffers from the connection's registered
// region, describes I/O by pushing fixed-size SQ entries, flushes a
// train with one doorbell (Submit), and reaps completions in batches.
// On session-engine connections (Connect, any fabric) the steady state
// allocates nothing per op and wakes the reactor once per train instead
// of once per I/O; striped groups and replicated namespaces run the same
// ring semantics through their batch path.
//
// Ownership: a buffer moves Claim -> Push/Submit -> Reap -> Release.
// Between Submit and the CQE it belongs to the transport — do not touch
// it. One process drives a ring; rings on the same Queue are independent.
//
// The ring.* telemetry group (submit/reap depth histograms, sq-full and
// buffer stalls) lands in Cluster.Snapshot() alongside every other
// metric.
type Ring struct {
	inner *ring.Ring
	q     *Queue
}

// Ring builds a submission/completion ring over this queue. It works on
// every Queue-shaped facade — Connect, ConnectGroup, ConnectReplicated —
// and uses the allocation-free native path whenever the underlying
// connection supports it (Native reports which).
func (q *Queue) Ring(opts RingOptions) *Ring {
	return &Ring{
		inner: ring.New(q.ctx.cluster.engine, q.inner, ring.Config{
			SQSize:    opts.SQSize,
			CQSize:    opts.CQSize,
			Buffers:   opts.Buffers,
			BufSize:   opts.BufSize,
			Telemetry: q.ctx.cluster.tel,
		}),
		q: q,
	}
}

// Native reports whether the ring runs the allocation-free fast path
// (true on direct connections; false over striped/replicated facades,
// which are driven through their batch interface instead).
func (r *Ring) Native() bool { return r.inner.Native() }

// BufSize returns the registered buffer size.
func (r *Ring) BufSize() int { return r.inner.BufSize() }

// Claim lends one registered buffer from the arena; ok is false (a
// counted stall) when all buffers are out — reap and release first.
func (r *Ring) Claim() (Buf, bool) { return r.inner.Claim() }

// Release returns a reaped buffer to the arena. Releasing the zero Buf
// is a no-op; releasing twice panics.
func (r *Ring) Release(b Buf) { r.inner.Release(b) }

// Push queues one submission entry; it reports false (a counted stall)
// when the SQ is full. Entries reach the wire on the next Submit.
func (r *Ring) Push(sqe SQE) bool { return r.inner.Push(sqe) }

// Submit flushes queued entries to the transport with one doorbell for
// the whole train and returns how many were admitted; entries beyond the
// completion-space budget stay queued.
func (r *Ring) Submit() int { return r.inner.Submit(r.q.ctx.proc) }

// Reap copies up to len(dst) completions into dst, blocking until at
// least min are available or nothing remains inflight. It returns 0 only
// when the ring is idle, so a drain loop terminates.
func (r *Ring) Reap(dst []CQE, min int) int { return r.inner.Reap(r.q.ctx.proc, dst, min) }

// Queued, Inflight, and Completed expose the ring's three depths:
// pushed-not-submitted, submitted-not-completed, completed-not-reaped.
func (r *Ring) Queued() int    { return r.inner.Queued() }
func (r *Ring) Inflight() int  { return r.inner.Inflight() }
func (r *Ring) Completed() int { return r.inner.Completed() }

// Close detaches the ring (inflight completions still land and can be
// reaped); the underlying Queue stays open.
func (r *Ring) Close() { r.inner.Close() }
