package oaf

import (
	"fmt"
	"testing"
	"time"
)

// TestAttachTunerClimbsLiveQueue: an application connects with the worst
// batching configuration, attaches the tuner, and drives a steady 4K
// random-read load; the tuner must move knobs, improve the completion
// rate, and never disturb the connection.
func TestAttachTunerClimbsLiveQueue(t *testing.T) {
	c := NewCluster(Config{Seed: 5})
	if err := c.AddHost("hostA"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost("hostB"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTarget("hostB", "nqn.tuned", TargetConfig{SSDCapacity: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		epochs, accepted int
		finalBatch       int64
		reconnects       int64
	}
	err := c.Run(func(ctx *Ctx) error {
		q, err := ctx.Connect("nqn.tuned", ConnectOptions{
			Fabric: FabricTCP25G, QueueDepth: 64, Batch: 1,
		})
		if err != nil {
			return err
		}
		defer q.Close()
		tn, err := ctx.Cluster().AttachTuner(TunerOptions{Period: 20 * time.Millisecond})
		if err != nil {
			return err
		}
		deadline := 600 * time.Millisecond
		for ctx.Now() < deadline {
			batch := make([]*Async, 0, 32)
			for i := 0; i < 32; i++ {
				batch = append(batch, q.ReadAsyncModeled(int64(i)*4096, 4096))
			}
			for _, a := range batch {
				if _, err := q.Wait(a); err != nil {
					return err
				}
			}
		}
		r := tn.Report()
		rep.epochs = r.Epochs
		rep.accepted = r.Accepted
		rep.finalBatch = r.Final["q0/batch"]
		rep.reconnects = q.Snapshot().Reconnects
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.epochs == 0 || rep.accepted == 0 {
		t.Fatalf("tuner inert: %+v", rep)
	}
	if rep.finalBatch <= 1 {
		t.Fatalf("batch knob never climbed past 1: %+v", rep)
	}
	if rep.reconnects != 0 {
		t.Fatalf("tuning disturbed the connection: %d reconnects", rep.reconnects)
	}
}

// TestAttachTunerNeedsQueues pins the attach-after-connect contract.
func TestAttachTunerNeedsQueues(t *testing.T) {
	c := NewCluster(Config{Seed: 1})
	if _, err := c.AttachTuner(TunerOptions{}); err == nil {
		t.Fatal("AttachTuner with no queues must error")
	}
}

// TestClusterSnapshotDeltas: two public snapshots must feed the
// telemetry delta helper with a meaningful interval.
func TestClusterSnapshotDeltas(t *testing.T) {
	c := NewCluster(Config{Seed: 2})
	if err := c.AddHost("h"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTarget("h", "nqn.d", TargetConfig{}); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(ctx *Ctx) error {
		q, err := ctx.Connect("nqn.d", ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		a := ctx.Cluster().Snapshot()
		for i := 0; i < 50; i++ {
			if _, err := q.ReadModeled(int64(i)*4096, 4096); err != nil {
				return err
			}
		}
		b := ctx.Cluster().Snapshot()
		d := b.Telemetry.DeltaSince(a.Telemetry)
		if d.IntervalNs <= 0 {
			return fmt.Errorf("zero delta interval")
		}
		if d.Counter("client.completions") != 50 {
			return fmt.Errorf("completions delta = %d, want 50", d.Counter("client.completions"))
		}
		if d.Rate("client.completions") <= 0 {
			return fmt.Errorf("zero completion rate")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
