package oaf_test

import (
	"encoding/json"
	"testing"

	"nvmeoaf/oaf"
)

// TestClusterSnapshot drives I/O over the adaptive fabric and checks the
// observability layer end to end: queue counters, aggregated telemetry
// counters and latency histograms, pool accounting, and JSON export.
func TestClusterSnapshot(t *testing.T) {
	c := cluster(t)
	var qs oaf.QueueSnapshot
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.demo", oaf.ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		for i := 0; i < 4; i++ {
			if _, err := q.Write(int64(i)*8192, make([]byte, 8192)); err != nil {
				return err
			}
		}
		if _, err := q.Read(0, 8192); err != nil {
			return err
		}
		qs = q.Snapshot()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Path != "shm" {
		t.Errorf("co-located queue path = %q, want shm", qs.Path)
	}
	if qs.Completed < 5 {
		t.Errorf("queue completed = %d, want >= 5", qs.Completed)
	}

	snap := c.Snapshot()
	if snap.TimeNs <= 0 {
		t.Error("snapshot carries no virtual time")
	}
	if got := snap.Telemetry.Counters["client.completions"]; got < 5 {
		t.Errorf("client.completions = %d, want >= 5", got)
	}
	if got := snap.Telemetry.Counters["client.submits.shm"]; got < 5 {
		t.Errorf("client.submits.shm = %d, want >= 5", got)
	}
	wh, ok := snap.Telemetry.Histograms["latency.write_ns"]
	if !ok || wh.Count < 4 {
		t.Errorf("write latency histogram missing or short: %+v", wh)
	}
	if wh.P99 < wh.P50 || wh.P50 <= 0 {
		t.Errorf("write latency quantiles implausible: p50=%d p99=%d", wh.P50, wh.P99)
	}
	if len(snap.Queues) != 1 || snap.Queues[0] != qs {
		t.Errorf("cluster queues = %+v", snap.Queues)
	}
	if len(snap.Pools) == 0 {
		t.Error("no pool stats in snapshot")
	}
	// The path-selection decision must be in the trace.
	found := false
	for _, ev := range snap.Telemetry.Trace {
		if ev.Kind == "path_selected" {
			found = true
		}
	}
	if !found {
		t.Error("no path_selected event in trace")
	}

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if _, ok := back["telemetry"]; !ok {
		t.Error("snapshot JSON missing telemetry")
	}
}

// TestSnapshotRemotePath checks that a remote connection reports the TCP
// path and lands the TCP-side counters.
func TestSnapshotRemotePath(t *testing.T) {
	c := cluster(t)
	if err := c.AddHost("hostB"); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.On("hostB").Connect("nqn.demo", oaf.ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		if _, err := q.Write(0, make([]byte, 8192)); err != nil {
			return err
		}
		if q.Snapshot().Path != "tcp" {
			t.Errorf("remote queue path = %q, want tcp", q.Snapshot().Path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if got := snap.Telemetry.Counters["client.submits.tcp"]; got < 1 {
		t.Errorf("client.submits.tcp = %d, want >= 1", got)
	}
}
