// Package nvmeoaf's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation, plus ablation benches for the
// design choices called out in DESIGN.md. Each benchmark runs the
// deterministic simulation behind the figure and reports the headline
// metrics via b.ReportMetric (GB/s, microseconds), so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's result set. Full series (every row the paper
// plots) come from `go run ./cmd/figures -fig all`.
package nvmeoaf

import (
	"strings"
	"testing"
	"time"

	"nvmeoaf/internal/core"
	"nvmeoaf/internal/exp"
	"nvmeoaf/internal/figures"
	"nvmeoaf/internal/h5bench"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/perf"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/vol"
)

// benchOpts keeps bench runtime moderate while preserving shapes.
func benchOpts() figures.Options {
	o := figures.Quick()
	return o
}

// report publishes a named metric once per run. Names are sanitized:
// testing.B rejects units containing whitespace.
func report(b *testing.B, name string, v float64) {
	b.ReportMetric(v, strings.ReplaceAll(name, " ", "_"))
}

func BenchmarkTable1Testbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(figures.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig02 regenerates the existing-transport characterization: it
// reports the 128K read bandwidth per fabric.
func BenchmarkFig02ExistingTransports(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Op == "read" && r.IOSize == 128<<10 {
				report(b, string(r.Fabric)+"_GBps", r.GBps)
			}
		}
	}
}

// BenchmarkFig03 reports the latency breakdown (io/comm/other) of
// NVMe/TCP-10G at 128K, the decomposition Fig 3 plots.
func BenchmarkFig03LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Fabric == exp.TCP10G && r.Op == "read" && r.IOSize == 128<<10 {
				report(b, "io_us", r.IOUs)
				report(b, "comm_us", r.CommUs)
				report(b, "other_us", r.OtherUs)
			}
		}
	}
}

// BenchmarkFig08 regenerates the shared-memory design ablation.
func BenchmarkFig08SHMDesignAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			report(b, r.Design+"_GBps", r.GBps)
		}
	}
}

// BenchmarkFig09 regenerates the chunk-size sweep; it reports the 512K-IO
// bandwidth per chunk size.
func BenchmarkFig09ChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.IOSize == 512<<10 {
				report(b, "chunk"+itoa(r.Chunk>>10)+"K_GBps", r.GBps)
			}
		}
	}
}

// BenchmarkFig10 regenerates the busy-poll sweep.
func BenchmarkFig10BusyPoll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			label := "int"
			if r.Poll > 0 {
				label = itoa(int(r.Poll.Microseconds())) + "us"
			}
			report(b, r.Workload+"_"+label+"_GBps", r.GBps)
		}
	}
}

// BenchmarkFig11 regenerates the overall-benefit comparison.
func BenchmarkFig11OverallBenefits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Op == "read" && r.IOSize == 128<<10 {
				report(b, string(r.Fabric)+"_GBps", r.GBps)
			}
		}
	}
}

// BenchmarkFig12 reports oAF's latency decomposition at 128K.
func BenchmarkFig12OAFBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Fabric == exp.OAF && r.Op == "read" && r.IOSize == 128<<10 {
				report(b, "io_us", r.IOUs)
				report(b, "comm_us", r.CommUs)
				report(b, "other_us", r.OtherUs)
			}
		}
	}
}

// BenchmarkFig13 regenerates the tail-latency study.
func BenchmarkFig13TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			report(b, r.Fabric+"_p9999_us", r.P9999Us)
		}
	}
}

// BenchmarkFig14 regenerates the queue-depth scaling study; it reports
// the QD128 bandwidth per fabric.
func BenchmarkFig14Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig14(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.QD == 128 {
				report(b, string(r.Fabric)+"_GBps", r.GBps)
			}
		}
	}
}

// BenchmarkFig15 regenerates the random mixed workloads; it reports the
// 50:50 mix throughput per fabric.
func BenchmarkFig15RandomMixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig15(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ReadPct == 50 {
				report(b, string(r.Fabric)+"_GBps", r.GBps)
			}
		}
	}
}

// BenchmarkFig16 regenerates h5bench config-1 vs NFS.
func BenchmarkFig16H5BenchOneDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig16(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			report(b, r.Backend+"_write_GBps", r.WriteGB)
			report(b, r.Backend+"_read_GBps", r.ReadGB)
		}
	}
}

// BenchmarkFig17 regenerates h5bench config-2 with coalescing.
func BenchmarkFig17H5BenchEightDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig17(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			report(b, r.Backend+"_write_GBps", r.WriteGB)
			report(b, r.Backend+"_read_GBps", r.ReadGB)
		}
	}
}

// BenchmarkFig18 regenerates scale-out case-1.
func BenchmarkFig18ScaleOutCase1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig18(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			report(b, "shm"+itoa(r.SHMPct)+"_write_GBps", r.WriteGB)
		}
	}
}

// BenchmarkFig19 regenerates scale-out case-2.
func BenchmarkFig19ScaleOutCase2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig19(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			report(b, "shm"+itoa(r.SHMPct)+"_write_GBps", r.WriteGB)
		}
	}
}

// ------------------------------------------------------------------
// Ablation benches (DESIGN.md §5): design choices beyond the paper's own
// Fig 8 ablation.

// runMicro executes one microbenchmark configuration for the ablations.
func runMicro(b *testing.B, cfg exp.Config) *exp.Result {
	b.Helper()
	cfg.Workload.Duration = 250 * time.Millisecond
	cfg.Workload.Warmup = 50 * time.Millisecond
	cfg.Seed = 42
	res, err := exp.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationSlotPolicy compares round-robin against free-list slot
// claiming in the lock-free double buffer.
func BenchmarkAblationSlotPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, policy := range []shm.ClaimPolicy{shm.ClaimRoundRobin, shm.ClaimFreeList} {
			policy := policy
			e := sim.NewEngine(42)
			params := model.DefaultSHM()
			region, err := shm.NewRegion(e, 1, 128<<10, 64, params, shm.ModeLockFree, policy)
			if err != nil {
				b.Fatal(err)
			}
			var done sim.Time
			e.Go("driver", func(p *sim.Proc) {
				for j := 0; j < 5000; j++ {
					s := region.Claim(p, shm.H2C)
					s.CopyIn(p, nil, 128<<10)
					s.Release()
				}
				done = p.Now()
			})
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			name := "roundrobin"
			if policy == shm.ClaimFreeList {
				name = "freelist"
			}
			report(b, name+"_us_per_op", done.Micros()/5000)
		}
	}
}

// BenchmarkAblationInCapsuleThreshold sweeps the NVMe/TCP in-capsule
// write threshold around the spec's 8K split.
func BenchmarkAblationInCapsuleThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, thr := range []int{0, 8 << 10, 64 << 10} {
			tp := model.DefaultTCPTransport()
			tp.InCapsuleThreshold = thr
			res := runMicro(b, exp.Config{
				Kind:     exp.TCP25G,
				Streams:  1,
				Workload: perf.Workload{Seq: true, ReadPct: 0, IOSize: 4096, QueueDepth: 16},
				TP:       tp,
			})
			report(b, "thr"+itoa(thr>>10)+"K_us", res.Agg.BD.MeanTotal())
		}
	}
}

// BenchmarkAblationCoalesceWindow sweeps the VOL coalescer's flush
// threshold for the h5bench config-2 write kernel.
func BenchmarkAblationCoalesceWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, window := range []int{8 << 20, 16 << 20, 64 << 20} {
			res, err := exp.RunH5(exp.H5Config{
				Backend: exp.H5OAFCoalesce,
				Kernel:  h5bench.Config2(),
				Seed:    42,
				VOL:     volConfig(window),
			})
			if err != nil {
				b.Fatal(err)
			}
			report(b, "win"+itoa(window>>20)+"M_write_GBps", res.Write.GBps())
		}
	}
}

// BenchmarkAblationSHMDesignsUnderWrite compares the four designs under a
// pure write workload (the Fig 8 ablation uses reads).
func BenchmarkAblationSHMDesignsUnderWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range []core.Design{core.DesignSHMBaseline, core.DesignSHMLockFree, core.DesignSHMFlowCtl, core.DesignSHMZeroCopy} {
			res := runMicro(b, exp.Config{
				Kind:     exp.OAF,
				Design:   d,
				Streams:  1,
				Workload: perf.Workload{Seq: true, ReadPct: 0, IOSize: 512 << 10, QueueDepth: 128},
			})
			report(b, d.String()+"_GBps", res.Agg.Throughput.GBps())
		}
	}
}

// BenchmarkAblationRegistrationCache contrasts RDMA tail latency with and
// without the registration-cache misses (§5.4's mechanism isolated).
func BenchmarkAblationRegistrationCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, misses := range []bool{true, false} {
			prm := model.RDMA56G()
			label := "with_misses"
			if !misses {
				prm.MemRegWarmOps = 0.001
				prm.MemRegFloorProb = 0
				label = "no_misses"
			}
			cfg := exp.Config{
				Kind:     exp.RDMA56,
				Streams:  4,
				RDMA:     &prm,
				Workload: perf.Workload{Seq: true, ReadPct: 70, IOSize: 128 << 10, QueueDepth: 4},
			}
			res := runMicro(b, cfg)
			report(b, label+"_p9999_us", float64(res.Agg.Latency.P9999())/1e3)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func volConfig(window int) (c vol.Config) {
	c.CoalesceBytes = window
	return
}

// BenchmarkAblationSHMEncryption measures the cost of the §6 hardening:
// the shared-memory channel enciphered with a per-tenant key.
func BenchmarkAblationSHMEncryption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, encrypted := range []bool{false, true} {
			e := sim.NewEngine(42)
			params := model.DefaultSHM()
			region, err := shm.NewRegion(e, 1, 512<<10, 32, params, shm.ModeLockFree, shm.ClaimRoundRobin)
			if err != nil {
				b.Fatal(err)
			}
			label := "plaintext"
			if encrypted {
				region.EnableEncryption(0xFEED, 1.5e9)
				label = "encrypted"
			}
			var done sim.Time
			e.Go("driver", func(p *sim.Proc) {
				for j := 0; j < 2000; j++ {
					s := region.Claim(p, shm.H2C)
					s.CopyIn(p, nil, 512<<10)
					s.CopyOut(p, nil, 512<<10)
					s.Release()
				}
				done = p.Now()
			})
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			report(b, label+"_GBps", float64(2000*(512<<10))/1e9/done.Seconds())
		}
	}
}

// BenchmarkExtensionRDMAControlPath measures the paper's future-work
// variant (§5.5): oAF with its control plane over intra-node RDMA instead
// of loopback TCP, which attacks the control overhead dominating small
// I/O. Reported: 4K read latency for both control planes.
func BenchmarkExtensionRDMAControlPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, kind := range []exp.Kind{exp.OAF, exp.OAFRDMACtl} {
			res := runMicro(b, exp.Config{
				Kind:     kind,
				Streams:  4,
				Workload: perf.Workload{Seq: true, ReadPct: 100, IOSize: 4096, QueueDepth: 16},
			})
			report(b, string(kind)+"_avg_us", res.Agg.BD.MeanTotal())
			report(b, string(kind)+"_GBps", res.Agg.Throughput.GBps())
		}
	}
}

// BenchmarkExtensionStreamScaling sweeps the tenant count on one host:
// oAF aggregate bandwidth scales with added streams until the SSDs bound
// it, while NVMe/TCP-25G saturates its shared wire almost immediately.
func BenchmarkExtensionStreamScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, streams := range []int{1, 2, 4, 8} {
			for _, kind := range []exp.Kind{exp.OAF, exp.TCP25G} {
				res := runMicro(b, exp.Config{
					Kind:     kind,
					Streams:  streams,
					Workload: perf.Workload{Seq: true, ReadPct: 100, IOSize: 128 << 10, QueueDepth: 64},
				})
				report(b, string(kind)+"_s"+itoa(streams)+"_GBps", res.Agg.Throughput.GBps())
			}
		}
	}
}
