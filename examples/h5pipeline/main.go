// H5pipeline: the paper's application-level co-design (§5.7) — an
// HDF5-style particle pipeline writing and reading datasets through the
// VOL connector over the adaptive fabric, compared against the NFS
// baseline, including the effect of I/O coalescing on the multi-dataset
// configuration.
//
//	go run ./examples/h5pipeline
package main

import (
	"fmt"
	"log"

	"nvmeoaf/internal/exp"
	"nvmeoaf/internal/h5bench"
)

func run(backend exp.H5Backend, kernel h5bench.Config) exp.H5Result {
	res, err := exp.RunH5(exp.H5Config{Backend: backend, Kernel: kernel, Seed: 3})
	if err != nil {
		log.Fatalf("%s: %v", backend, err)
	}
	return res
}

func main() {
	fmt.Println("h5bench config-1: one dataset, 16M particles (single large H5Dwrite)")
	for _, b := range []exp.H5Backend{exp.H5OAF, exp.H5NFS} {
		r := run(b, h5bench.Config1())
		fmt.Printf("  %-13s write %.2f GB/s, read %.2f GB/s\n", b, r.Write.GBps(), r.Read.GBps())
	}

	fmt.Println("h5bench config-2: 8 datasets, 8M particles each (interleaved partial writes)")
	for _, b := range []exp.H5Backend{exp.H5OAF, exp.H5NFS, exp.H5OAFCoalesce} {
		r := run(b, h5bench.Config2())
		fmt.Printf("  %-13s write %.2f GB/s, read %.2f GB/s\n", b, r.Write.GBps(), r.Read.GBps())
	}

	fmt.Println("scale-out case-2: 4 co-located kernels, shared-memory fraction sweep")
	for _, shm := range []int{0, 2, 4} {
		w, r, err := exp.RunH5Scale(exp.Case2, shm, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SHM %3d%%      write %.2f GB/s, read %.2f GB/s\n", shm*25, w, r)
	}
}
