// Multitenant: the paper's §3.1 scenario — four applications on one host,
// each talking to its own storage service / SSD, comparing the adaptive
// fabric against NVMe/TCP-25G for the same aggregate workload.
//
// Each tenant gets a dedicated shared-memory region (the paper's security
// posture: tenants never share a mapping), so payloads stay off the wire
// and the SSDs, not the network, become the bottleneck.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"time"

	"nvmeoaf/oaf"
)

const (
	tenants = 4
	ios     = 96
	ioSize  = 128 << 10
)

// runTenants drives all tenants over the given fabric and returns the
// aggregate bandwidth.
func runTenants(fabric oaf.Fabric) (float64, bool, error) {
	cluster := oaf.NewCluster(oaf.Config{Seed: 7})
	if err := cluster.AddHost("hostA"); err != nil {
		return 0, false, err
	}
	for i := 0; i < tenants; i++ {
		nqn := fmt.Sprintf("nqn.2022-06.io.oaf:tenant%d", i)
		if err := cluster.AddTarget("hostA", nqn, oaf.TargetConfig{SSDCapacity: 1 << 30}); err != nil {
			return 0, false, err
		}
	}

	var elapsed time.Duration
	sharedMemory := true
	err := cluster.Run(func(ctx *oaf.Ctx) error {
		start := ctx.Now()
		var tasks []*oaf.Task
		for i := 0; i < tenants; i++ {
			nqn := fmt.Sprintf("nqn.2022-06.io.oaf:tenant%d", i)
			tasks = append(tasks, ctx.Go(fmt.Sprintf("tenant-%d", i), func(ctx *oaf.Ctx) error {
				q, err := ctx.Connect(nqn, oaf.ConnectOptions{Fabric: fabric, QueueDepth: 32})
				if err != nil {
					return err
				}
				defer q.Close()
				sharedMemory = sharedMemory && q.SharedMemory
				var asyncs []*oaf.Async
				for j := 0; j < ios; j++ {
					asyncs = append(asyncs, writeOrRead(q, j))
				}
				for _, a := range asyncs {
					if _, err := q.Wait(a); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		for _, t := range tasks {
			if err := t.Wait(ctx); err != nil {
				return err
			}
		}
		elapsed = ctx.Now() - start
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	total := float64(tenants*ios*ioSize) / 1e9
	return total / elapsed.Seconds(), sharedMemory, nil
}

// writeOrRead alternates 70% reads / 30% writes like the paper's mixed
// workloads.
func writeOrRead(q *oaf.Queue, j int) *oaf.Async {
	off := int64(j) * ioSize
	if j%10 < 3 {
		a := q.WriteAsyncModeled(off, ioSize)
		return a
	}
	return q.ReadAsyncModeled(off, ioSize)
}

func main() {
	oafGBps, shm, err := runTenants(oaf.FabricAdaptive)
	if err != nil {
		log.Fatal(err)
	}
	tcpGBps, _, err := runTenants(oaf.FabricTCP25G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tenants x %d x 128K mixed I/O on one host\n", tenants, ios)
	fmt.Printf("  adaptive fabric : %.2f GB/s (shared memory on all tenants: %v)\n", oafGBps, shm)
	fmt.Printf("  NVMe/TCP-25G    : %.2f GB/s\n", tcpGBps)
	fmt.Printf("  speedup         : %.2fx\n", oafGBps/tcpGBps)
}
