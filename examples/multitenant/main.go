// Multitenant: the paper's §3.1 scenario — four applications on one host,
// each talking to its own storage service / SSD, comparing the adaptive
// fabric against NVMe/TCP-25G for the same aggregate workload.
//
// Each tenant gets a dedicated shared-memory region (the paper's security
// posture: tenants never share a mapping), so payloads stay off the wire
// and the SSDs, not the network, become the bottleneck.
//
// The second half shares ONE storage service between a greedy tenant
// (deep-queue bulk reads) and a polite one (shallow small reads) and
// prints the polite tenant's p99 before and after capping the greedy
// tenant with per-tenant QoS.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"time"

	"nvmeoaf/oaf"
)

const (
	tenants = 4
	ios     = 96
	ioSize  = 128 << 10
)

// runTenants drives all tenants over the given fabric and returns the
// aggregate bandwidth.
func runTenants(fabric oaf.Fabric) (float64, bool, error) {
	cluster := oaf.NewCluster(oaf.Config{Seed: 7})
	if err := cluster.AddHost("hostA"); err != nil {
		return 0, false, err
	}
	for i := 0; i < tenants; i++ {
		nqn := fmt.Sprintf("nqn.2022-06.io.oaf:tenant%d", i)
		if err := cluster.AddTarget("hostA", nqn, oaf.TargetConfig{SSDCapacity: 1 << 30}); err != nil {
			return 0, false, err
		}
	}

	var elapsed time.Duration
	sharedMemory := true
	err := cluster.Run(func(ctx *oaf.Ctx) error {
		start := ctx.Now()
		var tasks []*oaf.Task
		for i := 0; i < tenants; i++ {
			nqn := fmt.Sprintf("nqn.2022-06.io.oaf:tenant%d", i)
			tasks = append(tasks, ctx.Go(fmt.Sprintf("tenant-%d", i), func(ctx *oaf.Ctx) error {
				q, err := ctx.Connect(nqn, oaf.ConnectOptions{Fabric: fabric, QueueDepth: 32})
				if err != nil {
					return err
				}
				defer q.Close()
				sharedMemory = sharedMemory && q.SharedMemory
				var asyncs []*oaf.Async
				for j := 0; j < ios; j++ {
					asyncs = append(asyncs, writeOrRead(q, j))
				}
				for _, a := range asyncs {
					if _, err := q.Wait(a); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		for _, t := range tasks {
			if err := t.Wait(ctx); err != nil {
				return err
			}
		}
		elapsed = ctx.Now() - start
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	total := float64(tenants*ios*ioSize) / 1e9
	return total / elapsed.Seconds(), sharedMemory, nil
}

// writeOrRead alternates 70% reads / 30% writes like the paper's mixed
// workloads.
func writeOrRead(q *oaf.Queue, j int) *oaf.Async {
	off := int64(j) * ioSize
	if j%10 < 3 {
		a := q.WriteAsyncModeled(off, ioSize)
		return a
	}
	return q.ReadAsyncModeled(off, ioSize)
}

func main() {
	oafGBps, shm, err := runTenants(oaf.FabricAdaptive)
	if err != nil {
		log.Fatal(err)
	}
	tcpGBps, _, err := runTenants(oaf.FabricTCP25G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tenants x %d x 128K mixed I/O on one host\n", tenants, ios)
	fmt.Printf("  adaptive fabric : %.2f GB/s (shared memory on all tenants: %v)\n", oafGBps, shm)
	fmt.Printf("  NVMe/TCP-25G    : %.2f GB/s\n", tcpGBps)
	fmt.Printf("  speedup         : %.2fx\n", oafGBps/tcpGBps)

	before, err := runSharedService(0)
	if err != nil {
		log.Fatal(err)
	}
	const cap = 200 // MiB/s, well under the greedy tenant's natural rate
	after, err := runSharedService(cap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy (32x128K reads) vs polite (4K reads) on ONE shared service\n")
	fmt.Printf("  no QoS          : polite p99 %8v   greedy %.2f GB/s\n",
		before["polite"].p99, before["greedy"].gbps)
	fmt.Printf("  greedy@%dMiB/s : polite p99 %8v   greedy %.2f GB/s\n",
		cap, after["polite"].p99, after["greedy"].gbps)
	fmt.Printf("  polite p99 improvement: %.2fx\n",
		float64(before["polite"].p99)/float64(after["polite"].p99))
}

// tenantP99 is one tenant's latency tail and bandwidth share pulled
// from the per-tenant telemetry view.
type tenantP99 struct {
	p99  time.Duration
	gbps float64
}

// runSharedService drives a greedy and a polite tenant into ONE
// storage service over NVMe/TCP-25G. With greedyRate == 0 the greedy
// tenant is unshaped (the noisy-neighbor baseline); a nonzero rate
// caps it at that many MiB/s through the host-side token bucket.
func runSharedService(greedyRate int) (map[string]tenantP99, error) {
	const nqn = "nqn.2022-06.io.oaf:shared"
	cluster := oaf.NewCluster(oaf.Config{Seed: 7})
	if err := cluster.AddHost("hostA"); err != nil {
		return nil, err
	}
	if err := cluster.AddTarget("hostA", nqn, oaf.TargetConfig{SSDCapacity: 1 << 30}); err != nil {
		return nil, err
	}
	if err := cluster.AddTenant(oaf.TenantConfig{Name: "polite", SLO: oaf.SLOLatencySensitive}); err != nil {
		return nil, err
	}
	if err := cluster.AddTenant(oaf.TenantConfig{
		Name: "greedy", SLO: oaf.SLOThroughput,
		RateMBps: greedyRate, BurstBytes: 256 << 10,
	}); err != nil {
		return nil, err
	}

	err := cluster.Run(func(ctx *oaf.Ctx) error {
		greedy := ctx.Go("greedy", func(ctx *oaf.Ctx) error {
			q, err := ctx.Connect(nqn, oaf.ConnectOptions{
				Fabric: oaf.FabricTCP25G, QueueDepth: 32, Tenant: "greedy",
			})
			if err != nil {
				return err
			}
			defer q.Close()
			var asyncs []*oaf.Async
			for j := 0; j < 192; j++ {
				asyncs = append(asyncs, q.ReadAsyncModeled(int64(j)*ioSize, ioSize))
			}
			for _, a := range asyncs {
				if _, err := q.Wait(a); err != nil {
					return err
				}
			}
			return nil
		})
		polite := ctx.Go("polite", func(ctx *oaf.Ctx) error {
			q, err := ctx.Connect(nqn, oaf.ConnectOptions{
				Fabric: oaf.FabricTCP25G, QueueDepth: 4, Tenant: "polite",
			})
			if err != nil {
				return err
			}
			defer q.Close()
			for j := 0; j < 64; j++ {
				if _, err := q.ReadModeled(int64(j)<<12, 4096); err != nil {
					return err
				}
			}
			return nil
		})
		if err := greedy.Wait(ctx); err != nil {
			return err
		}
		return polite.Wait(ctx)
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string]tenantP99)
	snap := cluster.Snapshot()
	window := float64(snap.TimeNs) / 1e9
	for name, tv := range snap.Tenants {
		out[name] = tenantP99{
			p99:  time.Duration(tv.Histograms["tenant.latency_ns"].P99),
			gbps: float64(tv.Counters["tenant.bytes"]) / 1e9 / window,
		}
	}
	return out, nil
}
