// Tailtuning: explore the TCP-channel knobs the adaptive fabric tunes —
// application-level chunk size (§4.5, Fig 9) and socket busy-poll budget
// (Fig 10) — plus the tail-latency contrast between fabrics (Fig 13).
//
//	go run ./examples/tailtuning
package main

import (
	"fmt"
	"log"
	"time"

	"nvmeoaf/oaf"
)

// measure runs a burst of mixed 128K I/O and returns (avg, worst) latency.
func measure(fabric oaf.Fabric, chunk int, poll time.Duration) (time.Duration, time.Duration) {
	cluster := oaf.NewCluster(oaf.Config{Seed: 11})
	if err := cluster.AddHost("hostA"); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddTarget("hostA", "nqn.tune", oaf.TargetConfig{SSDCapacity: 1 << 30}); err != nil {
		log.Fatal(err)
	}
	var avg, worst time.Duration
	err := cluster.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.tune", oaf.ConnectOptions{
			Fabric: fabric, QueueDepth: 8, ChunkSize: chunk, BusyPoll: poll,
		})
		if err != nil {
			return err
		}
		defer q.Close()
		const n = 200
		var total time.Duration
		for i := 0; i < n; i++ {
			var res *oaf.Result
			var err error
			if i%10 < 3 {
				res, err = q.WriteModeled(int64(i)*(128<<10), 128<<10)
			} else {
				res, err = q.ReadModeled(int64(i)*(128<<10), 128<<10)
			}
			if err != nil {
				return err
			}
			total += res.Latency
			if res.Latency > worst {
				worst = res.Latency
			}
		}
		avg = total / n
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return avg, worst
}

func main() {
	fmt.Println("chunk-size tuning (TCP-25G, serial mixed 128K):")
	for _, chunk := range []int{64 << 10, 128 << 10, 512 << 10} {
		avg, worst := measure(oaf.FabricTCP25G, chunk, 0)
		fmt.Printf("  chunk %4dK : avg %8v  worst %8v\n", chunk>>10, avg, worst)
	}

	fmt.Println("busy-poll tuning (TCP-25G):")
	for _, poll := range []time.Duration{0, 25 * time.Microsecond, 100 * time.Microsecond} {
		label := "interrupt"
		if poll > 0 {
			label = poll.String()
		}
		avg, worst := measure(oaf.FabricTCP25G, 0, poll)
		fmt.Printf("  %-10s : avg %8v  worst %8v\n", label, avg, worst)
	}

	fmt.Println("fabric tail comparison (serial mixed 128K):")
	for _, f := range []struct {
		name   string
		fabric oaf.Fabric
	}{
		{"tcp-25g", oaf.FabricTCP25G},
		{"rdma-56g", oaf.FabricRDMA56G},
		{"adaptive", oaf.FabricAdaptive},
	} {
		avg, worst := measure(f.fabric, 0, 0)
		fmt.Printf("  %-10s : avg %8v  worst %8v (worst/avg %.1fx)\n",
			f.name, avg, worst, float64(worst)/float64(avg))
	}
}
