// Cached: the target-side DRAM block cache on a Zipfian hot-set
// workload — hit-rate convergence as the hot set settles into DRAM,
// the cached-vs-uncached throughput gap, and the write-back durability
// barrier (Flush drains every dirty line before returning).
//
//	go run ./examples/cached
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"nvmeoaf/oaf"
)

const nqn = "nqn.cached"

// epoch runs one measured Zipfian window and returns its IOPS.
func epoch(ctx *oaf.Ctx, q *oaf.Queue) float64 {
	res, err := ctx.RunWorkload(q, oaf.Workload{
		Zipf:        0.99, // YCSB's standard hot-set skew
		ReadPercent: 100,
		IOSize:      4096,
		QueueDepth:  64,
		Span:        2 << 30,
		Duration:    50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.IOPS
}

// run builds a one-host cluster (optionally cached) and drives epochs,
// reporting the cache's view after each one.
func run(cacheBytes int64) []float64 {
	cluster := oaf.NewCluster(oaf.Config{Seed: 42})
	if err := cluster.AddHost("hostA"); err != nil {
		log.Fatal(err)
	}
	tc := oaf.TargetConfig{SSDCapacity: 2 << 30}
	if cacheBytes > 0 {
		tc = tc.WithCache(cacheBytes, oaf.CacheWriteBack)
	}
	if err := cluster.AddTarget("hostA", nqn, tc); err != nil {
		log.Fatal(err)
	}
	var iops []float64
	err := cluster.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect(nqn, oaf.ConnectOptions{QueueDepth: 64, Queues: 4, Batch: 16})
		if err != nil {
			return err
		}
		defer q.Close()
		for i := 0; i < 5; i++ {
			iops = append(iops, epoch(ctx, q))
			if st, ok := ctx.Cluster().CacheStats(nqn); ok {
				fmt.Printf("  epoch %d: %8.0f IOPS   hit %5.1f%%  (ewma %.2f, %d fills, %d evictions)\n",
					i, iops[i], 100*st.HitRate(), st.HitRateEWMA, st.Fills, st.Evictions)
			} else {
				fmt.Printf("  epoch %d: %8.0f IOPS   (uncached)\n", i, iops[i])
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return iops
}

// durability shows the write-back barrier: writes absorbed in DRAM stay
// dirty until Flush, which returns only after they reached the SSD.
func durability() {
	cluster := oaf.NewCluster(oaf.Config{Seed: 7})
	if err := cluster.AddHost("hostA"); err != nil {
		log.Fatal(err)
	}
	tc := oaf.TargetConfig{SSDCapacity: 256 << 20, RetainData: true}.WithCache(32<<20, oaf.CacheWriteBack)
	if err := cluster.AddTarget("hostA", nqn, tc); err != nil {
		log.Fatal(err)
	}
	err := cluster.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect(nqn, oaf.ConnectOptions{QueueDepth: 16})
		if err != nil {
			return err
		}
		defer q.Close()
		payload := bytes.Repeat([]byte{0xA5}, 4096)
		for i := 0; i < 32; i++ {
			if _, err := q.Write(int64(i)*4096, payload); err != nil {
				return err
			}
		}
		st, _ := ctx.Cluster().CacheStats(nqn)
		fmt.Printf("  after 32 writes : %6d dirty bytes in DRAM (%d absorbed write-back)\n", st.DirtyBytes, st.WriteBacks)
		if _, err := q.Flush(); err != nil {
			return err
		}
		st, _ = ctx.Cluster().CacheStats(nqn)
		fmt.Printf("  after Flush     : %6d dirty bytes (%d bytes flushed to the SSD)\n", st.DirtyBytes, st.FlushedBytes)
		back, err := q.Read(0, 4096)
		if err != nil {
			return err
		}
		fmt.Printf("  read-back       : first byte 0x%02X (durable)\n", back.Data[0])
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	fmt.Println("hot-set convergence (Zipf 0.99, 4K reads, QD 64, 256M cache over 2G span):")
	cached := run(256 << 20)
	fmt.Println("uncached baseline:")
	uncached := run(0)
	fmt.Printf("steady-state speedup: %.1fx\n\n", cached[len(cached)-1]/uncached[len(uncached)-1])

	fmt.Println("write-back durability barrier:")
	durability()
}
