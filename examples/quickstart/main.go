// Quickstart: bring up a one-host HPC-cloud deployment, connect to a
// storage service over the adaptive fabric, and run a few I/Os.
//
// The client and target share the host, so the Connection Manager's
// locality check provisions a shared-memory region: payload moves through
// shared memory while the NVMe command capsules travel over TCP.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"nvmeoaf/oaf"
)

func main() {
	cluster := oaf.NewCluster(oaf.Config{Seed: 1})
	if err := cluster.AddHost("hostA"); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddTarget("hostA", "nqn.2022-06.io.oaf:quickstart", oaf.TargetConfig{
		SSDCapacity: 1 << 30,
		RetainData:  true, // keep payload bytes so reads return real data
	}); err != nil {
		log.Fatal(err)
	}

	err := cluster.Run(func(ctx *oaf.Ctx) error {
		q, err := ctx.Connect("nqn.2022-06.io.oaf:quickstart", oaf.ConnectOptions{})
		if err != nil {
			return err
		}
		defer q.Close()
		fmt.Printf("connected; shared-memory data path: %v\n", q.SharedMemory)

		// Write a block and read it back.
		payload := bytes.Repeat([]byte("nvme-oaf!"), 1024)[:8192]
		wres, err := q.Write(0, payload)
		if err != nil {
			return err
		}
		fmt.Printf("write: %v total (device %v, fabric %v, other %v)\n",
			wres.Latency, wres.DeviceTime, wres.FabricTime, wres.OtherTime)

		rres, err := q.Read(0, len(payload))
		if err != nil {
			return err
		}
		fmt.Printf("read:  %v total (device %v, fabric %v, other %v)\n",
			rres.Latency, rres.DeviceTime, rres.FabricTime, rres.OtherTime)
		if !bytes.Equal(rres.Data, payload) {
			return fmt.Errorf("payload mismatch")
		}
		fmt.Println("payload verified through the adaptive fabric")

		// Pipeline a burst of modeled 128K reads and report bandwidth.
		const n, size = 64, 128 << 10
		start := ctx.Now()
		var asyncs []*oaf.Async
		for i := 0; i < n; i++ {
			asyncs = append(asyncs, q.ReadAsync(int64(i)*size, size))
		}
		for _, a := range asyncs {
			if _, err := q.Wait(a); err != nil {
				return err
			}
		}
		elapsed := ctx.Now() - start
		fmt.Printf("pipelined %d x 128K reads in %v (%.2f GB/s)\n",
			n, elapsed, float64(n*size)/1e9/elapsed.Seconds())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
