// Selftune: the online self-tuner recovering a deliberately bad
// configuration at run time. An application connects over NVMe/TCP with
// the worst batching setup (one message per command), attaches the
// tuner, and drives a 4 KiB random-read load; the tuner hill-climbs the
// live knobs — submission/reap batching, busy-poll budget, queue-depth
// target, TCP chunk size — on the running connection, without a single
// reconnect. The demo prints the per-epoch completion rate as the climb
// happens, then the accepted moves and the final knob settings.
//
//	go run ./examples/selftune
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"nvmeoaf/oaf"
)

func main() {
	cluster := oaf.NewCluster(oaf.Config{Seed: 9})
	if err := cluster.AddHost("compute"); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddHost("storage"); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddTarget("storage", "nqn.selftune", oaf.TargetConfig{SSDCapacity: 1 << 30}); err != nil {
		log.Fatal(err)
	}

	err := cluster.Run(func(ctx *oaf.Ctx) error {
		// The bad starting point: no batching, default everything else.
		q, err := ctx.Connect("nqn.selftune", oaf.ConnectOptions{
			Fabric: oaf.FabricTCP25G, QueueDepth: 64, Batch: 1,
		})
		if err != nil {
			return err
		}
		defer q.Close()

		tuner, err := ctx.Cluster().AttachTuner(oaf.TunerOptions{Period: 50 * time.Millisecond})
		if err != nil {
			return err
		}

		// Drive a steady 4 KiB random-read load while the tuner climbs,
		// sampling the public snapshot every 200 ms to show progress.
		fmt.Println("tuning a live 4K randread connection (started at batch=1):")
		prev := ctx.Cluster().Snapshot()
		deadline := 2 * time.Second
		lastPrint := time.Duration(0)
		for ctx.Now() < deadline {
			batch := make([]*oaf.Async, 0, 32)
			for i := 0; i < 32; i++ {
				off := int64((int(ctx.Now()/time.Microsecond)+i)%2048) * 4096
				batch = append(batch, q.ReadAsyncModeled(off, 4096))
			}
			for _, a := range batch {
				if _, err := q.Wait(a); err != nil {
					return err
				}
			}
			if ctx.Now()-lastPrint >= 200*time.Millisecond {
				cur := ctx.Cluster().Snapshot()
				d := cur.Telemetry.DeltaSince(prev.Telemetry)
				fmt.Printf("  t=%-6v %8.0f IOPS\n", ctx.Now().Round(time.Millisecond), d.Rate("client.completions"))
				prev, lastPrint = cur, ctx.Now()
			}
		}

		rep := tuner.Report()
		fmt.Printf("\ntuner: %d epochs, %d accepted / %d reverted moves, quiesced=%v\n",
			rep.Epochs, rep.Accepted, rep.Reverted, rep.Quiesced)
		for _, mv := range rep.Moves {
			if mv.Accepted && mv.Kind != "phase-reset" {
				fmt.Printf("  accepted: %-14s %6d -> %-6d (%.0f -> %.0f IOPS)\n",
					mv.Knob, mv.From, mv.To, mv.Baseline, mv.Score)
			}
		}
		names := make([]string, 0, len(rep.Final))
		for name := range rep.Final {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("final knobs:")
		for _, name := range names {
			fmt.Printf("  %-14s = %d\n", name, rep.Final[name])
		}
		if rc := q.Snapshot().Reconnects; rc == 0 {
			fmt.Println("reconnects: 0 — every change was applied to the live connection")
		} else {
			fmt.Printf("reconnects: %d (unexpected)\n", rc)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
