// Adaptive: the fabric's self-tuning policies (§4.5) in action —
// discovery-driven bring-up, hardware-aware chunk selection, and the
// workload-aware busy-poll budget, measured through the public workload
// runner.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"nvmeoaf/oaf"
)

func main() {
	cluster := oaf.NewCluster(oaf.Config{Seed: 21})
	if err := cluster.AddHost("hostA"); err != nil {
		log.Fatal(err)
	}
	for _, nqn := range []string{"nqn.adaptive:a", "nqn.adaptive:b"} {
		if err := cluster.AddTarget("hostA", nqn, oaf.TargetConfig{SSDCapacity: 1 << 30}); err != nil {
			log.Fatal(err)
		}
	}

	err := cluster.Run(func(ctx *oaf.Ctx) error {
		// Discovery-driven bring-up: ask the first target what it
		// exposes before committing to a namespace.
		probe, err := ctx.Connect("nqn.adaptive:a", oaf.ConnectOptions{QueueDepth: 4})
		if err != nil {
			return err
		}
		subs, err := probe.Discover()
		probe.Close()
		if err != nil {
			return err
		}
		fmt.Println("discovered subsystems:")
		for _, s := range subs {
			fmt.Printf("  %-18s transport=%s addr=%s\n", s.NQN, s.Transport, s.Address)
		}

		q, err := ctx.Connect(subs[0].NQN, oaf.ConnectOptions{QueueDepth: 32})
		if err != nil {
			return err
		}
		defer q.Close()

		// Run contrasting workloads through the public runner and watch
		// the breakdown shift: writes are device-dominated over the
		// adaptive fabric, reads show the same with a higher device share.
		for _, w := range []struct {
			name string
			spec oaf.Workload
		}{
			{"seq write 128K", oaf.Workload{Sequential: true, ReadPercent: 0, IOSize: 128 << 10, QueueDepth: 32, Duration: 100 * time.Millisecond}},
			{"seq read 128K", oaf.Workload{Sequential: true, ReadPercent: 100, IOSize: 128 << 10, QueueDepth: 32, Duration: 100 * time.Millisecond}},
			{"rand mixed 70:30 4K", oaf.Workload{ReadPercent: 70, IOSize: 4 << 10, QueueDepth: 32, Duration: 100 * time.Millisecond}},
		} {
			res, err := ctx.RunWorkload(q, w.spec)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %.2f GB/s, avg %v (device %v / fabric %v / other %v), p99.99 %v\n",
				w.name, res.GBps, res.AvgLatency.Round(time.Microsecond),
				res.DeviceTime.Round(time.Microsecond), res.FabricTime.Round(time.Microsecond),
				res.OtherTime.Round(time.Microsecond), res.P9999.Round(time.Microsecond))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
