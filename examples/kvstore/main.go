// Kvstore: a log-structured key-value store running on NVMe-oF — the
// class of application (Crail-KV, KV-SSD stacks) the paper's related work
// places on disaggregated flash. The same store runs over the adaptive
// fabric and over NVMe/TCP-25G under YCSB-style workloads, showing the
// fabric's effect on a latency-sensitive application beyond HDF5.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/blockfs"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/kvstore"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/transport"
)

const (
	capacity = 256 << 20
	keys     = 2000
	valueLen = 1024
	ops      = 10000
)

// build wires a store over the chosen fabric and returns it with its
// engine.
func build(useSHM bool, seed int64) (*sim.Engine, func(p *sim.Proc) *kvstore.Store) {
	e := sim.NewEngine(seed)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem("nqn.kv")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "kv", capacity, model.DefaultSSD(), true, transport.BlockSize)); err != nil {
		log.Fatal(err)
	}
	if useSHM {
		fabric := core.NewFabric(e, model.DefaultSHM())
		srv := core.NewServer(e, tgt, core.ServerConfig{
			NQN: "nqn.kv", Design: core.DesignSHMZeroCopy, Fabric: fabric,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		link := netsim.NewLoopLink(e, model.Loopback())
		srv.Serve(link.B)
		region, _ := fabric.RegionFor(core.DesignSHMZeroCopy, "h", "h", 1<<20, 128<<10, 32)
		return e, func(p *sim.Proc) *kvstore.Store {
			c, err := core.Connect(p, link.A, core.ClientConfig{
				NQN: "nqn.kv", QueueDepth: 32, Design: core.DesignSHMZeroCopy, Region: region,
				TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
			})
			if err != nil {
				log.Fatal(err)
			}
			return kvstore.Open(blockfs.New(e, c, capacity), kvstore.Config{GroupCommitBytes: 64 << 10})
		}
	}
	srv := tcp.NewServer(e, tgt, tcp.ServerConfig{NQN: "nqn.kv", TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
	link := netsim.NewLoopLink(e, model.TCP25G())
	srv.Serve(link.B)
	return e, func(p *sim.Proc) *kvstore.Store {
		c, err := tcp.Connect(p, link.A, tcp.ClientConfig{NQN: "nqn.kv", QueueDepth: 32, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
		if err != nil {
			log.Fatal(err)
		}
		return kvstore.Open(blockfs.New(e, c, capacity), kvstore.Config{GroupCommitBytes: 64 << 10})
	}
}

// run loads the store and executes a YCSB-style mix, returning ops/s.
func run(useSHM bool, readPct int) float64 {
	e, open := build(useSHM, 42)
	var opsPerSec float64
	e.Go("ycsb", func(p *sim.Proc) {
		s := open(p)
		rng := rand.New(rand.NewSource(7))
		val := make([]byte, valueLen)
		for i := 0; i < keys; i++ {
			if err := s.Put(p, fmt.Sprintf("user%04d", i), val); err != nil {
				log.Fatal(err)
			}
		}
		if err := s.Flush(p); err != nil {
			log.Fatal(err)
		}
		start := p.Now()
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("user%04d", rng.Intn(keys))
			if rng.Intn(100) < readPct {
				if _, ok, err := s.Get(p, key); err != nil || !ok {
					log.Fatalf("get %s: %v %v", key, ok, err)
				}
			} else {
				if err := s.Put(p, key, val); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := s.Flush(p); err != nil {
			log.Fatal(err)
		}
		elapsed := p.Now().Sub(start)
		opsPerSec = float64(ops) / elapsed.Seconds()
	})
	if err := e.Run(); err != nil {
		log.Fatal(err)
	}
	return opsPerSec
}

func main() {
	fmt.Printf("log-structured KV store, %d keys x %dB values, %d ops\n", keys, valueLen, ops)
	for _, wl := range []struct {
		name    string
		readPct int
	}{
		{"YCSB-A (50/50 read/update)", 50},
		{"YCSB-B (95/5)", 95},
		{"YCSB-C (100% read)", 100},
	} {
		oafOps := run(true, wl.readPct)
		tcpOps := run(false, wl.readPct)
		fmt.Printf("  %-28s adaptive %8.0f ops/s | tcp-25g %8.0f ops/s | %.2fx\n",
			wl.name, oafOps, tcpOps, oafOps/tcpOps)
	}
}
