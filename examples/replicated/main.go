// Replicated: a sharded + replicated namespace surviving a target
// crash — quorum writes keep acking through the outage, reads fail
// over to surviving replicas without ever serving stale data, and the
// background re-replication daemon heals the revived member until the
// rebuild backlog drains to zero.
//
//	go run ./examples/replicated
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"nvmeoaf/oaf"
)

const (
	members = 4
	extent  = 64 << 10
	offsets = 8
)

func main() {
	cluster := oaf.NewCluster(oaf.Config{Seed: 7})
	if err := cluster.AddHost("app"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < members; i++ {
		host := fmt.Sprintf("stor%d", i)
		if err := cluster.AddHost(host); err != nil {
			log.Fatal(err)
		}
		nqn := fmt.Sprintf("nqn.shard.%d", i)
		if err := cluster.AddTarget(host, nqn, oaf.TargetConfig{
			SSDCapacity: 256 << 20, RetainData: true,
		}); err != nil {
			log.Fatal(err)
		}
	}
	// Member 1 dies mid-workload and comes back 8ms later.
	if err := cluster.ScheduleTargetCrash("nqn.shard.1", 2*time.Millisecond, 8*time.Millisecond); err != nil {
		log.Fatal(err)
	}

	err := cluster.Run(func(ctx *oaf.Ctx) error {
		rq, err := ctx.On("app").ConnectReplicated("nqn.shard", oaf.ReplicaOptions{
			Replicas: 3, WriteQuorum: 2, ExtentSize: extent,
		})
		if err != nil {
			return err
		}
		defer rq.Close()
		fmt.Printf("replicated namespace: %d members, R=%d W=%d\n",
			len(rq.Members()), rq.Stats().Replicas, rq.Stats().WriteQuorum)

		// Write through the crash window, verifying read-your-write
		// after every ack. Failed writes were never acked and may be
		// retried; acked bytes must never be lost or served stale.
		acked := map[int64][]byte{}
		for i := 0; i < 32; i++ {
			off := int64(i%offsets) * extent
			data := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			if _, err := rq.Write(off, data); err != nil {
				fmt.Printf("  t=%-8v write %2d failed typed (%v) — retrying later\n", ctx.Now(), i, err)
				continue
			}
			acked[off] = data
			res, err := rq.Read(off, len(data))
			if err != nil {
				return fmt.Errorf("read-after-write %d: %w", i, err)
			}
			if !bytes.Equal(res.Data, data) {
				return fmt.Errorf("stale read at offset %d", off)
			}
			ctx.Sleep(400 * time.Microsecond)
		}

		st := rq.Stats()
		fmt.Printf("mid-run: %d replica deaths detected, %d revivals, %d read failovers\n",
			st.ReplicaDowns, st.ReplicaUps, st.ReadFailovers)

		// Let re-replication heal the revived member, then reconcile.
		ctx.Sleep(15 * time.Millisecond)
		for off, data := range acked {
			res, err := rq.Read(off, len(data))
			if err != nil {
				return fmt.Errorf("final read at %d: %w", off, err)
			}
			if !bytes.Equal(res.Data, data) {
				return fmt.Errorf("acked bytes lost at %d", off)
			}
		}
		st = rq.Stats()
		fmt.Printf("healed: %d extents recopied (%d bytes), rebuild backlog %d\n",
			st.RebuildExtents, st.RebuildBytes, st.StaleExtents)
		for i, h := range rq.MemberHealth() {
			fmt.Printf("  member %d (nqn.shard.%d): %v\n", i, i, h)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The fault schedule and replication stats ride the cluster snapshot.
	snap := cluster.Snapshot()
	for _, ev := range snap.Faults {
		fmt.Printf("fault log: %v %s %s\n", ev.At, ev.Kind, ev.Detail)
	}
	fmt.Println("all acked writes intact across the crash")
}
