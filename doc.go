// Package nvmeoaf is the root of the NVMe-oAF reproduction: a Go
// implementation of "NVMe-oAF: Towards Adaptive NVMe-oF for IO-Intensive
// Workloads on HPC Cloud" (Kashyap & Lu, HPDC '22) on a deterministic
// simulation of the paper's testbed.
//
// The public API lives in package oaf; the per-figure reproduction
// harness is the benchmark suite in this package (bench_test.go) and the
// cmd/figures tool. See README.md, DESIGN.md, and EXPERIMENTS.md.
package nvmeoaf
