// Command h5benchoaf runs the h5bench write/read kernels over the
// HDF5/NVMe-oAF co-design, plain NVMe/TCP, or the NFS baseline,
// reproducing the paper's application-level evaluation (§5.7).
//
// Examples:
//
//	h5benchoaf -backend oaf -config 1
//	h5benchoaf -backend nfs -config 2
//	h5benchoaf -backend oaf-coalesce -config 2
//	h5benchoaf -scale case2 -shm 3
package main

import (
	"flag"
	"fmt"
	"os"

	"nvmeoaf/internal/exp"
	"nvmeoaf/internal/h5bench"
)

func main() {
	backend := flag.String("backend", "oaf", "storage backend: oaf, oaf-coalesce, tcp-25g, nfs")
	config := flag.Int("config", 1, "h5bench configuration: 1 (one dataset x 16M) or 2 (8 datasets x 8M)")
	timesteps := flag.Int("timesteps", 1, "number of timesteps (dataset groups)")
	scale := flag.String("scale", "", "run the scale-out experiment instead: case1 or case2")
	shmKernels := flag.Int("shm", 0, "scale-out: number of kernels (0-4) using the shared-memory channel")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	if *scale != "" {
		var sc exp.ScaleCase
		switch *scale {
		case "case1":
			sc = exp.Case1
		case "case2":
			sc = exp.Case2
		default:
			fmt.Fprintf(os.Stderr, "h5benchoaf: unknown -scale %q\n", *scale)
			os.Exit(2)
		}
		w, r, err := exp.RunH5Scale(sc, *shmKernels, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "h5benchoaf:", err)
			os.Exit(1)
		}
		fmt.Printf("scale-out %s, SHM kernels %d/4 (config-1 per kernel)\n", *scale, *shmKernels)
		fmt.Printf("  aggregate write : %.3f GB/s\n", w)
		fmt.Printf("  aggregate read  : %.3f GB/s\n", r)
		return
	}

	var kernel h5bench.Config
	switch *config {
	case 1:
		kernel = h5bench.Config1()
	case 2:
		kernel = h5bench.Config2()
	default:
		fmt.Fprintf(os.Stderr, "h5benchoaf: unknown -config %d\n", *config)
		os.Exit(2)
	}
	kernel.Timesteps = *timesteps
	res, err := exp.RunH5(exp.H5Config{
		Backend: exp.H5Backend(*backend),
		Kernel:  kernel,
		Seed:    *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "h5benchoaf:", err)
		os.Exit(1)
	}
	fmt.Printf("h5bench config-%d over %s (%d datasets x %d particles x %dB)\n",
		*config, *backend, kernel.Datasets, kernel.Particles, kernel.ElemSize)
	fmt.Printf("  write kernel : %v\n", res.Write)
	fmt.Printf("  read kernel  : %v\n", res.Read)
}
