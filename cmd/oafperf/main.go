// Command oafperf is the SPDK-perf equivalent: it drives microbenchmark
// workloads against simulated NVMe-oF targets over a chosen fabric and
// reports bandwidth, IOPS, latency percentiles, and the paper's
// three-way latency breakdown.
//
// Examples:
//
//	oafperf -fabric nvme-oaf -rw read -size 128K -qd 128 -streams 4
//	oafperf -fabric tcp-25g -rw randrw -mix 70 -size 512K -t 2s
//	oafperf -fabric nvme-oaf -design shm-lock-free -rw read -size 512K
//	oafperf -fabric tcp-25g -rw randread -size 4K -qd 64 -batch 16 -queues 4
//	oafperf -fabric tcp-25g -rw randread -size 4K -qd 256 -ring -batch 16
//	oafperf -fabric nvme-oaf -rw randread -size 4K -qd 64 -zipf 0.99 -cache 256M -cache-mode wb
//	oafperf -fabric tcp-25g -rw randread -size 4K -qd 64 -drv-batch 32 -tune
//	oafperf -fabric tcp-25g -rw randread -size 4K -tune -flip-at 1s -flip-rw read -flip-size 128K
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nvmeoaf/internal/cache"
	"nvmeoaf/internal/cluster"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/exp"
	"nvmeoaf/internal/faults"
	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/perf"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/tune"
)

// parseSize parses 4K/128K/1M style sizes.
func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "B"):
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// parseSizeMix parses "4K:3,128K:1" into a weighted distribution.
func parseSizeMix(s string) ([]perf.SizeWeight, error) {
	var out []perf.SizeWeight
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		size, err := parseSize(kv[0])
		if err != nil {
			return nil, err
		}
		weight := 1
		if len(kv) == 2 {
			weight, err = strconv.Atoi(kv[1])
			if err != nil || weight <= 0 {
				return nil, fmt.Errorf("bad weight %q", kv[1])
			}
		}
		out = append(out, perf.SizeWeight{Size: size, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size mix")
	}
	return out, nil
}

// parseRW maps an -rw/-flip-rw pattern name to (sequential, read%).
func parseRW(s string, mix int) (bool, int, error) {
	switch s {
	case "read":
		return true, 100, nil
	case "write":
		return true, 0, nil
	case "randread":
		return false, 100, nil
	case "randwrite":
		return false, 0, nil
	case "rw":
		return true, mix, nil
	case "randrw":
		return false, mix, nil
	}
	return false, 0, fmt.Errorf("unknown pattern %q", s)
}

// parseTenants builds the per-tenant QoS specs from the -tenants,
// -slo, and -rate flags. -slo and -rate accept either one value
// (applied to every tenant) or a comma list matching -tenants
// position for position. Streams are assigned round-robin.
func parseTenants(names, slos, rates string) ([]exp.TenantSpec, error) {
	if names == "" {
		if slos != "" || rates != "" {
			return nil, fmt.Errorf("-slo/-rate require -tenants")
		}
		return nil, nil
	}
	var specs []exp.TenantSpec
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, fmt.Errorf("empty tenant name in -tenants")
		}
		specs = append(specs, exp.TenantSpec{Name: n})
	}
	fan := func(flagName, list string, apply func(i int, v string) error) error {
		if list == "" {
			return nil
		}
		vv := strings.Split(list, ",")
		if len(vv) != 1 && len(vv) != len(specs) {
			return fmt.Errorf("%s: got %d values for %d tenants", flagName, len(vv), len(specs))
		}
		for i := range specs {
			v := vv[0]
			if len(vv) > 1 {
				v = vv[i]
			}
			if err := apply(i, strings.TrimSpace(v)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := fan("-slo", slos, func(i int, v string) error {
		s, err := qos.ParseSLO(v)
		if err != nil {
			return err
		}
		specs[i].SLO = s
		return nil
	}); err != nil {
		return nil, err
	}
	if err := fan("-rate", rates, func(i int, v string) error {
		r, err := strconv.Atoi(v)
		if err != nil || r < 0 {
			return fmt.Errorf("-rate: bad rate %q (MiB/s)", v)
		}
		specs[i].RateMBps = r
		return nil
	}); err != nil {
		return nil, err
	}
	return specs, nil
}

func parseDesign(s string) (core.Design, error) {
	switch s {
	case "", "shm-0-copy":
		return core.DesignSHMZeroCopy, nil
	case "shm-flow-ctl":
		return core.DesignSHMFlowCtl, nil
	case "shm-lock-free":
		return core.DesignSHMLockFree, nil
	case "shm-baseline":
		return core.DesignSHMBaseline, nil
	case "tcp":
		return core.DesignTCP, nil
	default:
		return 0, fmt.Errorf("unknown design %q", s)
	}
}

func main() {
	fabric := flag.String("fabric", "nvme-oaf", "fabric: tcp-10g, tcp-25g, tcp-100g, rdma-ib56, roce-100g, nvme-oaf")
	design := flag.String("design", "shm-0-copy", "oAF shared-memory design: shm-baseline, shm-lock-free, shm-flow-ctl, shm-0-copy, tcp")
	rw := flag.String("rw", "read", "workload: read, write, randread, randwrite, rw, randrw")
	mix := flag.Int("mix", 70, "read percentage for rw/randrw workloads")
	sizeStr := flag.String("size", "128K", "I/O size (e.g. 4K, 128K, 1M)")
	sizeMix := flag.String("size-mix", "", "weighted size distribution, e.g. 4K:3,128K:1 (overrides -size)")
	qd := flag.Int("qd", 128, "queue depth")
	streams := flag.Int("streams", 1, "client/SSD pairs (1:1)")
	dur := flag.Duration("t", time.Second, "measured window (virtual time)")
	warmup := flag.Duration("warmup", 100*time.Millisecond, "warmup excluded from measurement")
	seed := flag.Int64("seed", 42, "simulation seed")
	chunk := flag.Int("chunk", 0, "TCP chunk size override in bytes (0 = 128K default)")
	poll := flag.Duration("busy-poll", 0, "socket busy-poll budget (0 = interrupt)")
	batch := flag.Int("batch", 0, "submission/completion coalescing depth (0 or 1 = one message per command)")
	ringMode := flag.Bool("ring", false, "drive streams through the SQ/CQ ring fast path instead of the future-based API")
	rdmaRegCache := flag.Bool("rdma-regcache", false, "rdma fabrics: MR registration cache + pre-registered buffer pool")
	rdmaMerge := flag.Bool("rdma-merge", false, "rdma fabrics: merge LBA-adjacent commands inside doorbell trains")
	rdmaDynDB := flag.Bool("rdma-dyndb", false, "rdma fabrics: dynamic doorbell coalescing (grow under backlog, shrink on drain)")
	queues := flag.Int("queues", 1, "queue pairs per stream; I/O stripes across them by offset")
	cacheStr := flag.String("cache", "", "target-side DRAM block cache capacity per SSD (e.g. 256M; empty = uncached)")
	cacheMode := flag.String("cache-mode", "wt", "cache write policy: wt/write-through or wb/write-back")
	zipf := flag.Float64("zipf", 0, "Zipfian hot-set skew theta for random workloads (0 = uniform; YCSB default 0.99)")
	targets := flag.Int("targets", 0, "shard+replicate the namespace across this many member targets (0 = direct per-stream connections)")
	replicas := flag.Int("replicas", 0, "replica count R per extent for -targets runs (0 = default 2)")
	wquorum := flag.Int("wquorum", 0, "write quorum W for -targets runs (0 = majority of R)")
	spares := flag.Int("spares", 0, "members held out of placement as warm spares for -targets runs")
	extent := flag.String("extent", "", "sharding extent size for -targets runs (e.g. 128K; empty = default)")
	crashMember := flag.Int("crash-member", 0, "member index crashed mid-run when -crash-down is set")
	crashAt := flag.Duration("crash-at", 0, "virtual time at which the crashed member goes down")
	crashDown := flag.Duration("crash-down", 0, "crash outage length (0 disables the crash)")
	tuneOn := flag.Bool("tune", false, "attach the online self-tuner: hill-climb live knobs (batch, busy-poll, QD, chunk, cache) during the run")
	tunePeriod := flag.Duration("tune-period", 50*time.Millisecond, "tuner sampling/decision epoch (virtual time)")
	drvBatch := flag.Int("drv-batch", 0, "driver-side submission train length (0 = same as -batch)")
	flipAt := flag.Duration("flip-at", 0, "flip the workload to a second phase at this virtual time (0 = no flip)")
	flipRW := flag.String("flip-rw", "", "second-phase pattern for -flip-at: read, write, randread, randwrite, rw, randrw")
	flipSize := flag.String("flip-size", "", "second-phase I/O size for -flip-at (empty = keep first-phase size)")
	tenantsStr := flag.String("tenants", "", "comma-separated tenant names; streams are assigned round-robin and per-tenant QoS + reporting are armed")
	sloStr := flag.String("slo", "", "per-tenant SLO tier (latency, throughput, batch, none): one value or a comma list matching -tenants")
	rateStr := flag.String("rate", "", "per-tenant rate cap in MiB/s (0 = unlimited): one value or a comma list matching -tenants")
	targetQoS := flag.Bool("target-qos", false, "also enforce tenant budgets at the target (typed throttle rejections), not just host-side admission")
	statsJSON := flag.Bool("stats-json", false, "emit one JSON report (perf + fabric telemetry + pool stats) instead of text")
	flag.Parse()

	size, err := parseSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oafperf:", err)
		os.Exit(2)
	}
	d, err := parseDesign(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oafperf:", err)
		os.Exit(2)
	}

	w := perf.Workload{IOSize: size, QueueDepth: *qd, Duration: *dur, Warmup: *warmup, Batch: *batch, Zipf: *zipf, Ring: *ringMode}
	if *drvBatch > 0 {
		w.Batch = *drvBatch
	}
	if *sizeMix != "" {
		mixes, err := parseSizeMix(*sizeMix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oafperf:", err)
			os.Exit(2)
		}
		w.SizeMix = mixes
	}
	w.Seq, w.ReadPct, err = parseRW(*rw, *mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oafperf:", err)
		os.Exit(2)
	}
	if *flipAt > 0 {
		if *flipRW == "" {
			fmt.Fprintln(os.Stderr, "oafperf: -flip-at requires -flip-rw")
			os.Exit(2)
		}
		ph := &perf.Phase{}
		ph.Seq, ph.ReadPct, err = parseRW(*flipRW, *mix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oafperf:", err)
			os.Exit(2)
		}
		if *flipSize != "" {
			ph.IOSize, err = parseSize(*flipSize)
			if err != nil {
				fmt.Fprintln(os.Stderr, "oafperf:", err)
				os.Exit(2)
			}
		}
		w.FlipAt = *flipAt
		w.FlipTo = ph
	}

	cfg := exp.Config{
		Kind:            exp.Kind(*fabric),
		Design:          d,
		Streams:         *streams,
		Queues:          *queues,
		Workload:        w,
		Seed:            *seed,
		RDMARegCache:    *rdmaRegCache,
		RDMAMerge:       *rdmaMerge,
		RDMADynDoorbell: *rdmaDynDB,
	}
	if *cacheStr != "" {
		cb, err := parseSize(*cacheStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oafperf:", err)
			os.Exit(2)
		}
		cfg.CacheBytes = int64(cb)
		cfg.CacheMode, err = cache.ParseMode(*cacheMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oafperf:", err)
			os.Exit(2)
		}
	}
	if *targets > 0 {
		cfg.ClusterTargets = *targets
		cfg.ClusterReplicas = *replicas
		cfg.ClusterWriteQuorum = *wquorum
		cfg.ClusterSpares = *spares
		if *extent != "" {
			es, err := parseSize(*extent)
			if err != nil {
				fmt.Fprintln(os.Stderr, "oafperf:", err)
				os.Exit(2)
			}
			cfg.ClusterExtent = int64(es)
		}
		cfg.CrashMember = *crashMember
		cfg.CrashAt = *crashAt
		cfg.CrashDown = *crashDown
	}
	if *chunk > 0 || *poll > 0 || *batch > 1 {
		tp := model.DefaultTCPTransport()
		if *chunk > 0 {
			tp.ChunkSize = *chunk
		}
		tp.BusyPoll = *poll
		tp.BatchSize = *batch
		cfg.TP = tp
	}
	if *tuneOn {
		cfg.Tune = true
		cfg.TunePeriod = *tunePeriod
	}
	cfg.Tenants, err = parseTenants(*tenantsStr, *sloStr, *rateStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oafperf:", err)
		os.Exit(2)
	}
	cfg.TargetQoS = *targetQoS

	res, err := exp.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oafperf:", err)
		os.Exit(1)
	}

	if *statsJSON {
		if err := emitJSON(os.Stdout, cfg, *fabric, *rw, *sizeStr, res); err != nil {
			fmt.Fprintln(os.Stderr, "oafperf:", err)
			os.Exit(1)
		}
		if res.Agg.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("fabric=%s design=%v rw=%s size=%s qd=%d streams=%d queues=%d batch=%d ring=%v window=%v\n",
		*fabric, d, *rw, *sizeStr, *qd, *streams, *queues, *batch, *ringMode, *dur)
	if *rdmaRegCache || *rdmaMerge || *rdmaDynDB {
		fmt.Printf("  rdma fast path: regcache=%v merge=%v dyndb=%v\n", *rdmaRegCache, *rdmaMerge, *rdmaDynDB)
	}
	agg := res.Agg
	fmt.Printf("  bandwidth : %.3f GB/s (%.0f IOPS)\n", agg.Throughput.GBps(), agg.Throughput.IOPS())
	fmt.Printf("  latency   : avg %.1f us  p50 %.1f  p99 %.1f  p99.9 %.1f  p99.99 %.1f\n",
		agg.BD.MeanTotal(),
		float64(agg.Latency.P50())/1e3, float64(agg.Latency.P99())/1e3,
		float64(agg.Latency.P999())/1e3, float64(agg.Latency.P9999())/1e3)
	fmt.Printf("  breakdown : io %.1f us, comm %.1f us, other %.1f us\n",
		agg.BD.MeanIO(), agg.BD.MeanComm(), agg.BD.MeanOther())
	fmt.Printf("  wire      : %.1f MB crossed the network; %.1f MB moved over shared memory\n",
		float64(res.WireBytes)/1e6, float64(res.SHMBytes)/1e6)
	if agg.Errors > 0 {
		fmt.Printf("  ERRORS    : %d\n", agg.Errors)
		os.Exit(1)
	}
	for i, s := range res.PerStream {
		fmt.Printf("  stream %d  : %.3f GB/s, avg %.1f us\n", i, s.Throughput.GBps(), s.BD.MeanTotal())
	}
	for _, tr := range tenantReports(cfg, res) {
		rate := "unlimited"
		if tr.RateMBps > 0 {
			rate = fmt.Sprintf("%d MiB/s", tr.RateMBps)
		}
		fmt.Printf("  tenant    : %-8s slo=%-10s rate=%-10s %.3f GB/s (%.0f IOPS), p99 %.1f us, p99.99 %.1f us\n",
			tr.Name, tr.SLO, rate, tr.GBps, tr.IOPS, tr.P99Us, tr.P9999Us)
		fmt.Printf("              tokens: %.1f MB taken, %.1f MB borrowed, %.1f MB lent; %d throttles, %d token waits, %d sheds\n",
			float64(tr.TakenBytes)/1e6, float64(tr.BorrowedBytes)/1e6, float64(tr.LentBytes)/1e6,
			tr.Throttled, tr.TokenWaits, tr.Sheds)
	}
	for i, dev := range res.Devices {
		fmt.Printf("  ssd %d     : util %.0f%%, %d reads / %d writes\n",
			i, dev.SSD().Utilization()*100, dev.SSD().ReadOps, dev.SSD().WriteOps)
	}
	for _, cs := range res.CacheStats {
		fmt.Printf("  cache     : %s hit %.1f%% (%d hits / %d misses, %d bypass), %d evict, dirty %d B\n",
			cs.Name, cs.HitRate()*100, cs.Hits, cs.Misses, cs.Bypasses, cs.Evictions, cs.DirtyBytes)
	}
	if cs := res.Cluster; cs != nil {
		fmt.Printf("  cluster   : %d seats R=%d W=%d; %d downs / %d ups, %d read failovers, %d quorum fails\n",
			cs.Seats, cs.Replicas, cs.WriteQuorum, cs.ReplicaDowns, cs.ReplicaUps, cs.ReadFailovers, cs.QuorumFails)
		if cs.RebuildExtents > 0 || cs.StaleExtents > 0 {
			fmt.Printf("  rebuild   : %d extents (%.1f MB) recopied in %d rounds, backlog %d\n",
				cs.RebuildExtents, float64(cs.RebuildBytes)/1e6, cs.RebuildRounds, cs.StaleExtents)
		}
	}
	for _, ev := range res.FaultLog {
		fmt.Printf("  fault     : %v %s %s\n", ev.At, ev.Kind, ev.Detail)
	}
	if tr := res.Tuner; tr != nil {
		fmt.Printf("  tuner     : %d epochs, %d accepted / %d reverted / %d explored, %d phase resets, quiesced=%v\n",
			tr.Epochs, tr.Accepted, tr.Reverted, tr.Explored, tr.PhaseResets, tr.Quiesced)
		names := make([]string, 0, len(tr.Final))
		for name := range tr.Final {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("    %-20s = %d\n", name, tr.Final[name])
		}
	}
}

// report is the -stats-json document: run configuration, the aggregate
// performance result, and the fabric-wide observability snapshot.
type report struct {
	Config struct {
		Fabric     string  `json:"fabric"`
		Design     string  `json:"design"`
		RW         string  `json:"rw"`
		Size       string  `json:"size"`
		QD         int     `json:"qd"`
		Streams    int     `json:"streams"`
		Queues     int     `json:"queues,omitempty"`
		Batch      int     `json:"batch,omitempty"`
		Ring       bool    `json:"ring,omitempty"`
		RegCache   bool    `json:"rdma_regcache,omitempty"`
		Merge      bool    `json:"rdma_merge,omitempty"`
		DynDB      bool    `json:"rdma_dyndb,omitempty"`
		CacheBytes int64   `json:"cache_bytes,omitempty"`
		CacheMode  string  `json:"cache_mode,omitempty"`
		Zipf       float64 `json:"zipf,omitempty"`
		Targets    int     `json:"targets,omitempty"`
		Replicas   int     `json:"replicas,omitempty"`
		WQuorum    int     `json:"wquorum,omitempty"`
		Spares     int     `json:"spares,omitempty"`
		CrashAt    string  `json:"crash_at,omitempty"`
		CrashDown  string  `json:"crash_down,omitempty"`
		Tune       bool    `json:"tune,omitempty"`
		TunePeriod string  `json:"tune_period,omitempty"`
		TargetQoS  bool    `json:"target_qos,omitempty"`
		FlipAt     string  `json:"flip_at,omitempty"`
		Window     string  `json:"window"`
		Seed       int64   `json:"seed"`
	} `json:"config"`
	Perf struct {
		GBps    float64 `json:"gbps"`
		IOPS    float64 `json:"iops"`
		AvgUs   float64 `json:"avg_us"`
		P50Us   float64 `json:"p50_us"`
		P99Us   float64 `json:"p99_us"`
		P999Us  float64 `json:"p999_us"`
		P9999Us float64 `json:"p9999_us"`
		Errors  int64   `json:"errors"`
	} `json:"perf"`
	WireBytes int64              `json:"wire_bytes"`
	SHMBytes  int64              `json:"shm_bytes"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
	Pools     []mempool.Stats    `json:"pools,omitempty"`
	Caches    []cache.Stats      `json:"caches,omitempty"`
	Cluster   *cluster.Stats     `json:"cluster,omitempty"`
	Faults    []faults.Event     `json:"faults,omitempty"`
	Tuner     *tune.Report       `json:"tuner,omitempty"`
	Tenants   []tenantReport     `json:"tenants,omitempty"`
}

// tenantReport is one tenant's slice of the run: its share of the
// perf result plus the QoS ledger and throttle activity.
type tenantReport struct {
	Name          string  `json:"name"`
	SLO           string  `json:"slo"`
	RateMBps      int     `json:"rate_mbps,omitempty"`
	GBps          float64 `json:"gbps"`
	IOPS          float64 `json:"iops"`
	P99Us         float64 `json:"p99_us"`
	P9999Us       float64 `json:"p9999_us"`
	TakenBytes    int64   `json:"taken_bytes"`
	BorrowedBytes int64   `json:"borrowed_bytes,omitempty"`
	LentBytes     int64   `json:"lent_bytes,omitempty"`
	Throttled     int64   `json:"throttles,omitempty"`
	TokenWaits    int64   `json:"token_waits,omitempty"`
	Sheds         int64   `json:"sheds,omitempty"`
}

// tenantReports groups the per-stream results by assigned tenant and
// joins each group with that tenant's token-ledger stats and
// telemetry counters, in -tenants order.
func tenantReports(cfg exp.Config, res *exp.Result) []tenantReport {
	if len(cfg.Tenants) == 0 {
		return nil
	}
	ledger := make(map[string]qos.TenantStats, len(res.QoS))
	for _, s := range res.QoS {
		ledger[s.Name] = s
	}
	views := res.Telemetry.Snapshot().Tenants
	byName := make(map[string][]*perf.Result, len(cfg.Tenants))
	for i, s := range res.PerStream {
		n := cfg.TenantFor(i).Name
		byName[n] = append(byName[n], s)
	}
	out := make([]tenantReport, 0, len(cfg.Tenants))
	for _, ts := range cfg.Tenants {
		agg := perf.Merge(byName[ts.Name]...)
		st := ledger[ts.Name]
		tv := views[ts.Name]
		out = append(out, tenantReport{
			Name:          ts.Name,
			SLO:           ts.SLO.String(),
			RateMBps:      ts.RateMBps,
			GBps:          agg.Throughput.GBps(),
			IOPS:          agg.Throughput.IOPS(),
			P99Us:         float64(agg.Latency.P99()) / 1e3,
			P9999Us:       float64(agg.Latency.P9999()) / 1e3,
			TakenBytes:    st.Taken,
			BorrowedBytes: st.Borrowed,
			LentBytes:     st.Lent,
			Throttled:     st.Throttles,
			TokenWaits:    tv.Counters["tenant.token_waits"],
			Sheds:         tv.Counters["tenant.sheds"],
		})
	}
	return out
}

func emitJSON(w *os.File, cfg exp.Config, fabric, rw, size string, res *exp.Result) error {
	var r report
	r.Config.Fabric = fabric
	r.Config.Design = cfg.Design.String()
	r.Config.RW = rw
	r.Config.Size = size
	r.Config.QD = cfg.Workload.QueueDepth
	r.Config.Streams = cfg.Streams
	r.Config.Queues = cfg.Queues
	r.Config.Batch = cfg.Workload.Batch
	r.Config.Ring = cfg.Workload.Ring
	r.Config.RegCache = cfg.RDMARegCache
	r.Config.Merge = cfg.RDMAMerge
	r.Config.DynDB = cfg.RDMADynDoorbell
	r.Config.CacheBytes = cfg.CacheBytes
	if cfg.CacheBytes > 0 {
		r.Config.CacheMode = cfg.CacheMode.String()
	}
	r.Config.Zipf = cfg.Workload.Zipf
	if cfg.ClusterTargets > 0 {
		r.Config.Targets = cfg.ClusterTargets
		r.Config.Replicas = cfg.ClusterReplicas
		r.Config.WQuorum = cfg.ClusterWriteQuorum
		r.Config.Spares = cfg.ClusterSpares
		if cfg.CrashDown > 0 {
			r.Config.CrashAt = cfg.CrashAt.String()
			r.Config.CrashDown = cfg.CrashDown.String()
		}
	}
	if cfg.Tune {
		r.Config.Tune = true
		r.Config.TunePeriod = cfg.TunePeriod.String()
	}
	if cfg.Workload.FlipAt > 0 {
		r.Config.FlipAt = cfg.Workload.FlipAt.String()
	}
	r.Config.Window = cfg.Workload.Duration.String()
	r.Config.Seed = cfg.Seed
	agg := res.Agg
	r.Perf.GBps = agg.Throughput.GBps()
	r.Perf.IOPS = agg.Throughput.IOPS()
	r.Perf.AvgUs = agg.BD.MeanTotal()
	r.Perf.P50Us = float64(agg.Latency.P50()) / 1e3
	r.Perf.P99Us = float64(agg.Latency.P99()) / 1e3
	r.Perf.P999Us = float64(agg.Latency.P999()) / 1e3
	r.Perf.P9999Us = float64(agg.Latency.P9999()) / 1e3
	r.Perf.Errors = agg.Errors
	r.WireBytes = res.WireBytes
	r.SHMBytes = res.SHMBytes
	r.Telemetry = res.Telemetry.Snapshot()
	r.Pools = res.Pools
	r.Caches = res.CacheStats
	r.Cluster = res.Cluster
	r.Faults = res.FaultLog
	r.Tuner = res.Tuner
	r.Config.TargetQoS = cfg.TargetQoS
	r.Tenants = tenantReports(cfg, res)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
