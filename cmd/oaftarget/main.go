// Command oaftarget brings up a simulated NVMe-oAF storage service,
// connects a probe client over the chosen fabric, runs a short smoke
// workload, and prints the target-side state: negotiated parameters,
// buffer pool usage, shared-memory region geometry, and device counters.
// It is the introspection tool for checking a deployment's configuration
// before running real workloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nvmeoaf/oaf"
)

func main() {
	fabricStr := flag.String("fabric", "adaptive", "probe fabric: adaptive, tcp-10g, tcp-25g, tcp-100g, rdma-56g, roce-100g")
	remote := flag.Bool("remote", false, "place the probe client on a different host (locality check fails)")
	capacity := flag.Int64("capacity", 1<<30, "SSD capacity in bytes")
	qd := flag.Int("qd", 32, "probe queue depth")
	trace := flag.Bool("trace", false, "print the protocol trace of the smoke I/O")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var fabric oaf.Fabric
	switch *fabricStr {
	case "adaptive":
		fabric = oaf.FabricAdaptive
	case "tcp-10g":
		fabric = oaf.FabricTCP10G
	case "tcp-25g":
		fabric = oaf.FabricTCP25G
	case "tcp-100g":
		fabric = oaf.FabricTCP100G
	case "rdma-56g":
		fabric = oaf.FabricRDMA56G
	case "roce-100g":
		fabric = oaf.FabricRoCE100G
	default:
		fmt.Fprintf(os.Stderr, "oaftarget: unknown fabric %q\n", *fabricStr)
		os.Exit(2)
	}

	c := oaf.NewCluster(oaf.Config{Seed: *seed})
	must(c.AddHost("storage-host"))
	clientHost := "storage-host"
	if *remote {
		must(c.AddHost("compute-host"))
		clientHost = "compute-host"
	}
	must(c.AddTarget("storage-host", "nqn.2022-06.io.oaf:probe", oaf.TargetConfig{SSDCapacity: *capacity}))

	err := c.Run(func(ctx *oaf.Ctx) error {
		ctx = ctx.On(clientHost)
		t0 := time.Now()
		q, err := ctx.Connect("nqn.2022-06.io.oaf:probe", oaf.ConnectOptions{
			Fabric: fabric, QueueDepth: *qd,
		})
		if err != nil {
			return err
		}
		defer q.Close()
		_ = t0
		fmt.Printf("target nqn.2022-06.io.oaf:probe on storage-host\n")
		fmt.Printf("  probe client host   : %s\n", clientHost)
		fmt.Printf("  fabric              : %s\n", *fabricStr)
		fmt.Printf("  shared-memory path  : %v\n", q.SharedMemory)
		fmt.Printf("  queue depth         : %d\n", *qd)
		fmt.Printf("  capacity            : %d bytes\n", *capacity)

		// Smoke I/O: one write, one read, report the breakdown.
		wres, err := q.WriteModeled(0, 128<<10)
		if err != nil {
			return fmt.Errorf("smoke write: %w", err)
		}
		rres, err := q.ReadModeled(0, 128<<10)
		if err != nil {
			return fmt.Errorf("smoke read: %w", err)
		}
		fmt.Printf("  smoke 128K write    : %v (device %v, fabric %v, other %v)\n",
			wres.Latency, wres.DeviceTime, wres.FabricTime, wres.OtherTime)
		fmt.Printf("  smoke 128K read     : %v (device %v, fabric %v, other %v)\n",
			rres.Latency, rres.DeviceTime, rres.FabricTime, rres.OtherTime)
		if *trace {
			fmt.Print(q.Trace())
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "oaftarget:", err)
		os.Exit(1)
	}
	fmt.Printf("  virtual time at exit: %v\n", c.Now())
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "oaftarget:", err)
		os.Exit(1)
	}
}
