// Command dupcheck is the session-extraction duplication gate: it hashes
// sliding windows of normalized source lines across the fabric packages
// and fails when the same >40-line block appears in two different
// non-test files. The extraction's whole point is that the transport
// bindings share the engine instead of carrying private copies of it;
// this gate keeps copy-paste from growing back.
//
// Usage:
//
//	go run ./cmd/dupcheck [-window N] [dirs...]
//
// Defaults to -window 41 (i.e. flag clones longer than 40 lines) over
// internal/core, internal/tcp, internal/rdma, internal/session. Also
// prints a per-file LoC table so refactors can report net line deltas.
// Exit status 1 when any cross-file clone is found.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type site struct {
	file string
	line int // 1-based line of the window start
}

func main() {
	window := flag.Int("window", 41, "minimum clone length in normalized lines")
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"internal/core", "internal/tcp", "internal/rdma", "internal/session"}
	}

	type source struct {
		path  string
		norm  []string // normalized significant lines
		lines []int    // original line number per normalized line
	}
	var files []source
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dupcheck: %v\n", err)
			os.Exit(2)
		}
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			raw, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dupcheck: %v\n", err)
				os.Exit(2)
			}
			src := source{path: path}
			for i, line := range strings.Split(string(raw), "\n") {
				n := normalize(line)
				if n == "" {
					continue
				}
				src.norm = append(src.norm, n)
				src.lines = append(src.lines, i+1)
			}
			files = append(files, src)
		}
	}

	// Hash every window; a hash seen from two distinct files is a clone.
	seen := map[uint64]site{}
	clones := map[string]bool{} // dedup report lines
	for _, f := range files {
		for i := 0; i+*window <= len(f.norm); i++ {
			h := fnv.New64a()
			for _, line := range f.norm[i : i+*window] {
				h.Write([]byte(line))
				h.Write([]byte{0})
			}
			sum := h.Sum64()
			if prev, ok := seen[sum]; ok {
				if prev.file != f.path {
					key := fmt.Sprintf("%s:%d <-> %s:%d", prev.file, prev.line, f.path, f.lines[i])
					clones[key] = true
				}
				continue
			}
			seen[sum] = site{file: f.path, line: f.lines[i]}
		}
	}

	// LoC report (significant lines, comments and blanks excluded).
	sort.Slice(files, func(i, j int) bool { return files[i].path < files[j].path })
	total := 0
	fmt.Printf("%-40s %8s\n", "file", "sig-loc")
	for _, f := range files {
		fmt.Printf("%-40s %8d\n", f.path, len(f.norm))
		total += len(f.norm)
	}
	fmt.Printf("%-40s %8d\n", "total", total)

	if len(clones) > 0 {
		keys := make([]string, 0, len(clones))
		for k := range clones {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(os.Stderr, "\ndupcheck: %d cross-file clone window(s) of >=%d lines:\n", len(keys), *window)
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "  %s\n", k)
		}
		os.Exit(1)
	}
	fmt.Printf("dupcheck: no cross-file clones of >=%d normalized lines\n", *window)
}

// normalize strips comments and whitespace so a clone is flagged even
// after a reformat or a comment edit. Lines that become empty (pure
// comments, blanks, lone braces) drop out of the stream entirely, which
// also defeats blank-line padding between copied halves.
func normalize(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	line = strings.Join(strings.Fields(line), " ")
	if line == "" || line == "}" || line == "{" || line == ")" {
		return ""
	}
	return line
}
