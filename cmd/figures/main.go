// Command figures regenerates the paper's tables and figures on the
// simulated testbed and prints the series each one plots.
//
// Usage:
//
//	figures -fig all            # every table and figure (long)
//	figures -fig 2              # one figure
//	figures -fig table1         # the testbed table
//	figures -quick              # shorter measurement windows
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nvmeoaf/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: table1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, or all")
	quick := flag.Bool("quick", false, "use short measurement windows")
	seed := flag.Int64("seed", 42, "simulation seed")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	opts := figures.Defaults()
	if *quick {
		opts = figures.Quick()
	}
	opts.Seed = *seed

	want := func(name string) bool {
		return *fig == "all" || *fig == name
	}
	ran := false
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
		os.Exit(1)
	}
	jsonOut := map[string]interface{}{}
	emit := func(name, text string, data interface{}) {
		if *asJSON {
			jsonOut[name] = data
			return
		}
		fmt.Println(text)
	}

	if want("table1") {
		ran = true
		emit("table1", figures.Table1(), figures.Table1())
	}
	if want("2") || want("3") {
		ran = true
		rows, err := figures.Fig2(opts)
		if err != nil {
			fail("fig2", err)
		}
		emit("fig2", figures.FormatMicroRows(
			"Fig 2+3: existing NVMe-oF transports, 4 clients x 4 SSDs (QD128); comm/io/other columns are the Fig 3 breakdown", rows), rows)
	}
	if want("8") {
		ran = true
		rows, err := figures.Fig8(opts)
		if err != nil {
			fail("fig8", err)
		}
		emit("fig8", figures.FormatFig8(rows), rows)
	}
	if want("9") {
		ran = true
		rows, err := figures.Fig9(opts)
		if err != nil {
			fail("fig9", err)
		}
		emit("fig9", figures.FormatFig9(rows), rows)
	}
	if want("10") {
		ran = true
		rows, err := figures.Fig10(opts)
		if err != nil {
			fail("fig10", err)
		}
		emit("fig10", figures.FormatFig10(rows), rows)
	}
	if want("11") || want("12") {
		ran = true
		rows, err := figures.Fig11(opts)
		if err != nil {
			fail("fig11", err)
		}
		emit("fig11", figures.FormatMicroRows(
			"Fig 11+12: NVMe-oAF vs existing transports, 4 clients x 4 SSDs (QD128); comm/io/other columns are the Fig 12 breakdown", rows), rows)
	}
	if want("13") {
		ran = true
		rows, err := figures.Fig13(opts)
		if err != nil {
			fail("fig13", err)
		}
		emit("fig13", figures.FormatFig13(rows), rows)
	}
	if want("14") {
		ran = true
		rows, err := figures.Fig14(opts)
		if err != nil {
			fail("fig14", err)
		}
		emit("fig14", figures.FormatFig14(rows), rows)
	}
	if want("15") {
		ran = true
		rows, err := figures.Fig15(opts)
		if err != nil {
			fail("fig15", err)
		}
		emit("fig15", figures.FormatFig15(rows), rows)
	}
	if want("16") {
		ran = true
		rows, err := figures.Fig16(opts)
		if err != nil {
			fail("fig16", err)
		}
		emit("fig16", figures.FormatH5("Fig 16: h5bench config-1 (1 dataset x 16M particles)", rows), rows)
	}
	if want("17") {
		ran = true
		rows, err := figures.Fig17(opts)
		if err != nil {
			fail("fig17", err)
		}
		emit("fig17", figures.FormatH5("Fig 17: h5bench config-2 (8 datasets x 8M particles)", rows), rows)
	}
	if want("18") {
		ran = true
		rows, err := figures.Fig18(opts)
		if err != nil {
			fail("fig18", err)
		}
		emit("fig18", figures.FormatScale("Fig 18: scale-out case-1 (clients on one node, remote SSDs)", rows), rows)
	}
	if want("19") {
		ran = true
		rows, err := figures.Fig19(opts)
		if err != nil {
			fail("fig19", err)
		}
		emit("fig19", figures.FormatScale("Fig 19: scale-out case-2 (co-located clients and SSDs)", rows), rows)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q (try: table1, 2, 8..19, all)\n", *fig)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fail("json", err)
		}
	}
}
