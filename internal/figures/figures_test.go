package figures

import (
	"testing"
	"time"
)

// find returns the row matching the predicate.
func findMicro(t *testing.T, rows []MicroRow, fabric, op string, size int) MicroRow {
	t.Helper()
	for _, r := range rows {
		if string(r.Fabric) == fabric && r.Op == op && r.IOSize == size {
			return r
		}
	}
	t.Fatalf("row %s/%s/%d not found", fabric, op, size)
	return MicroRow{}
}

func TestFig2PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	rows, err := Fig2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 128K read bandwidth ordering: 10G < 25G < 100G < RDMA.
	prev := 0.0
	for _, f := range []string{"tcp-10g", "tcp-25g", "tcp-100g", "rdma-ib56"} {
		r := findMicro(t, rows, f, "read", 128<<10)
		if r.GBps <= prev {
			t.Fatalf("read ordering violated at %s: %.2f <= %.2f", f, r.GBps, prev)
		}
		prev = r.GBps
	}
	// Peak gaps (paper: RDMA ~1.46x TCP-100G read, ~1.85x write).
	readGap := findMicro(t, rows, "rdma-ib56", "read", 128<<10).GBps /
		findMicro(t, rows, "tcp-100g", "read", 128<<10).GBps
	if readGap < 1.2 || readGap > 1.9 {
		t.Fatalf("RDMA/TCP-100G read gap %.2f, paper ~1.46", readGap)
	}
	writeGap := findMicro(t, rows, "rdma-ib56", "write", 128<<10).GBps /
		findMicro(t, rows, "tcp-100g", "write", 128<<10).GBps
	if writeGap < 1.2 || writeGap > 2.3 {
		t.Fatalf("RDMA/TCP-100G write gap %.2f, paper ~1.85", writeGap)
	}
	// 4K: 25G barely beats 10G (network speed does not help small I/O).
	r10 := findMicro(t, rows, "tcp-10g", "read", 4<<10).GBps
	r25 := findMicro(t, rows, "tcp-25g", "read", 4<<10).GBps
	if r25 > r10*1.25 {
		t.Fatalf("4K: TCP-25G (%.2f) should be close to TCP-10G (%.2f)", r25, r10)
	}
	// Fig 3 breakdown: comm time dominates I/O time for TCP at 128K.
	bd := findMicro(t, rows, "tcp-10g", "read", 128<<10)
	if bd.CommUs <= bd.IOUs {
		t.Fatalf("TCP-10G 128K comm (%.0f) should dominate io (%.0f)", bd.CommUs, bd.IOUs)
	}
}

func TestFig11PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	rows, err := Fig11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	oaf := findMicro(t, rows, "nvme-oaf", "read", 128<<10)
	tcp10 := findMicro(t, rows, "tcp-10g", "read", 128<<10)
	rdma := findMicro(t, rows, "rdma-ib56", "read", 128<<10)
	// Paper: oAF ~7.1x TCP-10G peak read bandwidth, ~1.78x RDMA.
	if ratio := oaf.GBps / tcp10.GBps; ratio < 5 || ratio > 10 {
		t.Fatalf("oAF/TCP-10G read ratio %.2f, paper ~7.1", ratio)
	}
	if ratio := oaf.GBps / rdma.GBps; ratio < 1.3 {
		t.Fatalf("oAF/RDMA read ratio %.2f, paper ~1.78", ratio)
	}
	// Paper: TCP-10G 128K read latency ~4.2x oAF's.
	if ratio := tcp10.AvgUs / oaf.AvgUs; ratio < 3 || ratio > 12 {
		t.Fatalf("TCP-10G/oAF read latency ratio %.2f, paper ~4.2", ratio)
	}
	// Paper: TCP-25G 128K write latency ~2.97x oAF's.
	oafW := findMicro(t, rows, "nvme-oaf", "write", 128<<10)
	tcp25W := findMicro(t, rows, "tcp-25g", "write", 128<<10)
	if ratio := tcp25W.AvgUs / oafW.AvgUs; ratio < 2 || ratio > 8 {
		t.Fatalf("TCP-25G/oAF write latency ratio %.2f, paper ~2.97", ratio)
	}
	// Fig 12: oAF "other" time for writes is small (zero-copy removes the
	// client buffer preparation) compared to TCP's.
	tcpOther := findMicro(t, rows, "tcp-100g", "write", 128<<10).OtherUs
	if oafW.OtherUs > tcpOther/2 {
		t.Fatalf("oAF write other time %.0fus should be well under TCP's %.0fus", oafW.OtherUs, tcpOther)
	}
}

func TestFig8PaperShape(t *testing.T) {
	rows, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig8Row{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	tcp := byName["tcp-25g(ref)"]
	base := byName["shm-baseline"]
	lf := byName["shm-lock-free"]
	fc := byName["shm-flow-ctl"]
	zc := byName["shm-0-copy"]
	// Paper: naive shared memory already beats TCP-25G (~1.83x).
	if base.GBps < 1.2*tcp.GBps {
		t.Fatalf("baseline (%.2f) should beat TCP-25G (%.2f)", base.GBps, tcp.GBps)
	}
	// Paper: lock-free cuts p99.99 tail drastically (-38%).
	if lf.P9999Us > 0.75*base.P9999Us {
		t.Fatalf("lock-free tail %.0fus should be well under baseline %.0fus", lf.P9999Us, base.P9999Us)
	}
	// Each successive optimization must not lose bandwidth; the full
	// stack lands well above the baseline (paper: ~1.83x on top).
	if lf.GBps < base.GBps || fc.GBps < lf.GBps*0.98 || zc.GBps < fc.GBps {
		t.Fatalf("bandwidth should be monotone: %.2f %.2f %.2f %.2f",
			base.GBps, lf.GBps, fc.GBps, zc.GBps)
	}
	if zc.GBps < 1.8*base.GBps {
		t.Fatalf("full optimization stack (%.2f) should be >=1.8x baseline (%.2f)", zc.GBps, base.GBps)
	}
	// Zero-copy also trims the tail versus flow-ctl (paper: -22%).
	if zc.P9999Us > fc.P9999Us*1.05 {
		t.Fatalf("zero-copy tail %.0fus should not exceed flow-ctl %.0fus", zc.P9999Us, fc.P9999Us)
	}
}

func TestFig9PaperShape(t *testing.T) {
	rows, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	at := func(chunk, size int) Fig9Row {
		for _, r := range rows {
			if r.Chunk == chunk && r.IOSize == size {
				return r
			}
		}
		t.Fatalf("row %d/%d missing", chunk, size)
		return Fig9Row{}
	}
	// Small chunks hurt large-I/O bandwidth (paper: "choosing a very low
	// chunk size hurts bandwidth").
	if at(64<<10, 2<<20).GBps >= at(512<<10, 2<<20).GBps*0.95 {
		t.Fatalf("64K chunk (%.2f) should clearly trail 512K chunk (%.2f) at 2M I/O",
			at(64<<10, 2<<20).GBps, at(512<<10, 2<<20).GBps)
	}
	// 512K is near-optimal: within 7% of the best chunk for every I/O
	// size (paper: "close to the highest bandwidth").
	for _, size := range Fig9IOSizes {
		best := 0.0
		for _, chunk := range Fig9Chunks {
			if g := at(chunk, size).GBps; g > best {
				best = g
			}
		}
		if got := at(512<<10, size).GBps; got < 0.93*best {
			t.Fatalf("512K chunk at %d I/O: %.3f vs best %.3f", size, got, best)
		}
	}
	// Memory grows linearly with chunk size (the reason not to use 2M).
	if at(2<<20, 64<<10).PoolMB < 3.9*at(512<<10, 64<<10).PoolMB {
		t.Fatalf("2M chunk pool (%.0f MB) should be ~4x 512K pool (%.0f MB)",
			at(2<<20, 64<<10).PoolMB, at(512<<10, 64<<10).PoolMB)
	}
}

func TestFig10PaperShape(t *testing.T) {
	rows, err := Fig10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	at := func(wl string, poll time.Duration) float64 {
		for _, r := range rows {
			if r.Workload == wl && r.Poll == poll {
				return r.GBps
			}
		}
		t.Fatalf("row %s/%v missing", wl, poll)
		return 0
	}
	// Writes: the long budget wins, the short budget underperforms it
	// and does not beat interrupt mode (paper §4.5).
	w0 := at("seq-write", 0)
	w25 := at("seq-write", 25*time.Microsecond)
	w100 := at("seq-write", 100*time.Microsecond)
	if w100 <= w25 {
		t.Fatalf("write: 100us (%.3f) should beat 25us (%.3f)", w100, w25)
	}
	if w25 > w0*1.01 {
		t.Fatalf("write: 25us (%.3f) should not beat interrupt (%.3f)", w25, w0)
	}
	// Reads: peak at 25-50us, degraded at 100us.
	r25 := at("seq-read", 25*time.Microsecond)
	r100 := at("seq-read", 100*time.Microsecond)
	r0 := at("seq-read", 0)
	if r25 < r0 {
		t.Fatalf("read: 25us (%.3f) should be at least interrupt (%.3f)", r25, r0)
	}
	if r100 > 0.95*r25 {
		t.Fatalf("read: 100us (%.3f) should degrade vs 25us (%.3f)", r100, r25)
	}
}

func TestFig13PaperShape(t *testing.T) {
	rows, err := Fig13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	at := func(f string) Fig13Row {
		for _, r := range rows {
			if r.Fabric == f {
				return r
			}
		}
		t.Fatalf("fabric %s missing", f)
		return Fig13Row{}
	}
	oaf := at("nvme-oaf")
	tcp100 := at("tcp-100g")
	rdma := at("rdma-ib56")
	long := at("rdma-ib56(3x run)")
	// Paper: oAF tail ~3x below TCP-100G and RDMA.
	if tcp100.P9999Us < 1.7*oaf.P9999Us {
		t.Fatalf("TCP-100G tail %.0f should be ~3x oAF %.0f", tcp100.P9999Us, oaf.P9999Us)
	}
	if rdma.P9999Us < 1.7*oaf.P9999Us {
		t.Fatalf("RDMA tail %.0f should be ~3x oAF %.0f", rdma.P9999Us, oaf.P9999Us)
	}
	// RDMA's average stays competitive while its tail blows up
	// (registration overheads, §5.4).
	if rdma.P999Us < 2.5*rdma.AvgUs {
		t.Fatalf("RDMA p99.9 %.0f should blow past its avg %.0f", rdma.P999Us, rdma.AvgUs)
	}
	// The 3x-longer run dilutes the registration events out of p99.9.
	if long.P999Us > 0.7*rdma.P999Us {
		t.Fatalf("long-run RDMA p99.9 %.0f should drop well below short-run %.0f", long.P999Us, rdma.P999Us)
	}
}

func TestFig14PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	rows, err := Fig14(Quick())
	if err != nil {
		t.Fatal(err)
	}
	at := func(f string, qd int) float64 {
		for _, r := range rows {
			if string(r.Fabric) == f && r.QD == qd {
				return r.GBps
			}
		}
		t.Fatalf("row %s/%d missing", f, qd)
		return 0
	}
	// TCP: queue depth beyond 8 barely helps (paper: "almost constant").
	if at("tcp-25g", 128) > 1.6*at("tcp-25g", 8) {
		t.Fatalf("TCP-25G should flatten after QD8: %.2f vs %.2f", at("tcp-25g", 128), at("tcp-25g", 8))
	}
	// oAF: near-linear scaling until the device limit.
	if at("nvme-oaf", 8) < 3.5*at("nvme-oaf", 1) {
		t.Fatalf("oAF QD8 (%.2f) should be ~8x QD1 (%.2f)", at("nvme-oaf", 8), at("nvme-oaf", 1))
	}
	// oAF at QD1 gains little (control-plane overhead, §5.5): it should
	// not beat RoCE there.
	if at("nvme-oaf", 1) > at("roce-100g", 1) {
		t.Fatalf("oAF QD1 (%.3f) should trail RoCE (%.3f): control overhead", at("nvme-oaf", 1), at("roce-100g", 1))
	}
	// At saturation oAF reaches the device limit, far above TCP.
	if at("nvme-oaf", 128) < 2.5*at("tcp-25g", 128) {
		t.Fatalf("oAF saturated (%.2f) should be >>TCP (%.2f)", at("nvme-oaf", 128), at("tcp-25g", 128))
	}
}

func TestFig15PaperShape(t *testing.T) {
	rows, err := Fig15(Quick())
	if err != nil {
		t.Fatal(err)
	}
	at := func(f string, mix int) float64 {
		for _, r := range rows {
			if string(r.Fabric) == f && r.ReadPct == mix {
				return r.GBps
			}
		}
		t.Fatalf("row %s/%d missing", f, mix)
		return 0
	}
	for _, mix := range Fig15Mixes {
		// Paper: network speed has slight impact on TCP throughput.
		if at("tcp-100g", mix) > 1.25*at("tcp-10g", mix) {
			t.Fatalf("mix %d: TCP insensitive to network speed expected", mix)
		}
		// Paper: oAF ~2.33x TCP-100G on average; within ~15% of RDMA.
		ratio := at("nvme-oaf", mix) / at("tcp-100g", mix)
		if ratio < 1.8 || ratio > 4 {
			t.Fatalf("mix %d: oAF/TCP-100G ratio %.2f, paper ~2.33", mix, ratio)
		}
		if rd := at("nvme-oaf", mix) / at("rdma-ib56", mix); rd < 0.85 || rd > 1.3 {
			t.Fatalf("mix %d: oAF within ~15%% of RDMA expected, got %.2f", mix, rd)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	s := Table1()
	if len(s) < 200 {
		t.Fatalf("table too short:\n%s", s)
	}
}
