package figures

// Calibration probes: run each remaining figure with quick options and
// log the series so shapes can be compared against the paper. The real
// shape assertions live in figures_test.go.

import "testing"

func TestCalibFig8(t *testing.T) {
	rows, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFig8(rows))
}

func TestCalibFig9(t *testing.T) {
	rows, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFig9(rows))
}

func TestCalibFig10(t *testing.T) {
	rows, err := Fig10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFig10(rows))
}

func TestCalibFig13(t *testing.T) {
	rows, err := Fig13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFig13(rows))
}

func TestCalibFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	rows, err := Fig14(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFig14(rows))
}

func TestCalibFig15(t *testing.T) {
	rows, err := Fig15(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFig15(rows))
}
