// Package figures regenerates every table and figure of the paper's
// evaluation (§3 and §5). Each FigNN function runs the corresponding
// experiment configuration on the simulated testbed and returns structured
// series; String renders the rows the paper plots. cmd/figures prints
// them, bench_test.go wraps them as benchmarks, and the shape tests in
// this package assert the paper's headline ratios.
package figures

import (
	"fmt"
	"strings"
	"time"

	"nvmeoaf/internal/core"
	"nvmeoaf/internal/exp"
	"nvmeoaf/internal/h5bench"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/perf"
)

// Options controls measurement windows for all figures.
type Options struct {
	// Duration is the measured window per data point (the paper runs
	// 20 s; 600 ms of simulated steady state reproduces the same means).
	Duration time.Duration
	// Warmup is excluded from measurement.
	Warmup time.Duration
	// Seed drives all randomness.
	Seed int64
}

// Defaults returns the standard measurement options.
func Defaults() Options {
	return Options{Duration: 600 * time.Millisecond, Warmup: 120 * time.Millisecond, Seed: 42}
}

// Quick returns shortened options for smoke tests.
func Quick() Options {
	return Options{Duration: 250 * time.Millisecond, Warmup: 50 * time.Millisecond, Seed: 42}
}

// micro runs one microbenchmark configuration.
func (o Options) micro(kind exp.Kind, streams int, w perf.Workload, mut func(*exp.Config)) (*exp.Result, error) {
	w.Duration = o.Duration
	w.Warmup = o.Warmup
	cfg := exp.Config{Kind: kind, Streams: streams, Workload: w, Seed: o.Seed}
	if mut != nil {
		mut(&cfg)
	}
	return exp.Run(cfg)
}

// MicroRow is one (fabric, workload) measurement.
type MicroRow struct {
	Fabric  exp.Kind
	Op      string // "read" or "write"
	IOSize  int
	GBps    float64
	AvgUs   float64
	IOUs    float64 // device component
	CommUs  float64 // fabric component
	OtherUs float64 // preparation/processing component
	P99Us   float64
	P999Us  float64
	P9999Us float64
}

func rowFrom(kind exp.Kind, op string, size int, res *exp.Result) MicroRow {
	return MicroRow{
		Fabric: kind, Op: op, IOSize: size,
		GBps:    res.Agg.Throughput.GBps(),
		AvgUs:   res.Agg.BD.MeanTotal(),
		IOUs:    res.Agg.BD.MeanIO(),
		CommUs:  res.Agg.BD.MeanComm(),
		OtherUs: res.Agg.BD.MeanOther(),
		P99Us:   float64(res.Agg.Latency.P99()) / 1e3,
		P999Us:  float64(res.Agg.Latency.P999()) / 1e3,
		P9999Us: float64(res.Agg.Latency.P9999()) / 1e3,
	}
}

// seqWorkload builds a sequential workload.
func seqWorkload(readPct, size, qd int) perf.Workload {
	return perf.Workload{Seq: true, ReadPct: readPct, IOSize: size, QueueDepth: qd}
}

// randWorkload builds a random workload.
func randWorkload(readPct, size, qd int) perf.Workload {
	return perf.Workload{Seq: false, ReadPct: readPct, IOSize: size, QueueDepth: qd}
}

// ------------------------------------------------------------------
// Table 1 — experiment configuration.

// Table1 renders the simulated testbed inventory, the counterpart of the
// paper's hardware table.
func Table1() string {
	ssd := model.DefaultSSD()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: simulated testbed configuration\n")
	fmt.Fprintf(&b, "  %-22s %s\n", "Component", "Simulated equivalent")
	fmt.Fprintf(&b, "  %-22s %d flash channels, read %d MB/s + %v setup, write %d MB/s + %v setup\n",
		"NVMe-SSD (emulated)", ssd.Channels,
		int(ssd.ChannelReadBytesPerSec/1e6), ssd.ReadSetup,
		int(ssd.ChannelWriteBytesPerSec/1e6), ssd.WriteSetup)
	for _, lp := range []model.LinkParams{model.TCP10G(), model.TCP25G(), model.TCP100G(), model.Loopback()} {
		fmt.Fprintf(&b, "  %-22s wire %.2f GB/s, prop %v, stack %v+%.2fns/B, wakeup %v\n",
			lp.Name, lp.WireBytesPerSec/1e9, lp.Propagation, lp.PerMsgCPU, lp.PerByteCPUNanos, lp.WakeupPenalty)
	}
	for _, rp := range []model.RDMAParams{model.RDMA56G(), model.RoCE100G()} {
		fmt.Fprintf(&b, "  %-22s wire %.2f GB/s, prop %v, per-op %v, memreg %v\n",
			rp.Name, rp.WireBytesPerSec/1e9, rp.Propagation, rp.PerOpCPU, rp.MemRegCost)
	}
	shm := model.DefaultSHM()
	fmt.Fprintf(&b, "  %-22s memcpy %.1f GB/s, slot overhead %v, lock hold %v\n",
		"ivshmem region", shm.CopyBytesPerSec/1e9, shm.SlotOverhead, shm.LockHold)
	fmt.Fprintf(&b, "  %-22s QD 128, 1 client per SSD, 4 KB .. 2 MB I/O\n", "workloads")
	return b.String()
}

// ------------------------------------------------------------------
// Figures 2 & 3 — existing transports: bandwidth, latency, breakdown.

// Fig2Fabrics lists the transports of the characterization study.
var Fig2Fabrics = []exp.Kind{exp.TCP10G, exp.TCP25G, exp.TCP100G, exp.RDMA56}

// Fig2 measures bandwidth and average latency of the existing NVMe-oF
// transports: 4 clients to 4 SSDs, sequential read and write, 4 KB and
// 128 KB (Fig 2), with the latency decomposition of Fig 3 carried in the
// same rows.
func Fig2(o Options) ([]MicroRow, error) {
	var rows []MicroRow
	for _, size := range []int{4 << 10, 128 << 10} {
		for _, op := range []string{"read", "write"} {
			readPct := 100
			if op == "write" {
				readPct = 0
			}
			for _, kind := range Fig2Fabrics {
				res, err := o.micro(kind, 4, seqWorkload(readPct, size, 128), nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, rowFrom(kind, op, size, res))
			}
		}
	}
	return rows, nil
}

// Fig11 repeats Fig 2 with NVMe-oAF included: the overall-benefit figure.
func Fig11(o Options) ([]MicroRow, error) {
	fabrics := append(append([]exp.Kind{}, Fig2Fabrics...), exp.OAF)
	var rows []MicroRow
	for _, size := range []int{4 << 10, 128 << 10} {
		for _, op := range []string{"read", "write"} {
			readPct := 100
			if op == "write" {
				readPct = 0
			}
			for _, kind := range fabrics {
				res, err := o.micro(kind, 4, seqWorkload(readPct, size, 128), nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, rowFrom(kind, op, size, res))
			}
		}
	}
	return rows, nil
}

// FormatMicroRows renders rows as a table.
func FormatMicroRows(title string, rows []MicroRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-11s %-5s %7s %9s %9s %9s %9s %9s %10s\n",
		"fabric", "op", "size", "GB/s", "avg_us", "io_us", "comm_us", "other_us", "p99.99_us")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-11s %-5s %7s %9.3f %9.1f %9.1f %9.1f %9.1f %10.1f\n",
			r.Fabric, r.Op, sizeLabel(r.IOSize), r.GBps, r.AvgUs, r.IOUs, r.CommUs, r.OtherUs, r.P9999Us)
	}
	return b.String()
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ------------------------------------------------------------------
// Figure 8 — the NVMe-oSHM design ablation.

// Fig8Row is one design's bandwidth and tail latency.
type Fig8Row struct {
	Design  string
	GBps    float64
	P9999Us float64
}

// Fig8 runs the sequential-read 512 KB single-stream ablation over the
// four successive shared-memory designs, plus the NVMe/TCP-25G reference
// the paper compares the baseline against.
func Fig8(o Options) ([]Fig8Row, error) {
	var rows []Fig8Row
	ref, err := o.micro(exp.TCP25G, 1, seqWorkload(100, 512<<10, 128), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig8Row{Design: "tcp-25g(ref)", GBps: ref.Agg.Throughput.GBps(),
		P9999Us: float64(ref.Agg.Latency.P9999()) / 1e3})
	for _, d := range []core.Design{core.DesignSHMBaseline, core.DesignSHMLockFree, core.DesignSHMFlowCtl, core.DesignSHMZeroCopy} {
		d := d
		res, err := o.micro(exp.OAF, 1, seqWorkload(100, 512<<10, 128), func(c *exp.Config) { c.Design = d })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Design: d.String(), GBps: res.Agg.Throughput.GBps(),
			P9999Us: float64(res.Agg.Latency.P9999()) / 1e3})
	}
	return rows, nil
}

// FormatFig8 renders the ablation.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: NVMe-oSHM design ablation (seq read 512K, 1 stream, QD128)\n")
	fmt.Fprintf(&b, "  %-14s %9s %12s\n", "design", "GB/s", "p99.99_us")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %9.3f %12.1f\n", r.Design, r.GBps, r.P9999Us)
	}
	return b.String()
}

// ------------------------------------------------------------------
// Figure 9 — chunk-size sweep.

// Fig9Row is one (chunk, ioSize) point.
type Fig9Row struct {
	Chunk    int
	IOSize   int
	GBps     float64
	PoolMB   float64
	BufWaits int64
}

// Fig9Chunks and Fig9IOSizes are the sweep axes.
var (
	Fig9Chunks  = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}
	Fig9IOSizes = []int{64 << 10, 512 << 10, 2 << 20}
)

// Fig9 sweeps the NVMe/TCP application-level chunk size for random reads
// over 25 GbE and reports bandwidth and target buffer-pool memory.
func Fig9(o Options) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, chunk := range Fig9Chunks {
		for _, size := range Fig9IOSizes {
			chunk := chunk
			res, err := o.micro(exp.TCP25G, 1, randWorkload(100, size, 64), func(c *exp.Config) {
				c.TP = model.DefaultTCPTransport()
				c.TP.ChunkSize = chunk
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig9Row{
				Chunk: chunk, IOSize: size,
				GBps:   res.Agg.Throughput.GBps(),
				PoolMB: float64(res.PoolFootprint) / 1e6,
			})
		}
	}
	return rows, nil
}

// FormatFig9 renders the sweep.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: chunk-size sweep, rand read over TCP-25G (QD64)\n")
	fmt.Fprintf(&b, "  %-7s %-7s %9s %9s\n", "chunk", "iosize", "GB/s", "pool_MB")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-7s %-7s %9.3f %9.1f\n", sizeLabel(r.Chunk), sizeLabel(r.IOSize), r.GBps, r.PoolMB)
	}
	return b.String()
}

// ------------------------------------------------------------------
// Figure 10 — busy-poll duration sweep.

// Fig10Row is one (workload, poll budget) throughput point.
type Fig10Row struct {
	Workload string
	Poll     time.Duration
	GBps     float64
}

// Fig10Polls are the evaluated budgets (0 = interrupt mode).
var Fig10Polls = []time.Duration{0, 25 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond}

// Fig10 sweeps the socket busy-poll duration for sequential 128 KB read
// and write streams over 10 GbE (AF in TCP-only mode). The queue depth is
// chosen per workload so the polling effects are not masked by wire
// saturation: writes run at QD8 (R2T round trips dominate), reads at QD4
// (the wire saturates above that and flattens every budget).
func Fig10(o Options) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, wl := range []struct {
		name    string
		readPct int
		qd      int
	}{{"seq-write", 0, 8}, {"seq-read", 100, 4}} {
		for _, poll := range Fig10Polls {
			poll := poll
			res, err := o.micro(exp.TCP10G, 4, seqWorkload(wl.readPct, 128<<10, wl.qd), func(c *exp.Config) {
				c.TP = model.DefaultTCPTransport()
				c.TP.BusyPoll = poll
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{Workload: wl.name, Poll: poll, GBps: res.Agg.Throughput.GBps()})
		}
	}
	return rows, nil
}

// FormatFig10 renders the sweep.
func FormatFig10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10: busy-poll sweep, seq 128K over TCP-10G (4 streams; QD8 writes, QD4 reads)\n")
	fmt.Fprintf(&b, "  %-10s %-10s %9s\n", "workload", "poll", "GB/s")
	for _, r := range rows {
		poll := "interrupt"
		if r.Poll > 0 {
			poll = r.Poll.String()
		}
		fmt.Fprintf(&b, "  %-10s %-10s %9.3f\n", r.Workload, poll, r.GBps)
	}
	return b.String()
}

// ------------------------------------------------------------------
// Figure 12 — oAF latency breakdown (same axes as Fig 3).

// Fig12 measures the oAF latency decomposition next to the TCP fabrics.
func Fig12(o Options) ([]MicroRow, error) {
	var rows []MicroRow
	for _, size := range []int{4 << 10, 128 << 10} {
		for _, op := range []string{"read", "write"} {
			readPct := 100
			if op == "write" {
				readPct = 0
			}
			for _, kind := range []exp.Kind{exp.TCP10G, exp.TCP25G, exp.TCP100G, exp.OAF} {
				res, err := o.micro(kind, 4, seqWorkload(readPct, size, 128), nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, rowFrom(kind, op, size, res))
			}
		}
	}
	return rows, nil
}

// ------------------------------------------------------------------
// Figure 13 — tail latency, mixed 70:30 128 KB.

// Fig13Row is one fabric's latency percentiles.
type Fig13Row struct {
	Fabric  string
	AvgUs   float64
	P99Us   float64
	P999Us  float64
	P9999Us float64
}

// Fig13 measures tail latency for the sequential mixed 70:30 128 KB
// workload across fabrics, plus the long-run RDMA variant (3x the window)
// showing the registration events diluting out of the tail (§5.4). The
// run has no warmup exclusion (tail behaviour of short-running
// applications is exactly what the experiment studies) and a moderate
// queue depth so service latency, not queueing, dominates.
func Fig13(o Options) ([]Fig13Row, error) {
	o.Warmup = 0
	var rows []Fig13Row
	run := func(label string, kind exp.Kind, opts Options) error {
		opts.Warmup = 0
		res, err := opts.micro(kind, 4, seqWorkload(70, 128<<10, 4), nil)
		if err != nil {
			return err
		}
		rows = append(rows, Fig13Row{
			Fabric:  label,
			AvgUs:   res.Agg.BD.MeanTotal(),
			P99Us:   float64(res.Agg.Latency.P99()) / 1e3,
			P999Us:  float64(res.Agg.Latency.P999()) / 1e3,
			P9999Us: float64(res.Agg.Latency.P9999()) / 1e3,
		})
		return nil
	}
	for _, kind := range []exp.Kind{exp.TCP10G, exp.TCP25G, exp.TCP100G, exp.RDMA56, exp.OAF} {
		if err := run(string(kind), kind, o); err != nil {
			return nil, err
		}
	}
	long := o
	long.Duration = o.Duration * 3
	if err := run("rdma-ib56(3x run)", exp.RDMA56, long); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig13 renders the percentiles.
func FormatFig13(rows []Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 13: tail latency, seq mixed 70:30 128K (QD128, 4 streams)\n")
	fmt.Fprintf(&b, "  %-18s %9s %9s %10s %10s\n", "fabric", "avg_us", "p99_us", "p99.9_us", "p99.99_us")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %9.1f %9.1f %10.1f %10.1f\n", r.Fabric, r.AvgUs, r.P99Us, r.P999Us, r.P9999Us)
	}
	return b.String()
}

// ------------------------------------------------------------------
// Figure 14 — concurrency (queue-depth) scaling.

// Fig14Row is one (fabric, qd) bandwidth point.
type Fig14Row struct {
	Fabric exp.Kind
	QD     int
	GBps   float64
}

// Fig14QDs is the swept queue depth axis.
var Fig14QDs = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Fig14 sweeps queue depth for a single 128 KB sequential read stream on
// one SSD across fabrics.
func Fig14(o Options) ([]Fig14Row, error) {
	var rows []Fig14Row
	for _, kind := range []exp.Kind{exp.TCP25G, exp.TCP100G, exp.RoCE100, exp.OAF} {
		for _, qd := range Fig14QDs {
			res, err := o.micro(kind, 1, seqWorkload(100, 128<<10, qd), nil)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig14Row{Fabric: kind, QD: qd, GBps: res.Agg.Throughput.GBps()})
		}
	}
	return rows, nil
}

// FormatFig14 renders the sweep.
func FormatFig14(rows []Fig14Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14: concurrency, seq read 128K on one SSD\n")
	fmt.Fprintf(&b, "  %-11s %5s %9s\n", "fabric", "qd", "GB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-11s %5d %9.3f\n", r.Fabric, r.QD, r.GBps)
	}
	return b.String()
}

// ------------------------------------------------------------------
// Figure 15 — random mixed workloads.

// Fig15Row is one (fabric, mix) throughput point.
type Fig15Row struct {
	Fabric  exp.Kind
	ReadPct int
	GBps    float64
}

// Fig15Mixes are the read percentages of the three random workloads.
var Fig15Mixes = []int{95, 50, 5}

// Fig15 measures random 512 KB workloads of varying read:write mix on a
// single stream/SSD.
func Fig15(o Options) ([]Fig15Row, error) {
	var rows []Fig15Row
	for _, kind := range []exp.Kind{exp.TCP10G, exp.TCP25G, exp.TCP100G, exp.RDMA56, exp.RoCE100, exp.OAF} {
		for _, mix := range Fig15Mixes {
			res, err := o.micro(kind, 1, randWorkload(mix, 512<<10, 128), nil)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig15Row{Fabric: kind, ReadPct: mix, GBps: res.Agg.Throughput.GBps()})
		}
	}
	return rows, nil
}

// FormatFig15 renders the matrix.
func FormatFig15(rows []Fig15Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 15: random mixed workloads, 512K, 1 stream (QD128)\n")
	fmt.Fprintf(&b, "  %-11s %8s %9s\n", "fabric", "read%", "GB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-11s %8d %9.3f\n", r.Fabric, r.ReadPct, r.GBps)
	}
	return b.String()
}

// ------------------------------------------------------------------
// Figures 16 & 17 — h5bench vs NFS.

// Fig16Row is one backend's write/read kernel bandwidth.
type Fig16Row struct {
	Backend string
	WriteGB float64
	ReadGB  float64
}

// Fig16 runs h5bench config-1 (one dataset, 16M particles) over oAF and
// NFS.
func Fig16(o Options) ([]Fig16Row, error) {
	var rows []Fig16Row
	for _, backend := range []exp.H5Backend{exp.H5OAF, exp.H5NFS} {
		res, err := exp.RunH5(exp.H5Config{Backend: backend, Kernel: h5bench.Config1(), Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig16Row{Backend: string(backend), WriteGB: res.Write.GBps(), ReadGB: res.Read.GBps()})
	}
	return rows, nil
}

// Fig17 runs h5bench config-2 (8 datasets, 8M particles each) over plain
// oAF, NFS, and oAF with I/O coalescing.
func Fig17(o Options) ([]Fig16Row, error) {
	var rows []Fig16Row
	for _, backend := range []exp.H5Backend{exp.H5OAF, exp.H5NFS, exp.H5OAFCoalesce} {
		res, err := exp.RunH5(exp.H5Config{Backend: backend, Kernel: h5bench.Config2(), Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig16Row{Backend: string(backend), WriteGB: res.Write.GBps(), ReadGB: res.Read.GBps()})
	}
	return rows, nil
}

// FormatH5 renders an h5bench comparison.
func FormatH5(title string, rows []Fig16Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-14s %10s %10s\n", "backend", "write_GB/s", "read_GB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %10.3f %10.3f\n", r.Backend, r.WriteGB, r.ReadGB)
	}
	return b.String()
}

// ------------------------------------------------------------------
// Figures 18 & 19 — scale-out SHM fraction sweeps.

// ScaleRow is one SHM-fraction point.
type ScaleRow struct {
	SHMPct  int
	WriteGB float64
	ReadGB  float64
}

// Fig18 sweeps the shared-memory fraction for case-1 (clients on one
// node, SSDs on four remote nodes; SHM kernels get co-located targets).
func Fig18(o Options) ([]ScaleRow, error) {
	return scaleSweep(exp.Case1, []int{0, 1, 2, 3}, o.Seed)
}

// Fig19 sweeps the shared-memory fraction for case-2 (clients co-located
// with their SSDs; non-SHM kernels use intra-node TCP).
func Fig19(o Options) ([]ScaleRow, error) {
	return scaleSweep(exp.Case2, []int{0, 1, 2, 3, 4}, o.Seed)
}

func scaleSweep(scase exp.ScaleCase, fractions []int, seed int64) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, n := range fractions {
		w, r, err := exp.RunH5Scale(scase, n, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScaleRow{SHMPct: n * 25, WriteGB: w, ReadGB: r})
	}
	return rows, nil
}

// FormatScale renders a scale-out sweep.
func FormatScale(title string, rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-8s %10s %10s\n", "SHM%", "write_GB/s", "read_GB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8d %10.3f %10.3f\n", r.SHMPct, r.WriteGB, r.ReadGB)
	}
	return b.String()
}
