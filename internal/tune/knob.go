// Package tune implements the online self-tuning controller of the
// adaptive fabric: a restart-free coordinate-descent hill climber with
// epsilon-greedy escape that walks the live knobs of the whole I/O path
// — submission batching, busy-poll budget, queue-depth target, chunk
// size, cache admission and write-back bounds — against a score derived
// from periodic telemetry deltas. The controller never reconnects,
// never pauses traffic, and is fully deterministic under the simulation
// engine's seeded randomness, so convergence is CI-gateable.
package tune

import (
	"fmt"
	"time"

	"nvmeoaf/internal/cache"
)

// Knob is one runtime-adjustable parameter: typed bounds, a step rule,
// and live accessors. Steps are multiplicative (Mul) when Mul > 1,
// additive (Add) otherwise; values always clamp to [Min, Max].
type Knob struct {
	// Name labels the knob in moves and reports.
	Name string
	// Min and Max bound the value (inclusive).
	Min, Max int64
	// Mul is the multiplicative step factor (e.g. 2 doubles/halves);
	// values at or below 1 select the additive step instead.
	Mul float64
	// Add is the additive step, used when Mul <= 1.
	Add int64
	// Get reads the live value; Set applies a new one without restart.
	Get func() int64
	Set func(int64)
}

// clamp bounds v to the knob's range.
func (k *Knob) clamp(v int64) int64 {
	if v < k.Min {
		return k.Min
	}
	if v > k.Max {
		return k.Max
	}
	return v
}

// step returns the neighbouring value in the given direction (+1/-1),
// clamped; a value already at the bound returns itself.
func (k *Knob) step(v int64, dir int) int64 {
	var next int64
	if k.Mul > 1 {
		if dir > 0 {
			next = int64(float64(v) * k.Mul)
			if next == v {
				next = v + 1
			}
		} else {
			next = int64(float64(v) / k.Mul)
		}
	} else {
		add := k.Add
		if add <= 0 {
			add = 1
		}
		if dir > 0 {
			next = v + add
		} else {
			next = v - add
		}
	}
	return k.clamp(next)
}

// TunableQueue is the live-knob surface every session-engine queue
// (tcp, rdma, oaf core) exposes: submission batching, busy-poll budget,
// and the outstanding-command target, all adjustable mid-run.
type TunableQueue interface {
	SetBatchSize(n int)
	LiveBatchSize() int
	SetPollBudget(d time.Duration)
	LivePollBudget() time.Duration
	SetQDTarget(n int)
	QDTarget() int
	QueueDepth() int
}

// ChunkTunable is the optional chunk-size surface (TCP-path queues).
type ChunkTunable interface {
	SetChunkSize(n int)
	LiveChunkSize() int
}

// QueueKnobs builds the knob set for one queue: batch size (×2 steps),
// busy-poll budget (25 µs steps up to 100 µs), queue-depth target (×2
// steps up to the connection's depth), and — when the queue's transport
// chunks (ChunkTunable) — the chunk size (×2 steps, 16 KiB to 1 MiB).
// Knob names carry the label so multi-queue registries stay readable.
func QueueKnobs(label string, q TunableQueue) []Knob {
	name := func(s string) string {
		if label == "" {
			return s
		}
		return fmt.Sprintf("%s/%s", label, s)
	}
	maxQD := int64(q.QueueDepth())
	minQD := int64(4)
	if minQD > maxQD {
		minQD = maxQD
	}
	knobs := []Knob{
		{
			Name: name("batch"), Min: 1, Max: 64, Mul: 2,
			Get: func() int64 {
				if b := q.LiveBatchSize(); b > 1 {
					return int64(b)
				}
				return 1
			},
			Set: func(v int64) { q.SetBatchSize(int(v)) },
		},
		{
			Name: name("poll_us"), Min: 0, Max: 100, Add: 25,
			Get: func() int64 {
				if d := q.LivePollBudget(); d > 0 {
					return int64(d / time.Microsecond)
				}
				return 0
			},
			Set: func(v int64) { q.SetPollBudget(time.Duration(v) * time.Microsecond) },
		},
		{
			Name: name("qd"), Min: minQD, Max: maxQD, Mul: 2,
			Get: func() int64 { return int64(q.QDTarget()) },
			Set: func(v int64) { q.SetQDTarget(int(v)) },
		},
	}
	if ct, ok := q.(ChunkTunable); ok {
		knobs = append(knobs, Knob{
			Name: name("chunk"), Min: 16 << 10, Max: 1 << 20, Mul: 2,
			Get: func() int64 { return int64(ct.LiveChunkSize()) },
			Set: func(v int64) { ct.SetChunkSize(int(v)) },
		})
	}
	return knobs
}

// CacheKnobs builds the knob set for a target-side cache: the
// write-back dirty bound (percent of capacity, 15-point steps) and the
// large-request bypass threshold (×2 steps, 16 KiB to 2 MiB).
func CacheKnobs(label string, c *cache.Cache) []Knob {
	name := func(s string) string {
		if label == "" {
			return s
		}
		return fmt.Sprintf("%s/%s", label, s)
	}
	return []Knob{
		{
			Name: name("dirty_pct"), Min: 10, Max: 100, Add: 15,
			Get: func() int64 {
				// Round-trip through the live watermark keeps Get/Set
				// consistent even after clamping.
				bytes := c.MaxDirtyBytes()
				cap := c.CapBytes()
				if cap <= 0 {
					return 100
				}
				return (bytes*100 + cap/2) / cap
			},
			Set: func(v int64) { c.SetMaxDirtyFrac(float64(v) / 100) },
		},
		{
			Name: name("bypass"), Min: 16 << 10, Max: 2 << 20, Mul: 2,
			Get: func() int64 { return int64(c.LiveBypassBytes()) },
			Set: func(v int64) { c.SetBypassBytes(int(v)) },
		},
	}
}
