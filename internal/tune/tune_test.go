package tune

import (
	"math"
	"reflect"
	"testing"
	"time"

	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
)

func TestKnobStepMulAndClamp(t *testing.T) {
	k := Knob{Min: 1, Max: 64, Mul: 2}
	if got := k.step(16, +1); got != 32 {
		t.Fatalf("16 up = %d, want 32", got)
	}
	if got := k.step(16, -1); got != 8 {
		t.Fatalf("16 down = %d, want 8", got)
	}
	if got := k.step(64, +1); got != 64 {
		t.Fatalf("64 up = %d, want clamp at 64", got)
	}
	if got := k.step(1, -1); got != 1 {
		t.Fatalf("1 down = %d, want clamp at 1", got)
	}
	a := Knob{Min: 0, Max: 100, Add: 25}
	if got := a.step(50, +1); got != 75 {
		t.Fatalf("50 +25 = %d", got)
	}
	if got := a.step(0, -1); got != 0 {
		t.Fatalf("0 down = %d, want clamp at 0", got)
	}
	if got := a.step(90, +1); got != 100 {
		t.Fatalf("90 +25 = %d, want clamp at 100", got)
	}
}

// surfaceRig builds an engine whose telemetry completion rate is a
// synthetic concave function of one knob value: a pump daemon adds
// rate(knob) completions every millisecond, so the controller sees a
// clean performance surface and its search can be verified exactly.
type surfaceRig struct {
	e    *sim.Engine
	tel  *telemetry.Sink
	val  int64
	rate func(int64) int64
	ctl  *Controller
}

func newSurfaceRig(seed int64, cfg Config, rate func(int64) int64) *surfaceRig {
	r := &surfaceRig{
		e:    sim.NewEngine(seed),
		tel:  telemetry.New(),
		val:  1,
		rate: rate,
	}
	knob := Knob{
		Name: "k", Min: 1, Max: 64, Mul: 2,
		Get: func() int64 { return r.val },
		Set: func(v int64) { r.val = v },
	}
	r.e.GoDaemon("pump", func(p *sim.Proc) {
		for {
			p.Sleep(time.Millisecond)
			r.tel.Add(telemetry.CtrCompletions, r.rate(r.val))
		}
	})
	cfg.Telemetry = r.tel
	r.ctl = NewController(r.e, cfg, []Knob{knob})
	r.ctl.Start()
	return r
}

// peakedAt returns a strictly concave-in-log2 rate surface maxed at
// the given knob value.
func peakedAt(peak int64, coeff float64) func(int64) int64 {
	return func(v int64) int64 {
		d := math.Log2(float64(v)) - math.Log2(float64(peak))
		return int64(1000 - coeff*d*d)
	}
}

func TestControllerClimbsToOptimum(t *testing.T) {
	r := newSurfaceRig(1, Config{Period: 10 * time.Millisecond}, peakedAt(16, 40))
	if err := r.e.RunUntil(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	rep := r.ctl.Report()
	if r.val != 16 {
		t.Fatalf("converged to %d, want 16 (report: %+v)", r.val, rep)
	}
	if !rep.Quiesced {
		t.Fatalf("search did not quiesce: %+v", rep)
	}
	if rep.Accepted == 0 || rep.Reverted == 0 {
		t.Fatalf("expected both accepts and reverts: %+v", rep)
	}
	if rep.Final["k"] != 16 {
		t.Fatalf("final snapshot %v", rep.Final)
	}
}

func TestControllerPhaseResetReconverges(t *testing.T) {
	// Phase one peaks at 16; at t=1.5s the surface flips to peak at 4
	// with the old optimum scoring ~32% below the quiet baseline —
	// the controller must detect the phase change and re-climb.
	flipAt := sim.Time(1500 * time.Millisecond)
	var r *surfaceRig
	phase1, phase2 := peakedAt(16, 40), peakedAt(4, 80)
	r = newSurfaceRig(2, Config{Period: 10 * time.Millisecond}, func(v int64) int64 {
		if r.e.Now() >= flipAt {
			return phase2(v)
		}
		return phase1(v)
	})
	if err := r.e.RunUntil(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	rep := r.ctl.Report()
	if rep.PhaseResets == 0 {
		t.Fatalf("no phase reset detected: %+v", rep)
	}
	if r.val != 4 {
		t.Fatalf("re-converged to %d, want 4 (report: %+v)", r.val, rep)
	}
	if !rep.Quiesced {
		t.Fatalf("post-flip search did not quiesce: %+v", rep)
	}
}

func TestControllerDeterministicTrajectory(t *testing.T) {
	run := func() Report {
		r := newSurfaceRig(7, Config{Period: 10 * time.Millisecond}, peakedAt(8, 50))
		if err := r.e.RunUntil(sim.Time(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		return r.ctl.Report()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Moves, b.Moves) {
		t.Fatalf("trajectories diverge:\n%+v\n%+v", a.Moves, b.Moves)
	}
	if !reflect.DeepEqual(a.Scores, b.Scores) {
		t.Fatal("score series diverge")
	}
}

func TestControllerIdlePathUntouched(t *testing.T) {
	// No completions -> no score -> the controller must not move knobs.
	r := newSurfaceRig(3, Config{Period: 10 * time.Millisecond}, func(int64) int64 { return 0 })
	if err := r.e.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rep := r.ctl.Report()
	if len(rep.Moves) != 0 || r.val != 1 {
		t.Fatalf("idle path was tuned: val=%d moves=%+v", r.val, rep.Moves)
	}
}

// fakeQueue implements TunableQueue (and optionally ChunkTunable).
type fakeQueue struct {
	batch, qd, depth int
	poll             time.Duration
	chunk            int
}

func (f *fakeQueue) SetBatchSize(n int)            { f.batch = n }
func (f *fakeQueue) LiveBatchSize() int            { return f.batch }
func (f *fakeQueue) SetPollBudget(d time.Duration) { f.poll = d }
func (f *fakeQueue) LivePollBudget() time.Duration { return f.poll }
func (f *fakeQueue) SetQDTarget(n int)             { f.qd = n }
func (f *fakeQueue) QDTarget() int                 { return f.qd }
func (f *fakeQueue) QueueDepth() int               { return f.depth }

type fakeChunkQueue struct {
	fakeQueue
}

func (f *fakeChunkQueue) SetChunkSize(n int) { f.chunk = n }
func (f *fakeChunkQueue) LiveChunkSize() int { return f.chunk }

func TestQueueKnobsRoundTrip(t *testing.T) {
	q := &fakeQueue{batch: 4, qd: 32, depth: 64, poll: 50 * time.Microsecond}
	knobs := QueueKnobs("q0", q)
	if len(knobs) != 3 {
		t.Fatalf("plain queue knobs = %d, want 3 (no chunk)", len(knobs))
	}
	byName := map[string]*Knob{}
	for i := range knobs {
		byName[knobs[i].Name] = &knobs[i]
	}
	b := byName["q0/batch"]
	if b == nil || b.Get() != 4 {
		t.Fatalf("batch knob: %+v", byName)
	}
	b.Set(b.step(b.Get(), +1))
	if q.batch != 8 {
		t.Fatalf("batch set -> %d, want 8", q.batch)
	}
	p := byName["q0/poll_us"]
	if p.Get() != 50 {
		t.Fatalf("poll knob = %d, want 50", p.Get())
	}
	p.Set(75)
	if q.poll != 75*time.Microsecond {
		t.Fatalf("poll set -> %v", q.poll)
	}
	qd := byName["q0/qd"]
	if qd.Max != 64 || qd.Get() != 32 {
		t.Fatalf("qd knob: max=%d get=%d", qd.Max, qd.Get())
	}

	cq := &fakeChunkQueue{fakeQueue{batch: 1, qd: 16, depth: 16, chunk: 128 << 10}}
	knobs = QueueKnobs("", cq)
	if len(knobs) != 4 {
		t.Fatalf("chunked queue knobs = %d, want 4", len(knobs))
	}
	if knobs[3].Name != "chunk" || knobs[3].Get() != 128<<10 {
		t.Fatalf("chunk knob: %s=%d", knobs[3].Name, knobs[3].Get())
	}
}
