package tune

import (
	"math/rand"
	"time"

	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
)

// Config parameterizes a Controller.
type Config struct {
	// Period is the sampling/decision interval (default 20 ms of
	// virtual time).
	Period time.Duration
	// Warmup discards score epochs before this much time has elapsed
	// since Start, so connection setup and queue ramp do not poison the
	// first baseline (default one period).
	Warmup time.Duration
	// ImproveFrac is the acceptance hysteresis: a trial is kept only
	// when its score beats the baseline by at least this fraction
	// (default 0.02). Hysteresis is what keeps simulator-level noise
	// from walking the knobs randomly.
	ImproveFrac float64
	// Epsilon is the exploration probability: each new trial picks a
	// uniformly random knob and direction instead of the scheduled
	// coordinate with this probability (default 0.05), the bandit-style
	// escape from local optima.
	Epsilon float64
	// PhaseFrac is the phase-change detector: once the search has
	// quiesced, a score deviating from the quiet baseline by more than
	// this fraction re-opens the search (default 0.25).
	PhaseFrac float64
	// Score maps one telemetry delta to the figure of merit being
	// maximized. The default is the completion rate
	// (client.completions per second) — IOPS.
	Score func(telemetry.Delta) float64
	// Telemetry is the sink sampled every period (required).
	Telemetry *telemetry.Sink
	// MaxMoves bounds the recorded trajectory (default 4096; the
	// controller keeps tuning past it, later moves are dropped from the
	// report, never from the search).
	MaxMoves int
}

func (cfg Config) withDefaults() Config {
	if cfg.Period <= 0 {
		cfg.Period = 20 * time.Millisecond
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Period
	}
	if cfg.ImproveFrac <= 0 {
		cfg.ImproveFrac = 0.02
	}
	if cfg.Epsilon < 0 {
		cfg.Epsilon = 0
	} else if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.05
	}
	if cfg.PhaseFrac <= 0 {
		cfg.PhaseFrac = 0.25
	}
	if cfg.Score == nil {
		cfg.Score = func(d telemetry.Delta) float64 {
			return d.Rate(telemetry.CtrCompletions.String())
		}
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 4096
	}
	return cfg
}

// Move is one decision in the tuner's trajectory.
type Move struct {
	// AtNs is the virtual time of the decision.
	AtNs int64 `json:"at_ns"`
	// Knob is the knob stepped ("" for phase-reset entries).
	Knob string `json:"knob,omitempty"`
	// From and To are the knob values before and after the trial step.
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Score is the trial epoch's score; Baseline the score it had to
	// beat.
	Score    float64 `json:"score"`
	Baseline float64 `json:"baseline"`
	// Accepted reports whether the step was kept (false = reverted).
	Accepted bool `json:"accepted"`
	// Kind is "climb", "explore", or "phase-reset".
	Kind string `json:"kind"`
}

// Report is the tuner's exported outcome: the move trajectory, the
// per-epoch score series, and the final knob settings.
type Report struct {
	Epochs      int              `json:"epochs"`
	Accepted    int              `json:"accepted"`
	Reverted    int              `json:"reverted"`
	Explored    int              `json:"explored"`
	PhaseResets int              `json:"phase_resets"`
	Quiesced    bool             `json:"quiesced"`
	Moves       []Move           `json:"moves"`
	Scores      []float64        `json:"scores"`
	Final       map[string]int64 `json:"final"`
}

// controller states.
const (
	stateMeasure = iota // establishing a baseline, no trial in flight
	stateTrial          // a knob step is live, next epoch judges it
	stateQuiet          // search quiesced, watching for a phase change
)

// Controller runs the hill-climb as an engine daemon. All state is
// touched only from the engine goroutine; the knobs it turns are
// atomics, so foreign-goroutine observers (or a paranoid -race test)
// are safe.
type Controller struct {
	e     *sim.Engine
	cfg   Config
	knobs []Knob
	rng   *rand.Rand

	prev     telemetry.Snapshot
	havePrev bool
	started  sim.Time

	state     int
	knobIdx   int    // coordinate being climbed
	dir       int    // +1 / -1
	trialOld  int64  // value to restore on revert
	trialKind string // "climb" or "explore"
	baseline  float64
	// sweepFails counts consecutive rejected trials; a full sweep of
	// 2×len(knobs) rejections quiesces the search.
	sweepFails int
	// stopped makes the daemon exit at its next wakeup, so the engine's
	// event queue can drain once the workload is done.
	stopped bool

	report Report
}

// NewController builds a controller over the given knobs. Knobs from
// several layers (queues, caches) are simply concatenated — coordinate
// descent does not care which subsystem a coordinate belongs to.
func NewController(e *sim.Engine, cfg Config, knobs []Knob) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		e:     e,
		cfg:   cfg,
		knobs: knobs,
		rng:   e.Rand("tune"),
		dir:   +1,
		report: Report{
			Final: map[string]int64{},
		},
	}
}

// Start launches the controller daemon; it samples and decides every
// Period until the engine drains. Restart-free by construction: every
// decision is a Set on a live knob.
func (c *Controller) Start() {
	c.started = c.e.Now()
	c.e.GoDaemon("tuner", c.loop)
}

// Report returns the trajectory so far. Call it after the engine run
// (or from engine context) — it reads controller state.
func (c *Controller) Report() Report {
	r := c.report
	r.Quiesced = c.state == stateQuiet
	for i := range c.knobs {
		r.Final[c.knobs[i].Name] = c.knobs[i].Get()
	}
	return r
}

// Stop makes the controller exit at its next wakeup. The tuner daemon
// re-arms a timer every period, which would keep a drain-to-completion
// engine run alive forever; callers stop it once the workload ends.
// Knobs keep their tuned values.
func (c *Controller) Stop() { c.stopped = true }

func (c *Controller) loop(p *sim.Proc) {
	for !c.stopped {
		p.Sleep(c.cfg.Period)
		if c.stopped {
			return
		}
		snap := c.cfg.Telemetry.SnapshotAt(int64(p.Now()))
		if !c.havePrev {
			c.prev, c.havePrev = snap, true
			continue
		}
		delta := snap.DeltaSince(c.prev)
		c.prev = snap
		if delta.Reset {
			// A reconnect/restart replaced the counters mid-interval;
			// the delta is garbage for scoring. Skip the epoch.
			continue
		}
		if p.Now() < c.started.Add(c.cfg.Warmup) {
			continue
		}
		score := c.cfg.Score(delta)
		c.report.Epochs++
		c.report.Scores = append(c.report.Scores, score)
		c.decide(int64(p.Now()), score)
	}
}

// decide advances the state machine by one scored epoch.
func (c *Controller) decide(atNs int64, score float64) {
	if len(c.knobs) == 0 {
		return
	}
	switch c.state {
	case stateMeasure:
		// An idle path (no completions) cannot be climbed: scores stay
		// zero and every move would look like a tie. Wait for traffic.
		if score <= 0 {
			return
		}
		c.baseline = score
		c.beginTrial()
	case stateTrial:
		k := &c.knobs[c.knobIdx]
		improved := score > c.baseline*(1+c.cfg.ImproveFrac)
		mv := Move{
			AtNs: atNs, Knob: k.Name,
			From: c.trialOld, To: k.Get(),
			Score: score, Baseline: c.baseline,
			Accepted: improved, Kind: c.trialKind,
		}
		if improved {
			c.baseline = score
			c.report.Accepted++
			c.sweepFails = 0
			c.push(mv)
			// Momentum: keep stepping the same knob/direction while it
			// pays; if the knob hit its bound, move on.
			if !c.beginTrialOn(c.knobIdx, c.dir) {
				c.advance()
				c.beginTrial()
			}
			return
		}
		k.Set(c.trialOld)
		c.report.Reverted++
		c.sweepFails++
		c.push(mv)
		// Slowly track the (reverted-to) operating point so a drifting
		// workload does not freeze the acceptance bar in the past.
		c.baseline = 0.9*c.baseline + 0.1*score
		if c.sweepFails >= 2*len(c.knobs) {
			c.state = stateQuiet
			return
		}
		c.advance()
		c.beginTrial()
	case stateQuiet:
		// Watch for a workload phase change: a quiet score far from the
		// converged baseline re-opens the search from scratch.
		dev := score - c.baseline
		if dev < 0 {
			dev = -dev
		}
		if c.baseline > 0 && dev > c.cfg.PhaseFrac*c.baseline {
			c.push(Move{
				AtNs: atNs, Score: score, Baseline: c.baseline,
				Kind: "phase-reset", Accepted: true,
			})
			c.report.PhaseResets++
			c.state = stateMeasure
			c.sweepFails = 0
			c.knobIdx, c.dir = 0, +1
			return
		}
		// Keep the quiet baseline fresh so slow drift is not mistaken
		// for a phase change.
		c.baseline = 0.8*c.baseline + 0.2*score
	}
}

// beginTrial opens the next trial: with probability Epsilon an
// exploration step on a random knob/direction, otherwise the scheduled
// coordinate (skipping coordinates already pinned at their bound).
func (c *Controller) beginTrial() {
	if c.rng.Float64() < c.cfg.Epsilon {
		idx := c.rng.Intn(len(c.knobs))
		dir := +1
		if c.rng.Intn(2) == 0 {
			dir = -1
		}
		if c.beginTrialOn(idx, dir) {
			c.dir = dir
			c.trialKind = "explore"
			c.report.Explored++
			return
		}
	}
	for range c.knobs {
		if c.beginTrialOn(c.knobIdx, c.dir) {
			return
		}
		c.advance()
	}
	// Every coordinate is pinned at a bound in its scheduled direction;
	// wait in measure state for the next epoch.
	c.state = stateMeasure
}

// beginTrialOn applies one step of knob idx in direction dir; it
// reports false when the knob is already at that bound.
func (c *Controller) beginTrialOn(idx, dir int) bool {
	k := &c.knobs[idx]
	cur := k.Get()
	next := k.step(cur, dir)
	if next == cur {
		return false
	}
	c.knobIdx = idx
	c.trialOld = cur
	c.trialKind = "climb"
	k.Set(next)
	c.state = stateTrial
	return true
}

// advance moves to the next coordinate: flip direction first, then
// rotate to the next knob.
func (c *Controller) advance() {
	if c.dir > 0 {
		c.dir = -1
		return
	}
	c.dir = +1
	c.knobIdx = (c.knobIdx + 1) % len(c.knobs)
}

// push appends a move, bounded by MaxMoves.
func (c *Controller) push(m Move) {
	if len(c.report.Moves) < c.cfg.MaxMoves {
		c.report.Moves = append(c.report.Moves, m)
	}
}
