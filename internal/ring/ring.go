// Package ring is the io_uring-style fast path over a transport queue:
// a lock-less submission/completion ring pair plus a registered buffer
// arena, polled by the application instead of waking it per operation.
//
// The future-based transport.Queue API costs one future allocation, one
// result allocation, and one wakeup per I/O — fine at QD 8, the wall at
// QD 256. A Ring recycles everything: applications claim fixed-size
// buffers from the arena, describe I/O by writing fixed-size SQ entries,
// flush them with one doorbell per train, and reap completions in
// batches from the CQ. On the steady state nothing on the submit or reap
// path allocates (CI-gated via testing.AllocsPerRun), and the reactor is
// woken once per doorbell, not once per op.
//
// Ownership discipline (enforced by the arena bitmap): a buffer moves
// claim -> submit -> reap -> release. Between submit and reap it belongs
// to the transport; touching it there is a data race in real life and a
// stale read here. Release returns it to the arena for reuse.
//
// Queues implementing transport.RingSubmitter (every session-engine
// binding: core, tcp, rdma) get the native allocation-free path — ring
// entries stage straight into the session's submit queue and drain
// through its batch-train reactor. Other queues (striped groups, the
// replicated cluster router) are driven through SubmitBatch/Submit: the
// same ring semantics, minus the zero-alloc guarantee, so rings compose
// with StripedQueue and ConnectReplicated unchanged.
package ring

import (
	"time"

	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// Config sizes a Ring.
type Config struct {
	// SQSize is the submission-ring capacity in entries, and the inflight
	// bound (default 64).
	SQSize int
	// CQSize is the completion-ring capacity (default 2x SQSize, minimum
	// SQSize). Submission throttles so CQ entries are never overwritten:
	// inflight + unreaped completions never exceed CQSize.
	CQSize int
	// Buffers is the registered-buffer count in the arena (default SQSize).
	Buffers int
	// BufSize is the bytes per registered buffer (default 128 KiB).
	BufSize int
	// Telemetry receives the ring.* metric group (nil = off).
	Telemetry *telemetry.Sink
	// Tenant stamps every ring submission with a tenant name for QoS
	// admission and per-tenant telemetry (empty = the queue's default).
	// Ring traffic drains through the session submit queue, so the
	// host-side QoS gate covers it like any other submission.
	Tenant string
}

func (c Config) withDefaults() Config {
	if c.SQSize <= 0 {
		c.SQSize = 64
	}
	if c.CQSize < c.SQSize {
		c.CQSize = 2 * c.SQSize
	}
	if c.Buffers <= 0 {
		c.Buffers = c.SQSize
	}
	if c.BufSize <= 0 {
		c.BufSize = 128 << 10
	}
	return c
}

// Buf is one registered buffer lent out by the arena. The zero Buf is
// invalid (no buffer attached), which a submission may use for ops that
// carry no payload.
type Buf struct {
	id int32 // arena index + 1; 0 = invalid
	b  []byte
}

// Bytes exposes the buffer contents (nil for the zero Buf).
func (b Buf) Bytes() []byte { return b.b }

// Valid reports whether b references an arena buffer.
func (b Buf) Valid() bool { return b.id != 0 }

// SQE is one fixed-size submission entry. Size bytes of Buf (from its
// start) are written for writes and filled for reads; UserData rides to
// the matching CQE untouched.
type SQE struct {
	Write    bool
	Flush    bool
	NSID     uint32
	Offset   int64
	Size     int
	Buf      Buf
	UserData uint64
}

// CQE is one fixed-size completion entry. Buf is the submission's buffer,
// back in the application's hands (release it when done). At is the
// virtual completion time — batched reaping would otherwise blur
// individual completion instants.
type CQE struct {
	UserData  uint64
	Status    nvme.Status
	Buf       Buf
	At        sim.Time
	Latency   time.Duration
	IOTime    time.Duration
	CommTime  time.Duration
	OtherTime time.Duration
}

// Err returns the completion status as an error (nil on success).
func (c *CQE) Err() error { return c.Status.Error() }

// slot is one inflight operation's recycled state: the IO descriptor,
// the completion future (native path), the pre-bound completion callback
// (created once, never per-op), and a copy of the submitted entry so the
// CQE can carry UserData and the buffer back.
type slot struct {
	io  transport.IO
	fut *sim.Future[*transport.Result]
	cb  func(*transport.Result)
	sqe SQE
}

// Ring is one submission/completion ring pair over a transport queue.
// It is single-owner like an io_uring: exactly one process submits and
// reaps (lock-less by construction — the simulation's cooperative
// scheduling is the model's memory ordering).
type Ring struct {
	e   *sim.Engine
	q   transport.Queue
	rs  transport.RingSubmitter // non-nil: native allocation-free path
	bq  transport.BatchQueue    // batched generic fallback
	tel *telemetry.Sink
	cfg Config

	sq             []SQE
	sqHead, sqTail int

	cq             []CQE
	cqHead, cqTail int
	cqReady        *sim.Signal

	slots     []slot
	freeSlots []int32
	inflight  int

	bufs     [][]byte
	freeBufs []int32
	claimed  []bool

	// Generic-path scratch, reused across Submit calls.
	iosScratch  []*transport.IO
	slotScratch []int32

	closed bool
}

// bufferAllocator lets a binding place the arena in its registered
// region (the adaptive fabric's core.Client allocates from the
// SHM-backed pool it registered at connect).
type bufferAllocator interface {
	AllocBuffer(size int) []byte
}

// New builds a ring over q. Buffers come from q's registered allocator
// when it has one (the zero-copy SHM binding), else from a private
// arena. The ring does not own q: Close detaches without closing it.
func New(e *sim.Engine, q transport.Queue, cfg Config) *Ring {
	cfg = cfg.withDefaults()
	r := &Ring{
		e:   e,
		q:   q,
		tel: cfg.Telemetry,
		cfg: cfg,

		sq:      make([]SQE, cfg.SQSize),
		cq:      make([]CQE, cfg.CQSize),
		cqReady: sim.NewSignal(e),

		slots:     make([]slot, cfg.SQSize),
		freeSlots: make([]int32, 0, cfg.SQSize),

		bufs:     make([][]byte, cfg.Buffers),
		freeBufs: make([]int32, 0, cfg.Buffers),
		claimed:  make([]bool, cfg.Buffers),

		iosScratch:  make([]*transport.IO, 0, cfg.SQSize),
		slotScratch: make([]int32, 0, cfg.SQSize),
	}
	r.rs, _ = q.(transport.RingSubmitter)
	r.bq, _ = q.(transport.BatchQueue)
	alloc, _ := q.(bufferAllocator)
	var arena []byte
	if alloc == nil {
		arena = make([]byte, cfg.Buffers*cfg.BufSize)
	}
	for i := 0; i < cfg.Buffers; i++ {
		if alloc != nil {
			r.bufs[i] = alloc.AllocBuffer(cfg.BufSize)
		} else {
			r.bufs[i] = arena[i*cfg.BufSize : (i+1)*cfg.BufSize : (i+1)*cfg.BufSize]
		}
		r.freeBufs = append(r.freeBufs, int32(i))
	}
	for i := cfg.SQSize - 1; i >= 0; i-- {
		si := int32(i)
		s := &r.slots[si]
		s.fut = sim.NewFuture[*transport.Result](e)
		s.cb = func(res *transport.Result) { r.complete(si, res) }
		r.freeSlots = append(r.freeSlots, si)
	}
	return r
}

// Native reports whether the underlying queue supports the
// allocation-free ring path (session-engine bindings do).
func (r *Ring) Native() bool { return r.rs != nil }

// BufSize returns the registered buffer size.
func (r *Ring) BufSize() int { return r.cfg.BufSize }

// Queued returns the SQ entries pushed but not yet submitted.
func (r *Ring) Queued() int { return r.sqTail - r.sqHead }

// Inflight returns operations submitted but not yet completed.
func (r *Ring) Inflight() int { return r.inflight }

// Completed returns CQ entries awaiting reap.
func (r *Ring) Completed() int { return r.cqTail - r.cqHead }

// Claim lends one registered buffer out of the arena; ok is false (a
// counted stall) when every buffer is lent out — reap and release first.
func (r *Ring) Claim() (Buf, bool) {
	n := len(r.freeBufs)
	if n == 0 {
		r.tel.Inc(telemetry.CtrRingBufStalls)
		return Buf{}, false
	}
	id := r.freeBufs[n-1]
	r.freeBufs = r.freeBufs[:n-1]
	r.claimed[id] = true
	return Buf{id: id + 1, b: r.bufs[id]}, true
}

// Release returns a claimed buffer to the arena. Releasing the zero Buf
// is a no-op; releasing a buffer twice panics (ownership bug).
func (r *Ring) Release(b Buf) {
	if b.id == 0 {
		return
	}
	id := b.id - 1
	if !r.claimed[id] {
		panic("ring: buffer released twice (or never claimed)")
	}
	r.claimed[id] = false
	r.freeBufs = append(r.freeBufs, id)
}

// Push writes one submission entry into the SQ without touching the
// transport; it reports false (a counted sq-full stall) when the SQ is
// full or the ring is closed. Entries reach the wire on the next Submit.
func (r *Ring) Push(sqe SQE) bool {
	if r.closed || r.sqTail-r.sqHead == len(r.sq) {
		r.tel.Inc(telemetry.CtrRingSQFull)
		return false
	}
	if sqe.Buf.Valid() && sqe.Size > len(sqe.Buf.b) {
		panic("ring: SQE size exceeds its buffer")
	}
	r.sq[r.sqTail%len(r.sq)] = sqe
	r.sqTail++
	return true
}

// Submit flushes queued SQ entries to the transport — as many as free
// completion space allows — and rings the doorbell once for the whole
// train. It returns the number submitted; entries that did not fit stay
// queued for the next Submit.
func (r *Ring) Submit(p *sim.Proc) int {
	if r.closed {
		return 0
	}
	budget := r.cqSpace()
	n := 0
	if r.rs != nil {
		for r.sqHead < r.sqTail && n < budget && len(r.freeSlots) > 0 {
			si := r.takeSlot(r.sq[r.sqHead%len(r.sq)])
			r.sqHead++
			s := &r.slots[si]
			if s.fut.Resolved() {
				s.fut.Renew()
			}
			s.fut.OnResolve(s.cb)
			r.rs.SubmitInto(p, &s.io, s.fut)
			n++
		}
		if n > 0 {
			r.rs.RingDoorbell(p)
		}
	} else {
		ios := r.iosScratch[:0]
		sis := r.slotScratch[:0]
		for r.sqHead < r.sqTail && n < budget && len(r.freeSlots) > 0 {
			si := r.takeSlot(r.sq[r.sqHead%len(r.sq)])
			r.sqHead++
			ios = append(ios, &r.slots[si].io)
			sis = append(sis, si)
			n++
		}
		if n > 0 {
			if r.bq != nil {
				for k, fut := range r.bq.SubmitBatch(p, ios) {
					fut.OnResolve(r.slots[sis[k]].cb)
				}
			} else {
				for k, io := range ios {
					r.q.Submit(p, io).OnResolve(r.slots[sis[k]].cb)
				}
			}
		}
		r.iosScratch = ios[:0]
		r.slotScratch = sis[:0]
	}
	if n > 0 {
		r.tel.Add(telemetry.CtrRingSubmits, int64(n))
		r.tel.Observe(telemetry.HistRingSubmitDepth, int64(n))
	}
	return n
}

// cqSpace bounds submission so completions are never dropped: inflight
// ops plus unreaped CQEs never exceed the CQ capacity.
func (r *Ring) cqSpace() int {
	return len(r.cq) - (r.cqTail - r.cqHead) - r.inflight
}

// takeSlot binds sqe to a free inflight slot and builds its IO in place.
func (r *Ring) takeSlot(sqe SQE) int32 {
	n := len(r.freeSlots)
	si := r.freeSlots[n-1]
	r.freeSlots = r.freeSlots[:n-1]
	s := &r.slots[si]
	s.sqe = sqe
	s.io = transport.IO{
		Write:  sqe.Write,
		Flush:  sqe.Flush,
		NSID:   sqe.NSID,
		Offset: sqe.Offset,
		Size:   sqe.Size,
		Tenant: r.cfg.Tenant,
	}
	if sqe.Buf.Valid() {
		s.io.Data = sqe.Buf.b[:sqe.Size]
	}
	r.inflight++
	return si
}

// complete runs in the resolver's context (the pre-bound per-slot
// callback): it retires the slot and publishes the CQE.
func (r *Ring) complete(si int32, res *transport.Result) {
	s := &r.slots[si]
	r.cq[r.cqTail%len(r.cq)] = CQE{
		UserData:  s.sqe.UserData,
		Status:    res.Status,
		Buf:       s.sqe.Buf,
		At:        r.e.Now(),
		Latency:   res.Latency,
		IOTime:    res.IOTime,
		CommTime:  res.CommTime,
		OtherTime: res.OtherTime,
	}
	r.cqTail++
	s.io.Data = nil
	r.inflight--
	r.freeSlots = append(r.freeSlots, si)
	r.cqReady.Fire()
}

// Reap copies up to len(dst) completions into dst, blocking until at
// least min (clamped to [1, len(dst)]) are available or nothing remains
// inflight. It returns the number reaped — 0 only when the ring is idle
// (nothing queued, inflight, or completed), so a poll loop terminates.
func (r *Ring) Reap(p *sim.Proc, dst []CQE, min int) int {
	if len(dst) == 0 {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if min > len(dst) {
		min = len(dst)
	}
	for r.cqTail-r.cqHead < min && r.inflight > 0 {
		r.cqReady.Reset()
		r.cqReady.Wait(p)
	}
	n := r.cqTail - r.cqHead
	if n == 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.cq[r.cqHead%len(r.cq)]
		r.cqHead++
	}
	r.tel.Add(telemetry.CtrRingReaps, int64(n))
	r.tel.Observe(telemetry.HistRingReapDepth, int64(n))
	return n
}

// Close detaches the ring: further pushes and submits are refused,
// inflight completions still land and can be reaped. The underlying
// queue is NOT closed — the ring layers on a connection it doesn't own.
func (r *Ring) Close() {
	r.closed = true
}
