package ring

import (
	"testing"
	"time"

	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// stubQueue is a synchronous RingSubmitter: SubmitInto resolves the
// caller's future inline with a single recycled Result, so nothing on
// the stub side allocates or parks — exactly what the zero-alloc gate
// needs to isolate the ring's own hot path.
type stubQueue struct {
	e        *sim.Engine
	res      transport.Result
	lat      time.Duration // >0: resolve via timer instead of inline
	status   nvme.Status
	subs     int
	bells    int
	lastData []byte
}

func (q *stubQueue) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	fut := sim.NewFuture[*transport.Result](q.e)
	q.finish(io, fut)
	return fut
}

func (q *stubQueue) SubmitInto(p *sim.Proc, io *transport.IO, fut *sim.Future[*transport.Result]) {
	q.subs++
	q.finish(io, fut)
}

func (q *stubQueue) RingDoorbell(p *sim.Proc) { q.bells++ }

func (q *stubQueue) Close() {}

func (q *stubQueue) finish(io *transport.IO, fut *sim.Future[*transport.Result]) {
	q.lastData = io.Data
	if !io.Write && io.Data != nil {
		for i := range io.Data {
			io.Data[i] = 0xAB
		}
	}
	if q.lat > 0 {
		lat := q.lat
		st := q.status
		q.e.After(lat, func() {
			fut.Resolve(&transport.Result{Status: st, Latency: lat})
		})
		return
	}
	q.res = transport.Result{Status: q.status, Latency: 5 * time.Microsecond}
	fut.Resolve(&q.res)
}

// genericStub implements only Queue (+ optionally BatchQueue), to drive
// the ring's fallback path used by striped and replicated queues.
type genericStub struct {
	e       *sim.Engine
	batched bool
	batches int
	singles int
}

func (q *genericStub) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	q.singles++
	fut := sim.NewFuture[*transport.Result](q.e)
	q.e.After(time.Microsecond, func() {
		fut.Resolve(&transport.Result{Status: nvme.StatusSuccess})
	})
	return fut
}

func (q *genericStub) Close() {}

// batchStub adds SubmitBatch on top of genericStub.
type batchStub struct{ genericStub }

func (q *batchStub) SubmitBatch(p *sim.Proc, ios []*transport.IO) []*sim.Future[*transport.Result] {
	q.batches++
	futs := make([]*sim.Future[*transport.Result], len(ios))
	for i := range ios {
		fut := sim.NewFuture[*transport.Result](q.e)
		futs[i] = fut
		q.e.After(time.Microsecond, func() {
			fut.Resolve(&transport.Result{Status: nvme.StatusSuccess})
		})
	}
	return futs
}

func TestRingRoundTripNative(t *testing.T) {
	e := sim.NewEngine(1)
	q := &stubQueue{e: e, status: nvme.StatusSuccess}
	tel := telemetry.New()
	r := New(e, q, Config{SQSize: 8, BufSize: 4096, Telemetry: tel})
	if !r.Native() {
		t.Fatal("stub RingSubmitter not detected as native")
	}
	e.Go("app", func(p *sim.Proc) {
		var cq [8]CQE
		for ud := uint64(1); ud <= 4; ud++ {
			buf, ok := r.Claim()
			if !ok {
				t.Fatal("claim failed with a fresh arena")
			}
			if !r.Push(SQE{NSID: 1, Offset: int64(ud) * 4096, Size: 4096, Buf: buf, UserData: ud}) {
				t.Fatal("push failed with an empty SQ")
			}
		}
		if got := r.Submit(p); got != 4 {
			t.Fatalf("submitted %d, want 4", got)
		}
		if q.bells != 1 {
			t.Fatalf("doorbell rang %d times for one train, want 1", q.bells)
		}
		n := r.Reap(p, cq[:], 4)
		if n != 4 {
			t.Fatalf("reaped %d, want 4", n)
		}
		seen := map[uint64]bool{}
		for _, c := range cq[:n] {
			if c.Status != nvme.StatusSuccess {
				t.Fatalf("completion %d status = %v", c.UserData, c.Status)
			}
			if !c.Buf.Valid() {
				t.Fatalf("completion %d lost its buffer", c.UserData)
			}
			if got := c.Buf.Bytes()[0]; got != 0xAB {
				t.Fatalf("read did not land in the registered buffer: byte = %#x", got)
			}
			seen[c.UserData] = true
			r.Release(c.Buf)
		}
		for ud := uint64(1); ud <= 4; ud++ {
			if !seen[ud] {
				t.Fatalf("completion for user data %d never reaped", ud)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter(telemetry.CtrRingSubmits); got != 4 {
		t.Fatalf("ring.submits = %d, want 4", got)
	}
	if got := tel.Counter(telemetry.CtrRingReaps); got != 4 {
		t.Fatalf("ring.reaps = %d, want 4", got)
	}
}

// TestRingHotPathZeroAlloc is the CI allocation gate required by the
// ring contract: on the steady state, one full claim -> push -> submit
// -> reap -> release cycle performs ZERO heap allocations. The stub
// resolves synchronously so the measurement isolates the ring itself
// (telemetry stays enabled — it is part of the hot path).
func TestRingHotPathZeroAlloc(t *testing.T) {
	e := sim.NewEngine(2)
	q := &stubQueue{e: e, status: nvme.StatusSuccess}
	r := New(e, q, Config{SQSize: 16, BufSize: 4096, Telemetry: telemetry.New()})
	e.Go("app", func(p *sim.Proc) {
		var cq [16]CQE
		cycle := func(depth int) {
			for i := 0; i < depth; i++ {
				buf, ok := r.Claim()
				if !ok {
					t.Fatal("claim failed")
				}
				if !r.Push(SQE{Write: i%2 == 0, Offset: int64(i) * 4096, Size: 4096, Buf: buf, UserData: uint64(i)}) {
					t.Fatal("push failed")
				}
			}
			if r.Submit(p) != depth {
				t.Fatal("short submit")
			}
			if r.Reap(p, cq[:], depth) != depth {
				t.Fatal("short reap")
			}
			for i := 0; i < depth; i++ {
				r.Release(cq[i].Buf)
			}
		}
		// Warm every slot once so per-slot callback capacity exists.
		cycle(16)
		allocs := testing.AllocsPerRun(200, func() { cycle(16) })
		if allocs != 0 {
			t.Errorf("ring hot path allocates %.1f objects per 16-op cycle, want 0", allocs)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRingGenericFallbackSingleAndBatch(t *testing.T) {
	for _, batched := range []bool{false, true} {
		e := sim.NewEngine(3)
		var q transport.Queue
		gs := &genericStub{e: e}
		bs := &batchStub{genericStub{e: e}}
		if batched {
			q = bs
		} else {
			q = gs
		}
		r := New(e, q, Config{SQSize: 8, BufSize: 512})
		if r.Native() {
			t.Fatal("generic stub misdetected as ring-native")
		}
		e.Go("app", func(p *sim.Proc) {
			var cq [8]CQE
			for i := 0; i < 6; i++ {
				buf, _ := r.Claim()
				r.Push(SQE{Size: 512, Buf: buf, UserData: uint64(i)})
			}
			if got := r.Submit(p); got != 6 {
				t.Fatalf("submitted %d, want 6", got)
			}
			if n := r.Reap(p, cq[:], 6); n != 6 {
				t.Fatalf("reaped %d, want 6", n)
			}
			for i := 0; i < 6; i++ {
				r.Release(cq[i].Buf)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if batched && bs.batches != 1 {
			t.Fatalf("batched fallback used %d SubmitBatch calls, want 1", bs.batches)
		}
		if !batched && gs.singles != 6 {
			t.Fatalf("single fallback used %d Submit calls, want 6", gs.singles)
		}
	}
}

// The CQ must never be overwritten: submission throttles so inflight +
// unreaped never exceeds CQSize, and the overflow stays queued in the SQ
// until the application reaps.
func TestRingCQBackpressure(t *testing.T) {
	e := sim.NewEngine(4)
	q := &stubQueue{e: e, status: nvme.StatusSuccess}
	r := New(e, q, Config{SQSize: 4, CQSize: 4, Buffers: 16, BufSize: 512})
	e.Go("app", func(p *sim.Proc) {
		var cq [4]CQE
		for i := 0; i < 4; i++ {
			r.Push(SQE{Size: 512, UserData: uint64(i)})
		}
		if got := r.Submit(p); got != 4 {
			t.Fatalf("first train submitted %d, want 4", got)
		}
		// 4 completions sit unreaped; the CQ is full.
		for i := 4; i < 8; i++ {
			r.Push(SQE{Size: 512, UserData: uint64(i)})
		}
		if got := r.Submit(p); got != 0 {
			t.Fatalf("submit with a full CQ let %d ops through, want 0", got)
		}
		if r.Reap(p, cq[:2], 1) != 2 {
			t.Fatal("short reap")
		}
		if got := r.Submit(p); got != 2 {
			t.Fatalf("after reaping 2, submit admitted %d, want 2", got)
		}
		for r.Completed() > 0 || r.Inflight() > 0 || r.Queued() > 0 {
			if r.Reap(p, cq[:], 1) == 0 {
				r.Submit(p)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRingStallCountersAndErrors(t *testing.T) {
	e := sim.NewEngine(5)
	q := &stubQueue{e: e, status: nvme.StatusCapacityExceeded}
	tel := telemetry.New()
	r := New(e, q, Config{SQSize: 2, Buffers: 1, BufSize: 512, Telemetry: tel})
	e.Go("app", func(p *sim.Proc) {
		buf, ok := r.Claim()
		if !ok {
			t.Fatal("first claim failed")
		}
		if _, ok := r.Claim(); ok {
			t.Fatal("claim succeeded with an empty arena")
		}
		r.Push(SQE{Size: 512, Buf: buf})
		r.Push(SQE{Size: 512})
		if r.Push(SQE{Size: 512}) {
			t.Fatal("push succeeded with a full SQ")
		}
		r.Submit(p)
		var cq [2]CQE
		if r.Reap(p, cq[:], 2) != 2 {
			t.Fatal("short reap")
		}
		if cq[0].Status != nvme.StatusCapacityExceeded || cq[0].Err() == nil {
			t.Fatalf("error status lost: %v", cq[0].Status)
		}
		r.Release(cq[0].Buf)
		r.Release(cq[1].Buf) // zero Buf: no-op
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter(telemetry.CtrRingBufStalls); got != 1 {
		t.Fatalf("ring.buf_stalls = %d, want 1", got)
	}
	if got := tel.Counter(telemetry.CtrRingSQFull); got != 1 {
		t.Fatalf("ring.sq_full_stalls = %d, want 1", got)
	}
}

func TestRingBlockingReapAndClose(t *testing.T) {
	e := sim.NewEngine(6)
	q := &stubQueue{e: e, lat: 10 * time.Microsecond, status: nvme.StatusSuccess}
	r := New(e, q, Config{SQSize: 4, BufSize: 512})
	e.Go("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r.Push(SQE{Size: 512, UserData: uint64(i)})
		}
		r.Submit(p)
		start := p.Now()
		var cq [4]CQE
		if n := r.Reap(p, cq[:], 3); n != 3 {
			t.Fatalf("blocking reap returned %d, want 3", n)
		}
		if p.Now().Sub(start) < 10*time.Microsecond {
			t.Fatal("reap returned before the completions could have arrived")
		}
		r.Close()
		if r.Push(SQE{Size: 512}) {
			t.Fatal("push succeeded on a closed ring")
		}
		if r.Reap(p, cq[:], 1) != 0 {
			t.Fatal("idle closed ring reaped nonzero")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRingDoubleReleasePanics(t *testing.T) {
	e := sim.NewEngine(7)
	r := New(e, &stubQueue{e: e}, Config{SQSize: 2, BufSize: 512})
	buf, _ := r.Claim()
	r.Release(buf)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	r.Release(buf)
}
