// Package cluster is the self-healing sharded + replicated namespace
// layer: a placement/replication router stacked above transport.Queue
// that turns N independent NVMe-oF targets into one survivable
// namespace.
//
// Placement shards the namespace into stripe-aligned extents and maps
// each extent onto R distinct seats of a consistent-hash ring
// (ring.go). Writes fan out to all R replicas and acknowledge at the
// write quorum W (majority by default); per-extent version tracking
// records which replicas hold the latest quorum-committed version, and
// reads are routed only to replicas known to hold it — read-your-write
// holds across replica failover. Replica death is detected from
// keep-alive probes and typed NVMe errors on the data path; a dead
// member's seat is inherited by a spare, and a background
// re-replication loop (rebuild.go) copies stale extents from surviving
// replicas until the cluster is whole again. Everything runs on the
// deterministic sim clock: a given seed replays every failover and
// rebuild bit-identically.
package cluster

import (
	"fmt"
	"time"

	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// Member is one attachable replica target: an established queue to a
// target that stores extents at identity offsets (replica i's byte x is
// the namespace's byte x).
type Member struct {
	// Name labels the member in stats, traces, and errors (its NQN).
	Name string
	// Queue is the established connection. It should be configured with
	// a command timeout and keep-alive so crashed targets produce typed
	// errors instead of hanging the probe loop.
	Queue transport.Queue
}

// Options configures a replicated namespace.
type Options struct {
	// Seats is N, the number of data-bearing targets the namespace is
	// sharded across (default: all members, leaving no spares).
	Seats int
	// Replicas is R, the copies kept of each extent (default 2, capped
	// at Seats).
	Replicas int
	// WriteQuorum is W, the replica acks required before a write
	// completes (default majority of R; clamped to [1, R]).
	WriteQuorum int
	// ExtentSize is the placement granularity in bytes, rounded up to a
	// BlockSize multiple (default transport.DefaultStripeUnit). I/Os
	// spanning extents split at boundaries and aggregate like striping.
	ExtentSize int64
	// Vnodes is the virtual-node count per seat (DefaultVnodes when 0).
	Vnodes int
	// ProbeInterval is the keep-alive probing period per member; 0
	// disables probing (death is then detected from data-path errors
	// only).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe: a keep-alive that neither
	// completes nor fails within it counts as a miss (default 4x
	// ProbeInterval). This catches members whose transport is nursing
	// commands through reconnect/retry loops instead of failing them —
	// unresponsive is as dead as erroring.
	ProbeTimeout time.Duration
	// ProbeMisses is the consecutive typed-failure count (probe or data
	// path) that declares a member dead (default 2).
	ProbeMisses int
	// RetainData makes rebuild move real bytes (the targets store
	// payloads); modeled namespaces copy timing only.
	RetainData bool
	// Namespace labels this cluster in stats.
	Namespace string
	// Telemetry receives cluster counters, rebuild histograms, and
	// replica up/down trace events; nil disables.
	Telemetry *telemetry.Sink
}

func (o Options) withDefaults(members int) Options {
	if o.Seats <= 0 || o.Seats > members {
		o.Seats = members
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > o.Seats {
		o.Replicas = o.Seats
	}
	if o.WriteQuorum <= 0 {
		o.WriteQuorum = o.Replicas/2 + 1
	}
	if o.WriteQuorum > o.Replicas {
		o.WriteQuorum = o.Replicas
	}
	if o.ExtentSize <= 0 {
		o.ExtentSize = transport.DefaultStripeUnit
	}
	if rem := o.ExtentSize % transport.BlockSize; rem != 0 {
		o.ExtentSize += transport.BlockSize - rem
	}
	if o.ProbeMisses <= 0 {
		o.ProbeMisses = 2
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 4 * o.ProbeInterval
	}
	return o
}

// seatState is one stable placement slot. gen bumps whenever the
// occupant changes, invalidating every per-extent ack recorded against
// the previous occupant in O(1).
type seatState struct {
	member int // members index; -1 while vacant (dead occupant, no spare)
	gen    int64
}

// memberState tracks one attached target's service state.
type memberState struct {
	idx    int
	name   string
	q      transport.Queue
	alive  bool
	seat   int // occupied seat, -1 when spare or displaced
	misses int // consecutive typed failures (probe or data path)

	// Probe fencing: probeGen numbers the keep-alive probes issued to
	// this member; probeSeen is the highest generation whose outcome
	// (typed answer, timeout, or late resolution) has been applied to the
	// health streak. A hung probe can resolve long after newer probes
	// settled — its feedback is stale and must be dropped, not replayed
	// against the newer streak. Close fences by advancing probeSeen past
	// probeGen, retiring every in-flight probe at once.
	probeGen  int64
	probeSeen int64
}

// replState is one (extent, seat) replica record: the highest version
// this seat's occupant has acknowledged, valid only while gen matches
// the seat's current generation. chain serializes writes to this
// replica so quorum-overlapped writes cannot reorder on the wire.
type replState struct {
	seat  int
	gen   int64
	acked int64
	chain *sim.Future[*transport.Result]
}

// extentState is the per-extent routing record.
type extentState struct {
	idx       int64
	ver       int64 // latest version assigned to a write
	committed int64 // highest quorum-acknowledged version
	size      int   // bytes ever written within the extent (rebuild copy size)
	repl      []replState
}

// Cluster is the replicated namespace router. It implements
// transport.Queue and transport.BatchQueue, so perf streams, the oaf
// facade, and striped groups stack on it unchanged.
type Cluster struct {
	e       *sim.Engine
	opts    Options
	ring    *Ring
	members []*memberState
	seats   []seatState
	spares  []int // member indices waiting to inherit a seat, FIFO

	extents    map[int64]*extentState
	extentList []*extentState // deterministic iteration order for rebuild

	workQ   *sim.Queue[func(p *sim.Proc)]
	dirty   *sim.Signal // wakes the rebuild loop
	settled *sim.Signal // fired whenever a rebuild round drains the stale set
	closing bool
	tel     *telemetry.Sink
	rr      int // read-rotation cursor across eligible replicas

	// Counters mirrored into telemetry (kept locally for Stats()).
	writes, reads  int64
	quorumFails    int64
	readFailovers  int64
	degradedIOs    int64
	replicaDowns   int64
	replicaUps     int64
	rebuildRounds  int64
	rebuildExtents int64
	rebuildBytes   int64
}

// New assembles a replicated namespace over the given members: the
// first Seats members occupy the ring's seats, the rest start as
// spares. Call Close to tear every member queue down.
func New(e *sim.Engine, members []Member, opts Options) (*Cluster, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: need at least one member")
	}
	opts = opts.withDefaults(len(members))
	if opts.Seats > 64 {
		return nil, fmt.Errorf("cluster: at most 64 seats, got %d", opts.Seats)
	}
	c := &Cluster{
		e:       e,
		opts:    opts,
		ring:    NewRing(opts.Seats, opts.Replicas, opts.Vnodes),
		seats:   make([]seatState, opts.Seats),
		extents: make(map[int64]*extentState),
		workQ:   sim.NewQueue[func(p *sim.Proc)](e, 0),
		dirty:   sim.NewSignal(e),
		settled: sim.NewSignal(e),
		tel:     opts.Telemetry,
	}
	for i, m := range members {
		ms := &memberState{idx: i, name: m.Name, q: m.Queue, alive: true, seat: -1}
		c.members = append(c.members, ms)
		if i < opts.Seats {
			ms.seat = i
			c.seats[i] = seatState{member: i}
		} else {
			c.spares = append(c.spares, i)
		}
	}
	e.GoDaemon("cluster-worker", c.workerLoop)
	e.GoDaemon("cluster-rebuild", c.rebuildLoop)
	if opts.ProbeInterval > 0 {
		for _, ms := range c.members {
			m := ms
			e.GoDaemon(fmt.Sprintf("cluster-probe-%s", m.name), func(p *sim.Proc) {
				c.probeLoop(p, m)
			})
		}
	}
	return c, nil
}

// Engine exposes the simulation engine (for facades and tests).
func (c *Cluster) Engine() *sim.Engine { return c.e }

// Options returns the effective (defaulted) configuration.
func (c *Cluster) Options() Options { return c.opts }

// workerLoop executes deferred submissions: work that must run on a
// process (queue Submit can block on flow control) but was scheduled
// from a resolve callback (write chains, read failovers).
func (c *Cluster) workerLoop(p *sim.Proc) {
	for {
		fn, ok := c.workQ.Get(p)
		if !ok {
			return
		}
		fn(p)
	}
}

// defer_ schedules fn on the worker process.
func (c *Cluster) defer_(fn func(p *sim.Proc)) { c.workQ.TryPut(fn) }

// extentFor maps a byte offset to its extent index.
func (c *Cluster) extentFor(off int64) int64 { return off / c.opts.ExtentSize }

// extent returns (creating on first touch) the routing record for ext.
func (c *Cluster) extent(ext int64) *extentState {
	st, ok := c.extents[ext]
	if ok {
		return st
	}
	st = &extentState{idx: ext, repl: make([]replState, 0, c.opts.Replicas)}
	seats := c.ring.Locate(ext, make([]int, 0, c.opts.Replicas))
	for _, s := range seats {
		st.repl = append(st.repl, replState{seat: s, gen: c.seats[s].gen})
	}
	c.extents[ext] = st
	c.extentList = append(c.extentList, st)
	return st
}

// occupant returns the member currently seated at seat, nil when the
// seat is vacant.
func (c *Cluster) occupant(seat int) *memberState {
	m := c.seats[seat].member
	if m < 0 {
		return nil
	}
	return c.members[m]
}

// eligible reports whether replica ri of st can serve a read without
// violating read-your-write: its occupant is alive and has acknowledged
// at least the extent's committed version under the seat's current
// generation. An extent never committed reads from any live replica.
func (c *Cluster) eligible(st *extentState, ri int) bool {
	rs := &st.repl[ri]
	ms := c.occupant(rs.seat)
	if ms == nil || !ms.alive {
		return false
	}
	if st.committed == 0 {
		return true
	}
	return rs.gen == c.seats[rs.seat].gen && rs.acked >= st.committed
}

// Submit implements transport.Queue: writes replicate to quorum, reads
// route to an up-to-date replica, I/Os spanning extents split and
// aggregate, admin commands probe the first live member, and flush fans
// out to every live seated member (the durability barrier must drain
// every replica it may have dirtied).
func (c *Cluster) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	if io.Admin != 0 {
		return c.submitAdmin(p, io)
	}
	if io.Flush {
		return c.submitFlush(p, io)
	}
	segs := transport.SplitAt(io, c.opts.ExtentSize)
	if len(segs) == 1 {
		return c.submitSeg(p, io)
	}
	futs := make([]*sim.Future[*transport.Result], len(segs))
	for i, seg := range segs {
		futs[i] = c.submitSeg(p, seg)
	}
	return transport.AggregateResults(c.e, io, segs, futs)
}

func (c *Cluster) submitSeg(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	if io.Write {
		return c.submitWrite(p, io)
	}
	return c.submitRead(p, io)
}

// submitAdmin forwards an admin command to the first live member.
func (c *Cluster) submitAdmin(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	for _, ms := range c.members {
		if ms.alive {
			return ms.q.Submit(p, io)
		}
	}
	fut := sim.NewFuture[*transport.Result](c.e)
	fut.Resolve(&transport.Result{Status: nvme.StatusNamespaceNotRdy})
	return fut
}

// submitFlush fans the barrier out to every live seated member.
func (c *Cluster) submitFlush(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	var futs []*sim.Future[*transport.Result]
	for s := range c.seats {
		ms := c.occupant(s)
		if ms == nil || !ms.alive {
			continue
		}
		futs = append(futs, ms.q.Submit(p, &transport.IO{Flush: true, NSID: io.NSID, Tenant: io.Tenant}))
	}
	if len(futs) == 0 {
		fut := sim.NewFuture[*transport.Result](c.e)
		fut.Resolve(&transport.Result{Status: nvme.StatusNamespaceNotRdy})
		return fut
	}
	// A flush fan-out carries no offsets; seat order is the deterministic
	// tie-break for the merged status.
	return transport.AggregateResults(c.e, io, nil, futs)
}

// writeOp tracks one replicated write until quorum (or until quorum
// becomes unreachable).
type writeOp struct {
	c        *Cluster
	st       *extentState
	v        int64
	out      *sim.Future[*transport.Result]
	start    sim.Time
	needed   int
	pending  int // replica submissions still unresolved
	acks     int
	resolved bool
	merged   transport.Result
	errSt    nvme.Status
}

// ack folds one successful replica completion in; the W-th ack commits
// the version and resolves the caller's future.
func (w *writeOp) ack(r *transport.Result) {
	w.pending--
	w.acks++
	if r.Latency > w.merged.Latency {
		w.merged.Latency = r.Latency
	}
	if r.IOTime > w.merged.IOTime {
		w.merged.IOTime = r.IOTime
	}
	if r.CommTime > w.merged.CommTime {
		w.merged.CommTime = r.CommTime
	}
	if w.resolved || w.acks < w.needed {
		return
	}
	w.resolved = true
	if w.v > w.st.committed {
		w.st.committed = w.v
	}
	w.c.writes++
	w.c.tel.Inc(telemetry.CtrReplWrites)
	res := w.merged
	res.Status = nvme.StatusSuccess
	res.Latency = w.c.e.Now().Sub(w.start)
	if other := res.Latency - res.IOTime - res.CommTime; other > 0 {
		res.OtherTime = other
	}
	w.out.Resolve(&res)
}

// fail folds one replica failure in; when quorum can no longer be
// reached the write fails with the first replica error.
func (w *writeOp) fail(st nvme.Status) {
	w.pending--
	if w.errSt == nvme.StatusSuccess {
		w.errSt = st
	}
	if w.resolved || w.acks+w.pending >= w.needed {
		return
	}
	w.resolved = true
	w.c.quorumFails++
	w.c.tel.Inc(telemetry.CtrReplQuorumFails)
	w.out.Resolve(&transport.Result{
		Status:  w.errSt,
		Latency: w.c.e.Now().Sub(w.start),
	})
}

// submitWrite fans one extent-contained write out to its R replicas and
// completes at the write quorum. Each replica write rides that
// replica's per-extent chain, so two overlapping writes to the same
// extent apply in version order on every replica.
func (c *Cluster) submitWrite(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	st := c.extent(c.extentFor(io.Offset))
	st.ver++
	v := st.ver
	if end := int(io.Offset + int64(io.Size) - st.idx*c.opts.ExtentSize); end > st.size {
		st.size = end
	}
	w := &writeOp{
		c: c, st: st, v: v,
		out:    sim.NewFuture[*transport.Result](c.e),
		start:  p.Now(),
		needed: c.opts.WriteQuorum,
	}
	issued := 0
	first := true
	for ri := range st.repl {
		rs := &st.repl[ri]
		ms := c.occupant(rs.seat)
		if ms == nil || !ms.alive {
			continue
		}
		// Only the first replica copy is QoS-chargeable: a quorum write
		// debits the tenant's budget once, the fan-out copies ride exempt
		// but stay attributed for per-tenant telemetry.
		wio := &transport.IO{
			Write: true, NSID: io.NSID, Offset: io.Offset, Size: io.Size,
			Data: io.Data, NoFill: !first || io.NoFill,
			Tenant: io.Tenant, QoSExempt: !first || io.QoSExempt,
		}
		first = false
		issued++
		w.pending++
		c.tel.Inc(telemetry.CtrReplReplicaWrites)
		c.replicaWrite(p, st, ri, ms, wio, v, w)
	}
	if issued < len(st.repl) {
		c.degradedIOs++
		c.tel.Inc(telemetry.CtrReplDegraded)
	}
	if issued < w.needed {
		// Not enough live replicas to ever reach quorum: fail fast (the
		// issued writes still complete in the background and record
		// their acks for rebuild bookkeeping).
		w.resolved = true
		c.quorumFails++
		c.tel.Inc(telemetry.CtrReplQuorumFails)
		w.out.Resolve(&transport.Result{Status: nvme.StatusNamespaceNotRdy})
	}
	return w.out
}

// replicaWrite issues one replica's copy of write v through the
// (extent, seat) chain and records the ack against the seat generation
// it was issued under.
func (c *Cluster) replicaWrite(p *sim.Proc, st *extentState, ri int, ms *memberState, io *transport.IO, v int64, w *writeOp) {
	rs := &st.repl[ri]
	gen := c.seats[rs.seat].gen
	fut := c.chainSubmit(p, rs, ms.q, io)
	fut.OnResolve(func(r *transport.Result) {
		if r.Status == nvme.StatusSuccess {
			c.noteSuccess(ms)
			// The ack only counts while the member still holds the seat
			// it was written through; a promoted spare restarts from a
			// clean generation.
			if c.seats[rs.seat].gen == gen {
				rs.gen = gen
				if v > rs.acked {
					rs.acked = v
				}
			}
			if w != nil {
				w.ack(r)
			}
			return
		}
		c.noteFailure(ms, r.Status)
		if w != nil {
			w.fail(r.Status)
		}
	})
	fut.OnResolve(func(*transport.Result) { c.wakeIfStale(st) })
}

// wakeIfStale re-wakes the rebuild loop when a write resolution leaves
// (or reveals) a stale replica on the extent. This closes the window the
// rebuild loop skips on purpose: a copy is never queued behind a pending
// chained write, so the write's own completion must re-trigger the pass
// that decides whether a copy is still needed.
func (c *Cluster) wakeIfStale(st *extentState) {
	if c.closing {
		return
	}
	for ri := range st.repl {
		if c.staleRepl(st, ri) {
			c.dirty.Fire()
			return
		}
	}
}

// chainSubmit serializes submissions per (extent, seat): the new I/O is
// issued immediately when the previous one has completed, otherwise it
// is deferred to the worker process and issued on completion. This
// prevents a quorum-overlapped later write from passing an earlier one
// on the same replica queue.
func (c *Cluster) chainSubmit(p *sim.Proc, rs *replState, q transport.Queue, io *transport.IO) *sim.Future[*transport.Result] {
	out := sim.NewFuture[*transport.Result](c.e)
	prev := rs.chain
	rs.chain = out
	if prev == nil || prev.Resolved() {
		q.Submit(p, io).OnResolve(out.Resolve)
		return out
	}
	prev.OnResolve(func(*transport.Result) {
		c.defer_(func(dp *sim.Proc) {
			q.Submit(dp, io).OnResolve(out.Resolve)
		})
	})
	return out
}

// readOp tracks one replicated read across failover attempts.
type readOp struct {
	c     *Cluster
	st    *extentState
	io    *transport.IO
	out   *sim.Future[*transport.Result]
	tried []bool
}

// pickReplica returns the next untried eligible replica for st, -1 when
// none remain. Rotation spreads read load across the eligible set.
func (c *Cluster) pickReplica(st *extentState, tried []bool) int {
	n := len(st.repl)
	start := c.rr
	c.rr++
	for k := 0; k < n; k++ {
		ri := (start + k) % n
		if tried != nil && tried[ri] {
			continue
		}
		if c.eligible(st, ri) {
			return ri
		}
	}
	return -1
}

// attach wires the failover handler to one read attempt: a typed error
// marks the replica suspect and re-drives the read on the next eligible
// one; running out of replicas surfaces the last error.
func (op *readOp) attach(ri int, ms *memberState, fut *sim.Future[*transport.Result]) {
	fut.OnResolve(func(r *transport.Result) {
		if r.Status == nvme.StatusSuccess {
			op.c.noteSuccess(ms)
			op.c.reads++
			op.c.tel.Inc(telemetry.CtrReplReads)
			op.out.Resolve(r)
			return
		}
		op.c.noteFailure(ms, r.Status)
		op.tried[ri] = true
		next := op.c.pickReplica(op.st, op.tried)
		if next < 0 {
			op.out.Resolve(r)
			return
		}
		op.c.readFailovers++
		op.c.tel.Inc(telemetry.CtrReplReadFailovers)
		nm := op.c.occupant(op.st.repl[next].seat)
		op.c.defer_(func(dp *sim.Proc) {
			op.attach(next, nm, nm.q.Submit(dp, op.io))
		})
	})
}

// submitRead routes one extent-contained read to an up-to-date replica.
func (c *Cluster) submitRead(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	st := c.extent(c.extentFor(io.Offset))
	op := &readOp{
		c: c, st: st, io: io,
		out:   sim.NewFuture[*transport.Result](c.e),
		tried: make([]bool, len(st.repl)),
	}
	ri := c.pickReplica(st, nil)
	if ri < 0 {
		op.out.Resolve(&transport.Result{Status: nvme.StatusNamespaceNotRdy})
		return op.out
	}
	ms := c.occupant(st.repl[ri].seat)
	op.attach(ri, ms, ms.q.Submit(p, io))
	return op.out
}

// SubmitBatch implements transport.BatchQueue: single-extent reads are
// grouped per chosen replica and submitted as one doorbell per member;
// everything else (writes, split I/Os, admin) falls back to Submit
// semantics within the same call. Futures align with ios.
func (c *Cluster) SubmitBatch(p *sim.Proc, ios []*transport.IO) []*sim.Future[*transport.Result] {
	out := make([]*sim.Future[*transport.Result], len(ios))
	type slot struct {
		idx int // ios index
		ri  int // replica index within its extent
		op  *readOp
	}
	perMember := make(map[*memberState][]slot)
	memberIOs := make(map[*memberState][]*transport.IO)
	for i, io := range ios {
		if io.Admin != 0 || io.Flush || io.Write ||
			transport.SpanCount(io, c.opts.ExtentSize) > 1 {
			out[i] = c.Submit(p, io)
			continue
		}
		st := c.extent(c.extentFor(io.Offset))
		op := &readOp{
			c: c, st: st, io: io,
			out:   sim.NewFuture[*transport.Result](c.e),
			tried: make([]bool, len(st.repl)),
		}
		out[i] = op.out
		ri := c.pickReplica(st, nil)
		if ri < 0 {
			op.out.Resolve(&transport.Result{Status: nvme.StatusNamespaceNotRdy})
			continue
		}
		ms := c.occupant(st.repl[ri].seat)
		perMember[ms] = append(perMember[ms], slot{idx: i, ri: ri, op: op})
		memberIOs[ms] = append(memberIOs[ms], io)
	}
	// Iterate members in attachment order for determinism (map order is
	// randomized; member slices are not).
	for _, ms := range c.members {
		slots := perMember[ms]
		if len(slots) == 0 {
			continue
		}
		list := memberIOs[ms]
		if bq, ok := ms.q.(transport.BatchQueue); ok {
			futs := bq.SubmitBatch(p, list)
			for k, sl := range slots {
				sl.op.attach(sl.ri, ms, futs[k])
			}
			continue
		}
		for k, sl := range slots {
			sl.op.attach(sl.ri, ms, ms.q.Submit(p, list[k]))
		}
	}
	return out
}

// probeOutcome applies one probe's result to the member's health streak.
// gen fences stale feedback: once a probe at generation g has settled
// (typed answer, timeout, or late resolution), resolutions of probes
// OLDER than g are dropped — several overlapping hung probes resolving
// out of order must not flap noteSuccess/noteFailure against the streak
// a newer probe established. A probe's own late resolution (gen ==
// probeSeen after its timeout) still applies: a late success is the
// revival signal.
func (c *Cluster) probeOutcome(ms *memberState, gen int64, st nvme.Status) {
	if c.closing || gen < ms.probeSeen {
		return
	}
	ms.probeSeen = gen
	if st == nvme.StatusSuccess {
		c.noteSuccess(ms)
	} else {
		c.noteFailure(ms, st)
	}
}

// noteSuccess clears a member's failure streak and re-admits it when it
// was considered dead (a restarted target answering again). During
// teardown nothing revives: queue close completes outstanding I/O, and a
// late success must not re-seat a dead member or log fault events.
func (c *Cluster) noteSuccess(ms *memberState) {
	if c.closing {
		return
	}
	ms.misses = 0
	if ms.alive {
		return
	}
	ms.alive = true
	c.replicaUps++
	c.tel.Inc(telemetry.CtrReplicaUp)
	c.tel.Trace(int64(c.e.Now()), telemetry.EvReplicaUp, 0, "", ms.name)
	if ms.seat < 0 {
		// Displaced while dead: rejoin as a spare and take over any
		// vacant seat immediately.
		c.spares = append(c.spares, ms.idx)
		c.fillVacantSeats()
		return
	}
	// Still the owner of its seat (no spare was free): resume it with
	// the generation intact — data written before the crash is still on
	// disk, so only the writes it missed rebuild.
	if c.seats[ms.seat].member < 0 {
		c.seats[ms.seat].member = ms.idx
	}
	c.kickRebuild(ms.name)
}

// noteFailure records a typed transient failure against a member and
// declares it dead once the miss threshold is crossed. Non-retryable
// statuses are command-level errors, not death signals.
func (c *Cluster) noteFailure(ms *memberState, st nvme.Status) {
	if c.closing {
		return
	}
	if !st.Retryable() && st != nvme.StatusAbortRequested {
		return
	}
	ms.misses++
	if ms.alive && ms.misses >= c.opts.ProbeMisses {
		c.declareDead(ms)
	}
}

// declareDead removes a member from service: its seat passes to a spare
// (bumping the seat generation so stale acks die with the old
// occupant), or stays vacant until one frees up.
func (c *Cluster) declareDead(ms *memberState) {
	ms.alive = false
	ms.misses = 0
	c.replicaDowns++
	c.tel.Inc(telemetry.CtrReplicaDown)
	c.tel.Trace(int64(c.e.Now()), telemetry.EvReplicaDown, 0, "", ms.name)
	if ms.seat < 0 {
		// A dead spare leaves the pool now; revival re-admits it through
		// noteSuccess, which would otherwise duplicate the stale entry
		// (and a duplicated spare can be seated at two seats at once).
		c.dropSpare(ms.idx)
		return
	}
	seat := ms.seat
	if sp := c.takeSpare(); sp != nil {
		c.installSeat(seat, sp)
		ms.seat = -1 // displaced; revives as a spare
	} else {
		// No spare: the seat goes vacant but the dead member keeps its
		// claim (ms.seat). Its data is intact across a crash, so if it
		// revives before a spare frees up it resumes the seat with the
		// generation intact and only the writes it missed rebuild.
		c.seats[seat].member = -1
	}
}

// installSeat seats member sp at seat, bumping the generation: every
// per-extent ack recorded against the previous occupant becomes stale,
// and the rebuild loop re-replicates what the new occupant is missing.
func (c *Cluster) installSeat(seat int, sp *memberState) {
	c.seats[seat].member = sp.idx
	c.seats[seat].gen++
	sp.seat = seat
	c.kickRebuild(sp.name)
}

// dropSpare removes member idx from the spare pool, if present.
func (c *Cluster) dropSpare(idx int) {
	for i, s := range c.spares {
		if s == idx {
			c.spares = append(c.spares[:i], c.spares[i+1:]...)
			return
		}
	}
}

// takeSpare pops the oldest live spare, nil when none.
func (c *Cluster) takeSpare() *memberState {
	for i, idx := range c.spares {
		ms := c.members[idx]
		if !ms.alive {
			continue
		}
		c.spares = append(c.spares[:i], c.spares[i+1:]...)
		return ms
	}
	return nil
}

// fillVacantSeats seats spares on any vacant seats. A seat whose dead
// owner still claims it (ms.seat == seat) is reassigned only to a
// spare; the owner loses its claim then.
func (c *Cluster) fillVacantSeats() {
	for s := range c.seats {
		if c.seats[s].member >= 0 {
			continue
		}
		sp := c.takeSpare()
		if sp == nil {
			return
		}
		// Strip the dead owner's claim, if any.
		for _, ms := range c.members {
			if ms.seat == s && ms.idx != sp.idx {
				ms.seat = -1
			}
		}
		c.installSeat(s, sp)
	}
}

// probeLoop keep-alive-probes one member: a typed failure OR a probe
// that hangs past ProbeTimeout counts a miss, an answer clears the
// streak (and revives a dead member). The deadline matters because a
// member transport mid-reconnect queues commands instead of failing
// them — without it a crashed target would never be declared dead, just
// silently stall its replicas.
func (c *Cluster) probeLoop(p *sim.Proc, ms *memberState) {
	for !c.closing {
		p.Sleep(c.opts.ProbeInterval)
		if c.closing {
			return
		}
		ms.probeGen++
		gen := ms.probeGen
		fut := ms.q.Submit(p, &transport.IO{Admin: nvme.AdminKeepAlive})
		r, ok := fut.WaitTimeout(p, c.opts.ProbeTimeout)
		if c.closing {
			return
		}
		if !ok {
			c.probeOutcome(ms, gen, nvme.StatusTransientTransport)
			// The hung probe's eventual resolution still feeds back: a
			// late success is the revival signal after the target
			// restarts and the transport reconnects. probeOutcome drops
			// it if a newer probe has settled in the meantime.
			fut.OnResolve(func(lr *transport.Result) {
				c.probeOutcome(ms, gen, lr.Status)
			})
			continue
		}
		c.probeOutcome(ms, gen, r.Status)
	}
}

// Close tears the cluster down: daemons stop and every member queue
// closes (outstanding requests complete first). In-flight probes are
// fenced BEFORE the member queues close: queue teardown resolves hung
// keep-alives, and that feedback must not count spurious misses or log
// bogus fault events against a cluster that is going away.
func (c *Cluster) Close() {
	if c.closing {
		return
	}
	c.closing = true
	for _, ms := range c.members {
		ms.probeSeen = ms.probeGen + 1
	}
	c.workQ.Close()
	c.dirty.Fire()
	for _, ms := range c.members {
		ms.q.Close()
	}
}
