package cluster

import (
	"testing"
	"time"

	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// hangTarget is a fake member whose commands HANG (stay unresolved)
// while down, modelling a transport nursing commands through a
// reconnect loop instead of failing them. The test resolves the parked
// futures explicitly, replaying late and out-of-order feedback.
type hangTarget struct {
	e      *sim.Engine
	lat    time.Duration
	hang   bool
	parked []*sim.Future[*transport.Result]
}

func (q *hangTarget) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	fut := sim.NewFuture[*transport.Result](q.e)
	if q.hang {
		q.parked = append(q.parked, fut)
		return fut
	}
	lat := q.lat
	q.e.After(lat, func() {
		fut.Resolve(&transport.Result{Status: nvme.StatusSuccess, Latency: lat})
	})
	return fut
}

func (q *hangTarget) Close() {}

// hangRig builds a 2-member cluster whose second member hangs on demand.
func hangRig(t *testing.T, e *sim.Engine, opts Options) (*Cluster, *hangTarget) {
	t.Helper()
	ht := &hangTarget{e: e, lat: 10 * time.Microsecond}
	members := []Member{
		{Name: "m0", Queue: newFakeTarget(e, "m0", 1<<20, 10*time.Microsecond)},
		{Name: "m1", Queue: ht},
	}
	opts.RetainData = true
	c, err := New(e, members, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, ht
}

// Regression: several overlapping hung probes that later resolve out of
// order must not flap the health streak a newer probe established. Here
// two consecutive probes hang (declaring the member dead), the target
// revives and a fresh probe re-admits it — then the two stale probes
// finally resolve with failures. Pre-fix those stale failures counted
// two fresh misses and declared the healthy member dead again.
func TestStaleProbeResolutionsDoNotFlapRevivedMember(t *testing.T) {
	e := sim.NewEngine(41)
	c, ht := hangRig(t, e, Options{
		Replicas: 2, WriteQuorum: 1, ExtentSize: 4096,
		ProbeInterval: 50 * time.Microsecond,
		ProbeTimeout:  150 * time.Microsecond,
		ProbeMisses:   2,
	})
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		ht.hang = true
		// Probe 1 fires at 50us and times out at 200us (miss 1); probe 2
		// fires at 250us and times out at 400us (miss 2 -> dead).
		p.Sleep(410 * time.Microsecond)
		if got := c.Stats().ReplicaDowns; got != 1 {
			t.Fatalf("replica downs before revival = %d, want 1", got)
		}
		if len(ht.parked) < 2 {
			t.Fatalf("parked probes = %d, want >= 2 hung probes", len(ht.parked))
		}
		// The target restarts: the next probe answers and revives it.
		ht.hang = false
		p.Sleep(100 * time.Microsecond)
		st := c.Stats()
		if st.ReplicaUps != 1 {
			t.Fatalf("replica ups after revival = %d, want 1", st.ReplicaUps)
		}
		// Now the two old hung probes resolve, newest first, both with
		// typed failures. They predate the revival streak and must be
		// dropped as stale.
		ht.parked[1].Resolve(&transport.Result{Status: nvme.StatusTransientTransport})
		ht.parked[0].Resolve(&transport.Result{Status: nvme.StatusTransientTransport})
		p.Sleep(20 * time.Microsecond)
		st = c.Stats()
		if st.ReplicaDowns != 1 {
			t.Errorf("replica downs = %d, want 1: stale probe resolutions re-killed a healthy member", st.ReplicaDowns)
		}
		for _, m := range st.Members {
			if m.Name == "m1" && !m.Alive {
				t.Errorf("member m1 flapped dead after stale probe feedback")
			}
		}
	})
}

// Regression: Close must fence in-flight feedback before the member
// queues close. A write parked on a hung (and meanwhile declared-dead)
// member that completes during teardown must not revive the member —
// pre-fix that late success re-seated it, counted a replica_up, and
// logged rebuild fault events against a cluster that was going away.
func TestCloseFencesLateFeedbackFromHungMember(t *testing.T) {
	e := sim.NewEngine(42)
	c, ht := hangRig(t, e, Options{
		Replicas: 2, WriteQuorum: 1, ExtentSize: 4096,
		ProbeInterval: 50 * time.Microsecond,
		ProbeTimeout:  150 * time.Microsecond,
		ProbeMisses:   2,
	})
	run(t, e, func(p *sim.Proc) {
		// The member hangs BEFORE the write, so one replica copy parks on
		// it while the quorum completes on the survivor.
		ht.hang = true
		r := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 4096, Data: pattern(7, 4096)}).Wait(p)
		if r.Status != nvme.StatusSuccess {
			t.Fatalf("quorum write: %v", r.Status)
		}
		// Two hung probes declare the member dead.
		p.Sleep(410 * time.Microsecond)
		if got := c.Stats().ReplicaDowns; got != 1 {
			t.Fatalf("replica downs = %d, want 1", got)
		}
		parked := append([]*sim.Future[*transport.Result](nil), ht.parked...)
		c.Close()
		// Teardown completes the parked commands (the write succeeds, the
		// probes fail) — none of it may touch the health state now.
		for i, fut := range parked {
			if i == 0 {
				fut.Resolve(&transport.Result{Status: nvme.StatusSuccess})
			} else {
				fut.Resolve(&transport.Result{Status: nvme.StatusTransientTransport})
			}
		}
		st := c.Stats()
		if st.ReplicaUps != 0 {
			t.Errorf("replica ups = %d after Close, want 0: late success revived a member mid-teardown", st.ReplicaUps)
		}
		if st.ReplicaDowns != 1 {
			t.Errorf("replica downs = %d after Close, want 1: teardown feedback counted spurious misses", st.ReplicaDowns)
		}
	})
}
