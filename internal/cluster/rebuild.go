package cluster

import (
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// Re-replication: a background loop that copies stale extents — those
// whose replica has not acknowledged the committed version under the
// current seat generation — from an up-to-date survivor to the seat's
// occupant. It runs as one engine daemon, woken whenever a replica is
// declared dead, promoted, or revived, and sweeps passes over the
// extent table until a full pass finds nothing stale. Copies ride the
// same per-(extent, seat) write chain as foreground writes, so a
// rebuild copy can never overwrite a newer concurrent write.

// kickRebuild wakes the rebuild loop (traced per triggering member).
func (c *Cluster) kickRebuild(member string) {
	c.tel.Trace(int64(c.e.Now()), telemetry.EvRebuildStart, 0, "", member)
	c.dirty.Fire()
}

// rebuildLoop drains the stale set whenever woken, then announces the
// cluster whole again.
func (c *Cluster) rebuildLoop(p *sim.Proc) {
	for {
		c.dirty.Wait(p)
		c.dirty.Reset()
		if c.closing {
			return
		}
		progressed := false
		for {
			n := c.rebuildPass(p)
			if c.closing {
				return
			}
			if n == 0 {
				break
			}
			progressed = true
		}
		if progressed && c.staleCount() == 0 {
			c.rebuildRounds++
			c.tel.Inc(telemetry.CtrRebuildRounds)
			c.tel.Trace(int64(c.e.Now()), telemetry.EvRebuildDone, 0, "", c.opts.Namespace)
			c.settled.Fire()
		}
	}
}

// staleRepl reports whether replica ri of st needs a copy: the extent
// has committed data its seat occupant (live, present) has not
// acknowledged under the current generation.
func (c *Cluster) staleRepl(st *extentState, ri int) bool {
	if st.committed == 0 {
		return false
	}
	rs := &st.repl[ri]
	ms := c.occupant(rs.seat)
	if ms == nil || !ms.alive {
		return false // nothing to copy to until a member serves the seat
	}
	return rs.gen != c.seats[rs.seat].gen || rs.acked < st.committed
}

// staleCount counts extent replicas still awaiting a copy.
func (c *Cluster) staleCount() int {
	n := 0
	for _, st := range c.extentList {
		for ri := range st.repl {
			if c.staleRepl(st, ri) {
				n++
			}
		}
	}
	return n
}

// rebuildPass sweeps the extent table once, copying every stale replica
// it can, and returns the number of successful copies. Extent order is
// the deterministic first-touch order, so rebuild schedules replay per
// seed.
func (c *Cluster) rebuildPass(p *sim.Proc) int {
	copied := 0
	for _, st := range c.extentList {
		for ri := range st.repl {
			if c.closing {
				return copied
			}
			if !c.staleRepl(st, ri) {
				continue
			}
			if c.rebuildExtent(p, st, ri) {
				copied++
			}
		}
	}
	return copied
}

// rebuildExtent copies one extent from an eligible survivor to the
// stale replica ri. The copy is conservative: it carries the source's
// acknowledged version at read-submit time, and the ack recorded on the
// destination never exceeds it — if the committed version advances
// mid-copy, the next pass copies again.
func (c *Cluster) rebuildExtent(p *sim.Proc, st *extentState, ri int) bool {
	src := -1
	for k := range st.repl {
		if k != ri && c.eligible(st, k) {
			src = k
			break
		}
	}
	if src == -1 {
		return false // no up-to-date survivor right now; retry next pass
	}
	srcRS := &st.repl[src]
	srcMS := c.occupant(srcRS.seat)
	dstRS := &st.repl[ri]
	dstMS := c.occupant(dstRS.seat)
	copyVer := srcRS.acked
	if copyVer == 0 || copyVer > st.committed {
		// Never read past what quorum committed; an extent whose source
		// ack predates a generation change re-resolves next pass.
		copyVer = st.committed
	}
	base := st.idx * c.opts.ExtentSize
	size := st.size
	if size <= 0 {
		return false
	}
	start := p.Now()
	// Rebuild traffic is system-internal: never charged to any tenant's
	// token budget (QoSExempt, and untenanted so it lands in the ambient
	// per-queue attribution if the member queue carries one).
	rio := &transport.IO{Offset: base, Size: size, QoSExempt: true}
	if c.opts.RetainData {
		rio.Data = make([]byte, size)
	}
	rr := srcMS.q.Submit(p, rio).Wait(p)
	if rr.Status != nvme.StatusSuccess {
		c.noteFailure(srcMS, rr.Status)
		return false
	}
	c.noteSuccess(srcMS)
	// Re-check under the destination's current occupancy: the seat may
	// have changed hands, or a foreground write may have caught it up
	// while the read was in flight.
	if !c.staleRepl(st, ri) {
		return false
	}
	// Never queue a copy behind a pending chain entry: a foreground
	// write submitted while our source read was in flight carries a
	// NEWER version, and a copy applied after it would clobber that
	// version while the ack bookkeeping still reports it present (a
	// silent stale-read hole). The write's resolution re-wakes the
	// rebuild loop, which re-copies only if still needed.
	if dstRS.chain != nil && !dstRS.chain.Resolved() {
		return false
	}
	dstMS = c.occupant(dstRS.seat)
	gen := c.seats[dstRS.seat].gen
	wio := &transport.IO{Write: true, Offset: base, Size: size, Data: rio.Data, NoFill: true, QoSExempt: true}
	wr := c.chainSubmit(p, dstRS, dstMS.q, wio).Wait(p)
	if wr.Status != nvme.StatusSuccess {
		c.noteFailure(dstMS, wr.Status)
		return false
	}
	c.noteSuccess(dstMS)
	if c.seats[dstRS.seat].gen == gen {
		dstRS.gen = gen
		if copyVer > dstRS.acked {
			dstRS.acked = copyVer
		}
	}
	c.rebuildExtents++
	c.rebuildBytes += int64(size)
	c.tel.Inc(telemetry.CtrRebuildExtents)
	c.tel.Add(telemetry.CtrRebuildBytes, int64(size))
	c.tel.ObserveDuration(telemetry.HistRebuildCopy, p.Now().Sub(start))
	return true
}

// WaitSettled blocks until the next time a rebuild round drains the
// stale set (for tests and demos that want to observe a whole cluster).
func (c *Cluster) WaitSettled(p *sim.Proc) {
	c.settled.Reset()
	c.settled.Wait(p)
}
