package cluster

import (
	"testing"
	"time"

	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

func TestReviewSpareDiesAndRevivesDuplicatesSpareEntry(t *testing.T) {
	e := sim.NewEngine(99)
	// 2 seats + 2 spares.
	c, fakes := rig(t, e, 4, 1<<20, Options{
		Seats: 2, Replicas: 2, WriteQuorum: 1, ExtentSize: 4096,
		ProbeInterval: 50 * time.Microsecond, ProbeMisses: 2,
	})
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		if r := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 4096, Data: pattern(1, 4096)}).Wait(p); r.Status != 0 {
			t.Fatalf("write: %v", r.Status)
		}
		// Spare m2 dies and revives.
		fakes[2].down = true
		p.Sleep(2 * time.Millisecond)
		fakes[2].down = false
		p.Sleep(2 * time.Millisecond)
		t.Logf("spares after spare m2 died+revived: %v", c.spares)
		seen := map[int]int{}
		for _, idx := range c.spares {
			seen[idx]++
		}
		for idx, n := range seen {
			if n > 1 {
				t.Errorf("member %d appears %d times in spares list", idx, n)
			}
		}
		// Now both seated members die while spare m3 is also down:
		// vacancies should be filled by DISTINCT spares, not the same
		// member twice.
		fakes[3].down = true
		p.Sleep(2 * time.Millisecond)
		fakes[0].down = true
		fakes[1].down = true
		p.Sleep(3 * time.Millisecond)
		t.Logf("seats: %+v", c.seats)
		if c.seats[0].member >= 0 && c.seats[0].member == c.seats[1].member {
			t.Errorf("same member %d seated at both seats", c.seats[0].member)
		}
	})
}
