package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// fakeTarget is a controllable in-memory member: it applies I/O to a
// byte store at completion time (like a real target), completes after a
// fixed latency, and fails everything with a typed transient error
// while down.
type fakeTarget struct {
	e       *sim.Engine
	name    string
	store   []byte
	lat     time.Duration
	down    bool
	submits int
	writes  int
}

func newFakeTarget(e *sim.Engine, name string, capacity int, lat time.Duration) *fakeTarget {
	return &fakeTarget{e: e, name: name, store: make([]byte, capacity), lat: lat}
}

func (q *fakeTarget) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	fut := sim.NewFuture[*transport.Result](q.e)
	q.submits++
	lat := q.lat
	down := q.down
	q.e.After(lat, func() {
		if down || q.down {
			fut.Resolve(&transport.Result{Status: nvme.StatusTransientTransport, Latency: lat})
			return
		}
		res := &transport.Result{Status: nvme.StatusSuccess, Latency: lat, IOTime: lat / 2}
		if io.Admin != 0 || io.Flush {
			fut.Resolve(res)
			return
		}
		if io.Write {
			q.writes++
			if io.Data != nil {
				copy(q.store[io.Offset:], io.Data)
			}
		} else if io.Data != nil {
			copy(io.Data, q.store[io.Offset:int(io.Offset)+io.Size])
			res.Data = io.Data[:io.Size]
		}
		fut.Resolve(res)
	})
	return fut
}

func (q *fakeTarget) Close() {}

// rig builds a cluster over n fake targets with the given options.
func rig(t *testing.T, e *sim.Engine, n int, capacity int, opts Options) (*Cluster, []*fakeTarget) {
	t.Helper()
	fakes := make([]*fakeTarget, n)
	members := make([]Member, n)
	for i := range fakes {
		fakes[i] = newFakeTarget(e, fmt.Sprintf("m%d", i), capacity, 10*time.Microsecond)
		members[i] = Member{Name: fakes[i].name, Queue: fakes[i]}
	}
	opts.RetainData = true
	c, err := New(e, members, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, fakes
}

func run(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Go("test", fn)
	if err := e.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func pattern(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestRingPlacementDeterministicDistinctBalanced(t *testing.T) {
	r := NewRing(4, 2, 0)
	counts := make([]int, 4)
	for ext := int64(0); ext < 4096; ext++ {
		a := r.Locate(ext, make([]int, 0, 2))
		b := r.Locate(ext, make([]int, 0, 2))
		if len(a) != 2 || a[0] == a[1] {
			t.Fatalf("extent %d: want 2 distinct seats, got %v", ext, a)
		}
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("extent %d: placement not deterministic: %v vs %v", ext, a, b)
		}
		counts[a[0]]++
	}
	for s, n := range counts {
		// Each seat should own roughly 1/4 of primaries; allow 2x skew.
		if n < 4096/8 || n > 4096/2 {
			t.Fatalf("seat %d owns %d/4096 primaries; placement badly skewed: %v", s, n, counts)
		}
	}
}

func TestQuorumWriteThenReadYourWrite(t *testing.T) {
	e := sim.NewEngine(1)
	c, fakes := rig(t, e, 3, 1<<20, Options{Replicas: 3, WriteQuorum: 2, ExtentSize: 4096})
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		want := pattern(0xAB, 4096)
		if r := c.Submit(p, &transport.IO{Write: true, Offset: 8192, Size: 4096, Data: want}).Wait(p); r.Status != nvme.StatusSuccess {
			t.Fatalf("write: %v", r.Status)
		}
		buf := make([]byte, 4096)
		r := c.Submit(p, &transport.IO{Offset: 8192, Size: 4096, Data: buf}).Wait(p)
		if r.Status != nvme.StatusSuccess {
			t.Fatalf("read: %v", r.Status)
		}
		if !bytes.Equal(r.Data, want) {
			t.Fatalf("read returned wrong bytes")
		}
	})
	st := c.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("stats: writes=%d reads=%d, want 1/1", st.Writes, st.Reads)
	}
	// All three replicas eventually receive the write (laggard included).
	wrote := 0
	for _, f := range fakes {
		wrote += f.writes
	}
	if wrote != 3 {
		t.Fatalf("replica writes = %d, want 3 (full fan-out)", wrote)
	}
}

func TestLargeIOSplitsAcrossExtentsAndReassembles(t *testing.T) {
	e := sim.NewEngine(2)
	c, _ := rig(t, e, 4, 1<<20, Options{Replicas: 2, ExtentSize: 4096})
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		want := make([]byte, 3*4096)
		for i := range want {
			want[i] = byte(i / 512)
		}
		if r := c.Submit(p, &transport.IO{Write: true, Offset: 4096, Size: len(want), Data: want}).Wait(p); r.Status != nvme.StatusSuccess {
			t.Fatalf("write: %v", r.Status)
		}
		buf := make([]byte, len(want))
		r := c.Submit(p, &transport.IO{Offset: 4096, Size: len(buf), Data: buf}).Wait(p)
		if r.Status != nvme.StatusSuccess {
			t.Fatalf("read: %v", r.Status)
		}
		if !bytes.Equal(r.Data, want) {
			t.Fatalf("reassembled read mismatch")
		}
	})
	if got := c.Stats().Extents; got != 3 {
		t.Fatalf("extents touched = %d, want 3", got)
	}
}

func TestWriteFailsFastWhenQuorumUnreachable(t *testing.T) {
	e := sim.NewEngine(3)
	c, fakes := rig(t, e, 2, 1<<20, Options{Replicas: 2, WriteQuorum: 2, ExtentSize: 4096, ProbeMisses: 1})
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		// Kill member 1 and let a first write burn its misses so the
		// cluster declares it dead.
		fakes[1].down = true
		c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 4096, Data: pattern(1, 4096)}).Wait(p)
		// Now only one live replica remains; W=2 is unreachable.
		r := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 4096, Data: pattern(2, 4096)}).Wait(p)
		if r.Status == nvme.StatusSuccess {
			t.Fatalf("write succeeded with quorum unreachable")
		}
	})
	st := c.Stats()
	if st.QuorumFails == 0 {
		t.Fatalf("expected quorum failures, got stats %+v", st)
	}
	if st.ReplicaDowns != 1 {
		t.Fatalf("replica downs = %d, want 1", st.ReplicaDowns)
	}
}

func TestReadFailsOverToSurvivingReplica(t *testing.T) {
	e := sim.NewEngine(4)
	c, fakes := rig(t, e, 3, 1<<20, Options{Replicas: 3, WriteQuorum: 2, ExtentSize: 4096, ProbeMisses: 2})
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		want := pattern(0x5A, 4096)
		if r := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 4096, Data: want}).Wait(p); r.Status != nvme.StatusSuccess {
			t.Fatalf("write: %v", r.Status)
		}
		p.Sleep(time.Millisecond) // let the lagging third replica ack
		fakes[0].down = true
		fakes[1].down = true
		// Every read must land on the one survivor, possibly after
		// failing over from a dead pick.
		for i := 0; i < 6; i++ {
			buf := make([]byte, 4096)
			r := c.Submit(p, &transport.IO{Offset: 0, Size: 4096, Data: buf}).Wait(p)
			if r.Status != nvme.StatusSuccess {
				t.Fatalf("read %d: %v", i, r.Status)
			}
			if !bytes.Equal(r.Data, want) {
				t.Fatalf("read %d: stale bytes after failover", i)
			}
		}
	})
	if c.Stats().ReadFailovers == 0 {
		t.Fatalf("expected read failovers, got %+v", c.Stats())
	}
}

func TestSpareInheritsSeatAndRebuildCopies(t *testing.T) {
	e := sim.NewEngine(5)
	// 3 seats + 1 spare, R=2 W=2: losing one member promotes the spare.
	c, fakes := rig(t, e, 4, 1<<20, Options{
		Seats: 3, Replicas: 2, WriteQuorum: 2, ExtentSize: 4096,
		ProbeInterval: 50 * time.Microsecond, ProbeMisses: 2,
	})
	const extents = 12
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		for i := 0; i < extents; i++ {
			data := pattern(byte(i+1), 4096)
			if r := c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * 4096, Size: 4096, Data: data}).Wait(p); r.Status != nvme.StatusSuccess {
				t.Fatalf("write %d: %v", i, r.Status)
			}
		}
		fakes[0].down = true
		// Probes need ProbeMisses consecutive failures; each failed probe
		// takes ~lat. Give the monitor and rebuild loop time to finish.
		p.Sleep(5 * time.Millisecond)
		if got := c.Stats().StaleExtents; got != 0 {
			t.Fatalf("stale extents after rebuild window = %d, want 0", got)
		}
		// Every extent must read back correctly with member 0 still down.
		for i := 0; i < extents; i++ {
			buf := make([]byte, 4096)
			r := c.Submit(p, &transport.IO{Offset: int64(i) * 4096, Size: 4096, Data: buf}).Wait(p)
			if r.Status != nvme.StatusSuccess {
				t.Fatalf("read %d after failover: %v", i, r.Status)
			}
			if !bytes.Equal(r.Data, pattern(byte(i+1), 4096)) {
				t.Fatalf("read %d: wrong bytes after rebuild", i)
			}
		}
	})
	st := c.Stats()
	if st.ReplicaDowns != 1 {
		t.Fatalf("replica downs = %d, want 1", st.ReplicaDowns)
	}
	if st.RebuildExtents == 0 {
		t.Fatalf("expected rebuild copies, got %+v", st)
	}
	// The spare must now hold a seat.
	spareSeated := false
	for _, m := range st.Members {
		if m.Name == "m3" && m.Seat >= 0 {
			spareSeated = true
		}
	}
	if !spareSeated {
		t.Fatalf("spare was not promoted: %+v", st.Members)
	}
}

func TestRevivedMemberResumesSeatAndCatchesUp(t *testing.T) {
	e := sim.NewEngine(6)
	// No spare: R=3 W=2 over 3 seats keeps writes flowing with one down.
	c, fakes := rig(t, e, 3, 1<<20, Options{
		Replicas: 3, WriteQuorum: 2, ExtentSize: 4096,
		ProbeInterval: 50 * time.Microsecond, ProbeMisses: 2,
	})
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		writeAt := func(i int, b byte) {
			if r := c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * 4096, Size: 4096, Data: pattern(b, 4096)}).Wait(p); r.Status != nvme.StatusSuccess {
				t.Fatalf("write %d: %v", i, r.Status)
			}
		}
		for i := 0; i < 8; i++ {
			writeAt(i, byte(i+1))
		}
		fakes[1].down = true
		p.Sleep(time.Millisecond) // death detected
		// Writes while member 1 is down: it misses these versions.
		for i := 0; i < 8; i++ {
			writeAt(i, byte(0x80+i))
		}
		fakes[1].down = false
		p.Sleep(5 * time.Millisecond) // revival + rebuild
		st := c.Stats()
		if st.StaleExtents != 0 {
			t.Fatalf("stale extents after revival = %d, want 0 (stats %+v)", st.StaleExtents, st)
		}
		if st.ReplicaUps == 0 {
			t.Fatalf("expected a replica_up, got %+v", st)
		}
		// Member 1 must hold the latest committed bytes for every extent
		// it replicates (rebuild caught it up).
		for i := 0; i < 8; i++ {
			ext := c.extentFor(int64(i) * 4096)
			for _, rs := range c.extents[ext].repl {
				ms := c.occupant(rs.seat)
				if ms == nil || ms.name != "m1" {
					continue
				}
				got := fakes[1].store[i*4096 : i*4096+4096]
				if !bytes.Equal(got, pattern(byte(0x80+i), 4096)) {
					t.Fatalf("extent %d not rebuilt on revived member", i)
				}
			}
		}
	})
}

func TestOverlappingWritesApplyInVersionOrder(t *testing.T) {
	e := sim.NewEngine(7)
	c, fakes := rig(t, e, 2, 1<<20, Options{Replicas: 2, WriteQuorum: 1, ExtentSize: 4096})
	// Slow one replica so the first write is still in flight when the
	// second is issued: the per-(extent, seat) chain must keep them in
	// order on that replica.
	fakes[1].lat = 500 * time.Microsecond
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		a := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 4096, Data: pattern(1, 4096)})
		b := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 4096, Data: pattern(2, 4096)})
		a.Wait(p)
		b.Wait(p)
		p.Sleep(5 * time.Millisecond) // drain the slow replica's chain
		for i, f := range fakes {
			if !bytes.Equal(f.store[:4096], pattern(2, 4096)) {
				t.Fatalf("replica %d holds stale version after overlapped writes", i)
			}
		}
	})
}

func TestBatchReadsGroupPerMember(t *testing.T) {
	e := sim.NewEngine(8)
	c, _ := rig(t, e, 4, 1<<20, Options{Replicas: 2, ExtentSize: 4096})
	run(t, e, func(p *sim.Proc) {
		defer c.Close()
		var ios []*transport.IO
		for i := 0; i < 16; i++ {
			if r := c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * 4096, Size: 4096, Data: pattern(byte(i+1), 4096)}).Wait(p); r.Status != nvme.StatusSuccess {
				t.Fatalf("write %d: %v", i, r.Status)
			}
			ios = append(ios, &transport.IO{Offset: int64(i) * 4096, Size: 4096, Data: make([]byte, 4096)})
		}
		futs := c.SubmitBatch(p, ios)
		for i, f := range futs {
			r := f.Wait(p)
			if r.Status != nvme.StatusSuccess {
				t.Fatalf("batch read %d: %v", i, r.Status)
			}
			if !bytes.Equal(r.Data, pattern(byte(i+1), 4096)) {
				t.Fatalf("batch read %d: wrong bytes", i)
			}
		}
	})
	if got := c.Stats().Reads; got != 16 {
		t.Fatalf("reads = %d, want 16", got)
	}
}
