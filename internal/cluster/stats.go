package cluster

// MemberStats is one replica target's service state in a snapshot.
type MemberStats struct {
	Name string `json:"name"`
	// Seat is the placement slot the member occupies, -1 for spares and
	// displaced members.
	Seat  int  `json:"seat"`
	Alive bool `json:"alive"`
	// Spare marks members waiting to inherit a seat.
	Spare bool `json:"spare,omitempty"`
	// StaleExtents counts extents this seated member has not yet caught
	// up to the committed version (rebuild backlog).
	StaleExtents int `json:"stale_extents,omitempty"`
}

// Stats is the cluster's observability snapshot: configuration, member
// health, and the routing/recovery counters.
type Stats struct {
	Namespace   string `json:"namespace"`
	Seats       int    `json:"seats"`
	Replicas    int    `json:"replicas"`
	WriteQuorum int    `json:"write_quorum"`
	ExtentSize  int64  `json:"extent_size"`
	Extents     int    `json:"extents"`

	Writes        int64 `json:"writes"`
	Reads         int64 `json:"reads"`
	QuorumFails   int64 `json:"quorum_failures,omitempty"`
	ReadFailovers int64 `json:"read_failovers,omitempty"`
	DegradedIOs   int64 `json:"degraded_ios,omitempty"`
	ReplicaDowns  int64 `json:"replica_downs,omitempty"`
	ReplicaUps    int64 `json:"replica_ups,omitempty"`

	RebuildRounds  int64 `json:"rebuild_rounds,omitempty"`
	RebuildExtents int64 `json:"rebuild_extents,omitempty"`
	RebuildBytes   int64 `json:"rebuild_bytes,omitempty"`
	// StaleExtents is the live rebuild backlog across all replicas; 0
	// means every replica holds the committed version of every extent.
	StaleExtents int `json:"stale_extents"`

	Members []MemberStats `json:"members"`
}

// Stats captures the cluster's current state.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Namespace:   c.opts.Namespace,
		Seats:       c.opts.Seats,
		Replicas:    c.opts.Replicas,
		WriteQuorum: c.opts.WriteQuorum,
		ExtentSize:  c.opts.ExtentSize,
		Extents:     len(c.extentList),

		Writes:        c.writes,
		Reads:         c.reads,
		QuorumFails:   c.quorumFails,
		ReadFailovers: c.readFailovers,
		DegradedIOs:   c.degradedIOs,
		ReplicaDowns:  c.replicaDowns,
		ReplicaUps:    c.replicaUps,

		RebuildRounds:  c.rebuildRounds,
		RebuildExtents: c.rebuildExtents,
		RebuildBytes:   c.rebuildBytes,
	}
	staleBySeat := make(map[int]int)
	for _, st := range c.extentList {
		for ri := range st.repl {
			if c.staleRepl(st, ri) {
				staleBySeat[st.repl[ri].seat]++
				s.StaleExtents++
			}
		}
	}
	for _, ms := range c.members {
		m := MemberStats{Name: ms.name, Seat: ms.seat, Alive: ms.alive}
		if ms.seat < 0 {
			m.Spare = true
		} else if c.seats[ms.seat].member == ms.idx {
			m.StaleExtents = staleBySeat[ms.seat]
		}
		s.Members = append(s.Members, m)
	}
	return s
}
