package cluster

import "sort"

// The placement ring maps stripe-aligned extents onto R distinct seats
// out of N by consistent hashing: every seat owns a fixed set of virtual
// points on a 64-bit ring, an extent hashes to a ring position, and its
// replica set is the next R distinct seats clockwise from there.
//
// Seats — not members — are the unit of placement. A seat is a stable
// slot in the ring; the member occupying it can change (a spare inherits
// a dead member's seat), which re-targets every extent mapped to that
// seat without moving any other extent. That is what keeps failover and
// re-replication O(data on the lost replica) instead of O(cluster).

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit
// mixer that keeps ring placement deterministic across runs without
// touching the engine's seeded streams.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ringPoint is one virtual node: a hashed position owned by a seat.
type ringPoint struct {
	hash uint64
	seat int
}

// Ring is the consistent-hash placement table. It is immutable after
// construction: failover changes seat occupancy, never ring geometry.
type Ring struct {
	points   []ringPoint
	seats    int
	replicas int
}

// DefaultVnodes is the virtual-node count per seat: enough to keep the
// per-seat extent share within a few percent of uniform at N <= 16.
const DefaultVnodes = 64

// NewRing builds a ring of seats*vnodes points. vnodes <= 0 selects
// DefaultVnodes. replicas must not exceed seats.
func NewRing(seats, replicas, vnodes int) *Ring {
	if seats <= 0 {
		panic("cluster: ring needs at least one seat")
	}
	if replicas <= 0 || replicas > seats {
		panic("cluster: replicas must be in [1, seats]")
	}
	if seats > 64 {
		panic("cluster: at most 64 seats (Locate tracks seats in a bitmap)")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{seats: seats, replicas: replicas}
	r.points = make([]ringPoint, 0, seats*vnodes)
	for s := 0; s < seats; s++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(uint64(s)<<20 ^ uint64(v) ^ 0x5eed5eed5eed5eed)
			r.points = append(r.points, ringPoint{hash: h, seat: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].seat < r.points[j].seat
	})
	return r
}

// Seats returns the seat count N.
func (r *Ring) Seats() int { return r.seats }

// Replicas returns the replication factor R.
func (r *Ring) Replicas() int { return r.replicas }

// Locate returns the R distinct seats owning extent ext, primary first,
// appended to out. The walk starts at the first ring point clockwise of
// the extent's hash and skips points of already-collected seats.
func (r *Ring) Locate(ext int64, out []int) []int {
	h := mix64(uint64(ext) ^ 0x9e3779b97f4a7c15)
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	var collected uint64 // seat bitmap (NewRing caps seats at 64)
	for i := 0; i < n && len(out) < r.replicas; i++ {
		p := r.points[(start+i)%n]
		if collected&(1<<uint(p.seat)) != 0 {
			continue
		}
		collected |= 1 << uint(p.seat)
		out = append(out, p.seat)
	}
	return out
}
