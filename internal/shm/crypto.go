package shm

import "time"

// Encryption support: §6 of the paper proposes hardening the shared-memory
// channel by encrypting it with the client's key, so that a malicious
// co-resident entity that gains access to the mapping cannot read or
// tamper with payloads. This implements that proposal as a region option:
// payloads are enciphered as they enter the region and deciphered as they
// leave, with the cipher cost charged to the copying process.
//
// The cipher is a keystream XOR (xorshift64* keyed per slot) — a stand-in
// with real byte transformation so that data at rest in the region is
// never plaintext; a production build would swap in AES-GCM.

// EnableEncryption turns on channel encryption with the given key and
// cipher throughput (bytes/second, e.g. ~1.5 GB/s for single-core
// AES-GCM without dedicated offload).
func (r *Region) EnableEncryption(key uint64, cipherBytesPerSec float64) {
	r.encKey = key | 1 // keystream seed must be nonzero
	r.encBps = cipherBytesPerSec
}

// Encrypted reports whether the region enciphers payloads.
func (r *Region) Encrypted() bool { return r.encKey != 0 }

// cryptoCost returns the modeled time to encipher or decipher n bytes.
func (r *Region) cryptoCost(n int) time.Duration {
	if r.encKey == 0 || r.encBps <= 0 {
		return 0
	}
	return time.Duration(float64(n) / r.encBps * 1e9)
}

// keystream fills buf with the xorshift64* stream for (key, slot).
func xorKeystream(buf []byte, key, slot uint64) {
	x := key ^ (slot+1)*0x9E3779B97F4A7C15
	for i := 0; i < len(buf); i += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		s := x * 0x2545F4914F6CDD1D
		for j := 0; j < 8 && i+j < len(buf); j++ {
			buf[i+j] ^= byte(s >> (8 * j))
		}
	}
}

// seal enciphers the first n bytes of the slot in place.
func (s *Slot) seal(n int) {
	if !s.r.Encrypted() {
		return
	}
	xorKeystream(s.buf[:n], s.r.encKey, uint64(s.Index)|uint64(s.dir)<<32)
}

// unseal deciphers the first n bytes (XOR keystream is an involution).
func (s *Slot) unseal(n int) { s.seal(n) }
