// Package shm implements the shared-memory channel of the adaptive fabric:
// a real byte region shared between NVMe-oF client and target (standing in
// for an IVSHMEM/ICSHMEM mapping), organized as the paper's lock-free
// double buffer (§4.4.1).
//
// The region is logically split into two halves — one written by the
// client (host-to-controller payloads), one written by the target
// (controller-to-host payloads) — and each half is divided into slots of
// the I/O size, one per queue-depth entry. Slot ownership is claimed with
// atomic compare-and-swap in round-robin order, so concurrent I/O streams
// touch disjoint offsets without a lock. A legacy locked mode reproduces
// the paper's "SHM-baseline" design for the Fig 8 ablation, and a
// free-list claimer exists as an ablation alternative to round-robin.
package shm

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/stats"
	"nvmeoaf/internal/telemetry"
)

// Direction selects a half of the double buffer.
type Direction int

const (
	// H2C is the client-owned half (write payloads travelling to the
	// target).
	H2C Direction = iota
	// C2H is the target-owned half (read payloads travelling to the
	// client).
	C2H
)

func (d Direction) String() string {
	if d == H2C {
		return "h2c"
	}
	return "c2h"
}

// Mode selects the concurrency design of the region.
type Mode int

const (
	// ModeLockFree is the paper's lock-free double-buffer design: slots
	// are claimed with atomic CAS, copies proceed concurrently.
	ModeLockFree Mode = iota
	// ModeLocked is the naive SHM-baseline: one region lock guards every
	// shared-memory access and is held for the duration of the copy,
	// serializing all data movement (Fig 8's first bar).
	ModeLocked
)

func (m Mode) String() string {
	if m == ModeLocked {
		return "locked"
	}
	return "lock-free"
}

// ClaimPolicy selects how slots are picked within a half.
type ClaimPolicy int

const (
	// ClaimRoundRobin walks slots in order relative to the I/O depth, as
	// the paper describes (§4.4.1).
	ClaimRoundRobin ClaimPolicy = iota
	// ClaimFreeList pops the most recently released slot (ablation
	// alternative; better cache locality, more contention on the head).
	ClaimFreeList
)

const (
	slotFree uint32 = iota
	slotBusy
)

// Region is one shared-memory mapping between a client and a target.
type Region struct {
	Key       uint64
	SlotSize  int
	SlotCount int

	e      *sim.Engine
	params model.SHMParams
	mode   Mode
	policy ClaimPolicy
	data   []byte // real backing bytes: [H2C slots][C2H slots]

	state   [2][]uint32 // atomic slot ownership per half
	rr      [2]uint32   // round-robin cursors
	freeLst [2][]uint32 // free-list stacks (ClaimFreeList)
	credits [2]*sim.Semaphore
	lock    *sim.Semaphore // region lock (ModeLocked)

	rng *rand.Rand

	// revoked marks the mapping torn down (VM migration, helper-process
	// death): claims and opens fail, releases become no-ops.
	revoked uint32 // atomic
	// onRevoke callbacks run once, in the revoker's context.
	onRevoke []func()

	// Encryption state (see crypto.go).
	encKey uint64
	encBps float64

	// Metrics.
	Claims, Releases int64
	CopiedBytes      int64
	FutexStalls      int64
	ClaimWait        *stats.Histogram // time spent waiting for a free slot
	LockWait         *stats.Histogram // time spent waiting for the region lock

	tel *telemetry.Sink
}

// NewRegion allocates a region with slotCount slots of slotSize bytes in
// each direction.
func NewRegion(e *sim.Engine, key uint64, slotSize, slotCount int, params model.SHMParams, mode Mode, policy ClaimPolicy) (*Region, error) {
	if slotSize <= 0 || slotCount <= 0 {
		return nil, fmt.Errorf("shm: invalid geometry %dx%d", slotCount, slotSize)
	}
	total := 2 * slotSize * slotCount
	r := &Region{
		Key:       key,
		SlotSize:  slotSize,
		SlotCount: slotCount,
		e:         e,
		params:    params,
		mode:      mode,
		policy:    policy,
		data:      make([]byte, total),
		lock:      sim.NewSemaphore(e, 1),
		rng:       e.Rand(fmt.Sprintf("shm/%d", key)),
		ClaimWait: stats.NewHistogram(),
		LockWait:  stats.NewHistogram(),
		tel:       telemetry.Disabled,
	}
	for d := 0; d < 2; d++ {
		r.state[d] = make([]uint32, slotCount)
		r.credits[d] = sim.NewSemaphore(e, slotCount)
		if policy == ClaimFreeList {
			r.freeLst[d] = make([]uint32, 0, slotCount)
			for i := slotCount - 1; i >= 0; i-- {
				r.freeLst[d] = append(r.freeLst[d], uint32(i))
			}
		}
	}
	return r, nil
}

// AttachTelemetry routes the region's claim/release/revocation activity
// into s. A nil sink disables.
func (r *Region) AttachTelemetry(s *telemetry.Sink) {
	if s == nil {
		s = telemetry.Disabled
	}
	r.tel = s
}

// Mode returns the region's concurrency mode.
func (r *Region) Mode() Mode { return r.mode }

// Size returns the total region size in bytes.
func (r *Region) Size() int { return len(r.data) }

// Revoked reports whether the mapping has been torn down.
func (r *Region) Revoked() bool { return atomic.LoadUint32(&r.revoked) == 1 }

// Revoke tears the mapping down, as a VM migration or helper-process
// death would: subsequent Claims return nil, Opens fail, and processes
// blocked waiting for a slot credit are woken to observe the revocation.
// Registered OnRevoke callbacks fire once, in the revoker's context.
// Idempotent.
func (r *Region) Revoke() {
	if !atomic.CompareAndSwapUint32(&r.revoked, 0, 1) {
		return
	}
	// Wake every blocked claimer: inject one permit per slot per half.
	// Claimers re-check Revoked after acquiring and bail out, so the
	// surplus permits are never spent on real slots.
	for d := 0; d < 2; d++ {
		for i := 0; i < r.SlotCount; i++ {
			r.credits[d].Release()
		}
	}
	r.tel.Inc(telemetry.CtrSHMRevocations)
	r.tel.Trace(int64(r.e.Now()), telemetry.EvRevoked, 0, "shm", "region")
	cbs := r.onRevoke
	r.onRevoke = nil
	for _, fn := range cbs {
		fn()
	}
}

// OnRevoke registers fn to run when the region is revoked (immediately if
// it already was). fn runs in the revoker's context and must not block.
func (r *Region) OnRevoke(fn func()) {
	if r.Revoked() {
		fn()
		return
	}
	r.onRevoke = append(r.onRevoke, fn)
}

// Slot is a claimed element of the double buffer.
type Slot struct {
	r      *Region
	dir    Direction
	Index  uint32
	buf    []byte
	closed bool
}

// slotBytes returns the backing slice for (dir, idx).
func (r *Region) slotBytes(dir Direction, idx uint32) []byte {
	base := int(dir)*r.SlotSize*r.SlotCount + int(idx)*r.SlotSize
	return r.data[base : base+r.SlotSize : base+r.SlotSize]
}

// Claim acquires a slot in the given direction, blocking while all slots
// are busy (this is the shared-memory flow control: payloads stay in the
// region until the peer consumes them, so slot credits bound the in-flight
// data, §4.4.2). The claim itself is lock-free: an atomic CAS over the
// round-robin cursor or free list.
// Claim returns nil when the region has been revoked — including when the
// revocation lands while the claimer is blocked on a slot credit.
func (r *Region) Claim(p *sim.Proc, dir Direction) *Slot {
	if r.Revoked() {
		return nil
	}
	t0 := p.Now()
	r.credits[dir].Acquire(p)
	wait := p.Now().Sub(t0)
	r.ClaimWait.RecordDuration(wait)
	r.tel.ObserveDuration(telemetry.HistClaimWait, wait)
	if r.Revoked() {
		return nil
	}
	p.Sleep(r.params.SlotOverhead)
	if r.Revoked() {
		return nil
	}

	idx := r.claimIndex(dir)
	r.Claims++
	r.tel.Inc(telemetry.CtrSHMClaims)
	return &Slot{r: r, dir: dir, Index: idx, buf: r.slotBytes(dir, idx)}
}

// claimIndex picks one free slot in dir. The caller must hold a credit,
// which guarantees a free slot exists.
func (r *Region) claimIndex(dir Direction) uint32 {
	var idx uint32
	switch r.policy {
	case ClaimFreeList:
		lst := r.freeLst[dir]
		idx = lst[len(lst)-1]
		r.freeLst[dir] = lst[:len(lst)-1]
		if !atomic.CompareAndSwapUint32(&r.state[dir][idx], slotFree, slotBusy) {
			panic("shm: free-list slot was busy")
		}
	default: // round-robin
		for {
			i := atomic.AddUint32(&r.rr[dir], 1) - 1
			idx = i % uint32(r.SlotCount)
			if atomic.CompareAndSwapUint32(&r.state[dir][idx], slotFree, slotBusy) {
				break
			}
			// Credit accounting guarantees a free slot exists; skip the
			// busy ones (out-of-order completion leaves holes).
		}
	}
	return idx
}

// ClaimN acquires up to n slots in one doorbell-amortized operation for
// the batched submission path: the fixed SlotOverhead (I/O-vector write
// + memory fence) is paid once for the whole train instead of once per
// slot. It blocks for the first credit only and takes the remaining
// ones opportunistically, so a claimer never blocks while holding
// partial credits (two batching submitters could otherwise deadlock
// each holding half the region). Claimed slots are appended to dst
// (pass a reused backing slice to keep the hot path allocation-free);
// the caller falls back to per-slot Claim for whatever the train did
// not cover. Returns nil when the region has been revoked — including
// while blocked on the first credit.
func (r *Region) ClaimN(p *sim.Proc, dir Direction, n int, dst []*Slot) []*Slot {
	if n <= 0 {
		return dst
	}
	if r.Revoked() {
		return nil
	}
	t0 := p.Now()
	r.credits[dir].Acquire(p)
	if r.Revoked() {
		return nil
	}
	got := 1
	for got < n && r.credits[dir].TryAcquire() {
		got++
	}
	wait := p.Now().Sub(t0)
	r.ClaimWait.RecordDuration(wait)
	r.tel.ObserveDuration(telemetry.HistClaimWait, wait)
	p.Sleep(r.params.SlotOverhead)
	if r.Revoked() {
		// Return the acquired credits: Revoke's permit flood only covers
		// claimers blocked at revocation time.
		for i := 0; i < got; i++ {
			r.credits[dir].Release()
		}
		return nil
	}
	for i := 0; i < got; i++ {
		idx := r.claimIndex(dir)
		dst = append(dst, &Slot{r: r, dir: dir, Index: idx, buf: r.slotBytes(dir, idx)})
	}
	r.Claims += int64(got)
	r.tel.Add(telemetry.CtrSHMClaims, int64(got))
	return dst
}

// Open adopts an already-claimed slot by index, as the peer side does when
// an out-of-band notification names the slot it should read.
func (r *Region) Open(dir Direction, idx uint32) (*Slot, error) {
	if r.Revoked() {
		return nil, fmt.Errorf("shm: region %d revoked", r.Key)
	}
	if int(idx) >= r.SlotCount {
		return nil, fmt.Errorf("shm: slot %d out of range (%d)", idx, r.SlotCount)
	}
	if atomic.LoadUint32(&r.state[dir][idx]) != slotBusy {
		return nil, fmt.Errorf("shm: slot %s/%d not busy", dir, idx)
	}
	return &Slot{r: r, dir: dir, Index: idx, buf: r.slotBytes(dir, idx)}, nil
}

// Release returns the slot to the allocator. Releasing into a revoked
// region is a no-op (the mapping is gone). Releasing a slot someone else
// already freed panics — use TryRelease where ownership is ambiguous.
func (s *Slot) Release() {
	if s.closed {
		panic("shm: slot released twice")
	}
	s.closed = true
	r := s.r
	if r.Revoked() {
		return
	}
	if !atomic.CompareAndSwapUint32(&r.state[s.dir][s.Index], slotBusy, slotFree) {
		panic("shm: releasing a free slot")
	}
	if r.policy == ClaimFreeList {
		r.freeLst[s.dir] = append(r.freeLst[s.dir], s.Index)
	}
	r.Releases++
	r.tel.Inc(telemetry.CtrSHMReleases)
	r.credits[s.dir].Release()
}

// TryRelease frees the slot if it is still busy and reports whether it
// did. Recovery paths use it when slot ownership is ambiguous — a
// timed-out command's slot may have been consumed and freed by the peer
// already, which plain Release would treat as a fatal double-free.
func (s *Slot) TryRelease() bool {
	if s.closed {
		return false
	}
	s.closed = true
	r := s.r
	if r.Revoked() {
		return false
	}
	if !atomic.CompareAndSwapUint32(&r.state[s.dir][s.Index], slotBusy, slotFree) {
		return false
	}
	if r.policy == ClaimFreeList {
		r.freeLst[s.dir] = append(r.freeLst[s.dir], s.Index)
	}
	r.Releases++
	r.tel.Inc(telemetry.CtrSHMReleases)
	r.credits[s.dir].Release()
	return true
}

// Bytes exposes the slot's backing memory for zero-copy use: the
// application fills (or reads) the shared bytes in place.
func (s *Slot) Bytes() []byte { return s.buf }

// Region returns the slot's owning region.
func (s *Slot) Region() *Region { return s.r }

// copyCost returns the modeled time to move n bytes across the region
// boundary.
func (r *Region) copyCost(n int) time.Duration {
	return time.Duration(float64(n) / r.params.CopyBytesPerSec * 1e9)
}

// acquireLockIfNeeded takes the region lock in ModeLocked, charging the
// extra critical-section overhead; it returns a release func. A small
// fraction of acquisitions take the futex slow path (cross-VM mutex
// handoff through the kernel), the locked design's main tail-latency
// contribution (§4.4.4).
func (r *Region) acquireLockIfNeeded(p *sim.Proc) func() {
	if r.mode != ModeLocked {
		return func() {}
	}
	t0 := p.Now()
	r.lock.Acquire(p)
	r.LockWait.RecordDuration(p.Now().Sub(t0))
	p.Sleep(r.params.LockHold)
	if r.params.FutexProb > 0 && r.rng.Float64() < r.params.FutexProb {
		r.FutexStalls++
		r.tel.Inc(telemetry.CtrSHMFutexStalls)
		p.Sleep(time.Duration(float64(r.params.FutexPenalty) * (0.5 + r.rng.Float64())))
	}
	return r.lock.Release
}

// CopyIn moves payload bytes from a private buffer into the slot. data may
// be nil for modeled payloads: the time cost is charged either way, the
// bytes only move when real. n is the payload size. On encrypted regions
// the payload is enciphered on the way in and the cipher cost charged.
func (s *Slot) CopyIn(p *sim.Proc, data []byte, n int) {
	if n > s.r.SlotSize {
		panic(fmt.Sprintf("shm: payload %d exceeds slot size %d", n, s.r.SlotSize))
	}
	unlock := s.r.acquireLockIfNeeded(p)
	defer unlock()
	p.Sleep(s.r.copyCost(n) + s.r.cryptoCost(n))
	if data != nil {
		copy(s.buf, data[:n])
	}
	s.seal(n)
	s.r.CopiedBytes += int64(n)
}

// CopyOut moves payload bytes from the slot into a private buffer (nil
// dst for modeled payloads). It returns the destination slice when real.
// On encrypted regions the payload is deciphered on the way out.
func (s *Slot) CopyOut(p *sim.Proc, dst []byte, n int) []byte {
	if n > s.r.SlotSize {
		panic(fmt.Sprintf("shm: payload %d exceeds slot size %d", n, s.r.SlotSize))
	}
	unlock := s.r.acquireLockIfNeeded(p)
	defer unlock()
	p.Sleep(s.r.copyCost(n) + s.r.cryptoCost(n))
	s.r.CopiedBytes += int64(n)
	if dst != nil {
		s.unseal(n)
		copy(dst, s.buf[:n])
		s.seal(n) // bytes at rest in the region stay enciphered
		return dst[:n]
	}
	return nil
}

// Busy returns the number of busy slots in a direction (for tests and
// introspection).
func (r *Region) Busy(dir Direction) int {
	n := 0
	for i := range r.state[dir] {
		if atomic.LoadUint32(&r.state[dir][i]) == slotBusy {
			n++
		}
	}
	return n
}
