package shm

import (
	"testing"
	"time"

	"nvmeoaf/internal/sim"
)

func TestRevokeFailsNewClaims(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 4096, 4, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		if s := r.Claim(p, H2C); s == nil {
			t.Fatal("claim before revoke failed")
		} else {
			s.Release()
		}
		r.Revoke()
		if !r.Revoked() {
			t.Fatal("region not marked revoked")
		}
		if s := r.Claim(p, H2C); s != nil {
			t.Fatal("claim on a revoked region succeeded")
		}
		if s := r.Claim(p, C2H); s != nil {
			t.Fatal("C2H claim on a revoked region succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRevokeWakesBlockedClaimers(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 4096, 1, ModeLockFree, ClaimRoundRobin)
	woke := false
	e.Go("blocker", func(p *sim.Proc) {
		if s := r.Claim(p, H2C); s == nil {
			t.Fatal("first claim failed")
		}
		// Hold the only slot forever: the next claimer must block until
		// the revocation wakes it.
	})
	e.Go("claimer", func(p *sim.Proc) {
		s := r.Claim(p, H2C) // blocks: no free slot
		if s != nil {
			t.Error("claim returned a slot from a revoked region")
		}
		woke = true
	})
	e.After(10*time.Microsecond, r.Revoke)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("blocked claimer never woke after revocation")
	}
}

func TestOpenFailsAfterRevoke(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 4096, 4, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		s := r.Claim(p, C2H)
		if s == nil {
			t.Fatal("claim failed")
		}
		r.Revoke()
		if _, err := r.Open(C2H, s.Index); err == nil {
			t.Fatal("open on a revoked region succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryReleaseIsTolerant(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 4096, 4, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		s := r.Claim(p, H2C)
		if !s.TryRelease() {
			t.Fatal("first TryRelease of a busy slot failed")
		}
		// Already free: the tolerant release reports false rather than
		// panicking like Release does — the other side may have freed
		// the slot after a timeout handed ownership over ambiguously.
		if s.TryRelease() {
			t.Fatal("second TryRelease of a free slot succeeded")
		}
		if r.Busy(H2C) != 0 {
			t.Fatalf("busy = %d after release", r.Busy(H2C))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOnRevokeCallbacks(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 4096, 4, ModeLockFree, ClaimRoundRobin)
	calls := 0
	r.OnRevoke(func() { calls++ })
	r.Revoke()
	if calls != 1 {
		t.Fatalf("callback ran %d times, want 1", calls)
	}
	r.Revoke() // idempotent: no second round of callbacks
	if calls != 1 {
		t.Fatalf("second revoke re-ran callbacks (%d)", calls)
	}
	// Registering on an already-revoked region fires immediately.
	r.OnRevoke(func() { calls++ })
	if calls != 2 {
		t.Fatalf("late registration did not fire immediately (%d)", calls)
	}
}
