package shm

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
)

func calmSHM() model.SHMParams {
	p := model.DefaultSHM()
	p.SlotOverhead = 0
	return p
}

func mustRegion(t *testing.T, e *sim.Engine, slotSize, slots int, mode Mode, policy ClaimPolicy) *Region {
	t.Helper()
	r, err := NewRegion(e, 1, slotSize, slots, calmSHM(), mode, policy)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGeometryValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := NewRegion(e, 1, 0, 4, calmSHM(), ModeLockFree, ClaimRoundRobin); err == nil {
		t.Fatal("zero slot size accepted")
	}
	if _, err := NewRegion(e, 1, 4096, -1, calmSHM(), ModeLockFree, ClaimRoundRobin); err == nil {
		t.Fatal("negative slot count accepted")
	}
	r := mustRegion(t, e, 4096, 8, ModeLockFree, ClaimRoundRobin)
	if r.Size() != 2*4096*8 {
		t.Fatalf("size %d", r.Size())
	}
}

func TestClaimReleaseCycle(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 4096, 4, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		seen := map[uint32]bool{}
		var slots []*Slot
		for i := 0; i < 4; i++ {
			s := r.Claim(p, H2C)
			if seen[s.Index] {
				t.Errorf("slot %d claimed twice", s.Index)
			}
			seen[s.Index] = true
			slots = append(slots, s)
		}
		if r.Busy(H2C) != 4 {
			t.Errorf("busy = %d", r.Busy(H2C))
		}
		for _, s := range slots {
			s.Release()
		}
		if r.Busy(H2C) != 0 {
			t.Errorf("busy after release = %d", r.Busy(H2C))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Claims != 4 || r.Releases != 4 {
		t.Fatalf("claims=%d releases=%d", r.Claims, r.Releases)
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 64, 2, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		a := r.Claim(p, H2C)
		b := r.Claim(p, C2H)
		// Same index in different halves must map to disjoint memory.
		a.Bytes()[0] = 0xAA
		b.Bytes()[0] = 0xBB
		if a.Bytes()[0] != 0xAA || b.Bytes()[0] != 0xBB {
			t.Error("halves overlap")
		}
		a.Release()
		b.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSlotsDisjointWithinHalf(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 16, 8, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		var slots []*Slot
		for i := 0; i < 8; i++ {
			s := r.Claim(p, C2H)
			for j := range s.Bytes() {
				s.Bytes()[j] = byte(s.Index)
			}
			slots = append(slots, s)
		}
		for _, s := range slots {
			for _, v := range s.Bytes() {
				if v != byte(s.Index) {
					t.Errorf("slot %d corrupted", s.Index)
				}
			}
			s.Release()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestClaimBlocksWhenExhausted(t *testing.T) {
	// Slot credits are the shared-memory flow control: a fifth claim on a
	// four-slot half must wait for a release.
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 64, 4, ModeLockFree, ClaimRoundRobin)
	var fifthAt sim.Time
	e.Go("claimer", func(p *sim.Proc) {
		var slots []*Slot
		for i := 0; i < 4; i++ {
			slots = append(slots, r.Claim(p, H2C))
		}
		e.Go("fifth", func(q *sim.Proc) {
			s := r.Claim(q, H2C)
			fifthAt = q.Now()
			s.Release()
		})
		p.Sleep(100 * time.Microsecond)
		slots[0].Release()
		p.Sleep(time.Microsecond)
		for _, s := range slots[1:] {
			s.Release()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fifthAt != sim.Time(100*time.Microsecond) {
		t.Fatalf("fifth claim at %v, want 100us", fifthAt)
	}
	if r.ClaimWait.Max() == 0 {
		t.Fatal("claim wait not recorded")
	}
}

func TestRoundRobinSkipsBusySlots(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 64, 3, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		a := r.Claim(p, H2C) // slot 0
		b := r.Claim(p, H2C) // slot 1
		c := r.Claim(p, H2C) // slot 2
		b.Release()
		// Next claim must find slot b's index even though the cursor
		// points past it.
		d := r.Claim(p, H2C)
		if d.Index != b.Index {
			t.Errorf("claimed %d, want %d", d.Index, b.Index)
		}
		a.Release()
		c.Release()
		d.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListPolicy(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 64, 4, ModeLockFree, ClaimFreeList)
	e.Go("io", func(p *sim.Proc) {
		a := r.Claim(p, H2C)
		idx := a.Index
		a.Release()
		b := r.Claim(p, H2C) // LIFO: most recently freed comes back first
		if b.Index != idx {
			t.Errorf("free list returned %d, want %d", b.Index, idx)
		}
		b.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyInOutRealBytes(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 4096, 2, ModeLockFree, ClaimRoundRobin)
	payload := bytes.Repeat([]byte{0x5A}, 3000)
	e.Go("io", func(p *sim.Proc) {
		s := r.Claim(p, H2C)
		t0 := p.Now()
		s.CopyIn(p, payload, len(payload))
		copyTime := p.Now().Sub(t0)
		want := time.Duration(3000.0 / calmSHM().CopyBytesPerSec * 1e9)
		if copyTime != want {
			t.Errorf("copy time %v, want %v", copyTime, want)
		}
		dst := make([]byte, 3000)
		got := s.CopyOut(p, dst, 3000)
		if !bytes.Equal(got, payload) {
			t.Error("payload mismatch through shared memory")
		}
		s.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.CopiedBytes != 6000 {
		t.Fatalf("copied bytes %d", r.CopiedBytes)
	}
}

func TestVirtualCopyChargesTimeOnly(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 1<<20, 2, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		s := r.Claim(p, C2H)
		t0 := p.Now()
		s.CopyIn(p, nil, 1<<20)
		if p.Now() == t0 {
			t.Error("virtual copy charged no time")
		}
		s.CopyOut(p, nil, 1<<20)
		s.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOversizePayloadPanics(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 512, 1, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		s := r.Claim(p, H2C)
		s.CopyIn(p, nil, 1024) // exceeds slot
	})
	if err := e.Run(); err == nil {
		t.Fatal("oversize copy should panic the process")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 64, 1, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		s := r.Claim(p, H2C)
		s.Release()
		s.Release()
	})
	if err := e.Run(); err == nil {
		t.Fatal("double release should panic the process")
	}
}

func TestOpenByIndex(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 256, 4, ModeLockFree, ClaimRoundRobin)
	e.Go("io", func(p *sim.Proc) {
		s := r.Claim(p, H2C)
		copy(s.Bytes(), "hello")
		peer, err := r.Open(H2C, s.Index)
		if err != nil {
			t.Fatal(err)
		}
		if string(peer.Bytes()[:5]) != "hello" {
			t.Error("peer view differs")
		}
		if _, err := r.Open(H2C, 99); err == nil {
			t.Error("out-of-range open accepted")
		}
		free := (s.Index + 1) % 4
		if _, err := r.Open(H2C, free); err == nil {
			t.Error("open of free slot accepted")
		}
		s.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLockedModeSerializesCopies(t *testing.T) {
	// Two concurrent 1MB copies: lock-free overlaps them (total ~= one
	// copy time), locked serializes them (total ~= two copy times).
	elapsed := func(mode Mode) time.Duration {
		e := sim.NewEngine(1)
		params := calmSHM()
		params.LockHold = 0
		r, err := NewRegion(e, 1, 1<<20, 2, params, mode, ClaimRoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		wg := sim.NewWaitGroup(e)
		wg.Add(2)
		var done sim.Time
		for i := 0; i < 2; i++ {
			e.Go("copier", func(p *sim.Proc) {
				s := r.Claim(p, H2C)
				s.CopyIn(p, nil, 1<<20)
				s.Release()
				wg.Done()
			})
		}
		e.Go("join", func(p *sim.Proc) {
			wg.Wait(p)
			done = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(done)
	}
	free := elapsed(ModeLockFree)
	locked := elapsed(ModeLocked)
	if locked < free*3/2 {
		t.Fatalf("locked %v should be ~2x lock-free %v", locked, free)
	}
}

func TestLockWaitRecordedInLockedMode(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 1<<20, 2, ModeLocked, ClaimRoundRobin)
	wg := sim.NewWaitGroup(e)
	wg.Add(2)
	for i := 0; i < 2; i++ {
		e.Go("copier", func(p *sim.Proc) {
			s := r.Claim(p, C2H)
			s.CopyOut(p, nil, 1<<20)
			s.Release()
			wg.Done()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.LockWait.Count() != 2 || r.LockWait.Max() == 0 {
		t.Fatalf("lock wait: n=%d max=%d", r.LockWait.Count(), r.LockWait.Max())
	}
}

func TestModeAndDirectionStrings(t *testing.T) {
	if ModeLocked.String() == "" || ModeLockFree.String() == "" {
		t.Fatal("mode strings")
	}
	if H2C.String() != "h2c" || C2H.String() != "c2h" {
		t.Fatal("direction strings")
	}
}

func TestEncryptionRoundTripAndAtRestCiphertext(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustRegion(t, e, 4096, 2, ModeLockFree, ClaimRoundRobin)
	r.EnableEncryption(0xDEADBEEF, 1.5e9)
	if !r.Encrypted() {
		t.Fatal("encryption not enabled")
	}
	payload := bytes.Repeat([]byte{0x42}, 1024)
	e.Go("io", func(p *sim.Proc) {
		s := r.Claim(p, H2C)
		s.CopyIn(p, payload, len(payload))
		// Data at rest must not be plaintext.
		if bytes.Equal(s.Bytes()[:len(payload)], payload) {
			t.Error("region holds plaintext")
		}
		dst := make([]byte, len(payload))
		got := s.CopyOut(p, dst, len(payload))
		if !bytes.Equal(got, payload) {
			t.Error("decipher mismatch")
		}
		// Still ciphertext at rest after the read.
		if bytes.Equal(s.Bytes()[:len(payload)], payload) {
			t.Error("region holds plaintext after read")
		}
		s.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptionChargesCipherCost(t *testing.T) {
	elapsed := func(encrypted bool) sim.Time {
		e := sim.NewEngine(1)
		r := mustRegion(t, e, 1<<20, 2, ModeLockFree, ClaimRoundRobin)
		if encrypted {
			r.EnableEncryption(7, 1e9)
		}
		var done sim.Time
		e.Go("io", func(p *sim.Proc) {
			s := r.Claim(p, H2C)
			s.CopyIn(p, nil, 1<<20)
			s.CopyOut(p, nil, 1<<20)
			s.Release()
			done = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	plain := elapsed(false)
	enc := elapsed(true)
	if enc <= plain {
		t.Fatalf("encryption (%v) must cost more than plaintext (%v)", enc, plain)
	}
}

func TestKeystreamIsInvolution(t *testing.T) {
	buf := make([]byte, 1000)
	for i := range buf {
		buf[i] = byte(i)
	}
	orig := append([]byte(nil), buf...)
	xorKeystream(buf, 99, 5)
	if bytes.Equal(buf, orig) {
		t.Fatal("keystream did nothing")
	}
	xorKeystream(buf, 99, 5)
	if !bytes.Equal(buf, orig) {
		t.Fatal("keystream not an involution")
	}
	// Different slots produce different streams.
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	xorKeystream(a, 99, 1)
	xorKeystream(b, 99, 2)
	if bytes.Equal(a, b) {
		t.Fatal("slot keystreams identical")
	}
}
