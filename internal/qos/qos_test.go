package qos

import (
	"math/rand"
	"testing"
	"time"

	"nvmeoaf/internal/telemetry"
)

func testRegistry(t *testing.T, specs ...Spec) *Registry {
	t.Helper()
	reg := NewRegistry()
	for _, sp := range specs {
		if err := reg.Add(sp); err != nil {
			t.Fatalf("Add(%+v): %v", sp, err)
		}
	}
	return reg
}

func TestSpecValidation(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []Spec{
		{},                                     // no name
		{Name: "a,b"},                          // comma collides with hostNQN encoding
		{Name: "x", RateBps: -1},               // negative rate
		{Name: "x", RateBps: 2e12},             // above the arithmetic bound
		{Name: "x", RateBps: 1, BurstBytes: -1}, // negative burst
	} {
		if err := reg.Add(bad); err == nil {
			t.Errorf("Add(%+v): expected error", bad)
		}
	}
	if err := reg.Add(Spec{Name: "ok", RateBps: 100 << 20}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	sp, ok := reg.Lookup("ok")
	if !ok || sp.BurstBytes <= 0 {
		t.Fatalf("Lookup(ok) = %+v, %v; want defaulted burst", sp, ok)
	}
	// 10ms of 100 MiB/s > 256 KiB, so the burst tracks the rate.
	if want := int64(100<<20) / 100; sp.BurstBytes != want {
		t.Fatalf("burst = %d, want %d", sp.BurstBytes, want)
	}
}

func TestParseSLO(t *testing.T) {
	for in, want := range map[string]SLO{
		"": SLONone, "none": SLONone, "latency": LatencySensitive,
		"Latency-Sensitive": LatencySensitive, "throughput": Throughput,
		"tput": Throughput, "batch": Batch, "bulk": Batch,
	} {
		got, err := ParseSLO(in)
		if err != nil || got != want {
			t.Errorf("ParseSLO(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSLO("gold"); err == nil {
		t.Error("ParseSLO(gold): expected error")
	}
	if s := Batch.String(); s != "batch" {
		t.Errorf("Batch.String() = %q", s)
	}
	if _, _, ok := SLONone.ReceiveTuning(); ok {
		t.Error("SLONone.ReceiveTuning(): ok should be false")
	}
	if poll, batch, ok := LatencySensitive.ReceiveTuning(); !ok || poll <= 0 || batch != 1 {
		t.Errorf("LatencySensitive.ReceiveTuning() = %v, %d, %v", poll, batch, ok)
	}
	if poll, batch, ok := Batch.ReceiveTuning(); !ok || poll != 0 || batch <= 16 {
		t.Errorf("Batch.ReceiveTuning() = %v, %d, %v", poll, batch, ok)
	}
}

func TestNilAndUnlimitedAdmitEverything(t *testing.T) {
	var nilB *Bucket
	if !nilB.TryTake(0, 1<<30) {
		t.Fatal("nil bucket must admit")
	}
	nilB.Penalize(0, 1<<20) // must not panic
	if nilB.Limited() {
		t.Fatal("nil bucket is not limited")
	}
	var nilSh *Shaper
	if b := nilSh.Bucket("x", 0); b != nil {
		t.Fatal("nil shaper must hand out nil buckets")
	}
	if err := nilSh.Conservation().Check(); err != nil {
		t.Fatalf("nil shaper conservation: %v", err)
	}

	sh := NewShaper("t", testRegistry(t), nil)
	b := sh.Bucket("unregistered", 0)
	if b.Limited() {
		t.Fatal("unregistered tenant must be unlimited")
	}
	if !b.TryTake(0, 1<<40) {
		t.Fatal("unlimited bucket must admit")
	}
	if err := sh.Conservation().Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}

func TestBucketRefillAndThrottle(t *testing.T) {
	reg := testRegistry(t, Spec{Name: "a", RateBps: 1 << 20, BurstBytes: 4096})
	sh := NewShaper("t", reg, nil)
	b := sh.Bucket("a", 0)

	// Full initial burst admits immediately, then the bucket is dry.
	if !b.TryTake(0, 4096) {
		t.Fatal("initial burst should admit")
	}
	if b.TryTake(0, 1) {
		t.Fatal("dry bucket with empty pool should throttle")
	}
	if b.Throttles != 1 {
		t.Fatalf("Throttles = %d, want 1", b.Throttles)
	}

	// 1 MiB/s refill: after ~4ms the 4096-byte take fits again.
	wait := b.WaitNs(0, 4096)
	if wait < 1_000_000 { // clamped to maxWait = 1ms
		t.Fatalf("WaitNs = %d, want clamp at 1ms", wait)
	}
	at := int64(4096) * nsPerSec / (1 << 20)
	if b.TryTake(at-1_000, 4096) {
		t.Fatal("should still be short just before the refill point")
	}
	if !b.TryTake(at+1_000, 4096) {
		t.Fatal("refill should cover the take")
	}
	if err := sh.Conservation().Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}

func TestBorrowingMovesIdleCapacity(t *testing.T) {
	tel := telemetry.New()
	reg := testRegistry(t,
		Spec{Name: "idle", RateBps: 8 << 20, BurstBytes: 1 << 20},
		Spec{Name: "busy", RateBps: 1 << 20, BurstBytes: 64 << 10},
	)
	sh := NewShaper("t", reg, tel)
	idle := sh.Bucket("idle", 0)
	busy := sh.Bucket("busy", 0)

	// Drain busy's initial burst.
	if !busy.TryTake(0, 64<<10) {
		t.Fatal("busy initial burst")
	}
	// Idle sits out 500ms: its bucket is already full, so ~4 MiB of its
	// refill spills into the ledger.
	now := int64(500_000_000)
	idle.refill(now)
	if sh.pool == 0 {
		t.Fatal("idle tenant's surplus refill should pool")
	}
	if idle.Lent == 0 {
		t.Fatal("idle bucket should record lending")
	}

	// Busy's own refill over 500ms is 512 KiB; a 1 MiB take only admits
	// because it borrows the other half from the ledger.
	if !busy.TryTake(now, 1<<20) {
		t.Fatal("busy should admit by borrowing")
	}
	if busy.Borrowed == 0 {
		t.Fatal("busy bucket should record borrowing")
	}
	if err := sh.Conservation().Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}

	// Telemetry mirrored the ledger traffic.
	snap := tel.Snapshot()
	if snap.Tenants["idle"].Counters["tenant.tokens_lent"] == 0 {
		t.Fatal("telemetry should record lending")
	}
	if snap.Tenants["busy"].Counters["tenant.tokens_borrowed"] == 0 {
		t.Fatal("telemetry should record borrowing")
	}

	// MergeStats folds the per-tenant activity.
	stats := MergeStats(sh)
	if len(stats) != 2 || stats[0].Name != "busy" || stats[1].Name != "idle" {
		t.Fatalf("MergeStats = %+v", stats)
	}
}

func TestPenalizeDebitsOnlyAvailable(t *testing.T) {
	reg := testRegistry(t, Spec{Name: "a", RateBps: 1 << 20, BurstBytes: 4096})
	sh := NewShaper("t", reg, nil)
	b := sh.Bucket("a", 0)
	b.Penalize(0, 10_000) // more than the 4096 balance
	if b.tokens != 0 {
		t.Fatalf("tokens = %d, want 0", b.tokens)
	}
	if err := sh.Conservation().Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}

// TestConservationProperty drives random takes, penalties, and idle gaps
// across several tenants and asserts after every step that borrowing
// created and destroyed zero tokens.
func TestConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		reg := NewRegistry()
		n := 2 + rng.Intn(4)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			rate := int64(1+rng.Intn(64)) << 20
			if rng.Intn(5) == 0 {
				rate = 0 // some tenants unlimited
			}
			if err := reg.Add(Spec{Name: names[i], RateBps: rate,
				BurstBytes: int64(1+rng.Intn(256)) << 10}); err != nil {
				t.Fatal(err)
			}
		}
		sh := NewShaper("prop", reg, nil)
		now := int64(0)
		for step := 0; step < 2000; step++ {
			now += int64(rng.Intn(5_000_000)) // up to 5ms between events
			b := sh.Bucket(names[rng.Intn(n)], now)
			sz := int64(1+rng.Intn(1<<10)) * 512
			switch rng.Intn(10) {
			case 0:
				b.Penalize(now, sz)
			case 1:
				b.WaitNs(now, sz)
			case 2:
				now += int64(time.Second) // long idle gap → lending
			default:
				b.TryTake(now, sz)
			}
			if err := sh.Conservation().Check(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
		c := sh.Conservation()
		if c.Minted == 0 {
			t.Fatalf("trial %d: nothing minted", trial)
		}
	}
}

// TestPoolBounded ensures the ledger never exceeds its cap (one burst
// per limited tenant) no matter how long everyone idles.
func TestPoolBounded(t *testing.T) {
	reg := testRegistry(t,
		Spec{Name: "a", RateBps: 100 << 20, BurstBytes: 1 << 20},
		Spec{Name: "b", RateBps: 100 << 20, BurstBytes: 1 << 20},
	)
	sh := NewShaper("t", reg, nil)
	a := sh.Bucket("a", 0)
	b := sh.Bucket("b", 0)
	for i := int64(1); i <= 100; i++ {
		now := i * int64(time.Second)
		a.refill(now)
		b.refill(now)
		if sh.pool > sh.poolCap {
			t.Fatalf("pool %d exceeds cap %d", sh.pool, sh.poolCap)
		}
	}
	if sh.pool != sh.poolCap {
		t.Fatalf("pool %d should saturate at cap %d after long idle", sh.pool, sh.poolCap)
	}
	if err := sh.Conservation().Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}
