// Package qos implements per-tenant bandwidth control for the fabric:
// token buckets with decentralized token borrowing (AdapTBF-style) and
// SLO tiers that map onto the receive-mode knobs the tuning layer
// already drives.
//
// The model: every enforcement point in the I/O path — a host-side
// contention domain (the queues feeding one target or one NIC) or a
// target-side server — owns one Shaper. A Shaper holds one token Bucket
// per tenant plus a lending Ledger shared by those buckets. Buckets
// refill from virtual time at the tenant's provisioned rate; refill
// capacity an idle tenant cannot absorb (its bucket is full) spills
// into the ledger, and a busy tenant whose bucket runs dry borrows from
// the ledger to keep going. Lending is local to the enforcement point —
// there is no central coordinator, no cross-shaper traffic, and no
// global state: idle capacity flows to busy tenants exactly where they
// contend.
//
// Token conservation is a hard invariant, not a hope: every token is
// minted by exactly one bucket's refill and dies by exactly one spend,
// so at any instant
//
//	minted == spent + held(in buckets) + pooled(in ledger)
//	pooled == lent - borrowed
//
// Conservation() exposes the ledger's books and Check() verifies them;
// the isolation gate asserts both after every run. Refill capacity that
// neither a full bucket nor a full ledger can hold is never minted at
// all (unused line rate is not a token), which keeps the books exact
// without a "dropped" bucket.
//
// Everything is off by default: a nil Shaper, an empty tenant name, or
// a zero rate all short-circuit to "admit" in one branch, and nothing
// here touches the wire — tenant identity rides inside the Fabrics
// Connect hostNQN field, so an unconfigured fabric is byte-identical.
package qos

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"

	"nvmeoaf/internal/telemetry"
)

// SLO is a tenant's service-level tier. Tiers map onto the receive-path
// knobs (busy-poll budget, train depth) that IOPathTune-style tuning
// drives: latency-sensitive tenants get busy-poll receive and shallow
// trains, throughput and batch tenants get interrupt-mode receive and
// deep coalescing.
type SLO int

const (
	// SLONone leaves the receive path exactly as configured.
	SLONone SLO = iota
	// LatencySensitive busy-polls the receive path and submits shallow
	// trains: lowest tail latency, highest CPU.
	LatencySensitive
	// Throughput uses interrupt-mode receive with deep train coalescing.
	Throughput
	// Batch is Throughput with the deepest coalescing: bulk work that
	// only cares about aggregate bandwidth.
	Batch
)

// String returns the tier name used in flags and reports.
func (s SLO) String() string {
	switch s {
	case LatencySensitive:
		return "latency"
	case Throughput:
		return "throughput"
	case Batch:
		return "batch"
	}
	return "none"
}

// ParseSLO parses a tier name ("latency", "throughput", "batch",
// "none"/"" for SLONone).
func ParseSLO(s string) (SLO, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return SLONone, nil
	case "latency", "latency-sensitive", "lat":
		return LatencySensitive, nil
	case "throughput", "tput":
		return Throughput, nil
	case "batch", "bulk":
		return Batch, nil
	}
	return SLONone, fmt.Errorf("qos: unknown SLO %q", s)
}

// ReceiveTuning returns the receive-path knobs for this tier: the
// busy-poll budget and the train (batch) depth, applied through the
// session engines' live setters at connect time. ok is false for
// SLONone (leave the configured knobs alone).
func (s SLO) ReceiveTuning() (busyPoll time.Duration, batch int, ok bool) {
	switch s {
	case LatencySensitive:
		return 20 * time.Microsecond, 1, true
	case Throughput:
		return 0, 16, true
	case Batch:
		return 0, 64, true
	}
	return 0, 0, false
}

// Spec declares one tenant: its name (carried through the I/O path),
// its SLO tier, and its provisioned token rate at each enforcement
// point.
type Spec struct {
	// Name identifies the tenant everywhere: telemetry views, the
	// Fabrics Connect hostNQN field, throttle accounting.
	Name string
	// SLO selects the receive-path tier (SLONone leaves knobs alone).
	SLO SLO
	// RateBps is the provisioned token refill rate in bytes/second at
	// each enforcement point. 0 = unlimited (identity and telemetry
	// only, no shaping).
	RateBps int64
	// BurstBytes bounds the bucket (tokens an idle tenant can hold for
	// itself; beyond it refill spills into the lending ledger). 0
	// defaults to max(256 KiB, 10ms of rate).
	BurstBytes int64
}

// withDefaults validates and fills derived fields.
func (sp Spec) withDefaults() (Spec, error) {
	if sp.Name == "" {
		return sp, fmt.Errorf("qos: tenant spec needs a name")
	}
	if strings.ContainsAny(sp.Name, ",\x00") {
		return sp, fmt.Errorf("qos: tenant name %q may not contain commas or NULs", sp.Name)
	}
	if sp.RateBps < 0 {
		return sp, fmt.Errorf("qos: tenant %s: negative rate", sp.Name)
	}
	const maxRate = int64(1e12) // 1 TB/s bounds the refill arithmetic
	if sp.RateBps > maxRate {
		return sp, fmt.Errorf("qos: tenant %s: rate above %d B/s", sp.Name, maxRate)
	}
	if sp.BurstBytes < 0 {
		return sp, fmt.Errorf("qos: tenant %s: negative burst", sp.Name)
	}
	if sp.BurstBytes == 0 && sp.RateBps > 0 {
		sp.BurstBytes = 256 << 10
		if tenMs := sp.RateBps / 100; tenMs > sp.BurstBytes {
			sp.BurstBytes = tenMs
		}
	}
	return sp, nil
}

// Registry is the tenant directory shared by every enforcement point of
// one deployment: the operator registers specs once, and each Shaper
// instantiates its own buckets from them.
type Registry struct {
	order []string
	specs map[string]Spec
}

// NewRegistry returns an empty tenant directory.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Add registers (or replaces) one tenant spec.
func (r *Registry) Add(sp Spec) error {
	sp, err := sp.withDefaults()
	if err != nil {
		return err
	}
	if _, ok := r.specs[sp.Name]; !ok {
		r.order = append(r.order, sp.Name)
	}
	r.specs[sp.Name] = sp
	return nil
}

// Lookup returns the spec for a tenant name.
func (r *Registry) Lookup(name string) (Spec, bool) {
	if r == nil {
		return Spec{}, false
	}
	sp, ok := r.specs[name]
	return sp, ok
}

// Names returns the registered tenants in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.order...)
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.specs)
}

// Shaper is one enforcement point: per-tenant buckets plus the lending
// ledger they share. Host-side, one Shaper covers the queues contending
// for the same target (or NIC); target-side, one Shaper covers a served
// target. The engine is cooperative (one process runs at a time), so
// plain int64 arithmetic is race-safe.
type Shaper struct {
	label   string
	reg     *Registry
	tel     *telemetry.Sink
	buckets map[string]*Bucket
	order   []string

	// Ledger books (bytes of token capacity).
	pool     int64 // tokens currently pooled for borrowing
	poolCap  int64 // ledger bound: one burst per attached tenant
	minted   int64 // tokens ever created by refill
	spent    int64 // tokens ever consumed by admissions
	lent     int64 // tokens ever moved bucket -> ledger
	borrowed int64 // tokens ever moved ledger -> bucket
}

// NewShaper builds an enforcement point over the registry. label names
// it in errors ("host/nqn...", "target/nqn..."); tel (may be nil)
// receives per-tenant borrow/lend accounting.
func NewShaper(label string, reg *Registry, tel *telemetry.Sink) *Shaper {
	return &Shaper{label: label, reg: reg, tel: tel, buckets: make(map[string]*Bucket)}
}

// Label names this enforcement point.
func (sh *Shaper) Label() string {
	if sh == nil {
		return ""
	}
	return sh.label
}

// Bucket returns the named tenant's bucket at this enforcement point,
// creating it on first use. Unknown tenants (and a nil shaper) get an
// unlimited bucket: identity without shaping. The bucket's refill clock
// starts at nowNs.
func (sh *Shaper) Bucket(name string, nowNs int64) *Bucket {
	if sh == nil || name == "" {
		return nil
	}
	if b, ok := sh.buckets[name]; ok {
		return b
	}
	sp, _ := sh.reg.Lookup(name)
	sp.Name = name
	b := &Bucket{
		sh:      sh,
		spec:    sp,
		rateBps: sp.RateBps,
		burst:   sp.BurstBytes,
		lastNs:  nowNs,
		tv:      sh.tel.Tenant(name),
	}
	// A fresh tenant starts with a full burst: admission begins
	// immediately and the initial tokens are minted on the books.
	if b.rateBps > 0 {
		b.tokens = b.burst
		sh.minted += b.burst
		sh.poolCap += b.burst
	}
	sh.buckets[name] = b
	sh.order = append(sh.order, name)
	return b
}

// Tenants returns the tenants with buckets here, in first-seen order.
func (sh *Shaper) Tenants() []string {
	if sh == nil {
		return nil
	}
	return append([]string(nil), sh.order...)
}

// Conservation is the ledger's books at one enforcement point.
type Conservation struct {
	Label    string `json:"label"`
	Minted   int64  `json:"minted"`
	Spent    int64  `json:"spent"`
	Held     int64  `json:"held"`
	Pool     int64  `json:"pool"`
	Lent     int64  `json:"lent"`
	Borrowed int64  `json:"borrowed"`
}

// Check verifies that borrowing created and destroyed zero tokens.
func (c Conservation) Check() error {
	if c.Minted != c.Spent+c.Held+c.Pool {
		return fmt.Errorf("qos %s: minted %d != spent %d + held %d + pool %d",
			c.Label, c.Minted, c.Spent, c.Held, c.Pool)
	}
	if c.Pool != c.Lent-c.Borrowed {
		return fmt.Errorf("qos %s: pool %d != lent %d - borrowed %d",
			c.Label, c.Pool, c.Lent, c.Borrowed)
	}
	if c.Pool < 0 || c.Held < 0 {
		return fmt.Errorf("qos %s: negative balance (pool %d, held %d)", c.Label, c.Pool, c.Held)
	}
	return nil
}

// Conservation returns the current books.
func (sh *Shaper) Conservation() Conservation {
	if sh == nil {
		return Conservation{}
	}
	c := Conservation{
		Label:    sh.label,
		Minted:   sh.minted,
		Spent:    sh.spent,
		Pool:     sh.pool,
		Lent:     sh.lent,
		Borrowed: sh.borrowed,
	}
	for _, name := range sh.order {
		c.Held += sh.buckets[name].tokens
	}
	return c
}

// TenantStats summarizes one bucket's lifetime activity for reports.
type TenantStats struct {
	Name      string `json:"name"`
	RateBps   int64  `json:"rate_bps,omitempty"`
	Taken     int64  `json:"taken_bytes"`
	Borrowed  int64  `json:"borrowed_bytes"`
	Lent      int64  `json:"lent_bytes"`
	Throttles int64  `json:"throttles"`
}

// Stats returns per-tenant activity in first-seen order.
func (sh *Shaper) Stats() []TenantStats {
	if sh == nil {
		return nil
	}
	out := make([]TenantStats, 0, len(sh.order))
	for _, name := range sh.order {
		b := sh.buckets[name]
		out = append(out, TenantStats{
			Name: name, RateBps: b.rateBps,
			Taken: b.Taken, Borrowed: b.Borrowed, Lent: b.Lent,
			Throttles: b.Throttles,
		})
	}
	return out
}

// MergeStats folds per-tenant stats from several shapers into one view
// sorted by name (a report helper; shapers themselves never talk).
func MergeStats(shapers ...*Shaper) []TenantStats {
	acc := map[string]*TenantStats{}
	for _, sh := range shapers {
		for _, st := range sh.Stats() {
			t, ok := acc[st.Name]
			if !ok {
				c := st
				acc[st.Name] = &c
				continue
			}
			t.Taken += st.Taken
			t.Borrowed += st.Borrowed
			t.Lent += st.Lent
			t.Throttles += st.Throttles
			if st.RateBps > t.RateBps {
				t.RateBps = st.RateBps
			}
		}
	}
	names := make([]string, 0, len(acc))
	for name := range acc {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TenantStats, 0, len(names))
	for _, name := range names {
		out = append(out, *acc[name])
	}
	return out
}

// Bucket is one tenant's token balance at one enforcement point. A nil
// bucket (no shaper, no tenant) admits everything.
type Bucket struct {
	sh      *Shaper
	spec    Spec
	rateBps int64
	burst   int64
	tokens  int64
	lastNs  int64
	residue int64 // sub-token refill remainder, in byte-nanoseconds/1e9 units
	tv      *telemetry.TenantView

	// Lifetime stats (see TenantStats).
	Taken     int64
	Borrowed  int64
	Lent      int64
	Throttles int64
}

// Tenant returns the bucket's tenant name.
func (b *Bucket) Tenant() string {
	if b == nil {
		return ""
	}
	return b.spec.Name
}

// Limited reports whether this bucket actually shapes (a provisioned
// rate exists).
func (b *Bucket) Limited() bool { return b != nil && b.rateBps > 0 }

const nsPerSec = int64(1e9)

// scaleTokens computes rate*elapsed/1e9 exactly (128-bit intermediate),
// returning the whole-token quotient and sub-token remainder.
func scaleTokens(rate, elapsed int64) (q, rem int64) {
	hi, lo := bits.Mul64(uint64(rate), uint64(elapsed))
	quo, r := bits.Div64(hi, lo, uint64(nsPerSec))
	return int64(quo), int64(r)
}

// refill mints tokens for the elapsed virtual time: into the bucket up
// to its burst, then into the ledger up to its cap (that spill IS the
// lend). Capacity neither can hold is never minted — unused line rate
// is not a token, which keeps conservation exact.
func (b *Bucket) refill(nowNs int64) {
	elapsed := nowNs - b.lastNs
	if elapsed <= 0 {
		return
	}
	b.lastNs = nowNs
	// Bound the arithmetic; everything is full long before this anyway.
	const maxElapsed = int64(1e15) // ~11.6 virtual days
	if elapsed > maxElapsed {
		elapsed = maxElapsed
		b.residue = 0
	}
	gained, rem := scaleTokens(b.rateBps, elapsed)
	rem += b.residue
	if rem >= nsPerSec {
		gained++
		rem -= nsPerSec
	}
	b.residue = rem
	if gained <= 0 {
		return
	}
	if space := b.burst - b.tokens; space > 0 {
		take := gained
		if take > space {
			take = space
		}
		b.tokens += take
		b.sh.minted += take
		gained -= take
	}
	if gained > 0 {
		// The bucket is full: this tenant is idle relative to its rate.
		// Spill the surplus refill into the lending ledger.
		lend := b.sh.poolCap - b.sh.pool
		if lend > gained {
			lend = gained
		}
		if lend > 0 {
			b.sh.pool += lend
			b.sh.minted += lend
			b.sh.lent += lend
			b.Lent += lend
			b.tv.Add(telemetry.TCtrLent, lend)
		}
	}
}

// TryTake admits n bytes if the tenant's balance (own tokens, then
// borrowed ledger tokens) covers them. Unlimited buckets always admit.
func (b *Bucket) TryTake(nowNs, n int64) bool {
	if b == nil || b.rateBps <= 0 {
		return true
	}
	b.refill(nowNs)
	if b.tokens >= n {
		b.tokens -= n
		b.sh.spent += n
		b.Taken += n
		return true
	}
	deficit := n - b.tokens
	if b.sh.pool >= deficit {
		// Borrow the shortfall from the ledger: idle tenants' spilled
		// refill funds this tenant's burst, no coordinator involved.
		b.sh.pool -= deficit
		b.sh.borrowed += deficit
		b.Borrowed += deficit
		b.tv.Add(telemetry.TCtrBorrowed, deficit)
		b.tokens = 0
		b.sh.spent += n
		b.Taken += n
		return true
	}
	b.Throttles++
	return false
}

// Penalize debits up to n tokens without admitting anything: the charge
// for work a tenant caused and wasted (a shed buffer wait). Only what
// the balance covers is debited, keeping the books exact.
func (b *Bucket) Penalize(nowNs, n int64) {
	if b == nil || b.rateBps <= 0 || n <= 0 {
		return
	}
	b.refill(nowNs)
	take := n
	if take > b.tokens {
		take = b.tokens
	}
	b.tokens -= take
	b.sh.spent += take
	b.Taken += take
}

// WaitNs estimates how long until n bytes' worth of tokens refill from
// the tenant's own rate (ledger borrowing may admit sooner; a timer
// re-check handles that). Clamped to [2µs, 1ms] so wake timers neither
// spin nor oversleep.
func (b *Bucket) WaitNs(nowNs, n int64) int64 {
	const minWait, maxWait = int64(2_000), int64(1_000_000)
	if b == nil || b.rateBps <= 0 {
		return minWait
	}
	b.refill(nowNs)
	deficit := n - b.tokens
	if deficit <= 0 {
		return minWait
	}
	// deficit*1e9/rate with a 128-bit intermediate; the clamp below keeps
	// the quotient in range regardless of how extreme the deficit is.
	hi, lo := bits.Mul64(uint64(deficit), uint64(nsPerSec))
	if hi >= uint64(b.rateBps) {
		return maxWait
	}
	q, _ := bits.Div64(hi, lo, uint64(b.rateBps))
	wait := int64(q)
	if wait < minWait {
		wait = minWait
	}
	if wait > maxWait {
		wait = maxWait
	}
	return wait
}
