package vol

import (
	"bytes"
	"testing"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/blockfs"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

const capacity = 512 << 20

func rig(t *testing.T, seed int64) (*sim.Engine, func(p *sim.Proc, cfg Config) *Connector) {
	t.Helper()
	e := sim.NewEngine(seed)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem("nqn.vol")
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "d", capacity, ssdParams, true, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	fabric := core.NewFabric(e, model.DefaultSHM())
	srv := core.NewServer(e, tgt, core.ServerConfig{
		NQN: "nqn.vol", Design: core.DesignSHMZeroCopy, Fabric: fabric,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
	})
	link := netsim.NewLoopLink(e, model.Loopback())
	srv.Serve(link.B)
	region, _ := fabric.RegionFor(core.DesignSHMZeroCopy, "h", "h", 1<<20, 128<<10, 64)
	return e, func(p *sim.Proc, cfg Config) *Connector {
		c, err := core.Connect(p, link.A, core.ClientConfig{
			NQN: "nqn.vol", QueueDepth: 64, Design: core.DesignSHMZeroCopy, Region: region,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return New(blockfs.New(e, c, capacity), cfg)
	}
}

func TestSmallWritesAreSynchronous(t *testing.T) {
	e, open := rig(t, 1)
	e.Go("app", func(p *sim.Proc) {
		c := open(p, Config{})
		for i := 0; i < 4; i++ {
			if err := c.WriteAt(p, int64(i)<<20, nil, 1<<20); err != nil {
				t.Error(err)
			}
		}
		if c.SyncOps != 4 || c.DirectOps != 0 {
			t.Errorf("sync=%d direct=%d", c.SyncOps, c.DirectOps)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeTransfersUsePipelinedPath(t *testing.T) {
	e, open := rig(t, 2)
	e.Go("app", func(p *sim.Proc) {
		c := open(p, Config{})
		if err := c.WriteAt(p, 0, nil, 32<<20); err != nil {
			t.Error(err)
		}
		if err := c.ReadAt(p, 0, nil, 32<<20); err != nil {
			t.Error(err)
		}
		if c.DirectOps != 2 || c.SyncOps != 0 {
			t.Errorf("sync=%d direct=%d", c.SyncOps, c.DirectOps)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescerMergesInterleavedStreams(t *testing.T) {
	e, open := rig(t, 3)
	e.Go("app", func(p *sim.Proc) {
		c := open(p, Config{Coalesce: true, CoalesceBytes: 8 << 20})
		// Interleave 8 sequential streams of 64KB writes (config-2-like).
		bases := make([]int64, 8)
		for i := range bases {
			bases[i] = int64(i) * (32 << 20)
		}
		offs := make([]int64, 8)
		for round := 0; round < 16; round++ {
			for i := range bases {
				if err := c.WriteAt(p, bases[i]+offs[i], nil, 64<<10); err != nil {
					t.Error(err)
				}
				offs[i] += 64 << 10
			}
		}
		if err := c.Flush(p); err != nil {
			t.Error(err)
		}
		if c.CoalescedWrites != 128 {
			t.Errorf("coalesced %d writes", c.CoalescedWrites)
		}
		// 8 streams x 16 x 64KB merged: flushes should be per-extent
		// pipelined transfers, far fewer than 128.
		if c.DirectOps == 0 || c.DirectOps > 16 {
			t.Errorf("direct ops %d", c.DirectOps)
		}
		if c.SyncOps != 0 {
			t.Errorf("sync ops %d", c.SyncOps)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescerPreservesRealData(t *testing.T) {
	e, open := rig(t, 4)
	e.Go("app", func(p *sim.Proc) {
		c := open(p, Config{Coalesce: true})
		var want []byte
		off := int64(0)
		for i := 0; i < 20; i++ {
			chunk := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			if err := c.WriteAt(p, off, chunk, len(chunk)); err != nil {
				t.Error(err)
			}
			want = append(want, chunk...)
			off += int64(len(chunk))
		}
		got := make([]byte, len(want))
		if err := c.ReadAt(p, 0, got, len(got)); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("coalesced data mismatch")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSeesFlushedPendingWrites(t *testing.T) {
	e, open := rig(t, 5)
	e.Go("app", func(p *sim.Proc) {
		c := open(p, Config{Coalesce: true})
		data := []byte("pending-bytes-visible")
		if err := c.WriteAt(p, 512, data, len(data)); err != nil {
			t.Error(err)
		}
		got := make([]byte, len(data))
		if err := c.ReadAt(p, 512, got, len(got)); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("read did not observe pending write")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAheadServesSequentialStreams(t *testing.T) {
	e, open := rig(t, 6)
	e.Go("app", func(p *sim.Proc) {
		c := open(p, Config{Coalesce: true, ReadAheadBytes: 4 << 20})
		// Warm the file.
		if err := c.WriteAt(p, 0, nil, 64<<20); err != nil {
			t.Error(err)
		}
		c.Flush(p)
		// Two interleaved sequential readers.
		offA, offB := int64(0), int64(32<<20)
		for i := 0; i < 32; i++ {
			if err := c.ReadAt(p, offA, nil, 1<<20); err != nil {
				t.Error(err)
			}
			if err := c.ReadAt(p, offB, nil, 1<<20); err != nil {
				t.Error(err)
			}
			offA += 1 << 20
			offB += 1 << 20
		}
		// 64MB consumed via 4MB windows: ~16 prefetches, not 64.
		if c.Prefetches == 0 || c.Prefetches > 20 {
			t.Errorf("prefetches %d", c.Prefetches)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescedFasterThanSyncSmallWrites(t *testing.T) {
	elapsed := func(coalesce bool) sim.Time {
		e, open := rig(t, 7)
		var done sim.Time
		e.Go("app", func(p *sim.Proc) {
			c := open(p, Config{Coalesce: coalesce})
			off := int64(0)
			for i := 0; i < 256; i++ {
				if err := c.WriteAt(p, off, nil, 64<<10); err != nil {
					t.Error(err)
				}
				off += 64 << 10
			}
			c.Flush(p)
			done = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	sync := elapsed(false)
	coal := elapsed(true)
	if coal*3 >= sync {
		t.Fatalf("coalesced (%v) should be >3x faster than sync (%v)", coal, sync)
	}
}
