// Package vol implements the HDF5 Virtual-Object-Layer-style connector
// that routes dataset I/O over an NVMe-oF transport (the paper's
// HDF5/NVMe-oAF co-design, §5.7.1). It provides three data paths:
//
//   - a synchronous path for small or partial dataset writes (HDF5's
//     H5Dwrite is synchronous, so a naive connector issues one blocking
//     I/O per call);
//   - a pipelined direct path for large contiguous transfers, keeping a
//     configurable number of chunk I/Os in flight;
//   - an application-agnostic I/O coalescer (the optimization behind
//     Fig 17): small writes accumulate in per-extent write-behind buffers
//     that flush through the pipelined path, and sequential reads trigger
//     readahead.
package vol

import (
	"fmt"
	"sort"

	"nvmeoaf/internal/blockfs"
	"nvmeoaf/internal/sim"
)

// Config tunes the connector.
type Config struct {
	// TransferSize is the chunk size of pipelined transfers (default 1 MiB).
	TransferSize int
	// PipelineDepth is the number of outstanding chunk I/Os on the direct
	// path (default 16).
	PipelineDepth int
	// DirectThreshold routes transfers of at least this size down the
	// pipelined path (default 8 MiB); smaller ones are synchronous.
	DirectThreshold int
	// Coalesce enables the write-behind/readahead optimization.
	Coalesce bool
	// CoalesceBytes is the write-behind flush threshold (default 64 MiB:
	// large enough that each dataset extent accumulates a deep pipelined
	// flush even when eight datasets interleave).
	CoalesceBytes int
	// ReadAheadBytes is the prefetch window for sequential reads under
	// coalescing (default 8 MiB).
	ReadAheadBytes int
}

func (c Config) withDefaults() Config {
	if c.TransferSize <= 0 {
		c.TransferSize = 1 << 20
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 16
	}
	if c.DirectThreshold <= 0 {
		c.DirectThreshold = 8 << 20
	}
	if c.CoalesceBytes <= 0 {
		c.CoalesceBytes = 64 << 20
	}
	if c.ReadAheadBytes <= 0 {
		c.ReadAheadBytes = 8 << 20
	}
	return c
}

// extent is one pending write-behind region.
type extent struct {
	off  int64
	size int
	data []byte // nil when the payload is modeled
}

// Connector implements hdf5.Storage over a blockfs file.
type Connector struct {
	f   *blockfs.File
	cfg Config

	pending      []*extent
	pendingBytes int
	// prefetch windows already fetched by readahead, one per concurrent
	// sequential stream (interleaved multi-dataset reads each keep their
	// own window).
	windows []window

	// SyncOps counts synchronous small I/Os; DirectOps pipelined
	// transfers; CoalescedWrites writes absorbed into write-behind
	// buffers; Prefetches readahead transfers.
	SyncOps, DirectOps, CoalescedWrites, Prefetches int64
}

// New creates a connector over f.
func New(f *blockfs.File, cfg Config) *Connector {
	return &Connector{f: f, cfg: cfg.withDefaults()}
}

// WriteAt implements hdf5.Storage.
func (c *Connector) WriteAt(p *sim.Proc, off int64, data []byte, size int) error {
	if size <= 0 {
		return nil
	}
	if c.cfg.Coalesce {
		return c.coalesceWrite(p, off, data, size)
	}
	if size >= c.cfg.DirectThreshold {
		c.DirectOps++
		return c.f.Stream(p, true, off, data, size, c.cfg.TransferSize, c.cfg.PipelineDepth)
	}
	c.SyncOps++
	return c.f.WriteAt(p, off, data, size)
}

// coalesceWrite merges the write into a pending extent, flushing when the
// write-behind budget fills. Buffering real bytes costs a memcpy-scale
// time already charged by the fabric's fill accounting; the dominant
// savings is turning synchronous small I/Os into deep pipelined ones.
func (c *Connector) coalesceWrite(p *sim.Proc, off int64, data []byte, size int) error {
	c.CoalescedWrites++
	merged := false
	for _, e := range c.pending {
		if e.off+int64(e.size) == off {
			// Sequential append to an existing extent.
			if data != nil {
				if e.data == nil {
					e.data = make([]byte, e.size)
				}
				e.data = append(e.data[:e.size], data[:size]...)
			} else if e.data != nil {
				e.data = append(e.data[:e.size], make([]byte, size)...)
			}
			e.size += size
			merged = true
			break
		}
	}
	if !merged {
		e := &extent{off: off, size: size}
		if data != nil {
			e.data = append([]byte(nil), data[:size]...)
		}
		c.pending = append(c.pending, e)
	}
	c.pendingBytes += size
	if c.pendingBytes >= c.cfg.CoalesceBytes {
		return c.flushPending(p)
	}
	return nil
}

// flushPending streams every pending extent through the pipelined path.
func (c *Connector) flushPending(p *sim.Proc) error {
	if len(c.pending) == 0 {
		return nil
	}
	extents := c.pending
	c.pending = nil
	c.pendingBytes = 0
	sort.Slice(extents, func(i, j int) bool { return extents[i].off < extents[j].off })
	for _, e := range extents {
		c.DirectOps++
		aligned := e.off%blockAlign == 0 && e.size%blockAlign == 0
		if aligned {
			if err := c.f.Stream(p, true, e.off, e.data, e.size, c.cfg.TransferSize, c.cfg.PipelineDepth); err != nil {
				return err
			}
			continue
		}
		if err := c.f.WriteAt(p, e.off, e.data, e.size); err != nil {
			return err
		}
	}
	return nil
}

const blockAlign = 512

// ReadAt implements hdf5.Storage.
func (c *Connector) ReadAt(p *sim.Proc, off int64, buf []byte, size int) error {
	if size <= 0 {
		return nil
	}
	// Reads must observe pending writes.
	if err := c.flushPending(p); err != nil {
		return err
	}
	if c.cfg.Coalesce && buf == nil {
		return c.readAhead(p, off, size)
	}
	if size >= c.cfg.DirectThreshold {
		c.DirectOps++
		if off%blockAlign == 0 && size%blockAlign == 0 {
			return c.f.Stream(p, false, off, buf, size, c.cfg.TransferSize, c.cfg.PipelineDepth)
		}
	}
	c.SyncOps++
	return c.f.ReadAt(p, off, buf, size)
}

// window is one prefetched range.
type window struct{ off, end int64 }

// maxWindows bounds the per-stream readahead state.
const maxWindows = 16

// readAhead serves modeled reads from the prefetch windows, fetching a
// fresh window with a pipelined transfer on a miss. One window exists per
// concurrent sequential stream, so interleaved multi-dataset reads do not
// thrash each other's readahead.
func (c *Connector) readAhead(p *sim.Proc, off int64, size int) error {
	end := off + int64(size)
	for _, w := range c.windows {
		if off >= w.off && end <= w.end {
			return nil // already prefetched
		}
	}
	// Fetch a full window starting at the requested offset (aligned).
	winStart := off / blockAlign * blockAlign
	winSize := int64(c.cfg.ReadAheadBytes)
	if winSize < int64(size) {
		winSize = (int64(size) + blockAlign - 1) / blockAlign * blockAlign
	}
	if winStart+winSize > c.f.Size {
		winSize = (c.f.Size - winStart) / blockAlign * blockAlign
	}
	c.Prefetches++
	c.DirectOps++
	if err := c.f.Stream(p, false, winStart, nil, int(winSize), c.cfg.TransferSize, c.cfg.PipelineDepth); err != nil {
		return err
	}
	c.windows = append(c.windows, window{off: winStart, end: winStart + winSize})
	if len(c.windows) > maxWindows {
		c.windows = c.windows[1:]
	}
	if end > winStart+winSize {
		return fmt.Errorf("vol: read [%d,%d) exceeds prefetchable file range", off, end)
	}
	return nil
}

// Flush implements hdf5.Storage.
func (c *Connector) Flush(p *sim.Proc) error { return c.flushPending(p) }
