package pdu

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"nvmeoaf/internal/nvme"
)

// roundTrip encodes p, decodes the bytes, and returns the decoded PDU.
func roundTrip(t *testing.T, p PDU) PDU {
	t.Helper()
	buf := Marshal(p)
	if len(buf) == 0 {
		t.Fatal("empty encoding")
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode %v: %v", p.Type(), err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	return got
}

func TestICReqRoundTrip(t *testing.T) {
	p := &ICReq{PFV: 0, HPDA: 4, MaxR2T: 16, AFCapab: true}
	got := roundTrip(t, p).(*ICReq)
	if *got != *p {
		t.Fatalf("got %+v want %+v", got, p)
	}
}

func TestICRespRoundTrip(t *testing.T) {
	p := &ICResp{
		PFV: 0, CPDA: 4, MaxH2CData: 128 << 10, AFEnabled: true,
		SHMKey: 0xDEADBEEF01234567, SHMSize: 256 << 20,
		SlotSize: 512 << 10, SlotCount: 128,
	}
	got := roundTrip(t, p).(*ICResp)
	if *got != *p {
		t.Fatalf("got %+v want %+v", got, p)
	}
}

func TestCapsuleCmdInCapsuleData(t *testing.T) {
	data := []byte("0123456789abcdef")
	p := &CapsuleCmd{Cmd: nvme.NewWrite(5, 1, 0, 1), Data: data}
	got := roundTrip(t, p).(*CapsuleCmd)
	if got.Cmd != p.Cmd {
		t.Fatalf("cmd mismatch: %+v vs %+v", got.Cmd, p.Cmd)
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatal("in-capsule data mismatch")
	}
	if got.WireLen() != p.WireLen() {
		t.Fatalf("wire len %d vs %d", got.WireLen(), p.WireLen())
	}
}

func TestCapsuleCmdVirtualPayload(t *testing.T) {
	p := &CapsuleCmd{Cmd: nvme.NewWrite(5, 1, 0, 8), VirtualLen: 4096}
	if p.WireLen() <= 80 {
		t.Fatalf("wire len %d should include virtual payload", p.WireLen())
	}
	// Encoded bytes must be small even though the wire length is 4KB+.
	buf := Marshal(p)
	if len(buf) >= 4096 {
		t.Fatalf("virtual payload materialized: %d bytes", len(buf))
	}
	got := roundTrip(t, p).(*CapsuleCmd)
	if got.VirtualLen != 4096 || got.Data != nil {
		t.Fatalf("virtual len %d data %v", got.VirtualLen, got.Data)
	}
}

func TestCapsuleRespRoundTrip(t *testing.T) {
	p := &CapsuleResp{Rsp: nvme.Completion{Result: 7, SQHead: 3, SQID: 1, CID: 99, Status: nvme.StatusLBAOutOfRange}}
	got := roundTrip(t, p).(*CapsuleResp)
	if *got != *p {
		t.Fatalf("got %+v want %+v", got, p)
	}
}

func TestDataPDURealPayload(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	for _, dir := range []Type{TypeH2CData, TypeC2HData} {
		p := &Data{Dir: dir, CID: 12, TTag: 3, Offset: 4096, Last: true, Payload: payload}
		got := roundTrip(t, p).(*Data)
		if got.Dir != dir || got.CID != 12 || got.TTag != 3 || got.Offset != 4096 || !got.Last {
			t.Fatalf("%v header mismatch: %+v", dir, got)
		}
		if !bytes.Equal(got.Payload, payload) {
			t.Fatal("payload mismatch")
		}
	}
}

func TestDataPDUVirtualPayload(t *testing.T) {
	p := &Data{Dir: TypeC2HData, CID: 1, VirtualLen: 128 << 10}
	buf := Marshal(p)
	if len(buf) > 64 {
		t.Fatalf("virtual data materialized: %d bytes", len(buf))
	}
	if p.WireLen() != len(buf)+(128<<10) {
		t.Fatalf("wire len %d", p.WireLen())
	}
	got := roundTrip(t, p).(*Data)
	if got.VirtualLen != 128<<10 || got.Last {
		t.Fatalf("got %+v", got)
	}
}

func TestR2TRoundTrip(t *testing.T) {
	p := &R2T{CID: 42, TTag: 7, Offset: 128 << 10, Length: 128 << 10}
	got := roundTrip(t, p).(*R2T)
	if *got != *p {
		t.Fatalf("got %+v want %+v", got, p)
	}
}

func TestSHMNotifyRoundTrip(t *testing.T) {
	p := &SHMNotify{CID: 9, Slot: 77, Offset: 13 << 20, Length: 512 << 10, Last: true}
	got := roundTrip(t, p).(*SHMNotify)
	if *got != *p {
		t.Fatalf("got %+v want %+v", got, p)
	}
}

func TestSHMReleaseRoundTrip(t *testing.T) {
	p := &SHMRelease{CID: 5, Slot: 31}
	got := roundTrip(t, p).(*SHMRelease)
	if *got != *p {
		t.Fatalf("got %+v want %+v", got, p)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x04},                                   // short header
		{0xFF, 0, 8, 0, 8, 0, 0, 0},              // unknown type
		{0x00, 0, 8, 0, 4, 0, 0, 0},              // PLEN below header size
		{0x00, 0, 8, 0, 200, 0, 0, 0},            // PLEN beyond buffer
		{0x00, 0, 8, 0, 10, 0, 0, 0, 0, 0},       // ICReq body too short
		{0x09, 0, 8, 0, 12, 0, 0, 0, 0, 0, 0, 0}, // R2T body too short
	}
	for i, buf := range cases {
		if _, _, err := Decode(buf); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestTruncatedPayloadRejected(t *testing.T) {
	p := &Data{Dir: TypeC2HData, CID: 1, Payload: make([]byte, 100)}
	buf := Marshal(p)
	// Claim full PLEN but hand a shorter slice via an inner corruption:
	// shrink payload while keeping declared lengths.
	corrupted := append([]byte(nil), buf[:len(buf)-50]...)
	if _, _, err := Decode(corrupted); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestStreamOfPDUs(t *testing.T) {
	// Multiple PDUs back-to-back in one buffer decode sequentially, as a
	// TCP bytestream delivers them.
	var stream []byte
	pdus := []PDU{
		&ICReq{PFV: 0, MaxR2T: 4},
		&CapsuleCmd{Cmd: nvme.NewRead(1, 1, 0, 8)},
		&R2T{CID: 1, TTag: 2, Length: 4096},
		&SHMRelease{Slot: 5},
	}
	for _, p := range pdus {
		stream = p.Encode(stream)
	}
	off := 0
	for i, want := range pdus {
		got, n, err := Decode(stream[off:])
		if err != nil {
			t.Fatalf("pdu %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("pdu %d: type %v want %v", i, got.Type(), want.Type())
		}
		off += n
	}
	if off != len(stream) {
		t.Fatalf("consumed %d of %d", off, len(stream))
	}
}

func TestTypeStrings(t *testing.T) {
	for _, typ := range []Type{TypeICReq, TypeICResp, TypeH2CTermReq, TypeC2HTermReq,
		TypeCapsuleCmd, TypeCapsuleResp, TypeH2CData, TypeC2HData, TypeR2T,
		TypeSHMNotify, TypeSHMRelease, Type(0xEE)} {
		if typ.String() == "" {
			t.Fatalf("empty string for type %#x", uint8(typ))
		}
	}
}

func TestR2TPropertyRoundTrip(t *testing.T) {
	f := func(cid, ttag uint16, off, length uint32) bool {
		p := &R2T{CID: cid, TTag: ttag, Offset: off, Length: length}
		got, n, err := Decode(Marshal(p))
		if err != nil || n != p.WireLen() {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSHMNotifyPropertyRoundTrip(t *testing.T) {
	f := func(cid uint16, slot uint32, off uint64, length uint32, last bool) bool {
		p := &SHMNotify{CID: cid, Slot: slot, Offset: off, Length: length, Last: last}
		got, _, err := Decode(Marshal(p))
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCapsuleRespTimingTrailer(t *testing.T) {
	p := &CapsuleResp{
		Rsp:        nvme.Completion{CID: 4, Status: nvme.StatusSuccess},
		IOTimeNs:   123456789,
		TgtCommNs:  987654,
		TgtOtherNs: 42,
	}
	got := roundTrip(t, p).(*CapsuleResp)
	if *got != *p {
		t.Fatalf("got %+v want %+v", got, p)
	}
}

func TestCmdBatchRoundTrip(t *testing.T) {
	p := &CmdBatch{Entries: []BatchEntry{
		{Cmd: nvme.NewRead(1, 1, 0, 8)},
		{Cmd: nvme.NewWrite(2, 1, 512, 8), Data: []byte("in-capsule bytes")},
		{Cmd: nvme.NewWrite(3, 1, 1024, 8), VirtualLen: 128 << 10},
	}}
	got := roundTrip(t, p).(*CmdBatch)
	if len(got.Entries) != 3 {
		t.Fatalf("entries: got %d want 3", len(got.Entries))
	}
	for i := range p.Entries {
		if got.Entries[i].Cmd != p.Entries[i].Cmd {
			t.Fatalf("entry %d SQE mismatch: %+v vs %+v", i, got.Entries[i].Cmd, p.Entries[i].Cmd)
		}
	}
	if !bytes.Equal(got.Entries[1].Data, p.Entries[1].Data) {
		t.Fatalf("entry 1 data: got %q", got.Entries[1].Data)
	}
	if got.Entries[2].VirtualLen != 128<<10 || got.Entries[2].Data != nil {
		t.Fatalf("entry 2 virtual: %+v", got.Entries[2])
	}
	// The virtual payload is charged on the wire but never serialized.
	if wire, mat := p.WireLen(), len(Marshal(p)); wire-mat != 128<<10 {
		t.Fatalf("wire %d vs materialized %d: want virtual gap %d", wire, mat, 128<<10)
	}
	// The batch saves one common header per coalesced command vs. three
	// standalone capsules.
	solo := 0
	for i := range p.Entries {
		e := &p.Entries[i]
		solo += (&CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}).WireLen()
	}
	if saved := solo - p.WireLen(); saved != 2*headerSize-batchPrefixSize {
		t.Fatalf("header saving: got %d want %d", saved, 2*headerSize-batchPrefixSize)
	}
}

func TestCmdBatchEmptyAndTruncated(t *testing.T) {
	got := roundTrip(t, &CmdBatch{}).(*CmdBatch)
	if len(got.Entries) != 0 {
		t.Fatalf("empty batch decoded %d entries", len(got.Entries))
	}
	buf := Marshal(&CmdBatch{Entries: []BatchEntry{{Cmd: nvme.NewRead(1, 1, 0, 8)}}})
	for cut := len(buf) - 1; cut > 0; cut-- {
		trunc := append([]byte(nil), buf[:cut]...)
		// Patch PLEN down so only the entry section is short.
		if cut >= headerSize {
			if _, _, err := Decode(trunc); err == nil {
				t.Fatalf("truncation at %d not rejected", cut)
			}
		}
	}
}

func TestCmdBatchInStream(t *testing.T) {
	var buf []byte
	b := &CmdBatch{Entries: []BatchEntry{
		{Cmd: nvme.NewWrite(4, 1, 0, 8), VirtualLen: 4 << 10},
		{Cmd: nvme.NewRead(5, 1, 0, 8)},
	}}
	buf = b.Encode(buf)
	buf = (&CapsuleResp{Rsp: nvme.Completion{CID: 9}}).Encode(buf)
	p1, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Type() != TypeCmdBatch {
		t.Fatalf("first PDU %v", p1.Type())
	}
	p2, _, err := Decode(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if p2.Type() != TypeCapsuleResp {
		t.Fatalf("second PDU %v", p2.Type())
	}
}
