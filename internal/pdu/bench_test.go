package pdu

import (
	"testing"

	"nvmeoaf/internal/nvme"
)

// BenchmarkCmdBatchEncode pins the hot-path cost of serializing a
// capsule train: encoding into a reused buffer must not allocate.
func BenchmarkCmdBatchEncode(b *testing.B) {
	batch := &CmdBatch{Entries: make([]BatchEntry, 16)}
	for i := range batch.Entries {
		batch.Entries[i] = BatchEntry{Cmd: nvme.NewWrite(uint16(i+1), 1, uint64(i)*4096, 8), VirtualLen: 4096}
	}
	buf := batch.Encode(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = batch.Encode(buf[:0])
	}
	_ = buf
}

// BenchmarkCmdBatchDecode measures deserializing the same 16-command
// train; the per-call cost is the entries slice plus virtual-payload
// bookkeeping, independent of the 4 KiB payloads (never materialized).
func BenchmarkCmdBatchDecode(b *testing.B) {
	batch := &CmdBatch{Entries: make([]BatchEntry, 16)}
	for i := range batch.Entries {
		batch.Entries[i] = BatchEntry{Cmd: nvme.NewWrite(uint16(i+1), 1, uint64(i)*4096, 8), VirtualLen: 4096}
	}
	wire := Marshal(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _, err := Decode(wire)
		if err != nil {
			b.Fatal(err)
		}
		if len(p.(*CmdBatch).Entries) != 16 {
			b.Fatal("bad decode")
		}
	}
}
