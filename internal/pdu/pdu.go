// Package pdu implements the NVMe/TCP protocol data units exchanged
// between host and controller (ICReq/ICResp, command/response capsules,
// H2C/C2H data, R2T), plus the adaptive-fabric extension PDUs that carry
// shared-memory payload notifications out-of-band (§4.1, Figures 5-7 of
// the paper).
//
// Every PDU encodes to and decodes from real bytes with an 8-byte common
// header, following the NVMe/TCP transport specification layout. Bulk
// payloads may be "virtual": the transport then charges their size on the
// simulated wire without materializing the bytes, which keeps multi-
// gigabyte bandwidth runs within host memory.
package pdu

import (
	"encoding/binary"
	"fmt"

	"nvmeoaf/internal/nvme"
)

// Type identifies a PDU.
type Type uint8

// NVMe/TCP PDU types, plus adaptive-fabric extensions in the vendor-
// specific range.
const (
	TypeICReq       Type = 0x00
	TypeICResp      Type = 0x01
	TypeH2CTermReq  Type = 0x02
	TypeC2HTermReq  Type = 0x03
	TypeCapsuleCmd  Type = 0x04
	TypeCapsuleResp Type = 0x05
	TypeH2CData     Type = 0x06
	TypeC2HData     Type = 0x07
	TypeR2T         Type = 0x09

	// TypeSHMNotify announces a payload placed in a shared-memory slot
	// (either direction). It replaces H2CData/C2HData PDUs on the data
	// path when the adaptive fabric selects the shared-memory channel.
	TypeSHMNotify Type = 0x40
	// TypeSHMRelease returns a shared-memory slot to its owner after the
	// peer has consumed the payload.
	TypeSHMRelease Type = 0x41
	// TypeCmdBatch carries a train of NVMe commands in one PDU: the
	// doorbell-batched submission path packs up to BatchSize queued
	// commands (with optional in-capsule data per entry) behind a single
	// common header, saving one header plus one network message per
	// coalesced command.
	TypeCmdBatch Type = 0x42
)

func (t Type) String() string {
	switch t {
	case TypeICReq:
		return "ICReq"
	case TypeICResp:
		return "ICResp"
	case TypeH2CTermReq:
		return "H2CTermReq"
	case TypeC2HTermReq:
		return "C2HTermReq"
	case TypeCapsuleCmd:
		return "CapsuleCmd"
	case TypeCapsuleResp:
		return "CapsuleResp"
	case TypeH2CData:
		return "H2CData"
	case TypeC2HData:
		return "C2HData"
	case TypeR2T:
		return "R2T"
	case TypeSHMNotify:
		return "SHMNotify"
	case TypeSHMRelease:
		return "SHMRelease"
	case TypeCmdBatch:
		return "CmdBatch"
	default:
		return fmt.Sprintf("Type(0x%02x)", uint8(t))
	}
}

// headerSize is the NVMe/TCP common header length.
const headerSize = 8

// PDU is the interface implemented by all protocol data units.
type PDU interface {
	// Type returns the PDU type tag.
	Type() Type
	// Encode appends the serialized PDU (including common header) to dst.
	Encode(dst []byte) []byte
	// WireLen returns the total bytes this PDU occupies on the wire,
	// including virtual payload not materialized in Encode's output.
	WireLen() int
}

// putHeader appends the common header.
func putHeader(dst []byte, t Type, flags uint8, plen uint32) []byte {
	var h [headerSize]byte
	h[0] = uint8(t)
	h[1] = flags
	h[2] = headerSize
	binary.LittleEndian.PutUint32(h[4:], plen)
	return append(dst, h[:]...)
}

// Decode parses one PDU from buf and returns it along with the number of
// bytes consumed.
func Decode(buf []byte) (PDU, int, error) {
	if len(buf) < headerSize {
		return nil, 0, fmt.Errorf("pdu: short header: %d bytes", len(buf))
	}
	t := Type(buf[0])
	flags := buf[1]
	plen := binary.LittleEndian.Uint32(buf[4:])
	// PLEN declares the wire length. PDUs with a virtual payload carry
	// only their fixed body in the byte stream; the payload portion is
	// modeled, not materialized.
	mat := int(plen)
	if flags&flagVirtual != 0 {
		switch t {
		case TypeCapsuleCmd:
			mat = headerSize + nvme.CommandSize + 4
		case TypeH2CData, TypeC2HData:
			mat = headerSize + 16
		case TypeCmdBatch:
			// Per-entry virtual payloads make the materialized size
			// independent of PLEN; the batch prefix declares it.
			if len(buf) < headerSize+batchPrefixSize {
				return nil, 0, fmt.Errorf("pdu: short CmdBatch prefix: %d bytes", len(buf))
			}
			mat = headerSize + batchPrefixSize + int(binary.LittleEndian.Uint32(buf[headerSize+2:]))
		default:
			return nil, 0, fmt.Errorf("pdu: virtual flag on non-data PDU %v", t)
		}
	}
	if plen < headerSize || mat > len(buf) {
		return nil, 0, fmt.Errorf("pdu: bad PLEN %d (have %d bytes)", plen, len(buf))
	}
	body := buf[headerSize:mat]
	var (
		p   PDU
		err error
	)
	switch t {
	case TypeICReq:
		p, err = decodeICReq(body)
	case TypeICResp:
		p, err = decodeICResp(body)
	case TypeCapsuleCmd:
		p, err = decodeCapsuleCmd(body, flags)
	case TypeCapsuleResp:
		p, err = decodeCapsuleResp(body)
	case TypeH2CData, TypeC2HData:
		p, err = decodeData(t, body, flags)
	case TypeR2T:
		p, err = decodeR2T(body)
	case TypeH2CTermReq, TypeC2HTermReq:
		p = &Term{Dir: t}
	case TypeSHMNotify:
		p, err = decodeSHMNotify(body, flags)
	case TypeSHMRelease:
		p, err = decodeSHMRelease(body)
	case TypeCmdBatch:
		p, err = decodeCmdBatch(body)
	default:
		return nil, 0, fmt.Errorf("pdu: unknown type 0x%02x", uint8(t))
	}
	if err != nil {
		return nil, 0, err
	}
	return p, mat, nil
}

// ICReq initializes an NVMe/TCP connection. The AF bit negotiates the
// adaptive fabric extension.
type ICReq struct {
	PFV     uint16 // protocol format version
	HPDA    uint8  // host PDU data alignment
	MaxR2T  uint32
	AFCapab bool // host supports the adaptive fabric extension
	// SHMKey names the shared-memory region the helper process hotplugged
	// for this client (0 = none). The target validates it against its own
	// mapping during the locality check (§4.2).
	SHMKey uint64
}

// Type implements PDU.
func (*ICReq) Type() Type { return TypeICReq }

// WireLen implements PDU.
func (*ICReq) WireLen() int { return headerSize + 24 }

// Encode implements PDU.
func (r *ICReq) Encode(dst []byte) []byte {
	dst = putHeader(dst, TypeICReq, 0, uint32(r.WireLen()))
	var b [24]byte
	binary.LittleEndian.PutUint16(b[0:], r.PFV)
	b[2] = r.HPDA
	binary.LittleEndian.PutUint32(b[4:], r.MaxR2T)
	if r.AFCapab {
		b[8] = 1
	}
	binary.LittleEndian.PutUint64(b[16:], r.SHMKey)
	return append(dst, b[:]...)
}

func decodeICReq(body []byte) (PDU, error) {
	if len(body) < 24 {
		return nil, fmt.Errorf("pdu: short ICReq body: %d", len(body))
	}
	return &ICReq{
		PFV:     binary.LittleEndian.Uint16(body[0:]),
		HPDA:    body[2],
		MaxR2T:  binary.LittleEndian.Uint32(body[4:]),
		AFCapab: body[8] == 1,
		SHMKey:  binary.LittleEndian.Uint64(body[16:]),
	}, nil
}

// ICResp completes connection initialization. When the target accepts the
// adaptive-fabric extension and a shared-memory region is available, it
// carries the region geometry the client must map.
type ICResp struct {
	PFV        uint16
	CPDA       uint8
	MaxH2CData uint32
	AFEnabled  bool   // adaptive fabric accepted
	SHMKey     uint64 // shared-memory region identifier (0 = none)
	SHMSize    uint64 // region size in bytes
	SlotSize   uint32 // double-buffer slot size
	SlotCount  uint32 // slots per direction
}

// Type implements PDU.
func (*ICResp) Type() Type { return TypeICResp }

// WireLen implements PDU.
func (*ICResp) WireLen() int { return headerSize + 36 }

// Encode implements PDU.
func (r *ICResp) Encode(dst []byte) []byte {
	dst = putHeader(dst, TypeICResp, 0, uint32(r.WireLen()))
	var b [36]byte
	le := binary.LittleEndian
	le.PutUint16(b[0:], r.PFV)
	b[2] = r.CPDA
	le.PutUint32(b[4:], r.MaxH2CData)
	if r.AFEnabled {
		b[8] = 1
	}
	le.PutUint64(b[12:], r.SHMKey)
	le.PutUint64(b[20:], r.SHMSize)
	le.PutUint32(b[28:], r.SlotSize)
	le.PutUint32(b[32:], r.SlotCount)
	return append(dst, b[:]...)
}

func decodeICResp(body []byte) (PDU, error) {
	if len(body) < 36 {
		return nil, fmt.Errorf("pdu: short ICResp body: %d", len(body))
	}
	le := binary.LittleEndian
	return &ICResp{
		PFV:        le.Uint16(body[0:]),
		CPDA:       body[2],
		MaxH2CData: le.Uint32(body[4:]),
		AFEnabled:  body[8] == 1,
		SHMKey:     le.Uint64(body[12:]),
		SHMSize:    le.Uint64(body[20:]),
		SlotSize:   le.Uint32(body[28:]),
		SlotCount:  le.Uint32(body[32:]),
	}, nil
}

// flagVirtual marks PDUs whose payload length is modeled but not carried.
const flagVirtual = 0x80

// CapsuleCmd carries one NVMe command, optionally with in-capsule data
// for small writes (§4.4.2: the in-capsule flow needs a single message).
type CapsuleCmd struct {
	Cmd nvme.Command
	// Data is in-capsule payload; nil when the data phase is separate.
	Data []byte
	// VirtualLen models in-capsule payload without materializing it.
	VirtualLen int
}

// Type implements PDU.
func (*CapsuleCmd) Type() Type { return TypeCapsuleCmd }

// dataLen returns the modeled in-capsule payload size.
func (c *CapsuleCmd) dataLen() int {
	if c.Data != nil {
		return len(c.Data)
	}
	return c.VirtualLen
}

// WireLen implements PDU.
func (c *CapsuleCmd) WireLen() int { return headerSize + nvme.CommandSize + 4 + c.dataLen() }

// Encode implements PDU.
func (c *CapsuleCmd) Encode(dst []byte) []byte {
	var flags uint8
	if c.Data == nil && c.VirtualLen > 0 {
		flags = flagVirtual
	}
	dst = putHeader(dst, TypeCapsuleCmd, flags, uint32(c.WireLen()))
	var sqe [nvme.CommandSize]byte
	c.Cmd.Encode(sqe[:])
	dst = append(dst, sqe[:]...)
	var dl [4]byte
	binary.LittleEndian.PutUint32(dl[:], uint32(c.dataLen()))
	dst = append(dst, dl[:]...)
	return append(dst, c.Data...)
}

func decodeCapsuleCmd(body []byte, flags uint8) (PDU, error) {
	if len(body) < nvme.CommandSize+4 {
		return nil, fmt.Errorf("pdu: short CapsuleCmd body: %d", len(body))
	}
	cmd, err := nvme.DecodeCommand(body)
	if err != nil {
		return nil, err
	}
	dlen := binary.LittleEndian.Uint32(body[nvme.CommandSize:])
	c := &CapsuleCmd{Cmd: cmd}
	rest := body[nvme.CommandSize+4:]
	if flags&flagVirtual != 0 {
		c.VirtualLen = int(dlen)
	} else if dlen > 0 {
		if int(dlen) > len(rest) {
			return nil, fmt.Errorf("pdu: capsule data truncated: want %d have %d", dlen, len(rest))
		}
		c.Data = append([]byte(nil), rest[:dlen]...)
	}
	return c, nil
}

// CapsuleResp carries one NVMe completion, plus a vendor-extension trailer
// with the target-side timing the latency-breakdown experiments report
// (Figures 3 and 12): device execution time and time the command's inbound
// messages spent in the fabric as observed by the target.
type CapsuleResp struct {
	Rsp nvme.Completion
	// IOTimeNs is the device (bdev) execution time in nanoseconds.
	IOTimeNs uint64
	// TgtCommNs is fabric transit time of host-to-target messages for
	// this command, measured at the target, in nanoseconds.
	TgtCommNs uint64
	// TgtOtherNs is target-side processing time outside device and
	// fabric (buffer management, copies), in nanoseconds.
	TgtOtherNs uint64
}

// Type implements PDU.
func (*CapsuleResp) Type() Type { return TypeCapsuleResp }

// WireLen implements PDU.
func (*CapsuleResp) WireLen() int { return headerSize + nvme.CompletionSize + 24 }

// Encode implements PDU.
func (c *CapsuleResp) Encode(dst []byte) []byte {
	dst = putHeader(dst, TypeCapsuleResp, 0, uint32(c.WireLen()))
	var cqe [nvme.CompletionSize]byte
	c.Rsp.Encode(cqe[:])
	dst = append(dst, cqe[:]...)
	var tr [24]byte
	le := binary.LittleEndian
	le.PutUint64(tr[0:], c.IOTimeNs)
	le.PutUint64(tr[8:], c.TgtCommNs)
	le.PutUint64(tr[16:], c.TgtOtherNs)
	return append(dst, tr[:]...)
}

func decodeCapsuleResp(body []byte) (PDU, error) {
	cqe, err := nvme.DecodeCompletion(body)
	if err != nil {
		return nil, err
	}
	if len(body) < nvme.CompletionSize+24 {
		return nil, fmt.Errorf("pdu: short CapsuleResp trailer: %d", len(body))
	}
	le := binary.LittleEndian
	return &CapsuleResp{
		Rsp:        cqe,
		IOTimeNs:   le.Uint64(body[nvme.CompletionSize:]),
		TgtCommNs:  le.Uint64(body[nvme.CompletionSize+8:]),
		TgtOtherNs: le.Uint64(body[nvme.CompletionSize+16:]),
	}, nil
}

// Data is an H2CData or C2HData PDU: one chunk of a command's payload.
type Data struct {
	Dir    Type   // TypeH2CData or TypeC2HData
	CID    uint16 // command this data belongs to
	TTag   uint16 // transfer tag from R2T (H2C only)
	Offset uint32 // byte offset within the command's buffer
	Last   bool   // last chunk of the transfer
	// Payload carries real bytes; VirtualLen models payload size instead.
	Payload    []byte
	VirtualLen int
}

// Type implements PDU.
func (d *Data) Type() Type { return d.Dir }

func (d *Data) payloadLen() int {
	if d.Payload != nil {
		return len(d.Payload)
	}
	return d.VirtualLen
}

// WireLen implements PDU.
func (d *Data) WireLen() int { return headerSize + 16 + d.payloadLen() }

const flagLast = 0x04

// Encode implements PDU.
func (d *Data) Encode(dst []byte) []byte {
	var flags uint8
	if d.Last {
		flags |= flagLast
	}
	if d.Payload == nil && d.VirtualLen > 0 {
		flags |= flagVirtual
	}
	dst = putHeader(dst, d.Dir, flags, uint32(d.WireLen()))
	var b [16]byte
	le := binary.LittleEndian
	le.PutUint16(b[0:], d.CID)
	le.PutUint16(b[2:], d.TTag)
	le.PutUint32(b[4:], d.Offset)
	le.PutUint32(b[8:], uint32(d.payloadLen()))
	dst = append(dst, b[:]...)
	return append(dst, d.Payload...)
}

func decodeData(t Type, body []byte, flags uint8) (PDU, error) {
	if len(body) < 16 {
		return nil, fmt.Errorf("pdu: short data body: %d", len(body))
	}
	le := binary.LittleEndian
	d := &Data{
		Dir:    t,
		CID:    le.Uint16(body[0:]),
		TTag:   le.Uint16(body[2:]),
		Offset: le.Uint32(body[4:]),
		Last:   flags&flagLast != 0,
	}
	plen := le.Uint32(body[8:])
	rest := body[16:]
	if flags&flagVirtual != 0 {
		d.VirtualLen = int(plen)
	} else if plen > 0 {
		if int(plen) > len(rest) {
			return nil, fmt.Errorf("pdu: data payload truncated: want %d have %d", plen, len(rest))
		}
		d.Payload = append([]byte(nil), rest[:plen]...)
	}
	return d, nil
}

// R2T is the target's ready-to-transfer grant for a write command's data
// (the conservative flow-control path for I/O above the in-capsule
// threshold, §4.4.2).
type R2T struct {
	CID    uint16
	TTag   uint16
	Offset uint32
	Length uint32
}

// Type implements PDU.
func (*R2T) Type() Type { return TypeR2T }

// WireLen implements PDU.
func (*R2T) WireLen() int { return headerSize + 12 }

// Encode implements PDU.
func (r *R2T) Encode(dst []byte) []byte {
	dst = putHeader(dst, TypeR2T, 0, uint32(r.WireLen()))
	var b [12]byte
	le := binary.LittleEndian
	le.PutUint16(b[0:], r.CID)
	le.PutUint16(b[2:], r.TTag)
	le.PutUint32(b[4:], r.Offset)
	le.PutUint32(b[8:], r.Length)
	return append(dst, b[:]...)
}

func decodeR2T(body []byte) (PDU, error) {
	if len(body) < 12 {
		return nil, fmt.Errorf("pdu: short R2T body: %d", len(body))
	}
	le := binary.LittleEndian
	return &R2T{
		CID:    le.Uint16(body[0:]),
		TTag:   le.Uint16(body[2:]),
		Offset: le.Uint32(body[4:]),
		Length: le.Uint32(body[8:]),
	}, nil
}

// SHMNotify tells the peer that a payload for command CID sits in the
// shared-memory region at the given slot and byte range (step 4 in Fig 7).
// It travels out-of-band over TCP; the payload itself never touches the
// wire.
type SHMNotify struct {
	CID    uint16
	Slot   uint32
	Offset uint64 // byte offset within the region
	Length uint32
	Last   bool
}

// Type implements PDU.
func (*SHMNotify) Type() Type { return TypeSHMNotify }

// WireLen implements PDU.
func (*SHMNotify) WireLen() int { return headerSize + 20 }

// Encode implements PDU.
func (n *SHMNotify) Encode(dst []byte) []byte {
	var flags uint8
	if n.Last {
		flags |= flagLast
	}
	dst = putHeader(dst, TypeSHMNotify, flags, uint32(n.WireLen()))
	var b [20]byte
	le := binary.LittleEndian
	le.PutUint16(b[0:], n.CID)
	le.PutUint32(b[2:], n.Slot)
	le.PutUint64(b[6:], n.Offset)
	le.PutUint32(b[14:], n.Length)
	return append(dst, b[:]...)
}

func decodeSHMNotify(body []byte, flags uint8) (PDU, error) {
	if len(body) < 20 {
		return nil, fmt.Errorf("pdu: short SHMNotify body: %d", len(body))
	}
	le := binary.LittleEndian
	return &SHMNotify{
		CID:    le.Uint16(body[0:]),
		Slot:   le.Uint32(body[2:]),
		Offset: le.Uint64(body[6:]),
		Length: le.Uint32(body[14:]),
		Last:   flags&flagLast != 0,
	}, nil
}

// SHMRelease returns a slot to its owning side once the payload has been
// consumed. In the naive (pre-flow-control) designs it doubles as the
// per-chunk credit acknowledgement of the conservative stop-and-wait
// transfer; the shared-memory flow control of §4.4.2 eliminates it
// entirely (credits live in shared state).
type SHMRelease struct {
	CID  uint16
	Slot uint32
}

// Type implements PDU.
func (*SHMRelease) Type() Type { return TypeSHMRelease }

// WireLen implements PDU.
func (*SHMRelease) WireLen() int { return headerSize + 6 }

// Encode implements PDU.
func (r *SHMRelease) Encode(dst []byte) []byte {
	dst = putHeader(dst, TypeSHMRelease, 0, uint32(r.WireLen()))
	var b [6]byte
	binary.LittleEndian.PutUint16(b[0:], r.CID)
	binary.LittleEndian.PutUint32(b[2:], r.Slot)
	return append(dst, b[:]...)
}

func decodeSHMRelease(body []byte) (PDU, error) {
	if len(body) < 6 {
		return nil, fmt.Errorf("pdu: short SHMRelease body: %d", len(body))
	}
	return &SHMRelease{
		CID:  binary.LittleEndian.Uint16(body[0:]),
		Slot: binary.LittleEndian.Uint32(body[2:]),
	}, nil
}

// batchPrefixSize is the CmdBatch body prefix: u16 entry count + u32
// materialized length of the entries section.
const batchPrefixSize = 6

// entryVirtual marks one batch entry's payload as modeled-only in its
// length word.
const entryVirtual = uint32(1) << 31

// BatchEntry is one command inside a CmdBatch: a bare SQE plus optional
// in-capsule payload (real or virtual), exactly as a standalone
// CapsuleCmd would carry it but without the 8-byte common header.
type BatchEntry struct {
	Cmd nvme.Command
	// Data is in-capsule payload; nil when the data phase is separate.
	Data []byte
	// VirtualLen models in-capsule payload without materializing it.
	VirtualLen int
}

func (e *BatchEntry) dataLen() int {
	if e.Data != nil {
		return len(e.Data)
	}
	return e.VirtualLen
}

// CmdBatch is the doorbell-batched capsule train: N commands coalesced
// into one PDU, submitted with one network message and one reactor
// wakeup on the target. The wire layout is
//
//	[common header][u16 count][u32 matLen]
//	count × ([64-byte SQE][u32 dlen|virtual-bit][dlen payload bytes])
//
// where matLen is the materialized byte length of the entries section
// (virtual payloads are charged on the simulated wire via PLEN but never
// serialized).
type CmdBatch struct {
	Entries []BatchEntry
}

// Type implements PDU.
func (*CmdBatch) Type() Type { return TypeCmdBatch }

// WireLen implements PDU.
func (b *CmdBatch) WireLen() int {
	n := headerSize + batchPrefixSize
	for i := range b.Entries {
		n += nvme.CommandSize + 4 + b.Entries[i].dataLen()
	}
	return n
}

// matLen returns the materialized length of the entries section.
func (b *CmdBatch) matLen() (n int, virtual bool) {
	for i := range b.Entries {
		n += nvme.CommandSize + 4
		e := &b.Entries[i]
		if e.Data == nil && e.VirtualLen > 0 {
			virtual = true
		} else {
			n += len(e.Data)
		}
	}
	return n, virtual
}

// Encode implements PDU.
func (b *CmdBatch) Encode(dst []byte) []byte {
	matLen, virtual := b.matLen()
	var flags uint8
	if virtual {
		flags = flagVirtual
	}
	dst = putHeader(dst, TypeCmdBatch, flags, uint32(b.WireLen()))
	var pre [batchPrefixSize]byte
	binary.LittleEndian.PutUint16(pre[0:], uint16(len(b.Entries)))
	binary.LittleEndian.PutUint32(pre[2:], uint32(matLen))
	dst = append(dst, pre[:]...)
	for i := range b.Entries {
		e := &b.Entries[i]
		var sqe [nvme.CommandSize]byte
		e.Cmd.Encode(sqe[:])
		dst = append(dst, sqe[:]...)
		dl := uint32(e.dataLen())
		if e.Data == nil && e.VirtualLen > 0 {
			dl |= entryVirtual
		}
		var dlb [4]byte
		binary.LittleEndian.PutUint32(dlb[:], dl)
		dst = append(dst, dlb[:]...)
		dst = append(dst, e.Data...)
	}
	return dst
}

func decodeCmdBatch(body []byte) (PDU, error) {
	if len(body) < batchPrefixSize {
		return nil, fmt.Errorf("pdu: short CmdBatch body: %d", len(body))
	}
	count := int(binary.LittleEndian.Uint16(body[0:]))
	rest := body[batchPrefixSize:]
	b := &CmdBatch{Entries: make([]BatchEntry, 0, count)}
	for i := 0; i < count; i++ {
		if len(rest) < nvme.CommandSize+4 {
			return nil, fmt.Errorf("pdu: CmdBatch entry %d truncated: %d bytes", i, len(rest))
		}
		cmd, err := nvme.DecodeCommand(rest)
		if err != nil {
			return nil, err
		}
		dl := binary.LittleEndian.Uint32(rest[nvme.CommandSize:])
		rest = rest[nvme.CommandSize+4:]
		e := BatchEntry{Cmd: cmd}
		n := int(dl &^ entryVirtual)
		if dl&entryVirtual != 0 {
			e.VirtualLen = n
		} else if n > 0 {
			if n > len(rest) {
				return nil, fmt.Errorf("pdu: CmdBatch entry %d data truncated: want %d have %d", i, n, len(rest))
			}
			e.Data = append([]byte(nil), rest[:n]...)
			rest = rest[n:]
		}
		b.Entries = append(b.Entries, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("pdu: CmdBatch trailing bytes: %d", len(rest))
	}
	return b, nil
}

// Term requests orderly connection termination (H2CTermReq from the host,
// C2HTermReq from the controller).
type Term struct {
	Dir Type // TypeH2CTermReq or TypeC2HTermReq
}

// Type implements PDU.
func (t *Term) Type() Type { return t.Dir }

// WireLen implements PDU.
func (*Term) WireLen() int { return headerSize }

// Encode implements PDU.
func (t *Term) Encode(dst []byte) []byte {
	return putHeader(dst, t.Dir, 0, uint32(t.WireLen()))
}

// Marshal encodes a PDU into a fresh buffer.
func Marshal(p PDU) []byte { return p.Encode(nil) }
