package pdu

import (
	"testing"

	"nvmeoaf/internal/nvme"
)

// FuzzDecode drives the PDU decoder with arbitrary bytes: it must never
// panic and must either return a PDU that re-encodes within bounds or an
// error. `go test` exercises the seed corpus; `go test -fuzz=FuzzDecode`
// explores further.
func FuzzDecode(f *testing.F) {
	// Seed with one valid encoding of every PDU type.
	seeds := []PDU{
		&ICReq{PFV: 0, HPDA: 4, MaxR2T: 16, AFCapab: true, SHMKey: 7},
		&ICResp{PFV: 0, AFEnabled: true, SHMKey: 9, SlotSize: 4096, SlotCount: 8},
		&CapsuleCmd{Cmd: nvme.NewRead(1, 1, 0, 8)},
		&CapsuleCmd{Cmd: nvme.NewWrite(2, 1, 0, 8), Data: []byte("payload")},
		&CapsuleCmd{Cmd: nvme.NewWrite(3, 1, 0, 8), VirtualLen: 4096},
		&CapsuleResp{Rsp: nvme.Completion{CID: 5}, IOTimeNs: 100},
		&Data{Dir: TypeC2HData, CID: 1, Payload: []byte("abcdefgh"), Last: true},
		&Data{Dir: TypeH2CData, CID: 2, VirtualLen: 128 << 10},
		&R2T{CID: 3, TTag: 4, Length: 4096},
		&SHMNotify{CID: 6, Slot: 2, Offset: 512, Length: 4096, Last: true},
		&SHMRelease{CID: 7, Slot: 3},
		&CmdBatch{Entries: []BatchEntry{
			{Cmd: nvme.NewRead(10, 1, 0, 8)},
			{Cmd: nvme.NewWrite(11, 1, 0, 8), Data: []byte("payload")},
			{Cmd: nvme.NewWrite(12, 1, 0, 8), VirtualLen: 4096},
		}},
		&Term{Dir: TypeH2CTermReq},
	}
	for _, s := range seeds {
		f.Add(Marshal(s))
	}
	// A few corrupted variants.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x04, 0x80, 8, 0, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Whatever decoded must re-encode without panicking.
		out := Marshal(p)
		if len(out) == 0 {
			t.Fatal("empty re-encoding")
		}
		// And decode again to the same type.
		p2, _, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if p2.Type() != p.Type() {
			t.Fatalf("type changed: %v -> %v", p.Type(), p2.Type())
		}
	})
}

// FuzzDecodeCommand drives the SQE decoder.
func FuzzDecodeCommand(f *testing.F) {
	var buf [64]byte
	c := nvme.NewWrite(9, 1, 12345, 64)
	c.Encode(buf[:])
	f.Add(buf[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		cmd, err := nvme.DecodeCommand(data)
		if err != nil {
			return
		}
		var out [64]byte
		cmd.Encode(out[:])
		cmd2, err := nvme.DecodeCommand(out[:])
		if err != nil || cmd2 != cmd {
			t.Fatalf("SQE not round-trip stable: %+v vs %+v (%v)", cmd, cmd2, err)
		}
	})
}
