// Package target implements the NVMe-oF target application: named
// subsystems exposing namespaces backed by the bdev layer, plus command
// execution shared by every transport (TCP, RDMA, and the adaptive
// fabric). It mirrors SPDK's nvmf target: subsystems own namespaces,
// namespaces wrap bdevs, and the transports call Execute to run a
// command against the right device.
package target

import (
	"errors"
	"fmt"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/cache"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/ssd"
)

// Target is one NVMe-oF target application instance.
type Target struct {
	e    *sim.Engine
	host model.HostParams
	subs map[string]*Subsystem
	// order preserves subsystem registration order so the discovery log
	// is deterministic.
	order []string
}

// New creates an empty target with the given software-cost parameters.
func New(e *sim.Engine, host model.HostParams) *Target {
	return &Target{e: e, host: host, subs: make(map[string]*Subsystem)}
}

// Subsystem is one NVM subsystem: an NQN exposing a set of namespaces.
type Subsystem struct {
	NQN string
	nss map[uint32]*Namespace
}

// Namespace binds a namespace ID to a block device.
type Namespace struct {
	ID  uint32
	dev bdev.Device
}

// AddSubsystem registers a subsystem under nqn.
func (t *Target) AddSubsystem(nqn string) (*Subsystem, error) {
	if nqn == "" {
		return nil, fmt.Errorf("target: empty NQN")
	}
	if _, ok := t.subs[nqn]; ok {
		return nil, fmt.Errorf("target: subsystem %q already exists", nqn)
	}
	sub := &Subsystem{NQN: nqn, nss: make(map[uint32]*Namespace)}
	t.subs[nqn] = sub
	t.order = append(t.order, nqn)
	return sub, nil
}

// Subsystem resolves a registered subsystem by NQN.
func (t *Target) Subsystem(nqn string) (*Subsystem, bool) {
	sub, ok := t.subs[nqn]
	return sub, ok
}

// AddNamespace attaches dev as namespace nsid.
func (s *Subsystem) AddNamespace(nsid uint32, dev bdev.Device) (*Namespace, error) {
	if nsid == 0 {
		return nil, fmt.Errorf("target: namespace ID 0 is reserved")
	}
	if _, ok := s.nss[nsid]; ok {
		return nil, fmt.Errorf("target: namespace %d already exists in %s", nsid, s.NQN)
	}
	ns := &Namespace{ID: nsid, dev: dev}
	s.nss[nsid] = ns
	return ns, nil
}

// Namespace resolves a namespace by ID.
func (s *Subsystem) Namespace(nsid uint32) (*Namespace, bool) {
	ns, ok := s.nss[nsid]
	return ns, ok
}

// Device exposes the backing block device.
func (ns *Namespace) Device() bdev.Device { return ns.dev }

// Identify builds the identify-namespace page from the bdev geometry.
func (ns *Namespace) Identify() nvme.IdentifyNamespace {
	blocks := uint64(ns.dev.Blocks())
	return nvme.IdentifyNamespace{
		NSZE:      blocks,
		NCAP:      blocks,
		BlockSize: uint32(ns.dev.BlockSize()),
	}
}

// IdentifyController builds the identify-controller page for the
// controller fronting nqn.
func (t *Target) IdentifyController(nqn string) (nvme.IdentifyController, error) {
	sub, ok := t.subs[nqn]
	if !ok {
		return nvme.IdentifyController{}, fmt.Errorf("target: unknown subsystem %q", nqn)
	}
	return nvme.IdentifyController{
		VID:      0x1B36, // QEMU's NVMe vendor ID: this is a simulated device
		SN:       "OAFSIM0001",
		MN:       "NVMe-oAF simulated ctrl",
		NN:       uint32(len(sub.nss)),
		MDTS:     5, // 2^5 pages = 128 KiB, the fabric's chunk size
		IOQueues: 128,
	}, nil
}

// DiscoveryLog encodes the discovery log page: one entry per registered
// subsystem, advertised on the given transport type and address.
func (t *Target) DiscoveryLog(trType uint8, trAddr string) []byte {
	entries := make([]nvme.DiscoveryEntry, 0, len(t.order))
	for _, nqn := range t.order {
		entries = append(entries, nvme.DiscoveryEntry{TrType: trType, SubNQN: nqn, TrAddr: trAddr})
	}
	return nvme.EncodeDiscoveryLog(entries)
}

// ExecResult is the outcome of executing one command.
type ExecResult struct {
	// CQE is the completion queue entry (CID echoed, status set).
	CQE nvme.Completion
	// Data holds read payload when the device retains real bytes.
	Data []byte
	// IOTime is the device service time (submit to completion).
	IOTime time.Duration
	// OtherTime is target-side software time (bdev submission path).
	OtherTime time.Duration
}

// Execute runs one I/O or flush command against the named subsystem,
// blocking the calling process until the device completes. Validation
// failures and device errors come back as typed NVMe statuses — the
// transports propagate them to the host instead of dropping the command.
func (t *Target) Execute(w *sim.Proc, nqn string, cmd nvme.Command, data []byte) ExecResult {
	return t.ExecuteAs(w, nqn, "", cmd, data)
}

// ExecuteAs is Execute with tenant attribution: the bdev request carries
// the tenant name so tenant-aware devices (a write-back cache with
// per-tenant dirty budgets) can partition on it.
func (t *Target) ExecuteAs(w *sim.Proc, nqn, tenant string, cmd nvme.Command, data []byte) ExecResult {
	fail := func(st nvme.Status, other time.Duration) ExecResult {
		return ExecResult{CQE: nvme.Completion{CID: cmd.CID, Status: st}, OtherTime: other}
	}
	sub, ok := t.subs[nqn]
	if !ok {
		return fail(nvme.StatusInvalidField, 0)
	}
	nsid := cmd.NSID
	if nsid == 0 {
		nsid = 1
	}
	ns, ok := sub.nss[nsid]
	if !ok {
		return fail(nvme.StatusInvalidNamespace, 0)
	}

	req := &ssd.Request{Tenant: tenant}
	switch cmd.Opcode {
	case nvme.OpFlush:
		req.Op = ssd.OpFlush
	case nvme.OpRead, nvme.OpWrite:
		off, size, st := nvme.LBARange(&cmd, ns.dev.BlockSize(), ns.dev.Blocks())
		if st.IsError() {
			return fail(st, 0)
		}
		req.Offset = off
		req.Size = size
		if cmd.Opcode == nvme.OpWrite {
			req.Op = ssd.OpWrite
			req.Data = data
		} else {
			req.Op = ssd.OpRead
		}
	default:
		return fail(nvme.StatusInvalidOpcode, 0)
	}

	// Target-side bdev submission cost (SPDK's nvmf-to-bdev handoff).
	w.Sleep(t.host.BdevSubmitCPU)
	t0 := w.Now()
	res := ns.dev.Submit(req).Wait(w)
	ioTime := w.Now().Sub(t0)
	if res.Err != nil {
		st := nvme.StatusInternalError
		// Write-back cache data that never reached media is a media-level
		// write fault, not a generic internal error: the host must learn
		// the data is gone rather than retry.
		var loss *cache.DirtyLossError
		if errors.As(res.Err, &loss) {
			st = nvme.StatusWriteFault
		}
		return ExecResult{
			CQE:       nvme.Completion{CID: cmd.CID, Status: st},
			IOTime:    ioTime,
			OtherTime: t.host.BdevSubmitCPU,
		}
	}
	return ExecResult{
		CQE:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
		Data:      res.Data,
		IOTime:    ioTime,
		OtherTime: t.host.BdevSubmitCPU,
	}
}
