package target

import (
	"bytes"
	"errors"
	"testing"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
)

const testNQN = "nqn.2022-06.io.oaf:tgt-test"

// newTarget builds a target with one subsystem and one 8 MiB namespace
// backed by a retain-data simulated SSD.
func newTarget(t *testing.T, e *sim.Engine) (*Target, *Subsystem) {
	t.Helper()
	tgt := New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	dev := bdev.NewSimSSD(e, "nvme0", 8<<20, model.DefaultSSD(), true, 4096)
	if _, err := sub.AddNamespace(1, dev); err != nil {
		t.Fatal(err)
	}
	return tgt, sub
}

func TestSubsystemRegistry(t *testing.T) {
	e := sim.NewEngine(1)
	tgt, sub := newTarget(t, e)

	if _, err := tgt.AddSubsystem(""); err == nil {
		t.Fatal("empty NQN accepted")
	}
	if _, err := tgt.AddSubsystem(testNQN); err == nil {
		t.Fatal("duplicate NQN accepted")
	}
	got, ok := tgt.Subsystem(testNQN)
	if !ok || got != sub {
		t.Fatalf("Subsystem(%q) = %v, %v", testNQN, got, ok)
	}
	if _, ok := tgt.Subsystem("nqn.other"); ok {
		t.Fatal("unknown NQN resolved")
	}

	if _, err := sub.AddNamespace(0, nil); err == nil {
		t.Fatal("namespace ID 0 accepted")
	}
	if _, err := sub.AddNamespace(1, nil); err == nil {
		t.Fatal("duplicate namespace accepted")
	}
	ns, ok := sub.Namespace(1)
	if !ok {
		t.Fatal("namespace 1 missing")
	}
	if _, ok := sub.Namespace(2); ok {
		t.Fatal("unknown namespace resolved")
	}
	if ns.Device() == nil {
		t.Fatal("Device() is nil")
	}

	idns := ns.Identify()
	if idns.BlockSize != 4096 || idns.NSZE != (8<<20)/4096 || idns.NCAP != idns.NSZE {
		t.Fatalf("identify-namespace geometry wrong: %+v", idns)
	}
}

func TestIdentifyController(t *testing.T) {
	e := sim.NewEngine(1)
	tgt, _ := newTarget(t, e)

	if _, err := tgt.IdentifyController("nqn.unknown"); err == nil {
		t.Fatal("unknown subsystem identified")
	}
	idc, err := tgt.IdentifyController(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	if idc.NN != 1 {
		t.Fatalf("NN = %d, want 1", idc.NN)
	}
	if idc.MDTS != 5 || idc.IOQueues == 0 || idc.SN == "" {
		t.Fatalf("identify-controller page incomplete: %+v", idc)
	}
}

func TestDiscoveryLogOrder(t *testing.T) {
	e := sim.NewEngine(1)
	tgt := New(e, model.DefaultHost())
	nqns := []string{"nqn.c", "nqn.a", "nqn.b"}
	for _, n := range nqns {
		if _, err := tgt.AddSubsystem(n); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := nvme.DecodeDiscoveryLog(tgt.DiscoveryLog(3, "10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(nqns) {
		t.Fatalf("got %d entries, want %d", len(entries), len(nqns))
	}
	for i, ent := range entries {
		// Registration order, not lexicographic, keeps the log deterministic.
		if ent.SubNQN != nqns[i] {
			t.Fatalf("entry %d = %q, want %q", i, ent.SubNQN, nqns[i])
		}
		if ent.TrType != 3 || ent.TrAddr != "10.0.0.1" {
			t.Fatalf("entry %d transport wrong: %+v", i, ent)
		}
	}
}

func TestExecuteRoundTrip(t *testing.T) {
	e := sim.NewEngine(7)
	tgt, _ := newTarget(t, e)
	payload := make([]byte, 16<<10) // 4 blocks
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	e.Go("app", func(p *sim.Proc) {
		wr := tgt.Execute(p, testNQN, nvme.NewWrite(1, 1, 8, 4), payload)
		if wr.CQE.Status != nvme.StatusSuccess || wr.CQE.CID != 1 {
			t.Fatalf("write CQE: %+v", wr.CQE)
		}
		if wr.IOTime <= 0 || wr.OtherTime != model.DefaultHost().BdevSubmitCPU {
			t.Fatalf("write timing: io=%v other=%v", wr.IOTime, wr.OtherTime)
		}
		rd := tgt.Execute(p, testNQN, nvme.NewRead(2, 1, 8, 4), nil)
		if rd.CQE.Status != nvme.StatusSuccess {
			t.Fatalf("read CQE: %+v", rd.CQE)
		}
		if !bytes.Equal(rd.Data, payload) {
			t.Fatal("readback does not match written payload")
		}
		fl := tgt.Execute(p, testNQN, nvme.NewFlush(3, 1), nil)
		if fl.CQE.Status != nvme.StatusSuccess {
			t.Fatalf("flush CQE: %+v", fl.CQE)
		}
		// NSID 0 defaults to namespace 1 (the transports rely on this).
		rd0 := tgt.Execute(p, testNQN, nvme.NewRead(4, 0, 8, 4), nil)
		if rd0.CQE.Status != nvme.StatusSuccess || !bytes.Equal(rd0.Data, payload) {
			t.Fatalf("NSID-0 read: %+v", rd0.CQE)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteValidation(t *testing.T) {
	e := sim.NewEngine(7)
	tgt, _ := newTarget(t, e)
	e.Go("app", func(p *sim.Proc) {
		cases := []struct {
			name string
			nqn  string
			cmd  nvme.Command
			want nvme.Status
		}{
			{"unknown subsystem", "nqn.missing", nvme.NewRead(1, 1, 0, 1), nvme.StatusInvalidField},
			{"unknown namespace", testNQN, nvme.NewRead(2, 9, 0, 1), nvme.StatusInvalidNamespace},
			{"bad opcode", testNQN, nvme.Command{Opcode: 0x7F, CID: 3, NSID: 1}, nvme.StatusInvalidOpcode},
			{"out of range", testNQN, nvme.NewRead(4, 1, 1<<30, 1), nvme.StatusLBAOutOfRange},
		}
		for _, tc := range cases {
			res := tgt.Execute(p, tc.nqn, tc.cmd, nil)
			if res.CQE.Status != tc.want {
				t.Fatalf("%s: status %v, want %v", tc.name, res.CQE.Status, tc.want)
			}
			if res.CQE.CID != tc.cmd.CID {
				t.Fatalf("%s: CID %d not echoed", tc.name, tc.cmd.CID)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteDeviceError(t *testing.T) {
	e := sim.NewEngine(7)
	tgt := New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	dev := bdev.NewSimSSD(e, "nvme0", 8<<20, model.DefaultSSD(), false, 4096)
	faulty := bdev.NewFaulty(e, dev, 1, errors.New("media error"))
	if _, err := sub.AddNamespace(1, faulty); err != nil {
		t.Fatal(err)
	}
	e.Go("app", func(p *sim.Proc) {
		res := tgt.Execute(p, testNQN, nvme.NewRead(9, 1, 0, 1), nil)
		if res.CQE.Status != nvme.StatusInternalError {
			t.Fatalf("device error surfaced as %v, want internal error", res.CQE.Status)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
