// Package ssd models an NVMe solid-state drive: a set of independent flash
// channels served from a shared dispatch queue, per-command service times
// with setup and streaming components, a write cache fast path, service
// jitter, and rare internal stalls (garbage collection) that contribute to
// tail latency.
//
// The model reproduces the device-side properties the paper's experiments
// depend on: bounded internal parallelism (Fig 14's queue-depth scaling),
// per-device bandwidth ceilings (Fig 2/11), fixed small-I/O costs (Fig 3's
// "I/O time"), and queueing delay under bursty large writes (Fig 17).
//
// Payload bytes are optionally retained in a sparse page store so that
// file-system and HDF5 experiments read back real data, while raw
// bandwidth experiments can skip retention to bound host memory.
package ssd

import (
	"fmt"
	"math/rand"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/stats"
)

// OpType identifies a device operation.
type OpType int

const (
	// OpRead reads Size bytes at Offset.
	OpRead OpType = iota
	// OpWrite writes Size bytes at Offset.
	OpWrite
	// OpFlush commits the write cache (modeled as a fixed-cost command).
	OpFlush
)

func (o OpType) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Request is one device command. Data is optional for writes: when set and
// the device retains data, the bytes become readable later. Size must be
// positive for reads/writes regardless of whether Data is materialized.
type Request struct {
	Op     OpType
	Offset int64
	Size   int
	Data   []byte
	// Tenant attributes the request to a named tenant; a write-back
	// cache with per-tenant dirty budgets partitions on it. Empty means
	// unattributed (shared budget only).
	Tenant string
}

// Result is the completion of a Request.
type Result struct {
	Err error
	// Data holds read payload when the device retains data and the read
	// range was previously written; nil otherwise.
	Data []byte
}

const pageSize = 64 << 10

// Device is one simulated NVMe SSD.
type Device struct {
	Name     string
	Capacity int64

	e      *sim.Engine
	params model.SSDParams
	queue  *sim.Queue[*pending]
	rng    *rand.Rand
	retain bool
	pages  map[int64][]byte

	// Metrics.
	ReadOps, WriteOps     int64
	ReadBytes, WriteBytes int64
	ServiceHist           *stats.Histogram // device service time incl. queueing
	busy                  time.Duration    // summed channel busy time
}

type pending struct {
	req      *Request
	fut      *sim.Future[Result]
	enqueued sim.Time
}

// New creates a device with the given capacity and parameters and starts
// its channel servers on the engine. retainData controls whether write
// payloads are stored for later reads.
func New(e *sim.Engine, name string, capacity int64, params model.SSDParams, retainData bool) *Device {
	d := &Device{
		Name:        name,
		Capacity:    capacity,
		e:           e,
		params:      params,
		queue:       sim.NewQueue[*pending](e, 0),
		rng:         e.Rand("ssd/" + name),
		retain:      retainData,
		pages:       make(map[int64][]byte),
		ServiceHist: stats.NewHistogram(),
	}
	for i := 0; i < params.Channels; i++ {
		ch := i
		e.GoDaemon(fmt.Sprintf("ssd/%s/ch%d", name, ch), func(p *sim.Proc) { d.channelLoop(p) })
	}
	return d
}

// Params returns the device parameters.
func (d *Device) Params() model.SSDParams { return d.params }

// QueueDepth returns the number of commands waiting for a channel.
func (d *Device) QueueDepth() int { return d.queue.Len() }

// Utilization returns mean channel utilization in [0,1] over the elapsed
// virtual time.
func (d *Device) Utilization() float64 {
	elapsed := d.e.Now().Seconds() * float64(d.params.Channels)
	if elapsed <= 0 {
		return 0
	}
	return d.busy.Seconds() / elapsed
}

// Submit enqueues a command and returns a future resolved at completion.
// Validation errors resolve immediately.
func (d *Device) Submit(req *Request) *sim.Future[Result] {
	fut := sim.NewFuture[Result](d.e)
	if err := d.validate(req); err != nil {
		fut.Resolve(Result{Err: err})
		return fut
	}
	d.queue.TryPut(&pending{req: req, fut: fut, enqueued: d.e.Now()})
	return fut
}

// Execute submits a command and blocks the calling process until it
// completes.
func (d *Device) Execute(p *sim.Proc, req *Request) Result {
	return d.Submit(req).Wait(p)
}

func (d *Device) validate(req *Request) error {
	switch req.Op {
	case OpFlush:
		return nil
	case OpRead, OpWrite:
		if req.Size <= 0 {
			return fmt.Errorf("ssd %s: %v of non-positive size %d", d.Name, req.Op, req.Size)
		}
		if req.Offset < 0 || req.Offset+int64(req.Size) > d.Capacity {
			return fmt.Errorf("ssd %s: %v [%d,%d) outside capacity %d",
				d.Name, req.Op, req.Offset, req.Offset+int64(req.Size), d.Capacity)
		}
		if req.Op == OpWrite && req.Data != nil && len(req.Data) != req.Size {
			return fmt.Errorf("ssd %s: write data length %d != size %d", d.Name, len(req.Data), req.Size)
		}
		return nil
	default:
		return fmt.Errorf("ssd %s: unknown op %d", d.Name, int(req.Op))
	}
}

// channelLoop is one flash channel: it serves commands one at a time.
func (d *Device) channelLoop(p *sim.Proc) {
	for {
		pend, ok := d.queue.Get(p)
		if !ok {
			return
		}
		svc := d.serviceTime(pend.req)
		p.Sleep(svc)
		d.busy += svc
		d.complete(pend)
		d.ServiceHist.RecordDuration(p.Now().Sub(pend.enqueued))
	}
}

// serviceTime computes the channel occupancy for one command.
func (d *Device) serviceTime(req *Request) time.Duration {
	var base time.Duration
	switch req.Op {
	case OpRead:
		base = d.params.ReadSetup +
			time.Duration(float64(req.Size)/d.params.ChannelReadBytesPerSec*1e9)
	case OpWrite:
		base = d.params.WriteSetup +
			time.Duration(float64(req.Size)/d.params.ChannelWriteBytesPerSec*1e9)
	case OpFlush:
		base = d.params.WriteSetup * 4
	}
	if j := d.params.JitterFrac; j > 0 {
		base = time.Duration(float64(base) * (1 - j + 2*j*d.rng.Float64()))
	}
	if d.params.StallProb > 0 && d.rng.Float64() < d.params.StallProb {
		base += time.Duration(float64(d.params.StallDuration) * (0.5 + d.rng.Float64()))
	}
	return base
}

func (d *Device) complete(pend *pending) {
	req := pend.req
	res := Result{}
	switch req.Op {
	case OpRead:
		d.ReadOps++
		d.ReadBytes += int64(req.Size)
		if d.retain {
			res.Data = d.readPages(req.Offset, req.Size)
		}
	case OpWrite:
		d.WriteOps++
		d.WriteBytes += int64(req.Size)
		if d.retain && req.Data != nil {
			d.writePages(req.Offset, req.Data)
		}
	}
	pend.fut.Resolve(res)
}

// writePages stores data at the byte offset in the sparse page map.
func (d *Device) writePages(off int64, data []byte) {
	for len(data) > 0 {
		pageNo := off / pageSize
		pageOff := int(off % pageSize)
		page, ok := d.pages[pageNo]
		if !ok {
			page = make([]byte, pageSize)
			d.pages[pageNo] = page
		}
		n := copy(page[pageOff:], data)
		data = data[n:]
		off += int64(n)
	}
}

// readPages fetches size bytes at the offset; unwritten ranges read as
// zeros.
func (d *Device) readPages(off int64, size int) []byte {
	out := make([]byte, size)
	buf := out
	for len(buf) > 0 {
		pageNo := off / pageSize
		pageOff := int(off % pageSize)
		n := pageSize - pageOff
		if n > len(buf) {
			n = len(buf)
		}
		if page, ok := d.pages[pageNo]; ok {
			copy(buf[:n], page[pageOff:pageOff+n])
		}
		buf = buf[n:]
		off += int64(n)
	}
	return out
}

// Close stops the channel servers once the queue drains.
func (d *Device) Close() { d.queue.Close() }
