package ssd

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
)

// calmParams returns deterministic SSD parameters (no jitter, no stalls).
func calmParams() model.SSDParams {
	p := model.DefaultSSD()
	p.JitterFrac = 0
	p.StallProb = 0
	return p
}

func TestSingleReadLatency(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "nvme0", 1<<30, calmParams(), false)
	var done sim.Time
	e.Go("io", func(p *sim.Proc) {
		res := d.Execute(p, &Request{Op: OpRead, Offset: 0, Size: 4096})
		if res.Err != nil {
			t.Error(res.Err)
		}
		done = p.Now()
		d.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 68us setup + 4096/320e6 s = 68 + 12.8 = 80.8us.
	want := calmParams().ReadSetup + time.Duration(4096.0/calmParams().ChannelReadBytesPerSec*1e9)
	if got := done.Sub(0); got != want {
		t.Fatalf("read latency %v, want %v", got, want)
	}
}

func TestWriteFasterThanRead(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "nvme0", 1<<30, calmParams(), false)
	var readLat, writeLat time.Duration
	e.Go("io", func(p *sim.Proc) {
		t0 := p.Now()
		d.Execute(p, &Request{Op: OpRead, Offset: 0, Size: 4096})
		readLat = p.Now().Sub(t0)
		t0 = p.Now()
		d.Execute(p, &Request{Op: OpWrite, Offset: 0, Size: 4096})
		writeLat = p.Now().Sub(t0)
		d.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if writeLat >= readLat {
		t.Fatalf("write %v should be faster than read %v (write cache)", writeLat, readLat)
	}
}

func TestChannelParallelism(t *testing.T) {
	// Eight concurrent 4KB reads on an 8-channel device should finish in
	// one service time; sixteen should take two.
	for _, tc := range []struct{ n, waves int }{{8, 1}, {16, 2}} {
		e := sim.NewEngine(1)
		d := New(e, "nvme0", 1<<30, calmParams(), false)
		wg := sim.NewWaitGroup(e)
		wg.Add(tc.n)
		var done sim.Time
		for i := 0; i < tc.n; i++ {
			off := int64(i) * 4096
			e.Go("io", func(p *sim.Proc) {
				d.Execute(p, &Request{Op: OpRead, Offset: off, Size: 4096})
				wg.Done()
			})
		}
		e.Go("waiter", func(p *sim.Proc) {
			wg.Wait(p)
			done = p.Now()
			d.Close()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		svc := calmParams().ReadSetup + time.Duration(4096.0/calmParams().ChannelReadBytesPerSec*1e9)
		want := sim.Time(time.Duration(tc.waves) * svc)
		if done != want {
			t.Fatalf("n=%d: finished at %v, want %v", tc.n, done, want)
		}
	}
}

func TestDeviceBandwidthCeiling(t *testing.T) {
	// Deep-queue 128KB reads should saturate near channels x channelBW =
	// 2.56 GB/s.
	e := sim.NewEngine(1)
	p := calmParams()
	d := New(e, "nvme0", 8<<30, p, false)
	const n = 400
	wg := sim.NewWaitGroup(e)
	wg.Add(n)
	var done sim.Time
	e.Go("sub", func(pr *sim.Proc) {
		for i := 0; i < n; i++ {
			fut := d.Submit(&Request{Op: OpRead, Offset: int64(i) * (128 << 10), Size: 128 << 10})
			e.Go("waiter", func(w *sim.Proc) {
				fut.Wait(w)
				wg.Done()
			})
		}
	})
	e.Go("join", func(pr *sim.Proc) {
		wg.Wait(pr)
		done = pr.Now()
		d.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	gbps := float64(n*(128<<10)) / done.Seconds() / 1e9
	// Setup costs reduce it below 2.56; expect within 15%.
	if gbps < 2.1 || gbps > 2.6 {
		t.Fatalf("read bandwidth %.2f GB/s, want ~2.2-2.5", gbps)
	}
}

func TestDataRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "nvme0", 1<<30, calmParams(), true)
	payload := make([]byte, 300_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	e.Go("io", func(p *sim.Proc) {
		// Unaligned offset spanning multiple pages.
		res := d.Execute(p, &Request{Op: OpWrite, Offset: 12345, Size: len(payload), Data: payload})
		if res.Err != nil {
			t.Error(res.Err)
		}
		got := d.Execute(p, &Request{Op: OpRead, Offset: 12345, Size: len(payload)})
		if !bytes.Equal(got.Data, payload) {
			t.Error("read data mismatch")
		}
		// Unwritten range reads as zeros.
		z := d.Execute(p, &Request{Op: OpRead, Offset: 900_000_000, Size: 64})
		for _, b := range z.Data {
			if b != 0 {
				t.Error("unwritten range not zero")
				break
			}
		}
		d.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "nvme0", 1<<20, calmParams(), false)
	e.Go("io", func(p *sim.Proc) {
		cases := []*Request{
			{Op: OpRead, Offset: -1, Size: 4096},
			{Op: OpRead, Offset: 1 << 20, Size: 1},
			{Op: OpWrite, Offset: 0, Size: 0},
			{Op: OpWrite, Offset: 0, Size: 8, Data: make([]byte, 4)},
			{Op: OpType(99), Offset: 0, Size: 8},
		}
		for i, req := range cases {
			if res := d.Execute(p, req); res.Err == nil {
				t.Errorf("case %d: expected error", i)
			}
		}
		d.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlush(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "nvme0", 1<<20, calmParams(), false)
	e.Go("io", func(p *sim.Proc) {
		t0 := p.Now()
		if res := d.Execute(p, &Request{Op: OpFlush}); res.Err != nil {
			t.Error(res.Err)
		}
		if p.Now() == t0 {
			t.Error("flush should take time")
		}
		d.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestJitterAndStallsAffectTail(t *testing.T) {
	e := sim.NewEngine(7)
	p := model.DefaultSSD()
	p.StallProb = 0.01 // exaggerate for the test
	d := New(e, "nvme0", 1<<30, p, false)
	e.Go("io", func(pr *sim.Proc) {
		for i := 0; i < 3000; i++ {
			d.Execute(pr, &Request{Op: OpRead, Offset: 0, Size: 4096})
		}
		d.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	h := d.ServiceHist
	if h.P9999() < 2*h.P50() {
		t.Fatalf("stalls should inflate tail: p50=%d p99.99=%d", h.P50(), h.P9999())
	}
}

func TestMetrics(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, "nvme0", 1<<30, calmParams(), false)
	e.Go("io", func(p *sim.Proc) {
		d.Execute(p, &Request{Op: OpRead, Offset: 0, Size: 1000})
		d.Execute(p, &Request{Op: OpWrite, Offset: 0, Size: 2000})
		d.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d.ReadOps != 1 || d.ReadBytes != 1000 || d.WriteOps != 1 || d.WriteBytes != 2000 {
		t.Fatalf("metrics: %d/%d %d/%d", d.ReadOps, d.ReadBytes, d.WriteOps, d.WriteBytes)
	}
	if d.Utilization() <= 0 || d.Utilization() > 1 {
		t.Fatalf("utilization %v", d.Utilization())
	}
}

func TestPageStoreProperty(t *testing.T) {
	// Property: for any sequence of writes, a read of any range returns
	// the bytes of the most recent write covering each offset (zero if
	// never written). Verified against a flat reference array.
	type wr struct {
		Off  uint32
		Data []byte
	}
	f := func(writes []wr) bool {
		const space = 1 << 18
		e := sim.NewEngine(3)
		d := New(e, "prop", space, calmParams(), true)
		ref := make([]byte, space)
		okAll := true
		e.Go("io", func(p *sim.Proc) {
			defer d.Close()
			for _, w := range writes {
				off := int64(w.Off % (space / 2))
				data := w.Data
				if len(data) == 0 {
					continue
				}
				if len(data) > space/4 {
					data = data[:space/4]
				}
				res := d.Execute(p, &Request{Op: OpWrite, Offset: off, Size: len(data), Data: data})
				if res.Err != nil {
					okAll = false
					return
				}
				copy(ref[off:], data)
			}
			got := d.Execute(p, &Request{Op: OpRead, Offset: 0, Size: space})
			if !bytes.Equal(got.Data, ref) {
				okAll = false
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
