package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.99) != 0 {
		t.Fatal("quantile of empty histogram should be 0")
	}
}

func TestSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(1234)
	if h.Count() != 1 || h.Min() != 1234 || h.Max() != 1234 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1234 {
			t.Fatalf("Quantile(%v) = %d, want 1234", q, got)
		}
	}
}

func TestSmallValuesExact(t *testing.T) {
	// Values below the sub-bucket count are recorded exactly.
	h := NewHistogram()
	for i := int64(0); i < 64; i++ {
		h.Record(i)
	}
	if h.P50() != 32 {
		t.Fatalf("p50 = %d, want 32", h.P50())
	}
	if h.Max() != 63 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestQuantileRelativeErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, like latencies ns..ms.
		v := int64(math.Exp(rng.Float64()*14) + 1)
		h.Record(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := Exact(samples, q)
		est := h.Quantile(q)
		relErr := math.Abs(float64(est)-float64(exact)) / float64(exact)
		if relErr > 0.04 {
			t.Fatalf("q=%v exact=%d est=%d relErr=%.3f", q, exact, est, relErr)
		}
	}
}

func TestQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 5000; i++ {
		h.Record(rng.Int63n(1e9))
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotonic at q=%v: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("min = %d, want 0", h.Min())
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Record(i)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("min=%d max=%d", a.Min(), a.Max())
	}
	if a.Sum() != 200*201/2 {
		t.Fatalf("sum = %d", a.Sum())
	}
}

func TestReset(t *testing.T) {
	h := NewHistogram()
	h.Record(500)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(7)
	if h.Min() != 7 {
		t.Fatalf("min after reuse = %d", h.Min())
	}
}

func TestRecordDurationAndSummary(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(150 * time.Microsecond)
	s := h.Summarize()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.MeanU-150) > 3 {
		t.Fatalf("mean = %.1fus, want ~150us", s.MeanU)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestBucketMappingProperty(t *testing.T) {
	// Property: every value lands in a bucket whose [low, nextLow) range
	// contains it, and bucket boundaries are monotone.
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		if v < 0 { // -MinInt64 is still negative
			v = math.MaxInt64
		}
		i := bucketIndex(v)
		return bucketLow(i) <= v && (v < bucketLow(i+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCountSumProperty(t *testing.T) {
	// Property: Count and Sum always match the raw inputs, regardless of
	// bucketing.
	f := func(vals []int64) bool {
		h := NewHistogram()
		var n, sum int64
		for _, v := range vals {
			if v < 0 {
				v = 0
			} else if v > 1<<40 {
				v = 1 << 40
			}
			h.Record(v)
			n++
			sum += v
		}
		return h.Count() == n && h.Sum() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputMath(t *testing.T) {
	tp := Throughput{Ops: 1000, Bytes: 4096 * 1000, Start: 0, End: time.Second}
	if got := tp.IOPS(); got != 1000 {
		t.Fatalf("IOPS = %v", got)
	}
	if got := tp.MBps(); math.Abs(got-4.096) > 1e-9 {
		t.Fatalf("MBps = %v", got)
	}
	if tp.String() == "" {
		t.Fatal("empty string")
	}
	var empty Throughput
	if empty.GBps() != 0 || empty.IOPS() != 0 {
		t.Fatal("zero window should produce zero rates")
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(100*time.Microsecond, 50*time.Microsecond, 25*time.Microsecond)
	b.Add(200*time.Microsecond, 100*time.Microsecond, 75*time.Microsecond)
	if b.MeanIO() != 150 || b.MeanComm() != 75 || b.MeanOther() != 50 {
		t.Fatalf("means: %v %v %v", b.MeanIO(), b.MeanComm(), b.MeanOther())
	}
	if b.MeanTotal() != 275 {
		t.Fatalf("total %v", b.MeanTotal())
	}
	var c Breakdown
	c.Merge(b)
	if c.N != 2 || c.MeanTotal() != 275 {
		t.Fatalf("merge: %+v", c)
	}
	if b.String() == "" {
		t.Fatal("empty string")
	}
}

func TestCDFExport(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 10000; i++ {
		h.Record(i * 1000) // 1..10000 us
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	prev := -1.0
	for _, pt := range cdf {
		if pt.ValueUs < prev {
			t.Fatalf("CDF not monotone at q=%v", pt.Quantile)
		}
		prev = pt.ValueUs
	}
	last := cdf[len(cdf)-1]
	if last.Quantile != 1.0 || math.Abs(last.ValueUs-10000) > 1 {
		t.Fatalf("CDF tail %+v", last)
	}
}
