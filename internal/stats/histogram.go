// Package stats provides latency histograms, percentile estimation, and
// throughput accounting for the NVMe-oAF benchmark harness.
//
// The histogram uses HDR-style log-linear buckets: values are grouped by
// power-of-two magnitude, each magnitude split into a fixed number of
// linear sub-buckets, giving a bounded relative error (~1.6% with 64
// sub-buckets) across the full nanosecond-to-seconds range while keeping
// memory constant.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

const (
	subBucketBits  = 6 // 64 linear sub-buckets per power of two
	subBucketCount = 1 << subBucketBits
)

// Histogram records int64 samples (typically latencies in nanoseconds) in
// log-linear buckets. The zero value is not usable; use NewHistogram.
type Histogram struct {
	counts []int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]int64, (64-subBucketBits)*subBucketCount),
		min:    math.MaxInt64,
	}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	// Magnitude = position of highest bit above the sub-bucket resolution.
	mag := bits.Len64(uint64(v)) - 1 - subBucketBits
	sub := int(v >> uint(mag)) // in [subBucketCount, 2*subBucketCount)
	return mag*subBucketCount + sub
}

// bucketLow returns the smallest value mapping to bucket i, saturating at
// MaxInt64 for buckets past the representable range.
func bucketLow(i int) int64 {
	if i < 2*subBucketCount {
		return int64(i)
	}
	mag := i / subBucketCount
	sub := i % subBucketCount
	v := uint64(sub+subBucketCount) << uint(mag-1)
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one duration sample in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1).
// For q=1 the true maximum is returned.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			// Upper edge of bucket i, clamped to observed extremes.
			hi := bucketLow(i+1) - 1
			if hi > h.max {
				hi = h.max
			}
			if hi < h.min {
				hi = h.min
			}
			return hi
		}
	}
	return h.max
}

// P50, P99, P999, P9999 are convenience percentile accessors.
func (h *Histogram) P50() int64   { return h.Quantile(0.50) }
func (h *Histogram) P99() int64   { return h.Quantile(0.99) }
func (h *Histogram) P999() int64  { return h.Quantile(0.999) }
func (h *Histogram) P9999() int64 { return h.Quantile(0.9999) }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// Summary is a compact snapshot of a histogram in microseconds, convenient
// for printing experiment rows.
type Summary struct {
	Count int64
	MeanU float64 // mean, microseconds
	P50U  float64
	P99U  float64
	P999U float64
	P4N9U float64 // p99.99, microseconds
	MaxU  float64
}

// Summarize captures the histogram as a Summary in microseconds.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		MeanU: h.Mean() / 1e3,
		P50U:  float64(h.P50()) / 1e3,
		P99U:  float64(h.P99()) / 1e3,
		P999U: float64(h.P999()) / 1e3,
		P4N9U: float64(h.P9999()) / 1e3,
		MaxU:  float64(h.Max()) / 1e3,
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p99=%.1fus p99.9=%.1fus p99.99=%.1fus max=%.1fus",
		s.Count, s.MeanU, s.P50U, s.P99U, s.P999U, s.P4N9U, s.MaxU)
}

// CDFPoint is one point of an exported distribution curve.
type CDFPoint struct {
	Quantile float64
	ValueUs  float64
}

// CDF exports the latency distribution at standard plotting quantiles
// (the curve Fig 13 draws).
func (h *Histogram) CDF() []CDFPoint {
	qs := []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95,
		0.99, 0.999, 0.9999, 1.0}
	out := make([]CDFPoint, 0, len(qs))
	for _, q := range qs {
		out = append(out, CDFPoint{Quantile: q, ValueUs: float64(h.Quantile(q)) / 1e3})
	}
	return out
}

// Exact computes exact quantiles from a raw sample slice; used in tests to
// bound the histogram's estimation error.
func Exact(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
