package stats

import (
	"fmt"
	"time"
)

// Throughput accumulates completed operations and bytes over a measured
// virtual-time window and derives bandwidth/IOPS figures.
type Throughput struct {
	Ops   int64
	Bytes int64
	Start time.Duration // virtual time at measurement start (ns offset)
	End   time.Duration // virtual time at measurement end
}

// Window returns the measurement window length.
func (t Throughput) Window() time.Duration { return t.End - t.Start }

// GBps returns bandwidth in gigabytes (1e9 bytes) per second.
func (t Throughput) GBps() float64 {
	w := t.Window().Seconds()
	if w <= 0 {
		return 0
	}
	return float64(t.Bytes) / 1e9 / w
}

// MBps returns bandwidth in megabytes (1e6 bytes) per second.
func (t Throughput) MBps() float64 { return t.GBps() * 1e3 }

// IOPS returns operations per second.
func (t Throughput) IOPS() float64 {
	w := t.Window().Seconds()
	if w <= 0 {
		return 0
	}
	return float64(t.Ops) / w
}

func (t Throughput) String() string {
	return fmt.Sprintf("%.0f IOPS, %.3f GB/s over %v", t.IOPS(), t.GBps(), t.Window())
}

// Breakdown decomposes the end-to-end latency of remote I/O into the three
// components the paper reports in Figures 3 and 12: device time, fabric
// communication time, and everything else (request preparation and
// processing at client and target).
type Breakdown struct {
	IO    time.Duration // time on the SSD
	Comm  time.Duration // time in transit on the fabric
	Other time.Duration // preparation + processing
	N     int64         // number of samples accumulated
}

// Add accumulates one request's component times.
func (b *Breakdown) Add(io, comm, other time.Duration) {
	b.IO += io
	b.Comm += comm
	b.Other += other
	b.N++
}

// Merge adds all samples of other into b.
func (b *Breakdown) Merge(other Breakdown) {
	b.IO += other.IO
	b.Comm += other.Comm
	b.Other += other.Other
	b.N += other.N
}

// MeanIO, MeanComm, MeanOther return per-request means in microseconds.
func (b Breakdown) MeanIO() float64    { return b.mean(b.IO) }
func (b Breakdown) MeanComm() float64  { return b.mean(b.Comm) }
func (b Breakdown) MeanOther() float64 { return b.mean(b.Other) }

// MeanTotal returns the mean end-to-end latency in microseconds.
func (b Breakdown) MeanTotal() float64 { return b.MeanIO() + b.MeanComm() + b.MeanOther() }

func (b Breakdown) mean(d time.Duration) float64 {
	if b.N == 0 {
		return 0
	}
	return float64(d) / float64(b.N) / 1e3
}

func (b Breakdown) String() string {
	return fmt.Sprintf("io=%.1fus comm=%.1fus other=%.1fus (n=%d)",
		b.MeanIO(), b.MeanComm(), b.MeanOther(), b.N)
}
