// Package kvstore implements a log-structured key-value store on one
// NVMe-oF namespace — the class of application (Crail-KV, KV-SSD stacks,
// RocksDB backends) the paper's related work positions NVMe-oF under.
// It demonstrates the adaptive fabric as a drop-in storage backend for a
// latency-sensitive workload beyond HDF5.
//
// Design: an append-only record log with an in-memory index, group-commit
// write buffering (small puts coalesce into one fabric write, the same
// lever as the VOL's coalescer), tombstone deletes, zone-alternating
// compaction, and crash recovery by log scan.
package kvstore

import (
	"encoding/binary"
	"fmt"

	"nvmeoaf/internal/blockfs"
	"nvmeoaf/internal/sim"
)

const (
	recordHeaderLen = 12 // klen u32 | vlen u32 | crc-ish tag u32
	tombstoneVLen   = 0xFFFFFFFF
	recordMagic     = 0x4B56A55A
	// zoneAlign keeps zone boundaries block aligned.
	zoneAlign = 4096
)

// Config tunes the store.
type Config struct {
	// GroupCommitBytes buffers puts until this many bytes accumulate
	// (or Flush is called); 0 disables buffering.
	GroupCommitBytes int
}

// entryRef locates a live record's value on the device.
type entryRef struct {
	off  int64 // record offset
	vlen int
	klen int
}

// Store is one open key-value store.
type Store struct {
	f   *blockfs.File
	cfg Config

	index map[string]entryRef
	// zones: the log lives in one half of the namespace at a time;
	// compaction rewrites live data into the other half.
	zoneSize int64
	zone     int   // 0 or 1
	head     int64 // append cursor within the active zone

	// group-commit buffer
	buf     []byte
	bufBase int64

	// Puts, Gets, Deletes, Compactions count operations.
	Puts, Gets, Deletes, Compactions int64
}

// Open creates an empty store over f (use Recover to load an existing
// log).
func Open(f *blockfs.File, cfg Config) *Store {
	zone := f.Size / 2 / zoneAlign * zoneAlign
	return &Store{
		f:        f,
		cfg:      cfg,
		index:    make(map[string]entryRef),
		zoneSize: zone,
		head:     0,
	}
}

// zoneBase returns the active zone's device offset.
func (s *Store) zoneBase() int64 { return int64(s.zone) * s.zoneSize }

// encodeRecord appends one record to dst.
func encodeRecord(dst []byte, key string, value []byte, tombstone bool) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(key)))
	vlen := uint32(len(value))
	if tombstone {
		vlen = tombstoneVLen
	}
	binary.LittleEndian.PutUint32(hdr[4:], vlen)
	binary.LittleEndian.PutUint32(hdr[8:], recordMagic^uint32(len(key))^vlen)
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	if !tombstone {
		dst = append(dst, value...)
	}
	return dst
}

// recordSize returns the on-log size of a record.
func recordSize(klen, vlen int, tombstone bool) int {
	if tombstone {
		return recordHeaderLen + klen
	}
	return recordHeaderLen + klen + vlen
}

// Put stores key=value. The record lands in the group-commit buffer and
// becomes durable at the next Flush (or when the buffer fills).
func (s *Store) Put(p *sim.Proc, key string, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("kvstore: empty key")
	}
	return s.append(p, key, value, false)
}

// Delete removes key by writing a tombstone.
func (s *Store) Delete(p *sim.Proc, key string) error {
	if _, ok := s.index[key]; !ok {
		return nil
	}
	if err := s.append(p, key, nil, true); err != nil {
		return err
	}
	delete(s.index, key)
	s.Deletes++
	return nil
}

// append adds a record to the log.
func (s *Store) append(p *sim.Proc, key string, value []byte, tombstone bool) error {
	size := recordSize(len(key), len(value), tombstone)
	if s.logUsage()+int64(size) > s.zoneSize {
		return fmt.Errorf("kvstore: zone full (%d bytes); compact first", s.zoneSize)
	}
	if s.buf == nil {
		s.bufBase = s.head
	}
	recOff := s.bufBase + int64(len(s.buf))
	s.buf = encodeRecord(s.buf, key, value, tombstone)
	s.head = s.bufBase + int64(len(s.buf))
	if !tombstone {
		s.index[key] = entryRef{off: recOff, vlen: len(value), klen: len(key)}
		s.Puts++
	}
	if s.cfg.GroupCommitBytes <= 0 || len(s.buf) >= s.cfg.GroupCommitBytes {
		return s.Flush(p)
	}
	return nil
}

// Flush makes buffered records durable with one (block-padded) fabric
// write — the group commit.
func (s *Store) Flush(p *sim.Proc) error {
	if len(s.buf) == 0 {
		return nil
	}
	start := s.bufBase / zoneAlign * zoneAlign
	end := (s.bufBase + int64(len(s.buf)) + zoneAlign - 1) / zoneAlign * zoneAlign
	padded := make([]byte, end-start)
	// Re-read the leading partial block so neighbours survive.
	if s.bufBase > start {
		if err := s.f.ReadAt(p, s.zoneBase()+start, padded[:zoneAlign], zoneAlign); err != nil {
			return err
		}
	}
	copy(padded[s.bufBase-start:], s.buf)
	if err := s.f.WriteAt(p, s.zoneBase()+start, padded, len(padded)); err != nil {
		return err
	}
	s.buf = nil
	return nil
}

// Get returns the value for key, or ok=false.
func (s *Store) Get(p *sim.Proc, key string) ([]byte, bool, error) {
	ref, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	s.Gets++
	// Serve from the unflushed buffer when the record is still buffered.
	if s.buf != nil && ref.off >= s.bufBase {
		base := ref.off - s.bufBase
		v := s.buf[base+int64(recordHeaderLen)+int64(ref.klen) : base+int64(recordHeaderLen)+int64(ref.klen)+int64(ref.vlen)]
		return append([]byte(nil), v...), true, nil
	}
	out := make([]byte, ref.vlen)
	off := s.zoneBase() + ref.off + int64(recordHeaderLen) + int64(ref.klen)
	if err := s.f.ReadAt(p, off, out, len(out)); err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.index) }

// logUsage returns bytes consumed in the active zone.
func (s *Store) logUsage() int64 { return s.head }

// LiveBytes returns the bytes of live records (excludes garbage).
func (s *Store) LiveBytes() int64 {
	var n int64
	for _, ref := range s.index {
		n += int64(recordSize(ref.klen, ref.vlen, false))
	}
	return n
}

// Compact rewrites live records into the other zone, reclaiming garbage
// from overwrites and deletes.
func (s *Store) Compact(p *sim.Proc) error {
	if err := s.Flush(p); err != nil {
		return err
	}
	dst := 1 - s.zone
	dstBase := int64(dst) * s.zoneSize
	var out []byte
	newIndex := make(map[string]entryRef, len(s.index))
	for key, ref := range s.index {
		val := make([]byte, ref.vlen)
		off := s.zoneBase() + ref.off + int64(recordHeaderLen) + int64(ref.klen)
		if err := s.f.ReadAt(p, off, val, len(val)); err != nil {
			return err
		}
		newIndex[key] = entryRef{off: int64(len(out)), vlen: ref.vlen, klen: ref.klen}
		out = encodeRecord(out, key, val, false)
	}
	padded := (int64(len(out)) + zoneAlign - 1) / zoneAlign * zoneAlign
	if padded > 0 {
		buf := make([]byte, padded)
		copy(buf, out)
		if err := s.f.WriteAt(p, dstBase, buf, len(buf)); err != nil {
			return err
		}
	}
	s.zone = dst
	s.head = int64(len(out))
	s.index = newIndex
	s.buf = nil
	s.Compactions++
	return nil
}

// Recover rebuilds the index by scanning the log in the given zone up to
// the first invalid record — the crash-recovery path.
func Recover(p *sim.Proc, f *blockfs.File, cfg Config, zone int) (*Store, error) {
	s := Open(f, cfg)
	s.zone = zone
	base := s.zoneBase()
	var off int64
	hdr := make([]byte, recordHeaderLen)
	for off+recordHeaderLen <= s.zoneSize {
		if err := f.ReadAt(p, base+off, hdr, recordHeaderLen); err != nil {
			return nil, err
		}
		klen := binary.LittleEndian.Uint32(hdr[0:])
		vlen := binary.LittleEndian.Uint32(hdr[4:])
		tag := binary.LittleEndian.Uint32(hdr[8:])
		if tag != recordMagic^klen^vlen || klen == 0 || klen > 64<<10 {
			break // end of log (or torn record)
		}
		tombstone := vlen == tombstoneVLen
		dataLen := int64(klen)
		if !tombstone {
			dataLen += int64(vlen)
		}
		if off+recordHeaderLen+dataLen > s.zoneSize {
			break
		}
		keyBuf := make([]byte, klen)
		if err := f.ReadAt(p, base+off+recordHeaderLen, keyBuf, int(klen)); err != nil {
			return nil, err
		}
		key := string(keyBuf)
		if tombstone {
			delete(s.index, key)
		} else {
			s.index[key] = entryRef{off: off, vlen: int(vlen), klen: int(klen)}
		}
		off += recordHeaderLen + dataLen
	}
	s.head = off
	return s, nil
}
