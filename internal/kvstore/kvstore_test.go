package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/blockfs"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

const capacity = 64 << 20

// rig builds a store backed by a real-data namespace over the adaptive
// fabric.
func rig(t *testing.T, seed int64) (*sim.Engine, func(p *sim.Proc) *blockfs.File) {
	t.Helper()
	e := sim.NewEngine(seed)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem("nqn.kv")
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "kv", capacity, ssdParams, true, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	fabric := core.NewFabric(e, model.DefaultSHM())
	srv := core.NewServer(e, tgt, core.ServerConfig{
		NQN: "nqn.kv", Design: core.DesignSHMZeroCopy, Fabric: fabric,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
	})
	link := netsim.NewLoopLink(e, model.Loopback())
	srv.Serve(link.B)
	region, _ := fabric.RegionFor(core.DesignSHMZeroCopy, "h", "h", 1<<20, 128<<10, 32)
	return e, func(p *sim.Proc) *blockfs.File {
		c, err := core.Connect(p, link.A, core.ClientConfig{
			NQN: "nqn.kv", QueueDepth: 32, Design: core.DesignSHMZeroCopy, Region: region,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return blockfs.New(e, c, capacity)
	}
}

func TestPutGetDeleteOverwrite(t *testing.T) {
	e, open := rig(t, 1)
	e.Go("app", func(p *sim.Proc) {
		s := Open(open(p), Config{GroupCommitBytes: 8 << 10})
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(s.Put(p, "alpha", []byte("one")))
		must(s.Put(p, "beta", []byte("two")))
		// Buffered read (pre-flush).
		v, ok, err := s.Get(p, "alpha")
		must(err)
		if !ok || string(v) != "one" {
			t.Fatalf("buffered get: %q %v", v, ok)
		}
		must(s.Flush(p))
		// Durable read.
		v, ok, err = s.Get(p, "beta")
		must(err)
		if !ok || string(v) != "two" {
			t.Fatalf("durable get: %q %v", v, ok)
		}
		// Overwrite.
		must(s.Put(p, "alpha", []byte("uno")))
		must(s.Flush(p))
		v, _, err = s.Get(p, "alpha")
		must(err)
		if string(v) != "uno" {
			t.Fatalf("overwrite lost: %q", v)
		}
		// Delete.
		must(s.Delete(p, "beta"))
		must(s.Flush(p))
		if _, ok, _ := s.Get(p, "beta"); ok {
			t.Fatal("deleted key still readable")
		}
		if s.Len() != 1 {
			t.Fatalf("len %d", s.Len())
		}
		if err := s.Put(p, "", []byte("x")); err == nil {
			t.Fatal("empty key accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	e, open := rig(t, 2)
	e.Go("app", func(p *sim.Proc) {
		f := open(p)
		s := Open(f, Config{GroupCommitBytes: 4 << 10})
		for i := 0; i < 50; i++ {
			if err := s.Put(p, fmt.Sprintf("key-%02d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
				t.Fatal(err)
			}
		}
		s.Delete(p, "key-07")
		s.Put(p, "key-03", []byte("updated"))
		if err := s.Flush(p); err != nil {
			t.Fatal(err)
		}
		// "Crash": drop the in-memory store; recover by log scan.
		r, err := Recover(p, f, Config{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != 49 {
			t.Fatalf("recovered %d keys, want 49", r.Len())
		}
		if _, ok, _ := r.Get(p, "key-07"); ok {
			t.Fatal("tombstone not honoured on recovery")
		}
		v, ok, err := r.Get(p, "key-03")
		if err != nil || !ok || string(v) != "updated" {
			t.Fatalf("recovered key-03 = %q %v %v", v, ok, err)
		}
		v, _, _ = r.Get(p, "key-42")
		if !bytes.Equal(v, bytes.Repeat([]byte{42}, 100)) {
			t.Fatal("recovered value mismatch")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionReclaimsGarbage(t *testing.T) {
	e, open := rig(t, 3)
	e.Go("app", func(p *sim.Proc) {
		s := Open(open(p), Config{GroupCommitBytes: 16 << 10})
		// Overwrite the same keys many times: the log grows, live set
		// stays small.
		for round := 0; round < 20; round++ {
			for i := 0; i < 10; i++ {
				if err := s.Put(p, fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(round)}, 1000)); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Flush(p)
		usedBefore := s.logUsage()
		if err := s.Compact(p); err != nil {
			t.Fatal(err)
		}
		if s.logUsage() >= usedBefore/5 {
			t.Fatalf("compaction reclaimed little: %d -> %d", usedBefore, s.logUsage())
		}
		// Data survives compaction.
		for i := 0; i < 10; i++ {
			v, ok, err := s.Get(p, fmt.Sprintf("k%d", i))
			if err != nil || !ok || !bytes.Equal(v, bytes.Repeat([]byte{19}, 1000)) {
				t.Fatalf("k%d after compaction: %v %v", i, ok, err)
			}
		}
		// And the store keeps working in the new zone.
		if err := s.Put(p, "post", []byte("compact")); err != nil {
			t.Fatal(err)
		}
		s.Flush(p)
		v, _, _ := s.Get(p, "post")
		if string(v) != "compact" {
			t.Fatal("post-compaction put lost")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitCoalescesWrites(t *testing.T) {
	e, open := rig(t, 4)
	e.Go("app", func(p *sim.Proc) {
		f := open(p)
		s := Open(f, Config{GroupCommitBytes: 64 << 10})
		for i := 0; i < 100; i++ {
			if err := s.Put(p, fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{1}, 200)); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush(p)
		// ~21KB of records with a 64KB group commit: a handful of fabric
		// ops, not one per put.
		if f.Ops > 10 {
			t.Fatalf("group commit issued %d fabric ops for 100 puts", f.Ops)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMatchesMapProperty(t *testing.T) {
	type op struct {
		Key byte
		Val []byte
		Del bool
	}
	f := func(ops []op) bool {
		e, open := rig(t, 77)
		ok := true
		e.Go("prop", func(p *sim.Proc) {
			s := Open(open(p), Config{GroupCommitBytes: 4 << 10})
			ref := map[string][]byte{}
			for _, o := range ops {
				key := fmt.Sprintf("k%d", o.Key%16)
				if o.Del {
					if err := s.Delete(p, key); err != nil {
						ok = false
						return
					}
					delete(ref, key)
					continue
				}
				val := o.Val
				if len(val) > 4096 {
					val = val[:4096]
				}
				if err := s.Put(p, key, val); err != nil {
					ok = false
					return
				}
				ref[key] = append([]byte(nil), val...)
			}
			s.Flush(p)
			if s.Len() != len(ref) {
				ok = false
				return
			}
			for k, want := range ref {
				got, found, err := s.Get(p, k)
				if err != nil || !found || !bytes.Equal(got, want) {
					ok = false
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestZoneFullRejected(t *testing.T) {
	e, open := rig(t, 5)
	e.Go("app", func(p *sim.Proc) {
		s := Open(open(p), Config{})
		// The zone holds capacity/2 = 32 MB; the 65th 512K value must
		// overflow it.
		var err error
		for i := 0; i < 80 && err == nil; i++ {
			err = s.Put(p, fmt.Sprintf("big%d", i), make([]byte, 512<<10))
		}
		if err == nil {
			t.Fatal("zone overflow accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
