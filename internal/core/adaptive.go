package core

import (
	"time"

	"nvmeoaf/internal/model"
)

// This file implements the adaptive policies of §4.5: the fabric does not
// just *support* tuned chunk sizes and busy-poll budgets, it selects them
// itself — chunk size from the underlying link hardware (Fig 9's finding
// that the optimum tracks the network generation), and the busy-poll
// budget from the live workload mix (Fig 10's finding that writes want
// long budgets and reads short ones).

// SelectChunkSize picks the application-level chunk size for a link, per
// the paper's guidance that "optimal chunk size can be adaptively chosen
// based on underlying hardware architecture". Slow wires amortize per-PDU
// costs with modest chunks; faster wires benefit from larger ones until
// target memory becomes the constraint (Fig 9: 512 KiB is ideal for
// 25 GbE).
func SelectChunkSize(link model.LinkParams) int {
	switch {
	case link.WireBytesPerSec < 1.5e9: // ~10 GbE
		return 256 << 10
	case link.WireBytesPerSec < 4e9: // ~25 GbE
		return 512 << 10
	default: // 100 GbE and the intra-node path
		return 1 << 20
	}
}

// Busy-poll budgets of the workload-aware policy (§4.5, Fig 10).
const (
	pollBudgetRead  = 25 * time.Microsecond
	pollBudgetMixed = 50 * time.Microsecond
	pollBudgetWrite = 100 * time.Microsecond
)

// pollPolicy tracks the live read/write mix with an exponentially
// weighted moving average and recommends a busy-poll budget.
type pollPolicy struct {
	// writeFrac is the EWMA of the write share in [0,1].
	writeFrac float64
	warm      int
}

// pollWarmSat saturates the warm counter: warmth only gates the
// initial conservative phase, so there is no reason to keep counting
// into the billions — the EWMA itself carries all adaptation state.
const pollWarmSat = 1024

// observe records one submitted command's direction.
func (a *pollPolicy) observe(write bool) {
	const alpha = 0.05
	v := 0.0
	if write {
		v = 1.0
	}
	if a.warm == 0 {
		a.writeFrac = v
	} else {
		a.writeFrac = (1-alpha)*a.writeFrac + alpha*v
	}
	if a.warm < pollWarmSat {
		a.warm++
	}
}

// budget recommends the busy-poll duration for the observed mix. Before
// enough samples accumulate it stays conservative (mixed).
func (a *pollPolicy) budget() time.Duration {
	if a.warm < 16 {
		return pollBudgetMixed
	}
	switch {
	case a.writeFrac >= 0.6:
		return pollBudgetWrite
	case a.writeFrac <= 0.4:
		return pollBudgetRead
	default:
		return pollBudgetMixed
	}
}
