package core

import (
	"bytes"
	"testing"

	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// TestRealDataAllDesignsPoisonedPool repeats the real-data round trip
// with poison-on-free enabled on the target pool. Conservative-flow
// payloads (TCP data path and chunked shared-memory designs) are staged
// into the pool elements and gathered from them at execute time, so a
// premature free shows up as 0xDB corruption in the readback.
func TestRealDataAllDesignsPoisonedPool(t *testing.T) {
	for _, design := range []Design{DesignTCP, DesignSHMBaseline, DesignSHMFlowCtl, DesignSHMZeroCopy} {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			r := newRig(t, design, true, func(cfg *ServerConfig) {
				cfg.PoisonPool = true
			})
			if design == DesignTCP {
				r.region = nil
			}
			payload := make([]byte, 512<<10) // multi-chunk at the default 128K
			for i := range payload {
				payload[i] = byte(i*11 + 5)
			}
			r.e.Go("app", func(p *sim.Proc) {
				c := r.connect(t, p, design, 8)
				for round := 0; round < 3; round++ {
					res := c.Submit(p, &transport.IO{Write: true, Offset: 8192, Size: len(payload), Data: payload}).Wait(p)
					if res.Err() != nil {
						t.Fatalf("round %d write: %v", round, res.Err())
					}
					into := make([]byte, len(payload))
					res = c.Submit(p, &transport.IO{Offset: 8192, Size: len(payload), Data: into}).Wait(p)
					if res.Err() != nil {
						t.Fatalf("round %d read: %v", round, res.Err())
					}
					if !bytes.Equal(res.Data, payload) {
						t.Fatalf("round %d: payload corrupted through poisoned pool", round)
					}
				}
				c.Close()
				c.WaitClosed(p)
			})
			if err := r.e.Run(); err != nil {
				t.Fatal(err)
			}
			if r.srv.Pool().InUse() != 0 {
				t.Fatalf("pool leak: %d elements in use", r.srv.Pool().InUse())
			}
		})
	}
}
