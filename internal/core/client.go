package core

import (
	"sync/atomic"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// ClientConfig configures one NVMe-oAF host queue.
type ClientConfig struct {
	// NQN names the target subsystem.
	NQN string
	// QueueDepth bounds outstanding commands.
	QueueDepth int
	// Design selects the shared-memory data-path design; DesignTCP (or a
	// nil Region) uses the optimized TCP path.
	Design Design
	// Region is the shared-memory mapping hotplugged for this
	// client-target pair; nil when the pair is remote.
	Region *shm.Region
	// TP holds TCP-channel knobs (chunk size, in-capsule threshold, busy
	// poll budget).
	TP model.TCPTransportParams
	// Host holds client software costs.
	Host model.HostParams
	// HostNQN identifies this host in the Fabrics Connect command.
	HostNQN string

	// CommandTimeout is the per-command deadline. A command not completed
	// by then is torn down, retried (bounded), and finally failed with
	// StatusTransientTransport. Zero (the default) disables deadlines and
	// retries, keeping healthy-path behaviour bit-identical.
	CommandTimeout time.Duration
	// MaxRetries bounds retry attempts per command (default 3 when
	// CommandTimeout is set). Retries always use the TCP data path: after
	// a failure the shared-memory channel is suspect.
	MaxRetries int
	// RetryBackoff is the base of the exponential, jittered backoff
	// between attempts (default 100µs). The jitter stream derives from
	// the engine seed, so retry schedules replay per seed.
	RetryBackoff time.Duration
	// KeepAlive, when set, submits a keep-alive admin command at this
	// interval so the target's KATO watchdog sees traffic on idle
	// connections — and so a dead target is detected even with no I/O
	// outstanding. Zero disables.
	KeepAlive time.Duration

	// Telemetry receives path-selection traces, per-path submit and
	// recovery counters, and latency histograms. Nil means disabled.
	Telemetry *telemetry.Sink

	// Tenant names the tenant this queue submits for (carried to the
	// target inside the Fabrics Connect hostNQN; empty = untenanted,
	// wire byte-identical). QoS is the host-side per-tenant admission
	// shaper shared by the queues of one contention domain (nil = off).
	Tenant string
	QoS    *qos.Shaper
}

// Client is the NVMe-oAF host queue: control path over TCP, data path
// over shared memory when the locality check succeeded at connect time.
// The session machinery (CID table, reactor, deadlines, batching,
// keep-alive) lives in internal/session; this file is the adaptive-fabric
// wire binding.
type Client struct {
	*session.Host
	wire *oafWire

	// SHMPayloadBytes counts payload moved over the shared-memory channel
	// instead of the wire; Failovers counts mid-stream SHM→TCP data-path
	// switches.
	SHMPayloadBytes int64
	Failovers       int64
}

// oafWire is the adaptive data path: whole-I/O or chunked shared-memory
// slots when the locality check admitted the region, the optimized TCP
// flow otherwise — with mid-stream failover from the former to the
// latter.
type oafWire struct {
	cl     *Client
	h      *session.Host
	ep     *netsim.Endpoint
	cfg    *ClientConfig
	region *shm.Region // non-nil when the AF negotiated shared memory
	policy pollPolicy
	// chunkB is the live TCP-channel chunk size (atomic: adjustable from
	// the tuning controller or an operator goroutine mid-run).
	chunkB atomic.Int64

	// slotScratch backs the amortized multi-slot claim in SubmitBatch.
	slotScratch []*shm.Slot
}

// Connect performs the adaptive-fabric handshake on ep. The Connection
// Manager proposes the hotplugged region (if any); the target's locality
// check accepts or declines it, and the client falls back to the TCP data
// path when declined.
func Connect(p *sim.Proc, ep *netsim.Endpoint, cfg ClientConfig) (*Client, error) {
	if cfg.TP.ChunkSize <= 0 {
		cfg.TP = model.DefaultTCPTransport()
	}
	if cfg.TP.AutoChunk {
		// Adaptive chunk selection from the link hardware (§4.5).
		cfg.TP.ChunkSize = SelectChunkSize(ep.Params())
	}
	e := p.Engine()
	w := &oafWire{ep: ep, cfg: &cfg}
	w.chunkB.Store(int64(cfg.TP.ChunkSize))
	h := session.NewHost(e, ep, session.HostConfig{
		Label:            "oaf",
		NQN:              cfg.NQN,
		HostNQN:          cfg.HostNQN,
		QueueDepth:       cfg.QueueDepth,
		Host:             cfg.Host,
		BatchSize:        cfg.TP.BatchSize,
		CommandTimeout:   cfg.CommandTimeout,
		MaxRetries:       cfg.MaxRetries,
		RetryBackoff:     cfg.RetryBackoff,
		KeepAlive:        cfg.KeepAlive,
		InterruptWakeups: true,
		Telemetry:        cfg.Telemetry,
		Tenant:           cfg.Tenant,
		QoS:              cfg.QoS,
	}, w)
	w.h = h
	c := &Client{Host: h, wire: w}
	w.cl = c
	if err := h.Handshake(p); err != nil {
		return nil, err
	}
	if h.ICResp().AFEnabled {
		w.region = cfg.Region
	}
	if w.region != nil {
		// Wake the reactor the instant the helper revokes the mapping so
		// the failover happens before blocked claimers pile up.
		w.region.OnRevoke(h.Kick)
		h.Telemetry().Trace(int64(p.Now()), telemetry.EvPathSelected, 0, "shm", cfg.Design.String())
	} else {
		h.Telemetry().Trace(int64(p.Now()), telemetry.EvPathSelected, 0, "tcp", cfg.Design.String())
	}
	h.Start()
	return c, nil
}

// SHMEnabled reports whether the data path uses shared memory.
func (c *Client) SHMEnabled() bool { return c.wire.region != nil }

// chunk returns the effective TCP-path chunk size: the live knob,
// capped by the target's negotiated MaxH2CData.
func (w *oafWire) chunk() int {
	c := int(w.chunkB.Load())
	if icresp := w.h.ICResp(); icresp != nil && icresp.MaxH2CData > 0 && int(icresp.MaxH2CData) < c {
		return int(icresp.MaxH2CData)
	}
	return c
}

// SetChunkSize adjusts the host-side chunk size live (block aligned, at
// least one block). Values below the negotiated MaxH2CData take effect
// on the next R2T grant; larger values apply up to the negotiated
// ceiling now and fully after the next (re)negotiation.
func (c *Client) SetChunkSize(n int) {
	if n < transport.BlockSize {
		n = transport.BlockSize
	}
	n -= n % transport.BlockSize
	c.wire.chunkB.Store(int64(n))
}

// LiveChunkSize returns the host-side chunk size knob (which may exceed
// the per-connection negotiated ceiling; see SetChunkSize).
func (c *Client) LiveChunkSize() int { return int(c.wire.chunkB.Load()) }

// Health shadows the session engine's report: a queue that failed over
// from shared memory to the TCP data path mid-stream still serves, but
// reports degraded so striped groups and replication layers can see
// which member lost its fast path.
func (c *Client) Health() transport.Health {
	if h := c.Host.Health(); h != transport.HealthHealthy {
		return h
	}
	if c.Failovers > 0 {
		return transport.HealthDegraded
	}
	return transport.HealthHealthy
}

// Region returns the negotiated shared-memory region, or nil on the TCP
// data path (never negotiated, or abandoned by a mid-stream failover).
func (c *Client) Region() *shm.Region { return c.wire.region }

// AllocBuffer returns an I/O buffer from the Buffer Manager: a shared-
// memory-resident buffer in the zero-copy design (the co-design hook the
// paper adds to SPDK perf and h5bench), a private buffer otherwise. The
// returned IO should be submitted with NoFill if the caller charges its
// own generation cost.
func (c *Client) AllocBuffer(size int) []byte {
	// The slot itself is claimed at submission; this sizes the private
	// staging buffer the app fills. Zero-copy submissions with real data
	// copy into the slot as bookkeeping only.
	return make([]byte, size)
}

// SubmitBatch shadows the engine's generic override: the whole train pays
// one submit-CPU charge and one reactor doorbell, and H2C payload slots
// for whole-I/O shared-memory writes are claimed with one amortized
// ClaimN (falling back to per-slot claims for whatever the train did not
// cover). Per-I/O validation and staging costs match Submit.
func (c *Client) SubmitBatch(p *sim.Proc, ios []*transport.IO) []*sim.Future[*transport.Result] {
	w := c.wire
	futs := make([]*sim.Future[*transport.Result], len(ios))
	staged := 0
	for i, io := range ios {
		fut := sim.NewFuture[*transport.Result](c.Engine())
		futs[i] = fut
		if !c.AdmitIO(io, fut) {
			continue
		}
		if io.Admin == 0 && !io.Flush {
			w.policy.observe(io.Write)
		}
		staged++
	}
	if staged == 0 {
		return futs
	}
	// Claim the train's H2C slots up front, paying SlotOverhead once.
	region := w.region
	claimSlots := region != nil && !w.cfg.Design.Chunked()
	var slots []*shm.Slot
	if claimSlots {
		need := 0
		for i, io := range ios {
			if io.Write && io.Admin == 0 && !futs[i].Resolved() {
				need++
			}
		}
		if need > 0 {
			slots = region.ClaimN(p, shm.H2C, need, w.slotScratch[:0])
			w.slotScratch = slots[:0]
		}
	}
	nextSlot := 0
	for i, io := range ios {
		if futs[i].Resolved() {
			continue // rejected by admission
		}
		pend := c.TakePending(io, futs[i])
		if io.Write && io.Admin == 0 {
			if !claimSlots {
				w.stageWrite(p, pend, nil)
			} else if nextSlot < len(slots) {
				w.stageWrite(p, pend, slots[nextSlot])
				slots[nextSlot] = nil
				nextSlot++
			} else if region.Revoked() {
				// Revoked mid-train: remaining writes fall to TCP.
				w.stageWrite(p, pend, nil)
			} else {
				// The amortized train ran out of immediate credits;
				// claim the remainder one by one (blocking, classic
				// per-slot overhead).
				w.stageWrite(p, pend, region.Claim(p, shm.H2C))
			}
		}
		c.Push(p, pend)
	}
	p.Sleep(w.cfg.Host.SubmitCPU)
	c.Kick()
	return futs
}

// BuildICReq proposes the hotplugged region in the handshake; on
// reconnect a revoked region is no longer proposed (the data path
// renegotiates to TCP).
func (w *oafWire) BuildICReq(reconnect bool) *pdu.ICReq {
	req := &pdu.ICReq{PFV: 0, HPDA: 4, MaxR2T: 16}
	if w.cfg.Design.UsesSHM() && w.cfg.Region != nil && (!reconnect || !w.cfg.Region.Revoked()) {
		req.AFCapab = true
		req.SHMKey = w.cfg.Region.Key
	}
	return req
}

// AdoptICResp adopts the renegotiated data path after a mid-stream
// reconnect: shared memory only if the target re-admitted the (still
// live) region.
func (w *oafWire) AdoptICResp(resp *pdu.ICResp) {
	if resp.AFEnabled && w.cfg.Region != nil && !w.cfg.Region.Revoked() {
		w.region = w.cfg.Region
	} else {
		w.region = nil
	}
}

func (w *oafWire) Admit(io *transport.IO) nvme.Status {
	if io.Admin == 0 && !io.Flush && w.region != nil && !w.cfg.Design.Chunked() && io.Size > w.region.SlotSize {
		// The negotiated shared-memory slot bounds the transfer size
		// (the fabric's MDTS); larger I/O must be split by the caller.
		return nvme.StatusInvalidField
	}
	return nvme.StatusSuccess
}

// StageSubmit feeds the adaptive busy-poll policy and produces/stages the
// write payload for the selected data path.
func (w *oafWire) StageSubmit(p *sim.Proc, pend *session.Pending) {
	io := pend.IO
	if io.Admin == 0 && !io.Flush {
		w.policy.observe(io.Write)
	}
	if io.Write && io.Admin == 0 {
		w.prepareWrite(p, pend)
	}
}

// prepareWrite produces the payload and stages it for the selected data
// path.
func (w *oafWire) prepareWrite(p *sim.Proc, pend *session.Pending) {
	region := w.region
	if region == nil || w.cfg.Design.Chunked() {
		// TCP path, or chunked SHM (slots claimed after R2T): payload is
		// produced into a private buffer now.
		w.stageWrite(p, pend, nil)
		return
	}
	// Whole-I/O slot designs: claim the slot up front (shared-memory flow
	// control: this blocks while all slots are busy). A nil slot means
	// the region was revoked while claiming: fall back to the TCP path.
	w.stageWrite(p, pend, region.Claim(p, shm.H2C))
}

// stageWrite produces the write payload and moves it into the given
// pre-claimed H2C slot (nil slot: TCP data path, private buffer only).
func (w *oafWire) stageWrite(p *sim.Proc, pend *session.Pending, slot *shm.Slot) {
	io := pend.IO
	fill := func() {
		if !io.NoFill {
			p.Sleep(time.Duration(float64(io.Size) * w.cfg.Host.FillPerByteNanos))
		}
	}
	if slot == nil {
		fill()
		return
	}
	region := slot.Region()
	pend.Stage = slot
	if w.cfg.Design.ZeroCopy() && !region.Encrypted() {
		// The application buffer *is* the slot: fill in place, no copy.
		fill()
		if io.Data != nil {
			copy(slot.Bytes(), io.Data) // bookkeeping only: app wrote here directly
		}
	} else if w.cfg.Design.ZeroCopy() {
		// Channel encryption (§6 extension) forfeits part of the
		// zero-copy benefit: the payload must be enciphered into the
		// region.
		fill()
		slot.CopyIn(p, io.Data, io.Size)
	} else {
		// Fill privately, then copy into the shared region.
		fill()
		slot.CopyIn(p, io.Data, io.Size)
	}
	w.cl.SHMPayloadBytes += int64(io.Size)
}

// MakeIOEntry records per-path submit telemetry and builds the wire entry
// for a read/write command: slot-named capsule on the shared-memory flow,
// bare or in-capsule on TCP.
func (w *oafWire) MakeIOEntry(pend *session.Pending) pdu.BatchEntry {
	io := pend.IO
	tel := w.h.Telemetry()
	// The data path in effect for this attempt: retried commands pin
	// TCP, everything else follows the negotiated region.
	if w.region != nil && pend.Attempts == 0 {
		tel.Inc(telemetry.CtrSubmitsSHM)
	} else {
		tel.Inc(telemetry.CtrSubmitsTCP)
	}
	tel.Observe(telemetry.HistIOSize, int64(io.Size))
	slba := uint64(io.Offset / transport.BlockSize)
	nlb := uint32(io.Size / transport.BlockSize)
	if !io.Write {
		return pdu.BatchEntry{Cmd: nvme.NewRead(pend.CID, io.Nsid(), slba, nlb)}
	}
	cmd := nvme.NewWrite(pend.CID, io.Nsid(), slba, nlb)
	if io.Data != nil {
		// Tell the target real bytes sit in shared memory so it
		// materializes its bounce buffer (simulation bookkeeping).
		cmd.PRP2 = 1
	}
	// Retried writes pin the TCP data path: after a timeout or transfer
	// failure the shared-memory channel is suspect, and TCP always works.
	viaTCP := w.region == nil || pend.Attempts > 0
	slot, _ := pend.Stage.(*shm.Slot)
	switch {
	case slot != nil:
		// Shared-memory flow control: the payload already sits in the
		// slot; the capsule names it and no R2T round trip happens
		// regardless of I/O size (steps 2 and 4 of Fig 7 eliminated).
		cmd.Flags = session.CmdFlagSHMSlot
		cmd.PRP1 = uint64(slot.Index)
		return pdu.BatchEntry{Cmd: cmd}
	case !viaTCP:
		// Chunked SHM design: conservative flow; wait for R2T, then move
		// payload through chunk slots.
		return pdu.BatchEntry{Cmd: cmd}
	case io.Size <= w.cfg.TP.InCapsuleThreshold:
		e := pdu.BatchEntry{Cmd: cmd}
		if io.Data != nil {
			e.Data = io.Data
		} else {
			e.VirtualLen = io.Size
		}
		pend.Sent = io.Size
		return e
	default:
		return pdu.BatchEntry{Cmd: cmd}
	}
}

func (w *oafWire) Transmit(p *sim.Proc, e *pdu.BatchEntry) { w.h.SendCapsule(p, e) }

func (w *oafWire) TransmitTrain(p *sim.Proc, b *pdu.CmdBatch) {
	transport.SendPDUs(p, w.ep, b)
}

// PollBudget returns the busy-poll budget: the static configuration, or
// the workload-aware adaptive policy's recommendation (§4.5).
func (w *oafWire) PollBudget() time.Duration {
	if w.cfg.TP.AutoBusyPoll {
		return w.policy.budget()
	}
	return w.cfg.TP.BusyPoll
}

// PreReactor fails over to the TCP data path when the region was revoked:
// in-flight transfers through the region surface as typed errors or
// deadline hits and re-drive over TCP.
func (w *oafWire) PreReactor(p *sim.Proc) {
	if w.region != nil && w.region.Revoked() {
		w.region = nil
		w.cl.Failovers++
		tel := w.h.Telemetry()
		tel.Inc(telemetry.CtrFailovers)
		tel.Trace(int64(p.Now()), telemetry.EvFailover, 0, "tcp", "region-revoked")
	}
}

func (w *oafWire) HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool {
	switch v := u.(type) {
	case *pdu.R2T:
		w.onR2T(p, v)
	case *pdu.SHMNotify:
		w.onSHMNotify(p, v, transit)
	case *pdu.SHMRelease:
		w.onSHMRelease(p, v)
	default:
		return false
	}
	return true
}

// ReleaseAttempt reclaims a write's payload slot with the tolerant
// release: the target may have consumed and freed it already.
func (w *oafWire) ReleaseAttempt(pend *session.Pending) {
	if slot, ok := pend.Stage.(*shm.Slot); ok && slot != nil {
		slot.TryRelease()
		pend.Stage = nil
	}
}

// onR2T moves write payload: through chunk slots on the shared-memory
// channel, or as H2CData PDUs on the TCP path.
func (w *oafWire) onR2T(p *sim.Proc, r *pdu.R2T) {
	pend, ok := w.h.LookupPending(r.CID)
	if !ok {
		w.h.NoteLate() // R2T for a command already reaped by its deadline
		return
	}
	io := pend.IO
	if w.region != nil && pend.Attempts == 0 {
		// Chunked shared-memory transfer with conservative stop-and-wait
		// flow control (the naive pre-flow-control data path): one chunk
		// moves per target acknowledgement, exactly the extra control
		// messages §4.4.2 eliminates.
		pend.WNext = int(r.Offset)
		pend.WEnd = int(r.Offset) + int(r.Length)
		w.sendWriteChunk(p, pend)
		return
	}
	transport.ChunkSizes(int(r.Length), w.chunk(), func(off, n int) {
		dataOff := int(r.Offset) + off
		d := &pdu.Data{
			Dir:    pdu.TypeH2CData,
			CID:    r.CID,
			TTag:   r.TTag,
			Offset: uint32(dataOff),
			Last:   dataOff+n >= io.Size,
		}
		if io.Data != nil {
			d.Payload = io.Data[dataOff : dataOff+n]
		} else {
			d.VirtualLen = n
		}
		transport.SendPDUs(p, w.ep, d)
	})
	pend.Sent += int(r.Length)
}

// sendWriteChunk moves the next chunk of a conservative write into a
// shared-memory slot and notifies the target. A revoked region marks the
// transfer's payload lost; the command re-drives over TCP when the
// target's typed error (or the deadline) comes back.
func (w *oafWire) sendWriteChunk(p *sim.Proc, pend *session.Pending) {
	region := w.region
	if region == nil {
		pend.DataLost = true
		return
	}
	io := pend.IO
	n := region.SlotSize
	if n > pend.WEnd-pend.WNext {
		n = pend.WEnd - pend.WNext
	}
	dataOff := pend.WNext
	slot := region.Claim(p, shm.H2C)
	if slot == nil {
		pend.DataLost = true
		return
	}
	var src []byte
	if io.Data != nil {
		src = io.Data[dataOff : dataOff+n]
	}
	slot.CopyIn(p, src, n)
	transport.SendPDUs(p, w.ep, &pdu.SHMNotify{
		CID:    pend.CID,
		Slot:   slot.Index,
		Offset: uint64(dataOff),
		Length: uint32(n),
		Last:   dataOff+n >= io.Size,
	})
	pend.WNext += n
	pend.Sent += n
	w.cl.SHMPayloadBytes += int64(n)
}

// onSHMRelease is the target's per-chunk acknowledgement in the
// conservative flow: send the next chunk.
func (w *oafWire) onSHMRelease(p *sim.Proc, rel *pdu.SHMRelease) {
	pend, ok := w.h.LookupPending(rel.CID)
	if !ok {
		return // command already completed
	}
	if pend.WNext < pend.WEnd {
		w.sendWriteChunk(p, pend)
	}
}

// onSHMNotify consumes read payload from a shared-memory slot: a charged
// copy-out in the non-zero-copy designs, an in-place consume (bookkeeping
// copy only) in the zero-copy design. The slot returns to the target's
// allocator immediately — slot state lives in the shared region itself,
// so no release message crosses the wire.
func (w *oafWire) onSHMNotify(p *sim.Proc, n *pdu.SHMNotify, transit time.Duration) {
	region := w.region
	pend, ok := w.h.LookupPending(n.CID)
	if !ok {
		// Late notify for a command already reaped by its deadline:
		// consume and free the slot anyway, or the target's C2H credit
		// never returns and its read workers wedge on a full ring.
		w.h.NoteLate()
		if region != nil {
			if slot, err := region.Open(shm.C2H, n.Slot); err == nil {
				slot.TryRelease()
			}
		}
		return
	}
	if region == nil {
		// Failed over after the target copied in: the payload is gone
		// with the region. The response completes the command through
		// the retry path.
		pend.DataLost = true
		return
	}
	slot, err := region.Open(shm.C2H, n.Slot)
	if err != nil {
		pend.DataLost = true
		return
	}
	io := pend.IO
	if w.cfg.Design.ZeroCopy() && !region.Encrypted() {
		// The app buffer is shared-memory resident: no copy-out. The Go
		// copy below only materializes the bytes for the caller's view.
		if io.Data != nil {
			copy(io.Data[n.Offset:], slot.Bytes()[:n.Length])
		}
	} else {
		var dst []byte
		if io.Data != nil {
			dst = io.Data[n.Offset : uint32(n.Offset)+n.Length]
		}
		slot.CopyOut(p, dst, int(n.Length))
	}
	slot.TryRelease()
	pend.Received += int(n.Length)
	pend.Comm += transit
	w.cl.SHMPayloadBytes += int64(n.Length)
	// Conservative flow control (chunked designs): acknowledge the chunk
	// so the target moves the next one.
	if w.cfg.Design.Chunked() && !n.Last {
		transport.SendPDUs(p, w.ep, &pdu.SHMRelease{CID: n.CID, Slot: n.Slot})
	}
}
