package core

import (
	"fmt"
	"math/rand"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// cmdFlagSHMSlot marks a command capsule whose PRP1 carries a shared-
// memory slot index holding the write payload (the in-capsule-style flow
// of the shared-memory flow-control optimization, §4.4.2).
const cmdFlagSHMSlot = 0x01

// pollMissCPU is the busy-poll expiry cost (syscall return + re-arm).
const pollMissCPU = 8 * time.Microsecond

// defaultHostNQN identifies the host when the caller sets none.
const defaultHostNQN = "nqn.2014-08.org.nvmexpress:uuid:sim-host"

// connectCID is the reserved CID of the Fabrics Connect command; it never
// collides with I/O CIDs (queue depths are far smaller).
const connectCID = 0xFFFF

// ClientConfig configures one NVMe-oAF host queue.
type ClientConfig struct {
	// NQN names the target subsystem.
	NQN string
	// QueueDepth bounds outstanding commands.
	QueueDepth int
	// Design selects the shared-memory data-path design; DesignTCP (or a
	// nil Region) uses the optimized TCP path.
	Design Design
	// Region is the shared-memory mapping hotplugged for this
	// client-target pair; nil when the pair is remote.
	Region *shm.Region
	// TP holds TCP-channel knobs (chunk size, in-capsule threshold, busy
	// poll budget).
	TP model.TCPTransportParams
	// Host holds client software costs.
	Host model.HostParams
	// HostNQN identifies this host in the Fabrics Connect command.
	HostNQN string

	// CommandTimeout is the per-command deadline. A command not completed
	// by then is torn down, retried (bounded), and finally failed with
	// StatusTransientTransport. Zero (the default) disables deadlines and
	// retries, keeping healthy-path behaviour bit-identical.
	CommandTimeout time.Duration
	// MaxRetries bounds retry attempts per command (default 3 when
	// CommandTimeout is set). Retries always use the TCP data path: after
	// a failure the shared-memory channel is suspect.
	MaxRetries int
	// RetryBackoff is the base of the exponential, jittered backoff
	// between attempts (default 100µs). The jitter stream derives from
	// the engine seed, so retry schedules replay per seed.
	RetryBackoff time.Duration
	// KeepAlive, when set, submits a keep-alive admin command at this
	// interval so the target's KATO watchdog sees traffic on idle
	// connections — and so a dead target is detected even with no I/O
	// outstanding. Zero disables.
	KeepAlive time.Duration

	// Telemetry receives path-selection traces, per-path submit and
	// recovery counters, and latency histograms. Nil means disabled.
	Telemetry *telemetry.Sink
}

// afPending decorates a pending request with its shared-memory state.
type afPending struct {
	*transport.Pending
	slot *shm.Slot // H2C payload slot for writes (non-chunked designs)
	// Chunked-design write progress: the conservative stop-and-wait flow
	// sends one chunk per target acknowledgement.
	wNext, wEnd int
	// attempts counts retries so far; retried commands pin the TCP data
	// path. gen invalidates stale deadline timers across attempts.
	attempts int
	gen      int
	// expired marks a deadline hit; the reactor reaps it.
	expired bool
	// dataLost marks payload that went missing mid-transfer (revoked
	// region); the response alone cannot complete the command.
	dataLost bool
}

// Client is the NVMe-oAF host queue: control path over TCP, data path
// over shared memory when the locality check succeeded at connect time.
type Client struct {
	e       *sim.Engine
	ep      *netsim.Endpoint
	cfg     ClientConfig
	cids    *nvme.CIDTable
	submitQ *sim.Queue[*afPending]
	kick    *sim.Signal
	icresp  *pdu.ICResp
	region  *shm.Region // non-nil when the AF negotiated shared memory
	closing bool
	drained *sim.Signal
	policy  pollPolicy
	rng     *rand.Rand
	tel     *telemetry.Sink

	// Hot-path recycling: pending-op freelist plus reactor-owned scratch
	// structures for the batched submission path. The engine is
	// cooperative, so plain slices suffice; scratch encode structures are
	// only touched by the reactor (SendPDUs serializes before yielding).
	freePends   []*afPending
	batch       pdu.CmdBatch
	capsule     pdu.CapsuleCmd
	slotScratch []*shm.Slot

	// backlog counts commands parked in retry backoff (neither queued nor
	// in flight); teardown waits for them.
	backlog int
	// consecTimeouts counts deadline expirations since the last
	// successful completion; crossing the threshold triggers reconnect.
	consecTimeouts int
	reconnecting   bool
	reconRetry     bool
	reconGen       int

	// Completed counts finished commands; SHMPayloadBytes counts payload
	// moved over the shared-memory channel instead of the wire.
	Completed       int64
	SHMPayloadBytes int64
	// Retries counts re-driven attempts; Timeouts counts per-command
	// deadline expirations; Failovers counts mid-stream SHM→TCP data-path
	// switches; Reconnects counts re-established connections; LateMsgs
	// counts stale PDUs (for already-reaped commands) dropped.
	Retries    int64
	Timeouts   int64
	Failovers  int64
	Reconnects int64
	LateMsgs   int64
}

// Connect performs the adaptive-fabric handshake on ep. The Connection
// Manager proposes the hotplugged region (if any); the target's locality
// check accepts or declines it, and the client falls back to the TCP data
// path when declined.
func Connect(p *sim.Proc, ep *netsim.Endpoint, cfg ClientConfig) (*Client, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.TP.ChunkSize <= 0 {
		cfg.TP = model.DefaultTCPTransport()
	}
	if cfg.TP.AutoChunk {
		// Adaptive chunk selection from the link hardware (§4.5).
		cfg.TP.ChunkSize = SelectChunkSize(ep.Params())
	}
	e := p.Engine()
	c := &Client{
		e:       e,
		ep:      ep,
		cfg:     cfg,
		cids:    nvme.NewCIDTable(cfg.QueueDepth),
		submitQ: sim.NewQueue[*afPending](e, 0),
		kick:    sim.NewSignal(e),
		drained: sim.NewSignal(e),
		rng:     e.Rand("oaf-client-retry"),
		tel:     cfg.Telemetry,
	}
	if c.tel == nil {
		c.tel = telemetry.Disabled
	}
	req := &pdu.ICReq{PFV: 0, HPDA: 4, MaxR2T: 16}
	if cfg.Design.UsesSHM() && cfg.Region != nil {
		req.AFCapab = true
		req.SHMKey = cfg.Region.Key
	}
	transport.SendPDUs(p, ep, req)
	msg := ep.Recv(p)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		return nil, fmt.Errorf("core: handshake: %w", err)
	}
	icresp, ok := pdus[0].(*pdu.ICResp)
	if !ok {
		return nil, fmt.Errorf("core: handshake: unexpected %v", pdus[0].Type())
	}
	c.icresp = icresp
	if icresp.AFEnabled {
		c.region = cfg.Region
	}
	if err := fabricsConnect(p, ep, cfg.HostNQN, cfg.NQN); err != nil {
		return nil, err
	}
	if c.region != nil {
		// Wake the reactor the instant the helper revokes the mapping so
		// the failover happens before blocked claimers pile up.
		c.region.OnRevoke(c.kick.Fire)
		c.tel.Trace(int64(p.Now()), telemetry.EvPathSelected, 0, "shm", cfg.Design.String())
	} else {
		c.tel.Trace(int64(p.Now()), telemetry.EvPathSelected, 0, "tcp", cfg.Design.String())
	}
	e.GoDaemon("oaf-client-reactor", c.reactor)
	if cfg.KeepAlive > 0 {
		e.GoDaemon("oaf-client-keepalive", c.keepAliveLoop)
	}
	return c, nil
}

// fabricsConnect performs the NVMe-oF Connect command over the control
// path: the target validates the subsystem NQN before admitting I/O.
func fabricsConnect(p *sim.Proc, ep *netsim.Endpoint, hostNQN, subNQN string) error {
	if hostNQN == "" {
		hostNQN = defaultHostNQN
	}
	cmd := nvme.Command{Opcode: nvme.FabricsCommandType, CID: connectCID, CDW10: nvme.FctypeConnect}
	transport.SendPDUs(p, ep, &pdu.CapsuleCmd{Cmd: cmd, Data: nvme.EncodeConnectData(hostNQN, subNQN)})
	msg := ep.Recv(p)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		return fmt.Errorf("core: connect: %w", err)
	}
	resp, ok := pdus[0].(*pdu.CapsuleResp)
	if !ok {
		return fmt.Errorf("core: connect: unexpected %v", pdus[0].Type())
	}
	if resp.Rsp.Status.IsError() {
		return fmt.Errorf("core: connect rejected: %w", resp.Rsp.Status.Error())
	}
	return nil
}

// SHMEnabled reports whether the data path uses shared memory.
func (c *Client) SHMEnabled() bool { return c.region != nil }

// Region returns the negotiated shared-memory region, or nil on the TCP
// data path (never negotiated, or abandoned by a mid-stream failover).
func (c *Client) Region() *shm.Region { return c.region }

// ICResp returns the negotiated connection parameters.
func (c *Client) ICResp() *pdu.ICResp { return c.icresp }

// AllocBuffer returns an I/O buffer from the Buffer Manager: a shared-
// memory-resident buffer in the zero-copy design (the co-design hook the
// paper adds to SPDK perf and h5bench), a private buffer otherwise. The
// returned IO should be submitted with NoFill if the caller charges its
// own generation cost.
func (c *Client) AllocBuffer(size int) []byte {
	// The slot itself is claimed at submission; this sizes the private
	// staging buffer the app fills. Zero-copy submissions with real data
	// copy into the slot as bookkeeping only.
	return make([]byte, size)
}

// newPending takes a pending op off the freelist (or allocates one) and
// re-arms it for a fresh command. The generation bump invalidates any
// stale deadline timer still holding the recycled struct.
func (c *Client) newPending(io *transport.IO, fut *sim.Future[*transport.Result]) *afPending {
	if n := len(c.freePends); n > 0 {
		pend := c.freePends[n-1]
		c.freePends[n-1] = nil
		c.freePends = c.freePends[:n-1]
		gen := pend.gen + 1
		*pend.Pending = transport.Pending{IO: io, Fut: fut}
		pend.slot = nil
		pend.wNext, pend.wEnd = 0, 0
		pend.attempts = 0
		pend.gen = gen
		pend.expired = false
		pend.dataLost = false
		return pend
	}
	return &afPending{Pending: &transport.Pending{IO: io, Fut: fut}}
}

// recyclePending returns a finished pending op to the freelist. Only
// fully resolved commands (future resolved, CID freed) may be recycled;
// stale timers are fenced by the generation bump in newPending.
func (c *Client) recyclePending(pend *afPending) {
	if len(c.freePends) >= cap(c.freePends) && len(c.freePends) >= 4*c.cfg.QueueDepth {
		return // bound the freelist; excess pends fall to the GC
	}
	pend.IO = nil
	pend.Fut = nil
	pend.slot = nil
	c.freePends = append(c.freePends, pend)
}

// admit validates one I/O against the negotiated limits, resolving the
// future with a typed error when it cannot be queued. It returns false
// when the command must not proceed.
func (c *Client) admit(io *transport.IO, fut *sim.Future[*transport.Result]) bool {
	if c.closing {
		fut.Resolve(&transport.Result{Status: nvme.StatusAbortRequested})
		return false
	}
	if io.Admin == 0 && !io.Flush && (io.Size <= 0 || io.Size%transport.BlockSize != 0 || io.Offset%transport.BlockSize != 0) {
		fut.Resolve(&transport.Result{Status: nvme.StatusInvalidField})
		return false
	}
	if io.Admin == 0 && !io.Flush && c.region != nil && !c.cfg.Design.Chunked() && io.Size > c.region.SlotSize {
		// The negotiated shared-memory slot bounds the transfer size
		// (the fabric's MDTS); larger I/O must be split by the caller.
		fut.Resolve(&transport.Result{Status: nvme.StatusInvalidField})
		return false
	}
	return true
}

// Submit implements transport.Queue. The submitting process pays payload
// generation and, depending on the design, the shared-memory claim and
// copy-in (flow control pushes back here when all slots are busy).
func (c *Client) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	fut := sim.NewFuture[*transport.Result](c.e)
	if !c.admit(io, fut) {
		return fut
	}
	pend := c.newPending(io, fut)
	if io.Admin == 0 && !io.Flush {
		c.policy.observe(io.Write)
	}
	if io.Write && io.Admin == 0 {
		c.prepareWrite(p, pend)
	}
	p.Sleep(c.cfg.Host.SubmitCPU)
	pend.SubmitAt = p.Now()
	c.submitQ.TryPut(pend)
	c.kick.Fire()
	return fut
}

// SubmitBatch implements transport.BatchQueue: the whole train pays one
// submit-CPU charge and one reactor doorbell, and H2C payload slots for
// whole-I/O shared-memory writes are claimed with one amortized ClaimN
// (falling back to per-slot claims for whatever the train did not
// cover). Per-I/O validation and staging costs match Submit.
func (c *Client) SubmitBatch(p *sim.Proc, ios []*transport.IO) []*sim.Future[*transport.Result] {
	futs := make([]*sim.Future[*transport.Result], len(ios))
	staged := 0
	for i, io := range ios {
		fut := sim.NewFuture[*transport.Result](c.e)
		futs[i] = fut
		if !c.admit(io, fut) {
			continue
		}
		if io.Admin == 0 && !io.Flush {
			c.policy.observe(io.Write)
		}
		staged++
	}
	if staged == 0 {
		return futs
	}
	// Claim the train's H2C slots up front, paying SlotOverhead once.
	region := c.region
	claimSlots := region != nil && !c.cfg.Design.Chunked()
	var slots []*shm.Slot
	if claimSlots {
		need := 0
		for i, io := range ios {
			if io.Write && io.Admin == 0 && !futs[i].Resolved() {
				need++
			}
		}
		if need > 0 {
			slots = region.ClaimN(p, shm.H2C, need, c.slotScratch[:0])
			c.slotScratch = slots[:0]
		}
	}
	nextSlot := 0
	for i, io := range ios {
		if futs[i].Resolved() {
			continue // rejected by admission
		}
		pend := c.newPending(io, futs[i])
		if io.Write && io.Admin == 0 {
			if !claimSlots {
				c.stageWrite(p, pend, nil)
			} else if nextSlot < len(slots) {
				c.stageWrite(p, pend, slots[nextSlot])
				slots[nextSlot] = nil
				nextSlot++
			} else if region.Revoked() {
				// Revoked mid-train: remaining writes fall to TCP.
				c.stageWrite(p, pend, nil)
			} else {
				// The amortized train ran out of immediate credits;
				// claim the remainder one by one (blocking, classic
				// per-slot overhead).
				c.stageWrite(p, pend, region.Claim(p, shm.H2C))
			}
		}
		pend.SubmitAt = p.Now()
		c.submitQ.TryPut(pend)
	}
	p.Sleep(c.cfg.Host.SubmitCPU)
	c.kick.Fire()
	return futs
}

// prepareWrite produces the payload and stages it for the selected data
// path.
func (c *Client) prepareWrite(p *sim.Proc, pend *afPending) {
	region := c.region
	if region == nil || c.cfg.Design.Chunked() {
		// TCP path, or chunked SHM (slots claimed after R2T): payload is
		// produced into a private buffer now.
		c.stageWrite(p, pend, nil)
		return
	}
	// Whole-I/O slot designs: claim the slot up front (shared-memory flow
	// control: this blocks while all slots are busy). A nil slot means
	// the region was revoked while claiming: fall back to the TCP path.
	c.stageWrite(p, pend, region.Claim(p, shm.H2C))
}

// stageWrite produces the write payload and moves it into the given
// pre-claimed H2C slot (nil slot: TCP data path, private buffer only).
func (c *Client) stageWrite(p *sim.Proc, pend *afPending, slot *shm.Slot) {
	io := pend.IO
	fill := func() {
		if !io.NoFill {
			p.Sleep(time.Duration(float64(io.Size) * c.cfg.Host.FillPerByteNanos))
		}
	}
	if slot == nil {
		fill()
		return
	}
	region := slot.Region()
	pend.slot = slot
	if c.cfg.Design.ZeroCopy() && !region.Encrypted() {
		// The application buffer *is* the slot: fill in place, no copy.
		fill()
		if io.Data != nil {
			copy(slot.Bytes(), io.Data) // bookkeeping only: app wrote here directly
		}
	} else if c.cfg.Design.ZeroCopy() {
		// Channel encryption (§6 extension) forfeits part of the
		// zero-copy benefit: the payload must be enciphered into the
		// region.
		fill()
		slot.CopyIn(p, io.Data, io.Size)
	} else {
		// Fill privately, then copy into the shared region.
		fill()
		slot.CopyIn(p, io.Data, io.Size)
	}
	c.SHMPayloadBytes += int64(io.Size)
}

// Close initiates orderly shutdown.
func (c *Client) Close() {
	if c.closing {
		return
	}
	c.closing = true
	c.kick.Fire()
}

// WaitClosed blocks until the reactor has exited.
func (c *Client) WaitClosed(p *sim.Proc) { c.drained.Wait(p) }

// reactor is the connection's single-core event loop.
func (c *Client) reactor(p *sim.Proc) {
	c.ep.OnDeliver = c.kick.Fire
	defer c.drained.Fire()
	for {
		if c.region != nil && c.region.Revoked() {
			// Mid-stream failover: abandon the shared-memory data path.
			// In-flight transfers through the region surface as typed
			// errors or deadline hits and re-drive over TCP.
			c.region = nil
			c.Failovers++
			c.tel.Inc(telemetry.CtrFailovers)
			c.tel.Trace(int64(p.Now()), telemetry.EvFailover, 0, "tcp", "region-revoked")
		}
		worked := false
		if c.reconRetry {
			c.reconRetry = false
			if c.reconnecting && !c.closing {
				c.sendICReq(p)
				worked = true
			}
		}
		if depth := c.batchDepth(); depth > 1 {
			for !c.cids.Full() && !c.reconnecting && c.startTrain(p, depth) {
				worked = true
			}
		} else {
			for !c.cids.Full() && !c.reconnecting {
				pend, ok := c.submitQ.TryGet()
				if !ok {
					break
				}
				c.start(p, pend)
				worked = true
			}
		}
		if c.closing && c.reconnecting {
			// Tearing down with no usable connection: fail queued
			// commands with a typed, retryable-at-application error
			// rather than parking them forever.
			for {
				pend, ok := c.submitQ.TryGet()
				if !ok {
					break
				}
				pend.Fut.Resolve(&transport.Result{
					Status:  nvme.StatusTransientTransport,
					Latency: p.Now().Sub(pend.SubmitAt),
				})
				worked = true
			}
		}
		for {
			msg := c.ep.TryRecv(p)
			if msg == nil {
				break
			}
			c.handle(p, msg)
			worked = true
		}
		if c.reapExpired(p) {
			worked = true
		}
		if worked {
			continue
		}
		if c.closing && c.cids.Outstanding() == 0 && c.submitQ.Len() == 0 && c.backlog == 0 {
			transport.SendPDUs(p, c.ep, &pdu.Term{Dir: pdu.TypeH2CTermReq})
			return
		}
		if budget := c.pollBudget(); budget > 0 && c.cids.Outstanding() > 0 {
			if msg := c.ep.RecvPoll(p, budget); msg != nil {
				c.handle(p, msg)
				continue
			}
			// Spin the budget, then fall through to the blocking wait
			// (SO_BUSY_POLL semantics).
			p.Sleep(pollMissCPU)
		}
		c.kick.Reset()
		if c.closing && c.cids.Outstanding() == 0 && c.submitQ.Len() == 0 && c.backlog == 0 {
			continue
		}
		if c.ep.Pending() > 0 || (!c.cids.Full() && !c.reconnecting && c.submitQ.Len() > 0) {
			continue
		}
		c.kick.Wait(p)
		if c.ep.Pending() > 0 {
			c.ep.ChargeWakeup(p)
		}
	}
}

// pollBudget returns the busy-poll budget: the static configuration, or
// the workload-aware adaptive policy's recommendation (§4.5).
func (c *Client) pollBudget() time.Duration {
	if c.cfg.TP.AutoBusyPoll {
		return c.policy.budget()
	}
	return c.cfg.TP.BusyPoll
}

// maxRetries returns the per-command retry bound.
func (c *Client) maxRetries() int {
	if c.cfg.MaxRetries > 0 {
		return c.cfg.MaxRetries
	}
	return 3
}

// retryBase returns the backoff base.
func (c *Client) retryBase() time.Duration {
	if c.cfg.RetryBackoff > 0 {
		return c.cfg.RetryBackoff
	}
	return 100 * time.Microsecond
}

// backoff returns the delay before the given attempt: exponential in the
// attempt number, capped, plus deterministic seed-derived jitter so
// retrying queues don't synchronize into retry storms.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.retryBase()
	d := base << uint(attempt-1)
	if max := 64 * base; d > max {
		d = max
	}
	return d + time.Duration(c.rng.Int63n(int64(base)))
}

// armDeadline schedules the per-command deadline for the current attempt.
// The generation check keeps a stale timer (for a completed or already
// retried attempt) from firing on a reused CID.
func (c *Client) armDeadline(pend *afPending) {
	if c.cfg.CommandTimeout <= 0 {
		return
	}
	gen := pend.gen
	cid := pend.CID
	c.e.After(c.cfg.CommandTimeout, func() {
		if pend.gen != gen || pend.expired {
			return
		}
		ctx, ok := c.cids.Lookup(cid)
		if !ok {
			return
		}
		if cur, _ := ctx.(*afPending); cur != pend {
			return
		}
		pend.expired = true
		c.kick.Fire()
	})
}

// reapExpired tears down deadline-hit commands: the CID frees (late
// responses for it are dropped as stale), the payload slot reclaims, and
// the command either re-drives after backoff or fails with a typed
// transport error.
func (c *Client) reapExpired(p *sim.Proc) bool {
	if c.cfg.CommandTimeout <= 0 {
		return false
	}
	worked := false
	for i := 0; i < c.cids.Depth(); i++ {
		ctx, ok := c.cids.Lookup(uint16(i))
		if !ok {
			continue
		}
		pend := ctx.(*afPending)
		if !pend.expired {
			continue
		}
		if _, err := c.cids.Complete(pend.CID); err != nil {
			panic(fmt.Sprintf("oaf client: %v", err))
		}
		c.Timeouts++
		c.tel.Inc(telemetry.CtrTimeouts)
		c.tel.Trace(int64(p.Now()), telemetry.EvTimeout, pend.CID, "", "deadline")
		c.consecTimeouts++
		c.requeueOrFail(p, pend)
		worked = true
	}
	if c.consecTimeouts >= 2 && !c.reconnecting && !c.closing {
		// Successive deadline hits mean the connection, not a command,
		// is sick: re-run the handshake (the target may have crashed and
		// restarted, or a KATO teardown dropped our connection state).
		c.startReconnect(p)
		worked = true
	}
	return worked
}

// requeueOrFail re-drives a torn-down command after a jittered backoff,
// or fails it with StatusTransientTransport once attempts are exhausted
// (or the client is closing). The caller must have freed the CID.
func (c *Client) requeueOrFail(p *sim.Proc, pend *afPending) {
	pend.expired = false
	pend.gen++
	pend.Received = 0
	pend.Sent = 0
	pend.dataLost = false
	pend.wNext, pend.wEnd = 0, 0
	c.releaseSlot(pend)
	if c.closing || pend.attempts >= c.maxRetries() {
		pend.Fut.Resolve(&transport.Result{
			Status:  nvme.StatusTransientTransport,
			Latency: p.Now().Sub(pend.SubmitAt),
		})
		c.kick.Fire()
		return
	}
	pend.attempts++
	c.Retries++
	c.tel.Inc(telemetry.CtrRetries)
	c.tel.Trace(int64(p.Now()), telemetry.EvRetry, pend.CID, "tcp", "backoff")
	c.backlog++
	c.e.After(c.backoff(pend.attempts), func() {
		c.backlog--
		if c.closing {
			pend.Fut.Resolve(&transport.Result{
				Status:  nvme.StatusTransientTransport,
				Latency: c.e.Now().Sub(pend.SubmitAt),
			})
			c.kick.Fire()
			return
		}
		c.submitQ.TryPut(pend)
		c.kick.Fire()
	})
}

// releaseSlot reclaims a write's payload slot with the tolerant release:
// the target may have consumed and freed it already.
func (c *Client) releaseSlot(pend *afPending) {
	if pend.slot != nil {
		pend.slot.TryRelease()
		pend.slot = nil
	}
}

// keepAliveLoop submits a keep-alive admin command every interval. The
// commands ride the normal submission path, so they are subject to
// deadlines and drive crash detection even when the workload is idle.
func (c *Client) keepAliveLoop(p *sim.Proc) {
	for !c.closing {
		p.Sleep(c.cfg.KeepAlive)
		if c.closing {
			return
		}
		if c.reconnecting || c.cids.Full() {
			continue
		}
		pend := &afPending{Pending: &transport.Pending{
			IO:  &transport.IO{Admin: nvme.AdminKeepAlive},
			Fut: sim.NewFuture[*transport.Result](c.e),
		}}
		pend.SubmitAt = p.Now()
		c.submitQ.TryPut(pend)
		c.kick.Fire()
	}
}

// startReconnect re-runs the adaptive-fabric handshake on the live
// endpoint. Until it completes, new submissions queue; in-flight
// commands keep timing out into the retry path and re-drive afterwards.
func (c *Client) startReconnect(p *sim.Proc) {
	c.reconnecting = true
	c.sendICReq(p)
}

// sendICReq (re)sends the handshake request and arms a retry timer in
// case it, or the response, is lost.
func (c *Client) sendICReq(p *sim.Proc) {
	c.reconGen++
	gen := c.reconGen
	req := &pdu.ICReq{PFV: 0, HPDA: 4, MaxR2T: 16}
	if c.cfg.Design.UsesSHM() && c.cfg.Region != nil && !c.cfg.Region.Revoked() {
		req.AFCapab = true
		req.SHMKey = c.cfg.Region.Key
	}
	transport.SendPDUs(p, c.ep, req)
	c.e.After(c.reconnectTimeout(), func() {
		if c.reconnecting && c.reconGen == gen && !c.closing {
			c.reconRetry = true
			c.kick.Fire()
		}
	})
}

func (c *Client) reconnectTimeout() time.Duration {
	if c.cfg.CommandTimeout > 0 {
		return c.cfg.CommandTimeout
	}
	return time.Millisecond
}

// batchDepth returns the submission-coalescing depth in effect (1 =
// classic one-capsule-per-message behaviour).
func (c *Client) batchDepth() int {
	if c.cfg.TP.BatchSize > 1 {
		return c.cfg.TP.BatchSize
	}
	return 1
}

// prepareStart allocates the CID, arms the deadline, records telemetry,
// and builds the wire entry (SQE + optional in-capsule payload) for one
// command. It is the shared front half of start and startTrain.
func (c *Client) prepareStart(pend *afPending) pdu.BatchEntry {
	cid, err := c.cids.Alloc(pend)
	if err != nil {
		panic(err)
	}
	pend.CID = cid
	c.armDeadline(pend)
	io := pend.IO
	if io.Admin == 0 && !io.Flush {
		// The data path in effect for this attempt: retried commands pin
		// TCP, everything else follows the negotiated region.
		if c.region != nil && pend.attempts == 0 {
			c.tel.Inc(telemetry.CtrSubmitsSHM)
		} else {
			c.tel.Inc(telemetry.CtrSubmitsTCP)
		}
		c.tel.Observe(telemetry.HistIOSize, int64(io.Size))
	}
	if io.Admin != 0 {
		return pdu.BatchEntry{Cmd: nvme.Command{Opcode: io.Admin, CID: cid, NSID: io.NSID, CDW10: io.CDW10, Flags: transport.AdminFlag}}
	}
	if io.Flush {
		// Flush carries no payload and no LBA range: it rides the control
		// channel on either data path.
		return pdu.BatchEntry{Cmd: nvme.NewFlush(cid, io.Nsid())}
	}
	slba := uint64(io.Offset / transport.BlockSize)
	nlb := uint32(io.Size / transport.BlockSize)
	if !io.Write {
		return pdu.BatchEntry{Cmd: nvme.NewRead(cid, io.Nsid(), slba, nlb)}
	}
	cmd := nvme.NewWrite(cid, io.Nsid(), slba, nlb)
	if io.Data != nil {
		// Tell the target real bytes sit in shared memory so it
		// materializes its bounce buffer (simulation bookkeeping).
		cmd.PRP2 = 1
	}
	// Retried writes pin the TCP data path: after a timeout or transfer
	// failure the shared-memory channel is suspect, and TCP always works.
	viaTCP := c.region == nil || pend.attempts > 0
	switch {
	case pend.slot != nil:
		// Shared-memory flow control: the payload already sits in the
		// slot; the capsule names it and no R2T round trip happens
		// regardless of I/O size (steps 2 and 4 of Fig 7 eliminated).
		cmd.Flags = cmdFlagSHMSlot
		cmd.PRP1 = uint64(pend.slot.Index)
		return pdu.BatchEntry{Cmd: cmd}
	case !viaTCP:
		// Chunked SHM design: conservative flow; wait for R2T, then move
		// payload through chunk slots.
		return pdu.BatchEntry{Cmd: cmd}
	case io.Size <= c.cfg.TP.InCapsuleThreshold:
		e := pdu.BatchEntry{Cmd: cmd}
		if io.Data != nil {
			e.Data = io.Data
		} else {
			e.VirtualLen = io.Size
		}
		pend.Sent = io.Size
		return e
	default:
		return pdu.BatchEntry{Cmd: cmd}
	}
}

// start transmits one command capsule (the classic unbatched path).
func (c *Client) start(p *sim.Proc, pend *afPending) {
	e := c.prepareStart(pend)
	c.capsule = pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
	transport.SendPDUs(p, c.ep, &c.capsule)
}

// startTrain drains up to depth admissible commands from the submit
// queue and transmits them as one capsule train: a single network
// message, so the per-message CPU, wakeup penalty, and all but one
// common header are paid once for the whole batch. Returns false when
// the queue had nothing to send.
func (c *Client) startTrain(p *sim.Proc, depth int) bool {
	entries := c.batch.Entries[:0]
	for len(entries) < depth && !c.cids.Full() {
		pend, ok := c.submitQ.TryGet()
		if !ok {
			break
		}
		entries = append(entries, c.prepareStart(pend))
	}
	c.batch.Entries = entries
	if len(entries) == 0 {
		return false
	}
	c.tel.Observe(telemetry.HistBatchSize, int64(len(entries)))
	if len(entries) == 1 {
		// A train of one degenerates to the classic capsule: no batch
		// framing overhead, and single-command traffic stays on the
		// established wire format.
		e := &entries[0]
		c.capsule = pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
		transport.SendPDUs(p, c.ep, &c.capsule)
		return true
	}
	transport.SendPDUs(p, c.ep, &c.batch)
	return true
}

// handle processes one received network message.
func (c *Client) handle(p *sim.Proc, msg *netsim.Message) {
	transit := p.Now().Sub(msg.SentAt)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		panic(fmt.Sprintf("oaf client: bad message: %v", err))
	}
	c.tel.Add(telemetry.CtrPDUsRx, int64(len(pdus)))
	reaped := 0
	for _, u := range pdus {
		switch v := u.(type) {
		case *pdu.R2T:
			c.onR2T(p, v)
		case *pdu.Data:
			c.onTCPData(p, v, transit)
		case *pdu.SHMNotify:
			c.onSHMNotify(p, v, transit)
		case *pdu.SHMRelease:
			c.onSHMRelease(p, v)
		case *pdu.CapsuleResp:
			c.onResp(p, v, transit)
			reaped++
		case *pdu.ICResp:
			c.onReconnectICResp(p, v)
		case *pdu.Term:
		default:
			panic(fmt.Sprintf("oaf client: unexpected PDU %v", u.Type()))
		}
		transit = 0
	}
	if reaped > 0 {
		// Completions harvested per wakeup: the completion-reap analogue
		// of HistBatchSize (the target coalesces responses when batching).
		c.tel.Observe(telemetry.HistReapDepth, int64(reaped))
	}
}

// onReconnectICResp completes the first half of a mid-stream reconnect:
// adopt the renegotiated parameters (the data path may have changed from
// shared memory to TCP if the region is gone) and send the Fabrics
// Connect command.
func (c *Client) onReconnectICResp(p *sim.Proc, resp *pdu.ICResp) {
	if !c.reconnecting {
		return
	}
	c.icresp = resp
	if resp.AFEnabled && c.cfg.Region != nil && !c.cfg.Region.Revoked() {
		c.region = c.cfg.Region
	} else {
		c.region = nil
	}
	hostNQN := c.cfg.HostNQN
	if hostNQN == "" {
		hostNQN = defaultHostNQN
	}
	cmd := nvme.Command{Opcode: nvme.FabricsCommandType, CID: connectCID, CDW10: nvme.FctypeConnect}
	transport.SendPDUs(p, c.ep, &pdu.CapsuleCmd{Cmd: cmd, Data: nvme.EncodeConnectData(hostNQN, c.cfg.NQN)})
}

// onR2T moves write payload: through chunk slots on the shared-memory
// channel, or as H2CData PDUs on the TCP path.
func (c *Client) onR2T(p *sim.Proc, r *pdu.R2T) {
	ctx, ok := c.cids.Lookup(r.CID)
	if !ok {
		c.LateMsgs++
		c.tel.Inc(telemetry.CtrLateMsgs) // R2T for a command already reaped by its deadline
		return
	}
	pend := ctx.(*afPending)
	io := pend.IO
	if c.region != nil && pend.attempts == 0 {
		// Chunked shared-memory transfer with conservative stop-and-wait
		// flow control (the naive pre-flow-control data path): one chunk
		// moves per target acknowledgement, exactly the extra control
		// messages §4.4.2 eliminates.
		pend.wNext = int(r.Offset)
		pend.wEnd = int(r.Offset) + int(r.Length)
		c.sendWriteChunk(p, pend)
		return
	}
	transport.ChunkSizes(int(r.Length), c.cfg.TP.ChunkSize, func(off, n int) {
		dataOff := int(r.Offset) + off
		d := &pdu.Data{
			Dir:    pdu.TypeH2CData,
			CID:    r.CID,
			TTag:   r.TTag,
			Offset: uint32(dataOff),
			Last:   dataOff+n >= io.Size,
		}
		if io.Data != nil {
			d.Payload = io.Data[dataOff : dataOff+n]
		} else {
			d.VirtualLen = n
		}
		transport.SendPDUs(p, c.ep, d)
	})
	pend.Sent += int(r.Length)
}

// sendWriteChunk moves the next chunk of a conservative write into a
// shared-memory slot and notifies the target. A revoked region marks the
// transfer's payload lost; the command re-drives over TCP when the
// target's typed error (or the deadline) comes back.
func (c *Client) sendWriteChunk(p *sim.Proc, pend *afPending) {
	region := c.region
	if region == nil {
		pend.dataLost = true
		return
	}
	io := pend.IO
	n := region.SlotSize
	if n > pend.wEnd-pend.wNext {
		n = pend.wEnd - pend.wNext
	}
	dataOff := pend.wNext
	slot := region.Claim(p, shm.H2C)
	if slot == nil {
		pend.dataLost = true
		return
	}
	var src []byte
	if io.Data != nil {
		src = io.Data[dataOff : dataOff+n]
	}
	slot.CopyIn(p, src, n)
	transport.SendPDUs(p, c.ep, &pdu.SHMNotify{
		CID:    pend.CID,
		Slot:   slot.Index,
		Offset: uint64(dataOff),
		Length: uint32(n),
		Last:   dataOff+n >= io.Size,
	})
	pend.wNext += n
	pend.Sent += n
	c.SHMPayloadBytes += int64(n)
}

// onSHMRelease is the target's per-chunk acknowledgement in the
// conservative flow: send the next chunk.
func (c *Client) onSHMRelease(p *sim.Proc, rel *pdu.SHMRelease) {
	ctx, ok := c.cids.Lookup(rel.CID)
	if !ok {
		return // command already completed
	}
	pend := ctx.(*afPending)
	if pend.wNext < pend.wEnd {
		c.sendWriteChunk(p, pend)
	}
}

// onTCPData receives one read payload chunk over the TCP path.
func (c *Client) onTCPData(p *sim.Proc, d *pdu.Data, transit time.Duration) {
	ctx, ok := c.cids.Lookup(d.CID)
	if !ok {
		c.LateMsgs++
		c.tel.Inc(telemetry.CtrLateMsgs) // late data for a command already reaped
		return
	}
	pend := ctx.(*afPending)
	n := len(d.Payload)
	if n == 0 {
		n = d.VirtualLen
	}
	if d.Payload != nil && pend.IO.Data != nil {
		copy(pend.IO.Data[d.Offset:], d.Payload)
	}
	pend.Received += n
	pend.Comm += transit
}

// onSHMNotify consumes read payload from a shared-memory slot: a charged
// copy-out in the non-zero-copy designs, an in-place consume (bookkeeping
// copy only) in the zero-copy design. The slot returns to the target's
// allocator immediately — slot state lives in the shared region itself,
// so no release message crosses the wire.
func (c *Client) onSHMNotify(p *sim.Proc, n *pdu.SHMNotify, transit time.Duration) {
	ctx, ok := c.cids.Lookup(n.CID)
	region := c.region
	if !ok {
		// Late notify for a command already reaped by its deadline:
		// consume and free the slot anyway, or the target's C2H credit
		// never returns and its read workers wedge on a full ring.
		c.LateMsgs++
		c.tel.Inc(telemetry.CtrLateMsgs)
		if region != nil {
			if slot, err := region.Open(shm.C2H, n.Slot); err == nil {
				slot.TryRelease()
			}
		}
		return
	}
	pend := ctx.(*afPending)
	if region == nil {
		// Failed over after the target copied in: the payload is gone
		// with the region. The response completes the command through
		// the retry path.
		pend.dataLost = true
		return
	}
	slot, err := region.Open(shm.C2H, n.Slot)
	if err != nil {
		pend.dataLost = true
		return
	}
	io := pend.IO
	if c.cfg.Design.ZeroCopy() && !region.Encrypted() {
		// The app buffer is shared-memory resident: no copy-out. The Go
		// copy below only materializes the bytes for the caller's view.
		if io.Data != nil {
			copy(io.Data[n.Offset:], slot.Bytes()[:n.Length])
		}
	} else {
		var dst []byte
		if io.Data != nil {
			dst = io.Data[n.Offset : uint32(n.Offset)+n.Length]
		}
		slot.CopyOut(p, dst, int(n.Length))
	}
	slot.TryRelease()
	pend.Received += int(n.Length)
	pend.Comm += transit
	c.SHMPayloadBytes += int64(n.Length)
	// Conservative flow control (chunked designs): acknowledge the chunk
	// so the target moves the next one.
	if c.cfg.Design.Chunked() && !n.Last {
		transport.SendPDUs(p, c.ep, &pdu.SHMRelease{CID: n.CID, Slot: n.Slot})
	}
}

// onResp completes a command — or, when the target reported a retryable
// typed error (shed under pressure, transfer failed mid-stream) or the
// payload went missing with a revoked region, re-drives it.
func (c *Client) onResp(p *sim.Proc, r *pdu.CapsuleResp, transit time.Duration) {
	if r.Rsp.CID == connectCID {
		c.onConnectResp(r)
		return
	}
	ctx, err := c.cids.Complete(r.Rsp.CID)
	if err != nil {
		// A response for a command the deadline already reaped: its CID
		// was freed (or reused by a later command that also completed).
		c.LateMsgs++
		c.tel.Inc(telemetry.CtrLateMsgs)
		return
	}
	pend := ctx.(*afPending)
	pend.Comm += transit
	p.Sleep(c.cfg.Host.CompleteCPU)
	c.consecTimeouts = 0
	pend.expired = false // response raced the deadline: response wins
	if c.cfg.CommandTimeout > 0 && !c.closing && (pend.dataLost || r.Rsp.Status.Retryable()) {
		c.requeueOrFail(p, pend)
		c.kick.Fire()
		return
	}
	var data []byte
	if !pend.IO.Write && pend.IO.Data != nil {
		n := pend.Received
		if n > len(pend.IO.Data) {
			n = len(pend.IO.Data)
		}
		data = pend.IO.Data[:n]
	}
	pend.Finish(p.Now(), r, data)
	c.Completed++
	c.tel.Inc(telemetry.CtrCompletions)
	if pend.IO.Admin == 0 {
		lat := p.Now().Sub(pend.SubmitAt)
		if pend.IO.Write {
			c.tel.ObserveDuration(telemetry.HistWriteLatency, lat)
		} else {
			c.tel.ObserveDuration(telemetry.HistReadLatency, lat)
		}
	}
	c.recyclePending(pend)
	c.kick.Fire()
}

// onConnectResp completes the second half of a mid-stream reconnect.
func (c *Client) onConnectResp(r *pdu.CapsuleResp) {
	if !c.reconnecting || r.Rsp.Status.IsError() {
		return // the handshake retry timer will try again
	}
	c.reconnecting = false
	c.consecTimeouts = 0
	c.Reconnects++
	c.tel.Inc(telemetry.CtrReconnects)
	c.tel.Trace(int64(c.e.Now()), telemetry.EvReconnect, 0, "", "handshake")
	c.kick.Fire()
}
