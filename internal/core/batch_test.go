package core

import (
	"bytes"
	"fmt"
	"testing"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// burstOutcome captures everything observable about one write+read burst:
// the bytes each read returned, the wire traffic, and the shared-memory
// slot accounting.
type burstOutcome struct {
	reads  [][]byte
	msgs   int64
	claims int64
}

// runBurst writes burstN distinct payloads, reads each back, and tears
// the connection down. batch <= 1 issues each command with its own
// Submit (classic one-message-per-command); batch > 1 enables wire
// batching and issues the bursts through SubmitBatch.
func runBurst(t *testing.T, design Design, batch int) burstOutcome {
	t.Helper()
	const burstN = 32
	const ioSize = 4096

	tp := model.DefaultTCPTransport()
	tp.BatchSize = batch
	r := newRig(t, design, true, func(cfg *ServerConfig) { cfg.TP = tp })
	var out burstOutcome
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 64, Design: design, Region: r.region,
			TP: tp, Host: model.DefaultHost(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		writes := make([]*transport.IO, burstN)
		for i := range writes {
			data := bytes.Repeat([]byte{byte(i + 1)}, ioSize)
			writes[i] = &transport.IO{Write: true, Offset: int64(i) * ioSize, Size: ioSize, Data: data}
		}
		wfuts := submitAll(p, c, batch, writes)
		for i, f := range wfuts {
			if err := f.Wait(p).Err(); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		reads := make([]*transport.IO, burstN)
		for i := range reads {
			reads[i] = &transport.IO{Offset: int64(i) * ioSize, Size: ioSize, Data: make([]byte, ioSize)}
		}
		rfuts := submitAll(p, c, batch, reads)
		for i, f := range rfuts {
			res := f.Wait(p)
			if err := res.Err(); err != nil {
				t.Errorf("read %d: %v", i, err)
				continue
			}
			out.reads = append(out.reads, res.Data)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	out.msgs = r.link.A.MsgsSent + r.link.B.MsgsSent
	if r.region != nil {
		out.claims = r.region.Claims
	}
	return out
}

// submitAll issues the burst singly or as one batched doorbell.
func submitAll(p *sim.Proc, c *Client, batch int, ios []*transport.IO) []*sim.Future[*transport.Result] {
	if batch > 1 {
		return c.SubmitBatch(p, ios)
	}
	futs := make([]*sim.Future[*transport.Result], len(ios))
	for i, io := range ios {
		futs[i] = c.Submit(p, io)
	}
	return futs
}

// TestBatchedBurstEquivalence runs the same write+read burst singly and
// batched on every design: results must be byte-identical while the
// batched run puts strictly fewer messages on the wire (fewer doorbells
// and SHM notifies) without changing the shared-memory slot traffic.
func TestBatchedBurstEquivalence(t *testing.T) {
	designs := []Design{DesignTCP, DesignSHMBaseline, DesignSHMLockFree, DesignSHMFlowCtl, DesignSHMZeroCopy}
	for _, d := range designs {
		t.Run(fmt.Sprint(d), func(t *testing.T) {
			single := runBurst(t, d, 0)
			batched := runBurst(t, d, 8)
			if len(single.reads) != len(batched.reads) {
				t.Fatalf("read counts differ: %d vs %d", len(single.reads), len(batched.reads))
			}
			for i := range single.reads {
				want := bytes.Repeat([]byte{byte(i + 1)}, 4096)
				if !bytes.Equal(single.reads[i], want) {
					t.Fatalf("single read %d corrupted", i)
				}
				if !bytes.Equal(batched.reads[i], single.reads[i]) {
					t.Fatalf("batched read %d differs from single-submission read", i)
				}
			}
			if batched.msgs >= single.msgs {
				t.Errorf("batched run must use strictly fewer messages: %d vs %d", batched.msgs, single.msgs)
			}
			if d.UsesSHM() && batched.claims != single.claims {
				t.Errorf("slot claims changed under batching: %d vs %d", batched.claims, single.claims)
			}
		})
	}
}

// TestBatchSizeOneIsWireIdentical pins the compatibility guarantee: a
// batch depth of 0 or 1 must produce exactly the classic message
// sequence, so existing calibrations are untouched.
func TestBatchSizeOneIsWireIdentical(t *testing.T) {
	a := runBurst(t, DesignSHMZeroCopy, 0)
	b := runBurst(t, DesignSHMZeroCopy, 1)
	if a.msgs != b.msgs {
		t.Fatalf("BatchSize 1 changed the wire: %d vs %d messages", b.msgs, a.msgs)
	}
}

// TestStripedQueueOrderingAndSpread covers the striping policy at the
// transport layer: every offset deterministically maps to one member
// (read-your-write per offset), small I/Os at consecutive stripe units
// rotate across members, and a large I/O splits into per-member segments
// that reassemble byte-identically.
func TestStripedQueueOrderingAndSpread(t *testing.T) {
	const members = 4
	tp := model.DefaultTCPTransport()
	rigs := make([]*rig, members)
	// All members share one engine and target via a single rig plus
	// extra links/servers, mirroring a multi-qpair connection.
	r0 := newRig(t, DesignSHMZeroCopy, true, nil)
	rigs[0] = r0
	links := []*netsim.Link{r0.link}
	for i := 1; i < members; i++ {
		l := netsim.NewLoopLink(r0.e, model.Loopback())
		srv := NewServer(r0.e, r0.srv.Subsys(), ServerConfig{
			NQN: testNQN, Design: DesignSHMZeroCopy, Fabric: r0.fabric,
			TP: tp, Host: model.DefaultHost(),
		})
		srv.Serve(l.B)
		links = append(links, l)
	}
	r0.e.Go("app", func(p *sim.Proc) {
		qs := make([]transport.Queue, members)
		clients := make([]*Client, members)
		for i := 0; i < members; i++ {
			region, err := r0.fabric.RegionFor(DesignSHMZeroCopy, "host0", "host0", 1<<20, tp.ChunkSize, 32)
			if err != nil {
				t.Error(err)
				return
			}
			c, err := Connect(p, links[i].A, ClientConfig{
				NQN: testNQN, QueueDepth: 32, Design: DesignSHMZeroCopy, Region: region,
				TP: tp, Host: model.DefaultHost(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			qs[i], clients[i] = c, c
		}
		unit := 64 << 10
		sq := transport.NewStriped(r0.e, unit, qs...)

		// Per-offset read-your-write: write then immediately read the same
		// offset; the deterministic offset->member mapping serializes them
		// on one queue.
		for i := 0; i < 16; i++ {
			off := int64(i) * int64(unit)
			data := bytes.Repeat([]byte{byte(0xA0 + i)}, 4096)
			wf := sq.Submit(p, &transport.IO{Write: true, Offset: off, Size: 4096, Data: data})
			rf := sq.Submit(p, &transport.IO{Offset: off, Size: 4096, Data: make([]byte, 4096)})
			if err := wf.Wait(p).Err(); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
			res := rf.Wait(p)
			if err := res.Err(); err != nil {
				t.Errorf("read %d: %v", i, err)
			} else if !bytes.Equal(res.Data, data) {
				t.Errorf("offset %d: read-your-write violated", off)
			}
		}
		// Small I/Os at consecutive stripe units spread round-robin: all
		// members completed work.
		for i, c := range clients {
			if c.Completed == 0 {
				t.Errorf("member %d received no I/O: striping not spreading", i)
			}
		}

		// A large I/O spanning all stripes splits and reassembles.
		big := make([]byte, members*unit)
		for i := range big {
			big[i] = byte(i % 251)
		}
		if err := sq.Submit(p, &transport.IO{Write: true, Offset: 0, Size: len(big), Data: big}).Wait(p).Err(); err != nil {
			t.Fatalf("large write: %v", err)
		}
		back := make([]byte, len(big))
		res := sq.Submit(p, &transport.IO{Offset: 0, Size: len(back), Data: back}).Wait(p)
		if err := res.Err(); err != nil {
			t.Fatalf("large read: %v", err)
		}
		if !bytes.Equal(res.Data, big) {
			t.Fatal("large I/O did not reassemble byte-identically across stripes")
		}
		sq.Close()
		for _, c := range clients {
			c.WaitClosed(p)
		}
	})
	if err := r0.e.Run(); err != nil {
		t.Fatal(err)
	}
}
