package core

import (
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

func TestSelectChunkSize(t *testing.T) {
	cases := []struct {
		link model.LinkParams
		want int
	}{
		{model.TCP10G(), 256 << 10},
		{model.TCP25G(), 512 << 10},
		{model.TCP100G(), 1 << 20},
		{model.Loopback(), 1 << 20},
	}
	for _, tc := range cases {
		if got := SelectChunkSize(tc.link); got != tc.want {
			t.Errorf("%s: chunk %d, want %d", tc.link.Name, got, tc.want)
		}
	}
}

func TestPollPolicySwitchesWithWorkload(t *testing.T) {
	var pol pollPolicy
	// Cold start: conservative.
	if pol.budget() != pollBudgetMixed {
		t.Fatalf("cold budget %v", pol.budget())
	}
	// Pure writes: long budget.
	for i := 0; i < 200; i++ {
		pol.observe(true)
	}
	if pol.budget() != pollBudgetWrite {
		t.Fatalf("write budget %v", pol.budget())
	}
	// Flip to pure reads: short budget after the EWMA adapts.
	for i := 0; i < 200; i++ {
		pol.observe(false)
	}
	if pol.budget() != pollBudgetRead {
		t.Fatalf("read budget %v", pol.budget())
	}
	// Balanced mix: middle budget.
	for i := 0; i < 400; i++ {
		pol.observe(i%2 == 0)
	}
	if pol.budget() != pollBudgetMixed {
		t.Fatalf("mixed budget %v", pol.budget())
	}
}

// TestPollPolicyWarmCounterSaturates pins the observe() warm guard: the
// counter must stop at pollWarmSat instead of counting every command
// forever, and — the actual regression risk — the EWMA must keep
// adapting normally long after saturation. A long-lived connection that
// flips from a write-heavy phase to reads after billions of commands
// still has to converge to the read budget.
func TestPollPolicyWarmCounterSaturates(t *testing.T) {
	var pol pollPolicy
	// Drive far past the saturation point with pure writes.
	for i := 0; i < 4*pollWarmSat; i++ {
		pol.observe(true)
	}
	if pol.warm != pollWarmSat {
		t.Fatalf("warm counter %d, want saturation at %d", pol.warm, pollWarmSat)
	}
	if pol.budget() != pollBudgetWrite {
		t.Fatalf("saturated write budget %v", pol.budget())
	}
	// Post-saturation the EWMA must still carry all adaptation state:
	// a phase change to pure reads converges exactly as it does when
	// the counter is small (alpha 0.05 crosses the 0.4 threshold in
	// under 20 samples from 1.0).
	for i := 0; i < 200; i++ {
		pol.observe(false)
	}
	if pol.budget() != pollBudgetRead {
		t.Fatalf("post-saturation read budget %v: EWMA stopped adapting", pol.budget())
	}
	if pol.warm != pollWarmSat {
		t.Fatalf("warm counter moved after saturation: %d", pol.warm)
	}
}

func TestAutoChunkNegotiatedAtConnect(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		tp := model.DefaultTCPTransport()
		tp.AutoChunk = true
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 8, Design: DesignSHMZeroCopy, Region: r.region,
			TP: tp, Host: model.DefaultHost(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// The rig's control link is the loopback path: 1 MiB expected.
		if c.wire.cfg.TP.ChunkSize != 1<<20 {
			t.Errorf("auto chunk %d, want 1MiB", c.wire.cfg.TP.ChunkSize)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAutoBusyPollAdaptsOnLiveTraffic(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		tp := model.DefaultTCPTransport()
		tp.AutoBusyPoll = true
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 8, Design: DesignSHMZeroCopy, Region: r.region,
			TP: tp, Host: model.DefaultHost(),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * 4096, Size: 4096}).Wait(p)
		}
		if got := c.wire.PollBudget(); got != 100*time.Microsecond {
			t.Errorf("after writes budget %v, want 100us", got)
		}
		for i := 0; i < 128; i++ {
			c.Submit(p, &transport.IO{Offset: int64(i) * 4096, Size: 4096}).Wait(p)
		}
		if got := c.wire.PollBudget(); got != 25*time.Microsecond {
			t.Errorf("after reads budget %v, want 25us", got)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}
