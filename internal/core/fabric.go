package core

import (
	"fmt"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
)

// Fabric is the Locality Awareness component: the stand-in for the
// hypervisor / resource manager (Kubernetes, OpenStack, SLURM) that
// hotplugs an IVSHMEM/ICSHMEM region between a client VM and a target VM
// on the same physical host and announces it to both sides (§4.2).
//
// Experiments place clients and targets on named hosts; Provision only
// yields a region when both sides are co-located, which is exactly the
// locality check the Connection Manager performs during the handshake.
type Fabric struct {
	e       *sim.Engine
	params  model.SHMParams
	nextKey uint64
	regions map[uint64]*shm.Region
	tel     *telemetry.Sink

	failErr error // when set, Provision fails with this error (fault injection)
}

// NewFabric creates the registry.
func NewFabric(e *sim.Engine, params model.SHMParams) *Fabric {
	return &Fabric{e: e, params: params, nextKey: 1, regions: make(map[uint64]*shm.Region), tel: telemetry.Disabled}
}

// Params returns the shared-memory parameters.
func (f *Fabric) Params() model.SHMParams { return f.params }

// AttachTelemetry routes provisioning metrics into s, and propagates s
// to every region provisioned afterwards. A nil sink disables.
func (f *Fabric) AttachTelemetry(s *telemetry.Sink) {
	if s == nil {
		s = telemetry.Disabled
	}
	f.tel = s
}

// FailProvisions forces every subsequent Provision call to fail with
// err (nil restores normal behavior). It models the resource manager
// refusing or botching the IVSHMEM hotplug — the failure mode the
// connect handshake must degrade from, not crash on.
func (f *Fabric) FailProvisions(err error) { f.failErr = err }

// Provision allocates a dedicated region for one client-target pair when
// they share a host. It returns (nil, nil) for remote pairs — the
// adaptive fabric then stays on the TCP path — and (nil, error) when the
// hotplug itself fails, which callers must treat as a degraded TCP
// fallback rather than a fatal condition. Each co-located pair gets its
// own region (the paper's security posture: tenants never share a
// mapping).
func (f *Fabric) Provision(clientHost, targetHost string, slotSize, slotCount int, mode shm.Mode, policy shm.ClaimPolicy) (*shm.Region, error) {
	if clientHost == "" || clientHost != targetHost {
		return nil, nil
	}
	if f.failErr != nil {
		f.tel.Inc(telemetry.CtrProvisionFailed)
		f.tel.Trace(int64(f.e.Now()), telemetry.EvProvisionFailed, 0, "tcp", "injected")
		return nil, fmt.Errorf("core: provision %s: %w", clientHost, f.failErr)
	}
	key := f.nextKey
	f.nextKey++
	r, err := shm.NewRegion(f.e, key, slotSize, slotCount, f.params, mode, policy)
	if err != nil {
		f.tel.Inc(telemetry.CtrProvisionFailed)
		f.tel.Trace(int64(f.e.Now()), telemetry.EvProvisionFailed, 0, "tcp", "geometry")
		return nil, fmt.Errorf("core: provision %s: %w", clientHost, err)
	}
	r.AttachTelemetry(f.tel)
	f.regions[key] = r
	f.tel.Inc(telemetry.CtrProvisionOK)
	return r, nil
}

// Lookup resolves a region key announced during the handshake, as the
// peer side does when mapping the same physical pages.
func (f *Fabric) Lookup(key uint64) (*shm.Region, bool) {
	r, ok := f.regions[key]
	return r, ok
}

// RegionFor picks the slot geometry a design needs and provisions a
// region: chunk-sized slots for the chunked designs, whole-I/O slots
// otherwise. maxIO is the largest I/O the workload will issue; depth the
// queue depth (slots per direction, per the paper's slot-per-queue-entry
// layout). A (nil, nil) result means the pair stays on TCP by design or
// placement; a non-nil error means SHM was wanted but could not be
// provisioned, and the caller should degrade to TCP.
func (f *Fabric) RegionFor(design Design, clientHost, targetHost string, maxIO, chunk, depth int) (*shm.Region, error) {
	if !design.UsesSHM() {
		return nil, nil
	}
	slotSize := maxIO
	slotCount := depth
	if design.Chunked() {
		slotSize = chunk
		// Chunked transfers claim several slots per I/O; keep the same
		// total footprint as one whole-I/O slot per queue entry.
		n := (maxIO + chunk - 1) / chunk
		slotCount = depth * n
	}
	return f.Provision(clientHost, targetHost, slotSize, slotCount, design.LockMode(), shm.ClaimRoundRobin)
}
