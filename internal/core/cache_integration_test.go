package core

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/cache"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/ssd"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

// newCachedRig mirrors newRig with a target-side block cache fronting the
// SSD: retained data end to end, the crash hook wired the way oaf and
// production targets wire it (Crash accounts unflushed dirty lines as
// lost), and the cache handle returned for stats and backing access.
func newCachedRig(t *testing.T, design Design, mode cache.Mode, mut func(*ServerConfig)) (*rig, *cache.Cache) {
	t.Helper()
	e := sim.NewEngine(5)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	bd := bdev.NewSimSSD(e, "nvme0", 1<<30, ssdParams, true, transport.BlockSize)
	ca := cache.New(e, bd, cache.Config{Bytes: 8 << 20, Mode: mode, Retain: true})
	if _, err := sub.AddNamespace(1, ca); err != nil {
		t.Fatal(err)
	}
	fabric := NewFabric(e, model.DefaultSHM())
	cfg := ServerConfig{
		NQN: testNQN, Design: design, Fabric: fabric,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		OnCrash: func() { ca.LoseDirty() },
	}
	if mut != nil {
		mut(&cfg)
	}
	srv := NewServer(e, tgt, cfg)
	link := netsim.NewLoopLink(e, model.Loopback())
	srv.Serve(link.B)
	region, _ := fabric.RegionFor(design, "host0", "host0", 1<<20, cfg.TP.ChunkSize, 32)
	return &rig{e: e, fabric: fabric, srv: srv, link: link, region: region}, ca
}

// TestPoisonedPoolRoundTripThroughCachedTarget composes the cache with
// the poison-on-free mempool check: payloads staged through the target's
// 0xDB-poisoned pool, served via the cache (small hot lines hit DRAM,
// 512 KiB streams bypass with the dirty overlay), must come back
// byte-identical on every design's data path.
func TestPoisonedPoolRoundTripThroughCachedTarget(t *testing.T) {
	for _, design := range []Design{DesignTCP, DesignSHMZeroCopy} {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			r, ca := newCachedRig(t, design, cache.WriteBack, func(cfg *ServerConfig) {
				cfg.PoisonPool = true
			})
			if design == DesignTCP {
				r.region = nil
			}
			large := make([]byte, 512<<10)
			for i := range large {
				large[i] = byte(i*11 + 5)
			}
			small := make([]byte, 4096)
			for i := range small {
				small[i] = byte(i*7 + 3)
			}
			r.e.Go("app", func(p *sim.Proc) {
				c := r.connect(t, p, design, 8)
				for round := 0; round < 3; round++ {
					// Large stream: bypasses the cache in both directions.
					res := c.Submit(p, &transport.IO{Write: true, Offset: 1 << 20, Size: len(large), Data: large}).Wait(p)
					if res.Err() != nil {
						t.Fatalf("round %d large write: %v", round, res.Err())
					}
					res = c.Submit(p, &transport.IO{Offset: 1 << 20, Size: len(large), Data: make([]byte, len(large))}).Wait(p)
					if res.Err() != nil {
						t.Fatalf("round %d large read: %v", round, res.Err())
					}
					if !bytes.Equal(res.Data, large) {
						t.Fatalf("round %d: large payload corrupted through cached target", round)
					}
					// Small hot line: absorbed write-back, then served from DRAM.
					res = c.Submit(p, &transport.IO{Write: true, Offset: 8192, Size: len(small), Data: small}).Wait(p)
					if res.Err() != nil {
						t.Fatalf("round %d small write: %v", round, res.Err())
					}
					res = c.Submit(p, &transport.IO{Offset: 8192, Size: len(small), Data: make([]byte, len(small))}).Wait(p)
					if res.Err() != nil {
						t.Fatalf("round %d small read: %v", round, res.Err())
					}
					if !bytes.Equal(res.Data, small) {
						t.Fatalf("round %d: cached payload corrupted", round)
					}
				}
				// Drain dirt so nothing is lost when the rig is torn down.
				if res := c.Submit(p, &transport.IO{Flush: true}).Wait(p); res.Err() != nil {
					t.Fatalf("flush: %v", res.Err())
				}
				c.Close()
				c.WaitClosed(p)
			})
			if err := r.e.Run(); err != nil {
				t.Fatal(err)
			}
			if r.srv.Pool().InUse() != 0 {
				t.Fatalf("pool leak: %d elements in use", r.srv.Pool().InUse())
			}
			st := ca.Stats()
			if st.Hits == 0 {
				t.Error("hot line never hit the cache")
			}
			if st.Bypasses == 0 {
				t.Error("512 KiB stream never bypassed the cache")
			}
			if st.DirtyBytes != 0 {
				t.Errorf("flush left %d dirty bytes", st.DirtyBytes)
			}
		})
	}
}

// TestFlushBarrierDrainsDirtyOverFabric pins the durability contract end
// to end: an NVMe flush issued over the adaptive fabric returns only
// after every write-back line reached the backing SSD — verified by
// reading the bytes straight off the backing device afterwards.
func TestFlushBarrierDrainsDirtyOverFabric(t *testing.T) {
	r, ca := newCachedRig(t, DesignSHMZeroCopy, cache.WriteBack, nil)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i*13 + 1)
	}
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 8)
		for i := 0; i < 16; i++ {
			res := c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * 4096, Size: 4096, Data: payload}).Wait(p)
			if res.Err() != nil {
				t.Fatalf("write %d: %v", i, res.Err())
			}
		}
		if ca.Stats().DirtyBytes == 0 {
			t.Fatal("write-back absorbed nothing: dirty bytes is zero before the barrier")
		}
		if res := c.Submit(p, &transport.IO{Flush: true}).Wait(p); res.Err() != nil {
			t.Fatalf("flush: %v", res.Err())
		}
		if got := ca.Stats().DirtyBytes; got != 0 {
			t.Errorf("flush returned with %d dirty bytes outstanding", got)
		}
		// The bytes must now be on the backing device itself, not just in
		// cache DRAM.
		back := ca.Backing().Submit(&ssd.Request{Op: ssd.OpRead, Offset: 0, Size: 4096}).Wait(p)
		if back.Err != nil {
			t.Fatalf("backing read: %v", back.Err)
		}
		if !bytes.Equal(back.Data, payload) {
			t.Error("backing device missing flushed bytes after the barrier")
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashLosesDirtyAndFlushReportsWriteFault is the crash-correctness
// contract over the fabric: a target crash with unflushed write-back
// lines must surface as a typed write fault on the host's next flush —
// never a silent success — and the condition reports exactly once.
func TestCrashLosesDirtyAndFlushReportsWriteFault(t *testing.T) {
	r, ca := newCachedRig(t, DesignTCP, cache.WriteBack, nil)
	r.region = nil
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 8, Design: DesignTCP,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
			CommandTimeout: 1500 * time.Microsecond,
			MaxRetries:     10,
			RetryBackoff:   200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			res := c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * 4096, Size: 4096, Data: payload}).Wait(p)
			if res.Err() != nil {
				t.Fatalf("write %d: %v", i, res.Err())
			}
		}
		if ca.Stats().DirtyBytes == 0 {
			t.Fatal("no dirty lines to lose")
		}
		// Target process dies with the lines still dirty, then comes back.
		r.srv.Crash()
		r.srv.Restart()
		if ca.Stats().DirtyBytes != 0 {
			t.Fatal("crash hook did not drop dirty lines")
		}
		// The host's durability barrier must learn about the loss.
		res := c.Submit(p, &transport.IO{Flush: true}).Wait(p)
		if res.Status != nvme.StatusWriteFault {
			t.Fatalf("flush after crash: status %v, want write fault", res.Status)
		}
		// Reported once: the next barrier on a clean cache succeeds.
		if res := c.Submit(p, &transport.IO{Flush: true}).Wait(p); res.Err() != nil {
			t.Errorf("second flush: %v", res.Err())
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if ca.Stats().LostLines != 8 {
		t.Errorf("lost lines %d, want 8", ca.Stats().LostLines)
	}
}
