// Package core implements NVMe-over-Adaptive-Fabric (NVMe-oAF), the
// paper's primary contribution: a transport whose control path always
// travels over TCP while the data path adaptively uses an optimized
// shared-memory channel when client and target are co-located, falling
// back to the optimized TCP path otherwise (§4).
//
// The package contains the three architectural components of Figure 4 —
// the Connection Manager (handshake + adaptive-fabric negotiation), the
// Buffer Manager (shared-memory slots on the client, DPDK-style pools on
// the target), and Locality Awareness (the region registry standing in
// for the hypervisor/resource-manager hotplug of IVSHMEM/ICSHMEM) — plus
// the four successive shared-memory designs of the Fig 8 ablation and the
// TCP-channel optimizations (adaptive chunk size, busy poll).
package core

import "nvmeoaf/internal/shm"

// Design selects the data-path design, in the order of the paper's Fig 8
// ablation.
type Design int

const (
	// DesignTCP uses the (optimized) NVMe/TCP path even intra-node; it is
	// also what every design falls back to when no shared memory exists.
	DesignTCP Design = iota
	// DesignSHMBaseline is the naive shared-memory channel: a region
	// lock guards every access, transfers move at chunk granularity with
	// a notification per chunk, and writes keep the conservative R2T
	// flow control.
	DesignSHMBaseline
	// DesignSHMLockFree replaces the region lock with the lock-free
	// double-buffer slot scheme (§4.4.1); flow control unchanged.
	DesignSHMLockFree
	// DesignSHMFlowCtl adds shared-memory flow control (§4.4.2): slots
	// span the whole I/O, one notification replaces the per-chunk train,
	// and writes skip the R2T round trip entirely (in-capsule-style for
	// any size).
	DesignSHMFlowCtl
	// DesignSHMZeroCopy additionally allocates the application buffers
	// inside the shared region (§4.4.3): the client-side copy disappears
	// on both writes (fill in place) and reads (consume in place). This
	// is the "SHM-0-copy" configuration used for all headline results.
	DesignSHMZeroCopy
)

func (d Design) String() string {
	switch d {
	case DesignTCP:
		return "tcp"
	case DesignSHMBaseline:
		return "shm-baseline"
	case DesignSHMLockFree:
		return "shm-lock-free"
	case DesignSHMFlowCtl:
		return "shm-flow-ctl"
	case DesignSHMZeroCopy:
		return "shm-0-copy"
	default:
		return "design(?)"
	}
}

// UsesSHM reports whether the design moves payloads over shared memory.
func (d Design) UsesSHM() bool { return d != DesignTCP }

// Chunked reports whether shared-memory transfers move at chunk
// granularity with per-chunk notifications (the pre-flow-control
// designs).
func (d Design) Chunked() bool { return d == DesignSHMBaseline || d == DesignSHMLockFree }

// LockMode returns the region concurrency mode for this design.
func (d Design) LockMode() shm.Mode {
	if d == DesignSHMBaseline {
		return shm.ModeLocked
	}
	return shm.ModeLockFree
}

// ZeroCopy reports whether client buffers live in the shared region.
func (d Design) ZeroCopy() bool { return d == DesignSHMZeroCopy }

// ConservativeWrites reports whether writes still need the R2T exchange.
func (d Design) ConservativeWrites() bool { return d.Chunked() }
