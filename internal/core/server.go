package core

import (
	"sort"
	"time"

	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// ServerConfig configures the adaptive-fabric transport of one target.
type ServerConfig struct {
	// NQN selects the served subsystem.
	NQN string
	// Design must match the client's shared-memory design (negotiated
	// deployments run one design fleet-wide; the ablation harness sets
	// both sides).
	Design Design
	// Fabric resolves shared-memory region keys during the locality
	// check.
	Fabric *Fabric
	// TP holds protocol knobs; DataBuffers chunk-sized buffers form the
	// DPDK-style data pool.
	TP model.TCPTransportParams
	// Host holds target software costs.
	Host model.HostParams
	// KATO is the keep-alive timeout: a connection silent for longer is
	// torn down and its resources reclaimed (0 disables the watchdog).
	KATO time.Duration
	// MaxBufferWaiters bounds commands parked for pool buffers; beyond
	// it the server sheds load with a retryable typed error instead of
	// queueing without bound (0 = unbounded).
	MaxBufferWaiters int
	// PoisonPool fills freed data-pool elements with mempool.PoisonByte
	// so stale reads of returned buffers surface as corruption in
	// data-integrity tests instead of silently passing.
	PoisonPool bool
	// Telemetry receives connection, shedding, and keep-alive counters.
	// Nil means disabled.
	Telemetry *telemetry.Sink
	// QoS is the target-side per-tenant admission shaper (nil = off).
	QoS *qos.Shaper
	// OnCrash runs when Crash tears the target down, before connections
	// drop — the hook a write-back bdev cache uses to account its
	// unflushed dirty lines as lost.
	OnCrash func()
}

// Server is the NVMe-oAF transport of one target: the session engine
// drives its connections; this file binds the adaptive shared-memory
// data path (locality check, slot transfers, mid-stream failover).
type Server struct {
	*session.Target
	cfg  ServerConfig
	pool *mempool.Pool

	// SHMConns counts connections that negotiated shared memory.
	SHMConns int64
}

// NewServer creates the adaptive-fabric transport for tgt.
func NewServer(e *sim.Engine, tgt *target.Target, cfg ServerConfig) *Server {
	if cfg.TP.ChunkSize <= 0 {
		cfg.TP = model.DefaultTCPTransport()
	}
	s := &Server{
		cfg:  cfg,
		pool: mempool.New("oaf-data/"+cfg.NQN, cfg.TP.ChunkSize, cfg.TP.DataBuffers),
	}
	s.pool.SetPoison(cfg.PoisonPool)
	s.Target = session.NewTarget(e, tgt, session.TargetConfig{
		Label:            "oaf",
		NQN:              cfg.NQN,
		ChunkSize:        cfg.TP.ChunkSize,
		BatchSize:        cfg.TP.BatchSize,
		BusyPoll:         cfg.TP.BusyPoll,
		KATO:             cfg.KATO,
		MaxBufferWaiters: cfg.MaxBufferWaiters,
		InterruptWakeups: true,
		Pool:             s.pool,
		Telemetry:        cfg.Telemetry,
		QoS:              cfg.QoS,
		OnCrash:          cfg.OnCrash,
	}, (*oafTargetWire)(s))
	return s
}

// Pool exposes the data buffer pool.
func (s *Server) Pool() *mempool.Pool { return s.pool }

// oafTargetWire binds the engine's connections to the adaptive data
// path.
type oafTargetWire Server

func (s *oafTargetWire) NewConn(c *session.Conn) session.ConnWire {
	return &oafConnWire{
		s:        (*Server)(s),
		c:        c,
		readAcks: make(map[uint16]*sim.Queue[struct{}]),
	}
}

// oafConnWire is the per-connection adaptive wire: the Connection
// Manager's locality check on handshake, reads and writes through
// shared-memory slots when negotiated, TCP otherwise, and mid-stream
// failover when the region is revoked.
type oafConnWire struct {
	s      *Server
	c      *session.Conn
	region *shm.Region // non-nil after a successful locality check
	// readAcks routes the client's per-chunk acknowledgements to the
	// read worker driving a conservative chunked transfer.
	readAcks map[uint16]*sim.Queue[struct{}]
}

// OnICReq is the Connection Manager's locality check: the client's
// proposed region key must resolve in the fabric registry (i.e. the
// helper process hotplugged the same region on this host). A reconnect
// after crash or KATO teardown re-runs the same negotiation.
func (w *oafConnWire) OnICReq(req *pdu.ICReq) {
	tel := w.c.Target().Telemetry()
	resp := &pdu.ICResp{PFV: req.PFV, CPDA: 4, MaxH2CData: uint32(w.s.cfg.TP.ChunkSize)}
	if req.AFCapab && req.SHMKey != 0 && w.s.cfg.Fabric != nil && w.s.cfg.Design.UsesSHM() {
		if region, ok := w.s.cfg.Fabric.Lookup(req.SHMKey); ok && !region.Revoked() {
			w.region = region
			w.s.SHMConns++
			tel.Inc(telemetry.CtrSrvSHMConns)
			resp.AFEnabled = true
			resp.SHMKey = region.Key
			resp.SHMSize = uint64(region.Size())
			resp.SlotSize = uint32(region.SlotSize)
			resp.SlotCount = uint32(region.SlotCount)
		}
	}
	if !resp.AFEnabled {
		tel.Inc(telemetry.CtrSrvTCPConns)
	}
	w.c.Post(nil, resp)
}

func (w *oafConnWire) TrType() uint8 { return nvme.TrTypeAdaptive }

func (w *oafConnWire) PreLoop() {
	if w.region != nil && w.region.Revoked() {
		w.onRegionRevoked()
	}
}

// onRegionRevoked handles mid-stream shared-memory revocation on the
// target side: every write whose payload was (or would be) moving
// through the region fails with a retryable typed error — the client
// re-drives them over the TCP data path — and the connection stops using
// shared memory for reads.
func (w *oafConnWire) onRegionRevoked() {
	for _, cid := range session.SortedWriteCIDs(w.c.Writes) {
		ctx := w.c.Writes[cid]
		session.FreeBufs(ctx.Bufs)
		delete(w.c.Writes, cid)
		w.c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cid, Status: nvme.StatusDataTransferErr}})
	}
	for _, cid := range sortedAckCIDs(w.readAcks) {
		w.readAcks[cid].Close()
		delete(w.readAcks, cid)
	}
	w.region = nil
}

func sortedAckCIDs(m map[uint16]*sim.Queue[struct{}]) []uint16 {
	cids := make([]uint16, 0, len(m))
	for cid := range m {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	return cids
}

// DispatchRead serves a read: over shared memory when negotiated (payload
// copied once from the DPDK buffer into C2H slots), over TCP otherwise.
func (w *oafConnWire) DispatchRead(cmd nvme.Command, transit time.Duration) {
	w.c.StartRead(cmd, transit, func(p *sim.Proc, res target.ExecResult, size int, bufs []*mempool.Buf) {
		region := w.region
		if region != nil && !region.Revoked() && (w.s.cfg.Design.Chunked() || size <= region.SlotSize) {
			w.sendReadOverSHM(p, region, cmd, size, res, transit, bufs)
			return
		}
		w.c.SendReadOverTCP(cmd, size, res, transit, bufs)
	})
}

func (w *oafConnWire) DispatchWrite(cap *pdu.CapsuleCmd, size int, transit time.Duration) {
	cmd := cap.Cmd
	if cmd.Flags&session.CmdFlagSHMSlot != 0 {
		w.startSHMWrite(cmd, size, transit)
		return
	}
	inCap := len(cap.Data)
	if inCap == 0 {
		inCap = cap.VirtualLen
	}
	if inCap > 0 {
		// In-capsule flow: one message carried command and payload.
		w.c.ExecWrite(cmd, size, cap.Data, transit, nil, 0)
		return
	}
	w.c.StartConservativeWrite(cmd, size, transit)
}

func (w *oafConnWire) HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool {
	switch v := u.(type) {
	case *pdu.SHMNotify:
		w.onSHMNotify(p, v, transit)
	case *pdu.SHMRelease:
		if ackQ, ok := w.readAcks[v.CID]; ok {
			ackQ.TryPut(struct{}{})
		}
	default:
		return false
	}
	return true
}

// Teardown closes per-command ack queues so blocked read workers abort
// instead of parking forever.
func (w *oafConnWire) Teardown() {
	for _, cid := range sortedAckCIDs(w.readAcks) {
		w.readAcks[cid].Close()
		delete(w.readAcks, cid)
	}
}

// startSHMWrite serves a write whose payload sits in a named slot: copy
// it into a DPDK buffer (mandatory for device DMA, §4.4.3), release the
// slot, execute. A revoked or missing region fails the command with a
// retryable typed error; the client re-drives it over TCP.
func (w *oafConnWire) startSHMWrite(cmd nvme.Command, size int, transit time.Duration) {
	need := transport.Chunks(size, w.s.cfg.TP.ChunkSize)
	slotIdx := uint32(cmd.PRP1)
	c := w.c
	c.WithBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		c.Target().Engine().Go("oaf-shm-write-worker", func(p *sim.Proc) {
			region := w.region
			if region == nil {
				session.FreeBufs(bufs)
				c.Kick()
				c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusDataTransferErr}})
				return
			}
			slot, err := region.Open(shm.H2C, slotIdx)
			if err != nil {
				// Revoked mid-stream, or the slot was reclaimed after a
				// client-side timeout: the payload is unreachable.
				session.FreeBufs(bufs)
				c.Kick()
				c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusDataTransferErr}})
				return
			}
			var data []byte
			if cmd.PRP2 == 1 { // client placed real bytes in the slot
				data = make([]byte, size)
			}
			copyStart := p.Now()
			slot.CopyOut(p, data, size)
			copyTime := p.Now().Sub(copyStart)
			slot.TryRelease() // slot credit returns through shared state
			res := c.Target().Subsys().ExecuteAs(p, w.s.cfg.NQN, c.Tenant(), cmd, data)
			session.FreeBufs(bufs)
			c.Kick()
			c.Post(nil, c.Resp(res, transit, copyTime))
		})
	})
}

// onSHMNotify consumes a chunk of write payload from a shared-memory
// slot (the chunked designs' data path). The copy-out runs on the
// connection handler — the single target core serializing these copies is
// part of what the lock-free + flow-control optimizations relieve.
func (w *oafConnWire) onSHMNotify(p *sim.Proc, n *pdu.SHMNotify, transit time.Duration) {
	c := w.c
	ctx, ok := c.Writes[n.CID]
	if !ok {
		c.NoteStale()
		return
	}
	region := w.region
	if region == nil {
		return // revocation handler already failed this write
	}
	slot, err := region.Open(shm.H2C, n.Slot)
	if err != nil {
		// The slot (or the whole region) is gone: fail the write with a
		// retryable error so the client re-drives it over TCP.
		session.FreeBufs(ctx.Bufs)
		delete(c.Writes, n.CID)
		c.Kick()
		c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: n.CID, Status: nvme.StatusDataTransferErr}})
		return
	}
	var dst, tmp []byte
	if ctx.Real {
		// Copy straight into the covering pool element when the chunk
		// doesn't straddle one; bounce through a scratch buffer otherwise.
		dst = mempool.Span(ctx.Bufs, int(n.Offset), int(n.Length))
		if dst == nil {
			tmp = make([]byte, n.Length)
			dst = tmp
		}
	}
	copyStart := p.Now()
	slot.CopyOut(p, dst, int(n.Length))
	ctx.CopyTime += p.Now().Sub(copyStart)
	if ctx.Real {
		if tmp != nil {
			mempool.Scatter(ctx.Bufs, int(n.Offset), tmp)
		}
		ctx.Staged = true
	}
	slot.TryRelease()
	ctx.Received += int(n.Length)
	ctx.Comm += transit
	if ctx.Received >= ctx.Size {
		delete(c.Writes, n.CID)
		c.ExecWrite(ctx.Cmd, ctx.Size, ctx.Gather(), ctx.Comm, ctx.Bufs, ctx.CopyTime)
		return
	}
	// Conservative flow control: acknowledge so the client sends the
	// next chunk.
	c.Post(nil, &pdu.SHMRelease{CID: n.CID, Slot: n.Slot})
}

// sendReadOverSHM moves the payload through C2H slots: per-chunk slots
// and notifications for the chunked designs, one whole-I/O slot and a
// single notification under shared-memory flow control. If the region is
// revoked mid-stream — even while blocked waiting for a slot credit —
// the transfer fails over to the TCP data path: the adaptive selection
// of §4.1 extended from placement to failure.
func (w *oafConnWire) sendReadOverSHM(p *sim.Proc, region *shm.Region, cmd nvme.Command, size int, res target.ExecResult, transit time.Duration, bufs []*mempool.Buf) {
	c := w.c
	if !w.s.cfg.Design.Chunked() {
		// Shared-memory flow control: one whole-I/O slot, one
		// notification batched with the response.
		slot := region.Claim(p, shm.C2H)
		if slot == nil {
			c.SendReadOverTCP(cmd, size, res, transit, bufs)
			return
		}
		t0 := p.Now()
		slot.CopyIn(p, res.Data, size)
		copyTime := p.Now().Sub(t0)
		session.FreeBufs(bufs)
		c.Kick()
		c.Post(nil,
			&pdu.SHMNotify{CID: cmd.CID, Slot: slot.Index, Offset: 0, Length: uint32(size), Last: true},
			c.Resp(res, transit, copyTime))
		return
	}
	// Chunked conservative transfer: one slot + notification per chunk,
	// stop-and-wait on the client's acknowledgement — the naive flow the
	// shared-memory flow control replaces (§4.4.2).
	ackQ := sim.NewQueue[struct{}](c.Target().Engine(), 0)
	if old, ok := w.readAcks[cmd.CID]; ok {
		// A retried read reused this CID while the abandoned attempt's
		// worker is still parked on its ack queue: close it so that worker
		// aborts and frees its buffers.
		old.Close()
	}
	w.readAcks[cmd.CID] = ackQ
	var copyTime time.Duration
	chunk := region.SlotSize
	for off := 0; off < size; off += chunk {
		n := chunk
		if size-off < n {
			n = size - off
		}
		slot := region.Claim(p, shm.C2H)
		if slot == nil {
			// Region revoked mid-transfer: fail over, resending the
			// whole payload over TCP (the client restarts reassembly).
			if w.readAcks[cmd.CID] == ackQ {
				delete(w.readAcks, cmd.CID)
			}
			c.SendReadOverTCP(cmd, size, res, transit, bufs)
			return
		}
		var src []byte
		if res.Data != nil {
			src = res.Data[off : off+n]
		}
		t0 := p.Now()
		slot.CopyIn(p, src, n)
		copyTime += p.Now().Sub(t0)
		last := off+n >= size
		nf := &pdu.SHMNotify{CID: cmd.CID, Slot: slot.Index, Offset: uint64(off), Length: uint32(n), Last: last}
		if last {
			c.Post(nil, nf, c.Resp(res, transit, copyTime))
		} else {
			c.Post(nil, nf)
			if _, ok := ackQ.Get(p); !ok {
				// Teardown, revocation, or a CID-reusing retry closed the
				// ack queue: abandon the transfer, reclaim the buffers.
				if w.readAcks[cmd.CID] == ackQ {
					delete(w.readAcks, cmd.CID)
				}
				session.FreeBufs(bufs)
				c.Kick()
				return
			}
		}
	}
	if w.readAcks[cmd.CID] == ackQ {
		delete(w.readAcks, cmd.CID)
	}
	session.FreeBufs(bufs)
	c.Kick()
}
