package core

import (
	"fmt"
	"sort"
	"time"

	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// ServerConfig configures the adaptive-fabric transport of one target.
type ServerConfig struct {
	// NQN selects the served subsystem.
	NQN string
	// Design must match the client's shared-memory design (negotiated
	// deployments run one design fleet-wide; the ablation harness sets
	// both sides).
	Design Design
	// Fabric resolves shared-memory region keys during the locality
	// check.
	Fabric *Fabric
	// TP holds protocol knobs; DataBuffers chunk-sized buffers form the
	// DPDK-style data pool.
	TP model.TCPTransportParams
	// Host holds target software costs.
	Host model.HostParams
	// KATO is the keep-alive timeout: a connection silent for longer is
	// torn down and its resources reclaimed (0 disables the watchdog).
	KATO time.Duration
	// MaxBufferWaiters bounds commands parked for pool buffers; beyond
	// it the server sheds load with a retryable typed error instead of
	// queueing without bound (0 = unbounded).
	MaxBufferWaiters int
	// PoisonPool fills freed data-pool elements with mempool.PoisonByte
	// so stale reads of returned buffers surface as corruption in
	// data-integrity tests instead of silently passing.
	PoisonPool bool
	// Telemetry receives connection, shedding, and keep-alive counters.
	// Nil means disabled.
	Telemetry *telemetry.Sink
	// OnCrash runs when Crash tears the target down, before connections
	// drop — the hook a write-back bdev cache uses to account its
	// unflushed dirty lines as lost.
	OnCrash func()
}

// Server is the NVMe-oAF transport of one target.
type Server struct {
	e    *sim.Engine
	tgt  *target.Target
	cfg  ServerConfig
	pool *mempool.Pool
	tel  *telemetry.Sink

	eps     []*netsim.Endpoint
	conns   []*srvConn
	crashed bool

	// BufferWaits counts commands that waited for DPDK pool buffers.
	BufferWaits int64
	// SHMConns counts connections that negotiated shared memory.
	SHMConns int64
	// KAExpirations counts connections torn down by the KATO watchdog.
	KAExpirations int64
	// Shed counts commands rejected with a retryable error under pool
	// exhaustion.
	Shed int64
	// StaleMsgs counts PDUs for unknown commands (late data after a
	// client-side timeout or a teardown), dropped instead of panicking.
	StaleMsgs int64
}

// NewServer creates the adaptive-fabric transport for tgt.
func NewServer(e *sim.Engine, tgt *target.Target, cfg ServerConfig) *Server {
	if cfg.TP.ChunkSize <= 0 {
		cfg.TP = model.DefaultTCPTransport()
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.Disabled
	}
	s := &Server{
		e:    e,
		tgt:  tgt,
		cfg:  cfg,
		pool: mempool.New("oaf-data/"+cfg.NQN, cfg.TP.ChunkSize, cfg.TP.DataBuffers),
		tel:  cfg.Telemetry,
	}
	s.pool.SetPoison(cfg.PoisonPool)
	return s
}

// Pool exposes the data buffer pool.
func (s *Server) Pool() *mempool.Pool { return s.pool }

// Serve starts a connection handler on ep.
func (s *Server) Serve(ep *netsim.Endpoint) {
	s.eps = append(s.eps, ep)
	s.startConn(ep)
}

func (s *Server) startConn(ep *netsim.Endpoint) {
	conn := &srvConn{
		srv:      s,
		ep:       ep,
		txQ:      sim.NewQueue[*txBatch](s.e, 0),
		kick:     sim.NewSignal(s.e),
		writes:   make(map[uint16]*writeCtx),
		readAcks: make(map[uint16]*sim.Queue[struct{}]),
		waits:    sim.NewQueue[*allocWait](s.e, 0),
		lastSeen: s.e.Now(),
	}
	s.conns = append(s.conns, conn)
	s.e.GoDaemon("oaf-server-conn", conn.run)
	if s.cfg.KATO > 0 {
		s.e.GoDaemon("oaf-kato-watchdog", conn.watchdog)
	}
}

// Crash simulates target-process death: every connection drops with all
// in-flight state (no goodbye messages), buffers return to the pool, and
// nothing is served until Restart. Clients recover through deadlines,
// retries, and reconnect.
func (s *Server) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	if s.cfg.OnCrash != nil {
		s.cfg.OnCrash()
	}
	for _, c := range s.conns {
		c.closed = true
		c.kick.Fire()
	}
}

// Crashed reports whether the target is down.
func (s *Server) Crashed() bool { return s.crashed }

// Restart brings a crashed target back: a fresh connection handler
// starts listening on every served endpoint.
func (s *Server) Restart() {
	if !s.crashed {
		return
	}
	s.crashed = false
	s.conns = nil
	for _, ep := range s.eps {
		s.startConn(ep)
	}
}

type txBatch struct {
	pdus  []pdu.PDU
	after func()
}

type writeCtx struct {
	cmd      nvme.Command
	size     int
	received int
	real     bool // client payload is real bytes, not modeled
	// staged marks real payload scattered into the pool buffers below
	// (the DPDK path: received bytes land in pool elements, §4.4.3).
	staged   bool
	bufs     []*mempool.Buf
	comm     time.Duration
	copyTime time.Duration
}

// gather materializes the staged payload into one contiguous buffer for
// the device execute; nil when the write carried no real bytes.
func (ctx *writeCtx) gather() []byte {
	if !ctx.staged {
		return nil
	}
	return mempool.Gather(ctx.bufs, ctx.size)
}

type allocWait struct {
	cid   uint16
	need  int
	since sim.Time
	run   func(bufs []*mempool.Buf)
}

type srvConn struct {
	srv    *Server
	ep     *netsim.Endpoint
	txQ    *sim.Queue[*txBatch]
	kick   *sim.Signal
	writes map[uint16]*writeCtx
	// readAcks routes the client's per-chunk acknowledgements to the
	// read worker driving a conservative chunked transfer.
	readAcks map[uint16]*sim.Queue[struct{}]
	waits    *sim.Queue[*allocWait]
	region   *shm.Region // non-nil after a successful locality check
	lastSeen sim.Time
	closed   bool
	// Completion-reap scratch (run-loop only; reused so the coalesced
	// transmit path stays allocation-free).
	txPDUs   []pdu.PDU
	txAfters []func()
	// dead is set once the run loop exits: posts stop transmitting but
	// still run their cleanup callbacks so buffers return to the pool.
	dead bool
	// Expired reports a keep-alive timeout teardown.
	Expired bool
}

// watchdog enforces the keep-alive timeout, mirroring the TCP server's:
// a connection silent for KATO is torn down and its resources reclaimed.
func (c *srvConn) watchdog(p *sim.Proc) {
	for !c.closed {
		p.Sleep(c.srv.cfg.KATO / 2)
		if c.closed {
			return
		}
		if p.Now().Sub(c.lastSeen) > c.srv.cfg.KATO {
			c.Expired = true
			c.closed = true
			c.srv.KAExpirations++
			c.srv.tel.Inc(telemetry.CtrSrvKATOExpiry)
			c.srv.tel.Trace(int64(p.Now()), telemetry.EvKATOExpired, 0, "", "watchdog")
			c.kick.Fire()
			return
		}
	}
}

func (c *srvConn) post(after func(), pdus ...pdu.PDU) {
	if c.dead {
		// The connection is gone; run the cleanup (buffer frees) so a
		// late worker completion cannot leak pool buffers.
		if after != nil {
			after()
		}
		return
	}
	c.txQ.TryPut(&txBatch{pdus: pdus, after: after})
	c.kick.Fire()
}

func (c *srvConn) run(p *sim.Proc) {
	c.ep.OnDeliver = c.kick.Fire
	for !c.closed {
		if c.region != nil && c.region.Revoked() {
			c.onRegionRevoked()
		}
		worked := false
		for {
			msg := c.ep.TryRecv(p)
			if msg == nil {
				break
			}
			c.handle(p, msg)
			worked = true
		}
		if c.drainTx(p) {
			worked = true
		}
		c.retryWaits()
		if worked {
			continue
		}
		if c.srv.cfg.TP.BusyPoll > 0 {
			if msg := c.ep.RecvPoll(p, c.srv.cfg.TP.BusyPoll); msg != nil {
				c.handle(p, msg)
				continue
			}
			p.Sleep(pollMissCPU)
		}
		c.kick.Reset()
		if c.ep.Pending() > 0 || c.txQ.Len() > 0 || c.closed {
			continue
		}
		c.kick.Wait(p)
		if c.ep.Pending() > 0 {
			c.ep.ChargeWakeup(p)
		}
	}
	c.teardown(p, !c.srv.crashed)
	// A KATO teardown leaves the endpoint live: listen again so the
	// client's automatic reconnect finds a fresh connection handler.
	if c.Expired && !c.srv.crashed {
		c.srv.startConn(c.ep)
	}
}

// drainTx flushes the transmit queue. With completion-reap coalescing
// enabled (TP.BatchSize > 1) up to BatchSize ready batches merge into
// one network message — the target-side mirror of doorbell batching:
// one per-message CPU charge and one client wakeup reap a whole train
// of completions. Every merged batch's cleanup callback still runs
// after its bytes are on the wire.
func (c *srvConn) drainTx(p *sim.Proc) bool {
	reap := 1
	if c.srv.cfg.TP.BatchSize > 1 {
		reap = c.srv.cfg.TP.BatchSize
	}
	worked := false
	for {
		batch, ok := c.txQ.TryGet()
		if !ok {
			break
		}
		worked = true
		if reap <= 1 {
			transport.SendPDUs(p, c.ep, batch.pdus...)
			c.srv.tel.Add(telemetry.CtrPDUsTx, int64(len(batch.pdus)))
			if batch.after != nil {
				batch.after()
			}
			continue
		}
		pdus := append(c.txPDUs[:0], batch.pdus...)
		afters := c.txAfters[:0]
		if batch.after != nil {
			afters = append(afters, batch.after)
		}
		merged := 1
		for merged < reap {
			next, ok := c.txQ.TryGet()
			if !ok {
				break
			}
			pdus = append(pdus, next.pdus...)
			if next.after != nil {
				afters = append(afters, next.after)
			}
			merged++
		}
		transport.SendPDUs(p, c.ep, pdus...)
		c.srv.tel.Add(telemetry.CtrPDUsTx, int64(len(pdus)))
		c.srv.tel.Observe(telemetry.HistReapDepth, int64(merged))
		for i, fn := range afters {
			fn()
			afters[i] = nil
		}
		c.txPDUs = pdus[:0]
		c.txAfters = afters[:0]
	}
	return worked
}

// teardown reclaims every connection resource: queued transmissions are
// flushed (their cleanup callbacks always run; the bytes only transmit
// on a graceful close), half-received writes free their pool buffers,
// parked buffer-waiters drain, and per-command ack queues close so
// blocked read workers abort instead of parking forever.
func (c *srvConn) teardown(p *sim.Proc, transmit bool) {
	c.dead = true
	for {
		batch, ok := c.txQ.TryGet()
		if !ok {
			break
		}
		if transmit {
			transport.SendPDUs(p, c.ep, batch.pdus...)
			c.srv.tel.Add(telemetry.CtrPDUsTx, int64(len(batch.pdus)))
		}
		if batch.after != nil {
			batch.after()
		}
	}
	for _, cid := range sortedWriteCIDs(c.writes) {
		freeBufs(c.writes[cid].bufs)
		delete(c.writes, cid)
	}
	for {
		if _, ok := c.waits.TryGet(); !ok {
			break
		}
	}
	for _, cid := range sortedAckCIDs(c.readAcks) {
		c.readAcks[cid].Close()
		delete(c.readAcks, cid)
	}
}

// onRegionRevoked handles mid-stream shared-memory revocation on the
// target side: every write whose payload was (or would be) moving
// through the region fails with a retryable typed error — the client
// re-drives them over the TCP data path — and the connection stops using
// shared memory for reads.
func (c *srvConn) onRegionRevoked() {
	for _, cid := range sortedWriteCIDs(c.writes) {
		ctx := c.writes[cid]
		freeBufs(ctx.bufs)
		delete(c.writes, cid)
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cid, Status: nvme.StatusDataTransferErr}})
	}
	for _, cid := range sortedAckCIDs(c.readAcks) {
		c.readAcks[cid].Close()
		delete(c.readAcks, cid)
	}
	c.region = nil
}

func sortedWriteCIDs(m map[uint16]*writeCtx) []uint16 {
	cids := make([]uint16, 0, len(m))
	for cid := range m {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	return cids
}

func sortedAckCIDs(m map[uint16]*sim.Queue[struct{}]) []uint16 {
	cids := make([]uint16, 0, len(m))
	for cid := range m {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	return cids
}

func (c *srvConn) retryWaits() {
	for c.waits.Len() > 0 {
		w, _ := c.waits.TryGet()
		bufs, ok := c.allocBufs(w.need)
		if !ok {
			rest := []*allocWait{w}
			for c.waits.Len() > 0 {
				x, _ := c.waits.TryGet()
				rest = append(rest, x)
			}
			for _, x := range rest {
				c.waits.TryPut(x)
			}
			return
		}
		c.srv.tel.ObserveDuration(telemetry.HistBufWait, c.srv.e.Now().Sub(w.since))
		w.run(bufs)
	}
}

func (c *srvConn) allocBufs(n int) ([]*mempool.Buf, bool) {
	if c.srv.pool.Available() < n {
		return nil, false
	}
	bufs := make([]*mempool.Buf, 0, n)
	for i := 0; i < n; i++ {
		b, ok := c.srv.pool.Get()
		if !ok {
			for _, prev := range bufs {
				prev.Free()
			}
			return nil, false
		}
		bufs = append(bufs, b)
	}
	return bufs, true
}

// withBufs runs fn once n pool buffers are available. Under exhaustion
// the command parks in the wait queue; past MaxBufferWaiters the server
// sheds it with a retryable typed error instead (backpressure to the
// host rather than unbounded queueing).
func (c *srvConn) withBufs(cid uint16, n int, fn func(bufs []*mempool.Buf)) {
	if bufs, ok := c.allocBufs(n); ok {
		fn(bufs)
		return
	}
	if max := c.srv.cfg.MaxBufferWaiters; max > 0 && c.waits.Len() >= max {
		c.srv.Shed++
		c.srv.tel.Inc(telemetry.CtrSrvShed)
		c.srv.tel.Trace(int64(c.srv.e.Now()), telemetry.EvShed, cid, "", "pool-exhausted")
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cid, Status: nvme.StatusCommandInterrupted}})
		return
	}
	c.srv.BufferWaits++
	c.srv.tel.Inc(telemetry.CtrSrvBufWaits)
	c.waits.TryPut(&allocWait{cid: cid, need: n, since: c.srv.e.Now(), run: fn})
}

func freeBufs(bufs []*mempool.Buf) {
	for _, b := range bufs {
		b.Free()
	}
}

func (c *srvConn) handle(p *sim.Proc, msg *netsim.Message) {
	c.lastSeen = p.Now()
	transit := p.Now().Sub(msg.SentAt)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		panic(fmt.Sprintf("oaf server: bad message: %v", err))
	}
	c.srv.tel.Add(telemetry.CtrPDUsRx, int64(len(pdus)))
	for _, u := range pdus {
		switch v := u.(type) {
		case *pdu.ICReq:
			c.onICReq(v)
		case *pdu.CapsuleCmd:
			c.onCommand(p, v, transit)
		case *pdu.CmdBatch:
			// A doorbell-batched capsule train: dispatch every entry as if
			// it arrived in its own capsule. Fabric transit is attributed
			// once (the train crossed the wire as one message).
			for i := range v.Entries {
				e := &v.Entries[i]
				cc := pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
				c.onCommand(p, &cc, transit)
				transit = 0
			}
		case *pdu.Data:
			c.onTCPData(p, v, transit)
		case *pdu.SHMNotify:
			c.onSHMNotify(p, v, transit)
		case *pdu.SHMRelease:
			if ackQ, ok := c.readAcks[v.CID]; ok {
				ackQ.TryPut(struct{}{})
			}
		case *pdu.Term:
			c.closed = true
			c.kick.Fire()
		default:
			panic(fmt.Sprintf("oaf server: unexpected PDU %v", u.Type()))
		}
		transit = 0
	}
}

// onICReq is the Connection Manager's locality check: the client's
// proposed region key must resolve in the fabric registry (i.e. the
// helper process hotplugged the same region on this host). A reconnect
// after crash or KATO teardown re-runs the same negotiation.
func (c *srvConn) onICReq(req *pdu.ICReq) {
	resp := &pdu.ICResp{PFV: req.PFV, CPDA: 4, MaxH2CData: uint32(c.srv.cfg.TP.ChunkSize)}
	if req.AFCapab && req.SHMKey != 0 && c.srv.cfg.Fabric != nil && c.srv.cfg.Design.UsesSHM() {
		if region, ok := c.srv.cfg.Fabric.Lookup(req.SHMKey); ok && !region.Revoked() {
			c.region = region
			c.srv.SHMConns++
			c.srv.tel.Inc(telemetry.CtrSrvSHMConns)
			resp.AFEnabled = true
			resp.SHMKey = region.Key
			resp.SHMSize = uint64(region.Size())
			resp.SlotSize = uint32(region.SlotSize)
			resp.SlotCount = uint32(region.SlotCount)
		}
	}
	if !resp.AFEnabled {
		c.srv.tel.Inc(telemetry.CtrSrvTCPConns)
	}
	c.post(nil, resp)
}

func (c *srvConn) onCommand(p *sim.Proc, cap *pdu.CapsuleCmd, transit time.Duration) {
	cmd := cap.Cmd
	if cmd.Opcode == nvme.FabricsCommandType {
		status := nvme.StatusInvalidField
		if cmd.CDW10 == nvme.FctypeConnect {
			if _, subNQN, err := nvme.DecodeConnectData(cap.Data); err == nil && subNQN == c.srv.cfg.NQN {
				status = nvme.StatusSuccess
			}
		}
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: status}})
		return
	}
	if cmd.Flags&transport.AdminFlag != 0 {
		c.onAdmin(cmd, transit)
		return
	}
	switch cmd.Opcode {
	case nvme.OpRead:
		c.startRead(cmd, transit)
	case nvme.OpWrite:
		size := int(cmd.NLB()) * transport.BlockSize
		if cmd.Flags&cmdFlagSHMSlot != 0 {
			c.startSHMWrite(cmd, size, transit)
			return
		}
		inCap := 0
		if cap.Data != nil {
			inCap = len(cap.Data)
		} else {
			inCap = cap.VirtualLen
		}
		if inCap > 0 {
			c.execWrite(cmd, size, cap.Data, transit, nil, 0)
			return
		}
		c.startConservativeWrite(cmd, size, transit)
	case nvme.OpFlush:
		c.srv.e.Go("oaf-flush-worker", func(w *sim.Proc) {
			res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, nil)
			c.post(nil, c.resp(res, transit, 0))
		})
	default:
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidOpcode}})
	}
}

// onAdmin dispatches admin-queue commands.
func (c *srvConn) onAdmin(cmd nvme.Command, transit time.Duration) {
	switch cmd.Opcode {
	case nvme.AdminIdentify:
		c.execIdentify(cmd, transit)
	case nvme.AdminGetLogPage:
		c.execGetLogPage(cmd, transit)
	case nvme.AdminKeepAlive:
		c.post(nil, &pdu.CapsuleResp{
			Rsp:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
			TgtCommNs: uint64(transit),
		})
	default:
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidOpcode}})
	}
}

// execGetLogPage serves the discovery log page (Get Log Page, LID 0x70).
func (c *srvConn) execGetLogPage(cmd nvme.Command, comm time.Duration) {
	if cmd.CDW10&0xFF != nvme.LIDDiscovery&0xFF {
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
		return
	}
	page := c.srv.tgt.DiscoveryLog(nvme.TrTypeAdaptive, "storage-host")
	c.post(nil,
		&pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Payload: page, Last: true},
		&pdu.CapsuleResp{
			Rsp:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
			TgtCommNs: uint64(comm),
		})
}

// startSHMWrite serves a write whose payload sits in a named slot: copy
// it into a DPDK buffer (mandatory for device DMA, §4.4.3), release the
// slot, execute. A revoked or missing region fails the command with a
// retryable typed error; the client re-drives it over TCP.
func (c *srvConn) startSHMWrite(cmd nvme.Command, size int, transit time.Duration) {
	need := transport.Chunks(size, c.srv.cfg.TP.ChunkSize)
	slotIdx := uint32(cmd.PRP1)
	c.withBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		c.srv.e.Go("oaf-shm-write-worker", func(w *sim.Proc) {
			region := c.region
			if region == nil {
				freeBufs(bufs)
				c.kick.Fire()
				c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusDataTransferErr}})
				return
			}
			slot, err := region.Open(shm.H2C, slotIdx)
			if err != nil {
				// Revoked mid-stream, or the slot was reclaimed after a
				// client-side timeout: the payload is unreachable.
				freeBufs(bufs)
				c.kick.Fire()
				c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusDataTransferErr}})
				return
			}
			var data []byte
			if cmd.PRP2 == 1 { // client placed real bytes in the slot
				data = make([]byte, size)
			}
			copyStart := w.Now()
			slot.CopyOut(w, data, size)
			copyTime := w.Now().Sub(copyStart)
			slot.TryRelease() // slot credit returns through shared state
			res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, data)
			freeBufs(bufs)
			c.kick.Fire()
			c.post(nil, c.resp(res, transit, copyTime))
		})
	})
}

func (c *srvConn) startConservativeWrite(cmd nvme.Command, size int, transit time.Duration) {
	if stale, ok := c.writes[cmd.CID]; ok {
		// A retried command reused the CID of an abandoned earlier attempt
		// whose half-received grant is still parked here: reclaim it before
		// the new grant overwrites the map entry.
		freeBufs(stale.bufs)
		delete(c.writes, cmd.CID)
		c.srv.StaleMsgs++
		c.srv.tel.Inc(telemetry.CtrSrvStaleMsgs)
	}
	need := transport.Chunks(size, c.srv.cfg.TP.ChunkSize)
	c.withBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		ctx := &writeCtx{cmd: cmd, size: size, bufs: bufs, comm: transit, real: cmd.PRP2 == 1}
		c.writes[cmd.CID] = ctx
		c.post(nil, &pdu.R2T{CID: cmd.CID, TTag: cmd.CID, Offset: 0, Length: uint32(size)})
	})
}

// onTCPData accumulates H2CData for a conservative TCP-path write. Data
// for an unknown CID (late chunks of a write the teardown or a failover
// already failed) is dropped, not fatal.
func (c *srvConn) onTCPData(p *sim.Proc, d *pdu.Data, transit time.Duration) {
	ctx, ok := c.writes[d.CID]
	if !ok {
		c.srv.StaleMsgs++
		c.srv.tel.Inc(telemetry.CtrSrvStaleMsgs)
		return
	}
	n := len(d.Payload)
	if n == 0 {
		n = d.VirtualLen
	}
	if d.Payload != nil {
		mempool.Scatter(ctx.bufs, int(d.Offset), d.Payload)
		ctx.staged = true
	}
	ctx.received += n
	ctx.comm += transit
	if ctx.received >= ctx.size {
		delete(c.writes, d.CID)
		c.execWrite(ctx.cmd, ctx.size, ctx.gather(), ctx.comm, ctx.bufs, ctx.copyTime)
	}
}

// onSHMNotify consumes a chunk of write payload from a shared-memory
// slot (the chunked designs' data path). The copy-out runs on the
// connection handler — the single target core serializing these copies is
// part of what the lock-free + flow-control optimizations relieve.
func (c *srvConn) onSHMNotify(p *sim.Proc, n *pdu.SHMNotify, transit time.Duration) {
	ctx, ok := c.writes[n.CID]
	if !ok {
		c.srv.StaleMsgs++
		c.srv.tel.Inc(telemetry.CtrSrvStaleMsgs)
		return
	}
	region := c.region
	if region == nil {
		return // revocation handler already failed this write
	}
	slot, err := region.Open(shm.H2C, n.Slot)
	if err != nil {
		// The slot (or the whole region) is gone: fail the write with a
		// retryable error so the client re-drives it over TCP.
		freeBufs(ctx.bufs)
		delete(c.writes, n.CID)
		c.kick.Fire()
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: n.CID, Status: nvme.StatusDataTransferErr}})
		return
	}
	var dst, tmp []byte
	if ctx.real {
		// Copy straight into the covering pool element when the chunk
		// doesn't straddle one; bounce through a scratch buffer otherwise.
		dst = mempool.Span(ctx.bufs, int(n.Offset), int(n.Length))
		if dst == nil {
			tmp = make([]byte, n.Length)
			dst = tmp
		}
	}
	copyStart := p.Now()
	slot.CopyOut(p, dst, int(n.Length))
	ctx.copyTime += p.Now().Sub(copyStart)
	if ctx.real {
		if tmp != nil {
			mempool.Scatter(ctx.bufs, int(n.Offset), tmp)
		}
		ctx.staged = true
	}
	slot.TryRelease()
	ctx.received += int(n.Length)
	ctx.comm += transit
	if ctx.received >= ctx.size {
		delete(c.writes, n.CID)
		c.execWrite(ctx.cmd, ctx.size, ctx.gather(), ctx.comm, ctx.bufs, ctx.copyTime)
		return
	}
	// Conservative flow control: acknowledge so the client sends the
	// next chunk.
	c.post(nil, &pdu.SHMRelease{CID: n.CID, Slot: n.Slot})
}

func (c *srvConn) execWrite(cmd nvme.Command, size int, data []byte, comm time.Duration, bufs []*mempool.Buf, copyTime time.Duration) {
	c.srv.e.Go("oaf-write-worker", func(w *sim.Proc) {
		res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, data)
		if bufs != nil {
			freeBufs(bufs)
			c.kick.Fire()
		}
		c.post(nil, c.resp(res, comm, copyTime))
	})
}

// startRead serves a read: over shared memory when negotiated (payload
// copied once from the DPDK buffer into C2H slots), over TCP otherwise.
func (c *srvConn) startRead(cmd nvme.Command, transit time.Duration) {
	size := int(cmd.NLB()) * transport.BlockSize
	need := transport.Chunks(size, c.srv.cfg.TP.ChunkSize)
	c.withBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		c.srv.e.Go("oaf-read-worker", func(w *sim.Proc) {
			res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, nil)
			if res.CQE.Status.IsError() {
				freeBufs(bufs)
				c.kick.Fire()
				c.post(nil, c.resp(res, transit, 0))
				return
			}
			region := c.region
			if region != nil && !region.Revoked() && (c.srv.cfg.Design.Chunked() || size <= region.SlotSize) {
				c.sendReadOverSHM(w, region, cmd, size, res, transit, bufs)
				return
			}
			c.sendReadOverTCP(cmd, size, res, transit, bufs)
		})
	})
}

// sendReadOverSHM moves the payload through C2H slots: per-chunk slots
// and notifications for the chunked designs, one whole-I/O slot and a
// single notification under shared-memory flow control. If the region is
// revoked mid-stream — even while blocked waiting for a slot credit —
// the transfer fails over to the TCP data path: the adaptive selection
// of §4.1 extended from placement to failure.
func (c *srvConn) sendReadOverSHM(w *sim.Proc, region *shm.Region, cmd nvme.Command, size int, res target.ExecResult, transit time.Duration, bufs []*mempool.Buf) {
	if !c.srv.cfg.Design.Chunked() {
		// Shared-memory flow control: one whole-I/O slot, one
		// notification batched with the response.
		slot := region.Claim(w, shm.C2H)
		if slot == nil {
			c.sendReadOverTCP(cmd, size, res, transit, bufs)
			return
		}
		t0 := w.Now()
		slot.CopyIn(w, res.Data, size)
		copyTime := w.Now().Sub(t0)
		freeBufs(bufs)
		c.kick.Fire()
		c.post(nil,
			&pdu.SHMNotify{CID: cmd.CID, Slot: slot.Index, Offset: 0, Length: uint32(size), Last: true},
			c.resp(res, transit, copyTime))
		return
	}
	// Chunked conservative transfer: one slot + notification per chunk,
	// stop-and-wait on the client's acknowledgement — the naive flow the
	// shared-memory flow control replaces (§4.4.2).
	ackQ := sim.NewQueue[struct{}](c.srv.e, 0)
	if old, ok := c.readAcks[cmd.CID]; ok {
		// A retried read reused this CID while the abandoned attempt's
		// worker is still parked on its ack queue: close it so that worker
		// aborts and frees its buffers.
		old.Close()
	}
	c.readAcks[cmd.CID] = ackQ
	var copyTime time.Duration
	chunk := region.SlotSize
	for off := 0; off < size; off += chunk {
		n := chunk
		if size-off < n {
			n = size - off
		}
		slot := region.Claim(w, shm.C2H)
		if slot == nil {
			// Region revoked mid-transfer: fail over, resending the
			// whole payload over TCP (the client restarts reassembly).
			if c.readAcks[cmd.CID] == ackQ {
				delete(c.readAcks, cmd.CID)
			}
			c.sendReadOverTCP(cmd, size, res, transit, bufs)
			return
		}
		var src []byte
		if res.Data != nil {
			src = res.Data[off : off+n]
		}
		t0 := w.Now()
		slot.CopyIn(w, src, n)
		copyTime += w.Now().Sub(t0)
		last := off+n >= size
		nf := &pdu.SHMNotify{CID: cmd.CID, Slot: slot.Index, Offset: uint64(off), Length: uint32(n), Last: last}
		if last {
			c.post(nil, nf, c.resp(res, transit, copyTime))
		} else {
			c.post(nil, nf)
			if _, ok := ackQ.Get(w); !ok {
				// Teardown, revocation, or a CID-reusing retry closed the
				// ack queue: abandon the transfer, reclaim the buffers.
				if c.readAcks[cmd.CID] == ackQ {
					delete(c.readAcks, cmd.CID)
				}
				freeBufs(bufs)
				c.kick.Fire()
				return
			}
		}
	}
	if c.readAcks[cmd.CID] == ackQ {
		delete(c.readAcks, cmd.CID)
	}
	freeBufs(bufs)
	c.kick.Fire()
}

// sendReadOverTCP streams the payload as chunked C2HData PDUs.
func (c *srvConn) sendReadOverTCP(cmd nvme.Command, size int, res target.ExecResult, transit time.Duration, bufs []*mempool.Buf) {
	chunk := c.srv.cfg.TP.ChunkSize
	var batches []*txBatch
	transport.ChunkSizes(size, chunk, func(off, n int) {
		d := &pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Offset: uint32(off), Last: off+n >= size}
		if res.Data != nil {
			d.Payload = res.Data[off : off+n]
		} else {
			d.VirtualLen = n
		}
		batches = append(batches, &txBatch{pdus: []pdu.PDU{d}})
	})
	last := batches[len(batches)-1]
	last.pdus = append(last.pdus, c.resp(res, transit, 0))
	last.after = func() { freeBufs(bufs) }
	if c.dead {
		// Connection torn down while the read executed: reclaim without
		// transmitting.
		freeBufs(bufs)
		return
	}
	for _, b := range batches {
		c.txQ.TryPut(b)
	}
	c.kick.Fire()
}

func (c *srvConn) execIdentify(cmd nvme.Command, transit time.Duration) {
	var page []byte
	switch cmd.CDW10 {
	case nvme.CNSController:
		if id, err := c.srv.tgt.IdentifyController(c.srv.cfg.NQN); err == nil {
			page = id.Encode()
		}
	case nvme.CNSNamespace:
		if sub, ok := c.srv.tgt.Subsystem(c.srv.cfg.NQN); ok {
			if ns, ok := sub.Namespace(cmd.NSID); ok {
				idns := ns.Identify()
				page = idns.Encode()
			}
		}
	}
	if page == nil {
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
		return
	}
	c.post(nil,
		&pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Payload: page, Last: true},
		&pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess}, TgtCommNs: uint64(transit)},
	)
}

// resp builds the response capsule; the target's shared-memory copy time
// is accounted as target-side "other" (buffer management).
func (c *srvConn) resp(res target.ExecResult, comm time.Duration, copyTime time.Duration) *pdu.CapsuleResp {
	return &pdu.CapsuleResp{
		Rsp:        res.CQE,
		IOTimeNs:   uint64(res.IOTime),
		TgtCommNs:  uint64(comm),
		TgtOtherNs: uint64(res.OtherTime + copyTime),
	}
}
