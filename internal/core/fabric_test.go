package core

import (
	"errors"
	"testing"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// TestProvisionBadGeometryReturnsError pins the bugfix: an invalid slot
// geometry used to panic inside shm.NewRegion; it must surface as an
// error the caller can degrade from.
func TestProvisionBadGeometryReturnsError(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, model.DefaultSHM())
	tel := telemetry.New()
	f.AttachTelemetry(tel)
	r, err := f.Provision("h", "h", 0, 4, shm.ModeLockFree, shm.ClaimRoundRobin)
	if err == nil || r != nil {
		t.Fatalf("bad geometry: region=%v err=%v", r, err)
	}
	if tel.Counter(telemetry.CtrProvisionFailed) != 1 {
		t.Fatalf("provision failure not counted: %d", tel.Counter(telemetry.CtrProvisionFailed))
	}
	// RegionFor propagates the same failure for SHM designs.
	if _, err := f.RegionFor(DesignSHMZeroCopy, "h", "h", 0, 0, 16); err == nil {
		t.Fatal("RegionFor must propagate the geometry error")
	}
}

// TestProvisionFailureDegradesToTCP drives the full connect path with the
// resource manager refusing the IVSHMEM hotplug: the pair must come up on
// the TCP data path with working I/O instead of crashing.
func TestProvisionFailureDegradesToTCP(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, true, nil)
	tel := telemetry.New()
	r.fabric.AttachTelemetry(tel)
	r.fabric.FailProvisions(errors.New("hotplug refused"))
	region, err := r.fabric.RegionFor(DesignSHMZeroCopy, "host0", "host0", 1<<20, 128<<10, 32)
	if err == nil || region != nil {
		t.Fatalf("injected failure: region=%v err=%v", region, err)
	}
	r.region = nil // what a caller does on error: degrade to TCP
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 8)
		if c.SHMEnabled() {
			t.Error("failed provision must not negotiate shared memory")
		}
		payload := make([]byte, 64<<10)
		for i := range payload {
			payload[i] = byte(i)
		}
		res := c.Submit(p, &transport.IO{Write: true, Size: len(payload), Data: payload}).Wait(p)
		if res.Err() != nil {
			t.Errorf("degraded write: %v", res.Err())
		}
		back := make([]byte, len(payload))
		res = c.Submit(p, &transport.IO{Size: len(back), Data: back}).Wait(p)
		if res.Err() != nil {
			t.Errorf("degraded read: %v", res.Err())
		}
		for i := range back {
			if back[i] != payload[i] {
				t.Fatalf("readback mismatch at %d", i)
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if tel.Counter(telemetry.CtrProvisionFailed) != 1 {
		t.Fatalf("provision failure not counted: %d", tel.Counter(telemetry.CtrProvisionFailed))
	}
	// Recovery: once the injection clears, provisioning works again.
	r.fabric.FailProvisions(nil)
	if reg, err := r.fabric.RegionFor(DesignSHMZeroCopy, "host0", "host0", 1<<20, 128<<10, 32); err != nil || reg == nil {
		t.Fatalf("provision after recovery: region=%v err=%v", reg, err)
	}
}
