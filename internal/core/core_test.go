package core

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

const testNQN = "nqn.2022-06.io.oaf:afsub"

type rig struct {
	e      *sim.Engine
	fabric *Fabric
	srv    *Server
	link   *netsim.Link
	region *shm.Region
}

// newRig builds a co-located client/target pair: control link over the
// loopback TCP path, shared-memory region provisioned when the design
// uses one.
func newRig(t *testing.T, design Design, retain bool, mut func(*ServerConfig)) *rig {
	t.Helper()
	e := sim.NewEngine(5)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "nvme0", 1<<30, ssdParams, retain, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	fabric := NewFabric(e, model.DefaultSHM())
	cfg := ServerConfig{NQN: testNQN, Design: design, Fabric: fabric, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()}
	if mut != nil {
		mut(&cfg)
	}
	srv := NewServer(e, tgt, cfg)
	link := netsim.NewLoopLink(e, model.Loopback())
	srv.Serve(link.B)
	region, _ := fabric.RegionFor(design, "host0", "host0", 1<<20, cfg.TP.ChunkSize, 32)
	return &rig{e: e, fabric: fabric, srv: srv, link: link, region: region}
}

func (r *rig) connect(t *testing.T, p *sim.Proc, design Design, qd int) *Client {
	c, err := Connect(p, r.link.A, ClientConfig{
		NQN: testNQN, QueueDepth: qd, Design: design, Region: r.region,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHandshakeNegotiatesSHM(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 8)
		if !c.SHMEnabled() {
			t.Error("co-located pair should negotiate shared memory")
		}
		if c.ICResp().SlotSize != uint32(r.region.SlotSize) {
			t.Errorf("slot size %d", c.ICResp().SlotSize)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.srv.SHMConns != 1 {
		t.Fatalf("SHMConns = %d", r.srv.SHMConns)
	}
}

func TestRemotePairFallsBackToTCP(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	// Locality check fails for a remote pair: no region provisioned.
	r.region = nil
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 8)
		if c.SHMEnabled() {
			t.Error("remote pair must not negotiate shared memory")
		}
		res := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 128 << 10}).Wait(p)
		if res.Err() != nil {
			t.Errorf("fallback write: %v", res.Err())
		}
		if c.SHMPayloadBytes != 0 {
			t.Error("payload must not use shared memory on fallback")
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalityProvisioning(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, model.DefaultSHM())
	if r, err := f.Provision("hostA", "hostB", 4096, 4, shm.ModeLockFree, shm.ClaimRoundRobin); r != nil || err != nil {
		t.Fatal("cross-host provision must yield no region")
	}
	if r, err := f.Provision("", "", 4096, 4, shm.ModeLockFree, shm.ClaimRoundRobin); r != nil || err != nil {
		t.Fatal("empty host names must yield no region")
	}
	r1, err := f.Provision("hostA", "hostA", 4096, 4, shm.ModeLockFree, shm.ClaimRoundRobin)
	if err != nil || r1 == nil {
		t.Fatal("co-located provision failed")
	}
	r2, err := f.Provision("hostA", "hostA", 4096, 4, shm.ModeLockFree, shm.ClaimRoundRobin)
	if err != nil || r2 == nil || r1.Key == r2.Key {
		t.Fatal("tenants must get distinct regions")
	}
	if got, ok := f.Lookup(r1.Key); !ok || got != r1 {
		t.Fatal("lookup failed")
	}
	if _, ok := f.Lookup(9999); ok {
		t.Fatal("bogus key resolved")
	}
}

func TestRegionGeometryPerDesign(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, model.DefaultSHM())
	if r, err := f.RegionFor(DesignTCP, "h", "h", 1<<20, 128<<10, 16); r != nil || err != nil {
		t.Fatal("TCP design needs no region")
	}
	whole, _ := f.RegionFor(DesignSHMZeroCopy, "h", "h", 1<<20, 128<<10, 16)
	if whole.SlotSize != 1<<20 || whole.SlotCount != 16 {
		t.Fatalf("whole-IO geometry %dx%d", whole.SlotCount, whole.SlotSize)
	}
	chunked, _ := f.RegionFor(DesignSHMBaseline, "h", "h", 1<<20, 128<<10, 16)
	if chunked.SlotSize != 128<<10 || chunked.SlotCount != 16*8 {
		t.Fatalf("chunked geometry %dx%d", chunked.SlotCount, chunked.SlotSize)
	}
}

func TestRealDataAllDesigns(t *testing.T) {
	for _, design := range []Design{DesignSHMBaseline, DesignSHMLockFree, DesignSHMFlowCtl, DesignSHMZeroCopy, DesignTCP} {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			r := newRig(t, design, true, nil)
			if design == DesignTCP {
				r.region = nil
			}
			payload := make([]byte, 512<<10)
			for i := range payload {
				payload[i] = byte(i*13 + int(design))
			}
			r.e.Go("app", func(p *sim.Proc) {
				c := r.connect(t, p, design, 8)
				res := c.Submit(p, &transport.IO{Write: true, Offset: 8192, Size: len(payload), Data: payload}).Wait(p)
				if res.Err() != nil {
					t.Errorf("write: %v", res.Err())
					return
				}
				into := make([]byte, len(payload))
				res = c.Submit(p, &transport.IO{Offset: 8192, Size: len(payload), Data: into}).Wait(p)
				if res.Err() != nil {
					t.Errorf("read: %v", res.Err())
					return
				}
				if !bytes.Equal(res.Data, payload) {
					t.Errorf("%v: payload corrupted through fabric", design)
				}
				c.Close()
				c.WaitClosed(p)
			})
			if err := r.e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSHMWriteSkipsR2T(t *testing.T) {
	// Shared-memory flow control: a large write is one control message
	// (capsule naming the slot) plus one response — no R2T, no data on
	// the wire.
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 8)
		res := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 512 << 10}).Wait(p)
		if res.Err() != nil {
			t.Fatal(res.Err())
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	// ICReq + connect + capsule + term = 4 client messages.
	if got := r.link.A.MsgsSent; got != 4 {
		t.Fatalf("client sent %d messages, want 4", got)
	}
	// Payload must not cross the wire: client bytes are control-sized.
	if r.link.A.BytesSent > 2048 {
		t.Fatalf("client sent %d bytes over TCP; payload leaked onto the wire", r.link.A.BytesSent)
	}
}

func TestChunkedDesignSendsPerChunkNotifies(t *testing.T) {
	r := newRig(t, DesignSHMLockFree, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMLockFree, 8)
		// 512KB write at 128KB chunks: capsule, R2T back, 4 notifies, resp.
		res := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 512 << 10}).Wait(p)
		if res.Err() != nil {
			t.Fatal(res.Err())
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	// ICReq + connect + capsule + 4 SHMNotify + term = 8 client messages.
	if got := r.link.A.MsgsSent; got != 8 {
		t.Fatalf("client sent %d messages, want 8 (per-chunk notifications)", got)
	}
}

func TestFlowCtlEliminatesControlMessages(t *testing.T) {
	msgs := func(design Design) int64 {
		r := newRig(t, design, false, nil)
		r.e.Go("app", func(p *sim.Proc) {
			c := r.connect(t, p, design, 8)
			for i := 0; i < 8; i++ {
				c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * (512 << 10), Size: 512 << 10}).Wait(p)
			}
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		return r.link.A.MsgsSent + r.link.B.MsgsSent
	}
	naive := msgs(DesignSHMLockFree)
	optimized := msgs(DesignSHMFlowCtl)
	if optimized >= naive {
		t.Fatalf("flow control should cut messages: %d vs %d", optimized, naive)
	}
}

func TestSlotCreditsBlockSubmit(t *testing.T) {
	// With 2 whole-IO slots, a third concurrent write submission blocks
	// in Submit until a slot frees: shared-memory flow control.
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	e := sim.NewEngine(7)
	_ = e
	region, _ := r.fabric.Provision("h", "h", 1<<20, 2, shm.ModeLockFree, shm.ClaimRoundRobin)
	r.region = region
	var submitted []sim.Time
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 8)
		var futs []*sim.Future[*transport.Result]
		for i := 0; i < 3; i++ {
			futs = append(futs, c.Submit(p, &transport.IO{Write: true, Offset: int64(i) << 20, Size: 1 << 20, NoFill: true}))
			submitted = append(submitted, p.Now())
		}
		for _, f := range futs {
			f.Wait(p)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.region.ClaimWait.Max() == 0 {
		t.Fatal("third submit should have waited for a slot credit")
	}
	if submitted[2] <= submitted[1] {
		t.Fatal("third submission should be delayed by flow control")
	}
}

func TestZeroCopyAvoidsClientCopyTime(t *testing.T) {
	// Same workload; the zero-copy design must finish faster than the
	// copying design because the client-side CopyIn disappears.
	elapsed := func(design Design) sim.Time {
		r := newRig(t, design, false, nil)
		var done sim.Time
		r.e.Go("app", func(p *sim.Proc) {
			c := r.connect(t, p, design, 16)
			var futs []*sim.Future[*transport.Result]
			for i := 0; i < 32; i++ {
				futs = append(futs, c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * (512 << 10), Size: 512 << 10}))
			}
			for _, f := range futs {
				f.Wait(p)
			}
			done = p.Now()
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	copying := elapsed(DesignSHMFlowCtl)
	zero := elapsed(DesignSHMZeroCopy)
	if zero >= copying {
		t.Fatalf("zero-copy (%v) should beat copying design (%v)", zero, copying)
	}
}

func TestLockedDesignSlowerThanLockFree(t *testing.T) {
	elapsed := func(design Design) sim.Time {
		r := newRig(t, design, false, nil)
		var done sim.Time
		r.e.Go("app", func(p *sim.Proc) {
			c := r.connect(t, p, design, 16)
			var futs []*sim.Future[*transport.Result]
			for i := 0; i < 32; i++ {
				futs = append(futs, c.Submit(p, &transport.IO{Offset: int64(i) * (512 << 10), Size: 512 << 10}))
			}
			for _, f := range futs {
				f.Wait(p)
			}
			done = p.Now()
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	locked := elapsed(DesignSHMBaseline)
	lockfree := elapsed(DesignSHMLockFree)
	if locked <= lockfree {
		t.Fatalf("locked design (%v) should be slower than lock-free (%v)", locked, lockfree)
	}
}

func TestSHMFasterThanTCPIntraNode(t *testing.T) {
	elapsed := func(design Design, region bool) sim.Time {
		r := newRig(t, design, false, nil)
		if !region {
			r.region = nil
		}
		var done sim.Time
		r.e.Go("app", func(p *sim.Proc) {
			c := r.connect(t, p, design, 32)
			var futs []*sim.Future[*transport.Result]
			for i := 0; i < 64; i++ {
				futs = append(futs, c.Submit(p, &transport.IO{Offset: int64(i) * (512 << 10), Size: 512 << 10}))
			}
			for _, f := range futs {
				f.Wait(p)
			}
			done = p.Now()
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	shmTime := elapsed(DesignSHMZeroCopy, true)
	tcpTime := elapsed(DesignSHMZeroCopy, false)
	if shmTime >= tcpTime {
		t.Fatalf("shared memory (%v) should beat loopback TCP (%v)", shmTime, tcpTime)
	}
}

func TestNoSlotLeaksAfterWorkload(t *testing.T) {
	for _, design := range []Design{DesignSHMBaseline, DesignSHMLockFree, DesignSHMFlowCtl, DesignSHMZeroCopy} {
		r := newRig(t, design, false, nil)
		r.e.Go("app", func(p *sim.Proc) {
			c := r.connect(t, p, design, 8)
			var futs []*sim.Future[*transport.Result]
			for i := 0; i < 20; i++ {
				futs = append(futs, c.Submit(p, &transport.IO{Write: i%2 == 0, Offset: int64(i) * (256 << 10), Size: 256 << 10}))
			}
			for _, f := range futs {
				f.Wait(p)
			}
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		if h := r.region.Busy(shm.H2C); h != 0 {
			t.Fatalf("%v: %d H2C slots leaked", design, h)
		}
		if h := r.region.Busy(shm.C2H); h != 0 {
			t.Fatalf("%v: %d C2H slots leaked", design, h)
		}
		if r.srv.Pool().InUse() != 0 {
			t.Fatalf("%v: %d pool buffers leaked", design, r.srv.Pool().InUse())
		}
	}
}

func TestMixedReadWriteWorkload(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 16)
		rng := r.e.Rand("mix")
		var futs []*sim.Future[*transport.Result]
		for i := 0; i < 200; i++ {
			futs = append(futs, c.Submit(p, &transport.IO{
				Write:  rng.Float64() < 0.3,
				Offset: int64(rng.Intn(1000)) * 4096,
				Size:   4096 * (1 + rng.Intn(32)),
			}))
		}
		for _, f := range futs {
			if res := f.Wait(p); res.Err() != nil {
				t.Errorf("io: %v", res.Err())
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownAddsUp(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 4)
		res := c.Submit(p, &transport.IO{Offset: 0, Size: 128 << 10}).Wait(p)
		if res.Err() != nil {
			t.Fatal(res.Err())
		}
		if res.IOTime <= 0 {
			t.Error("missing device time")
		}
		if got := res.IOTime + res.CommTime + res.OtherTime; got != res.Latency {
			t.Errorf("breakdown %v != latency %v", got, res.Latency)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIdentifyOverAF(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, DesignSHMZeroCopy, 4)
		buf := make([]byte, 4096)
		res := c.Submit(p, &transport.IO{Admin: 0x06, CDW10: 1, Data: buf, Size: 4096}).Wait(p)
		if res.Err() != nil {
			t.Fatalf("identify: %v", res.Err())
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBusyPollOnAF(t *testing.T) {
	r := newRig(t, DesignSHMZeroCopy, false, func(cfg *ServerConfig) {
		cfg.TP.BusyPoll = 50 * time.Microsecond
	})
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 8, Design: DesignSHMZeroCopy, Region: r.region,
			TP: func() model.TCPTransportParams {
				tp := model.DefaultTCPTransport()
				tp.BusyPoll = 50 * time.Microsecond
				return tp
			}(),
			Host: model.DefaultHost(),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if res := c.Submit(p, &transport.IO{Offset: 0, Size: 4096}).Wait(p); res.Err() != nil {
				t.Fatal(res.Err())
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptedChannelRealData(t *testing.T) {
	// §6 extension: the shared-memory channel enciphered per tenant.
	for _, design := range []Design{DesignSHMLockFree, DesignSHMZeroCopy} {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			r := newRig(t, design, true, nil)
			r.region.EnableEncryption(0xFEED, 1.5e9)
			payload := make([]byte, 256<<10)
			for i := range payload {
				payload[i] = byte(i * 31)
			}
			r.e.Go("app", func(p *sim.Proc) {
				c := r.connect(t, p, design, 8)
				res := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: len(payload), Data: payload}).Wait(p)
				if res.Err() != nil {
					t.Errorf("write: %v", res.Err())
					return
				}
				into := make([]byte, len(payload))
				res = c.Submit(p, &transport.IO{Offset: 0, Size: len(payload), Data: into}).Wait(p)
				if res.Err() != nil {
					t.Errorf("read: %v", res.Err())
					return
				}
				if !bytes.Equal(res.Data, payload) {
					t.Error("payload corrupted through encrypted channel")
				}
				c.Close()
				c.WaitClosed(p)
			})
			if err := r.e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEncryptionCostsThroughput(t *testing.T) {
	elapsed := func(encrypted bool) sim.Time {
		r := newRig(t, DesignSHMZeroCopy, false, nil)
		if encrypted {
			r.region.EnableEncryption(0xFEED, 1e9)
		}
		var done sim.Time
		r.e.Go("app", func(p *sim.Proc) {
			c := r.connect(t, p, DesignSHMZeroCopy, 16)
			var futs []*sim.Future[*transport.Result]
			for i := 0; i < 32; i++ {
				futs = append(futs, c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * (512 << 10), Size: 512 << 10, NoFill: true}))
			}
			for _, f := range futs {
				f.Wait(p)
			}
			done = p.Now()
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	plain := elapsed(false)
	enc := elapsed(true)
	if enc <= plain {
		t.Fatalf("encrypted run (%v) should be slower than plaintext (%v)", enc, plain)
	}
}
