// Package exp builds the paper's experiment topologies and runs the
// microbenchmark configurations behind every figure: a physical host with
// client VMs and a target VM (SR-IOV hairpin through a shared NIC),
// emulated NVMe-SSDs behind per-service subsystems, and one of the
// evaluated fabrics — NVMe/TCP at three link speeds, NVMe/RDMA,
// NVMe/RoCE, or NVMe-oAF with any of its shared-memory designs.
package exp

import (
	"fmt"
	"strings"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/cache"
	"nvmeoaf/internal/cluster"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/faults"
	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/perf"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/rdma"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
	"nvmeoaf/internal/tune"
)

// Kind names a fabric under test.
type Kind string

// The evaluated fabrics.
const (
	TCP10G  Kind = "tcp-10g"
	TCP25G  Kind = "tcp-25g"
	TCP100G Kind = "tcp-100g"
	RDMA56  Kind = "rdma-ib56"
	RoCE100 Kind = "roce-100g"
	OAF     Kind = "nvme-oaf"
	// OAFRDMACtl is the paper's future-work variant (§5.5, §8): the
	// adaptive fabric's control plane runs over an intra-node RDMA path
	// instead of loopback TCP, attacking the control-message overhead
	// that dominates oAF at small I/O sizes.
	OAFRDMACtl Kind = "nvme-oaf-rdmactl"
)

// AllTCP lists the Ethernet fabrics in speed order.
func AllTCP() []Kind { return []Kind{TCP10G, TCP25G, TCP100G} }

// Config describes one experiment run.
type Config struct {
	// Kind selects the fabric.
	Kind Kind
	// Design selects the shared-memory design for OAF runs (defaults to
	// DesignSHMZeroCopy, the paper's headline configuration).
	Design core.Design
	// Streams is the number of client/SSD pairs (1:1 mapping, §3.1).
	Streams int
	// Queues opens this many queue pairs per stream and stripes its I/O
	// across them by offset (default 1). Each member queue gets its own
	// link, server connection, and — for OAF runs — shared-memory region.
	Queues int
	// Workload is the per-stream pattern.
	Workload perf.Workload
	// TP carries the TCP-channel knobs (chunk size, in-capsule
	// threshold, busy-poll budget) for TCP and OAF runs.
	TP model.TCPTransportParams
	// Seed drives all randomness.
	Seed int64
	// RetainData materializes payload bytes end to end.
	RetainData bool
	// SSD overrides the device model (zero value = model.DefaultSSD()).
	SSD model.SSDParams
	// SSDCapacity per device (default 2 GiB).
	SSDCapacity int64
	// MaxIO bounds the largest I/O for shared-memory slot sizing
	// (defaults to the workload size).
	MaxIO int
	// RDMA overrides the RDMA fabric parameters (nil = model defaults),
	// for ablations such as disabling registration-cache misses.
	RDMA *model.RDMAParams
	// CacheBytes, when positive, fronts every SSD with a target-side
	// DRAM block cache of this capacity.
	CacheBytes int64
	// CacheMode selects the cache write policy (write-through default).
	CacheMode cache.Mode
	// Telemetry receives fabric-wide counters, traces, and histograms
	// for the run. Nil means Run creates its own sink, returned in
	// Result.Telemetry either way.
	Telemetry *telemetry.Sink

	// ClusterTargets, when positive, replaces the per-stream direct
	// connections with a sharded + replicated namespace over this many
	// member targets — one target machine, SSD, NIC, and fabric
	// connection per member — and drives the workload through the
	// placement/replication router (Streams is forced to 1: the
	// namespace is one logical volume).
	ClusterTargets int
	// ClusterReplicas / ClusterWriteQuorum / ClusterSpares /
	// ClusterExtent tune the replication geometry; zero values take the
	// cluster package defaults (R=2, W=majority, 128 KiB extents).
	ClusterReplicas    int
	ClusterWriteQuorum int
	ClusterSpares      int
	ClusterExtent      int64
	// CrashDown > 0 schedules member CrashMember's target to crash at
	// CrashAt and restart CrashDown later, mid-workload.
	CrashMember        int
	CrashAt, CrashDown time.Duration

	// RDMARegCache / RDMAMerge / RDMADynDoorbell enable the RDMA fast
	// path on RDMA/RoCE runs: the mechanistic MR cache with connect-time
	// pool pre-registration, adjacent-request merging, and the
	// occupancy-driven doorbell controller (see rdma.ClientConfig).
	RDMARegCache    bool
	RDMAMerge       bool
	RDMADynDoorbell bool

	// Tenants assigns the run's streams to named tenants round-robin
	// (stream i submits as Tenants[i mod len]) and arms host-side
	// per-tenant token admission: one shared enforcement point models
	// every client VM sitting on the one physical host. Empty keeps the
	// QoS layer wire- and timing-inert.
	Tenants []TenantSpec
	// TargetQoS additionally arms target-side admission with the same
	// tenant rates: an over-budget tenant's commands get typed retryable
	// rejections (StatusTenantThrottled) at the target instead of
	// queueing. Pair with a command timeout when rejections must be
	// re-driven rather than surfaced.
	TargetQoS bool

	// Tune attaches the online self-tuning controller (internal/tune)
	// to the run: every client queue's live knobs (batch, busy-poll,
	// QD target, chunk size) and every target cache's admission knobs
	// are hill-climbed against the completion rate while the workload
	// runs — no reconnects, no restarts. The trajectory lands in
	// Result.Tuner. Not supported on cluster runs.
	Tune bool
	// TunePeriod overrides the controller's sampling interval
	// (default 20 ms of virtual time).
	TunePeriod time.Duration
}

func (c Config) withDefaults() Config {
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.Queues <= 0 {
		c.Queues = 1
	}
	if c.TP.ChunkSize <= 0 {
		c.TP = model.DefaultTCPTransport()
	}
	if c.SSD.Channels == 0 {
		c.SSD = model.DefaultSSD()
	}
	if c.SSDCapacity <= 0 {
		c.SSDCapacity = 2 << 30
	}
	if c.MaxIO <= 0 {
		// MaxIOSize covers SizeMix entries and the flip phase, so
		// shared-memory slots fit every request either phase can draw.
		c.MaxIO = c.Workload.MaxIOSize()
	}
	if c.Kind == "" {
		c.Kind = OAF
	}
	if (c.Kind == OAF || c.Kind == OAFRDMACtl) && c.Design == core.DesignTCP {
		c.Design = core.DesignSHMZeroCopy
	}
	return c
}

// Result is the outcome of one experiment run.
type Result struct {
	Agg       perf.Aggregate
	PerStream []*perf.Result
	// Devices exposes the SSD models for utilization queries.
	Devices []*bdev.SSDBdev
	// PoolFootprint is the target data-pool memory (chunk-size study).
	PoolFootprint int
	// WireBytes is the total payload+control bytes that crossed the
	// network (shared-memory payloads excluded by construction).
	WireBytes int64
	// SHMBytes is the payload volume moved through shared memory.
	SHMBytes int64
	// Telemetry is the run's observability sink (counters, traces,
	// latency histograms across every connection).
	Telemetry *telemetry.Sink
	// Pools reports the target data-pool accounting per stream.
	Pools []mempool.Stats
	// Caches exposes the per-SSD block caches (nil when uncached), and
	// CacheStats their final accounting.
	Caches     []*cache.Cache
	CacheStats []cache.Stats
	// Cluster is the replication layer's final snapshot for cluster runs
	// (nil otherwise); FaultLog records the injected crash schedule as
	// it executed.
	Cluster  *cluster.Stats
	FaultLog []faults.Event
	// Tuner is the self-tuning controller's trajectory and final knob
	// settings (nil unless Config.Tune).
	Tuner *tune.Report
	// HostQoS / TargetQoS are the run's QoS enforcement points (nil when
	// untenanted or not armed), exposed for token-ledger checks.
	HostQoS, TargetQoS *qos.Shaper
	// QoS merges the per-tenant token accounting across both points.
	QoS []qos.TenantStats
}

// TenantSpec names one tenant sharing a run, with its QoS contract.
type TenantSpec struct {
	// Name identifies the tenant across enforcement points.
	Name string
	// SLO steers the tenant's connections' receive path: latency-
	// sensitive tenants busy-poll with shallow trains, throughput/batch
	// tenants run interrupt-mode with deep coalescing. Knobs the run's
	// TP pins explicitly win.
	SLO qos.SLO
	// RateMBps is the token refill rate in MiB/s at each enforcement
	// point (0 = unlimited: attributed, lends its burst, never throttled).
	RateMBps int
	// BurstBytes bounds the bucket (0 = package default).
	BurstBytes int64
	// Streams, when positive, assigns this many of the run's streams to
	// this tenant (specs consume streams in declaration order; the last
	// spec absorbs any remainder). When every spec leaves it zero,
	// streams round-robin across tenants.
	Streams int
	// QueueDepth, when positive, overrides the run workload's queue
	// depth for this tenant's streams — how load asymmetry between
	// tenants is expressed without separate runs.
	QueueDepth int
	// Pattern, when set, overrides the run workload's pattern fields
	// (Seq, Zipf, ReadPct, SizeMix, and IOSize when positive) for this
	// tenant's streams, so tenants with different request shapes can
	// share one run. Note shared-memory slot sizing still follows the
	// run workload: keep the largest I/O size on Config.Workload.
	Pattern *perf.Phase
}

// TenantFor resolves stream i's tenant (zero spec when untenanted).
func (c Config) TenantFor(i int) TenantSpec {
	if len(c.Tenants) == 0 {
		return TenantSpec{}
	}
	blocks := false
	for _, ts := range c.Tenants {
		if ts.Streams > 0 {
			blocks = true
			break
		}
	}
	if !blocks {
		return c.Tenants[i%len(c.Tenants)]
	}
	for _, ts := range c.Tenants {
		n := ts.Streams
		if n <= 0 {
			n = 1
		}
		if i < n {
			return ts
		}
		i -= n
	}
	return c.Tenants[len(c.Tenants)-1]
}

// tpFor resolves stream i's transport knobs: the tenant's SLO steers
// busy-poll and batching where the run config left them unset.
func (c Config) tpFor(i int) model.TCPTransportParams {
	tp := c.TP
	if bp, batch, ok := c.TenantFor(i).SLO.ReceiveTuning(); ok {
		if tp.BusyPoll == 0 {
			tp.BusyPoll = bp
		}
		if tp.BatchSize == 0 {
			tp.BatchSize = batch
		}
	}
	return tp
}

// qosShapers builds the run's enforcement points from Config.Tenants.
func (c Config) qosShapers(tel *telemetry.Sink) (host, tgt *qos.Shaper, err error) {
	if len(c.Tenants) == 0 {
		if c.TargetQoS {
			return nil, nil, fmt.Errorf("exp: TargetQoS requires Tenants")
		}
		return nil, nil, nil
	}
	reg := qos.NewRegistry()
	for _, ts := range c.Tenants {
		if err := reg.Add(qos.Spec{
			Name: ts.Name, SLO: ts.SLO,
			RateBps: int64(ts.RateMBps) << 20, BurstBytes: ts.BurstBytes,
		}); err != nil {
			return nil, nil, err
		}
	}
	host = qos.NewShaper("host", reg, tel)
	if c.TargetQoS {
		tgt = qos.NewShaper("target", reg, tel)
	}
	return host, tgt, nil
}

// finishQoS folds the enforcement points into the result.
func (res *Result) finishQoS(host, tgt *qos.Shaper) {
	res.HostQoS, res.TargetQoS = host, tgt
	var shapers []*qos.Shaper
	if host != nil {
		shapers = append(shapers, host)
	}
	if tgt != nil {
		shapers = append(shapers, tgt)
	}
	if len(shapers) > 0 {
		res.QoS = qos.MergeStats(shapers...)
	}
}

// rdmaParams resolves the RDMA parameter set for a configuration.
func rdmaParams(cfg Config) model.RDMAParams {
	if cfg.RDMA != nil {
		return *cfg.RDMA
	}
	if cfg.Kind == RoCE100 {
		return model.RoCE100G()
	}
	return model.RDMA56G()
}

// nqnFor names the per-SSD storage service.
func nqnFor(i int) string { return fmt.Sprintf("nqn.2022-06.io.oaf:ssd%d", i) }

// Run executes the configuration and returns aggregated results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.ClusterTargets > 0 {
		if cfg.Tune {
			return nil, fmt.Errorf("exp: Tune is not supported on cluster runs")
		}
		return runCluster(cfg)
	}
	e := sim.NewEngine(cfg.Seed)
	tgt := target.New(e, model.DefaultHost())

	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New()
	}
	res := &Result{Telemetry: tel}
	hostSh, tgtSh, err := cfg.qosShapers(tel)
	if err != nil {
		return nil, err
	}
	var pools []*mempool.Pool
	for i := 0; i < cfg.Streams; i++ {
		sub, err := tgt.AddSubsystem(nqnFor(i))
		if err != nil {
			return nil, err
		}
		bd := bdev.NewSimSSD(e, fmt.Sprintf("nvme%d", i), cfg.SSDCapacity, cfg.SSD, cfg.RetainData, transport.BlockSize)
		var dev bdev.Device = bd
		if cfg.CacheBytes > 0 {
			ca := cache.New(e, bd, cache.Config{
				Bytes: cfg.CacheBytes, Mode: cfg.CacheMode,
				Retain: cfg.RetainData, Telemetry: tel,
			})
			res.Caches = append(res.Caches, ca)
			dev = ca
		}
		if _, err := sub.AddNamespace(1, dev); err != nil {
			return nil, err
		}
		res.Devices = append(res.Devices, bd)
	}

	// One shared physical NIC: all client and target VMs sit on the same
	// host; SR-IOV traffic hairpins through it (§3.1, §5.1).
	var links []*netsim.Link
	var linkParams model.LinkParams
	switch cfg.Kind {
	case TCP10G:
		linkParams = model.TCP10G()
	case TCP25G:
		linkParams = model.TCP25G()
	case TCP100G:
		linkParams = model.TCP100G()
	case RDMA56:
		linkParams = rdma.LinkParams(model.RDMA56G())
	case RoCE100:
		linkParams = rdma.LinkParams(model.RoCE100G())
	case OAF:
		linkParams = model.Loopback()
	case OAFRDMACtl:
		linkParams = rdma.LinkParams(model.RDMA56G())
	default:
		return nil, fmt.Errorf("exp: unknown fabric %q", cfg.Kind)
	}
	// One link (and server connection, and region for OAF) per queue pair:
	// link i*Queues+j is stream i's member queue j.
	nic := netsim.NewNIC(e, linkParams.WireBytesPerSec)
	nConns := cfg.Streams * cfg.Queues
	for i := 0; i < nConns; i++ {
		links = append(links, netsim.NewLink(e, linkParams, nic, nic))
	}

	// Fabric servers + shared-memory provisioning. Each connection's
	// server is retained so the tuner can drive the target-side
	// reap-coalescing depth in lockstep with the host-side batch knob.
	var fabric *core.Fabric
	var regions []*shm.Region
	servers := make([]*session.Target, nConns)
	switch cfg.Kind {
	case RDMA56, RoCE100:
		prm := rdmaParams(cfg)
		for i := 0; i < nConns; i++ {
			srv := rdma.NewServer(e, tgt, rdma.ServerConfig{
				NQN: nqnFor(i / cfg.Queues), Params: prm, Host: model.DefaultHost(),
				BatchSize: cfg.tpFor(i / cfg.Queues).BatchSize, Telemetry: tel,
				QoS: tgtSh,
			})
			srv.Serve(links[i].B)
			servers[i] = srv.Target
		}
	case OAF, OAFRDMACtl:
		fabric = core.NewFabric(e, model.DefaultSHM())
		fabric.AttachTelemetry(tel)
		for i := 0; i < nConns; i++ {
			srv := core.NewServer(e, tgt, core.ServerConfig{
				NQN: nqnFor(i / cfg.Queues), Design: cfg.Design, Fabric: fabric,
				TP: cfg.tpFor(i / cfg.Queues), Host: model.DefaultHost(), Telemetry: tel,
				QoS: tgtSh,
			})
			srv.Serve(links[i].B)
			servers[i] = srv.Target
			res.PoolFootprint += srv.Pool().FootprintBytes()
			pools = append(pools, srv.Pool())
			region, err := fabric.RegionFor(cfg.Design, "host0", "host0", cfg.MaxIO, cfg.TP.ChunkSize, cfg.Workload.QueueDepth)
			if err != nil {
				// SHM provisioning failed: this pair degrades to the TCP
				// data path (the trace records the decision).
				region = nil
			}
			regions = append(regions, region)
		}
	default: // TCP kinds
		for i := 0; i < nConns; i++ {
			srv := tcp.NewServer(e, tgt, tcp.ServerConfig{NQN: nqnFor(i / cfg.Queues), TP: cfg.tpFor(i / cfg.Queues), Host: model.DefaultHost(), Telemetry: tel, QoS: tgtSh})
			srv.Serve(links[i].B)
			servers[i] = srv.Target
			res.PoolFootprint += srv.Pool().FootprintBytes()
			pools = append(pools, srv.Pool())
		}
	}

	// Connect clients and run one perf stream per pair.
	streams := make([]*perf.Stream, cfg.Streams)
	var oafClients []*core.Client
	var ctl *tune.Controller
	// The cache knobs exist before any connection; queue knobs join as
	// clients connect inside the setup process.
	var knobs []tune.Knob
	if cfg.Tune {
		for i, ca := range res.Caches {
			knobs = append(knobs, tune.CacheKnobs(fmt.Sprintf("cache%d", i), ca)...)
		}
	}
	setupErr := sim.NewFuture[error](e)
	e.Go("setup", func(p *sim.Proc) {
		for i := 0; i < cfg.Streams; i++ {
			w := cfg.Workload
			w.Name = fmt.Sprintf("%s-s%d", cfg.Kind, i)
			w.Span = cfg.SSDCapacity
			// Ring-mode streams report the ring.* metric group through the
			// run's sink like every other subsystem.
			w.Telemetry = tel
			ts := cfg.TenantFor(i)
			tenant := ts.Name
			if ts.QueueDepth > 0 {
				w.QueueDepth = ts.QueueDepth
			}
			if pat := ts.Pattern; pat != nil {
				w.Seq, w.Zipf, w.ReadPct, w.SizeMix = pat.Seq, pat.Zipf, pat.ReadPct, pat.SizeMix
				if pat.IOSize > 0 {
					w.IOSize = pat.IOSize
				}
			}
			stp := cfg.tpFor(i)
			members := make([]transport.Queue, 0, cfg.Queues)
			for j := 0; j < cfg.Queues; j++ {
				li := i*cfg.Queues + j
				switch cfg.Kind {
				case RDMA56, RoCE100:
					prm := rdmaParams(cfg)
					c, err := rdma.Connect(p, links[li].A, rdma.ClientConfig{
						NQN: nqnFor(i), QueueDepth: w.QueueDepth, Params: prm, Host: model.DefaultHost(),
						BatchSize: stp.BatchSize, Telemetry: tel,
						RegCache: cfg.RDMARegCache, Merge: cfg.RDMAMerge, DynDoorbell: cfg.RDMADynDoorbell,
						Tenant: tenant, QoS: hostSh,
					})
					if err != nil {
						setupErr.Resolve(err)
						return
					}
					members = append(members, c)
				case OAF, OAFRDMACtl:
					c, err := core.Connect(p, links[li].A, core.ClientConfig{
						NQN: nqnFor(i), QueueDepth: w.QueueDepth, Design: cfg.Design,
						Region: regions[li], TP: stp, Host: model.DefaultHost(),
						Telemetry: tel,
						Tenant:    tenant, QoS: hostSh,
					})
					if err != nil {
						setupErr.Resolve(err)
						return
					}
					oafClients = append(oafClients, c)
					members = append(members, c)
				default:
					c, err := tcp.Connect(p, links[li].A, tcp.ClientConfig{
						NQN: nqnFor(i), QueueDepth: w.QueueDepth, TP: stp, Host: model.DefaultHost(),
						Telemetry: tel,
						Tenant:    tenant, QoS: hostSh,
					})
					if err != nil {
						setupErr.Resolve(err)
						return
					}
					members = append(members, c)
				}
				if cfg.Tune {
					// Every client kind exposes the live-knob surface
					// through its embedded session engine; TCP-path
					// clients add the chunk knob via ChunkTunable. The
					// batch knob drives both halves of the connection:
					// host-side submission coalescing and target-side
					// completion-reap coalescing move together, as they
					// do for a statically configured TP.BatchSize.
					if tq, ok := members[len(members)-1].(tune.TunableQueue); ok {
						qk := tune.QueueKnobs(fmt.Sprintf("s%d/q%d", i, j), tq)
						if srv := servers[li]; srv != nil {
							for n := range qk {
								if strings.HasSuffix(qk[n].Name, "/batch") {
									set := qk[n].Set
									qk[n].Set = func(v int64) {
										set(v)
										srv.SetBatchSize(int(v))
									}
								}
							}
						}
						knobs = append(knobs, qk...)
					}
				}
			}
			var q transport.Queue = members[0]
			if len(members) > 1 {
				q = transport.NewStriped(e, 0, members...)
			}
			streams[i] = perf.NewStream(e, q, w)
		}
		for _, s := range streams {
			s.Start()
		}
		if cfg.Tune {
			ctl = tune.NewController(e, tune.Config{
				Period:    cfg.TunePeriod,
				Telemetry: tel,
			}, knobs)
			ctl.Start()
			// The tuner re-arms a timer every period; stop it when the
			// workload drains so the engine run can complete.
			e.Go("tuner-stop", func(p *sim.Proc) {
				for _, s := range streams {
					s.Wait(p)
				}
				ctl.Stop()
			})
		}
		setupErr.Resolve(nil)
	})

	if err := e.Run(); err != nil {
		return nil, err
	}
	if err, ok := setupErr.Value(); ok && err != nil {
		return nil, err
	}

	for _, s := range streams {
		res.PerStream = append(res.PerStream, s.Result())
	}
	res.Agg = perf.Merge(res.PerStream...)
	for _, l := range links {
		res.WireBytes += l.A.BytesSent + l.B.BytesSent
	}
	for _, c := range oafClients {
		res.SHMBytes += c.SHMPayloadBytes
	}
	for _, pool := range pools {
		res.Pools = append(res.Pools, pool.Stats())
	}
	for _, ca := range res.Caches {
		res.CacheStats = append(res.CacheStats, ca.Stats())
	}
	if ctl != nil {
		rep := ctl.Report()
		res.Tuner = &rep
	}
	res.finishQoS(hostSh, tgtSh)
	return res, nil
}
