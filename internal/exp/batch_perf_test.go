package exp

import (
	"runtime"
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/perf"
)

// batchCfg is the acceptance workload: 4 KiB random reads at QD 64.
func batchCfg(kind Kind, batch, queues int, dur time.Duration) Config {
	tp := model.DefaultTCPTransport()
	tp.BatchSize = batch
	return Config{
		Kind: kind, Seed: 42, TP: tp, Queues: queues,
		Workload: perf.Workload{
			IOSize: 4096, QueueDepth: 64, ReadPct: 100,
			Duration: dur, Batch: batch,
		},
	}
}

// measured runs one configuration and returns the result plus the
// process-wide allocation count per completed I/O (setup amortized over
// the op count; Go's allocation counting is deterministic enough for a
// budget gate with headroom).
func measured(t testing.TB, cfg Config) (*Result, float64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res, err := Run(cfg)
	runtime.ReadMemStats(&m1)
	if err != nil {
		t.Fatal(err)
	}
	ops := res.Agg.Throughput.Ops
	if ops == 0 {
		t.Fatal("no measured ops")
	}
	return res, float64(m1.Mallocs-m0.Mallocs) / float64(ops)
}

// TestBatchedBeatsUnbatchedAtQD64 is the PR's perf-regression gate (run
// in CI): at QD 64 / 4 KiB on the TCP path, batched submission must
// deliver at least 20% more IOPS than one-message-per-command, and the
// batched hot path must allocate no more than the unbatched one and stay
// within an absolute allocation budget.
func TestBatchedBeatsUnbatchedAtQD64(t *testing.T) {
	const window = 300 * time.Millisecond
	un, unAllocs := measured(t, batchCfg(TCP25G, 0, 1, window))
	ba, baAllocs := measured(t, batchCfg(TCP25G, 16, 1, window))

	unIOPS, baIOPS := un.Agg.Throughput.IOPS(), ba.Agg.Throughput.IOPS()
	t.Logf("unbatched: %.0f IOPS, %.1f allocs/op; batched: %.0f IOPS, %.1f allocs/op",
		unIOPS, unAllocs, baIOPS, baAllocs)
	if baIOPS < 1.2*unIOPS {
		t.Errorf("batched IOPS %.0f < 1.2x unbatched %.0f: coalescing gain regressed", baIOPS, unIOPS)
	}
	// Allocation budget: the freelists (pending ops, capsule/PDU scratch,
	// recycled IO structs) must keep the batched hot path at or below the
	// unbatched path's allocation rate, and under an absolute ceiling
	// (measured ~49/op; headroom for toolchain drift).
	if baAllocs > unAllocs {
		t.Errorf("batched path allocates more than unbatched: %.1f vs %.1f allocs/op", baAllocs, unAllocs)
	}
	if baAllocs > 60 {
		t.Errorf("batched path exceeds allocation budget: %.1f allocs/op > 60", baAllocs)
	}
}

// TestStripedQueuesScaleCleanly pins that multi-queue striping composes
// with batching without losing work or erroring: same workload, striped
// across 4 member queues, completes with zero errors and at least the
// single-queue throughput.
func TestStripedQueuesScaleCleanly(t *testing.T) {
	const window = 200 * time.Millisecond
	single, _ := measured(t, batchCfg(TCP25G, 16, 1, window))
	striped, _ := measured(t, batchCfg(TCP25G, 16, 4, window))
	if striped.Agg.Errors > 0 {
		t.Fatalf("striped run errored: %d", striped.Agg.Errors)
	}
	if striped.Agg.Throughput.IOPS() < single.Agg.Throughput.IOPS() {
		t.Errorf("striping lost throughput: %.0f < %.0f IOPS",
			striped.Agg.Throughput.IOPS(), single.Agg.Throughput.IOPS())
	}
}

// benchRun is the common body of the wall-clock benchmarks: each
// iteration simulates one full measured window; the reported metrics are
// wall-clock ns/op (the simulator's own cost), allocs/op, plus the
// simulated GB/s and IOPS the configuration achieved.
func benchRun(b *testing.B, cfg Config) {
	b.ReportAllocs()
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Agg.Throughput.GBps(), "sim-GB/s")
	b.ReportMetric(last.Agg.Throughput.IOPS(), "sim-IOPS")
}

func BenchmarkQD64TCPUnbatched(b *testing.B) {
	benchRun(b, batchCfg(TCP25G, 0, 1, 100*time.Millisecond))
}

func BenchmarkQD64TCPBatched(b *testing.B) {
	benchRun(b, batchCfg(TCP25G, 16, 1, 100*time.Millisecond))
}

func BenchmarkQD64OAFBatched(b *testing.B) {
	benchRun(b, batchCfg(OAF, 16, 1, 100*time.Millisecond))
}

func BenchmarkQD64OAFBatchedStriped(b *testing.B) {
	benchRun(b, batchCfg(OAF, 16, 4, 100*time.Millisecond))
}
