package exp

import (
	"reflect"
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/perf"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/tune"
)

// tuneBase is the gated scenario: tcp-25g, one stream, one queue, 4K
// random read at QD 64 with driver-side trains of 32 — the workload
// where submission/reap batching is the dominant knob (BENCH series).
func tuneBase(seed int64) Config {
	tp := model.DefaultTCPTransport()
	tp.BatchSize = 1 // deliberately bad starting point
	return Config{
		Kind: TCP25G, Streams: 1, Queues: 1, Seed: seed, TP: tp,
		Workload: perf.Workload{
			ReadPct: 100, IOSize: 4096, QueueDepth: 64, Batch: 32,
			Warmup: 20 * time.Millisecond, Duration: 2 * time.Second,
		},
	}
}

// tailAvg averages the last n per-epoch scores — the converged
// operating point, excluding the climb itself.
func tailAvg(scores []float64, n int) float64 {
	if len(scores) < n {
		n = len(scores)
	}
	var sum float64
	for _, s := range scores[len(scores)-n:] {
		sum += s
	}
	return sum / float64(n)
}

// sweepBest runs the config statically at each batch size and returns
// the best IOPS — the hand-swept optimum the tuner must approach.
func sweepBest(t *testing.T, base Config, batches []int) float64 {
	t.Helper()
	best := 0.0
	for _, b := range batches {
		cfg := base
		cfg.TP.BatchSize = b
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if iops := r.Agg.Throughput.IOPS(); iops > best {
			best = iops
		}
	}
	return best
}

// TestTunerReachesHandSweptWithin10Pct is the convergence gate: started
// from a deliberately bad configuration (no batching), the tuner's
// converged per-epoch completion rate must reach 90% of the best
// hand-swept static configuration — without a single reconnect.
func TestTunerReachesHandSweptWithin10Pct(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	static := tuneBase(42)
	static.Workload.Duration = 500 * time.Millisecond
	best := sweepBest(t, static, []int{1, 8, 16, 32})

	cfg := tuneBase(42)
	cfg.Tune = true
	cfg.TunePeriod = 50 * time.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tuner == nil || len(r.Tuner.Scores) == 0 {
		t.Fatal("no tuner trajectory")
	}
	tail := tailAvg(r.Tuner.Scores, 8)
	if tail < 0.9*best {
		t.Fatalf("tuner tail %.0f IOPS < 90%% of hand-swept best %.0f (report: %+v)",
			tail, best, r.Tuner)
	}
	if r.Tuner.Accepted == 0 {
		t.Fatalf("tuner accepted no moves: %+v", r.Tuner)
	}
	if rc := r.Telemetry.Snapshot().Counters[telemetry.CtrReconnects.String()]; rc != 0 {
		t.Fatalf("tuning caused %d reconnects; must be restart-free", rc)
	}
}

// TestTunerTrajectoryDeterministic: equal seeds must produce identical
// knob trajectories and score series — the property that makes the
// convergence gate meaningful in CI.
func TestTunerTrajectoryDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	run := func() *tune.Report {
		cfg := tuneBase(7)
		cfg.Tune = true
		cfg.TunePeriod = 50 * time.Millisecond
		cfg.Workload.Duration = time.Second
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.Tuner
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Moves, b.Moves) {
		t.Fatalf("move trajectories diverge:\n%+v\n%+v", a.Moves, b.Moves)
	}
	if !reflect.DeepEqual(a.Scores, b.Scores) {
		t.Fatal("score series diverge")
	}
	if !reflect.DeepEqual(a.Final, b.Final) {
		t.Fatalf("final knobs diverge: %v vs %v", a.Final, b.Final)
	}
}

// TestTunerReconvergesAfterWorkloadFlip is the phase gate: mid-run the
// workload flips 4K-random-read -> 128K-seq-read. The tuner must detect
// the phase change, re-open its search, and land within 10% of the best
// static configuration for the second phase — all on the same
// connection (zero reconnects).
func TestTunerReconvergesAfterWorkloadFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	// Hand-swept reference for phase two alone.
	static := tuneBase(42)
	static.Workload.Seq = true
	static.Workload.IOSize = 128 << 10
	static.Workload.Duration = time.Second
	best := sweepBest(t, static, []int{1, 8, 16})

	cfg := tuneBase(42)
	cfg.Tune = true
	cfg.TunePeriod = 50 * time.Millisecond
	cfg.Workload.FlipAt = time.Second
	cfg.Workload.FlipTo = &perf.Phase{Seq: true, ReadPct: 100, IOSize: 128 << 10}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tuner.PhaseResets == 0 {
		t.Fatalf("tuner never detected the workload flip: %+v", r.Tuner)
	}
	tail := tailAvg(r.Tuner.Scores, 8)
	if tail < 0.9*best {
		t.Fatalf("post-flip tail %.0f IOPS < 90%% of phase-two best %.0f (report: %+v)",
			tail, best, r.Tuner)
	}
	pf := r.PerStream[0].PostFlip
	if pf == nil || pf.Throughput.Ops == 0 {
		t.Fatal("no post-flip accounting")
	}
	if rc := r.Telemetry.Snapshot().Counters[telemetry.CtrReconnects.String()]; rc != 0 {
		t.Fatalf("flip recovery caused %d reconnects; must be restart-free", rc)
	}
}

// TestTunerSmoke is the always-on fast check: a short tuned run must
// produce a trajectory, accept at least one move, and leave the
// connection intact.
func TestTunerSmoke(t *testing.T) {
	cfg := tuneBase(1)
	cfg.Tune = true
	cfg.Workload.Duration = 300 * time.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tuner == nil || r.Tuner.Epochs == 0 || r.Tuner.Accepted == 0 {
		t.Fatalf("tuner inert: %+v", r.Tuner)
	}
	if rc := r.Telemetry.Snapshot().Counters[telemetry.CtrReconnects.String()]; rc != 0 {
		t.Fatalf("%d reconnects", rc)
	}
}

// TestTuneRejectsClusterRuns pins the documented restriction.
func TestTuneRejectsClusterRuns(t *testing.T) {
	cfg := tuneBase(1)
	cfg.Tune = true
	cfg.ClusterTargets = 3
	if _, err := Run(cfg); err == nil {
		t.Fatal("Tune on a cluster run must error")
	}
}
