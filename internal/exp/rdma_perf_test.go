package exp

import (
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/perf"
)

// rdmaCfg is the RDMA acceptance workload: 4 KiB random reads at QD 64
// on the IB-56G fabric, with the fast path toggled as one unit.
func rdmaCfg(fast bool, qd int, dur time.Duration) Config {
	tp := model.DefaultTCPTransport()
	tp.BatchSize = 8
	// Deterministic device: the gate isolates the registration tail, so
	// SSD jitter/stall noise is removed (as the figure calibrations do).
	ssd := model.DefaultSSD()
	ssd.JitterFrac = 0
	ssd.StallProb = 0
	return Config{
		Kind: RDMA56, Seed: 42, TP: tp, SSD: ssd,
		Workload: perf.Workload{
			IOSize: 4096, QueueDepth: qd, ReadPct: 100,
			Duration: dur, Batch: 8,
		},
		RDMARegCache:    fast,
		RDMAMerge:       fast,
		RDMADynDoorbell: fast,
	}
}

// TestRDMAExpTelemetryParity is the regression test for the rdma exp
// construction bug: the server was built without BatchSize/Telemetry
// (and the client without BatchSize/Telemetry), so rdma runs reported
// no server-side counters and never reap-coalesced. Both sides must now
// report through the run's sink like the tcp path does.
func TestRDMAExpTelemetryParity(t *testing.T) {
	res, err := Run(rdmaCfg(false, 64, 150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry.Snapshot()
	if snap.Counters["server.conns.tcp"] == 0 {
		t.Error("rdma exp run reports no server connections: ServerConfig dropped Telemetry again")
	}
	if snap.Counters["client.completions"] == 0 {
		t.Error("rdma exp run reports no client completions: ClientConfig dropped Telemetry again")
	}
	bsz, ok := snap.Histograms["batch.submit_size"]
	if !ok || bsz.Max < 2 {
		t.Errorf("rdma exp run never coalesced trains (batch.submit_size %+v): BatchSize dropped again", bsz)
	}
}

// TestRDMAFastPathCollapsesTailAtQD64 is the PR's CI gate, the paper's
// Fig 13 claim made mechanical: with the MR cache + pre-registered pool
// (plus merging and dynamic doorbells), the QD64 p99.9/p99.99 tail
// collapses toward p99 — the fast path's p9999/p99 ratio must be at
// most half the legacy model's — while mean throughput stays within 5%.
func TestRDMAFastPathCollapsesTailAtQD64(t *testing.T) {
	const window = 300 * time.Millisecond
	legacy, _ := measured(t, rdmaCfg(false, 64, window))
	fast, _ := measured(t, rdmaCfg(true, 64, window))

	lgIOPS, fsIOPS := legacy.Agg.Throughput.IOPS(), fast.Agg.Throughput.IOPS()
	lgRatio := float64(legacy.Agg.Latency.P9999()) / float64(legacy.Agg.Latency.P99())
	fsRatio := float64(fast.Agg.Latency.P9999()) / float64(fast.Agg.Latency.P99())
	t.Logf("legacy: %.0f IOPS, p99=%dus p999=%dus p9999=%dus (p9999/p99 %.2f)",
		lgIOPS, legacy.Agg.Latency.P99()/1e3, legacy.Agg.Latency.P999()/1e3,
		legacy.Agg.Latency.P9999()/1e3, lgRatio)
	t.Logf("fast:   %.0f IOPS, p99=%dus p999=%dus p9999=%dus (p9999/p99 %.2f)",
		fsIOPS, fast.Agg.Latency.P99()/1e3, fast.Agg.Latency.P999()/1e3,
		fast.Agg.Latency.P9999()/1e3, fsRatio)

	if fast.Agg.Errors > 0 || legacy.Agg.Errors > 0 {
		t.Fatalf("errors: legacy %d fast %d", legacy.Agg.Errors, fast.Agg.Errors)
	}
	if fsRatio > 0.5*lgRatio {
		t.Errorf("tail did not collapse: fast p9999/p99 %.2f > 0.5 x legacy %.2f", fsRatio, lgRatio)
	}
	if fsIOPS < 0.95*lgIOPS {
		t.Errorf("fast path lost throughput: %.0f < 0.95 x %.0f IOPS", fsIOPS, lgIOPS)
	}
}

func BenchmarkQD64RDMALegacy(b *testing.B) {
	benchRun(b, rdmaCfg(false, 64, 100*time.Millisecond))
}

func BenchmarkQD64RDMAFastPath(b *testing.B) {
	benchRun(b, rdmaCfg(true, 64, 100*time.Millisecond))
}
