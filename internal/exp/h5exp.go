package exp

import (
	"fmt"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/blockfs"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/h5bench"
	"nvmeoaf/internal/hdf5"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nfs"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/transport"
	"nvmeoaf/internal/vol"
)

// H5Backend selects the storage path beneath the h5bench kernels.
type H5Backend string

// The h5bench storage backends of §5.7.
const (
	// H5OAF is the HDF5/NVMe-oAF co-design (zero-copy shared memory).
	H5OAF H5Backend = "oaf"
	// H5OAFCoalesce adds the VOL's application-agnostic I/O coalescing.
	H5OAFCoalesce H5Backend = "oaf-coalesce"
	// H5TCP runs the VOL over NVMe/TCP-25G (the remote path of the
	// scale-out cases).
	H5TCP H5Backend = "tcp-25g"
	// H5NFS is the async-mounted NFS baseline.
	H5NFS H5Backend = "nfs"
)

// H5Config describes one h5bench experiment.
type H5Config struct {
	Backend H5Backend
	Kernel  h5bench.Config
	// Design overrides the shared-memory design (default zero-copy).
	Design core.Design
	Seed   int64
	// VOL tunes the connector (zero value = defaults).
	VOL vol.Config
}

// node is one physical host in a topology.
type node struct {
	name string
	nic  *netsim.NIC // external network port
	loop *netsim.NIC // intra-node vswitch path
}

func newNode(e *sim.Engine, name string) *node {
	return &node{
		name: name,
		nic:  netsim.NewNIC(e, model.TCP25G().WireBytesPerSec),
		loop: netsim.NewNIC(e, model.Loopback().WireBytesPerSec),
	}
}

// h5Storage builds the storage stack for one kernel: a dedicated SSD
// behind the chosen backend. It returns the mounted hdf5.Storage plus a
// remount function that yields a fresh mount with cold caches (the read
// kernel runs against a fresh mount, as h5bench does).
func h5Storage(e *sim.Engine, p *sim.Proc, fabric *core.Fabric, clientNode, targetNode *node,
	cfg H5Config, idx int) (hdf5.Storage, func(p *sim.Proc) hdf5.Storage, error) {
	const capacity = 4 << 30
	nqn := fmt.Sprintf("nqn.2022-06.io.oaf:h5-%s-%d", clientNode.name, idx)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(nqn)
	if err != nil {
		return nil, nil, err
	}
	ssdParams := model.DefaultSSD()
	bd := bdev.NewSimSSD(e, fmt.Sprintf("h5-nvme-%s-%d", clientNode.name, idx), capacity, ssdParams, true, transport.BlockSize)
	if _, err := sub.AddNamespace(1, bd); err != nil {
		return nil, nil, err
	}

	design := cfg.Design
	if design == core.DesignTCP {
		design = core.DesignSHMZeroCopy
	}
	volCfg := cfg.VOL

	switch cfg.Backend {
	case H5NFS:
		// NFS server runs on the target node; the client mounts it over
		// the 25 GbE network (hairpin when co-located). A remount builds a
		// fresh client (and server instance over the same export) so
		// caches start cold.
		mount := func(p *sim.Proc) hdf5.Storage {
			link := netsim.NewLink(e, model.TCP25G(), clientNode.nic, targetNode.nic)
			nfs.NewServer(e, link.B, bd, model.DefaultNFS())
			return nfs.NewClient(e, link.A, model.DefaultNFS())
		}
		return mount(p), mount, nil

	case H5TCP:
		link := netsim.NewLink(e, model.TCP25G(), clientNode.nic, targetNode.nic)
		srv := tcp.NewServer(e, tgt, tcp.ServerConfig{NQN: nqn, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
		srv.Serve(link.B)
		c, err := tcp.Connect(p, link.A, tcp.ClientConfig{NQN: nqn, QueueDepth: 64, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
		if err != nil {
			return nil, nil, err
		}
		mount := func(p *sim.Proc) hdf5.Storage {
			return vol.New(blockfs.New(e, c, capacity), volCfg)
		}
		return mount(p), mount, nil

	case H5OAF, H5OAFCoalesce:
		intra := clientNode == targetNode
		var link *netsim.Link
		if intra {
			link = netsim.NewLink(e, model.Loopback(), clientNode.loop, targetNode.loop)
		} else {
			link = netsim.NewLink(e, model.TCP25G(), clientNode.nic, targetNode.nic)
		}
		srv := core.NewServer(e, tgt, core.ServerConfig{
			NQN: nqn, Design: design, Fabric: fabric,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		srv.Serve(link.B)
		var region *shm.Region
		if intra {
			// A failed provision degrades to the TCP data path.
			if r, err := fabric.RegionFor(design, clientNode.name, targetNode.name, 1<<20, model.DefaultTCPTransport().ChunkSize, 64); err == nil {
				region = r
			}
		}
		clientCfg := core.ClientConfig{
			NQN: nqn, QueueDepth: 64, Design: design, Region: region,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		}
		c, err := core.Connect(p, link.A, clientCfg)
		if err != nil {
			return nil, nil, err
		}
		volCfg.Coalesce = cfg.Backend == H5OAFCoalesce
		mount := func(p *sim.Proc) hdf5.Storage {
			return vol.New(blockfs.New(e, c, capacity), volCfg)
		}
		return mount(p), mount, nil
	}
	return nil, nil, fmt.Errorf("exp: unknown h5 backend %q", cfg.Backend)
}

// H5Result is one write+read kernel pair.
type H5Result struct {
	Write, Read h5bench.Result
}

// RunH5 runs the write kernel followed by the read kernel on one
// client/target pair (Figs 16 and 17).
func RunH5(cfg H5Config) (H5Result, error) {
	e := sim.NewEngine(cfg.Seed)
	fabric := core.NewFabric(e, model.DefaultSHM())
	host := newNode(e, "host0")
	var out H5Result
	var runErr error
	e.Go("h5bench", func(p *sim.Proc) {
		st, remount, err := h5Storage(e, p, fabric, host, host, cfg, 0)
		if err != nil {
			runErr = err
			return
		}
		w, err := h5bench.WriteKernel(p, st, cfg.Kernel)
		if err != nil {
			runErr = err
			return
		}
		// The read kernel runs against a fresh mount (cold caches).
		r, err := h5bench.ReadKernel(p, remount(p), cfg.Kernel)
		if err != nil {
			runErr = err
			return
		}
		out = H5Result{Write: w, Read: r}
	})
	if err := e.Run(); err != nil {
		return out, err
	}
	return out, runErr
}

// ScaleCase selects the paper's scale-out topology (§5.7.2).
type ScaleCase int

const (
	// Case1 places four clients on one node and their SSDs on four
	// separate nodes; SHM-fraction clients get a co-located target
	// instead.
	Case1 ScaleCase = 1
	// Case2 co-locates each client with its SSD on one node; non-SHM
	// clients reach their (same-node) target over TCP, as in §3.1.
	Case2 ScaleCase = 2
)

// RunH5Scale runs four h5bench kernels with the given fraction (0..4) of
// them using the shared-memory channel, and returns aggregate write and
// read bandwidth (Figs 18 and 19).
func RunH5Scale(scase ScaleCase, shmKernels int, seed int64) (writeGBps, readGBps float64, err error) {
	if shmKernels < 0 || shmKernels > 4 {
		return 0, 0, fmt.Errorf("exp: shmKernels %d out of range", shmKernels)
	}
	e := sim.NewEngine(seed)
	fabric := core.NewFabric(e, model.DefaultSHM())
	clientNode := newNode(e, "nodeA")
	remotes := []*node{newNode(e, "nodeB"), newNode(e, "nodeC"), newNode(e, "nodeD"), newNode(e, "nodeE")}

	kernel := h5bench.Config1()
	writes := make([]h5bench.Result, 4)
	var runErr error
	for i := 0; i < 4; i++ {
		i := i
		e.Go(fmt.Sprintf("h5scale-%d", i), func(p *sim.Proc) {
			useSHM := i < shmKernels
			cfg := H5Config{Backend: H5OAF, Kernel: kernel, Seed: seed}
			var tgtNode *node
			switch {
			case useSHM:
				tgtNode = clientNode
			case scase == Case1:
				tgtNode = remotes[i]
			default: // Case2: remote path stays on the same node over TCP
				cfg.Backend = H5TCP
				tgtNode = clientNode
			}
			st, _, err := h5Storage(e, p, fabric, clientNode, tgtNode, cfg, i)
			if err != nil {
				runErr = err
				return
			}
			w, err := h5bench.WriteKernel(p, st, kernel)
			if err != nil {
				runErr = err
				return
			}
			writes[i] = w
		})
	}
	if err := e.Run(); err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, runErr
	}
	// Read phase: fresh engine run would lose the written files; instead
	// re-run the kernels for reads in a second pass within a new engine,
	// writing first (un-timed) and reading concurrently.
	readAgg, err := runH5ScaleReads(scase, shmKernels, seed)
	if err != nil {
		return 0, 0, err
	}
	return h5bench.AggregateBandwidth(writes), readAgg, nil
}

// runH5ScaleReads repeats the topology, writes the files quietly, then
// measures four concurrent read kernels.
func runH5ScaleReads(scase ScaleCase, shmKernels int, seed int64) (float64, error) {
	e := sim.NewEngine(seed + 1)
	fabric := core.NewFabric(e, model.DefaultSHM())
	clientNode := newNode(e, "nodeA")
	remotes := []*node{newNode(e, "nodeB"), newNode(e, "nodeC"), newNode(e, "nodeD"), newNode(e, "nodeE")}
	kernel := h5bench.Config1()
	reads := make([]h5bench.Result, 4)
	var runErr error
	barrier := sim.NewWaitGroup(e)
	barrier.Add(4)
	ready := sim.NewSignal(e)
	e.Go("barrier", func(p *sim.Proc) {
		barrier.Wait(p)
		ready.Fire()
	})
	for i := 0; i < 4; i++ {
		i := i
		e.Go(fmt.Sprintf("h5scale-read-%d", i), func(p *sim.Proc) {
			useSHM := i < shmKernels
			cfg := H5Config{Backend: H5OAF, Kernel: kernel, Seed: seed}
			var tgtNode *node
			switch {
			case useSHM:
				tgtNode = clientNode
			case scase == Case1:
				tgtNode = remotes[i]
			default:
				cfg.Backend = H5TCP
				tgtNode = clientNode
			}
			st, remount, err := h5Storage(e, p, fabric, clientNode, tgtNode, cfg, i)
			if err != nil {
				runErr = err
				barrier.Done()
				return
			}
			if _, err := h5bench.WriteKernel(p, st, kernel); err != nil {
				runErr = err
				barrier.Done()
				return
			}
			barrier.Done()
			ready.Wait(p)
			r, err := h5bench.ReadKernel(p, remount(p), kernel)
			if err != nil {
				runErr = err
				return
			}
			reads[i] = r
		})
	}
	if err := e.Run(); err != nil {
		return 0, err
	}
	if runErr != nil {
		return 0, runErr
	}
	return h5bench.AggregateBandwidth(reads), nil
}
