package exp

import (
	"testing"
	"time"

	"nvmeoaf/internal/perf"
	"nvmeoaf/internal/qos"
)

// qosGateWorkload is the polite tenant's base workload for the
// isolation gate: one latency-sensitive stream of 128 KiB reads at
// QD1, long enough past warmup for the shaper's refill cadence to
// settle. Batch 16 only matters for the greedy streams (QD1 trains
// are single commands); it makes the unshaped greedy submission
// pattern bursty, which is exactly the noisy-neighbor shape QoS is
// supposed to absorb.
func qosGateWorkload() perf.Workload {
	return perf.Workload{
		ReadPct: 100, IOSize: 128 << 10, QueueDepth: 1, Batch: 16,
		Warmup: 5 * time.Millisecond, Duration: 100 * time.Millisecond,
	}
}

// qosGateRun drives 1 polite stream against 8 greedy streams of 8 KiB
// reads at QD64 (~8x the fabric's sustainable load) on one shared
// 25G NIC. rateMBps caps the greedy tenant; 0 leaves it unshaped.
func qosGateRun(t *testing.T, rateMBps int) *Result {
	t.Helper()
	var burst int64
	if rateMBps > 0 {
		// A small explicit burst keeps the cap binding within the run;
		// the default (rate/100) would let ~18 MiB through unpaced.
		burst = 256 << 10
	}
	res, err := Run(Config{
		Kind: TCP25G, Streams: 9, Workload: qosGateWorkload(), Seed: 42,
		Tenants: []TenantSpec{
			{Name: "polite", SLO: qos.LatencySensitive, Streams: 1},
			{Name: "greedy", SLO: qos.Throughput, RateMBps: rateMBps,
				BurstBytes: burst, Streams: 8, QueueDepth: 64,
				Pattern: &perf.Phase{ReadPct: 100, IOSize: 8 << 10}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGreedyTenantCannotDegradePoliteP99 is the PR's isolation gate:
// a greedy tenant offering ~8x the fabric's sustainable load may not
// degrade a polite tenant's p99 by more than 10% versus the polite
// tenant running alone, while whole-fabric throughput stays at >= 90%
// of the no-QoS aggregate. The same scenario with QoS off must show
// >= 2x degradation — otherwise the gate would pass vacuously on a
// fabric with no contention to mitigate. Finally, the token ledger
// must conserve: borrowing moves refill capacity between tenants but
// never mints or destroys tokens.
func TestGreedyTenantCannotDegradePoliteP99(t *testing.T) {
	solo, err := Run(Config{
		Kind: TCP25G, Streams: 1, Workload: qosGateWorkload(), Seed: 42,
		Tenants: []TenantSpec{{Name: "polite", SLO: qos.LatencySensitive}},
	})
	if err != nil {
		t.Fatal(err)
	}
	soloP99 := solo.Agg.Latency.P99()
	if soloP99 <= 0 {
		t.Fatal("solo run produced no latency samples")
	}

	off := qosGateRun(t, 0)   // greedy unshaped: the noisy neighbor
	on := qosGateRun(t, 1800) // greedy capped just under fair share
	offP99 := off.PerStream[0].Latency.P99()
	onP99 := on.PerStream[0].Latency.P99()
	offRatio := float64(offP99) / float64(soloP99)
	onRatio := float64(onP99) / float64(soloP99)
	aggFrac := on.Agg.Throughput.GBps() / off.Agg.Throughput.GBps()
	t.Logf("polite p99 solo=%v off=%v (%.3fx) on=%v (%.3fx); agg on/off = %.3f/%.3f GB/s (%.1f%%)",
		time.Duration(soloP99), time.Duration(offP99), offRatio,
		time.Duration(onP99), onRatio,
		on.Agg.Throughput.GBps(), off.Agg.Throughput.GBps(), 100*aggFrac)

	// Without QoS the greedy tenant must actually hurt: if it doesn't,
	// this scenario proves nothing about isolation.
	if offRatio < 2.0 {
		t.Errorf("QoS-off degradation = %.3fx, want >= 2x: scenario has no contention to mitigate", offRatio)
	}
	// With QoS on, the polite tenant's p99 must stay within 10% of
	// running alone...
	if onRatio > 1.10 {
		t.Errorf("QoS-on polite p99 = %.3fx solo, want <= 1.10x", onRatio)
	}
	// ...without sacrificing whole-fabric utilization.
	if aggFrac < 0.90 {
		t.Errorf("QoS-on aggregate = %.1f%% of no-QoS aggregate, want >= 90%%", 100*aggFrac)
	}

	// The shaper must have actually gated the greedy tenant (the gate
	// is exercising QoS, not a coincidentally-polite workload)...
	var greedy *qos.TenantStats
	for i := range on.QoS {
		if on.QoS[i].Name == "greedy" {
			greedy = &on.QoS[i]
		}
	}
	if greedy == nil {
		t.Fatalf("no greedy tenant in QoS stats: %+v", on.QoS)
	}
	if greedy.Taken == 0 {
		t.Error("greedy tenant never took a token from the shaper")
	}
	// ...and the ledger must balance exactly: every token spent was
	// minted by some tenant's refill, none created or destroyed.
	for _, sh := range []*qos.Shaper{on.HostQoS, on.TargetQoS} {
		if sh == nil {
			continue
		}
		if err := sh.Conservation().Check(); err != nil {
			t.Errorf("token conservation violated at %s: %v", sh.Label(), err)
		}
	}
}

// TestTenantForAssignsStreams covers both stream->tenant assignment
// modes: explicit block sizes (with the last spec absorbing the
// remainder) and all-zero round-robin.
func TestTenantForAssignsStreams(t *testing.T) {
	block := Config{Streams: 5, Tenants: []TenantSpec{
		{Name: "a", Streams: 2}, {Name: "b", Streams: 1}, {Name: "c"},
	}}
	wantBlock := []string{"a", "a", "b", "c", "c"}
	for i, want := range wantBlock {
		if got := block.TenantFor(i).Name; got != want {
			t.Errorf("block tenantFor(%d) = %q, want %q", i, got, want)
		}
	}
	rr := Config{Streams: 5, Tenants: []TenantSpec{{Name: "a"}, {Name: "b"}}}
	wantRR := []string{"a", "b", "a", "b", "a"}
	for i, want := range wantRR {
		if got := rr.TenantFor(i).Name; got != want {
			t.Errorf("round-robin tenantFor(%d) = %q, want %q", i, got, want)
		}
	}
}

// TestTargetQoSRequiresTenants: arming target-side enforcement with no
// tenants to enforce is a config mistake, not a silent no-op.
func TestTargetQoSRequiresTenants(t *testing.T) {
	_, err := Run(Config{Kind: TCP25G, Streams: 1, TargetQoS: true,
		Workload: perf.Workload{Duration: time.Millisecond}})
	if err == nil {
		t.Fatal("TargetQoS without Tenants did not error")
	}
}
