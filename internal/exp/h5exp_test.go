package exp

import (
	"testing"

	"nvmeoaf/internal/h5bench"
)

func TestShapeFig16OneDataset(t *testing.T) {
	// Config-1: oAF should beat NFS by roughly 6x on both kernels.
	oaf, err := RunH5(H5Config{Backend: H5OAF, Kernel: h5bench.Config1(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nfsRes, err := RunH5(H5Config{Backend: H5NFS, Kernel: h5bench.Config1(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("config-1 write: oaf %.2f GB/s, nfs %.2f GB/s (%.2fx)",
		oaf.Write.GBps(), nfsRes.Write.GBps(), oaf.Write.GBps()/nfsRes.Write.GBps())
	t.Logf("config-1 read:  oaf %.2f GB/s, nfs %.2f GB/s (%.2fx)",
		oaf.Read.GBps(), nfsRes.Read.GBps(), oaf.Read.GBps()/nfsRes.Read.GBps())
	if oaf.Write.GBps() < 2*nfsRes.Write.GBps() {
		t.Fatalf("oaf write should clearly beat NFS for config-1")
	}
	if oaf.Read.GBps() < 2*nfsRes.Read.GBps() {
		t.Fatalf("oaf read should clearly beat NFS for config-1")
	}
}

func TestShapeFig17EightDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	// Config-2: plain oAF loses to NFS; coalescing restores the win.
	plain, err := RunH5(H5Config{Backend: H5OAF, Kernel: h5bench.Config2(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	nfsRes, err := RunH5(H5Config{Backend: H5NFS, Kernel: h5bench.Config2(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	coal, err := RunH5(H5Config{Backend: H5OAFCoalesce, Kernel: h5bench.Config2(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("config-2 write: plain %.2f, nfs %.2f, coalesced %.2f GB/s",
		plain.Write.GBps(), nfsRes.Write.GBps(), coal.Write.GBps())
	t.Logf("config-2 read:  plain %.2f, nfs %.2f, coalesced %.2f GB/s",
		plain.Read.GBps(), nfsRes.Read.GBps(), coal.Read.GBps())
	if plain.Write.GBps() >= nfsRes.Write.GBps() {
		t.Fatalf("plain oaf write (%.2f) should lose to NFS (%.2f) for config-2",
			plain.Write.GBps(), nfsRes.Write.GBps())
	}
	if coal.Write.GBps() < 2*nfsRes.Write.GBps() {
		t.Fatalf("coalesced oaf write (%.2f) should clearly beat NFS (%.2f)",
			coal.Write.GBps(), nfsRes.Write.GBps())
	}
	if coal.Read.GBps() < 2*nfsRes.Read.GBps() {
		t.Fatalf("coalesced oaf read (%.2f) should clearly beat NFS (%.2f)",
			coal.Read.GBps(), nfsRes.Read.GBps())
	}
}

func TestShapeFig19ScaleOut(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	// Case-2: aggregate bandwidth grows with the SHM fraction.
	w0, r0, err := RunH5Scale(Case2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	w4, r4, err := RunH5Scale(Case2, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("case-2 SHM0%%: w %.2f r %.2f; SHM100%%: w %.2f r %.2f (gain w %.2fx r %.2fx)",
		w0, r0, w4, r4, w4/w0, r4/r0)
	if w4 <= w0 || r4 <= r0 {
		t.Fatal("full SHM should beat pure TCP")
	}
}

func TestShapeFig18Case1(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	// Case-1: clients on one node, SSDs remote; gains grow with the
	// shared-memory fraction.
	w0, r0, err := RunH5Scale(Case1, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	w3, r3, err := RunH5Scale(Case1, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("case-1 SHM0%%: w %.2f r %.2f; SHM75%%: w %.2f r %.2f", w0, r0, w3, r3)
	if w3 <= w0 || r3 <= r0 {
		t.Fatal("SHM kernels should lift case-1 aggregate bandwidth")
	}
}

func TestUnknownH5BackendRejected(t *testing.T) {
	_, err := RunH5(H5Config{Backend: H5Backend("bogus"), Kernel: h5bench.Config1()})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestScaleKernelCountValidated(t *testing.T) {
	if _, _, err := RunH5Scale(Case2, 9, 1); err == nil {
		t.Fatal("out-of-range SHM kernel count accepted")
	}
}
