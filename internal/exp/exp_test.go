package exp

import (
	"testing"
	"time"

	"nvmeoaf/internal/perf"
)

// quick runs a short measurement for shape tests.
func quick(t *testing.T, cfg Config) *Result {
	t.Helper()
	if cfg.Workload.Duration == 0 {
		cfg.Workload.Duration = 300 * time.Millisecond
	}
	if cfg.Workload.Warmup == 0 {
		cfg.Workload.Warmup = 50 * time.Millisecond
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Kind, err)
	}
	return res
}

func seqRead(size, qd int) perf.Workload {
	return perf.Workload{Seq: true, ReadPct: 100, IOSize: size, QueueDepth: qd}
}

func seqWrite(size, qd int) perf.Workload {
	return perf.Workload{Seq: true, ReadPct: 0, IOSize: size, QueueDepth: qd}
}

func TestShapeFig2ReadBandwidthOrdering(t *testing.T) {
	// Fig 2(a): 128KB seq read, 4 streams: 10G < 25G < 100G < RDMA.
	var got []float64
	for _, k := range []Kind{TCP10G, TCP25G, TCP100G, RDMA56} {
		res := quick(t, Config{Kind: k, Streams: 4, Workload: seqRead(128<<10, 128), Seed: 1})
		gbps := res.Agg.Throughput.GBps()
		t.Logf("%-10s read 128K x4: %.2f GB/s, avg %.0fus", k, gbps, res.Agg.BD.MeanTotal())
		got = append(got, gbps)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ordering violated at %d: %v", i, got)
		}
	}
}

func TestShapeFig11OAFBeatsAll(t *testing.T) {
	// Fig 11(a): oAF 128KB read beats TCP-10G by ~7x and RDMA by >1.3x.
	oaf := quick(t, Config{Kind: OAF, Streams: 4, Workload: seqRead(128<<10, 128), Seed: 1})
	tcp10 := quick(t, Config{Kind: TCP10G, Streams: 4, Workload: seqRead(128<<10, 128), Seed: 1})
	rdma := quick(t, Config{Kind: RDMA56, Streams: 4, Workload: seqRead(128<<10, 128), Seed: 1})
	t.Logf("oaf %.2f GB/s  tcp10 %.2f GB/s  rdma %.2f GB/s",
		oaf.Agg.Throughput.GBps(), tcp10.Agg.Throughput.GBps(), rdma.Agg.Throughput.GBps())
	ratio10 := oaf.Agg.Throughput.GBps() / tcp10.Agg.Throughput.GBps()
	ratioR := oaf.Agg.Throughput.GBps() / rdma.Agg.Throughput.GBps()
	if ratio10 < 4 || ratio10 > 12 {
		t.Fatalf("oaf/tcp10 ratio %.2f, want ~7x", ratio10)
	}
	if ratioR < 1.2 {
		t.Fatalf("oaf/rdma ratio %.2f, want >1.2", ratioR)
	}
	if oaf.SHMBytes == 0 {
		t.Fatal("oaf run moved no payload through shared memory")
	}
}

func TestShapeWriteBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	for _, k := range []Kind{TCP10G, TCP100G, RDMA56, OAF} {
		res := quick(t, Config{Kind: k, Streams: 4, Workload: seqWrite(128<<10, 128), Seed: 2})
		t.Logf("%-10s write 128K x4: %.2f GB/s avg %.0fus (io %.0f comm %.0f other %.0f)",
			k, res.Agg.Throughput.GBps(), res.Agg.BD.MeanTotal(),
			res.Agg.BD.MeanIO(), res.Agg.BD.MeanComm(), res.Agg.BD.MeanOther())
		if res.Agg.Errors > 0 {
			t.Fatalf("%s: %d errors", k, res.Agg.Errors)
		}
	}
}

func TestShape4KLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	for _, k := range []Kind{TCP10G, TCP25G, TCP100G, RDMA56, OAF} {
		res := quick(t, Config{Kind: k, Streams: 4, Workload: seqRead(4096, 128), Seed: 3})
		t.Logf("%-10s read 4K x4: %.2f GB/s avg %.0fus (io %.0f comm %.0f other %.0f)",
			k, res.Agg.Throughput.GBps(), res.Agg.BD.MeanTotal(),
			res.Agg.BD.MeanIO(), res.Agg.BD.MeanComm(), res.Agg.BD.MeanOther())
	}
}

func TestExtensionRDMAControlPathCutsSmallIOLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep; run without -short for the full shape check")
	}
	// Future-work variant (§5.5): RDMA control plane should cut oAF's
	// 4K latency, where control messages dominate.
	base := quick(t, Config{Kind: OAF, Streams: 4, Workload: seqRead(4096, 16), Seed: 9})
	fast := quick(t, Config{Kind: OAFRDMACtl, Streams: 4, Workload: seqRead(4096, 16), Seed: 9})
	t.Logf("oaf 4K avg %.1fus, oaf+rdma-ctl %.1fus", base.Agg.BD.MeanTotal(), fast.Agg.BD.MeanTotal())
	if fast.Agg.BD.MeanTotal() >= base.Agg.BD.MeanTotal() {
		t.Fatalf("RDMA control plane (%.1fus) should cut latency vs TCP control (%.1fus)",
			fast.Agg.BD.MeanTotal(), base.Agg.BD.MeanTotal())
	}
}

func TestUnknownFabricRejected(t *testing.T) {
	if _, err := Run(Config{Kind: Kind("bogus-fabric"), Workload: seqRead(4096, 4)}); err == nil {
		t.Fatal("unknown fabric accepted")
	}
}
