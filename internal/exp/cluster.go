package exp

import (
	"fmt"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/cluster"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/faults"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/perf"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/rdma"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// Cluster experiments model the paper's HPC-cloud deployment one level
// up: instead of one target VM per stream on a shared NIC, the namespace
// is sharded and replicated across ClusterTargets independent target
// machines (each with its own SSD, NIC, and fabric server), and a single
// client drives the placement/replication router. Read IOPS should scale
// with the member count — each extent's reads rotate across its
// replicas — while quorum writes pay the replication factor.

// nqnCluster names member i's storage service.
func nqnCluster(i int) string { return fmt.Sprintf("nqn.2022-06.io.oaf:cluster%d", i) }

// clusterMember is one member target machine: its fabric server (for
// crash injection) and the client-side connection feeding the router.
type clusterMember struct {
	srv  faults.Crashable
	q    transport.Queue
	link *netsim.Link
}

// serveMember builds member i's target machine — target, SSD, NIC, link,
// and fabric server — for the configured fabric kind.
func serveMember(e *sim.Engine, cfg Config, i int, tel *telemetry.Sink, res *Result, tgtSh *qos.Shaper) (*clusterMember, error) {
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(nqnCluster(i))
	if err != nil {
		return nil, err
	}
	bd := bdev.NewSimSSD(e, fmt.Sprintf("cnvme%d", i), cfg.SSDCapacity, cfg.SSD, cfg.RetainData, transport.BlockSize)
	if _, err := sub.AddNamespace(1, bd); err != nil {
		return nil, err
	}
	res.Devices = append(res.Devices, bd)

	var linkParams model.LinkParams
	switch cfg.Kind {
	case TCP10G:
		linkParams = model.TCP10G()
	case TCP25G:
		linkParams = model.TCP25G()
	case TCP100G:
		linkParams = model.TCP100G()
	case RDMA56, OAFRDMACtl:
		linkParams = rdma.LinkParams(model.RDMA56G())
	case RoCE100:
		linkParams = rdma.LinkParams(model.RoCE100G())
	case OAF:
		linkParams = model.TCP100G() // members are remote: no loopback SHM
	default:
		return nil, fmt.Errorf("exp: unknown fabric %q", cfg.Kind)
	}
	// One NIC per member: target machines are distinct hosts, so fabric
	// bandwidth scales with the member count (the client NIC is modeled
	// per link; the aggregate client side is not the bottleneck under
	// study here).
	nic := netsim.NewNIC(e, linkParams.WireBytesPerSec)
	link := netsim.NewLink(e, linkParams, nic, nic)

	m := &clusterMember{link: link}
	switch cfg.Kind {
	case RDMA56, RoCE100:
		srv := rdma.NewServer(e, tgt, rdma.ServerConfig{NQN: nqnCluster(i), Params: rdmaParams(cfg), Host: model.DefaultHost(), QoS: tgtSh})
		srv.Serve(link.B)
		m.srv = srv
	case OAF, OAFRDMACtl:
		fabric := core.NewFabric(e, model.DefaultSHM())
		fabric.AttachTelemetry(tel)
		srv := core.NewServer(e, tgt, core.ServerConfig{
			NQN: nqnCluster(i), Design: cfg.Design, Fabric: fabric,
			TP: cfg.TP, Host: model.DefaultHost(), Telemetry: tel,
			QoS: tgtSh,
		})
		srv.Serve(link.B)
		res.PoolFootprint += srv.Pool().FootprintBytes()
		m.srv = srv
	default:
		srv := tcp.NewServer(e, tgt, tcp.ServerConfig{NQN: nqnCluster(i), TP: cfg.TP, Host: model.DefaultHost(), Telemetry: tel, QoS: tgtSh})
		srv.Serve(link.B)
		res.PoolFootprint += srv.Pool().FootprintBytes()
		m.srv = srv
	}
	return m, nil
}

// connectMember opens member i's client connection. Commands fail fast
// with typed errors — the replication layer owns redundancy, so a dead
// member should trigger failover, not a long per-member retry loop.
func connectMember(p *sim.Proc, cfg Config, i int, m *clusterMember, qd int, tel *telemetry.Sink, tenant string, hostSh *qos.Shaper) (transport.Queue, error) {
	const (
		cmdTimeout = 500 * time.Microsecond
		maxRetries = 1
		backoff    = 100 * time.Microsecond
	)
	switch cfg.Kind {
	case RDMA56, RoCE100:
		return rdma.Connect(p, m.link.A, rdma.ClientConfig{
			NQN: nqnCluster(i), QueueDepth: qd, Params: rdmaParams(cfg), Host: model.DefaultHost(),
			CommandTimeout: cmdTimeout, MaxRetries: maxRetries, RetryBackoff: backoff,
			Tenant: tenant, QoS: hostSh,
		})
	case OAF, OAFRDMACtl:
		return core.Connect(p, m.link.A, core.ClientConfig{
			NQN: nqnCluster(i), QueueDepth: qd, Design: cfg.Design,
			TP: cfg.TP, Host: model.DefaultHost(), Telemetry: tel,
			CommandTimeout: cmdTimeout, MaxRetries: maxRetries, RetryBackoff: backoff,
			Tenant: tenant, QoS: hostSh,
		})
	default:
		return tcp.Connect(p, m.link.A, tcp.ClientConfig{
			NQN: nqnCluster(i), QueueDepth: qd, TP: cfg.TP, Host: model.DefaultHost(),
			Telemetry:      tel,
			CommandTimeout: cmdTimeout, MaxRetries: maxRetries, RetryBackoff: backoff,
			Tenant: tenant, QoS: hostSh,
		})
	}
}

// runCluster executes a replicated-namespace configuration: N member
// targets, one router, one perf stream.
func runCluster(cfg Config) (*Result, error) {
	n := cfg.ClusterTargets
	if cfg.ClusterSpares < 0 || cfg.ClusterSpares >= n {
		return nil, fmt.Errorf("exp: cluster spares must be in [0, %d)", n)
	}
	e := sim.NewEngine(cfg.Seed)
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New()
	}
	res := &Result{Telemetry: tel}
	// Cluster runs drive one logical stream, so one tenant (the first)
	// covers all router traffic; the replica fan-out marks every copy
	// after the first QoS-exempt, debiting the budget once per write.
	hostSh, tgtSh, err := cfg.qosShapers(tel)
	if err != nil {
		return nil, err
	}

	members := make([]*clusterMember, n)
	for i := 0; i < n; i++ {
		m, err := serveMember(e, cfg, i, tel, res, tgtSh)
		if err != nil {
			return nil, err
		}
		members[i] = m
	}

	var inj *faults.Injector
	if cfg.CrashDown > 0 {
		if cfg.CrashMember < 0 || cfg.CrashMember >= n {
			return nil, fmt.Errorf("exp: crash member %d out of range", cfg.CrashMember)
		}
		inj = faults.NewInjector(e)
		inj.CrashTarget(members[cfg.CrashMember].srv, cfg.CrashAt, cfg.CrashDown)
	}

	w := cfg.Workload
	w.Name = fmt.Sprintf("%s-cluster%d", cfg.Kind, n)
	w.Span = cfg.SSDCapacity

	var cl *cluster.Cluster
	var stream *perf.Stream
	setupErr := sim.NewFuture[error](e)
	e.Go("setup", func(p *sim.Proc) {
		cms := make([]cluster.Member, 0, n)
		for i, m := range members {
			q, err := connectMember(p, cfg, i, m, w.QueueDepth, tel, cfg.TenantFor(0).Name, hostSh)
			if err != nil {
				setupErr.Resolve(err)
				return
			}
			m.q = q
			cms = append(cms, cluster.Member{Name: nqnCluster(i), Queue: q})
		}
		// Keep-alive probing only matters when a member can die; pure
		// perf runs skip the probe traffic.
		var probe time.Duration
		if cfg.CrashDown > 0 {
			probe = 200 * time.Microsecond
		}
		var err error
		cl, err = cluster.New(e, cms, cluster.Options{
			Seats:         n - cfg.ClusterSpares,
			Replicas:      cfg.ClusterReplicas,
			WriteQuorum:   cfg.ClusterWriteQuorum,
			ExtentSize:    cfg.ClusterExtent,
			ProbeInterval: probe,
			RetainData:    cfg.RetainData,
			Namespace:     w.Name,
			Telemetry:     tel,
		})
		if err != nil {
			setupErr.Resolve(err)
			return
		}
		stream = perf.NewStream(e, cl, w)
		stream.Start()
		// The router's probe loops re-arm timers forever; close it once
		// the stream drains so the engine can run out of events.
		e.GoDaemon("cluster-close", func(p *sim.Proc) {
			stream.Wait(p)
			cl.Close()
		})
		setupErr.Resolve(nil)
	})

	if err := e.Run(); err != nil {
		return nil, err
	}
	if err, ok := setupErr.Value(); ok && err != nil {
		return nil, err
	}

	res.PerStream = append(res.PerStream, stream.Result())
	res.Agg = perf.Merge(res.PerStream...)
	for _, m := range members {
		res.WireBytes += m.link.A.BytesSent + m.link.B.BytesSent
	}
	st := cl.Stats()
	res.Cluster = &st
	if inj != nil {
		res.FaultLog = inj.Log
	}
	res.finishQoS(hostSh, tgtSh)
	return res, nil
}
