package exp

import (
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/perf"
)

// ringCfg builds the ring acceptance workload: 4 KiB random reads on the
// TCP 25G fabric, future-based or ring-based submission. Ring mode runs
// with the session engine's batch-capsule wire path enabled — staged
// trains draining through the reactor as coalesced capsules is the whole
// point of ring submission; the future baseline is the plain per-op
// Submit API exactly as oaf.Queue issues it.
func ringCfg(kind Kind, qd int, ring bool, dur time.Duration) Config {
	tp := model.DefaultTCPTransport()
	if ring {
		tp.BatchSize = 16
	}
	return Config{
		Kind: kind, Seed: 43, TP: tp,
		Workload: perf.Workload{
			IOSize: 4096, QueueDepth: qd, ReadPct: 100,
			Duration: dur, Ring: ring,
		},
	}
}

// TestRingBeatsFuturesAtQD256 is the PR's acceptance gate (run in CI):
// at QD 256 / 4 KiB on tcp-25g, the SQ/CQ ring fast path must deliver
// more IOPS than the future-based Submit API — the ring replaces one
// future allocation, one result allocation, one callback registration,
// and one submit-CPU charge per op with recycled slots and one doorbell
// per reaped train — and must allocate strictly less per op end to end.
func TestRingBeatsFuturesAtQD256(t *testing.T) {
	const window = 200 * time.Millisecond
	fu, fuAllocs := measured(t, ringCfg(TCP25G, 256, false, window))
	ri, riAllocs := measured(t, ringCfg(TCP25G, 256, true, window))

	fuIOPS, riIOPS := fu.Agg.Throughput.IOPS(), ri.Agg.Throughput.IOPS()
	t.Logf("futures: %.0f IOPS, %.1f allocs/op; ring: %.0f IOPS, %.1f allocs/op",
		fuIOPS, fuAllocs, riIOPS, riAllocs)
	if ri.Agg.Errors > 0 {
		t.Fatalf("ring run errored: %d", ri.Agg.Errors)
	}
	if riIOPS <= fuIOPS {
		t.Errorf("ring IOPS %.0f <= future-API IOPS %.0f at QD 256: the fast path lost its advantage", riIOPS, fuIOPS)
	}
	// The whole-process measurement includes the target side (which
	// allocates per capsule either way), so the client-side ring shows up
	// as a strict reduction, not zero; the zero-allocs-per-op gate on the
	// ring itself lives in internal/ring (TestRingHotPathZeroAlloc).
	if riAllocs >= fuAllocs {
		t.Errorf("ring path allocates no less than futures: %.1f vs %.1f allocs/op", riAllocs, fuAllocs)
	}
}

// TestRingMatchesFuturesResults pins that ring mode measures the same
// physics, not a different workload: same fabric, same pattern, same
// QD — mean latency and throughput land within 20% of the future-based
// driver (the remaining difference IS the submission-path saving).
func TestRingMatchesFuturesResults(t *testing.T) {
	const window = 200 * time.Millisecond
	fu, _ := measured(t, ringCfg(TCP25G, 64, false, window))
	ri, _ := measured(t, ringCfg(TCP25G, 64, true, window))
	fuLat, riLat := fu.Agg.BD.MeanTotal(), ri.Agg.BD.MeanTotal()
	if riLat > fuLat*1.2 || riLat < fuLat*0.5 {
		t.Errorf("ring mean latency %.1fus implausible vs futures %.1fus", riLat, fuLat)
	}
	if ri.Agg.Throughput.Ops == 0 || ri.Agg.Throughput.IOPS() < fu.Agg.Throughput.IOPS()*0.8 {
		t.Errorf("ring throughput %.0f IOPS fell below futures %.0f", ri.Agg.Throughput.IOPS(), fu.Agg.Throughput.IOPS())
	}
}

func BenchmarkQD64TCPFutures(b *testing.B) {
	benchRun(b, ringCfg(TCP25G, 64, false, 100*time.Millisecond))
}

func BenchmarkQD64TCPRing(b *testing.B) {
	benchRun(b, ringCfg(TCP25G, 64, true, 100*time.Millisecond))
}

func BenchmarkQD256TCPFutures(b *testing.B) {
	benchRun(b, ringCfg(TCP25G, 256, false, 100*time.Millisecond))
}

func BenchmarkQD256TCPRing(b *testing.B) {
	benchRun(b, ringCfg(TCP25G, 256, true, 100*time.Millisecond))
}

func BenchmarkQD256OAFRing(b *testing.B) {
	benchRun(b, ringCfg(OAF, 256, true, 100*time.Millisecond))
}
