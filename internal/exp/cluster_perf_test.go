package exp

import (
	"testing"
	"time"

	"nvmeoaf/internal/perf"
)

// clusterCfg is the replication scaling workload: 4 KiB random reads at
// QD 64 through the placement/replication router over n member targets.
func clusterCfg(targets, replicas int, dur time.Duration) Config {
	return Config{
		Kind: TCP25G, Seed: 42,
		ClusterTargets:  targets,
		ClusterReplicas: replicas,
		Workload: perf.Workload{
			IOSize: 4096, QueueDepth: 64, ReadPct: 100,
			Duration: dur,
		},
	}
}

// TestClusterReadScalingAtFourTargets is the PR's perf gate: sharding a
// namespace across four member targets (R=2, so every extent's reads
// rotate over two replicas) must deliver at least 3.2x the read IOPS of
// the single-target baseline at QD 64 / 4 KiB randread — near-linear
// scaling, because each member brings its own SSD, NIC, and fabric
// connection.
func TestClusterReadScalingAtFourTargets(t *testing.T) {
	const window = 300 * time.Millisecond
	one, err := Run(clusterCfg(1, 1, window))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(clusterCfg(4, 2, window))
	if err != nil {
		t.Fatal(err)
	}
	oneIOPS, fourIOPS := one.Agg.Throughput.IOPS(), four.Agg.Throughput.IOPS()
	t.Logf("1 target: %.0f IOPS; 4 targets: %.0f IOPS (%.2fx)",
		oneIOPS, fourIOPS, fourIOPS/oneIOPS)
	if one.Agg.Errors > 0 || four.Agg.Errors > 0 {
		t.Fatalf("cluster runs errored: %d / %d", one.Agg.Errors, four.Agg.Errors)
	}
	if fourIOPS < 3.2*oneIOPS {
		t.Errorf("4-target IOPS %.0f < 3.2x single-target %.0f: replication scaling regressed",
			fourIOPS, oneIOPS)
	}
	if four.Cluster == nil || four.Cluster.Seats != 4 {
		t.Fatal("cluster stats missing from the result")
	}
	if four.Cluster.Reads == 0 {
		t.Error("router recorded no reads")
	}
}

// TestClusterSurvivesMidRunCrash exercises the chaos-bench configuration
// scripts/bench.sh sweeps: a member crash mid-window on a replicated
// namespace must not produce a single failed I/O — reads fail over, and
// the restarted member is healed by background re-replication.
func TestClusterSurvivesMidRunCrash(t *testing.T) {
	cfg := clusterCfg(4, 2, 100*time.Millisecond)
	cfg.CrashMember = 1
	cfg.CrashAt = 20 * time.Millisecond
	cfg.CrashDown = 10 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Errors > 0 {
		t.Errorf("%d I/Os failed across the crash; failover should save all reads", res.Agg.Errors)
	}
	if res.Cluster.ReplicaDowns == 0 {
		t.Error("the crash was never detected as a replica death")
	}
	if len(res.FaultLog) != 2 {
		t.Fatalf("fault log has %d events, want crash+restart", len(res.FaultLog))
	}
	if res.FaultLog[0].Kind != "target-crash" || res.FaultLog[1].Kind != "target-restart" {
		t.Errorf("fault log = %v", res.FaultLog)
	}
}
