package exp

import (
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/perf"
)

// cacheCfg is the cache acceptance workload: the adaptive fabric with
// batched submission striped across 4 queue pairs, so the emulated SSD —
// not the transport — is the bottleneck and the cache's hit latency is
// visible end to end. cacheBytes == 0 runs the uncached baseline.
func cacheCfg(cacheBytes int64, w perf.Workload, dur time.Duration) Config {
	tp := model.DefaultTCPTransport()
	tp.BatchSize = 16
	w.Batch = 16
	w.Duration = dur
	return Config{
		Kind: OAF, Seed: 42, TP: tp, Queues: 4,
		CacheBytes: cacheBytes,
		Workload:   w,
	}
}

// TestCachedHotSetBeatsUncachedAtQD64 is the PR's headline perf gate (run
// in CI): on a Zipfian hot-set read workload (theta 0.99, the YCSB
// standard skew) at QD 64 / 4 KiB, fronting the SSD with a 256 MiB
// target-side cache must at least double IOPS over the uncached device,
// and the cached hot path must not allocate more than the uncached one
// (hits are served without touching the device or allocating).
func TestCachedHotSetBeatsUncachedAtQD64(t *testing.T) {
	const window = 300 * time.Millisecond
	w := perf.Workload{IOSize: 4096, QueueDepth: 64, ReadPct: 100, Zipf: 0.99}
	un, unAllocs := measured(t, cacheCfg(0, w, window))
	ca, caAllocs := measured(t, cacheCfg(256<<20, w, window))

	unIOPS, caIOPS := un.Agg.Throughput.IOPS(), ca.Agg.Throughput.IOPS()
	cs := ca.CacheStats[0]
	t.Logf("uncached: %.0f IOPS, %.1f allocs/op; cached: %.0f IOPS, %.1f allocs/op, hit %.1f%%",
		unIOPS, unAllocs, caIOPS, caAllocs, 100*cs.HitRate())
	if caIOPS < 2*unIOPS {
		t.Errorf("cached IOPS %.0f < 2x uncached %.0f: hot-set caching gain regressed", caIOPS, unIOPS)
	}
	if cs.Hits == 0 {
		t.Error("cache reported zero hits on a Zipfian hot set")
	}
	// Allocation budget: every hit skips the device submission entirely and
	// the hit path itself is allocation-free (pinned in the cache package's
	// unit tests), so the cached run must not allocate more per op.
	if caAllocs > unAllocs {
		t.Errorf("cached path allocates more than uncached: %.1f vs %.1f allocs/op", caAllocs, unAllocs)
	}
}

// TestCacheUniformLargeIOStaysNeutral pins the admission policy's other
// half: a uniformly random large-I/O sweep (128 KiB reads over the full
// 2 GiB device, far larger than the cache) must bypass the cache and stay
// within 5% of the uncached throughput — the cache may not tax workloads
// it cannot help.
func TestCacheUniformLargeIOStaysNeutral(t *testing.T) {
	const window = 300 * time.Millisecond
	w := perf.Workload{IOSize: 128 << 10, QueueDepth: 64, ReadPct: 100}
	un, _ := measured(t, cacheCfg(0, w, window))
	ca, _ := measured(t, cacheCfg(256<<20, w, window))

	unIOPS, caIOPS := un.Agg.Throughput.IOPS(), ca.Agg.Throughput.IOPS()
	cs := ca.CacheStats[0]
	t.Logf("uncached: %.0f IOPS; cached: %.0f IOPS (%d bypass, %d misses)",
		unIOPS, caIOPS, cs.Bypasses, cs.Misses)
	if caIOPS < 0.95*unIOPS {
		t.Errorf("cache regressed uniform large I/O: %.0f < 95%% of %.0f IOPS", caIOPS, unIOPS)
	}
	if cs.Bypasses == 0 {
		t.Error("large reads were admitted: bypass counter is zero")
	}
}

func BenchmarkQD64OAFCachedZipf(b *testing.B) {
	w := perf.Workload{IOSize: 4096, QueueDepth: 64, ReadPct: 100, Zipf: 0.99}
	benchRun(b, cacheCfg(256<<20, w, 100*time.Millisecond))
}
