package h5bench

import (
	"fmt"
	"testing"
	"time"

	"nvmeoaf/internal/sim"
)

// countingStorage records I/O calls and advances time per byte.
type countingStorage struct {
	writes, reads, flushes int
	writeBytes, readBytes  int64
	perByte                time.Duration
	buf                    []byte
}

func newCounting(size int) *countingStorage {
	return &countingStorage{buf: make([]byte, size), perByte: time.Nanosecond}
}

func (c *countingStorage) WriteAt(p *sim.Proc, off int64, data []byte, size int) error {
	if off < 0 || off+int64(size) > int64(len(c.buf)) {
		return fmt.Errorf("counting: oob write [%d,%d)", off, off+int64(size))
	}
	c.writes++
	c.writeBytes += int64(size)
	if data != nil {
		copy(c.buf[off:], data[:size])
	}
	p.Sleep(time.Duration(size) * c.perByte)
	return nil
}

func (c *countingStorage) ReadAt(p *sim.Proc, off int64, buf []byte, size int) error {
	if off < 0 || off+int64(size) > int64(len(c.buf)) {
		return fmt.Errorf("counting: oob read [%d,%d)", off, off+int64(size))
	}
	c.reads++
	c.readBytes += int64(size)
	if buf != nil {
		copy(buf[:size], c.buf[off:])
	}
	p.Sleep(time.Duration(size) * c.perByte)
	return nil
}

func (c *countingStorage) Flush(p *sim.Proc) error { c.flushes++; return nil }

func run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e := sim.NewEngine(1)
	e.Go("bench", fn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigsMatchPaper(t *testing.T) {
	c1 := Config1()
	if c1.Datasets != 1 || c1.Particles != 16<<20 {
		t.Fatalf("config-1: %+v", c1)
	}
	c2 := Config2()
	if c2.Datasets != 8 || c2.Particles != 8<<20 || c2.BatchParticles == 0 {
		t.Fatalf("config-2: %+v", c2)
	}
	if c1.TotalBytes() != 16<<20*8 {
		t.Fatalf("config-1 bytes %d", c1.TotalBytes())
	}
	if c2.TotalBytes() != 8*(8<<20)*8 {
		t.Fatalf("config-2 bytes %d", c2.TotalBytes())
	}
}

func TestWriteThenReadKernelSmall(t *testing.T) {
	st := newCounting(64 << 20)
	cfg := Config{Datasets: 2, Particles: 1 << 16, ElemSize: 8}
	run(t, func(p *sim.Proc) {
		w, err := WriteKernel(p, st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if w.Bytes != cfg.TotalBytes() || w.Elapsed <= 0 || w.GBps() <= 0 {
			t.Fatalf("write result: %v", w)
		}
		r, err := ReadKernel(p, st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Bytes != cfg.TotalBytes() {
			t.Fatalf("read result: %v", r)
		}
	})
	if st.writeBytes < cfg.TotalBytes() {
		t.Fatalf("wrote %d bytes, want >= %d (payload+metadata)", st.writeBytes, cfg.TotalBytes())
	}
	if st.flushes == 0 {
		t.Fatal("kernels must flush on close")
	}
}

func TestBatchedKernelIssuesInterleavedWrites(t *testing.T) {
	st := newCounting(64 << 20)
	cfg := Config{Datasets: 4, Particles: 1 << 14, ElemSize: 8, BatchParticles: 1 << 12}
	run(t, func(p *sim.Proc) {
		if _, err := WriteKernel(p, st, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// 4 batches x 4 datasets = 16 payload writes (+2 metadata).
	if st.writes != 16+2 {
		t.Fatalf("writes %d, want 18", st.writes)
	}
}

func TestReadKernelValidatesDatasetCount(t *testing.T) {
	st := newCounting(16 << 20)
	run(t, func(p *sim.Proc) {
		if _, err := WriteKernel(p, st, Config{Datasets: 1, Particles: 1024, ElemSize: 8}); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadKernel(p, st, Config{Datasets: 3, Particles: 1024, ElemSize: 8}); err == nil {
			t.Fatal("mismatched dataset count accepted")
		}
	})
}

func TestFillCostCharged(t *testing.T) {
	slow := newCounting(16 << 20)
	fast := newCounting(16 << 20)
	cfg := Config{Datasets: 1, Particles: 1 << 16, ElemSize: 8}
	var withFill, noFill time.Duration
	run(t, func(p *sim.Proc) {
		cfgF := cfg
		cfgF.FillPerByteNanos = 2
		w, err := WriteKernel(p, slow, cfgF)
		if err != nil {
			t.Fatal(err)
		}
		withFill = w.Elapsed
		w, err = WriteKernel(p, fast, cfg)
		if err != nil {
			t.Fatal(err)
		}
		noFill = w.Elapsed
	})
	if withFill <= noFill {
		t.Fatalf("fill cost not charged: %v vs %v", withFill, noFill)
	}
}

func TestAggregateBandwidth(t *testing.T) {
	rs := []Result{
		{Bytes: 1e9, Elapsed: time.Second},
		{Bytes: 1e9, Elapsed: 2 * time.Second},
	}
	// 2 GB over the slowest kernel's 2s window = 1 GB/s.
	if got := AggregateBandwidth(rs); got != 1.0 {
		t.Fatalf("aggregate %.3f", got)
	}
	if AggregateBandwidth(nil) != 0 {
		t.Fatal("empty aggregate")
	}
	if rs[0].String() == "" {
		t.Fatal("empty string")
	}
}

func TestMultiTimestepKernels(t *testing.T) {
	st := newCounting(256 << 20)
	cfg := Config{Datasets: 2, Particles: 1 << 14, ElemSize: 8, Timesteps: 3}
	run(t, func(p *sim.Proc) {
		w, err := WriteKernel(p, st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if w.Bytes != 3*2*(1<<14)*8 {
			t.Fatalf("bytes %d", w.Bytes)
		}
		r, err := ReadKernel(p, st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Bytes != w.Bytes {
			t.Fatalf("read bytes %d", r.Bytes)
		}
	})
}
