// Package h5bench reimplements the h5bench VPIC-IO write and read kernels
// the paper uses for its application-level evaluation (§5.7): 1-D particle
// arrays stored as contiguous HDF5 datasets, written and read through the
// hdf5.Storage seam (the VOL connector over NVMe-oAF, or the NFS client).
//
// Two configurations mirror the paper:
//
//   - config-1 writes 16M particles into one dataset with a single full-
//     array H5Dwrite per dataset — the large contiguous transfer that the
//     VOL's direct path pipelines;
//   - config-2 writes 8 datasets of 8M particles each. Like VPIC's
//     per-variable emitters, the kernel produces the variables in particle
//     batches, so HDF5 issues synchronous partial writes that alternate
//     across the 8 dataset extents — the small-I/O pattern that plain
//     NVMe-oAF handles poorly until I/O coalescing is enabled (Fig 17).
package h5bench

import (
	"fmt"
	"time"

	"nvmeoaf/internal/hdf5"
	"nvmeoaf/internal/sim"
)

// Config describes one kernel configuration.
type Config struct {
	// Datasets is the number of 1-D variables.
	Datasets int
	// Particles is the element count per dataset.
	Particles int64
	// ElemSize is bytes per element (8 in our runs).
	ElemSize int
	// BatchParticles, when nonzero, emits the variables in interleaved
	// batches of this many particles (VPIC-style partial writes); zero
	// writes each dataset with one full-array call.
	BatchParticles int64
	// FillPerByteNanos charges payload generation (compute producing the
	// particles).
	FillPerByteNanos float64
	// Timesteps repeats the emission loop, as VPIC writes one dataset
	// group per simulation step (the paper uses one timestep; h5bench
	// supports many). Zero means one.
	Timesteps int
}

// Config1 is the paper's first configuration: 16M particles, one dataset.
func Config1() Config {
	return Config{Datasets: 1, Particles: 16 << 20, ElemSize: 8}
}

// Config2 is the paper's second configuration: 8M particles in each of 8
// datasets, emitted in interleaved batches.
func Config2() Config {
	return Config{Datasets: 8, Particles: 8 << 20, ElemSize: 8, BatchParticles: 4096}
}

// steps returns the effective timestep count.
func (c Config) steps() int {
	if c.Timesteps <= 0 {
		return 1
	}
	return c.Timesteps
}

// TotalBytes is the payload volume of one kernel run.
func (c Config) TotalBytes() int64 {
	return int64(c.steps()) * int64(c.Datasets) * c.Particles * int64(c.ElemSize)
}

// Result reports one kernel execution.
type Result struct {
	Bytes   int64
	Elapsed time.Duration
}

// GBps returns the kernel bandwidth in GB/s.
func (r Result) GBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e9 / r.Elapsed.Seconds()
}

func (r Result) String() string {
	return fmt.Sprintf("%d bytes in %v (%.3f GB/s)", r.Bytes, r.Elapsed, r.GBps())
}

// dsName names the i-th variable like VPIC's particle fields.
func dsName(i int) string {
	names := []string{"x", "y", "z", "px", "py", "pz", "id1", "id2"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("var%d", i)
}

// WriteKernel runs the write kernel on st and returns the measured
// bandwidth (creation through close, as h5bench reports).
func WriteKernel(p *sim.Proc, st hdf5.Storage, cfg Config) (Result, error) {
	start := p.Now()
	f := hdf5.Create(st)
	var dss []*hdf5.Dataset
	for step := 0; step < cfg.steps(); step++ {
		for i := 0; i < cfg.Datasets; i++ {
			d, err := f.CreateDataset(stepName(step, i, cfg.steps()), cfg.ElemSize, cfg.Particles)
			if err != nil {
				return Result{}, err
			}
			dss = append(dss, d)
		}
	}
	fill := func(elems int64) {
		if cfg.FillPerByteNanos > 0 {
			p.Sleep(time.Duration(float64(elems*int64(cfg.ElemSize)) * cfg.FillPerByteNanos))
		}
	}
	for step := 0; step < cfg.steps(); step++ {
		group := dss[step*cfg.Datasets : (step+1)*cfg.Datasets]
		if cfg.BatchParticles <= 0 || cfg.BatchParticles >= cfg.Particles {
			// One full-array write per dataset.
			for _, d := range group {
				fill(cfg.Particles)
				if err := d.Write(p, 0, cfg.Particles, nil); err != nil {
					return Result{}, err
				}
			}
			continue
		}
		// Interleaved batches across all variables.
		for off := int64(0); off < cfg.Particles; off += cfg.BatchParticles {
			n := cfg.BatchParticles
			if n > cfg.Particles-off {
				n = cfg.Particles - off
			}
			for _, d := range group {
				fill(n)
				if err := d.Write(p, off, n, nil); err != nil {
					return Result{}, err
				}
			}
		}
	}
	if err := f.Close(p); err != nil {
		return Result{}, err
	}
	return Result{Bytes: cfg.TotalBytes(), Elapsed: p.Now().Sub(start)}, nil
}

// stepName names a dataset within a timestep group.
func stepName(step, i, steps int) string {
	if steps == 1 {
		return dsName(i)
	}
	return fmt.Sprintf("t%d/%s", step, dsName(i))
}

// ReadKernel performs a full read of the datasets previously written,
// mirroring the write kernel's access pattern.
func ReadKernel(p *sim.Proc, st hdf5.Storage, cfg Config) (Result, error) {
	start := p.Now()
	f, err := hdf5.Open(p, st)
	if err != nil {
		return Result{}, err
	}
	dss := f.Datasets()
	if len(dss) != cfg.Datasets*cfg.steps() {
		return Result{}, fmt.Errorf("h5bench: found %d datasets, want %d", len(dss), cfg.Datasets*cfg.steps())
	}
	for step := 0; step < cfg.steps(); step++ {
		group := dss[step*cfg.Datasets : (step+1)*cfg.Datasets]
		if cfg.BatchParticles <= 0 || cfg.BatchParticles >= cfg.Particles {
			for _, d := range group {
				if err := d.Read(p, 0, d.Count, nil); err != nil {
					return Result{}, err
				}
			}
			continue
		}
		for off := int64(0); off < cfg.Particles; off += cfg.BatchParticles {
			n := cfg.BatchParticles
			if n > cfg.Particles-off {
				n = cfg.Particles - off
			}
			for _, d := range group {
				if err := d.Read(p, off, n, nil); err != nil {
					return Result{}, err
				}
			}
		}
	}
	if err := f.Close(p); err != nil {
		return Result{}, err
	}
	return Result{Bytes: cfg.TotalBytes(), Elapsed: p.Now().Sub(start)}, nil
}

// AggregateBandwidth sums per-kernel results over a common wall window,
// for the scale-out experiments (Figs 18/19): total bytes divided by the
// slowest kernel's elapsed time.
func AggregateBandwidth(results []Result) float64 {
	var bytes int64
	var longest time.Duration
	for _, r := range results {
		bytes += r.Bytes
		if r.Elapsed > longest {
			longest = r.Elapsed
		}
	}
	if longest <= 0 {
		return 0
	}
	return float64(bytes) / 1e9 / longest.Seconds()
}
