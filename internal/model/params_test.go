package model

import "testing"

// TestLinkOrdering checks the relationships the calibration depends on:
// each faster link must actually be faster on the wire, while the
// per-byte stack cost stays constant (the paper's stack-bound argument).
func TestLinkOrdering(t *testing.T) {
	links := []LinkParams{TCP10G(), TCP25G(), TCP100G(), Loopback()}
	seen := map[string]bool{}
	for i, l := range links {
		if l.Name == "" || seen[l.Name] {
			t.Fatalf("link %d: bad or duplicate name %q", i, l.Name)
		}
		seen[l.Name] = true
		if l.WireBytesPerSec <= 0 || l.Propagation <= 0 || l.PerMsgCPU <= 0 {
			t.Fatalf("%s: non-positive parameters: %+v", l.Name, l)
		}
		if i > 0 && links[i-1].WireBytesPerSec >= l.WireBytesPerSec {
			t.Fatalf("%s wire rate %.3g not above %s's %.3g",
				l.Name, l.WireBytesPerSec, links[i-1].Name, links[i-1].WireBytesPerSec)
		}
	}
	// The TCP stack cost is link-independent: 25G and 100G differ only in
	// the wire, which is why 100G buys so little (Fig 2).
	if TCP25G().PerByteCPUNanos != TCP100G().PerByteCPUNanos {
		t.Fatal("TCP per-byte stack cost should not depend on the wire")
	}
}

// TestRDMAFasterThanTCP checks RDMA's calibrated edge over every TCP
// link's effective per-stream ceiling (Fig 2: RDMA read ~1.46x TCP-100G).
func TestRDMAFasterThanTCP(t *testing.T) {
	for _, r := range []RDMAParams{RDMA56G(), RoCE100G()} {
		if r.Name == "" || r.WireBytesPerSec <= 0 {
			t.Fatalf("bad RDMA params: %+v", r)
		}
		// Kernel bypass: lower propagation and per-op cost than any TCP link.
		for _, l := range []LinkParams{TCP10G(), TCP25G(), TCP100G()} {
			if r.Propagation >= l.Propagation {
				t.Fatalf("%s propagation %v not below %s's %v", r.Name, r.Propagation, l.Name, l.Propagation)
			}
			if r.PerOpCPU >= l.PerMsgCPU {
				t.Fatalf("%s per-op cost %v not below %s's per-msg %v", r.Name, r.PerOpCPU, l.Name, l.PerMsgCPU)
			}
		}
		if r.MemRegCost <= 0 || r.MemRegWarmOps <= 0 {
			t.Fatalf("%s: registration-cache model unset", r.Name)
		}
	}
	// The physical RoCE testbed outruns virtualized IB FDR.
	if RoCE100G().WireBytesPerSec <= RDMA56G().WireBytesPerSec {
		t.Fatal("RoCE-100G should out-bandwidth IB-FDR-56G")
	}
}

// TestSSDGeometry checks the device model against the calibration notes:
// aggregate read bandwidth above write, write setup far below read setup
// (§3.2: the device itself completes writes faster).
func TestSSDGeometry(t *testing.T) {
	s := DefaultSSD()
	if s.Channels <= 0 {
		t.Fatal("no channels")
	}
	readBW := float64(s.Channels) * s.ChannelReadBytesPerSec
	writeBW := float64(s.Channels) * s.ChannelWriteBytesPerSec
	if readBW <= writeBW {
		t.Fatalf("read bandwidth %.3g not above write %.3g", readBW, writeBW)
	}
	if s.WriteSetup >= s.ReadSetup {
		t.Fatalf("write setup %v not below read setup %v (cache-hit model)", s.WriteSetup, s.ReadSetup)
	}
	if s.StallProb < 0 || s.StallProb > 1 || s.JitterFrac < 0 || s.JitterFrac > 1 {
		t.Fatalf("probabilities out of range: %+v", s)
	}
	// Device read bandwidth must exceed the 10G wire so the fabric, not
	// the SSD, is the single-stream bottleneck for slow links.
	if readBW <= TCP10G().WireBytesPerSec {
		t.Fatalf("device read bandwidth %.3g below the 10G wire", readBW)
	}
}

// TestSHMParams checks the shared-memory channel invariants the designs
// are compared on.
func TestSHMParams(t *testing.T) {
	s := DefaultSHM()
	if s.CopyBytesPerSec <= 0 || s.SlotOverhead <= 0 || s.RegionSize <= 0 {
		t.Fatalf("bad SHM params: %+v", s)
	}
	if s.FutexProb <= 0 || s.FutexProb >= 1 {
		t.Fatalf("futex probability %v out of (0,1)", s.FutexProb)
	}
	// The futex slow path must dwarf the ordinary lock hold — it is the
	// entire locked-design tail story (§4.4.4).
	if s.FutexPenalty < 10*s.LockHold {
		t.Fatalf("futex penalty %v not >> lock hold %v", s.FutexPenalty, s.LockHold)
	}
}

// TestTCPTransportDefaults checks stock SPDK-like settings.
func TestTCPTransportDefaults(t *testing.T) {
	tp := DefaultTCPTransport()
	if tp.ChunkSize != 128<<10 {
		t.Fatalf("stock chunk size %d, want 128K", tp.ChunkSize)
	}
	if tp.InCapsuleThreshold <= 0 || tp.InCapsuleThreshold >= tp.ChunkSize {
		t.Fatalf("in-capsule threshold %d out of place", tp.InCapsuleThreshold)
	}
	if tp.DataBuffers <= 0 {
		t.Fatal("no data buffers")
	}
	if tp.BusyPoll != 0 || tp.AutoChunk || tp.AutoBusyPoll {
		t.Fatalf("stock settings should not enable adaptive features: %+v", tp)
	}
}

// TestHostAndNFSParams sanity-checks the remaining parameter sets.
func TestHostAndNFSParams(t *testing.T) {
	h := DefaultHost()
	if h.SubmitCPU <= 0 || h.CompleteCPU <= 0 || h.BdevSubmitCPU <= 0 || h.FillPerByteNanos <= 0 {
		t.Fatalf("bad host params: %+v", h)
	}
	n := DefaultNFS()
	if n.WSize <= 0 || n.RSize <= 0 || n.CacheBytes <= 0 || n.PerRPCCPU <= 0 {
		t.Fatalf("bad NFS params: %+v", n)
	}
	if n.FlushDepth <= 0 || n.CommitDepth <= 0 || n.ReadDepth <= 0 || n.ReadAheadBytes <= 0 {
		t.Fatalf("bad NFS depths: %+v", n)
	}
	// The page cache absorbs writes faster than the 25G wire the NFS
	// baseline runs on — why async NFS wins the h5bench write phase (Fig 17).
	if n.CacheCopyBytesPerSec <= TCP25G().WireBytesPerSec {
		t.Fatal("NFS cache absorption should beat its wire")
	}
}
