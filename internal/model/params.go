// Package model holds the calibrated hardware and software timing
// parameters for the NVMe-oAF simulation.
//
// Every constant is documented with the paper observation it was calibrated
// against (figure/table numbers refer to Kashyap & Lu, HPDC '22). Absolute
// values are chosen so that the *shape* of each reproduced figure matches
// the paper: who wins, by roughly what factor, and where crossovers fall.
// The physical testbed being simulated is described in Table 1 of the
// paper (Chameleon/CloudLab nodes, QEMU VMs with SR-IOV, emulated
// NVMe-SSDs, IVSHMEM).
package model

import "time"

// SSDParams models one NVMe SSD: a set of independent flash channels, each
// serving one request at a time with a fixed setup cost plus a
// size-proportional transfer cost. Writes land in an on-device cache and
// have a much smaller setup cost, matching the paper's observation that
// writes are slower end-to-end only because of host-side preparation, while
// the device itself completes them faster (§3.2).
type SSDParams struct {
	// Channels is the device's internal parallelism. Concurrency beyond
	// this saturates the device (Fig 14: bandwidth scales with queue depth
	// until the SSD limit).
	Channels int
	// ReadSetup is the fixed per-command read cost on a channel
	// (flash read + FTL). Dominates small reads: ~80us for 4 KB
	// (Fig 3: "I/O time" is the major component for 4 KB RDMA reads).
	ReadSetup time.Duration
	// WriteSetup is the fixed per-command write cost (cache hit).
	WriteSetup time.Duration
	// ChannelReadBytesPerSec is per-channel read streaming bandwidth.
	// 8 channels x 320 MB/s = 2.56 GB/s device read bandwidth, so four
	// devices offer ~10 GB/s — comfortably above every network in Fig 2,
	// making the fabric the bottleneck for all TCP transports.
	ChannelReadBytesPerSec float64
	// ChannelWriteBytesPerSec is per-channel write streaming bandwidth
	// (2.08 GB/s per device).
	ChannelWriteBytesPerSec float64
	// StallProb is the per-command probability of an internal stall
	// (garbage collection / erase suspend), the device's contribution to
	// tail latency (Fig 13).
	StallProb float64
	// StallDuration is the mean stall length.
	StallDuration time.Duration
	// JitterFrac is the +/- uniform service-time jitter fraction.
	JitterFrac float64
}

// DefaultSSD returns the emulated NVMe-SSD used by all experiments.
func DefaultSSD() SSDParams {
	return SSDParams{
		Channels:                8,
		ReadSetup:               68 * time.Microsecond,
		WriteSetup:              12 * time.Microsecond,
		ChannelReadBytesPerSec:  320e6,
		ChannelWriteBytesPerSec: 260e6,
		StallProb:               0.0005,
		StallDuration:           800 * time.Microsecond,
		JitterFrac:              0.10,
	}
}

// LinkParams models a full-duplex network path between two VMs, including
// the virtualized NIC and the host TCP/IP stack costs on both ends.
type LinkParams struct {
	Name string
	// WireBytesPerSec is the effective data-rate ceiling of the shared
	// wire in each direction (after framing/protocol efficiency).
	WireBytesPerSec float64
	// Propagation is the one-way latency excluding serialization:
	// NIC + vswitch/SR-IOV + switch.
	Propagation time.Duration
	// PerMsgCPU is host CPU time to send or receive one PDU/segment batch
	// (syscalls, protocol processing). Paid on each side per message.
	PerMsgCPU time.Duration
	// PerByteCPUNanos is host CPU time per payload byte in nanoseconds
	// (copies + checksum). This is what makes NVMe/TCP stack-bound rather
	// than wire-bound at 25/100 Gbps (Fig 2: 100G is only ~1.26-1.48x
	// faster than 25G).
	PerByteCPUNanos float64
	// WakeupPenalty is the added latency when a message arrives while the
	// receiving reactor is idle in interrupt mode (context switch + IRQ).
	WakeupPenalty time.Duration
}

// TCP10G models the Broadcom 10 GbE path (Chameleon). Wire-bound:
// 10 Gbit/s x 94% framing efficiency = 1.175 GB/s.
func TCP10G() LinkParams {
	return LinkParams{
		Name:            "tcp-10g",
		WireBytesPerSec: 1.175e9,
		Propagation:     20 * time.Microsecond,
		PerMsgCPU:       6 * time.Microsecond,
		PerByteCPUNanos: 1.25, // ~800 MB/s per-stream stack ceiling
		WakeupPenalty:   12 * time.Microsecond,
	}
}

// TCP25G models the 25 GbE path. The paper simulates 25G with IPoIB, whose
// datagram-mode overhead caps efficiency well below line rate: 3.125 GB/s x
// 72% = 2.25 GB/s (Fig 2: 25G barely beats 10G at 4 KB and only modestly at
// 128 KB).
func TCP25G() LinkParams {
	return LinkParams{
		Name:            "tcp-25g",
		WireBytesPerSec: 2.25e9,
		Propagation:     18 * time.Microsecond,
		PerMsgCPU:       6 * time.Microsecond,
		PerByteCPUNanos: 1.25,
		WakeupPenalty:   12 * time.Microsecond,
	}
}

// TCP100G models the Mellanox ConnectX-5 Ex 100 GbE path (CloudLab). The
// wire (11.25 GB/s) is never the bottleneck; the per-stream stack cost is
// (Fig 2/11: TCP-100G read ~1.26x TCP-25G, still ~1.46x below RDMA).
func TCP100G() LinkParams {
	return LinkParams{
		Name:            "tcp-100g",
		WireBytesPerSec: 11.25e9,
		Propagation:     15 * time.Microsecond,
		PerMsgCPU:       6 * time.Microsecond,
		PerByteCPUNanos: 1.25,
		WakeupPenalty:   12 * time.Microsecond,
	}
}

// Loopback models the intra-node TCP path used by the adaptive fabric's
// control plane (client VM to target VM on the same host through the
// virtual switch). High bandwidth, but each message still pays stack CPU
// and vswitch hops — the paper's observation that control-plane overhead
// dominates oAF at 4 KB (Fig 12, §5.5).
func Loopback() LinkParams {
	return LinkParams{
		Name:            "tcp-loopback",
		WireBytesPerSec: 14e9,
		Propagation:     8 * time.Microsecond,
		PerMsgCPU:       5 * time.Microsecond,
		PerByteCPUNanos: 1.10,
		WakeupPenalty:   12 * time.Microsecond,
	}
}

// RDMAParams models an RDMA transport (InfiniBand FDR or RoCE).
type RDMAParams struct {
	Name string
	// WireBytesPerSec is the effective RDMA data bandwidth.
	// IB FDR 56G: 54.3 Gbit/s x ~64% effective = 4.3 GB/s (calibrated to
	// Fig 2: RDMA read ~1.46x TCP-100G).
	WireBytesPerSec float64
	// Propagation is the one-way fabric latency (kernel-bypass, SR-IOV).
	Propagation time.Duration
	// PerOpCPU is the per-work-request host cost (doorbell + CQE).
	PerOpCPU time.Duration
	// MemRegCost is the cost of registering a buffer region with the HCA
	// (page pinning + translation-table update for a multi-megabyte
	// region). Paid on registration-cache misses; drives RDMA's
	// short-run tail latency (Fig 13 and §5.4).
	MemRegCost time.Duration
	// MemRegWarmOps is a legacy-model knob: the decay constant (in
	// completed operations) of the registration miss rate. The
	// mechanistic MR cache derives its cold-region count from it
	// (regions = round(0.007 x MemRegWarmOps)) so a handful of misses
	// land early in the run with the same decay constant the stochastic
	// model had. Short runs keep the tail high; runs 3-4x longer dilute
	// the fixed event count below the tail percentiles, exactly as the
	// paper observes in §5.4.
	MemRegWarmOps float64
	// MemRegFloorProb is a legacy-model knob: the steady-state miss
	// probability after warmup. The mechanistic cache maps it to
	// region-churn (invalidation) probability per post.
	MemRegFloorProb float64
	// RegCacheBytes caps the fast-path MR cache (0 = 256 MiB). Only
	// consulted when the registration cache is enabled on the client.
	RegCacheBytes int64
}

// RDMA56G models NVMe/RDMA over 56 Gb IB FDR with SR-IOV.
func RDMA56G() RDMAParams {
	return RDMAParams{
		Name:            "rdma-ib56",
		WireBytesPerSec: 4.3e9,
		Propagation:     5 * time.Microsecond,
		PerOpCPU:        3 * time.Microsecond,
		MemRegCost:      2200 * time.Microsecond,
		MemRegWarmOps:   400,
		MemRegFloorProb: 0.000005,
	}
}

// RoCE100G models NVMe/RoCE on two directly connected physical CloudLab
// nodes (no virtualization layer): the paper's upper bound. Only one real
// SSD existed on that testbed, so multi-SSD RoCE rows are absent from the
// paper and from our harness too.
func RoCE100G() RDMAParams {
	return RDMAParams{
		Name:            "roce-100g",
		WireBytesPerSec: 10.6e9,
		Propagation:     3 * time.Microsecond,
		PerOpCPU:        2 * time.Microsecond,
		MemRegCost:      240 * time.Microsecond,
		MemRegWarmOps:   30000,
		MemRegFloorProb: 0.000005,
	}
}

// SHMParams models the IVSHMEM/ICSHMEM shared-memory channel and the CPU
// costs of moving payloads through it.
type SHMParams struct {
	// CopyBytesPerSec is single-core memcpy bandwidth between a private
	// buffer and the shared region (or the DPDK pool): cross-VM copies
	// miss caches and cross NUMA, landing well below peak DRAM bandwidth.
	// This is the cost the zero-copy design removes from the client
	// (Fig 8).
	CopyBytesPerSec float64
	// SlotOverhead is the fixed per-I/O cost of claiming a slot, writing
	// the I/O vector, and memory fencing.
	SlotOverhead time.Duration
	// LockHold is the extra critical-section cost per shared-memory access
	// in the naive locked design (SHM-baseline in Fig 8): lock acquisition
	// plus cacheline bouncing. The lock additionally serializes all copies.
	LockHold time.Duration
	// FutexProb is the probability that a locked-mode acquisition takes
	// the slow futex path (cross-VM mutex handoff: sleep + kernel
	// wakeup). These rare events dominate the locked design's tail
	// latency — the -38%% p99.99 the lock-free scheme recovers (§4.4.4).
	FutexProb float64
	// FutexPenalty is the slow-path cost.
	FutexPenalty time.Duration
	// RegionSize is the default shared region size per client.
	RegionSize int
}

// DefaultSHM returns the shared-memory channel parameters.
func DefaultSHM() SHMParams {
	return SHMParams{
		CopyBytesPerSec: 2.2e9,
		SlotOverhead:    600 * time.Nanosecond,
		LockHold:        2 * time.Microsecond,
		FutexProb:       0.03,
		FutexPenalty:    180 * time.Microsecond,
		RegionSize:      256 << 20,
	}
}

// HostParams models client/target software costs independent of fabric.
type HostParams struct {
	// SubmitCPU is the cost to build and submit one NVMe command capsule.
	SubmitCPU time.Duration
	// CompleteCPU is the cost to process one completion.
	CompleteCPU time.Duration
	// FillPerByteNanos is the client-side cost per byte (in nanoseconds)
	// to produce write payload into a private buffer ("other" time in
	// Fig 3: TCP writes must fill and then copy out the buffer; oAF's
	// zero-copy design fills the shared buffer in place and skips the
	// copy-out).
	FillPerByteNanos float64
	// BdevSubmitCPU is the target-side cost to hand a request to the
	// block-device layer.
	BdevSubmitCPU time.Duration
}

// DefaultHost returns the software-path cost parameters.
func DefaultHost() HostParams {
	return HostParams{
		SubmitCPU:        1500 * time.Nanosecond,
		CompleteCPU:      1200 * time.Nanosecond,
		FillPerByteNanos: 0.30, // ~3.3 GB/s payload generation
		BdevSubmitCPU:    900 * time.Nanosecond,
	}
}

// TCPTransportParams collects NVMe/TCP protocol behaviour knobs.
type TCPTransportParams struct {
	// InCapsuleThreshold: writes at or below this size travel with the
	// command capsule (no R2T round trip), per the NVMe/TCP flow-control
	// split the paper describes in §4.4.2.
	InCapsuleThreshold int
	// ChunkSize is the application-level chunk size; I/O larger than this
	// is split into ceil(size/chunk) data PDUs, and target data buffers
	// are allocated at this granularity (§4.5, Fig 9). SPDK's stock value
	// is 128 KB; the paper finds 512 KB optimal for 25 GbE.
	ChunkSize int
	// DataBuffers is the number of chunk-sized data buffers in the target
	// pool (R2T credits for conservative flow control).
	DataBuffers int
	// BusyPoll is the receive busy-poll budget (0 = interrupt mode).
	BusyPoll time.Duration
	// AutoChunk lets the adaptive fabric pick ChunkSize from the link
	// hardware at connect time (§4.5).
	AutoChunk bool
	// AutoBusyPoll lets the adaptive fabric steer the busy-poll budget
	// from the live read/write mix (§4.5, Fig 10's policy).
	AutoBusyPoll bool
	// BatchSize is the submission/completion coalescing depth: the client
	// packs up to this many queued commands into one capsule train (one
	// network message, one doorbell, one SHM notify for slot writes) and
	// the target merges up to this many ready completions into one
	// response message. 0 or 1 preserves the classic one-message-per-
	// command behaviour.
	BatchSize int
}

// DefaultTCPTransport returns stock SPDK-like NVMe/TCP settings.
func DefaultTCPTransport() TCPTransportParams {
	return TCPTransportParams{
		InCapsuleThreshold: 8 << 10,
		ChunkSize:          128 << 10,
		DataBuffers:        128,
		BusyPoll:           0,
	}
}

// NFSParams models the NFS baseline used in the h5bench comparison
// (§5.7.1): an async-mounted NFSv4 export over TCP.
type NFSParams struct {
	// WSize/RSize are the mount's transfer sizes.
	WSize, RSize int
	// CacheBytes is the client page-cache budget for write-back and
	// read-ahead. The async mount buffers writes at memory speed and
	// flushes in the background — why NFS beats plain oAF for the
	// 8-dataset h5bench workload (Fig 17).
	CacheBytes int
	// PerRPCCPU is the per-RPC client+server processing cost.
	PerRPCCPU time.Duration
	// FlushDepth is the number of WRITE RPCs kept in flight during the
	// close-time flush; the COMMIT that follows forces the server's disk
	// writes, which bound NFS write bandwidth (close-to-open consistency
	// makes h5bench's measured window include this flush).
	FlushDepth int
	// CommitDepth is the server's disk-write concurrency while serving a
	// COMMIT.
	CommitDepth int
	// ReadDepth is the number of READ RPCs kept in flight by readahead.
	ReadDepth int
	// ReadAheadBytes is the client's sequential readahead window.
	ReadAheadBytes int
	// CacheCopyBytesPerSec is the client page-cache memcpy bandwidth: the
	// rate at which the async mount absorbs writes before close.
	CacheCopyBytesPerSec float64
}

// DefaultNFS returns the NFS baseline parameters.
func DefaultNFS() NFSParams {
	return NFSParams{
		WSize:                1 << 20,
		RSize:                1 << 20,
		CacheBytes:           256 << 20,
		PerRPCCPU:            18 * time.Microsecond,
		FlushDepth:           2,
		CommitDepth:          3,
		ReadDepth:            6,
		ReadAheadBytes:       4 << 20,
		CacheCopyBytesPerSec: 8e9,
	}
}
