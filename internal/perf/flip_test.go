package perf

import (
	"testing"
	"time"

	"nvmeoaf/internal/sim"
)

// flipWorkload is the canonical phase-flip pattern: 4K random read for
// the first half of the window, 128K sequential read for the second.
func flipWorkload(name string) Workload {
	return Workload{
		Name: name, ReadPct: 100, IOSize: 4096,
		QueueDepth: 16, Duration: 200 * time.Millisecond,
		FlipAt: 100 * time.Millisecond,
		FlipTo: &Phase{Seq: true, ReadPct: 100, IOSize: 128 << 10},
	}
}

// flipRun drives one flipped stream to completion.
func flipRun(t *testing.T, seed int64, w Workload) *Result {
	t.Helper()
	e, connect := rig(t, seed)
	var res *Result
	e.Go("main", func(p *sim.Proc) {
		q := connect(p, w.QueueDepth)
		s := NewStream(e, q, w)
		s.Start()
		res = s.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkloadFlipSwitchesPattern(t *testing.T) {
	res := flipRun(t, 11, flipWorkload("flip"))
	pf := res.PostFlip
	if pf == nil {
		t.Fatal("no post-flip sub-result")
	}
	if pf.Throughput.Ops == 0 || pf.Throughput.Ops >= res.Throughput.Ops {
		t.Fatalf("post-flip ops %d of %d total", pf.Throughput.Ops, res.Throughput.Ops)
	}
	// Phase two is pure 128K: the post-flip mean request size must sit
	// near 128K (a few in-flight 4K stragglers may land just after the
	// flip instant).
	mean := float64(pf.Throughput.Bytes) / float64(pf.Throughput.Ops)
	if mean < 100<<10 {
		t.Fatalf("post-flip mean request %.0f bytes, want ~128K", mean)
	}
	// Phase one dominates the op count (4K is much faster per op), so
	// the whole-run mean stays well below phase two's.
	whole := float64(res.Throughput.Bytes) / float64(res.Throughput.Ops)
	if whole >= mean {
		t.Fatalf("whole-run mean %.0f >= post-flip mean %.0f", whole, mean)
	}
	if pf.Throughput.Window() != 100*time.Millisecond {
		t.Fatalf("post-flip window %v, want 100ms", pf.Throughput.Window())
	}
	if pf.Latency.Count() != pf.Throughput.Ops {
		t.Fatalf("post-flip latency samples %d != ops %d", pf.Latency.Count(), pf.Throughput.Ops)
	}
}

func TestWorkloadFlipDeterministic(t *testing.T) {
	a := flipRun(t, 12, flipWorkload("det"))
	b := flipRun(t, 12, flipWorkload("det"))
	if a.Throughput.Ops != b.Throughput.Ops || a.Throughput.Bytes != b.Throughput.Bytes {
		t.Fatalf("totals diverge: %+v vs %+v", a.Throughput, b.Throughput)
	}
	if a.PostFlip.Throughput.Ops != b.PostFlip.Throughput.Ops ||
		a.PostFlip.Throughput.Bytes != b.PostFlip.Throughput.Bytes {
		t.Fatalf("post-flip diverges: %+v vs %+v", a.PostFlip.Throughput, b.PostFlip.Throughput)
	}
	if a.Latency.Mean() != b.Latency.Mean() {
		t.Fatalf("latency means diverge: %v vs %v", a.Latency.Mean(), b.Latency.Mean())
	}
}

func TestWorkloadFlipDifferentSeedsDiverge(t *testing.T) {
	// Sanity check that the determinism test has teeth: with a 70:30
	// mix, different seeds draw different read/write sequences.
	mixed := func(name string) Workload {
		w := flipWorkload(name)
		w.ReadPct = 70
		return w
	}
	a := flipRun(t, 13, mixed("s13"))
	b := flipRun(t, 14, mixed("s14"))
	if a.ReadLatency.Count() == b.ReadLatency.Count() &&
		a.WriteLatency.Count() == b.WriteLatency.Count() {
		t.Fatal("different seeds produced identical read/write draws")
	}
}

func TestWorkloadFlipBeforeWindowNoOps(t *testing.T) {
	// A flip that never fires (FlipAt beyond the run) leaves PostFlip nil.
	w := flipWorkload("late")
	w.FlipAt = time.Hour
	res := flipRun(t, 15, w)
	if res.PostFlip != nil {
		t.Fatalf("flip beyond the run produced a post-flip result: %+v", res.PostFlip.Throughput)
	}
}

func TestMaxIOSizeCoversFlipPhase(t *testing.T) {
	w := flipWorkload("max")
	if got := w.MaxIOSize(); got != 128<<10 {
		t.Fatalf("MaxIOSize = %d, want 128K from the flip phase", got)
	}
	w.FlipTo.SizeMix = []SizeWeight{{Size: 1 << 20, Weight: 1}}
	if got := w.MaxIOSize(); got != 1<<20 {
		t.Fatalf("MaxIOSize = %d, want 1M from the flip-phase mix", got)
	}
	plain := Workload{IOSize: 8192}
	if got := plain.MaxIOSize(); got != 8192 {
		t.Fatalf("MaxIOSize = %d, want 8192", got)
	}
}
