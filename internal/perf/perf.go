// Package perf implements the SPDK-perf-equivalent workload engine the
// paper uses for all microbenchmarks: per-stream sequential/random
// read/write/mixed generators with a fixed queue depth, warmup, a
// measured window, and per-request latency plus breakdown accounting.
//
// One Stream models one perf instance pinned to a core: a single driver
// process keeps QueueDepth commands outstanding against one transport
// queue and resubmits on every completion, exactly like SPDK perf's
// completion-driven loop.
package perf

import (
	"fmt"
	"math/rand"
	"time"

	"nvmeoaf/internal/ring"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/stats"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// Workload describes one stream's I/O pattern.
type Workload struct {
	// Name labels the stream in results.
	Name string
	// Seq selects sequential offsets (wrapping over Span); otherwise
	// offsets are uniformly random block-aligned positions.
	Seq bool
	// Zipf, when positive and Seq is false, skews random offsets to a
	// hot set: items of IOSize granularity are drawn Zipfian with this
	// theta (YCSB's hot-set knob; 0.99 is the standard skew) and
	// scrambled across the span. Zero keeps the uniform pattern.
	Zipf float64
	// ReadPct is the percentage of reads (100 = pure read, 0 = pure
	// write, 70 = the paper's 70:30 mix).
	ReadPct int
	// IOSize is the request size in bytes (block aligned).
	IOSize int
	// SizeMix, when non-empty, draws each request's size from a weighted
	// distribution instead of the fixed IOSize — the "diverse workloads
	// with varying I/O sizes" of §3.3.
	SizeMix []SizeWeight
	// QueueDepth is the number of outstanding commands.
	QueueDepth int
	// Batch, when above 1 and the queue supports transport.BatchQueue,
	// submits commands in trains of up to this size (one submit-CPU
	// charge, one doorbell per train) and reaps all available completions
	// per wakeup before refilling — the SPDK submit/reap loop shape.
	Batch int
	// Ring drives the stream through the SQ/CQ ring fast path
	// (internal/ring) instead of the future-based Submit API: fixed
	// submission entries, one doorbell per refill train, completions
	// reaped in batches, zero allocations per op on session-engine
	// queues. Batch is ignored in ring mode — the refill train IS the
	// batch.
	Ring bool
	// Telemetry, when Ring is set, receives the ring.* metric group
	// (nil = off).
	Telemetry *telemetry.Sink
	// Span is the working-set size in bytes (defaults to 1 GiB).
	Span int64
	// Warmup is excluded from measurement.
	Warmup time.Duration
	// Duration is the measured window (the paper uses 20 s).
	Duration time.Duration
	// FlipAt, together with FlipTo, switches the stream to a second
	// pattern phase mid-run: FlipAt is the offset from stream start
	// (warmup included) at which requests drawn after that instant use
	// FlipTo's pattern. The flip is a generator-side change only — the
	// queue, connection, and measured window are untouched, which is what
	// lets a tuning controller prove it re-converges across workload
	// phases without reconnecting.
	FlipAt time.Duration
	// FlipTo is the second phase's pattern (nil = no flip).
	FlipTo *Phase
}

// Phase is the pattern half of a Workload: the fields a mid-run flip
// replaces. All fields are authoritative — ReadPct 0 means pure write,
// Seq false means random — except IOSize, where 0 keeps the phase-one
// size. Span and QueueDepth cannot flip (they size buffers and bounds).
type Phase struct {
	Seq     bool
	Zipf    float64
	ReadPct int
	IOSize  int
	SizeMix []SizeWeight
}

// SizeWeight is one entry of a request-size distribution.
type SizeWeight struct {
	Size   int
	Weight int
}

// withDefaults normalizes the workload.
func (w Workload) withDefaults() Workload {
	if w.Span <= 0 {
		w.Span = 1 << 30
	}
	if w.QueueDepth <= 0 {
		w.QueueDepth = 128
	}
	if w.Duration <= 0 {
		w.Duration = time.Second
	}
	if w.IOSize <= 0 {
		w.IOSize = 4096
	}
	if w.FlipTo != nil && w.FlipTo.IOSize <= 0 {
		flip := *w.FlipTo
		flip.IOSize = w.IOSize
		w.FlipTo = &flip
	}
	return w
}

// MaxIOSize returns the largest request size any phase of the workload
// can draw — what buffer-sizing consumers must provision for.
func (w Workload) MaxIOSize() int {
	w = w.withDefaults()
	max := w.IOSize
	for _, sw := range w.SizeMix {
		if sw.Size > max {
			max = sw.Size
		}
	}
	if w.FlipTo != nil {
		if w.FlipTo.IOSize > max {
			max = w.FlipTo.IOSize
		}
		for _, sw := range w.FlipTo.SizeMix {
			if sw.Size > max {
				max = sw.Size
			}
		}
	}
	return max
}

// Result captures one stream's measured window.
type Result struct {
	Name       string
	Throughput stats.Throughput
	// Latency histograms: all ops, plus read/write splits.
	Latency, ReadLatency, WriteLatency *stats.Histogram
	// BD accumulates the paper's three-way latency decomposition.
	BD stats.Breakdown
	// Errors counts failed commands.
	Errors int64
	// PostFlip, for a flipped workload (Workload.FlipTo), separately
	// accounts completions landing after the flip instant, so phase-two
	// throughput and latency can be judged on their own. Those
	// completions are also included in the totals above.
	PostFlip *Result
}

// Stream drives one workload against one transport queue.
type Stream struct {
	e     *sim.Engine
	q     transport.Queue
	w     Workload
	rng   *rand.Rand
	zipf  *zipfGen
	res   *Result
	done  *sim.Signal
	start sim.Time
	// Flip state: the virtual instant the second phase begins and
	// whether the generator has switched yet.
	flipAt  sim.Time
	flipped bool
	// freeIOs recycles request structs between submissions (driver-proc
	// only; bounded by capacity).
	freeIOs []*transport.IO
}

// NewStream prepares a stream; Start launches its driver process.
func NewStream(e *sim.Engine, q transport.Queue, w Workload) *Stream {
	w = w.withDefaults()
	var z *zipfGen
	if !w.Seq && w.Zipf > 0 {
		z = newZipf(w.Span/int64(w.IOSize), w.Zipf)
	}
	return &Stream{
		zipf: z,
		e:    e,
		q:    q,
		w:    w,
		rng:  e.Rand("perf/" + w.Name),
		res: &Result{
			Name:         w.Name,
			Latency:      stats.NewHistogram(),
			ReadLatency:  stats.NewHistogram(),
			WriteLatency: stats.NewHistogram(),
		},
		done: sim.NewSignal(e),
	}
}

// Start launches the driver process at the current virtual time.
func (s *Stream) Start() {
	s.e.Go("perf/"+s.w.Name, s.drive)
}

// Wait blocks until the stream has drained after its measured window.
func (s *Stream) Wait(p *sim.Proc) *Result {
	s.done.Wait(p)
	return s.res
}

// Result returns the results (valid once the stream is done).
func (s *Stream) Result() *Result { return s.res }

// op is one in-flight operation's bookkeeping.
type op struct {
	write bool
	size  int
}

// drive is the stream's single-core driver loop.
func (s *Stream) drive(p *sim.Proc) {
	if s.w.Ring {
		s.driveRing(p)
		return
	}
	defer s.done.Fire()
	s.start = p.Now()
	measureFrom := s.start.Add(s.w.Warmup)
	measureTo := measureFrom.Add(s.w.Duration)
	s.armFlip()

	completions := sim.NewQueue[compl](s.e, 0)
	var seqOffset int64
	outstanding := 0

	// Batched submission path: trains of up to w.Batch commands per
	// doorbell when the queue supports it.
	bq, batched := s.q.(transport.BatchQueue)
	batch := s.w.Batch
	if batch <= 1 || !batched {
		batch = 1
	}
	// Preallocated train and recycled IO structs keep the steady-state
	// driver loop allocation-free.
	train := make([]*transport.IO, 0, batch)
	s.freeIOs = make([]*transport.IO, 0, s.w.QueueDepth+batch)

	finish := func(io *transport.IO, o op, submitAt sim.Time) func(*transport.Result) {
		return func(r *transport.Result) {
			completions.TryPut(compl{op: o, io: io, res: r, at: s.e.Now(), submitAt: submitAt})
		}
	}
	submit := func() {
		io := s.nextIO(&seqOffset)
		o := op{write: io.Write, size: io.Size}
		fut := s.q.Submit(p, io)
		fut.OnResolve(finish(io, o, p.Now()))
		outstanding++
	}
	submitTrain := func(n int) {
		train = train[:0]
		for i := 0; i < n; i++ {
			train = append(train, s.nextIO(&seqOffset))
		}
		futs := bq.SubmitBatch(p, train)
		submitAt := p.Now()
		for i, fut := range futs {
			io := train[i]
			fut.OnResolve(finish(io, op{write: io.Write, size: io.Size}, submitAt))
		}
		outstanding += n
	}
	refill := func(n int) {
		if batch == 1 {
			for i := 0; i < n; i++ {
				submit()
			}
			return
		}
		for n > 0 {
			k := n
			if k > batch {
				k = batch
			}
			submitTrain(k)
			n -= k
		}
	}

	refill(s.w.QueueDepth)
	for outstanding > 0 {
		c, ok := completions.Get(p)
		if !ok {
			break
		}
		// Reap everything available before refilling, so the refill train
		// covers the whole harvest (the SPDK completion-reap shape).
		freed := 1
		outstanding--
		s.record(c, measureFrom, measureTo)
		s.recycleIO(c.io)
		for {
			c, ok = completions.TryGet()
			if !ok {
				break
			}
			freed++
			outstanding--
			s.record(c, measureFrom, measureTo)
			s.recycleIO(c.io)
		}
		if p.Now() < measureTo {
			refill(freed)
		}
	}
	s.res.Throughput.Start = time.Duration(measureFrom)
	s.res.Throughput.End = time.Duration(measureTo)
	s.closeFlipWindow(measureFrom, measureTo)
}

// armFlip latches the flip instant from the stream's start time.
func (s *Stream) armFlip() {
	if s.w.FlipTo != nil {
		s.flipAt = s.start.Add(s.w.FlipAt)
	}
}

// maybeFlip switches the generator to the second phase once virtual
// time passes the flip instant. Called on the request-drawing path, so
// every request after the flip uses the new pattern; completions of
// phase-one requests still in flight drain normally. The sequential
// cursor resets so a flipped-to sequential phase starts a clean walk.
func (s *Stream) maybeFlip(seqOffset *int64) {
	if s.w.FlipTo == nil || s.flipped || s.e.Now() < s.flipAt {
		return
	}
	s.flipped = true
	*seqOffset = 0
	ph := s.w.FlipTo
	s.w.Seq = ph.Seq
	s.w.Zipf = ph.Zipf
	s.w.ReadPct = ph.ReadPct
	s.w.IOSize = ph.IOSize
	s.w.SizeMix = ph.SizeMix
	s.zipf = nil
	if !ph.Seq && ph.Zipf > 0 {
		s.zipf = newZipf(s.w.Span/int64(ph.IOSize), ph.Zipf)
	}
	s.res.PostFlip = &Result{
		Name:         s.w.Name + "/post-flip",
		Latency:      stats.NewHistogram(),
		ReadLatency:  stats.NewHistogram(),
		WriteLatency: stats.NewHistogram(),
	}
}

// closeFlipWindow stamps the post-flip sub-result's measured window:
// from the flip instant (clamped into the measured window) to its end.
func (s *Stream) closeFlipWindow(from, to sim.Time) {
	pf := s.res.PostFlip
	if pf == nil {
		return
	}
	start := s.flipAt
	if start < from {
		start = from
	}
	pf.Throughput.Start = time.Duration(start)
	pf.Throughput.End = time.Duration(to)
}

// driveRing is the ring-mode driver: the same completion-driven loop as
// drive, shaped as push -> one doorbell -> batched reap over a
// submission/completion ring. Payloads are modeled (zero-Buf entries),
// so a measured difference against the future-based driver isolates the
// per-op submission/completion machinery — which is exactly what the
// ring removes: no future or result allocation, no per-op wakeup.
func (s *Stream) driveRing(p *sim.Proc) {
	defer s.done.Fire()
	s.start = p.Now()
	measureFrom := s.start.Add(s.w.Warmup)
	measureTo := measureFrom.Add(s.w.Duration)
	s.armFlip()

	depth := s.w.QueueDepth
	r := ring.New(s.e, s.q, ring.Config{
		SQSize:    depth,
		Buffers:   1, // modeled payloads: the arena stays unused
		BufSize:   transport.BlockSize,
		Telemetry: s.w.Telemetry,
	})
	cq := make([]ring.CQE, depth)
	var seqOffset int64
	// The op's direction and size ride in UserData so the CQE is
	// self-describing: bit 0 = write, the rest = size.
	push := func(n int) {
		for i := 0; i < n; i++ {
			write, off, size := s.nextOp(&seqOffset)
			ud := uint64(size) << 1
			if write {
				ud |= 1
			}
			r.Push(ring.SQE{Write: write, Offset: off, Size: size, UserData: ud})
		}
	}
	push(depth)
	r.Submit(p)
	for {
		n := r.Reap(p, cq, 1)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			s.recordCQE(&cq[i], measureFrom, measureTo)
		}
		// Refill the whole harvest with one train + doorbell.
		if p.Now() < measureTo {
			push(n)
			r.Submit(p)
		}
	}
	r.Close()
	s.res.Throughput.Start = time.Duration(measureFrom)
	s.res.Throughput.End = time.Duration(measureTo)
	s.closeFlipWindow(measureFrom, measureTo)
}

// recordCQE accounts one ring completion inside the measured window.
func (s *Stream) recordCQE(c *ring.CQE, from, to sim.Time) {
	if c.Status.IsError() {
		s.res.Errors++
		return
	}
	if c.At < from || c.At >= to {
		return
	}
	s.recordSample(c.At, c.UserData&1 == 1, int64(c.UserData>>1), int64(c.Latency))
	s.res.BD.Add(c.IOTime, c.CommTime, c.OtherTime)
	if pf := s.postFlipFor(c.At); pf != nil {
		pf.BD.Add(c.IOTime, c.CommTime, c.OtherTime)
	}
}

type compl struct {
	op       op
	io       *transport.IO
	res      *transport.Result
	at       sim.Time
	submitAt sim.Time
}

// recycleIO returns a completed request's IO struct to the freelist.
func (s *Stream) recycleIO(io *transport.IO) {
	if io == nil || len(s.freeIOs) == cap(s.freeIOs) {
		return
	}
	s.freeIOs = append(s.freeIOs, io)
}

// record accounts one completion if it falls inside the measured window.
func (s *Stream) record(c compl, from, to sim.Time) {
	if c.res.Status.IsError() {
		s.res.Errors++
		return
	}
	if c.at < from || c.at >= to {
		return
	}
	s.recordSample(c.at, c.op.write, int64(c.op.size), int64(c.res.Latency))
	s.res.BD.Add(c.res.IOTime, c.res.CommTime, c.res.OtherTime)
	if pf := s.postFlipFor(c.at); pf != nil {
		pf.BD.Add(c.res.IOTime, c.res.CommTime, c.res.OtherTime)
	}
}

// recordSample accounts one in-window completion into the totals and,
// when it lands after the flip instant, the post-flip sub-result.
func (s *Stream) recordSample(at sim.Time, write bool, size, lat int64) {
	for _, r := range [...]*Result{s.res, s.postFlipFor(at)} {
		if r == nil {
			continue
		}
		r.Throughput.Ops++
		r.Throughput.Bytes += size
		r.Latency.Record(lat)
		if write {
			r.WriteLatency.Record(lat)
		} else {
			r.ReadLatency.Record(lat)
		}
	}
}

// postFlipFor returns the post-flip sub-result when the completion
// belongs to the second phase's interval (nil otherwise).
func (s *Stream) postFlipFor(at sim.Time) *Result {
	if s.res.PostFlip != nil && at >= s.flipAt {
		return s.res.PostFlip
	}
	return nil
}

// pickSize draws the next request size.
func (s *Stream) pickSize() int {
	if len(s.w.SizeMix) == 0 {
		return s.w.IOSize
	}
	total := 0
	for _, sw := range s.w.SizeMix {
		total += sw.Weight
	}
	n := s.rng.Intn(total)
	for _, sw := range s.w.SizeMix {
		n -= sw.Weight
		if n < 0 {
			return sw.Size
		}
	}
	return s.w.SizeMix[len(s.w.SizeMix)-1].Size
}

// nextOp draws the next request of the pattern: direction, offset, size.
func (s *Stream) nextOp(seqOffset *int64) (write bool, off int64, size int) {
	s.maybeFlip(seqOffset)
	w := s.w
	write = s.rng.Intn(100) >= w.ReadPct
	size = s.pickSize()
	switch {
	case w.Seq:
		off = *seqOffset
		*seqOffset += int64(size)
		if *seqOffset+int64(size) > w.Span {
			*seqOffset = 0
		}
	case s.zipf != nil:
		// Hot-set pattern: IOSize-granular items drawn Zipfian, so the
		// same hot offsets recur (and land cache-line aligned).
		off = s.zipf.next(s.rng) * int64(w.IOSize)
		if off+int64(size) > w.Span {
			off = (w.Span - int64(size)) / transport.BlockSize * transport.BlockSize
		}
	default:
		blocks := (w.Span - int64(size)) / transport.BlockSize
		if blocks <= 0 {
			blocks = 1
		}
		off = s.rng.Int63n(blocks) * transport.BlockSize
	}
	return write, off, size
}

// nextIO produces the next request as a (recycled) IO struct.
func (s *Stream) nextIO(seqOffset *int64) *transport.IO {
	write, off, size := s.nextOp(seqOffset)
	if n := len(s.freeIOs); n > 0 {
		io := s.freeIOs[n-1]
		s.freeIOs = s.freeIOs[:n-1]
		*io = transport.IO{Write: write, Offset: off, Size: size}
		return io
	}
	return &transport.IO{Write: write, Offset: off, Size: size}
}

// Aggregate combines several stream results into experiment-level
// figures: summed bandwidth over the common window, merged latency
// histograms, merged breakdowns.
type Aggregate struct {
	Throughput stats.Throughput
	Latency    *stats.Histogram
	ReadLat    *stats.Histogram
	WriteLat   *stats.Histogram
	BD         stats.Breakdown
	Errors     int64
}

// Merge aggregates the given results.
func Merge(results ...*Result) Aggregate {
	agg := Aggregate{
		Latency:  stats.NewHistogram(),
		ReadLat:  stats.NewHistogram(),
		WriteLat: stats.NewHistogram(),
	}
	for i, r := range results {
		if i == 0 {
			agg.Throughput.Start = r.Throughput.Start
			agg.Throughput.End = r.Throughput.End
		}
		agg.Throughput.Ops += r.Throughput.Ops
		agg.Throughput.Bytes += r.Throughput.Bytes
		agg.Latency.Merge(r.Latency)
		agg.ReadLat.Merge(r.ReadLatency)
		agg.WriteLat.Merge(r.WriteLatency)
		agg.BD.Merge(r.BD)
		agg.Errors += r.Errors
	}
	return agg
}

// String renders a one-line summary.
func (a Aggregate) String() string {
	return fmt.Sprintf("%.3f GB/s, %.0f IOPS, avg %.1fus (io %.1f / comm %.1f / other %.1f), p99.99 %.1fus",
		a.Throughput.GBps(), a.Throughput.IOPS(), a.BD.MeanTotal(),
		a.BD.MeanIO(), a.BD.MeanComm(), a.BD.MeanOther(),
		float64(a.Latency.P9999())/1e3)
}
