package perf

import (
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/stats"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/transport"
)

// rig builds one TCP stream testbed.
func rig(t *testing.T, seed int64) (*sim.Engine, func(p *sim.Proc, qd int) transport.Queue) {
	t.Helper()
	e := sim.NewEngine(seed)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem("nqn.perf")
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<30, ssdParams, false, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	srv := tcp.NewServer(e, tgt, tcp.ServerConfig{NQN: "nqn.perf", TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
	link := netsim.NewLoopLink(e, model.TCP25G())
	srv.Serve(link.B)
	return e, func(p *sim.Proc, qd int) transport.Queue {
		c, err := tcp.Connect(p, link.A, tcp.ClientConfig{NQN: "nqn.perf", QueueDepth: qd, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
}

func TestStreamMeasuresThroughputAndLatency(t *testing.T) {
	e, connect := rig(t, 1)
	var res *Result
	e.Go("main", func(p *sim.Proc) {
		q := connect(p, 16)
		s := NewStream(e, q, Workload{
			Name: "t", Seq: true, ReadPct: 100, IOSize: 128 << 10,
			QueueDepth: 16, Warmup: 20 * time.Millisecond, Duration: 200 * time.Millisecond,
		})
		s.Start()
		res = s.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Ops == 0 || res.Throughput.GBps() <= 0 {
		t.Fatalf("no throughput: %+v", res.Throughput)
	}
	if res.Latency.Count() != res.Throughput.Ops {
		t.Fatalf("latency samples %d != ops %d", res.Latency.Count(), res.Throughput.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("errors %d", res.Errors)
	}
	if res.BD.MeanTotal() <= 0 || res.BD.MeanIO() <= 0 {
		t.Fatalf("breakdown empty: %+v", res.BD)
	}
	if res.WriteLatency.Count() != 0 {
		t.Fatal("pure read workload recorded writes")
	}
}

func TestMixedWorkloadSplitsLatencies(t *testing.T) {
	e, connect := rig(t, 2)
	var res *Result
	e.Go("main", func(p *sim.Proc) {
		q := connect(p, 8)
		s := NewStream(e, q, Workload{
			Name: "mix", ReadPct: 70, IOSize: 4096,
			QueueDepth: 8, Duration: 100 * time.Millisecond,
		})
		s.Start()
		res = s.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	r, w := res.ReadLatency.Count(), res.WriteLatency.Count()
	if r == 0 || w == 0 {
		t.Fatalf("mix not mixed: reads %d writes %d", r, w)
	}
	frac := float64(r) / float64(r+w)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("read fraction %.2f, want ~0.7", frac)
	}
}

func TestWarmupExcluded(t *testing.T) {
	e, connect := rig(t, 3)
	var res *Result
	e.Go("main", func(p *sim.Proc) {
		q := connect(p, 4)
		s := NewStream(e, q, Workload{
			Name: "warm", Seq: true, ReadPct: 100, IOSize: 4096,
			QueueDepth: 4, Warmup: 50 * time.Millisecond, Duration: 100 * time.Millisecond,
		})
		s.Start()
		res = s.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Window() != 100*time.Millisecond {
		t.Fatalf("window %v", res.Throughput.Window())
	}
}

func TestQueueDepthScalesThroughput(t *testing.T) {
	run := func(qd int) float64 {
		e, connect := rig(t, 4)
		var res *Result
		e.Go("main", func(p *sim.Proc) {
			q := connect(p, qd)
			s := NewStream(e, q, Workload{
				Name: "qd", Seq: true, ReadPct: 100, IOSize: 4096,
				QueueDepth: qd, Duration: 100 * time.Millisecond,
			})
			s.Start()
			res = s.Wait(p)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return res.Throughput.IOPS()
	}
	if lo, hi := run(1), run(16); hi < 3*lo {
		t.Fatalf("QD16 (%.0f IOPS) should be >>3x QD1 (%.0f IOPS)", hi, lo)
	}
}

func TestMergeAggregates(t *testing.T) {
	a := &Result{Latency: newHist(10), ReadLatency: newHist(10), WriteLatency: newHist(0)}
	a.Throughput.Ops, a.Throughput.Bytes = 10, 4096*10
	a.Throughput.End = time.Second
	b := &Result{Latency: newHist(20), ReadLatency: newHist(20), WriteLatency: newHist(0)}
	b.Throughput.Ops, b.Throughput.Bytes = 20, 4096*20
	b.Throughput.End = time.Second
	agg := Merge(a, b)
	if agg.Throughput.Ops != 30 || agg.Throughput.Bytes != 4096*30 {
		t.Fatalf("agg: %+v", agg.Throughput)
	}
	if agg.Latency.Count() != 30 {
		t.Fatalf("latency samples %d", agg.Latency.Count())
	}
	if agg.String() == "" {
		t.Fatal("empty string")
	}
}

func newHist(n int) *stats.Histogram {
	h := stats.NewHistogram()
	for i := 0; i < n; i++ {
		h.Record(int64(i + 1))
	}
	return h
}

func TestSizeMixDistribution(t *testing.T) {
	e, connect := rig(t, 5)
	var res *Result
	e.Go("main", func(p *sim.Proc) {
		q := connect(p, 8)
		s := NewStream(e, q, Workload{
			Name: "mix-sizes", Seq: true, ReadPct: 100,
			SizeMix: []SizeWeight{
				{Size: 4096, Weight: 3},
				{Size: 128 << 10, Weight: 1},
			},
			QueueDepth: 8, Duration: 100 * time.Millisecond,
		})
		s.Start()
		res = s.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Ops == 0 {
		t.Fatal("no ops")
	}
	// Mean request size should land between the two sizes, closer to 4K
	// (3:1 weighting): expected ~(3*4K + 128K)/4 = 35K.
	mean := float64(res.Throughput.Bytes) / float64(res.Throughput.Ops)
	if mean < 8<<10 || mean > 80<<10 {
		t.Fatalf("mean request size %.0f bytes, want ~35K", mean)
	}
}
