package perf

import (
	"math"
	"math/rand"
)

// zipfGen draws item ranks from the Zipfian distribution of YCSB /
// Gray et al. ("Quickly generating billion-record synthetic databases"),
// which — unlike math/rand.Zipf — supports the skew range θ < 1 the
// hot-set literature uses (YCSB's default is θ = 0.99). Rank 0 is the
// hottest item; ranks are mapped through a bijective Feistel permutation
// before use so the hot set spreads across the address space instead of
// clustering at offset zero. Draws are allocation-free.
type zipfGen struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta, the rank-1 threshold
	// Feistel geometry for the rank→item permutation: the smallest
	// even-bit power-of-two domain covering n, split into two halves.
	halfBits uint
	halfMask uint64
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// newZipf prepares a generator over n items with skew theta in (0, 1).
func newZipf(n int64, theta float64) *zipfGen {
	if n < 1 {
		n = 1
	}
	if theta >= 1 {
		theta = 0.999 // the Gray transform needs theta < 1
	}
	zetan := zeta(n, theta)
	bits := uint(2)
	for int64(1)<<bits < n {
		bits += 2
	}
	return &zipfGen{
		n:        n,
		theta:    theta,
		alpha:    1 / (1 - theta),
		zetan:    zetan,
		eta:      (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		half:     math.Pow(0.5, theta),
		halfBits: bits / 2,
		halfMask: 1<<(bits/2) - 1,
	}
}

// nextRank draws a rank in [0, n) (0 = hottest).
func (z *zipfGen) nextRank(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// scramble is the splitmix64 finalizer, used as the Feistel round
// function so hot items are not physically adjacent.
func scramble(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// feistelRound mixes one half-word with a per-round key.
func feistelRound(v, round uint64) uint64 {
	return scramble(v ^ (round+1)*0x9e3779b97f4a7c15)
}

// permute maps rank bijectively onto [0, n): a 4-round Feistel network
// over the smallest even-bit power-of-two domain covering n, cycle-walked
// until the image lands inside [0, n). Unlike a hash-mod-n scramble this
// is a true permutation — distinct Zipf ranks never merge onto one item
// and every item stays reachable. Deterministic and allocation-free; the
// domain is at most 4n, so the walk terminates in a few steps.
func (z *zipfGen) permute(rank int64) int64 {
	if z.n == 1 {
		return 0
	}
	v := uint64(rank)
	for {
		l := v >> z.halfBits
		r := v & z.halfMask
		for round := uint64(0); round < 4; round++ {
			l, r = r, l^(feistelRound(r, round)&z.halfMask)
		}
		v = l<<z.halfBits | r
		if v < uint64(z.n) {
			return int64(v)
		}
	}
}

// next draws a permuted item index in [0, n).
func (z *zipfGen) next(rng *rand.Rand) int64 {
	return z.permute(z.nextRank(rng))
}
