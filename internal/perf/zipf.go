package perf

import (
	"math"
	"math/rand"
)

// zipfGen draws item ranks from the Zipfian distribution of YCSB /
// Gray et al. ("Quickly generating billion-record synthetic databases"),
// which — unlike math/rand.Zipf — supports the skew range θ < 1 the
// hot-set literature uses (YCSB's default is θ = 0.99). Rank 0 is the
// hottest item; ranks are scrambled by a multiplicative hash before use
// so the hot set spreads across the address space instead of clustering
// at offset zero. Draws are allocation-free.
type zipfGen struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta, the rank-1 threshold
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// newZipf prepares a generator over n items with skew theta in (0, 1).
func newZipf(n int64, theta float64) *zipfGen {
	if n < 1 {
		n = 1
	}
	if theta >= 1 {
		theta = 0.999 // the Gray transform needs theta < 1
	}
	zetan := zeta(n, theta)
	return &zipfGen{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		half:  math.Pow(0.5, theta),
	}
}

// nextRank draws a rank in [0, n) (0 = hottest).
func (z *zipfGen) nextRank(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// scramble spreads ranks across item space with a splitmix64 finalizer
// so the hot items are not physically adjacent.
func scramble(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// next draws a scrambled item index in [0, n).
func (z *zipfGen) next(rng *rand.Rand) int64 {
	return int64(scramble(uint64(z.nextRank(rng))) % uint64(z.n))
}
