package perf

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"nvmeoaf/internal/sim"
)

// topShare draws from the generator and returns the fraction of draws
// landing on the hottest 1% of items.
func topShare(t *testing.T, theta float64) float64 {
	t.Helper()
	const n = 1 << 16
	const draws = 200_000
	z := newZipf(n, theta)
	rng := rand.New(rand.NewSource(1))
	counts := make(map[int64]int, n)
	for i := 0; i < draws; i++ {
		v := z.next(rng)
		if v < 0 || v >= n {
			t.Fatalf("draw %d out of range [0,%d)", v, int64(n))
		}
		counts[v]++
	}
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(top)))
	share := 0
	for i := 0; i < n/100 && i < len(top); i++ {
		share += top[i]
	}
	return float64(share) / draws
}

// TestZipfSkewConcentratesOnHotSet checks the Gray-transform generator
// against the property the cache experiments depend on: at YCSB's
// standard theta 0.99 a small fraction of items absorbs most draws,
// while low theta approaches uniform (where the top 1% would get ~1%).
func TestZipfSkewConcentratesOnHotSet(t *testing.T) {
	skewed := topShare(t, 0.99)
	flat := topShare(t, 0.1)
	t.Logf("top-1%% share: theta=0.99 %.2f, theta=0.1 %.2f", skewed, flat)
	if skewed < 0.35 {
		t.Errorf("theta 0.99: top 1%% of items got %.2f of draws, want >= 0.35", skewed)
	}
	if flat > 0.10 {
		t.Errorf("theta 0.1: top 1%% of items got %.2f of draws, want near-uniform <= 0.10", flat)
	}
	if skewed <= flat {
		t.Error("higher theta did not increase concentration")
	}
}

// TestZipfThetaClampAndTinySpan pins the edge cases: theta >= 1 (the
// Gray transform needs theta < 1) clamps instead of diverging, and a
// one-item span always draws item 0.
func TestZipfThetaClampAndTinySpan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := newZipf(1024, 1.5)
	for i := 0; i < 1000; i++ {
		if v := z.next(rng); v < 0 || v >= 1024 {
			t.Fatalf("clamped-theta draw %d out of range", v)
		}
	}
	one := newZipf(1, 0.99)
	for i := 0; i < 10; i++ {
		if v := one.next(rng); v != 0 {
			t.Fatalf("single-item generator drew %d", v)
		}
	}
}

// TestZipfRankMappingIsPermutation pins the rank→item mapping as a true
// bijection over [0, n): the old hash-mod-n scramble could merge two
// Zipf ranks onto one item (distorting the hot-set distribution) and
// leave other items unreachable.
func TestZipfRankMappingIsPermutation(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 7, 100, 1000, 1 << 10, 16381} {
		z := newZipf(n, 0.99)
		seen := make([]bool, n)
		for rank := int64(0); rank < n; rank++ {
			v := z.permute(rank)
			if v < 0 || v >= n {
				t.Fatalf("n=%d: permute(%d) = %d out of range", n, rank, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: two ranks collide on item %d", n, v)
			}
			seen[v] = true
		}
	}
	z := newZipf(1<<16, 0.99)
	if got := testing.AllocsPerRun(100, func() { z.permute(12345) }); got != 0 {
		t.Errorf("permute allocates %.1f/op, want 0", got)
	}
}

// TestZipfStreamOffsetsAlignedAndBounded mirrors nextIO's offset
// computation: draws scaled by IOSize must stay aligned and inside the
// span, and identical seeds must reproduce identical sequences (the
// simulator's determinism contract).
func TestZipfStreamOffsetsAlignedAndBounded(t *testing.T) {
	w := Workload{IOSize: 4096, Span: 1 << 20, Zipf: 0.99}
	gen := func(seed int64) []int64 {
		z := newZipf(w.Span/int64(w.IOSize), w.Zipf)
		rng := rand.New(rand.NewSource(seed))
		offs := make([]int64, 512)
		for i := range offs {
			off := z.next(rng) * int64(w.IOSize)
			if off%int64(w.IOSize) != 0 {
				t.Fatalf("offset %d unaligned", off)
			}
			if off < 0 || off+int64(w.IOSize) > w.Span {
				t.Fatalf("offset %d outside span", off)
			}
			offs[i] = off
		}
		return offs
	}
	a, b := gen(7), gen(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestZipfWorkloadEndToEnd runs a short Zipfian stream through the perf
// harness against a live queue: it must complete without errors and
// report a sane op count (smoke for the Workload.Zipf wiring).
func TestZipfWorkloadEndToEnd(t *testing.T) {
	e, connect := rig(t, 3)
	var s *Stream
	e.Go("main", func(p *sim.Proc) {
		q := connect(p, 8)
		s = NewStream(e, q, Workload{
			Name: "zipf-smoke", IOSize: 4096, QueueDepth: 8, ReadPct: 100,
			Zipf: 0.99, Span: 16 << 20, Duration: 2 * time.Millisecond,
		})
		s.Start()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	res := s.Result()
	if res.Errors != 0 {
		t.Fatalf("zipf stream errored: %d", res.Errors)
	}
	if res.Throughput.Ops == 0 {
		t.Fatal("zipf stream completed no ops")
	}
}
