package transport

import (
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
)

// SpanCount reports how many unit-sized, unit-aligned segments io spans.
// Admin, flush, and zero-size commands always count as one (they carry no
// LBA range to cut).
func SpanCount(io *IO, unit int64) int {
	if io.Admin != 0 || io.Flush || io.Size <= 0 || unit <= 0 {
		return 1
	}
	first := io.Offset / unit
	last := (io.Offset + int64(io.Size) - 1) / unit
	return int(last-first) + 1
}

// SplitAt cuts io at unit-aligned boundaries into per-segment IOs. Data
// (when real) is sub-sliced so segments read into / write from the
// caller's buffer in place. An io contained in one unit is returned as a
// single-element slice holding io itself (no copy), so the caller can
// forward it whole.
func SplitAt(io *IO, unit int64) []*IO {
	n := SpanCount(io, unit)
	if n == 1 {
		return []*IO{io}
	}
	segs := make([]*IO, 0, n)
	off := io.Offset
	end := io.Offset + int64(io.Size)
	for off < end {
		segEnd := (off/unit + 1) * unit
		if segEnd > end {
			segEnd = end
		}
		seg := &IO{
			Write:     io.Write,
			NSID:      io.NSID,
			Offset:    off,
			Size:      int(segEnd - off),
			NoFill:    io.NoFill,
			Tenant:    io.Tenant,
			QoSExempt: io.QoSExempt,
		}
		if io.Data != nil {
			seg.Data = io.Data[off-io.Offset : segEnd-io.Offset]
		}
		segs = append(segs, seg)
		off = segEnd
	}
	return segs
}

// AggregateResults resolves one future once every segment future of a
// split io completes. segs[i] is the segment whose completion futs[i]
// carries (a nil segs means futs are already in ascending offset order,
// as SplitAt emits them). Timing reflects the slowest segment.
//
// Status contract: on any failure the merged status is the status of the
// FAILING SEGMENT WITH THE LOWEST OFFSET, regardless of the order the
// futures were created or resolved in, so a multi-error split reports
// the same error deterministically on every replay.
//
// Buffer-contents contract on mixed success/failure: split reads land in
// sub-slices of the caller's buffer in place, so after a partial failure
// the buffer holds an unspecified mix of freshly-read bytes and prior
// contents. Result.Data is nil unless every segment succeeded — callers
// must treat the buffer as garbage whenever Status != StatusSuccess.
func AggregateResults(e *sim.Engine, io *IO, segs []*IO, futs []*sim.Future[*Result]) *sim.Future[*Result] {
	out := sim.NewFuture[*Result](e)
	remaining := len(futs)
	for _, f := range futs {
		f.OnResolve(func(*Result) {
			remaining--
			if remaining > 0 {
				return
			}
			merged := &Result{Status: nvme.StatusSuccess}
			failAt := int64(-1)
			for i, sf := range futs {
				r, _ := sf.Value()
				if r.Status != nvme.StatusSuccess {
					at := int64(i)
					if segs != nil {
						at = segs[i].Offset
					}
					if failAt < 0 || at < failAt {
						failAt = at
						merged.Status = r.Status
					}
				}
				if r.Latency > merged.Latency {
					merged.Latency = r.Latency
				}
				if r.IOTime > merged.IOTime {
					merged.IOTime = r.IOTime
				}
				if r.CommTime > merged.CommTime {
					merged.CommTime = r.CommTime
				}
			}
			if other := merged.Latency - merged.IOTime - merged.CommTime; other > 0 {
				merged.OtherTime = other
			}
			if !io.Write && io.Data != nil && merged.Status == nvme.StatusSuccess {
				merged.Data = io.Data[:io.Size]
			}
			out.Resolve(merged)
		})
	}
	return out
}
