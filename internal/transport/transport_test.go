package transport

import (
	"testing"
	"testing/quick"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/sim"
)

func TestNsidDefaults(t *testing.T) {
	io := &IO{}
	if io.Nsid() != 1 {
		t.Fatalf("default nsid %d", io.Nsid())
	}
	io.NSID = 7
	if io.Nsid() != 7 {
		t.Fatalf("nsid %d", io.Nsid())
	}
}

func TestResultErr(t *testing.T) {
	r := &Result{Status: nvme.StatusSuccess}
	if r.Err() != nil {
		t.Fatal("success should be nil error")
	}
	r.Status = nvme.StatusLBAOutOfRange
	if r.Err() == nil {
		t.Fatal("error status should produce error")
	}
}

func TestChunksMath(t *testing.T) {
	cases := []struct{ size, chunk, want int }{
		{100, 0, 1},
		{100, 100, 1},
		{101, 100, 2},
		{512 << 10, 128 << 10, 4},
		{1, 128 << 10, 1},
	}
	for _, tc := range cases {
		if got := Chunks(tc.size, tc.chunk); got != tc.want {
			t.Errorf("Chunks(%d,%d) = %d, want %d", tc.size, tc.chunk, got, tc.want)
		}
	}
}

func TestChunkSizesCoversExactly(t *testing.T) {
	f := func(rawSize, rawChunk uint16) bool {
		size := int(rawSize)%(1<<16) + 1
		chunk := int(rawChunk)%(1<<12) + 1
		covered := 0
		prevEnd := 0
		ok := true
		ChunkSizes(size, chunk, func(off, n int) {
			if off != prevEnd || n <= 0 {
				ok = false
			}
			if n > chunk && size > chunk {
				ok = false
			}
			covered += n
			prevEnd = off + n
		})
		return ok && covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSendPDUsBatchesOntoOneMessage(t *testing.T) {
	e := sim.NewEngine(1)
	link := netsim.NewLoopLink(e, model.TCP100G())
	e.Go("tx", func(p *sim.Proc) {
		SendPDUs(p, link.A,
			&pdu.R2T{CID: 1, Length: 4096},
			&pdu.CapsuleResp{Rsp: nvme.Completion{CID: 1}},
		)
	})
	var got []pdu.PDU
	e.Go("rx", func(p *sim.Proc) {
		msg := link.B.Recv(p)
		var err error
		got, err = DecodeAll(msg)
		if err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if link.A.MsgsSent != 1 {
		t.Fatalf("sent %d messages, want 1", link.A.MsgsSent)
	}
	if len(got) != 2 || got[0].Type() != pdu.TypeR2T || got[1].Type() != pdu.TypeCapsuleResp {
		t.Fatalf("decoded %v", got)
	}
}

func TestSendPDUsVirtualWireAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	link := netsim.NewLoopLink(e, model.TCP100G())
	d := &pdu.Data{Dir: pdu.TypeC2HData, CID: 1, VirtualLen: 128 << 10}
	e.Go("tx", func(p *sim.Proc) { SendPDUs(p, link.A, d) })
	e.Go("rx", func(p *sim.Proc) { link.B.Recv(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if link.A.BytesSent < 128<<10 {
		t.Fatalf("wire bytes %d should include virtual payload", link.A.BytesSent)
	}
}

func TestPendingFinishBreakdown(t *testing.T) {
	e := sim.NewEngine(1)
	fut := sim.NewFuture[*Result](e)
	pend := &Pending{
		IO:       &IO{Size: 4096},
		Fut:      fut,
		SubmitAt: sim.Time(0),
		Comm:     100,
	}
	resp := &pdu.CapsuleResp{
		Rsp:       nvme.Completion{Status: nvme.StatusSuccess},
		IOTimeNs:  500,
		TgtCommNs: 200,
	}
	pend.Finish(sim.Time(1000), resp, nil)
	res, ok := fut.Value()
	if !ok {
		t.Fatal("unresolved")
	}
	if res.Latency != 1000 || res.IOTime != 500 || res.CommTime != 300 || res.OtherTime != 200 {
		t.Fatalf("breakdown: %+v", res)
	}
	// Other clamps at zero when components exceed total.
	fut2 := sim.NewFuture[*Result](e)
	pend2 := &Pending{IO: &IO{}, Fut: fut2, SubmitAt: 0, Comm: 900}
	pend2.Finish(sim.Time(1000), &pdu.CapsuleResp{IOTimeNs: 500}, nil)
	res2, _ := fut2.Value()
	if res2.OtherTime != 0 {
		t.Fatalf("other %v, want 0", res2.OtherTime)
	}
}
