package transport

import (
	"bytes"
	"math/rand"
	"testing"

	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
)

// Regression: the merged status of a split I/O must be the status of the
// failing segment with the LOWEST offset, even when the caller's futures
// are not in offset order and the segments resolve out of order. The
// pre-fix merge took the first error in slice order, so a caller holding
// futures in completion (or any other) order reported a different error
// on different replays.
func TestAggregateResultsLowestOffsetErrorWins(t *testing.T) {
	e := sim.NewEngine(11)
	io := &IO{Offset: 0, Size: 3 * 4096, Data: make([]byte, 3*4096)}
	segs := []*IO{
		{Offset: 8192, Size: 4096},
		{Offset: 0, Size: 4096},
		{Offset: 4096, Size: 4096},
	}
	futs := make([]*sim.Future[*Result], len(segs))
	for i := range futs {
		futs[i] = sim.NewFuture[*Result](e)
	}
	agg := AggregateResults(e, io, segs, futs)
	e.Go("resolve", func(p *sim.Proc) {
		// The highest-offset segment fails first and sits first in the
		// slice; the lowest-offset failure arrives last.
		futs[0].Resolve(&Result{Status: nvme.StatusDataTransferErr})
		futs[1].Resolve(&Result{Status: nvme.StatusInvalidField})
		futs[2].Resolve(&Result{Status: nvme.StatusSuccess})
		r := agg.Wait(p)
		if r.Status != nvme.StatusInvalidField {
			t.Errorf("merged status = %v, want lowest-offset failure (InvalidField)", r.Status)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Regression: a partially-failed split read must never surface Data. The
// caller's buffer holds a mix of read bytes and prior contents, so
// handing back a slice of it would present garbage as a successful read.
func TestAggregateResultsNoDataOnPartialFailure(t *testing.T) {
	e := sim.NewEngine(12)
	buf := bytes.Repeat([]byte{0xEE}, 2*4096)
	io := &IO{Offset: 0, Size: len(buf), Data: buf}
	segs := SplitAt(io, 4096)
	if len(segs) != 2 {
		t.Fatalf("split into %d segments, want 2", len(segs))
	}
	futs := []*sim.Future[*Result]{sim.NewFuture[*Result](e), sim.NewFuture[*Result](e)}
	agg := AggregateResults(e, io, segs, futs)
	e.Go("resolve", func(p *sim.Proc) {
		copy(segs[0].Data, bytes.Repeat([]byte{0x11}, 4096))
		futs[0].Resolve(&Result{Status: nvme.StatusSuccess, Data: segs[0].Data})
		futs[1].Resolve(&Result{Status: nvme.StatusTransientTransport})
		r := agg.Wait(p)
		if r.Status != nvme.StatusTransientTransport {
			t.Errorf("merged status = %v, want the failing segment's", r.Status)
		}
		if r.Data != nil {
			t.Error("partial failure returned Data; the buffer contents are unspecified")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property test: for random (offset, size, unit) combinations SplitAt
// produces contiguous, unit-aligned (except the ends) segments that
// sub-slice the caller's buffer so a per-segment read reassembles
// byte-for-byte, and SpanCount always equals len(SplitAt(...)).
func TestSplitAtProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		unit := int64(512) << rng.Intn(8)  // 512B .. 64KiB
		offset := int64(rng.Intn(1 << 20)) // anywhere in 1 MiB
		size := 1 + rng.Intn(4*int(unit))  // up to 4 units
		io := &IO{Offset: offset, Size: size, Data: make([]byte, size)}
		segs := SplitAt(io, unit)

		if got := SpanCount(io, unit); got != len(segs) {
			t.Fatalf("trial %d: SpanCount=%d, len(SplitAt)=%d (off=%d size=%d unit=%d)",
				trial, got, len(segs), offset, size, unit)
		}

		next := io.Offset
		covered := 0
		for i, seg := range segs {
			if seg.Offset != next {
				t.Fatalf("trial %d: segment %d starts at %d, want contiguous %d", trial, i, seg.Offset, next)
			}
			if seg.Size <= 0 {
				t.Fatalf("trial %d: segment %d has size %d", trial, i, seg.Size)
			}
			if i > 0 && seg.Offset%unit != 0 {
				t.Fatalf("trial %d: interior segment %d starts unaligned at %d (unit %d)", trial, i, seg.Offset, unit)
			}
			end := seg.Offset + int64(seg.Size)
			if i < len(segs)-1 && end%unit != 0 {
				t.Fatalf("trial %d: interior segment %d ends unaligned at %d (unit %d)", trial, i, end, unit)
			}
			if (seg.Offset / unit) != (end-1)/unit {
				t.Fatalf("trial %d: segment %d crosses a unit boundary [%d, %d)", trial, i, seg.Offset, end)
			}
			next = end
			covered += seg.Size
		}
		if covered != io.Size {
			t.Fatalf("trial %d: segments cover %d bytes, want %d", trial, covered, io.Size)
		}

		// Simulate a per-segment read from a backing store: each segment's
		// Data must be a window into the caller's buffer at the right
		// position, so filling the segments reassembles the store range.
		store := make([]byte, int(offset)+size)
		for i := range store {
			store[i] = byte((int64(i) + offset + int64(trial)) % 251)
		}
		for _, seg := range segs {
			copy(seg.Data, store[seg.Offset:seg.Offset+int64(seg.Size)])
		}
		if !bytes.Equal(io.Data, store[offset:offset+int64(size)]) {
			t.Fatalf("trial %d: reassembled buffer differs from store (off=%d size=%d unit=%d)",
				trial, offset, size, unit)
		}
	}
}

// The single-segment fast path must hand back the caller's IO itself so
// nothing is copied, and degenerate shapes (admin, flush, zero size,
// zero unit) always count as one span.
func TestSplitAtDegenerateShapes(t *testing.T) {
	for _, io := range []*IO{
		{Admin: nvme.AdminKeepAlive},
		{Flush: true},
		{Offset: 4096, Size: 0},
		{Offset: 0, Size: 4096},
	} {
		if n := SpanCount(io, 4096); n != 1 {
			t.Errorf("SpanCount(%+v) = %d, want 1", io, n)
		}
		segs := SplitAt(io, 4096)
		if len(segs) != 1 || segs[0] != io {
			t.Errorf("SplitAt(%+v) did not forward the original IO", io)
		}
	}
	if n := SpanCount(&IO{Size: 1 << 20}, 0); n != 1 {
		t.Errorf("SpanCount with unit=0 = %d, want 1", n)
	}
}
