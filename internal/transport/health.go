package transport

// Health classifies the condition of one queue as seen from the host:
// whether its connection is serving normally, serving on a fallback path
// or recovering, or gone.
type Health int

const (
	// HealthHealthy: the queue serves on its negotiated data path.
	HealthHealthy Health = iota
	// HealthDegraded: the queue still serves but on a fallback path or
	// mid-recovery (SHM→TCP failover, reconnect in progress, recent
	// command deadline expirations).
	HealthDegraded
	// HealthDead: the queue is closed or its connection is gone.
	HealthDead
)

func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthDead:
		return "dead"
	}
	return "unknown"
}

// HealthReporter is implemented by queues that can report their own
// condition (the session-engine-backed clients do).
type HealthReporter interface {
	Health() Health
}

// HealthOf reports q's condition; queues that cannot introspect
// themselves are assumed healthy (their failures surface as typed
// command errors instead).
func HealthOf(q Queue) Health {
	if hr, ok := q.(HealthReporter); ok {
		return hr.Health()
	}
	return HealthHealthy
}
