// Package transport defines the host-facing I/O interface shared by every
// NVMe-oF transport in this repository (TCP, RDMA, and the adaptive
// fabric), together with the helpers they build on: PDU batching onto the
// simulated network and per-request latency bookkeeping.
package transport

import (
	"time"

	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/sim"
)

// BlockSize is the logical block size used by all namespaces in this
// repository.
const BlockSize = 512

// AdminFlag marks a command capsule as belonging to the admin queue. Real
// NVMe separates admin and I/O submission queues; our fabrics multiplex
// both on one connection and discriminate with this flag bit, so admin
// opcodes (e.g. Get Log Page = 0x02) never collide with I/O opcodes
// (Read = 0x02).
const AdminFlag uint8 = 0x40

// IO is one application-level I/O request against a namespace.
type IO struct {
	// Write selects the direction; false means read.
	Write bool
	// NSID is the target namespace (defaults to 1 when zero).
	NSID uint32
	// Offset is the byte offset; must be a multiple of BlockSize.
	Offset int64
	// Size is the byte count; must be a positive multiple of BlockSize.
	Size int
	// Data optionally carries a real write payload (or receives real read
	// payload). Nil payloads are modeled: timing is charged, bytes are
	// not moved.
	Data []byte
	// NoFill suppresses the client-side payload-generation cost for
	// writes (used when the caller already produced the data, e.g. the
	// zero-copy path fills the shared buffer itself).
	NoFill bool
	// Flush issues an NVMe flush instead of a read/write: no offset,
	// size, or payload, and the target completes it only once every
	// write it previously acknowledged has reached durable media (the
	// barrier a write-back target cache drains on).
	Flush bool
	// Admin, when nonzero, issues an admin command with this opcode
	// instead of an I/O read/write; CDW10 carries the command dword
	// (e.g. the identify CNS value). The response data arrives in Data.
	Admin uint8
	// CDW10 is the admin command's dword 10.
	CDW10 uint32
	// Tenant attributes this I/O to a named tenant for QoS admission and
	// per-tenant telemetry, overriding the queue's configured tenant.
	// Host-side only: identity crosses the wire per-connection (in the
	// Fabrics Connect hostNQN), never per-command, so an empty tenant
	// leaves the wire byte-identical.
	Tenant string
	// QoSExempt skips token-bucket admission for this I/O while keeping
	// tenant attribution (used by replica fan-out so a quorum write
	// debits one tenant budget once, not once per replica).
	QoSExempt bool
}

// Nsid returns the effective namespace ID.
func (io *IO) Nsid() uint32 {
	if io.NSID == 0 {
		return 1
	}
	return io.NSID
}

// Result is the completion of one IO.
type Result struct {
	Status nvme.Status
	// Data is the read payload when real bytes were moved.
	Data []byte
	// Latency is the end-to-end time from Submit to completion.
	Latency time.Duration
	// IOTime, CommTime, OtherTime decompose Latency as in the paper's
	// Figures 3 and 12: device time, fabric transit time, and the rest
	// (preparation and processing, including queueing at the client).
	IOTime, CommTime, OtherTime time.Duration
}

// Err returns the status as an error (nil on success).
func (r *Result) Err() error { return r.Status.Error() }

// Queue is one host-side I/O queue pair bound to a transport connection.
// Submit never blocks the caller beyond CPU accounting; completion is
// delivered through the returned future.
type Queue interface {
	// Submit enqueues an I/O. The returned future resolves with the
	// request's result. p is the submitting process (pays submit CPU).
	Submit(p *sim.Proc, io *IO) *sim.Future[*Result]
	// Close tears the queue down; outstanding requests complete first.
	Close()
}

// BatchQueue is implemented by queues that additionally support
// doorbell-batched submission: SubmitBatch stages and enqueues a train
// of I/Os with one submit-CPU charge and one reactor kick, and the
// queue's reactor coalesces the train into batch capsules on the wire
// (when the transport's BatchSize permits). The returned futures align
// with ios; completion semantics match Submit exactly.
type BatchQueue interface {
	Queue
	SubmitBatch(p *sim.Proc, ios []*IO) []*sim.Future[*Result]
}

// RingSubmitter is implemented by queues that additionally support
// ring-native submission: the CALLER owns the completion future (a ring
// recycles one per slot instead of allocating one per op) and rings the
// doorbell once per staged train, so steady-state submission costs no
// allocation and no per-op reactor wakeup. Queues without it (striped
// groups, the replicated router) are still ring-drivable through
// Submit/SubmitBatch, just not allocation-free.
type RingSubmitter interface {
	Queue
	// SubmitInto stages io to complete into fut WITHOUT ringing the
	// doorbell. fut must be unresolved; on admission failure it resolves
	// immediately with a typed error. Completion semantics match Submit.
	SubmitInto(p *sim.Proc, io *IO, fut *sim.Future[*Result])
	// RingDoorbell charges one submit-CPU for everything staged since
	// the previous doorbell and wakes the queue's reactor once.
	RingDoorbell(p *sim.Proc)
}

// Pending tracks one in-flight request on the client side.
type Pending struct {
	IO       *IO
	Fut      *sim.Future[*Result]
	CID      uint16
	SubmitAt sim.Time
	// Comm accumulates client-observed fabric transit.
	Comm time.Duration
	// Received counts payload bytes that have arrived (reads).
	Received int
	// Sent counts payload bytes transmitted (writes).
	Sent int
}

// Finish resolves the pending request using the target-reported timing in
// the response capsule.
func (pd *Pending) Finish(now sim.Time, resp *pdu.CapsuleResp, data []byte) {
	total := now.Sub(pd.SubmitAt)
	ioTime := time.Duration(resp.IOTimeNs)
	comm := pd.Comm + time.Duration(resp.TgtCommNs)
	other := total - ioTime - comm
	if other < 0 {
		other = 0
	}
	pd.Fut.Resolve(&Result{
		Status:    resp.Rsp.Status,
		Data:      data,
		Latency:   total,
		IOTime:    ioTime,
		CommTime:  comm,
		OtherTime: other,
	})
}

// SendPDUs encodes the given PDUs back-to-back into a single network
// message (TCP coalescing) and transmits it. The message's wire size
// includes virtual payload lengths.
func SendPDUs(p *sim.Proc, ep *netsim.Endpoint, pdus ...pdu.PDU) {
	var data []byte
	wire := 0
	for _, q := range pdus {
		data = q.Encode(data)
		wire += q.WireLen()
	}
	ep.Send(p, &netsim.Message{Data: data, Wire: wire})
}

// DecodeAll parses every PDU in a received message.
func DecodeAll(msg *netsim.Message) ([]pdu.PDU, error) {
	var out []pdu.PDU
	buf := msg.Data
	for len(buf) > 0 {
		p, n, err := pdu.Decode(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		buf = buf[n:]
	}
	return out, nil
}

// Chunks returns the number of chunk-sized pieces needed for size bytes.
func Chunks(size, chunk int) int {
	if chunk <= 0 {
		return 1
	}
	return (size + chunk - 1) / chunk
}

// ChunkSizes iterates the sizes of each piece when splitting size bytes at
// chunk granularity.
func ChunkSizes(size, chunk int, fn func(off, n int)) {
	if chunk <= 0 || size <= chunk {
		fn(0, size)
		return
	}
	for off := 0; off < size; off += chunk {
		n := chunk
		if size-off < n {
			n = size - off
		}
		fn(off, n)
	}
}
