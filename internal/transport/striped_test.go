package transport

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
)

// memQueue is an in-memory member for striping tests: it stores write
// payloads, serves reads, and reports a settable health.
type memQueue struct {
	e      *sim.Engine
	store  []byte
	health Health
	ios    int
}

func newMemQueue(e *sim.Engine, capacity int) *memQueue {
	return &memQueue{e: e, store: make([]byte, capacity)}
}

func (q *memQueue) Submit(p *sim.Proc, io *IO) *sim.Future[*Result] {
	fut := sim.NewFuture[*Result](q.e)
	q.ios++
	q.e.After(time.Microsecond, func() {
		res := &Result{Status: nvme.StatusSuccess, Latency: time.Microsecond}
		if io.Admin == 0 && !io.Flush {
			if io.Write {
				copy(q.store[io.Offset:], io.Data)
			} else if io.Data != nil {
				copy(io.Data, q.store[io.Offset:int(io.Offset)+io.Size])
				res.Data = io.Data[:io.Size]
			}
		}
		fut.Resolve(res)
	})
	return fut
}

func (q *memQueue) Close()         {}
func (q *memQueue) Health() Health { return q.health }

func TestStripedMemberHealthReportsPerMember(t *testing.T) {
	e := sim.NewEngine(1)
	const unit = 4096
	members := make([]Queue, 3)
	fakes := make([]*memQueue, 3)
	for i := range members {
		fakes[i] = newMemQueue(e, 1<<20)
		members[i] = fakes[i]
	}
	s := NewStriped(e, unit, members...)

	for _, h := range s.MemberHealth() {
		if h != HealthHealthy {
			t.Fatalf("fresh group member reports %v", h)
		}
	}

	// Degrade member 1: health must single it out while reads on its
	// stripe units keep serving (the failover-asymmetry regression —
	// a degraded member is still a live data path, not a dead one).
	fakes[1].health = HealthDegraded
	hs := s.MemberHealth()
	if hs[0] != HealthHealthy || hs[1] != HealthDegraded || hs[2] != HealthHealthy {
		t.Fatalf("member health = %v, want [healthy degraded healthy]", hs)
	}

	e.Go("io", func(p *sim.Proc) {
		want := bytes.Repeat([]byte{0x7E}, 512)
		// Offset unit*1 belongs to the degraded member 1.
		off := int64(unit)
		if r := s.Submit(p, &IO{Write: true, Offset: off, Size: len(want), Data: want}).Wait(p); r.Status != nvme.StatusSuccess {
			t.Errorf("write on degraded member: %v", r.Status)
		}
		buf := make([]byte, len(want))
		r := s.Submit(p, &IO{Offset: off, Size: len(buf), Data: buf}).Wait(p)
		if r.Status != nvme.StatusSuccess {
			t.Errorf("read on degraded member: %v", r.Status)
		}
		if !bytes.Equal(r.Data, want) {
			t.Errorf("degraded member returned wrong bytes")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fakes[1].ios != 2 {
		t.Fatalf("degraded member served %d I/Os, want 2 (it owns the stripe)", fakes[1].ios)
	}
}

func TestHealthOfAssumesHealthyForPlainQueues(t *testing.T) {
	e := sim.NewEngine(2)
	// A queue without a HealthReporter must read as healthy, not dead.
	var plain Queue = nopQueue{}
	if got := HealthOf(plain); got != HealthHealthy {
		t.Fatalf("HealthOf(plain) = %v", got)
	}
	q := newMemQueue(e, 0)
	q.health = HealthDead
	if got := HealthOf(q); got != HealthDead {
		t.Fatalf("HealthOf(reporter) = %v", got)
	}
}

type nopQueue struct{}

func (nopQueue) Submit(p *sim.Proc, io *IO) *sim.Future[*Result] { return nil }
func (nopQueue) Close()                                          {}

func TestSpanCountAndSplitAt(t *testing.T) {
	const unit = 4096
	cases := []struct {
		io   IO
		want int
	}{
		{IO{Offset: 0, Size: 4096}, 1},
		{IO{Offset: 512, Size: 4096}, 2},
		{IO{Offset: 4096, Size: 8192}, 2},
		{IO{Offset: 0, Size: 3 * 4096}, 3},
		{IO{Admin: 1}, 1},
		{IO{Flush: true}, 1},
	}
	for i, tc := range cases {
		if got := SpanCount(&tc.io, unit); got != tc.want {
			t.Errorf("case %d: SpanCount = %d, want %d", i, got, tc.want)
		}
	}

	// A split write sub-slices the payload in place, covering exactly
	// the original byte range with block-aligned cuts.
	data := make([]byte, 2*4096)
	for i := range data {
		data[i] = byte(i)
	}
	io := &IO{Write: true, Offset: 512, Size: len(data), Data: data}
	segs := SplitAt(io, unit)
	if len(segs) != 3 {
		t.Fatalf("split into %d segments, want 3", len(segs))
	}
	off, covered := io.Offset, 0
	for i, seg := range segs {
		if seg.Offset != off {
			t.Fatalf("segment %d offset = %d, want %d", i, seg.Offset, off)
		}
		if !bytes.Equal(seg.Data, data[covered:covered+seg.Size]) {
			t.Fatalf("segment %d payload not the matching sub-slice", i)
		}
		if i > 0 && seg.Offset%unit != 0 {
			t.Fatalf("segment %d cut at %d, not a unit boundary", i, seg.Offset)
		}
		off += int64(seg.Size)
		covered += seg.Size
	}
	if covered != io.Size {
		t.Fatalf("segments cover %d bytes, want %d", covered, io.Size)
	}

	// Single-segment I/O is forwarded whole, not copied.
	one := &IO{Offset: 0, Size: 4096}
	if segs := SplitAt(one, unit); len(segs) != 1 || segs[0] != one {
		t.Fatalf("single-segment split did not forward the original IO")
	}
}

func TestAggregateResultsMergesErrorAndTiming(t *testing.T) {
	e := sim.NewEngine(3)
	io := &IO{Offset: 0, Size: 8192, Data: make([]byte, 8192)}
	a := sim.NewFuture[*Result](e)
	b := sim.NewFuture[*Result](e)
	agg := AggregateResults(e, io, nil, []*sim.Future[*Result]{a, b})
	e.Go("resolve", func(p *sim.Proc) {
		a.Resolve(&Result{Status: nvme.StatusSuccess, Latency: time.Microsecond, IOTime: time.Microsecond})
		b.Resolve(&Result{Status: nvme.StatusDataTransferErr, Latency: 3 * time.Microsecond})
		r := agg.Wait(p)
		if r.Status != nvme.StatusDataTransferErr {
			t.Errorf("aggregate status = %v, want first error", r.Status)
		}
		if r.Latency != 3*time.Microsecond {
			t.Errorf("aggregate latency = %v, want slowest segment", r.Latency)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
