package transport

import (
	"nvmeoaf/internal/sim"
)

// DefaultStripeUnit is the striping granularity when the caller does not
// choose one: small I/Os at consecutive stripe-unit offsets rotate
// round-robin across member queues, large I/Os split at these boundaries.
const DefaultStripeUnit = 128 << 10

// StripedQueue stripes I/O across M independent member queues, each with
// its own reactor (and, on the adaptive fabric, its own shared-memory
// region), the way SPDK spreads qpairs across cores.
//
// Placement is deterministic in the offset: stripe unit u of the address
// space belongs to member u mod M. Small I/Os (contained in one stripe
// unit) are forwarded whole — consecutive units rotate round-robin across
// members while every offset always maps to the same member, preserving
// per-offset read-your-write ordering without cross-queue synchronization.
// Large I/Os are segment-split at stripe boundaries, issued to their
// owning members concurrently, and completed through an aggregated future
// (status: first error; timing: slowest segment).
type StripedQueue struct {
	e          *sim.Engine
	members    []Queue
	stripeUnit int64
}

// NewStriped builds a striped queue over members. stripeUnit <= 0 selects
// DefaultStripeUnit; the unit is rounded up to a BlockSize multiple so
// segment cuts stay block-aligned.
func NewStriped(e *sim.Engine, stripeUnit int, members ...Queue) *StripedQueue {
	if len(members) == 0 {
		panic("transport: striped queue needs at least one member")
	}
	if stripeUnit <= 0 {
		stripeUnit = DefaultStripeUnit
	}
	if rem := stripeUnit % BlockSize; rem != 0 {
		stripeUnit += BlockSize - rem
	}
	return &StripedQueue{e: e, members: members, stripeUnit: int64(stripeUnit)}
}

// Members exposes the member queues (for snapshots and tests).
func (s *StripedQueue) Members() []Queue { return s.members }

// MemberHealth reports each member's condition, aligned with Members().
// A member that degraded mid-stream (e.g. a revoked shared-memory region
// failed it over to TCP) still serves its stripe units, but its slice
// entry says HealthDegraded so operators can see which queue is on the
// fallback path.
func (s *StripedQueue) MemberHealth() []Health {
	out := make([]Health, len(s.members))
	for i, m := range s.members {
		out[i] = HealthOf(m)
	}
	return out
}

// StripeUnit reports the effective striping granularity.
func (s *StripedQueue) StripeUnit() int { return int(s.stripeUnit) }

// queueFor maps a byte offset to its owning member.
func (s *StripedQueue) queueFor(offset int64) int {
	u := offset / s.stripeUnit
	return int(u % int64(len(s.members)))
}

// segCount reports how many stripe segments io spans (1 = forward whole).
func (s *StripedQueue) segCount(io *IO) int {
	if len(s.members) == 1 {
		return 1
	}
	return SpanCount(io, s.stripeUnit)
}

// split cuts io at stripe boundaries (SplitAt at the stripe unit).
func (s *StripedQueue) split(io *IO) []*IO { return SplitAt(io, s.stripeUnit) }

// Submit implements Queue. Admin commands go to member 0; data I/O routes
// by offset, splitting across members when it spans stripe boundaries.
func (s *StripedQueue) Submit(p *sim.Proc, io *IO) *sim.Future[*Result] {
	if s.segCount(io) == 1 {
		return s.memberFor(io).Submit(p, io)
	}
	segs := s.split(io)
	futs := make([]*sim.Future[*Result], len(segs))
	for i, seg := range segs {
		futs[i] = s.members[s.queueFor(seg.Offset)].Submit(p, seg)
	}
	return s.aggregate(io, segs, futs)
}

// SubmitBatch implements BatchQueue: I/Os are routed per offset like
// Submit, but each member receives its share as one batched doorbell
// (when the member supports batching). Futures align with ios.
func (s *StripedQueue) SubmitBatch(p *sim.Proc, ios []*IO) []*sim.Future[*Result] {
	perMember := make([][]*IO, len(s.members))
	// route[i] records where io i went: a single member segment or a
	// list of (member, position) pairs for a split I/O.
	type slot struct{ member, pos int }
	routes := make([][]slot, len(ios))
	for i, io := range ios {
		if s.segCount(io) == 1 {
			m := s.memberIndexFor(io)
			routes[i] = []slot{{m, len(perMember[m])}}
			perMember[m] = append(perMember[m], io)
			continue
		}
		for _, seg := range s.split(io) {
			m := s.queueFor(seg.Offset)
			routes[i] = append(routes[i], slot{m, len(perMember[m])})
			perMember[m] = append(perMember[m], seg)
		}
	}
	memberFuts := make([][]*sim.Future[*Result], len(s.members))
	for m, list := range perMember {
		if len(list) == 0 {
			continue
		}
		if bq, ok := s.members[m].(BatchQueue); ok {
			memberFuts[m] = bq.SubmitBatch(p, list)
			continue
		}
		futs := make([]*sim.Future[*Result], len(list))
		for i, io := range list {
			futs[i] = s.members[m].Submit(p, io)
		}
		memberFuts[m] = futs
	}
	out := make([]*sim.Future[*Result], len(ios))
	for i, route := range routes {
		if len(route) == 1 {
			out[i] = memberFuts[route[0].member][route[0].pos]
			continue
		}
		futs := make([]*sim.Future[*Result], len(route))
		for j, sl := range route {
			futs[j] = memberFuts[sl.member][sl.pos]
		}
		// split is deterministic, so re-cutting yields segments aligned
		// with the route (and therefore with futs).
		out[i] = s.aggregate(ios[i], s.split(ios[i]), futs)
	}
	return out
}

// memberFor returns the queue owning io (admin pins to member 0).
func (s *StripedQueue) memberFor(io *IO) Queue { return s.members[s.memberIndexFor(io)] }

func (s *StripedQueue) memberIndexFor(io *IO) int {
	if io.Admin != 0 {
		return 0
	}
	return s.queueFor(io.Offset)
}

// aggregate resolves one future once every segment completes
// (AggregateResults on this queue's engine).
func (s *StripedQueue) aggregate(io *IO, segs []*IO, futs []*sim.Future[*Result]) *sim.Future[*Result] {
	return AggregateResults(s.e, io, segs, futs)
}

// Close closes every member; outstanding requests complete first.
func (s *StripedQueue) Close() {
	for _, m := range s.members {
		m.Close()
	}
}
