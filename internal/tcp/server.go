package tcp

import (
	"time"

	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
)

// Conn is one target-side connection (the engine's connection core; the
// TCP wire adds no per-connection state).
type Conn = session.Conn

// ServerConfig configures the target-side NVMe/TCP transport.
type ServerConfig struct {
	// NQN selects the served subsystem.
	NQN string
	// TP holds protocol knobs; DataBuffers chunk-sized buffers form the
	// shared data pool (R2T credits).
	TP model.TCPTransportParams
	// Host holds target software costs.
	Host model.HostParams
	// KATO is the keep-alive timeout: a connection silent for longer is
	// torn down (0 disables the watchdog).
	KATO time.Duration
	// MaxBufferWaiters bounds commands parked for pool buffers; beyond
	// it the server sheds load with a retryable typed error instead of
	// queueing without bound (0 = unbounded).
	MaxBufferWaiters int
	// PoisonPool fills freed data-pool elements with mempool.PoisonByte
	// so stale reads of returned buffers surface as corruption in
	// data-integrity tests instead of silently passing.
	PoisonPool bool
	// Telemetry receives connection, shedding, and keep-alive counters.
	// Nil means disabled.
	Telemetry *telemetry.Sink
	// QoS is the target-side per-tenant admission shaper (nil = off).
	QoS *qos.Shaper
}

// Server is the NVMe/TCP transport of one target: it owns the shared data
// buffer pool and serves any number of connections through the session
// engine.
type Server struct {
	*session.Target
	cfg  ServerConfig
	pool *mempool.Pool
}

// NewServer creates the transport for tgt with a fresh buffer pool.
func NewServer(e *sim.Engine, tgt *target.Target, cfg ServerConfig) *Server {
	if cfg.TP.ChunkSize <= 0 {
		cfg.TP = model.DefaultTCPTransport()
	}
	s := &Server{
		cfg:  cfg,
		pool: mempool.New("tcp-data/"+cfg.NQN, cfg.TP.ChunkSize, cfg.TP.DataBuffers),
	}
	s.pool.SetPoison(cfg.PoisonPool)
	s.Target = session.NewTarget(e, tgt, session.TargetConfig{
		Label:            "tcp",
		NQN:              cfg.NQN,
		ChunkSize:        cfg.TP.ChunkSize,
		BatchSize:        cfg.TP.BatchSize,
		BusyPoll:         cfg.TP.BusyPoll,
		KATO:             cfg.KATO,
		MaxBufferWaiters: cfg.MaxBufferWaiters,
		InterruptWakeups: true,
		Pool:             s.pool,
		Telemetry:        cfg.Telemetry,
		QoS:              cfg.QoS,
	}, (*tcpTargetWire)(s))
	return s
}

// Pool exposes the data buffer pool (for memory-footprint reporting in the
// chunk-size experiment).
func (s *Server) Pool() *mempool.Pool { return s.pool }

// tcpTargetWire binds the engine's connections to the plain-TCP data
// path.
type tcpTargetWire Server

func (s *tcpTargetWire) NewConn(c *session.Conn) session.ConnWire {
	return &tcpConnWire{s: (*Server)(s), c: c}
}

// tcpConnWire is the per-connection TCP wire: a plain ICResp handshake,
// reads streamed as chunked C2HData, writes in-capsule or via R2T flow
// control — all through the engine's shared machinery.
type tcpConnWire struct {
	s *Server
	c *session.Conn
}

func (w *tcpConnWire) OnICReq(req *pdu.ICReq) {
	w.c.Target().Telemetry().Inc(telemetry.CtrSrvTCPConns)
	w.c.Post(nil, &pdu.ICResp{
		PFV:        req.PFV,
		CPDA:       4,
		MaxH2CData: uint32(w.s.cfg.TP.ChunkSize),
	})
}

func (w *tcpConnWire) TrType() uint8 { return nvme.TrTypeTCP }

func (w *tcpConnWire) PreLoop() {}

func (w *tcpConnWire) DispatchRead(cmd nvme.Command, transit time.Duration) {
	w.c.StartReadTCP(cmd, transit)
}

func (w *tcpConnWire) DispatchWrite(cap *pdu.CapsuleCmd, size int, transit time.Duration) {
	inCap := len(cap.Data)
	if inCap == 0 {
		inCap = cap.VirtualLen
	}
	if inCap > 0 {
		// In-capsule flow: one message carried command and payload.
		w.c.ExecWrite(cap.Cmd, size, cap.Data, transit, nil, 0)
		return
	}
	w.c.StartConservativeWrite(cap.Cmd, size, transit)
}

func (w *tcpConnWire) HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool {
	return false
}

func (w *tcpConnWire) Teardown() {}
