package tcp

import (
	"fmt"
	"sort"
	"time"

	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// ServerConfig configures the target-side NVMe/TCP transport.
type ServerConfig struct {
	// NQN selects the served subsystem.
	NQN string
	// TP holds protocol knobs; DataBuffers chunk-sized buffers form the
	// shared data pool (R2T credits).
	TP model.TCPTransportParams
	// Host holds target software costs.
	Host model.HostParams
	// KATO is the keep-alive timeout: a connection silent for longer is
	// torn down (0 disables the watchdog).
	KATO time.Duration
	// MaxBufferWaiters bounds commands parked for pool buffers; beyond
	// it the server sheds load with a retryable typed error instead of
	// queueing without bound (0 = unbounded).
	MaxBufferWaiters int
	// PoisonPool fills freed data-pool elements with mempool.PoisonByte
	// so stale reads of returned buffers surface as corruption in
	// data-integrity tests instead of silently passing.
	PoisonPool bool
	// Telemetry receives connection, shedding, and keep-alive counters.
	// Nil means disabled.
	Telemetry *telemetry.Sink
}

// Server is the NVMe/TCP transport of one target: it owns the shared data
// buffer pool and serves any number of connections.
type Server struct {
	e    *sim.Engine
	tgt  *target.Target
	cfg  ServerConfig
	pool *mempool.Pool
	tel  *telemetry.Sink

	// BufferWaits counts commands that had to wait for pool buffers.
	BufferWaits int64
	// Shed counts commands rejected with a retryable error under pool
	// exhaustion.
	Shed int64
	// KAExpirations counts connections torn down by the KATO watchdog.
	KAExpirations int64
	// StaleMsgs counts PDUs for unknown commands (late data after a
	// teardown) dropped instead of panicking.
	StaleMsgs int64
}

// NewServer creates the transport for tgt with a fresh buffer pool.
func NewServer(e *sim.Engine, tgt *target.Target, cfg ServerConfig) *Server {
	if cfg.TP.ChunkSize <= 0 {
		cfg.TP = model.DefaultTCPTransport()
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.Disabled
	}
	s := &Server{
		e:    e,
		tgt:  tgt,
		cfg:  cfg,
		pool: mempool.New("tcp-data/"+cfg.NQN, cfg.TP.ChunkSize, cfg.TP.DataBuffers),
		tel:  cfg.Telemetry,
	}
	s.pool.SetPoison(cfg.PoisonPool)
	return s
}

// Pool exposes the data buffer pool (for memory-footprint reporting in the
// chunk-size experiment).
func (s *Server) Pool() *mempool.Pool { return s.pool }

// Serve starts a connection handler on ep.
func (s *Server) Serve(ep *netsim.Endpoint) *Conn {
	conn := &Conn{
		srv:      s,
		ep:       ep,
		txQ:      sim.NewQueue[*txBatch](s.e, 0),
		kick:     sim.NewSignal(s.e),
		writes:   make(map[uint16]*writeCtx),
		waitsQ:   sim.NewQueue[*allocWait](s.e, 0),
		lastSeen: s.e.Now(),
	}
	s.e.GoDaemon("tcp-server-conn", conn.run)
	if s.cfg.KATO > 0 {
		s.e.GoDaemon("tcp-kato-watchdog", conn.watchdog)
	}
	return conn
}

// watchdog enforces the keep-alive timeout: a connection with no traffic
// for KATO is closed and its resources reclaimed.
func (c *Conn) watchdog(p *sim.Proc) {
	for !c.closed {
		p.Sleep(c.srv.cfg.KATO / 2)
		if c.closed {
			return
		}
		if p.Now().Sub(c.lastSeen) > c.srv.cfg.KATO {
			c.Expired = true
			c.closed = true
			c.srv.KAExpirations++
			c.srv.tel.Inc(telemetry.CtrSrvKATOExpiry)
			c.srv.tel.Trace(int64(p.Now()), telemetry.EvKATOExpired, 0, "tcp", "watchdog")
			c.kick.Fire()
			return
		}
	}
}

// txBatch is a set of PDUs to transmit as one message, with an optional
// post-send callback (used to release buffers once data is on the wire).
type txBatch struct {
	pdus  []pdu.PDU
	after func()
}

// writeCtx tracks reassembly of one conservative-flow write command.
// Real payloads are staged directly into the reserved pool elements (the
// DPDK receive path), not a private heap buffer.
type writeCtx struct {
	cmd      nvme.Command
	size     int
	received int
	staged   bool // real bytes landed in bufs
	bufs     []*mempool.Buf
	comm     time.Duration
	arrived  sim.Time
}

// gather materializes the staged payload into one contiguous buffer for
// the device execute; nil when the write carried no real bytes.
func (ctx *writeCtx) gather() []byte {
	if !ctx.staged {
		return nil
	}
	return mempool.Gather(ctx.bufs, ctx.size)
}

// allocWait is a command parked until pool buffers free up.
type allocWait struct {
	need  int
	run   func(bufs []*mempool.Buf)
	since sim.Time
}

// Conn is one target-side connection.
type Conn struct {
	srv    *Server
	ep     *netsim.Endpoint
	txQ    *sim.Queue[*txBatch]
	kick   *sim.Signal
	writes map[uint16]*writeCtx
	// waitsQ holds commands waiting for buffer credits, FIFO.
	waitsQ   *sim.Queue[*allocWait]
	lastSeen sim.Time
	closed   bool
	// connected is set once the Fabrics Connect command succeeds.
	connected bool
	// Expired reports a keep-alive timeout teardown.
	Expired bool
	// dead is set once the run loop exits: posts stop transmitting but
	// still run their cleanup callbacks so buffers return to the pool.
	dead bool
	// txPDUs and txAfters are run-loop scratch for completion-reap
	// coalescing; SendPDUs encodes before yielding, so reuse is safe.
	txPDUs   []pdu.PDU
	txAfters []func()
}

// post enqueues an outbound batch and wakes the handler.
func (c *Conn) post(after func(), pdus ...pdu.PDU) {
	if c.dead {
		// The connection is gone; run the cleanup (buffer frees) so a
		// late worker completion cannot leak pool buffers.
		if after != nil {
			after()
		}
		return
	}
	c.txQ.TryPut(&txBatch{pdus: pdus, after: after})
	c.kick.Fire()
}

// run is the connection's event loop.
func (c *Conn) run(p *sim.Proc) {
	c.ep.OnDeliver = c.kick.Fire
	for !c.closed {
		worked := false
		for {
			msg := c.ep.TryRecv(p)
			if msg == nil {
				break
			}
			c.handle(p, msg)
			worked = true
		}
		if c.drainTx(p) {
			worked = true
		}
		// Retry commands waiting for buffers (frees may have happened).
		c.retryWaits()
		if worked {
			continue
		}
		if c.srv.cfg.TP.BusyPoll > 0 {
			if msg := c.ep.RecvPoll(p, c.srv.cfg.TP.BusyPoll); msg != nil {
				c.handle(p, msg)
				continue
			}
			p.Sleep(pollMissCPU)
		}
		c.kick.Reset()
		if c.ep.Pending() > 0 || c.txQ.Len() > 0 || c.closed {
			continue
		}
		c.kick.Wait(p)
		if c.ep.Pending() > 0 {
			c.ep.ChargeWakeup(p)
		}
	}
	c.teardown(p)
}

// drainTx transmits queued batches. With BatchSize > 1 it merges up to
// that many queued batches into one network message (completion-reap
// coalescing: one interrupt/wakeup on the host covers many completions);
// otherwise each batch goes out as its own message, bit-identical to the
// classic path.
func (c *Conn) drainTx(p *sim.Proc) bool {
	reap := 1
	if c.srv.cfg.TP.BatchSize > 1 {
		reap = c.srv.cfg.TP.BatchSize
	}
	worked := false
	for {
		batch, ok := c.txQ.TryGet()
		if !ok {
			break
		}
		worked = true
		if reap <= 1 {
			transport.SendPDUs(p, c.ep, batch.pdus...)
			c.srv.tel.Add(telemetry.CtrPDUsTx, int64(len(batch.pdus)))
			if batch.after != nil {
				batch.after()
			}
			continue
		}
		pdus := append(c.txPDUs[:0], batch.pdus...)
		afters := c.txAfters[:0]
		if batch.after != nil {
			afters = append(afters, batch.after)
		}
		merged := 1
		for merged < reap {
			next, ok := c.txQ.TryGet()
			if !ok {
				break
			}
			pdus = append(pdus, next.pdus...)
			if next.after != nil {
				afters = append(afters, next.after)
			}
			merged++
		}
		transport.SendPDUs(p, c.ep, pdus...)
		c.srv.tel.Add(telemetry.CtrPDUsTx, int64(len(pdus)))
		c.srv.tel.Observe(telemetry.HistReapDepth, int64(merged))
		for i, fn := range afters {
			fn()
			afters[i] = nil
		}
		c.txPDUs, c.txAfters = pdus[:0], afters[:0]
	}
	return worked
}

// teardown reclaims every connection resource: queued transmissions are
// flushed (their cleanup callbacks always run), half-received writes free
// their pool buffers, and parked buffer-waiters drain — a KATO expiry
// mid-transfer must not leak pool credits the other connections need.
func (c *Conn) teardown(p *sim.Proc) {
	c.dead = true
	for {
		batch, ok := c.txQ.TryGet()
		if !ok {
			break
		}
		transport.SendPDUs(p, c.ep, batch.pdus...)
		c.srv.tel.Add(telemetry.CtrPDUsTx, int64(len(batch.pdus)))
		if batch.after != nil {
			batch.after()
		}
	}
	for _, cid := range sortedWriteCIDs(c.writes) {
		freeBufs(c.writes[cid].bufs)
		delete(c.writes, cid)
	}
	for {
		if _, ok := c.waitsQ.TryGet(); !ok {
			break
		}
	}
}

func sortedWriteCIDs(m map[uint16]*writeCtx) []uint16 {
	cids := make([]uint16, 0, len(m))
	for cid := range m {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	return cids
}

// retryWaits re-attempts buffer allocation for parked commands in FIFO
// order, stopping at the first that still cannot be satisfied.
func (c *Conn) retryWaits() {
	for c.waitsQ.Len() > 0 {
		w, _ := c.waitsQ.TryGet()
		bufs, ok := c.allocBufs(w.need)
		if ok {
			c.srv.tel.ObserveDuration(telemetry.HistBufWait,
				c.srv.e.Now().Sub(w.since))
		} else {
			// Put it back at the head position: re-queue preserving FIFO
			// by draining and re-adding would reorder; instead use a
			// fresh queue with w first.
			rest := []*allocWait{w}
			for c.waitsQ.Len() > 0 {
				x, _ := c.waitsQ.TryGet()
				rest = append(rest, x)
			}
			for _, x := range rest {
				c.waitsQ.TryPut(x)
			}
			return
		}
		w.run(bufs)
	}
}

// allocBufs grabs n buffers from the shared pool, all or nothing.
func (c *Conn) allocBufs(n int) ([]*mempool.Buf, bool) {
	if c.srv.pool.Available() < n {
		return nil, false
	}
	bufs := make([]*mempool.Buf, 0, n)
	for i := 0; i < n; i++ {
		b, ok := c.srv.pool.Get()
		if !ok {
			for _, prev := range bufs {
				prev.Free()
			}
			return nil, false
		}
		bufs = append(bufs, b)
	}
	return bufs, true
}

// withBufs runs fn once n pool buffers are available. Under exhaustion
// the command parks in the wait queue (R2T flow control back-pressure);
// past MaxBufferWaiters the server sheds it with a retryable typed
// error instead of queueing without bound.
func (c *Conn) withBufs(cid uint16, n int, fn func(bufs []*mempool.Buf)) {
	if bufs, ok := c.allocBufs(n); ok {
		fn(bufs)
		return
	}
	if max := c.srv.cfg.MaxBufferWaiters; max > 0 && c.waitsQ.Len() >= max {
		c.srv.Shed++
		c.srv.tel.Inc(telemetry.CtrSrvShed)
		c.srv.tel.Trace(int64(c.srv.e.Now()), telemetry.EvShed, cid, "tcp", "pool-exhausted")
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cid, Status: nvme.StatusCommandInterrupted}})
		return
	}
	c.srv.BufferWaits++
	c.srv.tel.Inc(telemetry.CtrSrvBufWaits)
	c.waitsQ.TryPut(&allocWait{need: n, run: fn, since: c.srv.e.Now()})
}

func freeBufs(bufs []*mempool.Buf) {
	for _, b := range bufs {
		b.Free()
	}
}

// handle processes one received message.
func (c *Conn) handle(p *sim.Proc, msg *netsim.Message) {
	c.lastSeen = p.Now()
	transit := p.Now().Sub(msg.SentAt)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		panic(fmt.Sprintf("tcp server: bad message: %v", err))
	}
	c.srv.tel.Add(telemetry.CtrPDUsRx, int64(len(pdus)))
	for _, u := range pdus {
		switch v := u.(type) {
		case *pdu.ICReq:
			c.srv.tel.Inc(telemetry.CtrSrvTCPConns)
			c.post(nil, &pdu.ICResp{
				PFV:        v.PFV,
				CPDA:       4,
				MaxH2CData: uint32(c.srv.cfg.TP.ChunkSize),
			})
		case *pdu.CapsuleCmd:
			c.onCommand(p, v, transit)
		case *pdu.CmdBatch:
			// A capsule train: dispatch each entry; the message's transit
			// is attributed to the first command only.
			for i := range v.Entries {
				e := &v.Entries[i]
				cc := pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
				c.onCommand(p, &cc, transit)
				transit = 0
			}
		case *pdu.Data:
			c.onData(p, v, transit)
		case *pdu.Term:
			c.closed = true
			c.kick.Fire()
		default:
			panic(fmt.Sprintf("tcp server: unexpected PDU %v", u.Type()))
		}
		transit = 0 // attribute a message's transit once
	}
}

// onCommand dispatches a command capsule.
func (c *Conn) onCommand(p *sim.Proc, cap *pdu.CapsuleCmd, transit time.Duration) {
	cmd := cap.Cmd
	if cmd.Opcode == nvme.FabricsCommandType {
		c.onFabrics(cap)
		return
	}
	if cmd.Flags&transport.AdminFlag != 0 {
		c.onAdmin(cmd, transit)
		return
	}
	switch cmd.Opcode {
	case nvme.OpRead:
		c.startRead(cmd, transit)
	case nvme.OpWrite:
		size := int(cmd.NLB()) * transport.BlockSize
		inCap := capsuleDataLen(cap)
		if inCap > 0 {
			// In-capsule flow: one message carried command and payload.
			c.execWrite(cmd, size, cap.Data, transit, nil)
			return
		}
		c.startConservativeWrite(cmd, size, transit)
	case nvme.OpFlush:
		c.execFlush(cmd, transit)
	default:
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidOpcode}})
	}
}

// onFabrics serves Fabrics command capsules: Connect validates the
// requested subsystem NQN before any I/O is admitted.
func (c *Conn) onFabrics(cap *pdu.CapsuleCmd) {
	cmd := cap.Cmd
	status := nvme.StatusInvalidField
	if cmd.CDW10 == nvme.FctypeConnect {
		if _, subNQN, err := nvme.DecodeConnectData(cap.Data); err == nil && subNQN == c.srv.cfg.NQN {
			status = nvme.StatusSuccess
			c.connected = true
		}
	}
	c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: status}})
}

// onAdmin dispatches admin-queue commands.
func (c *Conn) onAdmin(cmd nvme.Command, transit time.Duration) {
	switch cmd.Opcode {
	case nvme.AdminIdentify:
		c.execIdentify(cmd, transit)
	case nvme.AdminGetLogPage:
		c.execGetLogPage(cmd, transit)
	case nvme.AdminKeepAlive:
		c.post(nil, &pdu.CapsuleResp{
			Rsp:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
			TgtCommNs: uint64(transit),
		})
	default:
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidOpcode}})
	}
}

// execGetLogPage serves the discovery log page (Get Log Page, LID 0x70).
func (c *Conn) execGetLogPage(cmd nvme.Command, comm time.Duration) {
	if cmd.CDW10&0xFF != nvme.LIDDiscovery&0xFF {
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
		return
	}
	page := c.srv.tgt.DiscoveryLog(nvme.TrTypeTCP, "storage-host")
	c.post(nil,
		&pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Payload: page, Last: true},
		&pdu.CapsuleResp{
			Rsp:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
			TgtCommNs: uint64(comm),
		})
}

// capsuleDataLen reports in-capsule payload size (real or virtual).
func capsuleDataLen(cap *pdu.CapsuleCmd) int {
	if cap.Data != nil {
		return len(cap.Data)
	}
	return cap.VirtualLen
}

// startRead allocates chunk buffers and runs the read asynchronously.
func (c *Conn) startRead(cmd nvme.Command, transit time.Duration) {
	size := int(cmd.NLB()) * transport.BlockSize
	need := transport.Chunks(size, c.srv.cfg.TP.ChunkSize)
	c.withBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		c.srv.e.Go("tcp-read-worker", func(w *sim.Proc) {
			res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, nil)
			if res.CQE.Status.IsError() {
				freeBufs(bufs)
				c.post(nil, c.resp(res, transit))
				return
			}
			// Stream payload as chunk-sized C2HData PDUs; the final chunk
			// travels with the response capsule in one message.
			chunk := c.srv.cfg.TP.ChunkSize
			var batches []*txBatch
			transport.ChunkSizes(size, chunk, func(off, n int) {
				d := &pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Offset: uint32(off), Last: off+n >= size}
				if res.Data != nil {
					d.Payload = res.Data[off : off+n]
				} else {
					d.VirtualLen = n
				}
				batches = append(batches, &txBatch{pdus: []pdu.PDU{d}})
			})
			last := batches[len(batches)-1]
			last.pdus = append(last.pdus, c.resp(res, transit))
			last.after = func() { freeBufs(bufs) }
			if c.dead {
				// Connection torn down while the read executed: reclaim
				// the buffers without transmitting.
				freeBufs(bufs)
				return
			}
			for _, b := range batches {
				c.txQ.TryPut(b)
			}
			c.kick.Fire()
		})
	})
}

// startConservativeWrite grants an R2T once buffers are reserved.
func (c *Conn) startConservativeWrite(cmd nvme.Command, size int, transit time.Duration) {
	need := transport.Chunks(size, c.srv.cfg.TP.ChunkSize)
	c.withBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		ctx := &writeCtx{cmd: cmd, size: size, bufs: bufs, comm: transit, arrived: c.srv.e.Now()}
		c.writes[cmd.CID] = ctx
		c.post(nil, &pdu.R2T{CID: cmd.CID, TTag: cmd.CID, Offset: 0, Length: uint32(size)})
	})
}

// onData accumulates H2CData for a conservative write. Data for an
// unknown CID (late chunks of a write a teardown already reclaimed) is
// dropped, not fatal.
func (c *Conn) onData(p *sim.Proc, d *pdu.Data, transit time.Duration) {
	ctx, ok := c.writes[d.CID]
	if !ok {
		c.srv.StaleMsgs++
		c.srv.tel.Inc(telemetry.CtrSrvStaleMsgs)
		return
	}
	n := len(d.Payload)
	if n == 0 {
		n = d.VirtualLen
	}
	if d.Payload != nil {
		mempool.Scatter(ctx.bufs, int(d.Offset), d.Payload)
		ctx.staged = true
	}
	ctx.received += n
	ctx.comm += transit
	if ctx.received >= ctx.size {
		delete(c.writes, d.CID)
		c.execWrite(ctx.cmd, ctx.size, ctx.gather(), ctx.comm, ctx.bufs)
	}
}

// execWrite runs a fully received write.
func (c *Conn) execWrite(cmd nvme.Command, size int, data []byte, comm time.Duration, bufs []*mempool.Buf) {
	c.srv.e.Go("tcp-write-worker", func(w *sim.Proc) {
		res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, data)
		if bufs != nil {
			freeBufs(bufs)
			c.kick.Fire() // buffer credits freed: retry waiters
		}
		c.post(nil, c.resp(res, comm))
	})
}

// execFlush runs a flush command.
func (c *Conn) execFlush(cmd nvme.Command, comm time.Duration) {
	c.srv.e.Go("tcp-flush-worker", func(w *sim.Proc) {
		res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, nil)
		c.post(nil, c.resp(res, comm))
	})
}

// execIdentify serves an identify admin command with a real data page.
func (c *Conn) execIdentify(cmd nvme.Command, comm time.Duration) {
	var page []byte
	switch cmd.CDW10 {
	case nvme.CNSController:
		id, err := c.srv.tgt.IdentifyController(c.srv.cfg.NQN)
		if err != nil {
			c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
			return
		}
		page = id.Encode()
	case nvme.CNSNamespace:
		sub, ok := c.srv.tgt.Subsystem(c.srv.cfg.NQN)
		if !ok {
			c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
			return
		}
		ns, ok := sub.Namespace(cmd.NSID)
		if !ok {
			c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidNamespace}})
			return
		}
		idns := ns.Identify()
		page = idns.Encode()
	default:
		c.post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
		return
	}
	c.post(nil,
		&pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Payload: page, Last: true},
		&pdu.CapsuleResp{
			Rsp:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
			TgtCommNs: uint64(comm),
		})
}

// resp builds a response capsule with the timing trailer.
func (c *Conn) resp(res target.ExecResult, comm time.Duration) *pdu.CapsuleResp {
	return &pdu.CapsuleResp{
		Rsp:        res.CQE,
		IOTimeNs:   uint64(res.IOTime),
		TgtCommNs:  uint64(comm),
		TgtOtherNs: uint64(res.OtherTime),
	}
}
