package tcp

import (
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

// TestKATOExpiryReclaimsMidTransferResources drives the server with a
// hand-rolled client that starts a conservative write — reserving every
// pool buffer — receives the R2T, parks a second write in the buffer wait
// queue, and then goes silent. The KATO watchdog teardown must free the
// reserved buffers and drain the parked waiter: a half-dead client must
// not leak the pool credits every other connection depends on.
func TestKATOExpiryReclaimsMidTransferResources(t *testing.T) {
	e := sim.NewEngine(1)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<30, ssdParams, false, transport.BlockSize))
	tp := model.DefaultTCPTransport()
	tp.DataBuffers = 4 // tiny pool: one 4-chunk write exhausts it
	srv := NewServer(e, tgt, ServerConfig{
		NQN: testNQN, TP: tp, Host: model.DefaultHost(),
		KATO: 5 * time.Millisecond,
	})
	link := netsim.NewLoopLink(e, model.TCP25G())
	conn := srv.Serve(link.B)

	size := 4 * tp.ChunkSize // needs all 4 pool buffers
	e.Go("half-dead-client", func(p *sim.Proc) {
		transport.SendPDUs(p, link.A, &pdu.ICReq{PFV: 0, HPDA: 4, MaxR2T: 16})
		link.A.Recv(p) // ICResp
		connectCmd := nvme.Command{Opcode: nvme.FabricsCommandType, CID: 0xFFFF, CDW10: nvme.FctypeConnect}
		transport.SendPDUs(p, link.A, &pdu.CapsuleCmd{
			Cmd: connectCmd, Data: nvme.EncodeConnectData("nqn.host", testNQN),
		})
		link.A.Recv(p) // connect response
		// First write: the R2T grant reserves all four buffers.
		transport.SendPDUs(p, link.A, &pdu.CapsuleCmd{
			Cmd: nvme.NewWrite(1, 1, 0, uint32(size/transport.BlockSize)),
		})
		link.A.Recv(p) // R2T
		if srv.Pool().InUse() != 4 {
			t.Errorf("pool in use = %d after R2T, want 4", srv.Pool().InUse())
		}
		// Second write: no buffers left, parks in the wait queue.
		transport.SendPDUs(p, link.A, &pdu.CapsuleCmd{
			Cmd: nvme.NewWrite(2, 1, 0, uint32(size/transport.BlockSize)),
		})
		// ... and the client dies: no H2CData ever arrives.
	})
	if err := e.RunUntil(sim.Time(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !conn.Expired {
		t.Fatal("silent mid-transfer connection did not hit the KATO watchdog")
	}
	if srv.BufferWaits == 0 {
		t.Fatal("second write never waited for buffers; test rig is wrong")
	}
	if got := srv.Pool().InUse(); got != 0 {
		t.Fatalf("teardown leaked %d pool buffers", got)
	}
	if got := conn.WaitsQ.Len(); got != 0 {
		t.Fatalf("teardown leaked %d parked buffer waiters", got)
	}
	if len(conn.Writes) != 0 {
		t.Fatalf("teardown leaked %d write contexts", len(conn.Writes))
	}
}
