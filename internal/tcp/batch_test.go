package tcp

import (
	"bytes"
	"testing"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// runBurst writes 32 distinct payloads and reads them back over NVMe/TCP,
// singly (batch <= 1) or through SubmitBatch with wire batching enabled,
// returning the read payloads and the total message count.
func runBurst(t *testing.T, batch int) (reads [][]byte, msgs int64) {
	t.Helper()
	const burstN = 32
	const ioSize = 4096
	r := newRig(t, true, func(tp *model.TCPTransportParams) { tp.BatchSize = batch })
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 64)
		writes := make([]*transport.IO, burstN)
		for i := range writes {
			data := bytes.Repeat([]byte{byte(i + 1)}, ioSize)
			writes[i] = &transport.IO{Write: true, Offset: int64(i) * ioSize, Size: ioSize, Data: data}
		}
		for i, f := range submitAll(p, c, batch, writes) {
			if err := f.Wait(p).Err(); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		rds := make([]*transport.IO, burstN)
		for i := range rds {
			rds[i] = &transport.IO{Offset: int64(i) * ioSize, Size: ioSize, Data: make([]byte, ioSize)}
		}
		for i, f := range submitAll(p, c, batch, rds) {
			res := f.Wait(p)
			if err := res.Err(); err != nil {
				t.Errorf("read %d: %v", i, err)
				continue
			}
			reads = append(reads, res.Data)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	return reads, r.link.A.MsgsSent + r.link.B.MsgsSent
}

func submitAll(p *sim.Proc, c *Client, batch int, ios []*transport.IO) []*sim.Future[*transport.Result] {
	if batch > 1 {
		return c.SubmitBatch(p, ios)
	}
	futs := make([]*sim.Future[*transport.Result], len(ios))
	for i, io := range ios {
		futs[i] = c.Submit(p, io)
	}
	return futs
}

// TestBatchedBurstEquivalence: batching must not change a single byte of
// what reads return, while strictly reducing the number of network
// messages for the same burst.
func TestBatchedBurstEquivalence(t *testing.T) {
	singleReads, singleMsgs := runBurst(t, 0)
	batchedReads, batchedMsgs := runBurst(t, 8)
	if len(singleReads) != len(batchedReads) {
		t.Fatalf("read counts differ: %d vs %d", len(singleReads), len(batchedReads))
	}
	for i := range singleReads {
		want := bytes.Repeat([]byte{byte(i + 1)}, 4096)
		if !bytes.Equal(singleReads[i], want) {
			t.Fatalf("single read %d corrupted", i)
		}
		if !bytes.Equal(batchedReads[i], singleReads[i]) {
			t.Fatalf("batched read %d differs from single-submission read", i)
		}
	}
	if batchedMsgs >= singleMsgs {
		t.Errorf("batched run must use strictly fewer messages: %d vs %d", batchedMsgs, singleMsgs)
	}
}

// TestBatchSizeOneIsWireIdentical pins that 0 and 1 produce the same
// classic wire behavior.
func TestBatchSizeOneIsWireIdentical(t *testing.T) {
	_, a := runBurst(t, 0)
	_, b := runBurst(t, 1)
	if a != b {
		t.Fatalf("BatchSize 1 changed the wire: %d vs %d messages", b, a)
	}
}
