// Package tcp implements the NVMe/TCP transport on the simulated network:
// the host-side queue (client) and the target-side connection server,
// including in-capsule and R2T flow control, application-level chunking,
// and the interrupt/busy-poll receive modes that the adaptive fabric
// tunes (§4.5 of the paper). The session machinery (CID table, reactor,
// deadlines, batching) lives in internal/session; this file is the thin
// TCP wire binding.
package tcp

import (
	"sync/atomic"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// ClientConfig configures one NVMe/TCP host queue.
type ClientConfig struct {
	// NQN names the target subsystem.
	NQN string
	// QueueDepth bounds outstanding commands.
	QueueDepth int
	// TP holds protocol knobs (chunk size, in-capsule threshold, busy
	// poll budget).
	TP model.TCPTransportParams
	// Host holds client software costs.
	Host model.HostParams
	// KeepAlive, when positive, sends a keep-alive admin command at this
	// interval so the target's KATO watchdog keeps the connection alive
	// (NVMe-oF keep-alive timer).
	KeepAlive time.Duration
	// CommandTimeout, when positive, bounds each command attempt;
	// expired commands retry with backoff (MaxRetries, RetryBackoff)
	// before failing with a transient transport error. Off by default.
	CommandTimeout time.Duration
	MaxRetries     int
	RetryBackoff   time.Duration
	// HostNQN identifies this host in the Fabrics Connect command
	// (defaults to a generated NQN).
	HostNQN string
	// Telemetry receives counters and latency histograms (nil disables).
	Telemetry *telemetry.Sink
	// Tenant names the tenant this queue submits for (carried in the
	// Fabrics Connect hostNQN); QoS is the host-side per-tenant
	// admission shaper (nil = off).
	Tenant string
	QoS    *qos.Shaper
}

// Client is one NVMe/TCP host queue pair over a network endpoint.
type Client struct {
	*session.Host
	wire *tcpWire
}

// tcpWire is the plain-TCP data path: in-capsule writes under the
// threshold, R2T-granted chunk streaming above it, nothing else.
type tcpWire struct {
	h   *session.Host
	ep  *netsim.Endpoint
	cfg *ClientConfig
	// chunkB is the live host-side chunk size (atomic: adjustable from
	// the tuning controller or an operator goroutine mid-run).
	chunkB atomic.Int64
}

// Connect performs the ICReq/ICResp exchange over ep and starts the client
// reactor. The calling process drives the handshake.
func Connect(p *sim.Proc, ep *netsim.Endpoint, cfg ClientConfig) (*Client, error) {
	e := p.Engine()
	w := &tcpWire{ep: ep, cfg: &cfg}
	// 0 keeps the legacy no-chunking behaviour for configs without TP.
	w.chunkB.Store(int64(cfg.TP.ChunkSize))
	h := session.NewHost(e, ep, session.HostConfig{
		Label:            "tcp",
		NQN:              cfg.NQN,
		HostNQN:          cfg.HostNQN,
		QueueDepth:       cfg.QueueDepth,
		Host:             cfg.Host,
		BatchSize:        cfg.TP.BatchSize,
		CommandTimeout:   cfg.CommandTimeout,
		MaxRetries:       cfg.MaxRetries,
		RetryBackoff:     cfg.RetryBackoff,
		KeepAlive:        cfg.KeepAlive,
		InterruptWakeups: true,
		Telemetry:        cfg.Telemetry,
		Tenant:           cfg.Tenant,
		QoS:              cfg.QoS,
	}, w)
	w.h = h
	if err := h.Handshake(p); err != nil {
		return nil, err
	}
	h.Telemetry().Trace(int64(p.Now()), telemetry.EvPathSelected, 0, "tcp", "nvme-tcp")
	h.Start()
	return &Client{Host: h, wire: w}, nil
}

func (w *tcpWire) BuildICReq(reconnect bool) *pdu.ICReq {
	return &pdu.ICReq{PFV: 0, HPDA: 4, MaxR2T: 16}
}

func (w *tcpWire) AdoptICResp(resp *pdu.ICResp) {}

func (w *tcpWire) Admit(io *transport.IO) nvme.Status { return nvme.StatusSuccess }

// StageSubmit charges payload generation for writes on the submitting
// process.
func (w *tcpWire) StageSubmit(p *sim.Proc, pend *session.Pending) {
	io := pend.IO
	if io.Write && !io.NoFill {
		p.Sleep(time.Duration(float64(io.Size) * w.cfg.Host.FillPerByteNanos))
	}
}

// MakeIOEntry builds the read/write entry; small writes ride in-capsule
// with the command (§4.4.2).
func (w *tcpWire) MakeIOEntry(pend *session.Pending) pdu.BatchEntry {
	io := pend.IO
	tel := w.h.Telemetry()
	tel.Inc(telemetry.CtrSubmitsTCP)
	tel.Observe(telemetry.HistIOSize, int64(io.Size))
	slba := uint64(io.Offset / transport.BlockSize)
	nlb := uint32(io.Size / transport.BlockSize)
	var cmd nvme.Command
	if io.Write {
		cmd = nvme.NewWrite(pend.CID, io.Nsid(), slba, nlb)
	} else {
		cmd = nvme.NewRead(pend.CID, io.Nsid(), slba, nlb)
	}
	e := pdu.BatchEntry{Cmd: cmd}
	if io.Write && io.Size <= w.cfg.TP.InCapsuleThreshold {
		if io.Data != nil {
			e.Data = io.Data
		} else {
			e.VirtualLen = io.Size
		}
		pend.Sent = io.Size
	}
	return e
}

func (w *tcpWire) Transmit(p *sim.Proc, e *pdu.BatchEntry) { w.h.SendCapsule(p, e) }

func (w *tcpWire) TransmitTrain(p *sim.Proc, b *pdu.CmdBatch) {
	transport.SendPDUs(p, w.ep, b)
}

func (w *tcpWire) PollBudget() time.Duration { return w.cfg.TP.BusyPoll }

func (w *tcpWire) PreReactor(p *sim.Proc) {}

func (w *tcpWire) HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool {
	if r, ok := u.(*pdu.R2T); ok {
		w.onR2T(p, r)
		return true
	}
	return false
}

func (w *tcpWire) ReleaseAttempt(pend *session.Pending) {}

// onR2T streams the granted write payload as chunk-sized H2CData PDUs.
func (w *tcpWire) onR2T(p *sim.Proc, r *pdu.R2T) {
	pend, ok := w.h.LookupPending(r.CID)
	if !ok {
		w.h.NoteLate() // grant for a command already reaped
		return
	}
	io := pend.IO
	grantEnd := int(r.Offset) + int(r.Length)
	transport.ChunkSizes(grantEnd-int(r.Offset), w.chunk(), func(off, n int) {
		dataOff := int(r.Offset) + off
		d := &pdu.Data{
			Dir:    pdu.TypeH2CData,
			CID:    r.CID,
			TTag:   r.TTag,
			Offset: uint32(dataOff),
			Last:   dataOff+n >= io.Size,
		}
		if io.Data != nil {
			d.Payload = io.Data[dataOff : dataOff+n]
		} else {
			d.VirtualLen = n
		}
		transport.SendPDUs(p, w.ep, d)
	})
	pend.Sent += int(r.Length)
}

// chunk returns the effective chunk size: the live knob, capped by the
// target's negotiated MaxH2CData.
func (w *tcpWire) chunk() int {
	c := int(w.chunkB.Load())
	if icresp := w.h.ICResp(); icresp != nil && icresp.MaxH2CData > 0 && int(icresp.MaxH2CData) < c {
		return int(icresp.MaxH2CData)
	}
	return c
}

// SetChunkSize adjusts the host-side chunk size live (block aligned, at
// least one block). Sizes below the negotiated MaxH2CData take effect on
// the next R2T grant; larger values are staged — they apply up to the
// negotiated ceiling now and fully after the next (re)negotiation, the
// honest treatment of a knob whose target half is immutable per
// connection.
func (c *Client) SetChunkSize(n int) {
	if n < transport.BlockSize {
		n = transport.BlockSize
	}
	n -= n % transport.BlockSize
	c.wire.chunkB.Store(int64(n))
}

// LiveChunkSize returns the host-side chunk size knob (which may exceed
// the per-connection negotiated ceiling; see SetChunkSize).
func (c *Client) LiveChunkSize() int { return int(c.wire.chunkB.Load()) }

// Identify fetches the controller and namespace-1 identify pages through
// admin commands, as a host does during controller initialization.
func (c *Client) Identify(p *sim.Proc) (nvme.IdentifyController, nvme.IdentifyNamespace, error) {
	ctrlBuf := make([]byte, 4096)
	res := c.Submit(p, &transport.IO{
		Admin: nvme.AdminIdentify, CDW10: nvme.CNSController, Data: ctrlBuf, Size: 4096,
	}).Wait(p)
	if err := res.Err(); err != nil {
		return nvme.IdentifyController{}, nvme.IdentifyNamespace{}, err
	}
	ctrl, err := nvme.DecodeIdentifyController(res.Data)
	if err != nil {
		return nvme.IdentifyController{}, nvme.IdentifyNamespace{}, err
	}
	nsBuf := make([]byte, 4096)
	res = c.Submit(p, &transport.IO{
		Admin: nvme.AdminIdentify, CDW10: nvme.CNSNamespace, NSID: 1, Data: nsBuf, Size: 4096,
	}).Wait(p)
	if err := res.Err(); err != nil {
		return nvme.IdentifyController{}, nvme.IdentifyNamespace{}, err
	}
	ns, err := nvme.DecodeIdentifyNamespace(res.Data)
	if err != nil {
		return nvme.IdentifyController{}, nvme.IdentifyNamespace{}, err
	}
	return ctrl, ns, nil
}
