// Package tcp implements the NVMe/TCP transport on the simulated network:
// the host-side queue (client) and the target-side connection server,
// including in-capsule and R2T flow control, application-level chunking,
// and the interrupt/busy-poll receive modes that the adaptive fabric
// tunes (§4.5 of the paper).
package tcp

import (
	"fmt"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// pollMissCPU is the fixed cost of a busy-poll budget expiring without
// data: syscall return, poller re-arm, and scheduler bookkeeping. Frequent
// misses at short budgets accumulate this overhead — the reason short
// polls can underperform plain interrupt mode for write workloads (§4.5).
const pollMissCPU = 8 * time.Microsecond

// ClientConfig configures one NVMe/TCP host queue.
type ClientConfig struct {
	// NQN names the target subsystem.
	NQN string
	// QueueDepth bounds outstanding commands.
	QueueDepth int
	// TP holds protocol knobs (chunk size, in-capsule threshold, busy
	// poll budget).
	TP model.TCPTransportParams
	// Host holds client software costs.
	Host model.HostParams
	// KeepAlive, when positive, sends a keep-alive admin command at this
	// interval so the target's KATO watchdog keeps the connection alive
	// (NVMe-oF keep-alive timer).
	KeepAlive time.Duration
	// HostNQN identifies this host in the Fabrics Connect command
	// (defaults to a generated NQN).
	HostNQN string
	// Telemetry receives counters and latency histograms (nil disables).
	Telemetry *telemetry.Sink
}

// Client is one NVMe/TCP host queue pair over a network endpoint.
type Client struct {
	e       *sim.Engine
	ep      *netsim.Endpoint
	cfg     ClientConfig
	cids    *nvme.CIDTable
	submitQ *sim.Queue[*transport.Pending]
	kick    *sim.Signal
	icresp  *pdu.ICResp
	closing bool
	drained *sim.Signal
	tel     *telemetry.Sink

	// freePends recycles Pending structs between requests so the steady-
	// state hot path allocates nothing per command. Safe without fencing:
	// the TCP client has no deadline timers holding stale references, and
	// a Pending leaves the CID table before it is recycled.
	freePends []*transport.Pending
	// batch and capsule are reactor-only scratch for outbound encoding.
	// SendPDUs serializes synchronously before any yield, so reusing them
	// across trains is safe under the cooperative engine.
	batch   pdu.CmdBatch
	capsule pdu.CapsuleCmd

	// Stats.
	Completed int64
}

// Connect performs the ICReq/ICResp exchange over ep and starts the client
// reactor. The calling process drives the handshake.
func Connect(p *sim.Proc, ep *netsim.Endpoint, cfg ClientConfig) (*Client, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.Disabled
	}
	e := p.Engine()
	c := &Client{
		e:       e,
		ep:      ep,
		cfg:     cfg,
		cids:    nvme.NewCIDTable(cfg.QueueDepth),
		submitQ: sim.NewQueue[*transport.Pending](e, 0),
		kick:    sim.NewSignal(e),
		drained: sim.NewSignal(e),
		tel:     cfg.Telemetry,
	}
	transport.SendPDUs(p, ep, &pdu.ICReq{PFV: 0, HPDA: 4, MaxR2T: 16})
	msg := ep.Recv(p)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		return nil, fmt.Errorf("tcp: handshake: %w", err)
	}
	icresp, ok := pdus[0].(*pdu.ICResp)
	if !ok {
		return nil, fmt.Errorf("tcp: handshake: unexpected %v", pdus[0].Type())
	}
	c.icresp = icresp
	if err := fabricsConnect(p, ep, cfg.HostNQN, cfg.NQN); err != nil {
		return nil, err
	}
	c.tel.Trace(int64(p.Now()), telemetry.EvPathSelected, 0, "tcp", "nvme-tcp")
	e.GoDaemon("tcp-client-reactor", c.reactor)
	if cfg.KeepAlive > 0 {
		e.GoDaemon("tcp-keepalive", c.keepAliveLoop)
	}
	return c, nil
}

// fabricsConnect performs the NVMe-oF Connect command: it associates the
// host with the subsystem and lets the target validate the NQN before any
// I/O flows.
func fabricsConnect(p *sim.Proc, ep *netsim.Endpoint, hostNQN, subNQN string) error {
	if hostNQN == "" {
		hostNQN = "nqn.2014-08.org.nvmexpress:uuid:sim-host"
	}
	cmd := nvme.Command{Opcode: nvme.FabricsCommandType, CID: 0xFFFF, CDW10: nvme.FctypeConnect}
	transport.SendPDUs(p, ep, &pdu.CapsuleCmd{Cmd: cmd, Data: nvme.EncodeConnectData(hostNQN, subNQN)})
	msg := ep.Recv(p)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		return fmt.Errorf("tcp: connect: %w", err)
	}
	resp, ok := pdus[0].(*pdu.CapsuleResp)
	if !ok {
		return fmt.Errorf("tcp: connect: unexpected %v", pdus[0].Type())
	}
	if resp.Rsp.Status.IsError() {
		return fmt.Errorf("tcp: connect rejected: %w", resp.Rsp.Status.Error())
	}
	return nil
}

// keepAliveLoop issues keep-alive admin commands until the client closes.
func (c *Client) keepAliveLoop(p *sim.Proc) {
	for !c.closing {
		p.Sleep(c.cfg.KeepAlive)
		if c.closing {
			return
		}
		c.Submit(p, &transport.IO{Admin: nvme.AdminKeepAlive})
	}
}

// ICResp returns the connection parameters negotiated at handshake.
func (c *Client) ICResp() *pdu.ICResp { return c.icresp }

// Submit implements transport.Queue. The calling process pays payload
// generation (writes) and submission CPU; protocol work happens on the
// reactor.
func (c *Client) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	fut := sim.NewFuture[*transport.Result](c.e)
	if !c.admit(io, fut) {
		return fut
	}
	if io.Write && !io.NoFill {
		p.Sleep(time.Duration(float64(io.Size) * c.cfg.Host.FillPerByteNanos))
	}
	p.Sleep(c.cfg.Host.SubmitCPU)
	pend := c.newPending(io, fut)
	pend.SubmitAt = p.Now()
	c.submitQ.TryPut(pend)
	c.kick.Fire()
	return fut
}

// SubmitBatch implements transport.BatchQueue: it stages every I/O with a
// single submit-CPU charge and a single reactor kick (one doorbell), so
// the reactor can coalesce the train into batch capsules.
func (c *Client) SubmitBatch(p *sim.Proc, ios []*transport.IO) []*sim.Future[*transport.Result] {
	futs := make([]*sim.Future[*transport.Result], len(ios))
	any := false
	for i, io := range ios {
		fut := sim.NewFuture[*transport.Result](c.e)
		futs[i] = fut
		if !c.admit(io, fut) {
			continue
		}
		if io.Write && !io.NoFill {
			p.Sleep(time.Duration(float64(io.Size) * c.cfg.Host.FillPerByteNanos))
		}
		any = true
	}
	if !any {
		return futs
	}
	p.Sleep(c.cfg.Host.SubmitCPU)
	for i, io := range ios {
		if futs[i].Resolved() {
			continue
		}
		pend := c.newPending(io, futs[i])
		pend.SubmitAt = p.Now()
		c.submitQ.TryPut(pend)
	}
	c.kick.Fire()
	return futs
}

// admit validates an I/O, resolving the future with an error status when
// it cannot be accepted. Returns true when the I/O may proceed.
func (c *Client) admit(io *transport.IO, fut *sim.Future[*transport.Result]) bool {
	if c.closing {
		fut.Resolve(&transport.Result{Status: nvme.StatusAbortRequested})
		return false
	}
	if err := validate(io); err != nil {
		fut.Resolve(&transport.Result{Status: nvme.StatusInvalidField})
		return false
	}
	return true
}

// newPending pops a recycled Pending or allocates one.
func (c *Client) newPending(io *transport.IO, fut *sim.Future[*transport.Result]) *transport.Pending {
	if n := len(c.freePends); n > 0 {
		pend := c.freePends[n-1]
		c.freePends[n-1] = nil
		c.freePends = c.freePends[:n-1]
		*pend = transport.Pending{IO: io, Fut: fut}
		return pend
	}
	return &transport.Pending{IO: io, Fut: fut}
}

// recyclePending returns a completed Pending to the freelist (bounded at
// a small multiple of the queue depth).
func (c *Client) recyclePending(pend *transport.Pending) {
	if len(c.freePends) >= 4*c.cfg.QueueDepth {
		return
	}
	pend.IO, pend.Fut = nil, nil
	c.freePends = append(c.freePends, pend)
}

// validate checks alignment and size.
func validate(io *transport.IO) error {
	if io.Admin != 0 || io.Flush {
		return nil
	}
	if io.Size <= 0 || io.Size%transport.BlockSize != 0 || io.Offset%transport.BlockSize != 0 {
		return fmt.Errorf("tcp: unaligned io off=%d size=%d", io.Offset, io.Size)
	}
	return nil
}

// Close initiates orderly shutdown: outstanding commands complete, then a
// termination PDU is sent and the reactor exits.
func (c *Client) Close() {
	if c.closing {
		return
	}
	c.closing = true
	c.kick.Fire()
}

// WaitClosed blocks until the reactor has exited.
func (c *Client) WaitClosed(p *sim.Proc) { c.drained.Wait(p) }

// reactor is the single-core event loop serving this connection: it admits
// submissions while CIDs are free, processes received PDUs, and waits in
// the configured receive mode.
func (c *Client) reactor(p *sim.Proc) {
	c.ep.OnDeliver = c.kick.Fire
	defer c.drained.Fire()
	for {
		worked := false
		if depth := c.batchDepth(); depth > 1 {
			for !c.cids.Full() && c.startTrain(p, depth) {
				worked = true
			}
		} else {
			for !c.cids.Full() {
				pend, ok := c.submitQ.TryGet()
				if !ok {
					break
				}
				c.start(p, pend)
				worked = true
			}
		}
		for {
			msg := c.ep.TryRecv(p)
			if msg == nil {
				break
			}
			c.handle(p, msg)
			worked = true
		}
		if worked {
			continue
		}
		if c.closing && c.cids.Outstanding() == 0 && c.submitQ.Len() == 0 {
			transport.SendPDUs(p, c.ep, &pdu.Term{Dir: pdu.TypeH2CTermReq})
			return
		}
		// Busy-poll the socket while commands are in flight: spin up to
		// the budget inside the receive path (SO_BUSY_POLL semantics).
		// Submissions arriving mid-poll wait for the poll to return —
		// the responsiveness cost of long budgets that Fig 10 exposes.
		if c.cfg.TP.BusyPoll > 0 && c.cids.Outstanding() > 0 {
			if msg := c.ep.RecvPoll(p, c.cfg.TP.BusyPoll); msg != nil {
				c.handle(p, msg)
				continue
			}
			// Expired poll: syscall return + re-arm cost, then fall
			// through to the blocking wait (SO_BUSY_POLL semantics: spin
			// the budget inside the syscall, then sleep until the
			// interrupt fires).
			p.Sleep(pollMissCPU)
		}
		c.kick.Reset()
		// Re-check actionable work: the exit condition (handled at the
		// top of the loop), received traffic, or an admissible
		// submission. A backlogged submission with all CIDs in flight is
		// not actionable until a completion arrives.
		if c.closing && c.cids.Outstanding() == 0 && c.submitQ.Len() == 0 {
			continue
		}
		if c.ep.Pending() > 0 || (!c.cids.Full() && c.submitQ.Len() > 0) {
			continue
		}
		// With commands outstanding (even while closing) the next wake
		// comes from the network; park until then.
		c.kick.Wait(p)
		if c.ep.Pending() > 0 {
			c.ep.ChargeWakeup(p)
		}
	}
}

// batchDepth is the effective submission-coalescing depth.
func (c *Client) batchDepth() int {
	if c.cfg.TP.BatchSize > 1 {
		return c.cfg.TP.BatchSize
	}
	return 1
}

// start transmits the command capsule for a newly admitted request.
func (c *Client) start(p *sim.Proc, pend *transport.Pending) {
	e := c.prepareStart(pend)
	c.capsule = pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
	transport.SendPDUs(p, c.ep, &c.capsule)
}

// startTrain drains up to depth admissible requests and transmits them as
// one capsule train: one network message, one doorbell. A single-entry
// train degenerates to the classic capsule (no batch framing overhead).
func (c *Client) startTrain(p *sim.Proc, depth int) bool {
	entries := c.batch.Entries[:0]
	for len(entries) < depth && !c.cids.Full() {
		pend, ok := c.submitQ.TryGet()
		if !ok {
			break
		}
		entries = append(entries, c.prepareStart(pend))
	}
	c.batch.Entries = entries
	if len(entries) == 0 {
		return false
	}
	c.tel.Observe(telemetry.HistBatchSize, int64(len(entries)))
	if len(entries) == 1 {
		e := entries[0]
		c.capsule = pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
		transport.SendPDUs(p, c.ep, &c.capsule)
		return true
	}
	transport.SendPDUs(p, c.ep, &c.batch)
	return true
}

// prepareStart allocates a CID for pend and builds its batch entry (the
// command plus any in-capsule payload); the caller owns transmission.
func (c *Client) prepareStart(pend *transport.Pending) pdu.BatchEntry {
	cid, err := c.cids.Alloc(pend)
	if err != nil {
		// Caller ensured a free CID; allocation cannot fail here.
		panic(err)
	}
	pend.CID = cid
	io := pend.IO
	if io.Admin != 0 {
		cmd := nvme.Command{Opcode: io.Admin, CID: cid, NSID: io.NSID, CDW10: io.CDW10, Flags: transport.AdminFlag}
		return pdu.BatchEntry{Cmd: cmd}
	}
	if io.Flush {
		// No payload, no LBA range: the flush capsule is pure control.
		return pdu.BatchEntry{Cmd: nvme.NewFlush(cid, io.Nsid())}
	}
	c.tel.Inc(telemetry.CtrSubmitsTCP)
	c.tel.Observe(telemetry.HistIOSize, int64(io.Size))
	slba := uint64(io.Offset / transport.BlockSize)
	nlb := uint32(io.Size / transport.BlockSize)
	var cmd nvme.Command
	if io.Write {
		cmd = nvme.NewWrite(cid, io.Nsid(), slba, nlb)
	} else {
		cmd = nvme.NewRead(cid, io.Nsid(), slba, nlb)
	}
	e := pdu.BatchEntry{Cmd: cmd}
	if io.Write && io.Size <= c.cfg.TP.InCapsuleThreshold {
		// In-capsule flow: payload rides with the command (§4.4.2).
		if io.Data != nil {
			e.Data = io.Data
		} else {
			e.VirtualLen = io.Size
		}
		pend.Sent = io.Size
	}
	return e
}

// handle processes one received network message (one or more PDUs).
func (c *Client) handle(p *sim.Proc, msg *netsim.Message) {
	transit := p.Now().Sub(msg.SentAt)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		panic(fmt.Sprintf("tcp client: bad message: %v", err))
	}
	c.tel.Add(telemetry.CtrPDUsRx, int64(len(pdus)))
	reaped := 0
	for _, u := range pdus {
		switch v := u.(type) {
		case *pdu.R2T:
			c.onR2T(p, v)
		case *pdu.Data:
			c.onData(p, v, transit)
		case *pdu.CapsuleResp:
			c.onResp(p, v, transit)
			reaped++
		case *pdu.Term:
			// Target-initiated termination: nothing outstanding to do.
		default:
			panic(fmt.Sprintf("tcp client: unexpected PDU %v", u.Type()))
		}
		// A message's transit is attributed once even when several PDUs
		// were coalesced into it.
		transit = 0
	}
	if reaped > 0 {
		c.tel.Observe(telemetry.HistReapDepth, int64(reaped))
	}
}

// onR2T streams the granted write payload as chunk-sized H2CData PDUs.
func (c *Client) onR2T(p *sim.Proc, r *pdu.R2T) {
	ctx, ok := c.cids.Lookup(r.CID)
	if !ok {
		panic(fmt.Sprintf("tcp client: R2T for unknown CID %d", r.CID))
	}
	pend := ctx.(*transport.Pending)
	io := pend.IO
	grantEnd := int(r.Offset) + int(r.Length)
	transport.ChunkSizes(grantEnd-int(r.Offset), c.chunk(), func(off, n int) {
		dataOff := int(r.Offset) + off
		d := &pdu.Data{
			Dir:    pdu.TypeH2CData,
			CID:    r.CID,
			TTag:   r.TTag,
			Offset: uint32(dataOff),
			Last:   dataOff+n >= io.Size,
		}
		if io.Data != nil {
			d.Payload = io.Data[dataOff : dataOff+n]
		} else {
			d.VirtualLen = n
		}
		transport.SendPDUs(p, c.ep, d)
	})
	pend.Sent += int(r.Length)
}

// onData receives one read payload chunk.
func (c *Client) onData(p *sim.Proc, d *pdu.Data, transit time.Duration) {
	ctx, ok := c.cids.Lookup(d.CID)
	if !ok {
		panic(fmt.Sprintf("tcp client: data for unknown CID %d", d.CID))
	}
	pend := ctx.(*transport.Pending)
	n := len(d.Payload)
	if n == 0 {
		n = d.VirtualLen
	}
	if d.Payload != nil && pend.IO.Data != nil {
		copy(pend.IO.Data[d.Offset:], d.Payload)
	}
	pend.Received += n
	pend.Comm += transit
}

// onResp completes a command.
func (c *Client) onResp(p *sim.Proc, r *pdu.CapsuleResp, transit time.Duration) {
	ctx, err := c.cids.Complete(r.Rsp.CID)
	if err != nil {
		panic(fmt.Sprintf("tcp client: %v", err))
	}
	pend := ctx.(*transport.Pending)
	pend.Comm += transit
	p.Sleep(c.cfg.Host.CompleteCPU)
	var data []byte
	if !pend.IO.Write && pend.IO.Data != nil {
		data = pend.IO.Data[:pend.Received]
	}
	pend.Finish(p.Now(), r, data)
	c.Completed++
	c.tel.Inc(telemetry.CtrCompletions)
	if pend.IO.Admin == 0 {
		lat := p.Now().Sub(pend.SubmitAt)
		if pend.IO.Write {
			c.tel.ObserveDuration(telemetry.HistWriteLatency, lat)
		} else {
			c.tel.ObserveDuration(telemetry.HistReadLatency, lat)
		}
	}
	c.recyclePending(pend)
	c.kick.Fire() // a CID freed: admit backlog
}

// Identify fetches the controller and namespace-1 identify pages through
// admin commands, as a host does during controller initialization.
func (c *Client) Identify(p *sim.Proc) (nvme.IdentifyController, nvme.IdentifyNamespace, error) {
	ctrlBuf := make([]byte, 4096)
	res := c.Submit(p, &transport.IO{
		Admin: nvme.AdminIdentify, CDW10: nvme.CNSController, Data: ctrlBuf, Size: 4096,
	}).Wait(p)
	if err := res.Err(); err != nil {
		return nvme.IdentifyController{}, nvme.IdentifyNamespace{}, err
	}
	ctrl, err := nvme.DecodeIdentifyController(res.Data)
	if err != nil {
		return nvme.IdentifyController{}, nvme.IdentifyNamespace{}, err
	}
	nsBuf := make([]byte, 4096)
	res = c.Submit(p, &transport.IO{
		Admin: nvme.AdminIdentify, CDW10: nvme.CNSNamespace, NSID: 1, Data: nsBuf, Size: 4096,
	}).Wait(p)
	if err := res.Err(); err != nil {
		return nvme.IdentifyController{}, nvme.IdentifyNamespace{}, err
	}
	ns, err := nvme.DecodeIdentifyNamespace(res.Data)
	if err != nil {
		return nvme.IdentifyController{}, nvme.IdentifyNamespace{}, err
	}
	return ctrl, ns, nil
}

// chunk returns the effective chunk size.
func (c *Client) chunk() int {
	if c.icresp != nil && c.icresp.MaxH2CData > 0 && int(c.icresp.MaxH2CData) < c.cfg.TP.ChunkSize {
		return int(c.icresp.MaxH2CData)
	}
	return c.cfg.TP.ChunkSize
}
