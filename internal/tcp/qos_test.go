package tcp

import (
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// TestTargetSideThrottleRejectsAndRedrives: with enforcement at the
// TARGET, an over-budget tenant's command is rejected with the typed
// retryable StatusTenantThrottled instead of being held hostage in the
// server; the host's retry machinery re-drives it until tokens refill,
// so the submission still completes — late, not lost.
func TestTargetSideThrottleRejectsAndRedrives(t *testing.T) {
	e := sim.NewEngine(3)
	tel := telemetry.New()
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	bd := bdev.NewSimSSD(e, "nvme0", 1<<30, ssdParams, false, transport.BlockSize)
	if _, err := sub.AddNamespace(1, bd); err != nil {
		t.Fatal(err)
	}

	reg := qos.NewRegistry()
	// 4 KiB of burst refilling at 8 MiB/s: the second 4 KiB write in a
	// burst must be rejected and succeed only on a later re-drive.
	if err := reg.Add(qos.Spec{Name: "capped", RateBps: 8 << 20, BurstBytes: 4 << 10}); err != nil {
		t.Fatal(err)
	}
	tsh := qos.NewShaper("target", reg, tel)

	tp := model.DefaultTCPTransport()
	srv := NewServer(e, tgt, ServerConfig{NQN: testNQN, TP: tp, Host: model.DefaultHost(), Telemetry: tel, QoS: tsh})
	link := netsim.NewLoopLink(e, model.TCP25G())
	srv.Serve(link.B)

	e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 8, TP: tp, Host: model.DefaultHost(),
			Telemetry: tel, Tenant: "capped",
			CommandTimeout: 2 * time.Millisecond, MaxRetries: 64,
			RetryBackoff: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 8; i++ {
			io := &transport.IO{Write: true, NSID: 1, Offset: int64(i) << 12, Size: 4 << 10, Tenant: "capped"}
			fut := c.Submit(p, io)
			res := fut.Wait(p)
			if err := res.Err(); err != nil {
				t.Fatalf("write %d failed despite retryable throttle: %v", i, err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	snap := tel.Snapshot()
	tv := snap.Tenants["capped"]
	if got := tv.Counters["tenant.throttled"]; got == 0 {
		t.Error("32 KiB against a 4 KiB burst never tripped the target-side throttle")
	}
	if got := tv.Counters["tenant.completions"]; got != 8 {
		t.Errorf("completions = %d, want all 8 re-driven to success", got)
	}
	if err := tsh.Conservation().Check(); err != nil {
		t.Errorf("token conservation violated: %v", err)
	}
}

// TestTenantHostNQNRoundTrip: the tenant rides inside the fixed-width
// Connect hostNQN field, so encode/decode must round-trip and the
// empty tenant must leave the NQN byte-identical (wire inertness).
func TestTenantHostNQNRoundTrip(t *testing.T) {
	const hn = "nqn.2014-08.org.nvmexpress:uuid:host1"
	if got := session.TenantHostNQN(hn, ""); got != hn {
		t.Errorf("empty tenant changed the hostNQN: %q", got)
	}
	enc := session.TenantHostNQN(hn, "tenant-a")
	gotHost, gotTenant := session.SplitTenantHostNQN(enc)
	if gotHost != hn || gotTenant != "tenant-a" {
		t.Errorf("round trip = (%q, %q), want (%q, %q)", gotHost, gotTenant, hn, "tenant-a")
	}
	if h, tn := session.SplitTenantHostNQN(hn); h != hn || tn != "" {
		t.Errorf("bare NQN split = (%q, %q)", h, tn)
	}
}
