package tcp

import (
	"bytes"
	"testing"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// TestRealDataRoundTripPoisonedPool runs multi-chunk conservative writes
// with poison-on-free enabled. Payload bytes are staged into the pool
// elements on receive and gathered from them at execute, so a transport
// bug that frees (or reuses) an element before the device read would
// surface here as 0xDB corruption instead of passing silently.
func TestRealDataRoundTripPoisonedPool(t *testing.T) {
	r := newRig(t, true, nil)
	r.srv.pool.SetPoison(true)
	payload := make([]byte, 512<<10) // 4 chunks at the default 128K
	for i := range payload {
		payload[i] = byte(i*13 + 7)
	}
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 8)
		for round := 0; round < 3; round++ {
			res := c.Submit(p, &transport.IO{Write: true, Offset: 4096, Size: len(payload), Data: payload}).Wait(p)
			if res.Err() != nil {
				t.Fatalf("round %d write: %v", round, res.Err())
			}
			into := make([]byte, len(payload))
			res = c.Submit(p, &transport.IO{Offset: 4096, Size: len(payload), Data: into}).Wait(p)
			if res.Err() != nil {
				t.Fatalf("round %d read: %v", round, res.Err())
			}
			if !bytes.Equal(res.Data, payload) {
				t.Fatalf("round %d: payload corrupted through poisoned pool", round)
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.srv.pool.InUse() != 0 {
		t.Fatalf("pool leak: %d elements in use", r.srv.pool.InUse())
	}
}

// TestPoisonPoolConfig checks the ServerConfig knob reaches the pool.
func TestPoisonPoolConfig(t *testing.T) {
	e := sim.NewEngine(1)
	srv := NewServer(e, nil, ServerConfig{NQN: "nqn.x", TP: model.DefaultTCPTransport(), PoisonPool: true})
	if !srv.pool.Poisoned() {
		t.Fatal("PoisonPool did not enable poison-on-free")
	}
}
