package tcp

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

const testNQN = "nqn.2022-06.io.oaf:testsub"

// rig wires a client and a target through a loopback link.
type rig struct {
	e      *sim.Engine
	srv    *Server
	link   *netsim.Link
	bdev   *bdev.SSDBdev
	retain bool
}

func newRig(t *testing.T, retainData bool, tpMut func(*model.TCPTransportParams)) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	bd := bdev.NewSimSSD(e, "nvme0", 1<<30, ssdParams, retainData, transport.BlockSize)
	if _, err := sub.AddNamespace(1, bd); err != nil {
		t.Fatal(err)
	}
	tp := model.DefaultTCPTransport()
	if tpMut != nil {
		tpMut(&tp)
	}
	srv := NewServer(e, tgt, ServerConfig{NQN: testNQN, TP: tp, Host: model.DefaultHost()})
	link := netsim.NewLoopLink(e, model.TCP25G())
	srv.Serve(link.B)
	return &rig{e: e, srv: srv, link: link, bdev: bd, retain: retainData}
}

func (r *rig) connect(t *testing.T, p *sim.Proc, qd int) *Client {
	c, err := Connect(p, r.link.A, ClientConfig{
		NQN: testNQN, QueueDepth: qd,
		TP:   r.srv.cfg.TP,
		Host: model.DefaultHost(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHandshake(t *testing.T) {
	r := newRig(t, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 8)
		if c.ICResp().MaxH2CData != uint32(model.DefaultTCPTransport().ChunkSize) {
			t.Errorf("negotiated chunk %d", c.ICResp().MaxH2CData)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteVirtualPayload(t *testing.T) {
	r := newRig(t, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 8)
		// Large write: conservative flow with R2T.
		res := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 128 << 10}).Wait(p)
		if res.Err() != nil {
			t.Errorf("write: %v", res.Err())
		}
		if res.Latency <= 0 || res.IOTime <= 0 || res.CommTime <= 0 {
			t.Errorf("write timing: %+v", res)
		}
		// Read back (virtual).
		res = c.Submit(p, &transport.IO{Offset: 0, Size: 128 << 10}).Wait(p)
		if res.Err() != nil {
			t.Errorf("read: %v", res.Err())
		}
		if res.IOTime <= 0 || res.CommTime <= 0 {
			t.Errorf("read timing: %+v", res)
		}
		if got := res.IOTime + res.CommTime + res.OtherTime; got != res.Latency {
			t.Errorf("breakdown %v != latency %v", got, res.Latency)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRealDataRoundTrip(t *testing.T) {
	r := newRig(t, true, nil)
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 8)
		res := c.Submit(p, &transport.IO{Write: true, Offset: 4096, Size: len(payload), Data: payload}).Wait(p)
		if res.Err() != nil {
			t.Fatalf("write: %v", res.Err())
		}
		into := make([]byte, len(payload))
		res = c.Submit(p, &transport.IO{Offset: 4096, Size: len(payload), Data: into}).Wait(p)
		if res.Err() != nil {
			t.Fatalf("read: %v", res.Err())
		}
		if !bytes.Equal(res.Data, payload) {
			t.Error("payload mismatch through NVMe/TCP")
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInCapsuleWriteSkipsR2T(t *testing.T) {
	r := newRig(t, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 8)
		small := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 4 << 10}).Wait(p)
		if small.Err() != nil {
			t.Fatal(small.Err())
		}
		large := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 64 << 10}).Wait(p)
		if large.Err() != nil {
			t.Fatal(large.Err())
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4KB in-capsule: capsule, resp = 2 messages on client link.
	// 64KB conservative: capsule, R2T, data, resp = 4 messages.
	// Plus ICReq/ICResp, Fabrics Connect, and Term.
	wantSent := int64(1 + 1 + 1 + 2 + 1) // ICReq + connect + small capsule + (large capsule+data) + term
	if r.link.A.MsgsSent != wantSent {
		t.Fatalf("client sent %d messages, want %d (in-capsule flow must skip R2T data msg)",
			r.link.A.MsgsSent, wantSent)
	}
}

func TestQueueDepthLimitsOutstanding(t *testing.T) {
	r := newRig(t, false, nil)
	const qd, total = 4, 32
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, qd)
		futs := make([]*sim.Future[*transport.Result], 0, total)
		for i := 0; i < total; i++ {
			futs = append(futs, c.Submit(p, &transport.IO{Offset: int64(i) * 4096, Size: 4096}))
		}
		for _, f := range futs {
			if res := f.Wait(p); res.Err() != nil {
				t.Errorf("io failed: %v", res.Err())
			}
		}
		if c.Completed != total {
			t.Errorf("completed %d", c.Completed)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkingSplitsLargeIO(t *testing.T) {
	r := newRig(t, false, func(tp *model.TCPTransportParams) { tp.ChunkSize = 64 << 10 })
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 4)
		res := c.Submit(p, &transport.IO{Offset: 0, Size: 512 << 10}).Wait(p)
		if res.Err() != nil {
			t.Fatal(res.Err())
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	// The 512KB read must arrive as 8 x 64KB data messages (last batched
	// with the response): ICResp + connect resp + 8 = 10 messages from
	// the server.
	if got := r.link.B.MsgsSent; got != 10 {
		t.Fatalf("server sent %d messages, want 10", got)
	}
}

func TestUnalignedIORejected(t *testing.T) {
	r := newRig(t, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 4)
		res := c.Submit(p, &transport.IO{Offset: 3, Size: 4096}).Wait(p)
		if res.Err() == nil {
			t.Error("unaligned offset accepted")
		}
		res = c.Submit(p, &transport.IO{Offset: 0, Size: 100}).Wait(p)
		if res.Err() == nil {
			t.Error("unaligned size accepted")
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLBAOutOfRangeStatus(t *testing.T) {
	r := newRig(t, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 4)
		res := c.Submit(p, &transport.IO{Offset: 1 << 30, Size: 4096}).Wait(p)
		if res.Status != nvme.StatusLBAOutOfRange {
			t.Errorf("status %v, want LBA out of range", res.Status)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolBackpressure(t *testing.T) {
	// Pool with 2 chunk buffers; 8 concurrent 128KB reads must wait for
	// credits but all complete.
	r := newRig(t, false, func(tp *model.TCPTransportParams) { tp.DataBuffers = 2 })
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 8)
		var futs []*sim.Future[*transport.Result]
		for i := 0; i < 8; i++ {
			futs = append(futs, c.Submit(p, &transport.IO{Offset: int64(i) * (128 << 10), Size: 128 << 10}))
		}
		for _, f := range futs {
			if res := f.Wait(p); res.Err() != nil {
				t.Errorf("io: %v", res.Err())
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.srv.BufferWaits == 0 {
		t.Fatal("expected buffer waits with a 2-element pool")
	}
	if r.srv.Pool().InUse() != 0 {
		t.Fatalf("leaked %d pool buffers", r.srv.Pool().InUse())
	}
}

func TestIdentifyAdminCommand(t *testing.T) {
	r := newRig(t, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		c := r.connect(t, p, 4)
		ctrl, ns, err := c.Identify(p)
		if err != nil {
			t.Fatalf("identify: %v", err)
		}
		if ctrl.NN != 1 {
			t.Errorf("controller NN = %d", ctrl.NN)
		}
		if ns.BlockSize != transport.BlockSize || ns.NSZE != uint64((1<<30)/transport.BlockSize) {
			t.Errorf("namespace: %+v", ns)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFasterLinkIsFaster(t *testing.T) {
	// Sanity: the same workload completes sooner over 100G than 10G.
	elapsed := func(link model.LinkParams) sim.Time {
		e := sim.NewEngine(1)
		tgt := target.New(e, model.DefaultHost())
		sub, _ := tgt.AddSubsystem(testNQN)
		ssdParams := model.DefaultSSD()
		ssdParams.JitterFrac = 0
		ssdParams.StallProb = 0
		sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<30, ssdParams, false, transport.BlockSize))
		srv := NewServer(e, tgt, ServerConfig{NQN: testNQN, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
		l := netsim.NewLoopLink(e, link)
		srv.Serve(l.B)
		var done sim.Time
		e.Go("app", func(p *sim.Proc) {
			c, err := Connect(p, l.A, ClientConfig{NQN: testNQN, QueueDepth: 16, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
			if err != nil {
				t.Fatal(err)
			}
			var futs []*sim.Future[*transport.Result]
			for i := 0; i < 64; i++ {
				futs = append(futs, c.Submit(p, &transport.IO{Offset: int64(i) * (128 << 10), Size: 128 << 10}))
			}
			for _, f := range futs {
				f.Wait(p)
			}
			done = p.Now()
			c.Close()
			c.WaitClosed(p)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	slow := elapsed(model.TCP10G())
	fast := elapsed(model.TCP100G())
	if fast >= slow {
		t.Fatalf("100G (%v) not faster than 10G (%v)", fast, slow)
	}
}

func TestBusyPollEliminatesWakeupPenalties(t *testing.T) {
	// With commands continuously in flight, a busy-polling client catches
	// completions on-CPU: no interrupt wakeups, and total time no worse
	// than interrupt mode.
	run := func(poll time.Duration) (sim.Time, int64, int64) {
		// Poll on the client side only: a polling server shifts response
		// phases and would mask the client-side comparison.
		r := newRig(t, false, nil)
		var done sim.Time
		r.e.Go("app", func(p *sim.Proc) {
			tp := model.DefaultTCPTransport()
			tp.BusyPoll = poll
			c, err := Connect(p, r.link.A, ClientConfig{NQN: testNQN, QueueDepth: 2, TP: tp, Host: model.DefaultHost()})
			if err != nil {
				t.Fatal(err)
			}
			// Two outstanding reads at a time: after the reactor handles
			// one completion, the next arrives within the poll budget, so
			// a busy-polling client catches it on-CPU while interrupt
			// mode pays a wakeup.
			var futs []*sim.Future[*transport.Result]
			for i := 0; i < 50; i++ {
				futs = append(futs, c.Submit(p, &transport.IO{Offset: int64(i) * 4096, Size: 4096}))
			}
			for _, f := range futs {
				f.Wait(p)
			}
			done = p.Now()
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		return done, r.link.A.Wakeups, r.link.A.PollHits
	}
	intTime, intWakeups, _ := run(0)
	pollTime, pollWakeups, hits := run(250 * time.Microsecond)
	if intWakeups == 0 {
		t.Fatal("interrupt mode should pay wakeups")
	}
	if hits == 0 {
		t.Fatal("busy poll should record hits")
	}
	if pollWakeups >= intWakeups {
		t.Fatalf("poll wakeups %d should be fewer than interrupt %d", pollWakeups, intWakeups)
	}
	if pollTime > intTime*11/10 {
		t.Fatalf("busy poll time %v much worse than interrupt %v", pollTime, intTime)
	}
}

func TestKeepAliveKeepsConnectionAlive(t *testing.T) {
	// A client sending keep-alives survives the target's KATO watchdog
	// through a long idle period; a silent client gets torn down.
	run := func(keepAlive time.Duration) bool {
		e := sim.NewEngine(1)
		tgt := target.New(e, model.DefaultHost())
		sub, _ := tgt.AddSubsystem(testNQN)
		ssdParams := model.DefaultSSD()
		ssdParams.JitterFrac = 0
		ssdParams.StallProb = 0
		sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<20, ssdParams, false, transport.BlockSize))
		srv := NewServer(e, tgt, ServerConfig{
			NQN: testNQN, TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
			KATO: 5 * time.Millisecond,
		})
		link := netsim.NewLoopLink(e, model.TCP25G())
		conn := srv.Serve(link.B)
		e.Go("app", func(p *sim.Proc) {
			c, err := Connect(p, link.A, ClientConfig{
				NQN: testNQN, QueueDepth: 4, TP: model.DefaultTCPTransport(),
				Host: model.DefaultHost(), KeepAlive: keepAlive,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Idle for several KATO periods.
			p.Sleep(30 * time.Millisecond)
			c.Close()
		})
		if err := e.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		return conn.Expired
	}
	if expired := run(2 * time.Millisecond); expired {
		t.Fatal("keep-alive client should not expire")
	}
	if expired := run(0); !expired {
		t.Fatal("silent client should hit the KATO watchdog")
	}
}

func TestFabricsConnectRejectsWrongNQN(t *testing.T) {
	r := newRig(t, false, nil)
	r.e.Go("app", func(p *sim.Proc) {
		_, err := Connect(p, r.link.A, ClientConfig{
			NQN: "nqn.wrong-subsystem", QueueDepth: 4,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		if err == nil {
			t.Error("connect to unknown subsystem should be rejected")
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}
