package blockfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

// rig builds a file over an oAF queue with a real-data SSD.
func rig(t *testing.T, seed int64) (*sim.Engine, func(p *sim.Proc) *File) {
	t.Helper()
	e := sim.NewEngine(seed)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem("nqn.test")
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	const capacity = 256 << 20
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "d", capacity, ssdParams, true, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	fabric := core.NewFabric(e, model.DefaultSHM())
	srv := core.NewServer(e, tgt, core.ServerConfig{
		NQN: "nqn.test", Design: core.DesignSHMZeroCopy, Fabric: fabric,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
	})
	link := netsim.NewLoopLink(e, model.Loopback())
	srv.Serve(link.B)
	region, _ := fabric.RegionFor(core.DesignSHMZeroCopy, "h", "h", 1<<20, 128<<10, 32)
	return e, func(p *sim.Proc) *File {
		c, err := core.Connect(p, link.A, core.ClientConfig{
			NQN: "nqn.test", QueueDepth: 32, Design: core.DesignSHMZeroCopy, Region: region,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return New(e, c, capacity)
	}
}

func TestAlignedRoundTrip(t *testing.T) {
	e, open := rig(t, 1)
	e.Go("app", func(p *sim.Proc) {
		f := open(p)
		data := bytes.Repeat([]byte{0xA7}, 8192)
		if err := f.WriteAt(p, 4096, data, len(data)); err != nil {
			t.Error(err)
		}
		got := make([]byte, 8192)
		if err := f.ReadAt(p, 4096, got, len(got)); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("aligned round trip mismatch")
		}
		if f.RMWs != 0 {
			t.Errorf("aligned I/O caused %d RMWs", f.RMWs)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedRMW(t *testing.T) {
	e, open := rig(t, 2)
	e.Go("app", func(p *sim.Proc) {
		f := open(p)
		// Surrounding data must survive an unaligned overwrite.
		base := bytes.Repeat([]byte{0x11}, 2048)
		if err := f.WriteAt(p, 0, base, len(base)); err != nil {
			t.Error(err)
		}
		patch := []byte("unaligned-patch")
		if err := f.WriteAt(p, 100, patch, len(patch)); err != nil {
			t.Error(err)
		}
		if f.RMWs == 0 {
			t.Error("unaligned write should RMW")
		}
		got := make([]byte, 2048)
		if err := f.ReadAt(p, 0, got, len(got)); err != nil {
			t.Error(err)
		}
		want := append([]byte(nil), base...)
		copy(want[100:], patch)
		if !bytes.Equal(got, want) {
			t.Error("RMW corrupted surrounding bytes")
		}
		// Unaligned read.
		sub := make([]byte, 20)
		if err := f.ReadAt(p, 95, sub, 20); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(sub, want[95:115]) {
			t.Error("unaligned read mismatch")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeValidation(t *testing.T) {
	e, open := rig(t, 3)
	e.Go("app", func(p *sim.Proc) {
		f := open(p)
		if err := f.WriteAt(p, -1, nil, 10); err == nil {
			t.Error("negative offset accepted")
		}
		if err := f.ReadAt(p, f.Size-4, nil, 8); err == nil {
			t.Error("read past EOF accepted")
		}
		if err := f.Stream(p, true, 0, nil, 100, 1<<20, 4); err == nil {
			t.Error("unaligned stream accepted")
		}
		if err := f.WriteAt(p, 0, nil, 0); err != nil {
			t.Error("zero-size write should be a no-op")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamFasterThanSync(t *testing.T) {
	e, open := rig(t, 4)
	e.Go("app", func(p *sim.Proc) {
		f := open(p)
		const size = 32 << 20
		t0 := p.Now()
		if err := f.Stream(p, true, 0, nil, size, 1<<20, 16); err != nil {
			t.Error(err)
		}
		streamed := p.Now().Sub(t0)
		t0 = p.Now()
		for off := int64(0); off < size; off += 1 << 20 {
			if err := f.WriteAt(p, off, nil, 1<<20); err != nil {
				t.Error(err)
			}
		}
		synced := p.Now().Sub(t0)
		if streamed*2 >= synced {
			t.Errorf("pipelined stream (%v) should be much faster than sync loop (%v)", streamed, synced)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRealData(t *testing.T) {
	e, open := rig(t, 5)
	e.Go("app", func(p *sim.Proc) {
		f := open(p)
		data := make([]byte, 4<<20)
		for i := range data {
			data[i] = byte(i * 31)
		}
		if err := f.Stream(p, true, 1<<20, data, len(data), 1<<20, 8); err != nil {
			t.Error(err)
		}
		got := make([]byte, len(data))
		if err := f.Stream(p, false, 1<<20, got, len(got), 1<<20, 8); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("streamed data mismatch")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadProperty(t *testing.T) {
	// Property: arbitrary write sequences behave like a flat byte array.
	type op struct {
		Off  uint32
		Data []byte
	}
	f := func(ops []op) bool {
		const space = 1 << 20
		e, open := rig(t, 99)
		ref := make([]byte, space)
		ok := true
		e.Go("prop", func(p *sim.Proc) {
			file := open(p)
			for _, o := range ops {
				off := int64(o.Off % (space / 2))
				data := o.Data
				if len(data) == 0 {
					continue
				}
				if len(data) > 64<<10 {
					data = data[:64<<10]
				}
				if err := file.WriteAt(p, off, data, len(data)); err != nil {
					ok = false
					return
				}
				copy(ref[off:], data)
			}
			got := make([]byte, space)
			if err := file.ReadAt(p, 0, got, space); err != nil {
				ok = false
				return
			}
			ok = bytes.Equal(got, ref)
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
