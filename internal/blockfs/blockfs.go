// Package blockfs provides a byte-addressed file abstraction over one
// NVMe-oF namespace: alignment handling (read-modify-write for partial
// blocks), synchronous reads/writes, and pipelined streaming transfers
// that keep a configurable number of block I/Os outstanding.
//
// The HDF5 layer and the NFS server both sit on top of it.
package blockfs

import (
	"fmt"

	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// File exposes one namespace as a flat byte-addressable file.
type File struct {
	e *sim.Engine
	q transport.Queue
	// Size is the addressable capacity in bytes.
	Size int64

	// Ops counts issued block I/Os; RMWs counts read-modify-write cycles
	// caused by unaligned accesses.
	Ops, RMWs int64
}

// New wraps a transport queue as a file of the given capacity.
func New(e *sim.Engine, q transport.Queue, size int64) *File {
	return &File{e: e, q: q, Size: size}
}

const bs = transport.BlockSize

// span aligns [off, off+size) outward to block boundaries.
func span(off int64, size int) (alignedOff int64, alignedSize int) {
	start := off / bs * bs
	end := (off + int64(size) + bs - 1) / bs * bs
	return start, int(end - start)
}

// check validates a range.
func (f *File) check(off int64, size int) error {
	if off < 0 || size < 0 || off+int64(size) > f.Size {
		return fmt.Errorf("blockfs: range [%d,%d) outside file of %d bytes", off, off+int64(size), f.Size)
	}
	return nil
}

// WriteAt writes size bytes at off synchronously. data may be nil for a
// modeled payload. Unaligned edges trigger read-modify-write of the
// bordering blocks.
func (f *File) WriteAt(p *sim.Proc, off int64, data []byte, size int) error {
	if err := f.check(off, size); err != nil {
		return err
	}
	if size == 0 {
		return nil
	}
	aOff, aSize := span(off, size)
	if aOff == off && aSize == size {
		return f.doSync(p, true, off, data, size)
	}
	// Read-modify-write: fetch the aligned span, splice, write back.
	f.RMWs++
	var buf []byte
	if data != nil {
		buf = make([]byte, aSize)
		if err := f.doSync(p, false, aOff, buf, aSize); err != nil {
			return err
		}
		copy(buf[off-aOff:], data[:size])
	} else {
		if err := f.doSync(p, false, aOff, nil, aSize); err != nil {
			return err
		}
	}
	return f.doSync(p, true, aOff, buf, aSize)
}

// ReadAt reads size bytes at off synchronously into buf (nil for modeled
// payloads).
func (f *File) ReadAt(p *sim.Proc, off int64, buf []byte, size int) error {
	if err := f.check(off, size); err != nil {
		return err
	}
	if size == 0 {
		return nil
	}
	aOff, aSize := span(off, size)
	if aOff == off && aSize == size {
		return f.doSync(p, false, off, buf, size)
	}
	f.RMWs++
	var tmp []byte
	if buf != nil {
		tmp = make([]byte, aSize)
	}
	if err := f.doSync(p, false, aOff, tmp, aSize); err != nil {
		return err
	}
	if buf != nil {
		copy(buf[:size], tmp[off-aOff:])
	}
	return nil
}

// doSync issues one aligned I/O and waits for it.
func (f *File) doSync(p *sim.Proc, write bool, off int64, data []byte, size int) error {
	f.Ops++
	io := &transport.IO{Write: write, Offset: off, Size: size, NoFill: true}
	if data != nil {
		io.Data = data[:size]
	}
	res := f.q.Submit(p, io).Wait(p)
	if err := res.Err(); err != nil {
		return fmt.Errorf("blockfs: %s at %d+%d: %w", opName(write), off, size, err)
	}
	if !write && data != nil && res.Data != nil {
		copy(data[:size], res.Data)
	}
	return nil
}

func opName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// Stream issues a large aligned transfer as xfer-sized I/Os with up to
// depth outstanding — the pipelined data path the VOL uses for large
// dataset transfers. data may be nil (modeled payload).
func (f *File) Stream(p *sim.Proc, write bool, off int64, data []byte, size, xfer, depth int) error {
	if err := f.check(off, size); err != nil {
		return err
	}
	if xfer <= 0 {
		xfer = 1 << 20
	}
	if depth <= 0 {
		depth = 1
	}
	aOff, aSize := span(off, size)
	if aOff != off || aSize != size {
		return fmt.Errorf("blockfs: stream range [%d,%d) not block aligned", off, off+int64(size))
	}

	type done struct{ err error }
	completions := sim.NewQueue[done](f.e, 0)
	outstanding := 0
	var firstErr error

	issue := func(chunkOff int64, n int) {
		f.Ops++
		io := &transport.IO{Write: write, Offset: chunkOff, Size: n, NoFill: true}
		if data != nil {
			io.Data = data[chunkOff-off : chunkOff-off+int64(n)]
		}
		fut := f.q.Submit(p, io)
		local := io
		fut.OnResolve(func(r *transport.Result) {
			if err := r.Err(); err != nil {
				completions.TryPut(done{err: err})
				return
			}
			if !write && data != nil && r.Data != nil {
				copy(local.Data, r.Data)
			}
			completions.TryPut(done{})
		})
		outstanding++
	}

	next := off
	end := off + int64(size)
	for next < end && outstanding < depth {
		n := xfer
		if int64(n) > end-next {
			n = int(end - next)
		}
		issue(next, n)
		next += int64(n)
	}
	for outstanding > 0 {
		d, _ := completions.Get(p)
		outstanding--
		if d.err != nil && firstErr == nil {
			firstErr = d.err
		}
		if next < end && firstErr == nil {
			n := xfer
			if int64(n) > end-next {
				n = int(end - next)
			}
			issue(next, n)
			next += int64(n)
		}
	}
	return firstErr
}
