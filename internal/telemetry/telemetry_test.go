package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestCountersAndHistograms(t *testing.T) {
	s := New()
	if !s.Enabled() {
		t.Fatal("New() sink should be enabled")
	}
	s.Inc(CtrRetries)
	s.Add(CtrRetries, 2)
	s.Inc(CtrSubmitsSHM)
	if got := s.Counter(CtrRetries); got != 3 {
		t.Fatalf("CtrRetries = %d, want 3", got)
	}
	for i := 0; i < 1000; i++ {
		s.Observe(HistReadLatency, int64(i)*1000)
	}
	s.ObserveDuration(HistWriteLatency, 5*time.Millisecond)
	h := s.Histogram(HistReadLatency)
	if h == nil || h.Count() != 1000 {
		t.Fatalf("read histogram count = %v, want 1000", h)
	}
	if p50 := h.P50(); p50 < 400_000 || p50 > 600_000 {
		t.Fatalf("p50 = %d, want ~500000", p50)
	}
}

func TestDisabledAndNilAreNoOps(t *testing.T) {
	for _, s := range []*Sink{Disabled, nil, {}} {
		s.Inc(CtrRetries)
		s.Add(CtrCompletions, 7)
		s.Observe(HistReadLatency, 1)
		s.Trace(1, EvRetry, 9, "tcp", "x")
		if s.Enabled() {
			t.Fatal("sink should be disabled")
		}
		if s.Counter(CtrRetries) != 0 || s.Histogram(HistReadLatency) != nil {
			t.Fatal("disabled sink retained data")
		}
		if s.Events() != nil || s.TraceCount() != 0 {
			t.Fatal("disabled sink retained trace")
		}
		snap := s.Snapshot()
		if len(snap.Counters) != 0 || len(snap.Histograms) != 0 || snap.Trace != nil {
			t.Fatal("disabled snapshot not empty")
		}
	}
}

func TestTraceRingWraps(t *testing.T) {
	s := NewWithTraceDepth(4)
	for i := 0; i < 10; i++ {
		s.Trace(int64(i), EvRetry, uint16(i), "shm", "")
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest first: 6,7,8,9.
	for i, ev := range evs {
		if ev.AtNs != int64(6+i) {
			t.Fatalf("event %d AtNs = %d, want %d", i, ev.AtNs, 6+i)
		}
	}
	if s.TraceCount() != 10 {
		t.Fatalf("TraceCount = %d, want 10", s.TraceCount())
	}
}

func TestTraceOrderBeforeWrap(t *testing.T) {
	s := NewWithTraceDepth(8)
	s.Trace(1, EvPathSelected, 0, "shm", "shm-0-copy")
	s.Trace(2, EvFailover, 3, "tcp", "")
	evs := s.Events()
	if len(evs) != 2 || evs[0].Kind != EvPathSelected || evs[1].Kind != EvFailover {
		t.Fatalf("unexpected events: %+v", evs)
	}
}

func TestZeroTraceDepthKeepsMetrics(t *testing.T) {
	s := NewWithTraceDepth(0)
	s.Inc(CtrShedOrZero())
	s.Trace(1, EvShed, 0, "", "")
	if s.Events() != nil {
		t.Fatal("no ring expected")
	}
	if s.Counter(CtrSrvShed) != 1 {
		t.Fatal("counter lost")
	}
}

// CtrShedOrZero exists to keep the test above honest if constants move.
func CtrShedOrZero() Counter { return CtrSrvShed }

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Inc(CtrRetries)
	b.Add(CtrRetries, 4)
	b.Observe(HistIOSize, 4096)
	a.Merge(b)
	if a.Counter(CtrRetries) != 5 {
		t.Fatalf("merged retries = %d, want 5", a.Counter(CtrRetries))
	}
	if a.Histogram(HistIOSize).Count() != 1 {
		t.Fatal("merged histogram lost sample")
	}
	// Merging disabled into enabled, and enabled into disabled: no-ops.
	a.Merge(Disabled)
	Disabled.Merge(a)
	if Disabled.Counter(CtrRetries) != 0 {
		t.Fatal("Disabled mutated")
	}
}

func TestSnapshotJSON(t *testing.T) {
	s := New()
	s.Inc(CtrSubmitsTCP)
	s.Observe(HistReadLatency, 123456)
	s.Trace(99, EvPathSelected, 0, "tcp", "tcp")
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["client.submits.tcp"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	hs, ok := snap.Histograms["latency.read_ns"]
	if !ok || hs.Count != 1 || hs.P99 == 0 {
		t.Fatalf("histograms = %v", snap.Histograms)
	}
	if len(snap.Trace) != 1 || snap.Trace[0].Kind != "path_selected" {
		t.Fatalf("trace = %v", snap.Trace)
	}
	// Zero-valued metrics elided.
	if _, ok := snap.Counters["client.retries"]; ok {
		t.Fatal("zero counter exported")
	}
}

func TestNames(t *testing.T) {
	for c := Counter(0); c < numCounters; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Fatalf("counter %d has no name", c)
		}
	}
	for h := Hist(0); h < numHists; h++ {
		if h.String() == "" || h.String() == "unknown" {
			t.Fatalf("hist %d has no name", h)
		}
	}
	if Counter(-1).String() != "unknown" || Hist(99).String() != "unknown" {
		t.Fatal("out-of-range names")
	}
	if EvKATOExpired.String() != "kato_expired" || EventKind(200).String() != "unknown" {
		t.Fatal("event kind names")
	}
}
