package telemetry

import (
	"encoding/json"

	"nvmeoaf/internal/stats"
)

// HistSnapshot is the exported summary of one distribution. Latency
// histograms are in nanoseconds; the *_us fields convert for humans.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	P50    int64   `json:"p50"`
	P99    int64   `json:"p99"`
	P999   int64   `json:"p999"`
	P9999  int64   `json:"p9999"`
	MeanUs  float64 `json:"mean_us"`
	P50Us   float64 `json:"p50_us"`
	P99Us   float64 `json:"p99_us"`
	P999Us  float64 `json:"p999_us"`
	P9999Us float64 `json:"p9999_us"`
}

// EventSnapshot is one trace entry in exported form.
type EventSnapshot struct {
	AtNs int64  `json:"at_ns"`
	Kind string `json:"kind"`
	CID  uint16 `json:"cid,omitempty"`
	Path string `json:"path,omitempty"`
	Note string `json:"note,omitempty"`
}

// Snapshot is the JSON-marshalable view of a sink. Zero-valued counters
// and empty histograms are elided so exported documents stay readable.
type Snapshot struct {
	// AtNs is the virtual time the snapshot was taken (0 when captured
	// through Snapshot rather than SnapshotAt). DeltaSince uses it to
	// derive per-second rates between two timestamped snapshots.
	AtNs       int64                   `json:"at_ns,omitempty"`
	Counters   map[string]int64        `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	// Tenants holds the per-tenant views (absent when no tenant was ever
	// named): who submitted, who was throttled, who borrowed or lent
	// token capacity.
	Tenants    map[string]TenantSnapshot `json:"tenants,omitempty"`
	Trace      []EventSnapshot           `json:"trace,omitempty"`
	TraceTotal uint64                    `json:"trace_total,omitempty"`
}

// histSnapshotOf summarizes one histogram in exported form.
func histSnapshotOf(hist *stats.Histogram) HistSnapshot {
	return HistSnapshot{
		Count:   hist.Count(),
		Mean:    hist.Mean(),
		Min:     hist.Min(),
		Max:     hist.Max(),
		P50:     hist.P50(),
		P99:     hist.P99(),
		P999:    hist.P999(),
		P9999:   hist.P9999(),
		MeanUs:  hist.Mean() / 1e3,
		P50Us:   float64(hist.P50()) / 1e3,
		P99Us:   float64(hist.P99()) / 1e3,
		P999Us:  float64(hist.P999()) / 1e3,
		P9999Us: float64(hist.P9999()) / 1e3,
	}
}

// SnapshotAt captures the sink's current state stamped with the given
// virtual time, enabling rate derivation via DeltaSince.
func (s *Sink) SnapshotAt(atNs int64) Snapshot {
	snap := s.Snapshot()
	snap.AtNs = atNs
	return snap
}

// Snapshot captures the sink's current state. It allocates; call it at
// export points, not on the I/O path.
func (s *Sink) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if s == nil || !s.enabled {
		return snap
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := s.counters[c]; v != 0 {
			snap.Counters[c.String()] = v
		}
	}
	for h := Hist(0); h < numHists; h++ {
		hist := s.hists[h]
		if hist.Count() == 0 {
			continue
		}
		snap.Histograms[h.String()] = histSnapshotOf(hist)
	}
	snap.Tenants = s.snapshotTenants()
	for _, ev := range s.Events() {
		snap.Trace = append(snap.Trace, EventSnapshot{
			AtNs: ev.AtNs, Kind: ev.Kind.String(), CID: ev.CID,
			Path: ev.Path, Note: ev.Note,
		})
	}
	snap.TraceTotal = s.total
	return snap
}

// MarshalJSON on Sink exports its Snapshot, so a *Sink can be embedded
// directly in larger exported documents.
func (s *Sink) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Snapshot())
}
