package telemetry

// Delta is the interval view between two snapshots of the same sink:
// counter increments, derived per-second rates, and histogram interval
// summaries. Operators (and the tuning controller in internal/tune)
// consume deltas instead of hand-diffing cumulative snapshots.
type Delta struct {
	// IntervalNs is the virtual time between the two snapshots (0 when
	// either snapshot was taken without a timestamp, in which case no
	// rates are derived).
	IntervalNs int64 `json:"interval_ns"`
	// Counters holds the per-counter increments over the interval.
	// A counter that moved backwards (the sink was replaced across a
	// reconnect or target restart) is treated as reset: the delta is
	// its current value, i.e. everything counted since the reset.
	Counters map[string]int64 `json:"counters"`
	// Rates holds per-second rates for every counter delta, derived
	// when IntervalNs is positive.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Histograms holds the interval count and interval mean per
	// distribution that received samples during the interval.
	Histograms map[string]HistDelta `json:"histograms,omitempty"`
	// Tenants holds the per-tenant interval views. A tenant present only
	// in the newer snapshot is reported whole (it appeared during the
	// interval); one present only in the older snapshot is dropped.
	Tenants map[string]TenantDelta `json:"tenants,omitempty"`
	// Reset reports that at least one counter or histogram moved
	// backwards (a reconnect/restart replaced the underlying state);
	// interval-sensitive consumers should discard this delta.
	Reset bool `json:"reset,omitempty"`
}

// HistDelta summarizes one distribution's interval activity.
type HistDelta struct {
	// Count is the number of samples recorded during the interval.
	Count int64 `json:"count"`
	// Mean is the mean of the interval's samples (derived from the
	// cumulative sums of the two snapshots).
	Mean float64 `json:"mean"`
	// Rate is Count per second when the interval is timestamped.
	Rate float64 `json:"rate,omitempty"`
}

// TenantDelta is one tenant's interval activity: the tenant-scoped
// shape of Delta. Reset flags a backwards move inside this tenant's
// view specifically (its connection reconnected and replaced the
// underlying state).
type TenantDelta struct {
	Counters   map[string]int64     `json:"counters"`
	Rates      map[string]float64   `json:"rates,omitempty"`
	Histograms map[string]HistDelta `json:"histograms,omitempty"`
	Reset      bool                 `json:"reset,omitempty"`
}

// diffCounters computes per-counter increments (and rates when the
// interval is timed). A counter that moved backwards resets: the delta
// is its full current value and reset reports true.
func diffCounters(cur, prev map[string]int64, intervalNs int64) (counters map[string]int64, rates map[string]float64, reset bool) {
	counters = map[string]int64{}
	for name, c := range cur {
		inc := c - prev[name]
		if inc < 0 {
			// Counter went backwards: the sink restarted.
			inc = c
			reset = true
		}
		if inc == 0 {
			continue
		}
		counters[name] = inc
		if intervalNs > 0 {
			if rates == nil {
				rates = map[string]float64{}
			}
			rates[name] = float64(inc) * 1e9 / float64(intervalNs)
		}
	}
	return counters, rates, reset
}

// diffHists computes per-histogram interval summaries, reconstructing
// interval means from the cumulative sums of the two snapshots. A count
// that moved backwards resets like a counter.
func diffHists(cur, prev map[string]HistSnapshot, intervalNs int64) (hists map[string]HistDelta, reset bool) {
	for name, c := range cur {
		base, ok := prev[name]
		hd := HistDelta{Count: c.Count - base.Count}
		switch {
		case !ok || hd.Count == c.Count:
			hd.Mean = c.Mean
		case hd.Count < 0:
			// Histogram restarted with the sink.
			hd = HistDelta{Count: c.Count, Mean: c.Mean}
			reset = true
		case hd.Count == 0:
			continue
		default:
			curSum := c.Mean * float64(c.Count)
			baseSum := base.Mean * float64(base.Count)
			hd.Mean = (curSum - baseSum) / float64(hd.Count)
		}
		if hd.Count == 0 {
			continue
		}
		if intervalNs > 0 {
			hd.Rate = float64(hd.Count) * 1e9 / float64(intervalNs)
		}
		if hists == nil {
			hists = map[string]HistDelta{}
		}
		hists[name] = hd
	}
	return hists, reset
}

// DeltaSince computes the interval activity between prev and s, where
// prev is an earlier snapshot of the same sink. Counters or histograms
// that moved backwards are treated as freshly reset (the full current
// value becomes the delta and Reset is flagged). Zero deltas are elided,
// matching Snapshot's own elision of zero counters. Per-tenant views
// diff the same way, tenant by tenant; a tenant-level reset flags both
// that tenant's delta and the top-level Reset.
func (s Snapshot) DeltaSince(prev Snapshot) Delta {
	d := Delta{}
	if s.AtNs > prev.AtNs && prev.AtNs >= 0 && s.AtNs > 0 {
		d.IntervalNs = s.AtNs - prev.AtNs
	}
	var reset bool
	d.Counters, d.Rates, reset = diffCounters(s.Counters, prev.Counters, d.IntervalNs)
	d.Reset = d.Reset || reset
	d.Histograms, reset = diffHists(s.Histograms, prev.Histograms, d.IntervalNs)
	d.Reset = d.Reset || reset
	for name, cur := range s.Tenants {
		td := TenantDelta{}
		base := prev.Tenants[name] // zero value when the tenant is new
		td.Counters, td.Rates, reset = diffCounters(cur.Counters, base.Counters, d.IntervalNs)
		td.Reset = td.Reset || reset
		td.Histograms, reset = diffHists(cur.Histograms, base.Histograms, d.IntervalNs)
		td.Reset = td.Reset || reset
		if len(td.Counters) == 0 && len(td.Histograms) == 0 && !td.Reset {
			continue
		}
		if d.Tenants == nil {
			d.Tenants = map[string]TenantDelta{}
		}
		d.Tenants[name] = td
		d.Reset = d.Reset || td.Reset
	}
	return d
}

// Counter returns the interval increment for the named counter (0 when
// it did not move).
func (d Delta) Counter(name string) int64 { return d.Counters[name] }

// Rate returns the per-second rate for the named counter (0 when the
// counter did not move or the interval was untimed).
func (d Delta) Rate(name string) float64 { return d.Rates[name] }

// Tenant returns the interval view for the named tenant (zero when it
// had no activity).
func (d Delta) Tenant(name string) TenantDelta { return d.Tenants[name] }

// Counter returns the tenant's interval increment for the named counter.
func (td TenantDelta) Counter(name string) int64 { return td.Counters[name] }
