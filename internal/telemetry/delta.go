package telemetry

// Delta is the interval view between two snapshots of the same sink:
// counter increments, derived per-second rates, and histogram interval
// summaries. Operators (and the tuning controller in internal/tune)
// consume deltas instead of hand-diffing cumulative snapshots.
type Delta struct {
	// IntervalNs is the virtual time between the two snapshots (0 when
	// either snapshot was taken without a timestamp, in which case no
	// rates are derived).
	IntervalNs int64 `json:"interval_ns"`
	// Counters holds the per-counter increments over the interval.
	// A counter that moved backwards (the sink was replaced across a
	// reconnect or target restart) is treated as reset: the delta is
	// its current value, i.e. everything counted since the reset.
	Counters map[string]int64 `json:"counters"`
	// Rates holds per-second rates for every counter delta, derived
	// when IntervalNs is positive.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Histograms holds the interval count and interval mean per
	// distribution that received samples during the interval.
	Histograms map[string]HistDelta `json:"histograms,omitempty"`
	// Reset reports that at least one counter or histogram moved
	// backwards (a reconnect/restart replaced the underlying state);
	// interval-sensitive consumers should discard this delta.
	Reset bool `json:"reset,omitempty"`
}

// HistDelta summarizes one distribution's interval activity.
type HistDelta struct {
	// Count is the number of samples recorded during the interval.
	Count int64 `json:"count"`
	// Mean is the mean of the interval's samples (derived from the
	// cumulative sums of the two snapshots).
	Mean float64 `json:"mean"`
	// Rate is Count per second when the interval is timestamped.
	Rate float64 `json:"rate,omitempty"`
}

// DeltaSince computes the interval activity between prev and s, where
// prev is an earlier snapshot of the same sink. Counters or histograms
// that moved backwards are treated as freshly reset (the full current
// value becomes the delta and Reset is flagged). Zero deltas are elided,
// matching Snapshot's own elision of zero counters.
func (s Snapshot) DeltaSince(prev Snapshot) Delta {
	d := Delta{Counters: map[string]int64{}}
	if s.AtNs > prev.AtNs && prev.AtNs >= 0 && s.AtNs > 0 {
		d.IntervalNs = s.AtNs - prev.AtNs
	}
	for name, cur := range s.Counters {
		base := prev.Counters[name]
		inc := cur - base
		if inc < 0 {
			// Counter went backwards: the sink restarted.
			inc = cur
			d.Reset = true
		}
		if inc == 0 {
			continue
		}
		d.Counters[name] = inc
		if d.IntervalNs > 0 {
			if d.Rates == nil {
				d.Rates = map[string]float64{}
			}
			d.Rates[name] = float64(inc) * 1e9 / float64(d.IntervalNs)
		}
	}
	for name, cur := range s.Histograms {
		base, ok := prev.Histograms[name]
		hd := HistDelta{Count: cur.Count - base.Count}
		switch {
		case !ok || hd.Count == cur.Count:
			hd.Mean = cur.Mean
		case hd.Count < 0:
			// Histogram restarted with the sink.
			hd = HistDelta{Count: cur.Count, Mean: cur.Mean}
			d.Reset = true
		case hd.Count == 0:
			continue
		default:
			curSum := cur.Mean * float64(cur.Count)
			baseSum := base.Mean * float64(base.Count)
			hd.Mean = (curSum - baseSum) / float64(hd.Count)
		}
		if hd.Count == 0 {
			continue
		}
		if d.IntervalNs > 0 {
			hd.Rate = float64(hd.Count) * 1e9 / float64(d.IntervalNs)
		}
		if d.Histograms == nil {
			d.Histograms = map[string]HistDelta{}
		}
		d.Histograms[name] = hd
	}
	return d
}

// Counter returns the interval increment for the named counter (0 when
// it did not move).
func (d Delta) Counter(name string) int64 { return d.Counters[name] }

// Rate returns the per-second rate for the named counter (0 when the
// counter did not move or the interval was untimed).
func (d Delta) Rate(name string) float64 { return d.Rates[name] }
