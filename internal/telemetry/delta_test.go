package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestDeltaSinceCountersAndRates(t *testing.T) {
	s := New()
	s.Add(CtrCompletions, 100)
	s.Add(CtrRetries, 2)
	prev := s.SnapshotAt(int64(time.Second))

	s.Add(CtrCompletions, 50)
	s.Add(CtrTimeouts, 3)
	cur := s.SnapshotAt(int64(2 * time.Second))

	d := cur.DeltaSince(prev)
	if d.IntervalNs != int64(time.Second) {
		t.Fatalf("interval = %d, want 1s", d.IntervalNs)
	}
	if got := d.Counter("client.completions"); got != 50 {
		t.Fatalf("completions delta = %d, want 50", got)
	}
	if got := d.Counter("client.timeouts"); got != 3 {
		t.Fatalf("timeouts delta = %d, want 3", got)
	}
	if _, ok := d.Counters["client.retries"]; ok {
		t.Fatalf("unchanged counter must be elided, got %v", d.Counters)
	}
	if got := d.Rate("client.completions"); math.Abs(got-50) > 1e-9 {
		t.Fatalf("completions rate = %v, want 50/s", got)
	}
	if d.Reset {
		t.Fatal("no reset happened")
	}
}

func TestDeltaSinceHistogramIntervalMean(t *testing.T) {
	s := New()
	s.Observe(HistBatchSize, 10)
	s.Observe(HistBatchSize, 20)
	prev := s.SnapshotAt(1e9)

	s.Observe(HistBatchSize, 40)
	s.Observe(HistBatchSize, 60)
	cur := s.SnapshotAt(2e9)

	d := cur.DeltaSince(prev)
	hd, ok := d.Histograms["batch.submit_size"]
	if !ok {
		t.Fatalf("missing histogram delta: %+v", d.Histograms)
	}
	if hd.Count != 2 {
		t.Fatalf("interval count = %d, want 2", hd.Count)
	}
	// Interval samples were 40 and 60: interval mean 50, even though the
	// cumulative mean is 32.5.
	if math.Abs(hd.Mean-50) > 1e-9 {
		t.Fatalf("interval mean = %v, want 50", hd.Mean)
	}
	if math.Abs(hd.Rate-2) > 1e-9 {
		t.Fatalf("interval rate = %v, want 2/s", hd.Rate)
	}
}

func TestDeltaSinceCounterResetOnReconnect(t *testing.T) {
	// A sink replaced across a reconnect/restart yields smaller
	// cumulative values; the delta must be the post-reset activity, not
	// a negative increment.
	old := New()
	old.Add(CtrCompletions, 1000)
	prev := old.SnapshotAt(1e9)

	fresh := New()
	fresh.Add(CtrCompletions, 40)
	fresh.Observe(HistBatchSize, 8)
	cur := fresh.SnapshotAt(2e9)

	d := cur.DeltaSince(prev)
	if got := d.Counter("client.completions"); got != 40 {
		t.Fatalf("reset delta = %d, want 40", got)
	}
	if !d.Reset {
		t.Fatal("reset not flagged")
	}
}

func TestDeltaSinceHistogramReset(t *testing.T) {
	old := New()
	for i := 0; i < 10; i++ {
		old.Observe(HistReapDepth, 100)
	}
	prev := old.SnapshotAt(1e9)

	fresh := New()
	fresh.Observe(HistReapDepth, 4)
	cur := fresh.SnapshotAt(2e9)

	d := cur.DeltaSince(prev)
	hd := d.Histograms["batch.reap_depth"]
	if hd.Count != 1 || math.Abs(hd.Mean-4) > 1e-9 {
		t.Fatalf("reset histogram delta = %+v, want count 1 mean 4", hd)
	}
	if !d.Reset {
		t.Fatal("reset not flagged")
	}
}

func TestDeltaSinceUntimedSnapshotsDeriveNoRates(t *testing.T) {
	s := New()
	s.Inc(CtrCompletions)
	prev := s.Snapshot() // no timestamp
	s.Inc(CtrCompletions)
	cur := s.Snapshot()
	d := cur.DeltaSince(prev)
	if d.IntervalNs != 0 || d.Rates != nil {
		t.Fatalf("untimed delta derived rates: %+v", d)
	}
	if got := d.Counter("client.completions"); got != 1 {
		t.Fatalf("delta = %d, want 1", got)
	}
}

func TestDeltaSinceEmptyPrev(t *testing.T) {
	// First observation interval: prev is the zero Snapshot.
	s := New()
	s.Add(CtrCompletions, 7)
	cur := s.SnapshotAt(5e8)
	d := cur.DeltaSince(Snapshot{})
	if got := d.Counter("client.completions"); got != 7 {
		t.Fatalf("delta = %d, want 7", got)
	}
	if d.Reset {
		t.Fatal("empty prev is not a reset")
	}
	if d.IntervalNs != 5e8 {
		t.Fatalf("interval = %d, want 5e8", d.IntervalNs)
	}
}

// TestDeltaSincePerTenantViews: tenant activity diffs tenant by
// tenant — increments and rates are scoped to each tenant's view, a
// tenant idle over the interval is elided, and one that first appears
// mid-interval is reported whole.
func TestDeltaSincePerTenantViews(t *testing.T) {
	s := New()
	g, p := s.Tenant("greedy"), s.Tenant("polite")
	g.Add(TCtrBytes, 1000)
	g.Inc(TCtrSubmits)
	p.Inc(TCtrSubmits)
	prev := s.SnapshotAt(int64(time.Second))

	g.Add(TCtrBytes, 500)
	g.Inc(TCtrSubmits)
	g.ObserveDuration(THistLatency, 10*time.Microsecond)
	s.Tenant("newcomer").Add(TCtrBytes, 7)
	cur := s.SnapshotAt(int64(3 * time.Second))

	d := cur.DeltaSince(prev)
	gd := d.Tenant("greedy")
	if got := gd.Counter("tenant.bytes"); got != 500 {
		t.Fatalf("greedy bytes delta = %d, want 500", got)
	}
	if got := gd.Rates["tenant.bytes"]; math.Abs(got-250) > 1e-9 {
		t.Fatalf("greedy bytes rate = %v, want 250/s over the 2s interval", got)
	}
	if hd := gd.Histograms["tenant.latency_ns"]; hd.Count != 1 {
		t.Fatalf("greedy latency interval count = %d, want 1", hd.Count)
	}
	if _, ok := d.Tenants["polite"]; ok {
		t.Fatalf("idle tenant must be elided from the delta, got %v", d.Tenants)
	}
	if got := d.Tenant("newcomer").Counter("tenant.bytes"); got != 7 {
		t.Fatalf("new tenant reported %d, want its whole view (7)", got)
	}
	if d.Reset {
		t.Fatal("no reset happened")
	}
}

// TestDeltaSinceTenantCounterReset: a tenant counter that moved
// backwards (its connection reconnected and replaced the underlying
// sink state) flags that tenant's delta AND the top-level Reset, so
// interval-sensitive consumers discard the whole delta, and reports
// the full post-reset value as the increment.
func TestDeltaSinceTenantCounterReset(t *testing.T) {
	s := New()
	s.Tenant("greedy").Add(TCtrBytes, 1000)
	s.Tenant("polite").Add(TCtrBytes, 50)
	prev := s.SnapshotAt(int64(time.Second))

	// Model the restart: a fresh sink whose greedy view restarts from
	// zero while polite keeps rolling forward.
	s2 := New()
	s2.Tenant("greedy").Add(TCtrBytes, 200)
	s2.Tenant("polite").Add(TCtrBytes, 80)
	cur := s2.SnapshotAt(int64(2 * time.Second))

	d := cur.DeltaSince(prev)
	gd := d.Tenant("greedy")
	if !gd.Reset {
		t.Fatal("greedy moved backwards; its tenant delta must flag Reset")
	}
	if got := gd.Counter("tenant.bytes"); got != 200 {
		t.Fatalf("post-reset delta = %d, want the full current value 200", got)
	}
	if d.Tenant("polite").Reset {
		t.Fatal("polite moved forward; it must not flag Reset")
	}
	if got := d.Tenant("polite").Counter("tenant.bytes"); got != 30 {
		t.Fatalf("polite delta = %d, want 30", got)
	}
	if !d.Reset {
		t.Fatal("a tenant-level reset must flag the top-level Reset for discard")
	}
}
