package telemetry

import (
	"sort"
	"time"

	"nvmeoaf/internal/stats"
)

// TenantCounter identifies one per-tenant counter. Tenant views are the
// multi-application face of the sink: the same fixed-enum, allocation-
// light discipline as the fabric-wide counters, but one array per tenant
// so the QoS layer and the reports can attribute traffic to whoever
// caused it.
type TenantCounter int

const (
	TCtrSubmits     TenantCounter = iota // I/O commands submitted
	TCtrCompletions                      // I/O commands completed
	TCtrBytes                            // payload bytes completed
	TCtrTokenWaits                       // host-side submissions parked awaiting tokens
	TCtrThrottled                        // target-side typed throttle rejections
	TCtrSheds                            // buffer-wait sheds charged to this tenant
	TCtrBorrowed                         // token bytes borrowed from the lending ledger
	TCtrLent                             // token bytes lent to the lending ledger

	numTenantCounters
)

var tenantCounterNames = [numTenantCounters]string{
	TCtrSubmits:     "tenant.submits",
	TCtrCompletions: "tenant.completions",
	TCtrBytes:       "tenant.bytes",
	TCtrTokenWaits:  "tenant.token_waits",
	TCtrThrottled:   "tenant.throttled",
	TCtrSheds:       "tenant.sheds",
	TCtrBorrowed:    "tenant.tokens_borrowed",
	TCtrLent:        "tenant.tokens_lent",
}

// String returns the exported metric name.
func (c TenantCounter) String() string {
	if c < 0 || c >= numTenantCounters {
		return "unknown"
	}
	return tenantCounterNames[c]
}

// TenantHist identifies one per-tenant distribution.
type TenantHist int

const (
	THistLatency   TenantHist = iota // completion latency, ns
	THistTokenWait                   // time parked awaiting tokens, ns

	numTenantHists
)

var tenantHistNames = [numTenantHists]string{
	THistLatency:   "tenant.latency_ns",
	THistTokenWait: "tenant.token_wait_ns",
}

// String returns the exported histogram name.
func (h TenantHist) String() string {
	if h < 0 || h >= numTenantHists {
		return "unknown"
	}
	return tenantHistNames[h]
}

// TenantView is one tenant's slice of the sink. A nil view (disabled
// sink, or no tenant configured) swallows every record in one branch, so
// call sites hold a view pointer and record unconditionally.
type TenantView struct {
	name     string
	counters [numTenantCounters]int64
	hists    [numTenantHists]*stats.Histogram
}

// Name returns the tenant this view belongs to.
func (v *TenantView) Name() string {
	if v == nil {
		return ""
	}
	return v.name
}

// Inc adds 1 to counter c.
func (v *TenantView) Inc(c TenantCounter) {
	if v == nil {
		return
	}
	v.counters[c]++
}

// Add adds n to counter c.
func (v *TenantView) Add(c TenantCounter, n int64) {
	if v == nil {
		return
	}
	v.counters[c] += n
}

// Counter returns the current value of c.
func (v *TenantView) Counter(c TenantCounter) int64 {
	if v == nil {
		return 0
	}
	return v.counters[c]
}

// Observe records one sample into distribution h.
func (v *TenantView) Observe(h TenantHist, x int64) {
	if v == nil {
		return
	}
	v.hists[h].Record(x)
}

// ObserveDuration records a duration sample (in nanoseconds) into h.
func (v *TenantView) ObserveDuration(h TenantHist, d time.Duration) { v.Observe(h, int64(d)) }

// Tenant returns the view for the named tenant, creating it on first
// use. A disabled sink or an empty name returns nil (which records
// nothing), so the hot path never branches on configuration.
func (s *Sink) Tenant(name string) *TenantView {
	if s == nil || !s.enabled || name == "" {
		return nil
	}
	if v, ok := s.tenants[name]; ok {
		return v
	}
	v := &TenantView{name: name}
	for i := range v.hists {
		v.hists[i] = stats.NewHistogram()
	}
	if s.tenants == nil {
		s.tenants = make(map[string]*TenantView)
	}
	s.tenants[name] = v
	return v
}

// TenantNames returns the tenants with views, sorted.
func (s *Sink) TenantNames() []string {
	if s == nil || !s.enabled || len(s.tenants) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TenantSnapshot is the exported view of one tenant: the same shape as
// the fabric-wide snapshot body so exporters render both uniformly.
type TenantSnapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// snapshotTenants captures every tenant view (nil when there are none).
func (s *Sink) snapshotTenants() map[string]TenantSnapshot {
	if s == nil || !s.enabled || len(s.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantSnapshot, len(s.tenants))
	for name, v := range s.tenants {
		ts := TenantSnapshot{Counters: map[string]int64{}}
		for c := TenantCounter(0); c < numTenantCounters; c++ {
			if x := v.counters[c]; x != 0 {
				ts.Counters[c.String()] = x
			}
		}
		for h := TenantHist(0); h < numTenantHists; h++ {
			hist := v.hists[h]
			if hist.Count() == 0 {
				continue
			}
			if ts.Histograms == nil {
				ts.Histograms = map[string]HistSnapshot{}
			}
			ts.Histograms[h.String()] = histSnapshotOf(hist)
		}
		out[name] = ts
	}
	return out
}

// mergeTenants folds other's tenant views into s (same-name views merge;
// new names copy).
func (s *Sink) mergeTenants(other *Sink) {
	for name, ov := range other.tenants {
		v := s.Tenant(name)
		if v == nil {
			return
		}
		for i := range v.counters {
			v.counters[i] += ov.counters[i]
		}
		for i := range v.hists {
			v.hists[i].Merge(ov.hists[i])
		}
	}
}
