// Package telemetry is the fabric-wide observability layer: named
// counters, stats.Histogram-backed distributions, and a fixed-capacity
// ring of path-decision trace events.
//
// The adaptive fabric constantly makes invisible decisions — SHM vs. TCP
// path selection, chunk size, busy-poll budget — and the recovery
// machinery (retries, failover, shedding) changes behavior under faults.
// A Sink collects all of it in one place so benchmarks, the chaos suite,
// and the public oaf API can export a single JSON snapshot.
//
// Design constraints:
//
//   - Allocation-light on the hot path: counters are a fixed array
//     indexed by Counter constants, histograms are pre-allocated at
//     Sink construction, and trace events are fixed-size structs
//     written into a pre-allocated ring (no fmt, no interface boxing).
//   - Near-zero cost when disabled: every record method checks one
//     bool and returns. The package-level Disabled sink is permanently
//     off, and a nil *Sink behaves like Disabled.
//   - The simulation engine is cooperative (exactly one process runs
//     at a time), so plain int64 increments are race-safe under
//     -race; no atomics needed on the hot path.
package telemetry

import (
	"time"

	"nvmeoaf/internal/stats"
)

// Counter identifies one fabric-wide counter. The constants below are
// the complete metric namespace; String() yields the exported name.
type Counter int

const (
	// Client I/O path.
	CtrSubmitsSHM  Counter = iota // I/Os submitted on the shared-memory path
	CtrSubmitsTCP                 // I/Os submitted on the TCP path
	CtrCompletions                // commands completed (incl. admin)
	CtrRetries                    // command retries after timeout/transient error
	CtrTimeouts                   // command deadline expirations
	CtrFailovers                  // mid-stream SHM->TCP path failovers
	CtrReconnects                 // successful controller reconnects
	CtrLateMsgs                   // messages for dead/stale commands (client)

	// Server / target side.
	CtrSrvSHMConns   // connections negotiated onto the SHM data path
	CtrSrvTCPConns   // connections admitted on the TCP-only data path
	CtrSrvShed       // commands shed under buffer exhaustion
	CtrSrvBufWaits   // commands that waited for a data buffer
	CtrSrvKATOExpiry // keep-alive watchdog teardowns
	CtrSrvStaleMsgs  // messages for torn-down commands (server)

	// Shared-memory region.
	CtrSHMClaims      // slots claimed
	CtrSHMReleases    // slots released
	CtrSHMRevocations // region revocations
	CtrSHMFutexStalls // claimers that slept futex-style for a slot

	// TCP wire.
	CtrPDUsTx // PDUs transmitted
	CtrPDUsRx // PDUs received

	// Fabric provisioning.
	CtrProvisionOK     // SHM regions provisioned
	CtrProvisionFailed // SHM provisioning failures (degraded to TCP)

	// Target-side block cache.
	CtrCacheHit          // reads served from resident lines
	CtrCacheMiss         // reads that went to the backing device
	CtrCacheFill         // lines installed
	CtrCacheEvict        // valid clean lines replaced
	CtrCacheBypass       // reads that bypassed the cache (large/sequential)
	CtrCacheWriteBack    // writes absorbed as dirty lines
	CtrCacheWriteThrough // writes forwarded to the backing device
	CtrCacheThrottled    // write-backs degraded under the dirty bound
	CtrCacheDirtyBytes   // current unflushed bytes (up/down via Add)
	CtrCacheDirtyLost    // dirty lines lost to crash or flush failure

	// Replicated namespace layer (internal/cluster).
	CtrReplWrites        // replicated writes acknowledged at write quorum
	CtrReplReads         // replicated reads completed
	CtrReplReplicaWrites // per-replica write submissions (fan-out)
	CtrReplQuorumFails   // writes that could not reach the write quorum
	CtrReplReadFailovers // reads re-driven on another replica after an error
	CtrReplDegraded      // I/Os issued with fewer than R live replicas
	CtrReplicaDown       // replicas declared dead
	CtrReplicaUp         // replicas (re)admitted to service
	CtrRebuildRounds     // re-replication rounds completed (stale set drained)
	CtrRebuildExtents    // extents copied to a recovering replica
	CtrRebuildBytes      // bytes copied by re-replication

	// Ring fast path (internal/ring).
	CtrRingSubmits   // SQ entries submitted through rings
	CtrRingReaps     // CQ entries reaped through rings
	CtrRingSQFull    // pushes refused because the SQ was full (stalls)
	CtrRingBufStalls // buffer claims refused because the arena was empty

	// RDMA fast path (internal/rdma): memory-registration cache and
	// RDMAbox-style posting optimizations.
	CtrRDMARegHits        // posts whose buffer region was already registered
	CtrRDMARegMisses      // posts that stalled on an inline region registration
	CtrRDMARegEvictions   // registered regions evicted under cache pressure
	CtrRDMAPreregBytes    // bytes pre-registered at connect (pool + ring arena)
	CtrRDMAMergedOps      // work requests folded away by adjacent-request merging
	CtrRDMADoorbellsSaved // doorbell rings saved by train coalescing

	numCounters
)

var counterNames = [numCounters]string{
	CtrSubmitsSHM:        "client.submits.shm",
	CtrSubmitsTCP:        "client.submits.tcp",
	CtrCompletions:       "client.completions",
	CtrRetries:           "client.retries",
	CtrTimeouts:          "client.timeouts",
	CtrFailovers:         "client.failovers",
	CtrReconnects:        "client.reconnects",
	CtrLateMsgs:          "client.late_msgs",
	CtrSrvSHMConns:       "server.conns.shm",
	CtrSrvTCPConns:       "server.conns.tcp",
	CtrSrvShed:           "server.shed",
	CtrSrvBufWaits:       "server.buffer_waits",
	CtrSrvKATOExpiry:     "server.kato_expirations",
	CtrSrvStaleMsgs:      "server.stale_msgs",
	CtrSHMClaims:         "shm.claims",
	CtrSHMReleases:       "shm.releases",
	CtrSHMRevocations:    "shm.revocations",
	CtrSHMFutexStalls:    "shm.futex_stalls",
	CtrPDUsTx:            "tcp.pdus.tx",
	CtrPDUsRx:            "tcp.pdus.rx",
	CtrProvisionOK:       "fabric.provision.ok",
	CtrProvisionFailed:   "fabric.provision.failed",
	CtrCacheHit:          "cache.hit",
	CtrCacheMiss:         "cache.miss",
	CtrCacheFill:         "cache.fill",
	CtrCacheEvict:        "cache.evict",
	CtrCacheBypass:       "cache.bypass",
	CtrCacheWriteBack:    "cache.writeback",
	CtrCacheWriteThrough: "cache.writethrough",
	CtrCacheThrottled:    "cache.wb_throttled",
	CtrCacheDirtyBytes:   "cache.dirty_bytes",
	CtrCacheDirtyLost:    "cache.dirty_lost",
	CtrReplWrites:        "cluster.writes",
	CtrReplReads:         "cluster.reads",
	CtrReplReplicaWrites: "cluster.replica_writes",
	CtrReplQuorumFails:   "cluster.quorum_failures",
	CtrReplReadFailovers: "cluster.read_failovers",
	CtrReplDegraded:      "cluster.degraded_ios",
	CtrReplicaDown:       "cluster.replica_down",
	CtrReplicaUp:         "cluster.replica_up",
	CtrRebuildRounds:     "cluster.rebuild_rounds",
	CtrRebuildExtents:    "cluster.rebuild_extents",
	CtrRebuildBytes:      "cluster.rebuild_bytes",
	CtrRingSubmits:       "ring.submits",
	CtrRingReaps:         "ring.reaps",
	CtrRingSQFull:        "ring.sq_full_stalls",
	CtrRingBufStalls:     "ring.buf_stalls",
	CtrRDMARegHits:       "rdma.reg_hits",
	CtrRDMARegMisses:     "rdma.reg_misses",
	CtrRDMARegEvictions:  "rdma.reg_evictions",
	CtrRDMAPreregBytes:   "rdma.prereg_bytes",
	CtrRDMAMergedOps:     "rdma.merged_ops",
	CtrRDMADoorbellsSaved: "rdma.doorbells_saved",
}

// String returns the exported metric name.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Hist identifies one pre-allocated distribution.
type Hist int

const (
	HistReadLatency     Hist = iota // read completion latency, ns
	HistWriteLatency                // write completion latency, ns
	HistIOSize                      // submitted I/O size, bytes
	HistClaimWait                   // SHM slot claim wait, ns
	HistBufWait                     // server data-buffer wait, ns
	HistBatchSize                   // commands coalesced per doorbell/capsule train
	HistReapDepth                   // completions reaped per received message
	HistCacheFlushLat               // cache write-back flush latency, ns
	HistRebuildCopy                 // re-replication per-extent copy time, ns
	HistRingSubmitDepth             // SQ entries flushed per ring doorbell
	HistRingReapDepth               // CQ entries handed back per reap call

	numHists
)

var histNames = [numHists]string{
	HistReadLatency:     "latency.read_ns",
	HistWriteLatency:    "latency.write_ns",
	HistIOSize:          "io.size_bytes",
	HistClaimWait:       "shm.claim_wait_ns",
	HistBufWait:         "server.buffer_wait_ns",
	HistBatchSize:       "batch.submit_size",
	HistReapDepth:       "batch.reap_depth",
	HistCacheFlushLat:   "cache.flush_latency_ns",
	HistRebuildCopy:     "cluster.rebuild_copy_ns",
	HistRingSubmitDepth: "ring.submit_depth",
	HistRingReapDepth:   "ring.reap_depth",
}

// String returns the exported histogram name.
func (h Hist) String() string {
	if h < 0 || h >= numHists {
		return "unknown"
	}
	return histNames[h]
}

// EventKind classifies one trace-ring entry.
type EventKind uint8

const (
	EvPathSelected    EventKind = iota // connect negotiated a data path
	EvProvisionFailed                  // SHM provisioning failed; TCP fallback
	EvFailover                         // mid-stream SHM->TCP failover
	EvRetry                            // command retried
	EvTimeout                          // command deadline expired
	EvReconnect                        // controller reconnected
	EvShed                             // server shed a command
	EvRevoked                          // SHM region revoked
	EvKATOExpired                      // keep-alive watchdog fired
	EvReplicaDown                      // cluster declared a replica dead
	EvReplicaUp                        // cluster (re)admitted a replica
	EvRebuildStart                     // re-replication began for a replica
	EvRebuildDone                      // stale set drained; cluster whole
	EvTenantThrottle                   // a tenant's command was rejected over budget
)

var eventKindNames = [...]string{
	EvPathSelected:    "path_selected",
	EvProvisionFailed: "provision_failed",
	EvFailover:        "failover",
	EvRetry:           "retry",
	EvTimeout:         "timeout",
	EvReconnect:       "reconnect",
	EvShed:            "shed",
	EvRevoked:         "revoked",
	EvKATOExpired:     "kato_expired",
	EvReplicaDown:     "replica_down",
	EvReplicaUp:       "replica_up",
	EvRebuildStart:    "rebuild_start",
	EvRebuildDone:     "rebuild_done",
	EvTenantThrottle:  "tenant_throttle",
}

// String returns the exported event name.
func (k EventKind) String() string {
	if int(k) >= len(eventKindNames) {
		return "unknown"
	}
	return eventKindNames[k]
}

// Event is one path-decision trace entry. All fields are fixed-size or
// static strings chosen by the call site; recording never formats.
type Event struct {
	AtNs int64     // virtual time, nanoseconds
	Kind EventKind // what happened
	CID  uint16    // command ID, when command-scoped
	Path string    // "shm", "tcp", or "" when not path-scoped
	Note string    // static detail chosen by the call site (e.g. design name)
}

// DefaultTraceDepth is the trace-ring capacity used by New.
const DefaultTraceDepth = 256

// Sink collects counters, distributions, and trace events. The zero
// value is a permanently disabled sink (as is a nil pointer); use New
// for an enabled one.
type Sink struct {
	enabled  bool
	counters [numCounters]int64
	hists    [numHists]*stats.Histogram

	// tenants holds the lazily created per-tenant views (see tenant.go);
	// nil until the first tenant is named.
	tenants map[string]*TenantView

	ring  []Event
	next  int    // ring write cursor
	total uint64 // events ever traced (>= len(ring) once wrapped)
}

// Disabled is a shared, permanently disabled sink. Recording into it is
// a single branch; Snapshot on it returns an empty snapshot.
var Disabled = &Sink{}

// New returns an enabled sink with DefaultTraceDepth trace slots.
func New() *Sink { return NewWithTraceDepth(DefaultTraceDepth) }

// NewWithTraceDepth returns an enabled sink whose trace ring holds the
// last depth events (depth <= 0 disables tracing but keeps metrics).
func NewWithTraceDepth(depth int) *Sink {
	s := &Sink{enabled: true}
	for i := range s.hists {
		s.hists[i] = stats.NewHistogram()
	}
	if depth > 0 {
		s.ring = make([]Event, depth)
	}
	return s
}

// Enabled reports whether the sink records anything.
func (s *Sink) Enabled() bool { return s != nil && s.enabled }

// Inc adds 1 to counter c.
func (s *Sink) Inc(c Counter) {
	if s == nil || !s.enabled {
		return
	}
	s.counters[c]++
}

// Add adds n to counter c.
func (s *Sink) Add(c Counter, n int64) {
	if s == nil || !s.enabled {
		return
	}
	s.counters[c] += n
}

// Counter returns the current value of c.
func (s *Sink) Counter(c Counter) int64 {
	if s == nil || !s.enabled {
		return 0
	}
	return s.counters[c]
}

// Observe records one sample into distribution h.
func (s *Sink) Observe(h Hist, v int64) {
	if s == nil || !s.enabled {
		return
	}
	s.hists[h].Record(v)
}

// ObserveDuration records a duration sample (in nanoseconds) into h.
func (s *Sink) ObserveDuration(h Hist, d time.Duration) { s.Observe(h, int64(d)) }

// Histogram exposes the underlying histogram for h, or nil when the
// sink is disabled. Callers must treat it as read-only.
func (s *Sink) Histogram(h Hist) *stats.Histogram {
	if s == nil || !s.enabled {
		return nil
	}
	return s.hists[h]
}

// Trace appends one event to the ring, overwriting the oldest entry
// once full. atNs is the virtual time in nanoseconds.
func (s *Sink) Trace(atNs int64, kind EventKind, cid uint16, path, note string) {
	if s == nil || !s.enabled || len(s.ring) == 0 {
		return
	}
	s.ring[s.next] = Event{AtNs: atNs, Kind: kind, CID: cid, Path: path, Note: note}
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
	}
	s.total++
}

// TraceCount returns the number of events ever traced (the ring keeps
// only the most recent len(ring) of them).
func (s *Sink) TraceCount() uint64 {
	if s == nil || !s.enabled {
		return 0
	}
	return s.total
}

// Events returns the retained trace events, oldest first. The returned
// slice is freshly allocated (snapshot-path only; never hot).
func (s *Sink) Events() []Event {
	if s == nil || !s.enabled || s.total == 0 {
		return nil
	}
	n := int(s.total)
	if n > len(s.ring) {
		n = len(s.ring)
	}
	out := make([]Event, 0, n)
	start := s.next - n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// Merge folds the counters and histograms of other into s. Trace rings
// are not merged (traces stay per-sink; Snapshot aggregation interleaves
// them at a higher level if needed). Merging a disabled or nil sink is
// a no-op.
func (s *Sink) Merge(other *Sink) {
	if s == nil || !s.enabled || other == nil || !other.enabled {
		return
	}
	for i := range s.counters {
		s.counters[i] += other.counters[i]
	}
	for i := range s.hists {
		s.hists[i].Merge(other.hists[i])
	}
	s.mergeTenants(other)
}
