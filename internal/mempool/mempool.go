// Package mempool implements DPDK-style fixed-element buffer pools: one
// contiguous arena carved into equal elements with O(1) get/put, double-
// free detection, and exhaustion accounting.
//
// The NVMe-oF target allocates its data buffers from such pools (the
// paper's Buffer Manager places buffers in the DPDK pool on the TCP path,
// §4.1); pool sizing at chunk granularity is the memory-utilization axis
// of the chunk-size experiment (Fig 9).
package mempool

import "fmt"

// Pool is a fixed-size-element allocator.
type Pool struct {
	name     string
	elemSize int
	arena    []byte
	free     []int32
	inUse    []bool

	// Gets counts successful allocations; Exhausted counts failed ones.
	Gets, Puts, Exhausted int64
	peakInUse             int

	poison bool
}

// PoisonByte fills freed elements when poison-on-free is enabled. The
// value (0xDB, "dead buffer") makes stale reads of returned elements
// glaringly wrong instead of silently returning the previous payload.
const PoisonByte = 0xDB

// Buf is one element borrowed from a pool. B is the element's backing
// slice; it must not be retained after Free.
type Buf struct {
	B    []byte
	pool *Pool
	idx  int32
}

// New creates a pool of count elements of elemSize bytes each.
func New(name string, elemSize, count int) *Pool {
	if elemSize <= 0 || count <= 0 {
		panic(fmt.Sprintf("mempool %s: invalid geometry %dx%d", name, count, elemSize))
	}
	p := &Pool{
		name:     name,
		elemSize: elemSize,
		arena:    make([]byte, elemSize*count),
		free:     make([]int32, 0, count),
		inUse:    make([]bool, count),
	}
	for i := count - 1; i >= 0; i-- {
		p.free = append(p.free, int32(i))
	}
	return p
}

// SetPoison enables or disables poison-on-free: freed elements are
// filled with PoisonByte so any party still reading (or about to reuse
// without rewriting) a returned element sees poison, not stale payload.
// Tests run transports with poison on to flush use-after-free bugs.
func (p *Pool) SetPoison(on bool) { p.poison = on }

// Poisoned reports whether poison-on-free is enabled.
func (p *Pool) Poisoned() bool { return p.poison }

// Name returns the pool name.
func (p *Pool) Name() string { return p.name }

// ElemSize returns the element size in bytes.
func (p *Pool) ElemSize() int { return p.elemSize }

// Cap returns the total number of elements.
func (p *Pool) Cap() int { return len(p.inUse) }

// Available returns the number of free elements.
func (p *Pool) Available() int { return len(p.free) }

// InUse returns the number of borrowed elements.
func (p *Pool) InUse() int { return p.Cap() - p.Available() }

// PeakInUse returns the high-water mark of borrowed elements.
func (p *Pool) PeakInUse() int { return p.peakInUse }

// FootprintBytes returns the arena size: the memory cost of this pool,
// reported by the chunk-size experiment.
func (p *Pool) FootprintBytes() int { return len(p.arena) }

// Get borrows an element; ok is false when the pool is exhausted.
func (p *Pool) Get() (*Buf, bool) {
	if len(p.free) == 0 {
		p.Exhausted++
		return nil, false
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[idx] = true
	p.Gets++
	if n := p.InUse(); n > p.peakInUse {
		p.peakInUse = n
	}
	start := int(idx) * p.elemSize
	return &Buf{B: p.arena[start : start+p.elemSize : start+p.elemSize], pool: p, idx: idx}, true
}

// Free returns the element to its pool. Freeing twice panics: that is a
// use-after-free bug in the transport.
func (b *Buf) Free() {
	p := b.pool
	if p == nil {
		panic("mempool: Free of unpooled Buf")
	}
	if !p.inUse[b.idx] {
		panic(fmt.Sprintf("mempool %s: double free of element %d", p.name, b.idx))
	}
	if p.poison {
		start := int(b.idx) * p.elemSize
		elem := p.arena[start : start+p.elemSize]
		for i := range elem {
			elem[i] = PoisonByte
		}
	}
	p.inUse[b.idx] = false
	p.free = append(p.free, b.idx)
	p.Puts++
	b.pool = nil
}

// Scatter copies src into the buffers at absolute payload offset off,
// treating them as one contiguous payload split into equal elements.
// Transports use it to land received bytes in pool elements (the DPDK
// receive path) rather than private heap buffers.
func Scatter(bufs []*Buf, off int, src []byte) {
	elem := len(bufs[0].B)
	for len(src) > 0 {
		b := bufs[off/elem].B
		o := off % elem
		n := len(b) - o
		if n > len(src) {
			n = len(src)
		}
		copy(b[o:], src[:n])
		off += n
		src = src[n:]
	}
}

// Span returns the contiguous element slice covering [off, off+n), or
// nil when the range crosses an element boundary (callers then bounce
// through a scratch buffer and Scatter).
func Span(bufs []*Buf, off, n int) []byte {
	elem := len(bufs[0].B)
	if off/elem != (off+n-1)/elem {
		return nil
	}
	o := off % elem
	return bufs[off/elem].B[o : o+n]
}

// Gather materializes size bytes of scattered payload into one
// contiguous buffer. Reading from the pool elements here — not from a
// private shadow copy — is what lets poison-on-free catch a transport
// that freed them too early.
func Gather(bufs []*Buf, size int) []byte {
	elem := len(bufs[0].B)
	out := make([]byte, size)
	for off := 0; off < size; {
		b := bufs[off/elem].B
		o := off % elem
		n := len(b) - o
		if n > size-off {
			n = size - off
		}
		copy(out[off:], b[o:o+n])
		off += n
	}
	return out
}

// Stats is the exported view of a pool's accounting, consumed by the
// telemetry snapshots.
type Stats struct {
	Name           string `json:"name"`
	ElemSize       int    `json:"elem_size"`
	Cap            int    `json:"cap"`
	InUse          int    `json:"in_use"`
	PeakInUse      int    `json:"peak_in_use"`
	Gets           int64  `json:"gets"`
	Puts           int64  `json:"puts"`
	Exhausted      int64  `json:"exhausted"`
	FootprintBytes int    `json:"footprint_bytes"`
}

// Stats captures the pool's current accounting.
func (p *Pool) Stats() Stats {
	return Stats{
		Name:           p.name,
		ElemSize:       p.elemSize,
		Cap:            p.Cap(),
		InUse:          p.InUse(),
		PeakInUse:      p.peakInUse,
		Gets:           p.Gets,
		Puts:           p.Puts,
		Exhausted:      p.Exhausted,
		FootprintBytes: p.FootprintBytes(),
	}
}
