package mempool

import (
	"testing"
	"testing/quick"
)

func TestGetPutCycle(t *testing.T) {
	p := New("test", 1024, 4)
	if p.Cap() != 4 || p.Available() != 4 || p.InUse() != 0 {
		t.Fatal("fresh pool state")
	}
	bufs := make([]*Buf, 0, 4)
	for i := 0; i < 4; i++ {
		b, ok := p.Get()
		if !ok {
			t.Fatal("unexpected exhaustion")
		}
		if len(b.B) != 1024 {
			t.Fatalf("element size %d", len(b.B))
		}
		bufs = append(bufs, b)
	}
	if _, ok := p.Get(); ok {
		t.Fatal("exhausted pool returned element")
	}
	if p.Exhausted != 1 {
		t.Fatalf("exhausted counter %d", p.Exhausted)
	}
	for _, b := range bufs {
		b.Free()
	}
	if p.Available() != 4 || p.Puts != 4 || p.Gets != 4 {
		t.Fatal("counters after drain")
	}
	if p.PeakInUse() != 4 {
		t.Fatalf("peak %d", p.PeakInUse())
	}
}

func TestElementsAreDisjoint(t *testing.T) {
	p := New("disjoint", 64, 8)
	var bufs []*Buf
	for i := 0; i < 8; i++ {
		b, _ := p.Get()
		for j := range b.B {
			b.B[j] = byte(i)
		}
		bufs = append(bufs, b)
	}
	for i, b := range bufs {
		for _, v := range b.B {
			if v != byte(i) {
				t.Fatalf("element %d corrupted: %d", i, v)
			}
		}
	}
}

func TestElementCapacityClamped(t *testing.T) {
	p := New("clamp", 64, 2)
	b, _ := p.Get()
	if cap(b.B) != 64 {
		t.Fatalf("cap %d leaks into neighbor element", cap(b.B))
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := New("dbl", 8, 1)
	b, _ := p.Get()
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free()
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry did not panic")
		}
	}()
	New("bad", 0, 10)
}

func TestFootprint(t *testing.T) {
	p := New("fp", 512<<10, 128)
	if p.FootprintBytes() != 512<<10*128 {
		t.Fatalf("footprint %d", p.FootprintBytes())
	}
	if p.ElemSize() != 512<<10 || p.Name() != "fp" {
		t.Fatal("accessors")
	}
}

func TestPoolInvariantProperty(t *testing.T) {
	// Property: under any get/free interleaving, Available+InUse == Cap
	// and no element is handed out twice concurrently.
	f := func(ops []bool) bool {
		p := New("prop", 16, 8)
		live := map[int32]*Buf{}
		for _, get := range ops {
			if get {
				b, ok := p.Get()
				if !ok {
					if len(live) != 8 {
						return false
					}
					continue
				}
				if _, dup := live[b.idx]; dup {
					return false
				}
				live[b.idx] = b
			} else {
				for idx, b := range live {
					b.Free()
					delete(live, idx)
					break
				}
			}
			if p.Available()+p.InUse() != p.Cap() || p.InUse() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
