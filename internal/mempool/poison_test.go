package mempool

import "testing"

func TestPoisonOnFree(t *testing.T) {
	p := New("t", 64, 2)
	p.SetPoison(true)
	if !p.Poisoned() {
		t.Fatal("poison not enabled")
	}
	b, ok := p.Get()
	if !ok {
		t.Fatal("get failed")
	}
	for i := range b.B {
		b.B[i] = 0xAA
	}
	retained := b.B // the bug pattern: holding the slice past Free
	b.Free()
	for i, v := range retained {
		if v != PoisonByte {
			t.Fatalf("byte %d = %#x after free, want %#x", i, v, PoisonByte)
		}
	}
}

func TestNoPoisonByDefault(t *testing.T) {
	p := New("t", 8, 1)
	b, _ := p.Get()
	b.B[0] = 0x55
	retained := b.B
	b.Free()
	if retained[0] != 0x55 {
		t.Fatal("default pool must not poison (perf mode)")
	}
}

func TestPoisonedElementReusableAfterGet(t *testing.T) {
	p := New("t", 16, 1)
	p.SetPoison(true)
	b, _ := p.Get()
	b.B[3] = 1
	b.Free()
	b2, ok := p.Get()
	if !ok {
		t.Fatal("get after free failed")
	}
	// A fresh borrower sees poison, never the previous tenant's payload.
	if b2.B[3] != PoisonByte {
		t.Fatalf("reused element byte = %#x, want poison", b2.B[3])
	}
	b2.Free()
}

func TestStats(t *testing.T) {
	p := New("stats-pool", 32, 4)
	a, _ := p.Get()
	b, _ := p.Get()
	b.Free()
	s := p.Stats()
	if s.Name != "stats-pool" || s.ElemSize != 32 || s.Cap != 4 {
		t.Fatalf("identity fields wrong: %+v", s)
	}
	if s.Gets != 2 || s.Puts != 1 || s.InUse != 1 || s.PeakInUse != 2 {
		t.Fatalf("accounting wrong: %+v", s)
	}
	if s.FootprintBytes != 32*4 {
		t.Fatalf("footprint = %d", s.FootprintBytes)
	}
	a.Free()
}
