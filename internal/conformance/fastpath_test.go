// RDMA fast-path conformance: the MR registration cache, adjacent-
// request merging, and dynamic doorbell coalescing are rdma-wire
// features. These tests prove (a) requesting them is wire-identical
// inert on the core and tcp bindings, (b) I/O integrity holds over all
// three bindings with the fast path requested, and (c) the rdma merge
// path reassembles payloads byte-exact and completes members in
// per-CID submission order.
package conformance

import (
	"bytes"
	"sync"
	"testing"

	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// runBatchWorkload drives a fixed contiguous batch write + batch read
// sequence and returns the read-back buffers.
func runBatchWorkload(t *testing.T, r *rig, o clientOpts) [][]byte {
	t.Helper()
	const n, bs = 8, 4096
	reads := make([][]byte, n)
	r.e.Go("app", func(p *sim.Proc) {
		c, _ := r.connect(p, o)
		writes := make([]*transport.IO, n)
		for i := range writes {
			data := make([]byte, bs)
			for j := range data {
				data[j] = byte((i*bs + j) % 249)
			}
			writes[i] = &transport.IO{Write: true, Offset: int64(i) * bs, Size: bs, Data: data}
		}
		for i, fut := range c.SubmitBatch(p, writes) {
			if res := fut.Wait(p); res.Err() != nil {
				t.Fatalf("write %d: %v", i, res.Err())
			}
		}
		ios := make([]*transport.IO, n)
		for i := range ios {
			reads[i] = make([]byte, bs)
			ios[i] = &transport.IO{Offset: int64(i) * bs, Size: bs, Data: reads[i]}
		}
		for i, fut := range c.SubmitBatch(p, ios) {
			if res := fut.Wait(p); res.Err() != nil {
				t.Fatalf("read %d: %v", i, res.Err())
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	return reads
}

// TestConformanceFastPathIntegrity: the same batched workload, with the
// fast path requested, round-trips byte-exact on every binding.
func TestConformanceFastPathIntegrity(t *testing.T) {
	forEach(t, func(t *testing.T, b binding) {
		r := b.build(t, 7, srvOpts{retain: true})
		reads := runBatchWorkload(t, r, clientOpts{queueDepth: 16, batchSize: 8, fastPath: true})
		for i, got := range reads {
			for j, v := range got {
				if v != byte((i*4096+j)%249) {
					t.Fatalf("read %d byte %d = %d, corrupt after fast-path batch", i, j, v)
				}
			}
		}
	})
}

// TestConformanceFastPathInertForNonRDMA: requesting the fast path on
// the core and tcp bindings changes nothing on the wire — identical
// message and byte counts in both directions — while the rdma binding
// provably coalesces (strictly fewer messages).
func TestConformanceFastPathInertForNonRDMA(t *testing.T) {
	forEach(t, func(t *testing.T, b binding) {
		counts := [2][4]int64{}
		for i, fast := range []bool{false, true} {
			r := b.build(t, 7, srvOpts{retain: true})
			runBatchWorkload(t, r, clientOpts{queueDepth: 16, batchSize: 8, fastPath: fast})
			counts[i] = [4]int64{r.link.A.MsgsSent, r.link.A.BytesSent, r.link.B.MsgsSent, r.link.B.BytesSent}
		}
		if b.name == "rdma" {
			// Merging folds work requests inside the (already batched)
			// train — fewer capsule framings on the client wire — and the
			// merged commands come back as single completions: strictly
			// fewer server messages and client bytes, never more traffic.
			if counts[1][1] >= counts[0][1] || counts[1][2] >= counts[0][2] || counts[1][0] > counts[0][0] {
				t.Fatalf("rdma fast path should coalesce: off=%v on=%v", counts[0], counts[1])
			}
			return
		}
		if counts[0] != counts[1] {
			t.Fatalf("%s wire changed with fast path requested: off=%v on=%v", b.name, counts[0], counts[1])
		}
	})
}

// TestConformanceRDMAMergeCompletionOrder: a merged train's members
// complete individually, in ascending-offset (submission) order, with
// byte-exact payload splitting.
func TestConformanceRDMAMergeCompletionOrder(t *testing.T) {
	var rdmaBinding binding
	for _, b := range bindings {
		if b.name == "rdma" {
			rdmaBinding = b
		}
	}
	r := rdmaBinding.build(t, 11, srvOpts{retain: true})
	const n, bs = 8, 4096
	var mu sync.Mutex
	var order []int
	reads := make([][]byte, n)
	r.e.Go("app", func(p *sim.Proc) {
		c, _ := r.connect(p, clientOpts{queueDepth: 16, batchSize: n, fastPath: true})
		payload := make([]byte, n*bs)
		for i := range payload {
			payload[i] = byte(i % 241)
		}
		if res := c.Submit(p, &transport.IO{Write: true, Size: len(payload), Data: payload}).Wait(p); res.Err() != nil {
			t.Fatalf("write: %v", res.Err())
		}
		ios := make([]*transport.IO, n)
		for i := range ios {
			reads[i] = make([]byte, bs)
			ios[i] = &transport.IO{Offset: int64(i) * bs, Size: bs, Data: reads[i]}
		}
		futs := c.SubmitBatch(p, ios)
		done := make([]*sim.Future[*transport.Result], n)
		for i := range futs {
			i := i
			done[i] = futs[i]
			r.e.Go("waiter", func(q *sim.Proc) {
				if res := futs[i].Wait(q); res.Err() != nil {
					t.Errorf("read %d: %v", i, res.Err())
				}
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		for _, f := range done {
			f.Wait(p)
		}
		c.Close()
		c.WaitClosed(p)
		if !bytes.Equal(bytes.Join(reads, nil), payload) {
			t.Error("merged read payloads differ from written data")
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("completed %d of %d members", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v: member %d completed out of CID order", order, v)
		}
	}
}
