// Package conformance runs one table-driven behavioural suite against
// every fabric binding — adaptive (core), NVMe/TCP, and NVMe/RDMA. The
// session-engine extraction promises that connect, I/O, flush, doorbell
// batching, deadline/retry recovery, buffer-pool shedding, and KATO
// expiry behave uniformly across transports; each test here is that
// promise for one behaviour, parameterized only by the wire binding.
package conformance

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/faults"
	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/rdma"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

const confNQN = "nqn.conformance"

// client is the cross-transport host-side surface: every binding embeds
// *session.Host, so these methods promote on all three client types.
type client interface {
	Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result]
	SubmitBatch(p *sim.Proc, ios []*transport.IO) []*sim.Future[*transport.Result]
	Close()
	WaitClosed(p *sim.Proc)
}

// clientOpts are the engine knobs the suite varies; each binding maps
// them into its own ClientConfig.
type clientOpts struct {
	queueDepth int
	batchSize  int
	timeout    time.Duration
	maxRetries int
	backoff    time.Duration
	keepAlive  time.Duration
	telemetry  *telemetry.Sink
	// fastPath requests the RDMA fast path (MR regcache + adjacent-
	// request merging + dynamic doorbells). The core/tcp bindings have
	// no such knobs and must ignore it — fastpath_test.go pins that
	// inertness at the wire level.
	fastPath bool
}

// srvOpts are the target-side knobs.
type srvOpts struct {
	kato     time.Duration
	tinyPool bool // 4-buffer pool + 1 waiter: forces shedding
	retain   bool // namespace retains data for integrity checks
}

// rig is one connected transport instance.
type rig struct {
	e    *sim.Engine
	tgt  *session.Target // embedded server core: counters, crash/restart
	pool *mempool.Pool   // nil for RDMA (direct placement, no pool)
	inj  *faults.Injector
	link *netsim.Link // the host-target wire, for message/byte identity checks
	// connect dials a new host-side queue; the returned *session.Host is
	// the embedded engine core carrying the recovery counters.
	connect func(p *sim.Proc, o clientOpts) (client, *session.Host)
}

// binding builds a rig for one transport.
type binding struct {
	name    string
	hasPool bool
	build   func(t *testing.T, seed int64, so srvOpts) *rig
}

func newBackend(t *testing.T, seed int64, retain bool) (*sim.Engine, *target.Target) {
	t.Helper()
	e := sim.NewEngine(seed)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(confNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<30, ssdParams, retain, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	return e, tgt
}

func noRegRDMA() model.RDMAParams {
	prm := model.RDMA56G()
	prm.MemRegWarmOps = 0.001
	prm.MemRegFloorProb = 0
	return prm
}

var bindings = []binding{
	{
		name:    "core",
		hasPool: true,
		build: func(t *testing.T, seed int64, so srvOpts) *rig {
			e, tgt := newBackend(t, seed, so.retain)
			fabric := core.NewFabric(e, model.DefaultSHM())
			cfg := core.ServerConfig{
				NQN: confNQN, Design: core.DesignTCP, Fabric: fabric,
				TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
				KATO: so.kato,
			}
			if so.tinyPool {
				cfg.TP.DataBuffers = 4
				cfg.MaxBufferWaiters = 1
			}
			srv := core.NewServer(e, tgt, cfg)
			link := netsim.NewLoopLink(e, model.Loopback())
			srv.Serve(link.B)
			return &rig{
				e: e, tgt: srv.Target, pool: srv.Pool(), inj: faults.NewInjector(e), link: link,
				connect: func(p *sim.Proc, o clientOpts) (client, *session.Host) {
					tp := model.DefaultTCPTransport()
					tp.BatchSize = o.batchSize
					c, err := core.Connect(p, link.A, core.ClientConfig{
						NQN: confNQN, QueueDepth: o.queueDepth, Design: core.DesignTCP,
						TP: tp, Host: model.DefaultHost(),
						CommandTimeout: o.timeout, MaxRetries: o.maxRetries,
						RetryBackoff: o.backoff, KeepAlive: o.keepAlive,
						Telemetry: o.telemetry,
					})
					if err != nil {
						t.Fatal(err)
					}
					return c, c.Host
				},
			}
		},
	},
	{
		name:    "tcp",
		hasPool: true,
		build: func(t *testing.T, seed int64, so srvOpts) *rig {
			e, tgt := newBackend(t, seed, so.retain)
			cfg := tcp.ServerConfig{
				NQN: confNQN, TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
				KATO: so.kato,
			}
			if so.tinyPool {
				cfg.TP.DataBuffers = 4
				cfg.MaxBufferWaiters = 1
			}
			srv := tcp.NewServer(e, tgt, cfg)
			link := netsim.NewLoopLink(e, model.TCP25G())
			srv.Serve(link.B)
			return &rig{
				e: e, tgt: srv.Target, pool: srv.Pool(), inj: faults.NewInjector(e), link: link,
				connect: func(p *sim.Proc, o clientOpts) (client, *session.Host) {
					tp := model.DefaultTCPTransport()
					tp.BatchSize = o.batchSize
					c, err := tcp.Connect(p, link.A, tcp.ClientConfig{
						NQN: confNQN, QueueDepth: o.queueDepth,
						TP: tp, Host: model.DefaultHost(),
						CommandTimeout: o.timeout, MaxRetries: o.maxRetries,
						RetryBackoff: o.backoff, KeepAlive: o.keepAlive,
						Telemetry: o.telemetry,
					})
					if err != nil {
						t.Fatal(err)
					}
					return c, c.Host
				},
			}
		},
	},
	{
		name:    "rdma",
		hasPool: false,
		build: func(t *testing.T, seed int64, so srvOpts) *rig {
			e, tgt := newBackend(t, seed, so.retain)
			prm := noRegRDMA()
			srv := rdma.NewServer(e, tgt, rdma.ServerConfig{
				NQN: confNQN, Params: prm, Host: model.DefaultHost(),
				KATO: so.kato,
			})
			link := netsim.NewLoopLink(e, rdma.LinkParams(prm))
			srv.Serve(link.B)
			return &rig{
				e: e, tgt: srv.Target, inj: faults.NewInjector(e), link: link,
				connect: func(p *sim.Proc, o clientOpts) (client, *session.Host) {
					c, err := rdma.Connect(p, link.A, rdma.ClientConfig{
						NQN: confNQN, QueueDepth: o.queueDepth, Params: prm,
						Host: model.DefaultHost(), BatchSize: o.batchSize,
						CommandTimeout: o.timeout, MaxRetries: o.maxRetries,
						RetryBackoff: o.backoff, KeepAlive: o.keepAlive,
						Telemetry: o.telemetry,
						RegCache:  o.fastPath, Merge: o.fastPath, DynDoorbell: o.fastPath,
					})
					if err != nil {
						t.Fatal(err)
					}
					return c, c.Host
				},
			}
		},
	},
}

// forEach runs f as a subtest per binding.
func forEach(t *testing.T, f func(t *testing.T, b binding)) {
	for _, b := range bindings {
		b := b
		t.Run(b.name, func(t *testing.T) { f(t, b) })
	}
}

// TestConformanceConnectIdentifyIO: handshake, controller identify over
// the admin queue, then a write/read roundtrip with payload integrity.
func TestConformanceConnectIdentifyIO(t *testing.T) {
	forEach(t, func(t *testing.T, b binding) {
		r := b.build(t, 1, srvOpts{retain: true})
		r.e.Go("app", func(p *sim.Proc) {
			c, _ := r.connect(p, clientOpts{queueDepth: 8})
			buf := make([]byte, 4096)
			res := c.Submit(p, &transport.IO{
				Admin: nvme.AdminIdentify, CDW10: nvme.CNSController, Data: buf, Size: 4096,
			}).Wait(p)
			if err := res.Err(); err != nil {
				t.Fatalf("identify: %v", err)
			}
			if _, err := nvme.DecodeIdentifyController(res.Data); err != nil {
				t.Fatalf("identify decode: %v", err)
			}
			payload := make([]byte, 16<<10)
			for i := range payload {
				payload[i] = byte(i % 251)
			}
			if res := c.Submit(p, &transport.IO{Write: true, Size: len(payload), Data: payload}).Wait(p); res.Err() != nil {
				t.Fatalf("write: %v", res.Err())
			}
			into := make([]byte, len(payload))
			got := c.Submit(p, &transport.IO{Size: len(into), Data: into}).Wait(p)
			if got.Err() != nil {
				t.Fatalf("read: %v", got.Err())
			}
			if !bytes.Equal(got.Data, payload) {
				t.Error("read payload differs from written payload")
			}
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceFlush: a flush after acknowledged writes completes with
// success on every transport.
func TestConformanceFlush(t *testing.T) {
	forEach(t, func(t *testing.T, b binding) {
		r := b.build(t, 1, srvOpts{})
		r.e.Go("app", func(p *sim.Proc) {
			c, _ := r.connect(p, clientOpts{queueDepth: 8})
			for i := 0; i < 4; i++ {
				if res := c.Submit(p, &transport.IO{Write: true, Offset: int64(i) * 4096, Size: 4096, NoFill: true}).Wait(p); res.Err() != nil {
					t.Fatalf("write %d: %v", i, res.Err())
				}
			}
			if res := c.Submit(p, &transport.IO{Flush: true}).Wait(p); res.Err() != nil {
				t.Fatalf("flush: %v", res.Err())
			}
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceBatch: doorbell-coalesced submission completes every
// command and records train sizes > 1 on every transport.
func TestConformanceBatch(t *testing.T) {
	forEach(t, func(t *testing.T, b binding) {
		r := b.build(t, 1, srvOpts{})
		tel := telemetry.New()
		r.e.Go("app", func(p *sim.Proc) {
			c, h := r.connect(p, clientOpts{queueDepth: 32, batchSize: 8, telemetry: tel})
			ios := make([]*transport.IO, 64)
			for i := range ios {
				ios[i] = &transport.IO{Write: i%2 == 0, Offset: int64(i) * 4096, Size: 4096, NoFill: true}
			}
			for i, f := range c.SubmitBatch(p, ios) {
				if res := f.Wait(p); res.Err() != nil {
					t.Fatalf("batched io %d: %v", i, res.Err())
				}
			}
			if h.Completed != 64 {
				t.Errorf("completed %d of 64", h.Completed)
			}
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		hist, ok := tel.Snapshot().Histograms["batch.submit_size"]
		if !ok || hist.Max < 2 {
			t.Errorf("no coalesced trains recorded (hist=%+v)", hist)
		}
	})
}

// TestConformanceTimeoutRecovery: a target crash/restart forces command
// deadlines to expire; retries and reconnect must carry the workload
// through on every transport.
func TestConformanceTimeoutRecovery(t *testing.T) {
	forEach(t, func(t *testing.T, b binding) {
		r := b.build(t, 1, srvOpts{})
		r.inj.CrashTarget(r.tgt, 2*time.Millisecond, 2*time.Millisecond)
		r.e.Go("app", func(p *sim.Proc) {
			c, h := r.connect(p, clientOpts{
				queueDepth: 8,
				timeout:    1500 * time.Microsecond,
				maxRetries: 10,
				backoff:    200 * time.Microsecond,
				keepAlive:  time.Millisecond,
			})
			oks := 0
			for i := 0; p.Now() < sim.Time(10*time.Millisecond); i++ {
				res := c.Submit(p, &transport.IO{
					Write: i%3 == 0, Offset: int64(i%32) * 4096, Size: 4096, NoFill: true,
				}).Wait(p)
				switch res.Status {
				case nvme.StatusSuccess:
					oks++
				case nvme.StatusTransientTransport, nvme.StatusCommandInterrupted, nvme.StatusDataTransferErr:
				default:
					t.Errorf("unexpected status %v", res.Status)
				}
			}
			if h.Timeouts == 0 {
				t.Error("outage produced no timeouts")
			}
			if h.Reconnects == 0 {
				t.Error("client never reconnected")
			}
			if oks == 0 {
				t.Error("no command succeeded after restart")
			}
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatalf("engine did not drain cleanly: %v", err)
		}
	})
}

// TestConformanceShed: with a starved buffer pool and a one-deep waiter
// bound, overload answers with a retryable typed error instead of
// queueing without bound. RDMA places data directly into registered
// memory — no pool, nothing to shed — so it is exempt by construction.
func TestConformanceShed(t *testing.T) {
	forEach(t, func(t *testing.T, b binding) {
		if !b.hasPool {
			t.Skip("direct data placement: no buffer pool to shed from")
		}
		r := b.build(t, 1, srvOpts{tinyPool: true})
		r.e.Go("app", func(p *sim.Proc) {
			c, _ := r.connect(p, clientOpts{queueDepth: 16, timeout: 3 * time.Millisecond, maxRetries: 8, backoff: 200 * time.Microsecond})
			size := 2 * r.pool.ElemSize()
			futs := make([]*sim.Future[*transport.Result], 0, 32)
			for i := 0; i < 32; i++ {
				futs = append(futs, c.Submit(p, &transport.IO{Offset: int64(i%8) * int64(size), Size: size}))
			}
			oks, typed := 0, 0
			for _, f := range futs {
				switch res := f.Wait(p); res.Status {
				case nvme.StatusSuccess:
					oks++
				case nvme.StatusCommandInterrupted, nvme.StatusTransientTransport:
					typed++
				default:
					t.Errorf("unexpected status %v", res.Status)
				}
			}
			if oks == 0 {
				t.Error("no command succeeded under shedding")
			}
			c.Close()
			c.WaitClosed(p)
		})
		if err := r.e.Run(); err != nil {
			t.Fatalf("engine did not drain cleanly: %v", err)
		}
		if r.tgt.Shed == 0 {
			t.Error("pool exhaustion never shed")
		}
		if got := r.pool.InUse(); got != 0 {
			t.Errorf("pool leaked %d buffers", got)
		}
	})
}

// TestConformanceKATOExpiry: a silent connection expires at the target;
// a keep-alive-sending client survives the same idle window.
func TestConformanceKATOExpiry(t *testing.T) {
	forEach(t, func(t *testing.T, b binding) {
		run := func(keepAlive time.Duration) int64 {
			r := b.build(t, 1, srvOpts{kato: 2 * time.Millisecond})
			r.e.Go("app", func(p *sim.Proc) {
				c, _ := r.connect(p, clientOpts{
					queueDepth: 4, keepAlive: keepAlive,
					timeout: 1500 * time.Microsecond, maxRetries: 10, backoff: 200 * time.Microsecond,
				})
				if res := c.Submit(p, &transport.IO{Write: true, Size: 4096, NoFill: true}).Wait(p); res.Err() != nil {
					t.Fatalf("pre-idle write: %v", res.Err())
				}
				p.Sleep(10 * time.Millisecond)
				if res := c.Submit(p, &transport.IO{Size: 4096}).Wait(p); res.Err() != nil {
					t.Errorf("post-idle read (keepAlive=%v): %v", keepAlive, res.Err())
				}
				c.Close()
				c.WaitClosed(p)
			})
			if err := r.e.Run(); err != nil {
				t.Fatalf("engine did not drain cleanly: %v", err)
			}
			return r.tgt.KAExpirations
		}
		if exp := run(0); exp == 0 {
			t.Error("silent connection never hit the KATO watchdog")
		}
		if exp := run(800 * time.Microsecond); exp != 0 {
			t.Error("keep-alive-sending client hit the KATO watchdog")
		}
	})
}
