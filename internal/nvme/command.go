// Package nvme implements the NVMe protocol structures shared by the host
// and controller sides of the NVMe-oF stack: 64-byte submission queue
// entries, 16-byte completion queue entries, opcodes, status codes,
// identify data, and per-queue command-ID tracking.
//
// Encodings follow the NVMe 1.4 base specification layout so that capsules
// moving through the fabric are real protocol bytes.
package nvme

import (
	"encoding/binary"
	"fmt"
)

// I/O command set opcodes.
const (
	OpFlush uint8 = 0x00
	OpWrite uint8 = 0x01
	OpRead  uint8 = 0x02
)

// Admin command opcodes (subset used by the fabric).
const (
	AdminDeleteIOSQ    uint8 = 0x00
	AdminCreateIOSQ    uint8 = 0x01
	AdminGetLogPage    uint8 = 0x02
	AdminDeleteIOCQ    uint8 = 0x04
	AdminCreateIOCQ    uint8 = 0x05
	AdminIdentify      uint8 = 0x06
	AdminSetFeatures   uint8 = 0x09
	AdminGetFeatures   uint8 = 0x0A
	AdminKeepAlive     uint8 = 0x18
	FabricsCommandType uint8 = 0x7F
)

// CommandSize is the size of an encoded submission queue entry.
const CommandSize = 64

// CompletionSize is the size of an encoded completion queue entry.
const CompletionSize = 16

// Command is an NVMe submission queue entry (SQE).
type Command struct {
	Opcode   uint8
	Flags    uint8
	CID      uint16
	NSID     uint32
	CDW2     uint32
	CDW3     uint32
	Metadata uint64
	PRP1     uint64 // data pointer; carries buffer/slot references in-fabric
	PRP2     uint64
	CDW10    uint32
	CDW11    uint32
	CDW12    uint32
	CDW13    uint32
	CDW14    uint32
	CDW15    uint32
}

// NewRead builds a read command for nlb logical blocks starting at slba.
func NewRead(cid uint16, nsid uint32, slba uint64, nlb uint32) Command {
	return Command{
		Opcode: OpRead, CID: cid, NSID: nsid,
		CDW10: uint32(slba), CDW11: uint32(slba >> 32),
		CDW12: nlb - 1, // 0's-based per spec
	}
}

// NewWrite builds a write command for nlb logical blocks starting at slba.
func NewWrite(cid uint16, nsid uint32, slba uint64, nlb uint32) Command {
	c := NewRead(cid, nsid, slba, nlb)
	c.Opcode = OpWrite
	return c
}

// NewFlush builds a flush command.
func NewFlush(cid uint16, nsid uint32) Command {
	return Command{Opcode: OpFlush, CID: cid, NSID: nsid}
}

// SLBA returns the starting logical block address of a read/write command.
func (c *Command) SLBA() uint64 {
	return uint64(c.CDW10) | uint64(c.CDW11)<<32
}

// NLB returns the number of logical blocks of a read/write command.
func (c *Command) NLB() uint32 { return c.CDW12&0xFFFF + 1 }

// IsIO reports whether the opcode is a data-carrying I/O command.
func (c *Command) IsIO() bool { return c.Opcode == OpRead || c.Opcode == OpWrite }

// Encode serializes the command into buf, which must hold CommandSize
// bytes; it returns the filled prefix.
func (c *Command) Encode(buf []byte) []byte {
	_ = buf[CommandSize-1]
	le := binary.LittleEndian
	buf[0] = c.Opcode
	buf[1] = c.Flags
	le.PutUint16(buf[2:], c.CID)
	le.PutUint32(buf[4:], c.NSID)
	le.PutUint32(buf[8:], c.CDW2)
	le.PutUint32(buf[12:], c.CDW3)
	le.PutUint64(buf[16:], c.Metadata)
	le.PutUint64(buf[24:], c.PRP1)
	le.PutUint64(buf[32:], c.PRP2)
	le.PutUint32(buf[40:], c.CDW10)
	le.PutUint32(buf[44:], c.CDW11)
	le.PutUint32(buf[48:], c.CDW12)
	le.PutUint32(buf[52:], c.CDW13)
	le.PutUint32(buf[56:], c.CDW14)
	le.PutUint32(buf[60:], c.CDW15)
	return buf[:CommandSize]
}

// DecodeCommand parses a submission queue entry.
func DecodeCommand(buf []byte) (Command, error) {
	if len(buf) < CommandSize {
		return Command{}, fmt.Errorf("nvme: short SQE: %d bytes", len(buf))
	}
	le := binary.LittleEndian
	return Command{
		Opcode:   buf[0],
		Flags:    buf[1],
		CID:      le.Uint16(buf[2:]),
		NSID:     le.Uint32(buf[4:]),
		CDW2:     le.Uint32(buf[8:]),
		CDW3:     le.Uint32(buf[12:]),
		Metadata: le.Uint64(buf[16:]),
		PRP1:     le.Uint64(buf[24:]),
		PRP2:     le.Uint64(buf[32:]),
		CDW10:    le.Uint32(buf[40:]),
		CDW11:    le.Uint32(buf[44:]),
		CDW12:    le.Uint32(buf[48:]),
		CDW13:    le.Uint32(buf[52:]),
		CDW14:    le.Uint32(buf[56:]),
		CDW15:    le.Uint32(buf[60:]),
	}, nil
}

// Completion is an NVMe completion queue entry (CQE).
type Completion struct {
	Result uint32 // command-specific DW0
	SQHead uint16
	SQID   uint16
	CID    uint16
	Status Status
}

// Encode serializes the completion into buf, which must hold
// CompletionSize bytes; it returns the filled prefix.
func (c *Completion) Encode(buf []byte) []byte {
	_ = buf[CompletionSize-1]
	le := binary.LittleEndian
	le.PutUint32(buf[0:], c.Result)
	le.PutUint32(buf[4:], 0)
	le.PutUint16(buf[8:], c.SQHead)
	le.PutUint16(buf[10:], c.SQID)
	le.PutUint16(buf[12:], c.CID)
	le.PutUint16(buf[14:], uint16(c.Status)<<1) // bit 0 is the phase tag
	return buf[:CompletionSize]
}

// DecodeCompletion parses a completion queue entry.
func DecodeCompletion(buf []byte) (Completion, error) {
	if len(buf) < CompletionSize {
		return Completion{}, fmt.Errorf("nvme: short CQE: %d bytes", len(buf))
	}
	le := binary.LittleEndian
	return Completion{
		Result: le.Uint32(buf[0:]),
		SQHead: le.Uint16(buf[8:]),
		SQID:   le.Uint16(buf[10:]),
		CID:    le.Uint16(buf[12:]),
		Status: Status(le.Uint16(buf[14:]) >> 1),
	}, nil
}
