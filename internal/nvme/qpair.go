package nvme

import "fmt"

// CIDTable allocates and tracks command identifiers for one queue pair,
// enforcing the NVMe invariant that a CID is unique among outstanding
// commands on its queue. The table also carries a per-command context
// pointer so completions can be matched back to requests.
type CIDTable struct {
	depth    int
	free     []uint16
	inflight map[uint16]interface{}
}

// NewCIDTable creates a table for a queue of the given depth.
func NewCIDTable(depth int) *CIDTable {
	t := &CIDTable{
		depth:    depth,
		free:     make([]uint16, 0, depth),
		inflight: make(map[uint16]interface{}, depth),
	}
	for i := depth - 1; i >= 0; i-- {
		t.free = append(t.free, uint16(i))
	}
	return t
}

// Depth returns the queue depth.
func (t *CIDTable) Depth() int { return t.depth }

// Outstanding returns the number of commands in flight.
func (t *CIDTable) Outstanding() int { return len(t.inflight) }

// Full reports whether the queue has no free CIDs.
func (t *CIDTable) Full() bool { return len(t.free) == 0 }

// Alloc reserves a CID and associates ctx with it. It fails when the queue
// is full.
func (t *CIDTable) Alloc(ctx interface{}) (uint16, error) {
	if len(t.free) == 0 {
		return 0, fmt.Errorf("nvme: queue full (%d outstanding)", len(t.inflight))
	}
	cid := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	t.inflight[cid] = ctx
	return cid, nil
}

// Complete releases a CID and returns its context. Completing an unknown
// CID is a protocol violation and returns an error.
func (t *CIDTable) Complete(cid uint16) (interface{}, error) {
	ctx, ok := t.inflight[cid]
	if !ok {
		return nil, fmt.Errorf("nvme: completion for unknown CID %d", cid)
	}
	delete(t.inflight, cid)
	t.free = append(t.free, cid)
	return ctx, nil
}

// Lookup returns the context of an in-flight CID without completing it.
func (t *CIDTable) Lookup(cid uint16) (interface{}, bool) {
	ctx, ok := t.inflight[cid]
	return ctx, ok
}

// LBARange validates a read/write command against a namespace geometry
// and converts it into a byte offset and size.
func LBARange(cmd *Command, blockSize int, blocks int64) (offset int64, size int, status Status) {
	if !cmd.IsIO() {
		return 0, 0, StatusInvalidOpcode
	}
	slba := cmd.SLBA()
	nlb := cmd.NLB()
	if nlb == 0 {
		return 0, 0, StatusInvalidField
	}
	if slba+uint64(nlb) > uint64(blocks) {
		return 0, 0, StatusLBAOutOfRange
	}
	return int64(slba) * int64(blockSize), int(nlb) * blockSize, StatusSuccess
}
