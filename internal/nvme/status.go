package nvme

import "fmt"

// Status is an NVMe status field value (status code type in bits 10:8,
// status code in bits 7:0, phase bit excluded).
type Status uint16

// Generic command status codes (SCT 0).
const (
	StatusSuccess          Status = 0x000
	StatusInvalidOpcode    Status = 0x001
	StatusInvalidField     Status = 0x002
	StatusCIDConflict      Status = 0x003
	StatusDataTransferErr  Status = 0x004
	StatusInternalError    Status = 0x006
	StatusAbortRequested   Status = 0x007
	StatusInvalidNamespace Status = 0x00B
	// StatusCommandInterrupted (NVMe 1.4) marks a command shed or aborted
	// by the controller under resource pressure; hosts should retry.
	StatusCommandInterrupted Status = 0x021
	// StatusTransientTransport (NVMe 1.4) marks a transport-path failure
	// (timeout, lost connection); hosts may retry on the same or another
	// path.
	StatusTransientTransport Status = 0x022
	// StatusTenantThrottled marks a command rejected at the target because
	// the submitting tenant's QoS token budget is exhausted. Retryable:
	// tokens refill and ledger borrowing may admit the retry.
	StatusTenantThrottled Status = 0x023
	StatusLBAOutOfRange   Status = 0x080
	StatusCapacityExceeded   Status = 0x081
	StatusNamespaceNotRdy    Status = 0x082
	// StatusWriteFault (media status, SCT 2) marks data the device
	// accepted but could not commit to media — e.g. write-back cache
	// contents lost to a crash or a failed flush. Not retryable: the
	// data is gone and the host must be told.
	StatusWriteFault Status = 0x280
)

// Retryable reports whether the status marks a transient failure the
// host is expected to retry (possibly on another path) rather than a
// command-level error it must surface.
func (s Status) Retryable() bool {
	switch s {
	case StatusCommandInterrupted, StatusTransientTransport, StatusTenantThrottled, StatusDataTransferErr, StatusNamespaceNotRdy:
		return true
	}
	return false
}

// IsError reports whether the status indicates failure.
func (s Status) IsError() bool { return s != StatusSuccess }

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusInvalidOpcode:
		return "invalid opcode"
	case StatusInvalidField:
		return "invalid field"
	case StatusCIDConflict:
		return "command id conflict"
	case StatusDataTransferErr:
		return "data transfer error"
	case StatusInternalError:
		return "internal error"
	case StatusAbortRequested:
		return "abort requested"
	case StatusInvalidNamespace:
		return "invalid namespace or format"
	case StatusCommandInterrupted:
		return "command interrupted"
	case StatusTransientTransport:
		return "transient transport error"
	case StatusTenantThrottled:
		return "tenant throttled"
	case StatusLBAOutOfRange:
		return "LBA out of range"
	case StatusCapacityExceeded:
		return "capacity exceeded"
	case StatusNamespaceNotRdy:
		return "namespace not ready"
	case StatusWriteFault:
		return "write fault"
	default:
		return fmt.Sprintf("status(0x%03x)", uint16(s))
	}
}

// Error converts a non-success status into an error (nil for success).
func (s Status) Error() error {
	if s == StatusSuccess {
		return nil
	}
	return &StatusError{Status: s}
}

// StatusError wraps a failing NVMe status as a Go error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return "nvme: " + e.Status.String() }
