package nvme

import "fmt"

// Status is an NVMe status field value (status code type in bits 10:8,
// status code in bits 7:0, phase bit excluded).
type Status uint16

// Generic command status codes (SCT 0).
const (
	StatusSuccess          Status = 0x000
	StatusInvalidOpcode    Status = 0x001
	StatusInvalidField     Status = 0x002
	StatusCIDConflict      Status = 0x003
	StatusDataTransferErr  Status = 0x004
	StatusInternalError    Status = 0x006
	StatusAbortRequested   Status = 0x007
	StatusInvalidNamespace Status = 0x00B
	StatusLBAOutOfRange    Status = 0x080
	StatusCapacityExceeded Status = 0x081
	StatusNamespaceNotRdy  Status = 0x082
)

// IsError reports whether the status indicates failure.
func (s Status) IsError() bool { return s != StatusSuccess }

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusInvalidOpcode:
		return "invalid opcode"
	case StatusInvalidField:
		return "invalid field"
	case StatusCIDConflict:
		return "command id conflict"
	case StatusDataTransferErr:
		return "data transfer error"
	case StatusInternalError:
		return "internal error"
	case StatusAbortRequested:
		return "abort requested"
	case StatusInvalidNamespace:
		return "invalid namespace or format"
	case StatusLBAOutOfRange:
		return "LBA out of range"
	case StatusCapacityExceeded:
		return "capacity exceeded"
	case StatusNamespaceNotRdy:
		return "namespace not ready"
	default:
		return fmt.Sprintf("status(0x%03x)", uint16(s))
	}
}

// Error converts a non-success status into an error (nil for success).
func (s Status) Error() error {
	if s == StatusSuccess {
		return nil
	}
	return &StatusError{Status: s}
}

// StatusError wraps a failing NVMe status as a Go error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return "nvme: " + e.Status.String() }
