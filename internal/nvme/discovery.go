package nvme

import (
	"encoding/binary"
	"fmt"
)

// Get Log Page identifiers.
const (
	// LIDDiscovery is the NVMe-oF discovery log page.
	LIDDiscovery uint32 = 0x70
)

// Fabrics command types (the fctype of opcode 0x7F capsules).
const (
	// FctypeConnect associates a host with a subsystem and queue.
	FctypeConnect uint32 = 0x01
)

// EncodeConnectData builds the Fabrics Connect command's data block:
// host NQN and subsystem NQN, NUL-separated, as the spec's connect data
// carries them in fixed fields.
func EncodeConnectData(hostNQN, subNQN string) []byte {
	buf := make([]byte, 2*discNQNLen)
	copy(buf[:discNQNLen], hostNQN)
	copy(buf[discNQNLen:], subNQN)
	return buf
}

// DecodeConnectData parses a Fabrics Connect data block.
func DecodeConnectData(buf []byte) (hostNQN, subNQN string, err error) {
	if len(buf) < 2*discNQNLen {
		return "", "", fmt.Errorf("nvme: short connect data: %d bytes", len(buf))
	}
	return trimPadded(buf[:discNQNLen]), trimPadded(buf[discNQNLen : 2*discNQNLen]), nil
}

// Transport types reported in discovery log entries.
const (
	TrTypeTCP      uint8 = 3
	TrTypeRDMA     uint8 = 1
	TrTypeAdaptive uint8 = 0xFA // vendor-specific: adaptive fabric
)

// DiscoveryEntry describes one subsystem a discovery controller exposes.
type DiscoveryEntry struct {
	TrType uint8
	SubNQN string // up to 223 bytes per spec
	TrAddr string // transport address (host name in this repository)
}

const (
	discNQNLen   = 224
	discAddrLen  = 64
	discEntryLen = 4 + discNQNLen + discAddrLen
)

// EncodeDiscoveryLog serializes a discovery log page: an 8-byte header
// with the entry count followed by fixed-size entries.
func EncodeDiscoveryLog(entries []DiscoveryEntry) []byte {
	buf := make([]byte, 8+len(entries)*discEntryLen)
	binary.LittleEndian.PutUint64(buf, uint64(len(entries)))
	for i, e := range entries {
		off := 8 + i*discEntryLen
		buf[off] = e.TrType
		copy(buf[off+4:off+4+discNQNLen], e.SubNQN)
		copy(buf[off+4+discNQNLen:off+discEntryLen], e.TrAddr)
	}
	return buf
}

// DecodeDiscoveryLog parses a discovery log page.
func DecodeDiscoveryLog(buf []byte) ([]DiscoveryEntry, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("nvme: short discovery log: %d bytes", len(buf))
	}
	n := binary.LittleEndian.Uint64(buf)
	if int(n) < 0 || len(buf) < 8+int(n)*discEntryLen {
		return nil, fmt.Errorf("nvme: discovery log truncated: %d entries, %d bytes", n, len(buf))
	}
	out := make([]DiscoveryEntry, 0, n)
	for i := 0; i < int(n); i++ {
		off := 8 + i*discEntryLen
		out = append(out, DiscoveryEntry{
			TrType: buf[off],
			SubNQN: trimPadded(buf[off+4 : off+4+discNQNLen]),
			TrAddr: trimPadded(buf[off+4+discNQNLen : off+discEntryLen]),
		})
	}
	return out, nil
}
