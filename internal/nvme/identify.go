package nvme

import (
	"encoding/binary"
	"fmt"
)

// Identify CNS values.
const (
	CNSNamespace  uint32 = 0x00
	CNSController uint32 = 0x01
)

// IdentifyController is the subset of the 4096-byte identify-controller
// data structure that the fabric uses.
type IdentifyController struct {
	VID      uint16 // vendor
	SN       string // serial number (20 bytes)
	MN       string // model number (40 bytes)
	NN       uint32 // number of namespaces
	MDTS     uint8  // max data transfer size, as power-of-two pages
	IOQueues uint16 // supported I/O queue pairs
}

// IdentifyNamespace is the subset of the identify-namespace structure the
// fabric uses.
type IdentifyNamespace struct {
	NSZE      uint64 // namespace size in logical blocks
	NCAP      uint64 // capacity in logical blocks
	BlockSize uint32 // bytes per logical block
}

const identifySize = 4096

func putPadded(dst []byte, s string) {
	copy(dst, s)
	for i := len(s); i < len(dst); i++ {
		dst[i] = ' '
	}
}

func trimPadded(b []byte) string {
	end := len(b)
	for end > 0 && (b[end-1] == ' ' || b[end-1] == 0) {
		end--
	}
	return string(b[:end])
}

// Encode serializes the identify-controller page.
func (id *IdentifyController) Encode() []byte {
	buf := make([]byte, identifySize)
	le := binary.LittleEndian
	le.PutUint16(buf[0:], id.VID)
	putPadded(buf[4:24], id.SN)
	putPadded(buf[24:64], id.MN)
	buf[77] = id.MDTS
	le.PutUint32(buf[516:], id.NN)
	le.PutUint16(buf[520:], id.IOQueues)
	return buf
}

// DecodeIdentifyController parses an identify-controller page.
func DecodeIdentifyController(buf []byte) (IdentifyController, error) {
	if len(buf) < identifySize {
		return IdentifyController{}, fmt.Errorf("nvme: short identify page: %d", len(buf))
	}
	le := binary.LittleEndian
	return IdentifyController{
		VID:      le.Uint16(buf[0:]),
		SN:       trimPadded(buf[4:24]),
		MN:       trimPadded(buf[24:64]),
		MDTS:     buf[77],
		NN:       le.Uint32(buf[516:]),
		IOQueues: le.Uint16(buf[520:]),
	}, nil
}

// Encode serializes the identify-namespace page.
func (id *IdentifyNamespace) Encode() []byte {
	buf := make([]byte, identifySize)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], id.NSZE)
	le.PutUint64(buf[8:], id.NCAP)
	le.PutUint32(buf[128:], id.BlockSize)
	return buf
}

// DecodeIdentifyNamespace parses an identify-namespace page.
func DecodeIdentifyNamespace(buf []byte) (IdentifyNamespace, error) {
	if len(buf) < identifySize {
		return IdentifyNamespace{}, fmt.Errorf("nvme: short identify page: %d", len(buf))
	}
	le := binary.LittleEndian
	return IdentifyNamespace{
		NSZE:      le.Uint64(buf[0:]),
		NCAP:      le.Uint64(buf[8:]),
		BlockSize: le.Uint32(buf[128:]),
	}, nil
}
