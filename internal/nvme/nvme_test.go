package nvme

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCommandRoundTrip(t *testing.T) {
	orig := Command{
		Opcode: OpWrite, Flags: 0x40, CID: 0xBEEF, NSID: 3,
		CDW2: 1, CDW3: 2, Metadata: 0x1122334455667788,
		PRP1: 0xAABBCCDDEEFF0011, PRP2: 42,
		CDW10: 10, CDW11: 11, CDW12: 12, CDW13: 13, CDW14: 14, CDW15: 15,
	}
	buf := make([]byte, CommandSize)
	orig.Encode(buf)
	got, err := DecodeCommand(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestCommandRoundTripProperty(t *testing.T) {
	f := func(c Command) bool {
		buf := make([]byte, CommandSize)
		c.Encode(buf)
		got, err := DecodeCommand(buf)
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionRoundTripProperty(t *testing.T) {
	f := func(result uint32, sqhead, sqid, cid uint16, status uint16) bool {
		c := Completion{Result: result, SQHead: sqhead, SQID: sqid, CID: cid,
			Status: Status(status & 0x7FFF)} // 15 usable bits after phase shift
		buf := make([]byte, CompletionSize)
		c.Encode(buf)
		got, err := DecodeCompletion(buf)
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortBuffersRejected(t *testing.T) {
	if _, err := DecodeCommand(make([]byte, 10)); err == nil {
		t.Fatal("short SQE accepted")
	}
	if _, err := DecodeCompletion(make([]byte, 3)); err == nil {
		t.Fatal("short CQE accepted")
	}
}

func TestReadWriteHelpers(t *testing.T) {
	c := NewRead(7, 1, 0x1_0000_0001, 32)
	if c.Opcode != OpRead || c.CID != 7 || c.NSID != 1 {
		t.Fatalf("header: %+v", c)
	}
	if c.SLBA() != 0x1_0000_0001 {
		t.Fatalf("slba = %#x", c.SLBA())
	}
	if c.NLB() != 32 {
		t.Fatalf("nlb = %d", c.NLB())
	}
	w := NewWrite(8, 2, 100, 1)
	if w.Opcode != OpWrite || w.NLB() != 1 || w.SLBA() != 100 {
		t.Fatalf("write: %+v", w)
	}
	fl := NewFlush(9, 2)
	if fl.IsIO() {
		t.Fatal("flush is not an I/O data command")
	}
	if !w.IsIO() || !c.IsIO() {
		t.Fatal("read/write must be I/O commands")
	}
}

func TestStatusStringsAndErrors(t *testing.T) {
	if StatusSuccess.IsError() {
		t.Fatal("success is not an error")
	}
	if StatusSuccess.Error() != nil {
		t.Fatal("success error should be nil")
	}
	for _, s := range []Status{StatusInvalidOpcode, StatusInvalidField, StatusCIDConflict,
		StatusDataTransferErr, StatusInternalError, StatusAbortRequested,
		StatusInvalidNamespace, StatusLBAOutOfRange, StatusCapacityExceeded,
		StatusNamespaceNotRdy, Status(0x123)} {
		if !s.IsError() {
			t.Fatalf("%v should be error", s)
		}
		err := s.Error()
		if err == nil || err.Error() == "" {
			t.Fatalf("%v produced empty error", s)
		}
		var se *StatusError
		if !errors.As(err, &se) || se.Status != s {
			t.Fatalf("error does not wrap status %v", s)
		}
		if s.String() == "" {
			t.Fatalf("empty string for %v", uint16(s))
		}
	}
}

func TestCIDTableAllocCompleteCycle(t *testing.T) {
	tab := NewCIDTable(4)
	if tab.Depth() != 4 || tab.Outstanding() != 0 || tab.Full() {
		t.Fatal("fresh table state")
	}
	cids := map[uint16]bool{}
	for i := 0; i < 4; i++ {
		cid, err := tab.Alloc(i)
		if err != nil {
			t.Fatal(err)
		}
		if cids[cid] {
			t.Fatalf("duplicate CID %d", cid)
		}
		cids[cid] = true
	}
	if !tab.Full() {
		t.Fatal("table should be full")
	}
	if _, err := tab.Alloc(nil); err == nil {
		t.Fatal("alloc on full table should fail")
	}
	for cid := range cids {
		ctx, err := tab.Complete(cid)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ctx.(int); !ok {
			t.Fatalf("lost context for CID %d", cid)
		}
	}
	if tab.Outstanding() != 0 {
		t.Fatal("outstanding after draining")
	}
}

func TestCIDTableUnknownCompletion(t *testing.T) {
	tab := NewCIDTable(2)
	if _, err := tab.Complete(0); err == nil {
		t.Fatal("unknown CID completion accepted")
	}
	cid, _ := tab.Alloc("x")
	if ctx, ok := tab.Lookup(cid); !ok || ctx.(string) != "x" {
		t.Fatal("lookup failed")
	}
	tab.Complete(cid)
	if _, err := tab.Complete(cid); err == nil {
		t.Fatal("double completion accepted")
	}
}

func TestCIDTableProperty(t *testing.T) {
	// Property: any interleaving of allocs and completes keeps CIDs unique
	// among in-flight commands and never exceeds depth.
	f := func(ops []bool) bool {
		tab := NewCIDTable(8)
		var live []uint16
		for _, alloc := range ops {
			if alloc {
				cid, err := tab.Alloc(nil)
				if err != nil {
					if len(live) != 8 {
						return false
					}
					continue
				}
				for _, l := range live {
					if l == cid {
						return false // duplicate in-flight CID
					}
				}
				live = append(live, cid)
			} else if len(live) > 0 {
				cid := live[0]
				live = live[1:]
				if _, err := tab.Complete(cid); err != nil {
					return false
				}
			}
		}
		return tab.Outstanding() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLBARange(t *testing.T) {
	const bs, blocks = 512, 1000
	ok := NewRead(1, 1, 10, 4)
	off, size, st := LBARange(&ok, bs, blocks)
	if st != StatusSuccess || off != 10*512 || size != 4*512 {
		t.Fatalf("got off=%d size=%d st=%v", off, size, st)
	}
	over := NewRead(1, 1, 999, 2)
	if _, _, st := LBARange(&over, bs, blocks); st != StatusLBAOutOfRange {
		t.Fatalf("status %v, want LBA out of range", st)
	}
	fl := NewFlush(1, 1)
	if _, _, st := LBARange(&fl, bs, blocks); st != StatusInvalidOpcode {
		t.Fatalf("status %v, want invalid opcode", st)
	}
}

func TestIdentifyRoundTrip(t *testing.T) {
	ctrl := IdentifyController{
		VID: 0x8086, SN: "OAF0001", MN: "NVMe-oAF Simulated Controller",
		NN: 4, MDTS: 5, IOQueues: 64,
	}
	got, err := DecodeIdentifyController(ctrl.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != ctrl {
		t.Fatalf("controller round trip:\n got %+v\nwant %+v", got, ctrl)
	}
	ns := IdentifyNamespace{NSZE: 1 << 30, NCAP: 1 << 30, BlockSize: 512}
	gotNS, err := DecodeIdentifyNamespace(ns.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotNS != ns {
		t.Fatalf("namespace round trip: %+v vs %+v", gotNS, ns)
	}
	if _, err := DecodeIdentifyController(make([]byte, 100)); err == nil {
		t.Fatal("short page accepted")
	}
	if _, err := DecodeIdentifyNamespace(make([]byte, 100)); err == nil {
		t.Fatal("short page accepted")
	}
}

func TestDiscoveryLogRoundTrip(t *testing.T) {
	entries := []DiscoveryEntry{
		{TrType: TrTypeTCP, SubNQN: "nqn.2022-06.io.oaf:a", TrAddr: "hostA"},
		{TrType: TrTypeAdaptive, SubNQN: "nqn.2022-06.io.oaf:b", TrAddr: "hostB"},
	}
	got, err := DecodeDiscoveryLog(EncodeDiscoveryLog(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries %d", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got[i], entries[i])
		}
	}
	if _, err := DecodeDiscoveryLog(nil); err == nil {
		t.Fatal("nil log accepted")
	}
	if _, err := DecodeDiscoveryLog(EncodeDiscoveryLog(entries)[:20]); err == nil {
		t.Fatal("truncated log accepted")
	}
	empty, err := DecodeDiscoveryLog(EncodeDiscoveryLog(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty log: %v %v", empty, err)
	}
}
